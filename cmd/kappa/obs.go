package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/remote"
)

// progressOption is the shared -progress observer: every trace event of the
// run, one line per event, to stderr.
func progressOption() core.Option {
	return core.WithObserver(core.ObserverFunc(func(ev core.TraceEvent) {
		fmt.Fprintln(os.Stderr, "kappa:", ev)
	}))
}

// obsFlags are the observability flags shared by `kappa` and `kappa serve`.
type obsFlags struct {
	metrics     string
	metricsHold time.Duration
	report      string
	reportZero  bool
}

// register installs the flags on fs (flag.CommandLine for the root command).
func (f *obsFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&f.metrics, "metrics", "",
		"serve Prometheus metrics, a JSON snapshot, and pprof on this address (e.g. :9090; /metrics, /metrics.json, /debug/pprof/)")
	fs.DurationVar(&f.metricsHold, "metrics-hold", 0,
		"keep the -metrics endpoint up this long after the run finishes (for scraping a one-shot run)")
	fs.StringVar(&f.report, "report", "",
		"write a JSON run report (config, levels, init cut, refinement gains, transport and arena totals) to this file ('-' for stdout)")
	fs.BoolVar(&f.reportZero, "report-zero", false,
		"zero the report's scheduling-dependent fields (wall-clock times, heartbeat counts, arena reuse split) so reports of identical runs compare byte-equal")
}

func (f *obsFlags) enabled() bool { return f.metrics != "" || f.report != "" }

// summaryWriter is where the human-readable result summary goes: stderr when
// the report streams to stdout (-report -), so the JSON document on stdout
// stays parseable on its own.
func (f *obsFlags) summaryWriter() io.Writer {
	if f.report == "-" {
		return os.Stderr
	}
	return os.Stdout
}

// runObs is the live observability state of one run: the registry behind the
// HTTP endpoint, the transport/arena sinks, and the report recorder.
type runObs struct {
	flags    *obsFlags
	registry *obs.Registry
	stats    *dist.TransportStats
	arena    *mem.Arena
	reporter *obs.ReportObserver
	counters *remote.Counters
	server   interface{ Close() error }
}

// setup wires the requested observability into pipeline options: a shared
// arena and metered transports (so both the metrics endpoint and the report
// see them), the metrics observer, and the report recorder. It returns nil
// when neither -metrics nor -report was given — the run stays entirely
// uninstrumented.
func (f *obsFlags) setup(g *graph.Graph, cfg core.Config) (*runObs, []core.Option, error) {
	if !f.enabled() {
		return nil, nil, nil
	}
	o := &runObs{
		flags: f,
		stats: dist.NewTransportStats(cfg.NumPEs()),
		arena: mem.NewArena(),
	}
	opts := []core.Option{
		core.WithArena(o.arena),
		core.WithTransportStats(o.stats),
	}
	if f.metrics != "" {
		o.registry = obs.NewRegistry()
		obs.BindTransport(o.registry, o.stats)
		obs.BindArena(o.registry, o.arena)
		opts = append(opts, core.WithObserver(obs.NewPipelineObserver(o.registry)))
		srv, addr, err := obs.Serve(f.metrics, o.registry)
		if err != nil {
			return nil, nil, err
		}
		o.server = srv
		fmt.Fprintf(os.Stderr, "kappa: metrics on http://%s/metrics (JSON at /metrics.json, pprof at /debug/pprof/)\n", addr)
	}
	if f.report != "" {
		o.reporter = obs.NewReportObserver(g, cfg)
		opts = append(opts, core.WithObserver(o.reporter))
	}
	return o, opts, nil
}

// bindRemote hooks the coordinator's fault-tolerance counters into the
// metrics registry and remembers them for the report's faults section. A nil
// receiver is a no-op — `kappa serve` calls it unconditionally.
func (o *runObs) bindRemote(c *remote.Counters) {
	if o == nil {
		return
	}
	o.counters = c
	if o.registry != nil {
		obs.BindRemote(o.registry, c)
	}
}

// transportStats returns the stats sink to meter transports into, nil when
// observability is off (nil receiver included).
func (o *runObs) transportStats() *dist.TransportStats {
	if o == nil {
		return nil
	}
	return o.stats
}

// finish completes the run's observability: final-result gauges, the report
// file, and the post-run hold of the metrics endpoint. A nil receiver is a
// no-op, so callers invoke it unconditionally.
func (o *runObs) finish(res core.Result) error {
	if o == nil {
		return nil
	}
	if o.registry != nil {
		obs.RecordResult(o.registry, res)
	}
	if o.reporter != nil {
		rep := o.reporter.Finish(res, o.stats, o.arena)
		rep.Faults = obs.FaultSection(o.counters)
		if o.flags.reportZero {
			rep.ZeroTimes()
		}
		out := os.Stdout
		if o.flags.report != "-" {
			f, err := os.Create(o.flags.report)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if _, err := rep.WriteTo(out); err != nil {
			return err
		}
		if o.flags.report != "-" {
			fmt.Fprintf(os.Stderr, "kappa: report written to %s\n", o.flags.report)
		}
	}
	if o.server != nil {
		if o.flags.metricsHold > 0 {
			fmt.Fprintf(os.Stderr, "kappa: holding metrics endpoint for %v\n", o.flags.metricsHold)
			time.Sleep(o.flags.metricsHold)
		}
		o.server.Close()
	}
	return nil
}
