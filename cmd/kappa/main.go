// Command kappa partitions a graph with the KaPPa partitioner.
//
// The input is a graph file (METIS text or binary .bgraph, format sniffed)
// or a named synthetic generator. Examples:
//
//	kappa -in mesh.graph -k 16 -preset strong -out mesh.part
//	kappa -gen rgg:15 -k 64 -preset fast
//	kappa -gen road:40000 -k 8 -eps 0.05 -seed 7
//	kappa -gen grid3d:32x32x8 -k 8 -progress -timeout 30s
//
// The serve/worker subcommands run the out-of-process backend — one
// coordinator plus one worker process per PE, byte-identical to the
// in-process `-coarsen distributed` run at the same seed:
//
//	kappa serve -in mesh.graph -k 8 -pes 2 -listen 127.0.0.1:2177 &
//	kappa worker -connect 127.0.0.1:2177 &
//	kappa worker -connect 127.0.0.1:2177
//
// The shard subcommand writes an out-of-core shard store that serve streams
// without holding the global graph in memory — same partition, same report:
//
//	kappa shard -in mesh.graph -pe 8 -dist rcb -o mesh.kst
//	kappa serve -shards mesh.kst -k 8 -listen 127.0.0.1:2177
//
// Configuration errors (bad preset, bad flag values, invalid parameter
// combinations) exit 2; runtime errors (missing files, exceeded -timeout)
// exit 1.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/part"
)

// stopProfiles flushes any active pprof output; it must run before every
// exit path, including failures — os.Exit skips defers, and a truncated CPU
// profile on a timed-out run is useless in exactly the situation the flag
// exists for.
var stopProfiles = func() {}

// fail prints the message and exits: usage and configuration errors exit 2
// (the Unix convention flag.Parse also follows), runtime errors exit 1.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "kappa:", err)
	stopProfiles()
	if errors.Is(err, core.ErrInvalidConfig) {
		os.Exit(2)
	}
	os.Exit(1)
}

func main() {
	// Subcommands: `kappa serve` runs the out-of-process coordinator,
	// `kappa worker` one PE process, `kappa api` the partitioner-as-a-service
	// daemon. Everything else is the classic single-process flag interface.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			runServe(os.Args[2:])
			return
		case "worker":
			runWorker(os.Args[2:])
			return
		case "api":
			runAPI(os.Args[2:])
			return
		case "shard":
			runShard(os.Args[2:])
			return
		}
	}
	var (
		inFile   = flag.String("in", "", "input graph file (METIS or binary; format sniffed)")
		genSpec  = flag.String("gen", "", "generator spec: rgg:S | delaunay:S | grid:WxH | grid3d:XxYxZ | road:N | social:N | rmat:S | fem:N | banded:N")
		k        = flag.Int("k", 2, "number of blocks")
		preset   = flag.String("preset", "fast", "minimal | fast | strong")
		eps      = flag.Float64("eps", 0.03, "allowed imbalance")
		seed     = flag.Uint64("seed", 0, "random seed")
		outFile  = flag.String("out", "", "write the block of each node, one per line")
		pes      = flag.Int("pes", 0, "number of simulated PEs for coarsening (default: k)")
		distFl   = flag.String("dist", "auto", "node-to-PE distribution: auto | ranges | rcb | sfc")
		coarsFl  = flag.String("coarsen", "shared", "coarsening mode: shared | distributed")
		eval     = flag.String("eval", "", "evaluate (and refine) an existing partition file instead of partitioning from scratch")
		progress = flag.Bool("progress", false, "print pipeline trace events (levels, init cut, refinement gains, phase times) to stderr")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (e.g. 30s); 0 = no limit")
		workers  = flag.Int("workers", 0, "goroutines for the data-parallel kernels (parallel contraction); 0 = GOMAXPROCS, 1 = serial. Results are identical for every value")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile (after the run, post-GC) to this file")
	)
	var ob obsFlags
	ob.register(flag.CommandLine)
	flag.Parse()

	if *cpuProf != "" || *memProf != "" {
		var cpuFile *os.File
		if *cpuProf != "" {
			f, err := os.Create(*cpuProf)
			if err != nil {
				fail(err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fail(err)
			}
			cpuFile = f
		}
		memPath := *memProf
		done := false
		stopProfiles = func() {
			if done {
				return
			}
			done = true
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "kappa:", err)
					return
				}
				defer f.Close()
				runtime.GC() // report live allocations, not garbage
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "kappa:", err)
				}
			}
		}
		defer stopProfiles()
	}

	g, err := loadGraph(*inFile, *genSpec)
	if err != nil {
		fail(err)
	}
	variant, err := parsePreset(*preset)
	if err != nil {
		fail(err)
	}
	cfg := core.NewConfig(variant, *k)
	cfg.Eps = *eps
	cfg.Seed = *seed
	cfg.PEs = *pes
	cfg.Workers = *workers
	strategy, err := dist.ParseStrategy(*distFl)
	if err != nil {
		fail(fmt.Errorf("%w: %v", core.ErrInvalidConfig, err))
	}
	cfg.Distribution = strategy
	mode, err := core.ParseCoarsenMode(*coarsFl)
	if err != nil {
		fail(fmt.Errorf("%w: %v", core.ErrInvalidConfig, err))
	}
	cfg.Coarsen = mode

	// SIGINT/SIGTERM cancel the run context: the pipeline unwinds between
	// kernels, profiles flush, and the process exits 1 — instead of dying
	// mid-write with a truncated -out file or an empty CPU profile.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var opts []core.Option
	if *progress {
		opts = append(opts, progressOption())
	}
	runObs, obsOpts, err := ob.setup(g, cfg)
	if err != nil {
		fail(err)
	}
	opts = append(opts, obsOpts...)

	if *eval != "" {
		blocks, err := readPartition(*eval, g.NumNodes())
		if err != nil {
			fail(err)
		}
		cut, bal, feasible := evalBlocks(g, *k, *eps, blocks)
		fmt.Printf("input partition: cut=%d balance=%.4f feasible=%v\n", cut, bal, feasible)
		refined, rcut, err := core.RefineExistingCtx(ctx, g, cfg, blocks, opts...)
		if err != nil {
			fail(err)
		}
		_, rbal, rfeasible := evalBlocks(g, *k, *eps, refined)
		fmt.Printf("after refining:  cut=%d balance=%.4f feasible=%v\n", rcut, rbal, rfeasible)
		if *outFile != "" {
			writePartition(*outFile, refined)
		}
		return
	}

	res, err := core.Run(ctx, g, cfg, opts...)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fail(fmt.Errorf("run exceeded -timeout %v: %v", *timeout, err))
		}
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			fail(fmt.Errorf("interrupted: %v", err))
		}
		fail(err)
	}
	if err := runObs.finish(res); err != nil {
		fail(err)
	}
	p := part.FromBlocks(g, *k, *eps, res.Blocks)
	sum := ob.summaryWriter()
	fmt.Fprintf(sum, "graph     n=%d m=%d\n", g.NumNodes(), g.NumEdges())
	fmt.Fprintf(sum, "preset    %s (k=%d, eps=%.2f, dist=%s, coarsen=%s)\n", variant, *k, *eps, strategy, mode)
	fmt.Fprintf(sum, "cut       %d\n", res.Cut)
	fmt.Fprintf(sum, "balance   %.4f (Lmax %d, feasible %v)\n", res.Balance, p.Lmax(), p.Feasible())
	fmt.Fprintf(sum, "levels    %d\n", res.Levels)
	fmt.Fprintf(sum, "time      total %v (coarsen %v, init %v, refine %v)\n",
		res.TotalTime.Round(1e6), res.CoarsenTime.Round(1e6), res.InitTime.Round(1e6), res.RefineTime.Round(1e6))

	if *outFile != "" {
		writePartition(*outFile, res.Blocks)
		fmt.Fprintf(sum, "partition written to %s\n", *outFile)
	}
}

func evalBlocks(g *graph.Graph, k int, eps float64, blocks []int32) (int64, float64, bool) {
	p := part.FromBlocks(g, k, eps, blocks)
	return p.Cut(), p.Imbalance(), p.Feasible()
}

// readPartition parses a one-block-per-line partition file.
func readPartition(path string, n int) ([]int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	blocks := make([]int32, 0, n)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("bad partition line %q: %w", line, err)
		}
		blocks = append(blocks, int32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(blocks) != n {
		return nil, fmt.Errorf("partition file has %d entries, graph has %d nodes", len(blocks), n)
	}
	return blocks, nil
}

func writePartition(path string, blocks []int32) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	w := bufio.NewWriter(f)
	for _, b := range blocks {
		fmt.Fprintln(w, b)
	}
	w.Flush()
	f.Close()
}

// loadGraph resolves the input: usage errors (bad generator spec, neither
// -in nor -gen) wrap ErrInvalidConfig so they exit 2; I/O errors (missing
// or unreadable file) stay runtime errors and exit 1.
func loadGraph(inFile, genSpec string) (*graph.Graph, error) {
	switch {
	case inFile != "":
		// Format is sniffed from the content, so -in takes METIS text and
		// binary .bgraph files alike.
		return graphio.ReadFile(inFile)
	case genSpec != "":
		g, err := generate(genSpec)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", core.ErrInvalidConfig, err)
		}
		return g, nil
	default:
		return nil, fmt.Errorf("%w: need -in or -gen", core.ErrInvalidConfig)
	}
}

// generate delegates to the validated spec parser shared with the service
// layer, so CLI and API jobs accept exactly the same generator vocabulary.
func generate(spec string) (*graph.Graph, error) {
	return gen.FromSpec(spec)
}
