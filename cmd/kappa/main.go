// Command kappa partitions a graph with the KaPPa partitioner.
//
// The input is either a METIS-format graph file or a named synthetic
// generator. Examples:
//
//	kappa -in mesh.graph -k 16 -preset strong -out mesh.part
//	kappa -gen rgg:15 -k 64 -preset fast
//	kappa -gen road:40000 -k 8 -eps 0.05 -seed 7
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
)

func main() {
	var (
		inFile  = flag.String("in", "", "input graph in METIS format")
		genSpec = flag.String("gen", "", "generator spec: rgg:S | delaunay:S | grid:WxH | grid3d:XxYxZ | road:N | social:N | rmat:S | fem:N | banded:N")
		k       = flag.Int("k", 2, "number of blocks")
		preset  = flag.String("preset", "fast", "minimal | fast | strong")
		eps     = flag.Float64("eps", 0.03, "allowed imbalance")
		seed    = flag.Uint64("seed", 0, "random seed")
		outFile = flag.String("out", "", "write the block of each node, one per line")
		pes     = flag.Int("pes", 0, "number of simulated PEs for coarsening (default: k)")
		distFl  = flag.String("dist", "auto", "node-to-PE distribution: auto | ranges | rcb | sfc")
		coarsFl = flag.String("coarsen", "shared", "coarsening mode: shared | distributed")
		eval    = flag.String("eval", "", "evaluate (and refine) an existing partition file instead of partitioning from scratch")
	)
	flag.Parse()

	g, err := loadGraph(*inFile, *genSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kappa:", err)
		os.Exit(1)
	}
	var variant core.Variant
	switch strings.ToLower(*preset) {
	case "minimal":
		variant = core.Minimal
	case "fast":
		variant = core.Fast
	case "strong":
		variant = core.Strong
	default:
		fmt.Fprintf(os.Stderr, "kappa: unknown preset %q\n", *preset)
		os.Exit(1)
	}
	cfg := core.NewConfig(variant, *k)
	cfg.Eps = *eps
	cfg.Seed = *seed
	cfg.PEs = *pes
	strategy, err := dist.ParseStrategy(*distFl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kappa:", err)
		os.Exit(1)
	}
	cfg.Distribution = strategy
	mode, err := core.ParseCoarsenMode(*coarsFl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kappa:", err)
		os.Exit(1)
	}
	cfg.Coarsen = mode

	if *eval != "" {
		blocks, err := readPartition(*eval, g.NumNodes())
		if err != nil {
			fmt.Fprintln(os.Stderr, "kappa:", err)
			os.Exit(1)
		}
		cut, bal, feasible := evalBlocks(g, *k, *eps, blocks)
		fmt.Printf("input partition: cut=%d balance=%.4f feasible=%v\n", cut, bal, feasible)
		refined, rcut := core.RefineExisting(g, cfg, blocks)
		rcutCheck, rbal, rfeasible := evalBlocks(g, *k, *eps, refined)
		_ = rcutCheck
		fmt.Printf("after refining:  cut=%d balance=%.4f feasible=%v\n", rcut, rbal, rfeasible)
		if *outFile != "" {
			writePartition(*outFile, refined)
		}
		return
	}

	res := core.Partition(g, cfg)
	p := part.FromBlocks(g, *k, *eps, res.Blocks)
	fmt.Printf("graph     n=%d m=%d\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("preset    %s (k=%d, eps=%.2f, dist=%s, coarsen=%s)\n", variant, *k, *eps, strategy, mode)
	fmt.Printf("cut       %d\n", res.Cut)
	fmt.Printf("balance   %.4f (Lmax %d, feasible %v)\n", res.Balance, p.Lmax(), p.Feasible())
	fmt.Printf("levels    %d\n", res.Levels)
	fmt.Printf("time      total %v (coarsen %v, init %v, refine %v)\n",
		res.TotalTime.Round(1e6), res.CoarsenTime.Round(1e6), res.InitTime.Round(1e6), res.RefineTime.Round(1e6))

	if *outFile != "" {
		writePartition(*outFile, res.Blocks)
		fmt.Printf("partition written to %s\n", *outFile)
	}
}

func evalBlocks(g *graph.Graph, k int, eps float64, blocks []int32) (int64, float64, bool) {
	p := part.FromBlocks(g, k, eps, blocks)
	return p.Cut(), p.Imbalance(), p.Feasible()
}

// readPartition parses a one-block-per-line partition file.
func readPartition(path string, n int) ([]int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	blocks := make([]int32, 0, n)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("bad partition line %q: %w", line, err)
		}
		blocks = append(blocks, int32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(blocks) != n {
		return nil, fmt.Errorf("partition file has %d entries, graph has %d nodes", len(blocks), n)
	}
	return blocks, nil
}

func writePartition(path string, blocks []int32) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kappa:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(f)
	for _, b := range blocks {
		fmt.Fprintln(w, b)
	}
	w.Flush()
	f.Close()
}

func loadGraph(inFile, genSpec string) (*graph.Graph, error) {
	switch {
	case inFile != "":
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadMetis(f)
	case genSpec != "":
		return generate(genSpec)
	default:
		return nil, fmt.Errorf("need -in or -gen")
	}
}

func generate(spec string) (*graph.Graph, error) {
	kind, arg, _ := strings.Cut(spec, ":")
	atoi := func(s string) int {
		v, err := strconv.Atoi(s)
		if err != nil {
			return -1
		}
		return v
	}
	switch kind {
	case "rgg":
		return gen.RGG(atoi(arg), 1), nil
	case "delaunay":
		return gen.DelaunayX(atoi(arg), 1), nil
	case "grid":
		w, h, ok := strings.Cut(arg, "x")
		if !ok {
			return nil, fmt.Errorf("grid spec must be WxH")
		}
		return gen.Grid2D(atoi(w), atoi(h)), nil
	case "grid3d":
		parts := strings.Split(arg, "x")
		if len(parts) != 3 {
			return nil, fmt.Errorf("grid3d spec must be XxYxZ")
		}
		return gen.Grid3D(atoi(parts[0]), atoi(parts[1]), atoi(parts[2])), nil
	case "road":
		return gen.Road(atoi(arg), 8, 1), nil
	case "social":
		return gen.PrefAttach(atoi(arg), 5, 1), nil
	case "rmat":
		return gen.RMAT(atoi(arg), 10, 1), nil
	case "fem":
		return gen.FEMMesh(atoi(arg), 8, 1), nil
	case "banded":
		return gen.Banded(atoi(arg), 10, 30, 0.7, 1), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", kind)
	}
}
