package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/remote"
	"repro/internal/store"
	"repro/internal/wire"
)

// runServe is the `kappa serve` subcommand: the coordinator of the
// out-of-process backend. It loads (or generates) the graph, listens for
// -pes worker processes, distributes the contraction phase across them, and
// runs initial partitioning and refinement locally — the paper's
// one-process-per-PE model over sockets. Results are byte-identical to the
// in-process `kappa -coarsen distributed` run at the same seed.
func runServe(args []string) {
	fs := flag.NewFlagSet("kappa serve", flag.ExitOnError)
	var (
		inFile   = fs.String("in", "", "input graph file (METIS or binary; format sniffed)")
		genSpec  = fs.String("gen", "", "generator spec (see kappa -gen)")
		shards   = fs.String("shards", "", "serve from an on-disk shard store directory (kappa shard output); the coordinator streams shard files and never materializes the global adjacency")
		k        = fs.Int("k", 2, "number of blocks")
		preset   = fs.String("preset", "fast", "minimal | fast | strong")
		eps      = fs.Float64("eps", 0.03, "allowed imbalance")
		seed     = fs.Uint64("seed", 0, "random seed")
		pes      = fs.Int("pes", 0, "number of worker processes to wait for (default: k)")
		distFl   = fs.String("dist", "auto", "node-to-PE distribution: auto | ranges | rcb | sfc")
		listen   = fs.String("listen", "127.0.0.1:2177", "address to accept workers on (host:port, or a path with -network unix)")
		network  = fs.String("network", "tcp", "listener network: tcp | unix")
		outFile  = fs.String("out", "", "write the block of each node, one per line")
		progress = fs.Bool("progress", false, "print pipeline trace events to stderr")
		timeout  = fs.Duration("timeout", 0, "abort the run after this duration; 0 = no limit")
		wtimeout = fs.Duration("worker-timeout", 0,
			"declare a worker dead when it is silent for this long (bounds every control and transport frame); 0 = wait forever")
		hbeat = fs.Duration("heartbeat", 0,
			"interval of coordinator heartbeats that keep workers alive during local phases; 0 = none")
		maxFrame = fs.Uint64("max-frame", 0,
			"decode budget: largest control-frame payload accepted from workers, in bytes; 0 = built-in default")
	)
	var ob obsFlags
	ob.register(fs)
	fs.Parse(args)
	if *maxFrame != 0 {
		wire.SetMaxFrame(*maxFrame)
	}

	// Input: a graph (-in/-gen) the coordinator holds in memory, or a shard
	// store (-shards) it streams from disk. With -shards the graph variable
	// is a memory-mapped view of the store's CSR segment — observability and
	// the summary read through it at O(1) heap cost.
	var g *graph.Graph
	var st *store.Store
	switch {
	case *shards != "":
		if *inFile != "" || *genSpec != "" {
			fail(fmt.Errorf("%w: -shards replaces -in/-gen (the store IS the graph)", core.ErrInvalidConfig))
		}
		var err error
		st, err = store.Open(*shards)
		if err != nil {
			fail(err)
		}
		mg, err := st.MapGraph()
		if err != nil {
			fail(err)
		}
		defer mg.Close()
		g = mg.G
	default:
		var err error
		g, err = loadGraph(*inFile, *genSpec)
		if err != nil {
			fail(err)
		}
	}
	variant, err := parsePreset(*preset)
	if err != nil {
		fail(err)
	}
	cfg := core.NewConfig(variant, *k)
	cfg.Eps = *eps
	cfg.Seed = *seed
	cfg.PEs = *pes
	strategy, err := dist.ParseStrategy(*distFl)
	if err != nil {
		fail(fmt.Errorf("%w: %v", core.ErrInvalidConfig, err))
	}
	cfg.Distribution = strategy
	cfg.Coarsen = core.CoarsenDistributed
	if st != nil {
		// Adopt the manifest's shape before anything sizes itself off cfg
		// (transport stats, the handshake's worker count, the report). A
		// conflicting -pes or -dist fails here rather than mid-handshake.
		m := st.Manifest()
		if cfg.PEs != 0 && cfg.PEs != m.PEs {
			fail(fmt.Errorf("%w: -pes %d but the store holds %d shards", core.ErrInvalidConfig, cfg.PEs, m.PEs))
		}
		cfg.PEs = m.PEs
		mstrat, err := dist.ParseStrategy(m.Strategy)
		if err != nil {
			fail(err)
		}
		if strategy != mstrat && strategy != dist.StrategyAuto {
			fail(fmt.Errorf("%w: -dist %s but the shards were extracted under %s", core.ErrInvalidConfig, strategy, mstrat))
		}
		strategy = mstrat
		cfg.Distribution = mstrat
	}

	// SIGINT/SIGTERM cancel the coordination context: workers see the
	// connection close, cleanup runs, and the process exits 1.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var opts []core.Option
	if *progress {
		opts = append(opts, progressOption())
	}
	runObs, obsOpts, err := ob.setup(g, cfg)
	if err != nil {
		fail(err)
	}
	opts = append(opts, obsOpts...)

	ln, err := net.Listen(*network, *listen)
	if err != nil {
		fail(err)
	}
	defer ln.Close()
	fmt.Fprintf(os.Stderr, "kappa: serving on %s, waiting for %d workers\n", ln.Addr(), cfg.NumPEs())

	counters := &remote.Counters{}
	runObs.bindRemote(counters)
	so := remote.ServeOptions{
		Stats:         runObs.transportStats(),
		WorkerTimeout: *wtimeout,
		Heartbeat:     *hbeat,
		Counters:      counters,
	}
	var res core.Result
	if st != nil {
		res, err = remote.ServeStore(ctx, ln, st, cfg, so, opts...)
	} else {
		res, err = remote.ServeWith(ctx, ln, g, cfg, so, opts...)
	}
	if err != nil {
		fail(err)
	}
	if err := runObs.finish(res); err != nil {
		fail(err)
	}
	p := part.FromBlocks(g, *k, *eps, res.Blocks)
	sum := ob.summaryWriter()
	fmt.Fprintf(sum, "graph     n=%d m=%d\n", g.NumNodes(), g.NumEdges())
	fmt.Fprintf(sum, "preset    %s (k=%d, eps=%.2f, dist=%s, pes=%d workers)\n", variant, *k, *eps, strategy, cfg.NumPEs())
	if st != nil {
		fmt.Fprintf(sum, "store     %s (%d shards streamed, global CSR memory-mapped)\n", *shards, counters.Snapshot().ShardsStreamed)
	}
	if s := counters.Snapshot(); s.WorkerFailures+s.Reassignments+s.LocalFallbacks+s.LevelRetries > 0 {
		fmt.Fprintf(sum, "faults    workers_failed=%d reassigned=%d level_retries=%d local_fallbacks=%d\n",
			s.WorkerFailures, s.Reassignments, s.LevelRetries, s.LocalFallbacks)
	}
	fmt.Fprintf(sum, "cut       %d\n", res.Cut)
	fmt.Fprintf(sum, "balance   %.4f (Lmax %d, feasible %v)\n", res.Balance, p.Lmax(), p.Feasible())
	fmt.Fprintf(sum, "levels    %d\n", res.Levels)
	fmt.Fprintf(sum, "time      total %v (coarsen %v, init %v, refine %v)\n",
		res.TotalTime.Round(1e6), res.CoarsenTime.Round(1e6), res.InitTime.Round(1e6), res.RefineTime.Round(1e6))
	if *outFile != "" {
		writePartition(*outFile, res.Blocks)
		fmt.Fprintf(sum, "partition written to %s\n", *outFile)
	}
}

// runWorker is the `kappa worker` subcommand: one processing element of the
// out-of-process backend. It connects to a coordinator, receives its PE
// assignment and per-level subgraph shards, and runs the PE-local
// matching/contraction kernels over the socket transport.
func runWorker(args []string) {
	fs := flag.NewFlagSet("kappa worker", flag.ExitOnError)
	var (
		connect = fs.String("connect", "127.0.0.1:2177", "coordinator address")
		network = fs.String("network", "tcp", "coordinator network: tcp | unix")
		outFile = fs.String("out", "", "write the final partition broadcast by the coordinator, one block per line")
		timeout = fs.Duration("timeout", 0, "give up after this duration; 0 = no limit")
		retry   = fs.Int("retry", 1, "connection attempts before giving up (handshake retries with backoff)")
		backoff = fs.Duration("backoff", 200*time.Millisecond,
			"base delay between connection attempts (exponential with jitter, capped at 16x)")
		dialTO = fs.Duration("dial-timeout", 0, "bound on each individual connection attempt; 0 = none")
		hbeat  = fs.Duration("heartbeat", 0,
			"interval of worker heartbeats that keep the coordinator's deadline refreshed; 0 = a quarter of the announced worker timeout")
		faultsFl = fs.String("faults", "",
			"fault-injection schedule for chaos testing, e.g. 'ctrl:read:3:kill;pe0:write:2:delay:50ms'")
		maxFrame = fs.Uint64("max-frame", 0,
			"decode budget: largest control-frame payload accepted from the coordinator, in bytes; 0 = built-in default")
	)
	fs.Parse(args)
	if *maxFrame != 0 {
		wire.SetMaxFrame(*maxFrame)
	}

	// SIGINT/SIGTERM cancel the worker context: the in-flight superstep
	// aborts, the connection closes, and the process exits 1.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	faults, err := dist.ParseFaultSchedule(*faultsFl)
	if err != nil {
		fail(fmt.Errorf("%w: %v", core.ErrInvalidConfig, err))
	}
	wo := remote.WorkOptions{
		Retry: remote.RetryPolicy{
			Attempts: *retry,
			Timeout:  *dialTO,
			Backoff:  *backoff,
			Seed:     uint64(os.Getpid()),
		},
		Heartbeat: *hbeat,
		Faults:    faults,
	}
	wr, err := remote.WorkWith(ctx, *network, *connect, wo)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "kappa: worker PE %d done after %d levels\n", wr.PE, wr.Levels)
	if *outFile != "" && wr.Partition != nil {
		writePartition(*outFile, wr.Partition)
	}
}

// parsePreset maps a preset name to its variant, via the parser shared with
// the service layer.
func parsePreset(name string) (core.Variant, error) {
	return core.ParseVariant(name)
}
