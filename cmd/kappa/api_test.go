package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// waitHTTP polls url until it answers 200 or the deadline passes.
func waitHTTP(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became healthy (last err %v)", url, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// httpGetBody fetches url and returns the body, failing on non-2xx.
func httpGetBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return body
}

// TestAPIServerJobMatchesCLI is the process-level half of the service
// contract: a real kappad process partitions a job submitted over HTTP and
// the partition and ZeroTimes report are byte-identical to what the kappa
// CLI writes for the same flags — then a SIGTERM drains the daemon to a
// clean exit 0.
func TestAPIServerJobMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	kappa, _ := buildBinaries(t)

	// The CLI reference artifacts.
	outFile := filepath.Join(t.TempDir(), "cli.part")
	args := []string{"-gen", "rgg:10", "-k", "4", "-seed", "7",
		"-workers", "2", "-coarsen", "distributed", "-out", outFile}
	if out, err := exec.Command(kappa, args...).CombinedOutput(); err != nil {
		t.Fatalf("kappa CLI: %v\n%s", err, out)
	}
	cliPart, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	cliReport := runKappaReport(t, kappa)

	// The daemon.
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	base := "http://" + addr
	var stderr bytes.Buffer
	daemon := exec.Command(kappa, "api", "-listen", addr, "-queue", "4", "-jobs", "1")
	daemon.Stderr = &stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()
	waitHTTP(t, base+"/healthz")
	waitHTTP(t, base+"/readyz")

	spec := `{"gen":"rgg:10","k":4,"seed":7,"workers":2,"coarsen":"distributed"}`
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit body %q: %v", body, err)
	}

	deadline := time.Now().Add(60 * time.Second)
	for st.State != "done" {
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("job %s: %s (%s)", st.ID, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(25 * time.Millisecond)
		if err := json.Unmarshal(httpGetBody(t, base+"/api/v1/jobs/"+st.ID), &st); err != nil {
			t.Fatal(err)
		}
	}

	apiPart := httpGetBody(t, base+"/api/v1/jobs/"+st.ID+"/result")
	if !bytes.Equal(apiPart, cliPart) {
		t.Fatalf("API partition differs from CLI -out (%d vs %d bytes)", len(apiPart), len(cliPart))
	}
	apiReport := httpGetBody(t, base+"/api/v1/jobs/"+st.ID+"/report?zero=1")
	if !bytes.Equal(apiReport, cliReport) {
		t.Fatalf("API zero-report differs from CLI -report:\n--- api ---\n%s\n--- cli ---\n%s", apiReport, cliReport)
	}

	// The kappa_jobs_* series are live on the same endpoint.
	metrics := string(httpGetBody(t, base+"/metrics"))
	for _, series := range []string{"kappa_jobs_submitted_total", "kappa_jobs_done_total", "kappa_jobs_queue_wait_seconds"} {
		if !strings.Contains(metrics, series) {
			t.Fatalf("/metrics lacks %s", series)
		}
	}

	// SIGTERM drains to exit 0 — the graceful path, not a kill.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Fatalf("daemon stderr lacks drain message:\n%s", stderr.String())
	}
}

// TestRunPathInterruptExitsOne pins the signal satellite on the classic CLI
// path: SIGINT cancels the run context and the process exits 1 with an
// "interrupted" diagnostic instead of dying mid-write.
func TestRunPathInterruptExitsOne(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	kappa, _ := buildBinaries(t)
	var stderr bytes.Buffer
	// A run big enough to be mid-pipeline when the signal lands.
	cmd := exec.Command(kappa, "-gen", "rgg:15", "-k", "32", "-preset", "strong")
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // let it install handlers and start
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	exit, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("kappa exited %v after SIGINT, want exit code 1\nstderr:\n%s", err, stderr.String())
	}
	if exit.ExitCode() != 1 {
		t.Fatalf("exit code %d after SIGINT, want 1\nstderr:\n%s", exit.ExitCode(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Fatalf("stderr lacks interrupted diagnostic:\n%s", stderr.String())
	}
}
