package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/store"
)

// runShard is the `kappa shard` subcommand: it partitions a graph's nodes
// across PEs with a distribution strategy and writes an on-disk shard store —
// one wire-encoded subgraph file per PE, a fixed-layout CSR segment, and a
// manifest — that `kappa serve -shards` later streams without ever holding
// the global adjacency on the coordinator's heap.
func runShard(args []string) {
	fs := flag.NewFlagSet("kappa shard", flag.ExitOnError)
	var (
		inFile  = fs.String("in", "", "input graph file (METIS or binary; format sniffed)")
		genSpec = fs.String("gen", "", "generator spec (see kappa -gen)")
		pes     = fs.Int("pe", 0, "number of shards (one per worker PE); required")
		distFl  = fs.String("dist", "auto", "node-to-PE distribution: auto | ranges | rcb | sfc")
		outDir  = fs.String("o", "", "output store directory (created if missing); required")
		workers = fs.Int("workers", 0, "goroutines writing shards concurrently; 0 = GOMAXPROCS")
		seed    = fs.Uint64("seed", 0, "run seed recorded in the manifest (provenance only)")
	)
	fs.Parse(args)

	if *outDir == "" {
		fail(fmt.Errorf("%w: need -o (output store directory)", core.ErrInvalidConfig))
	}
	if *pes < 1 {
		fail(fmt.Errorf("%w: need -pe >= 1 (one shard per worker PE)", core.ErrInvalidConfig))
	}
	strategy, err := dist.ParseStrategy(*distFl)
	if err != nil {
		fail(fmt.Errorf("%w: %v", core.ErrInvalidConfig, err))
	}
	g, err := loadGraph(*inFile, *genSpec)
	if err != nil {
		fail(err)
	}

	m, err := store.Write(*outDir, g, store.WriteOptions{
		PEs:      *pes,
		Strategy: strategy,
		Workers:  *workers,
		Seed:     *seed,
	})
	if err != nil {
		fail(err)
	}

	var shardBytes int64
	for i := range m.Shards {
		shardBytes += m.Shards[i].Bytes
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stdout, "graph     n=%d m=%d\n", m.Nodes, m.Edges)
	fmt.Fprintf(os.Stdout, "store     %s (%d shards, dist=%s, %d writers)\n", *outDir, m.PEs, m.Strategy, w)
	fmt.Fprintf(os.Stdout, "bytes     shards %d, csr %d\n", shardBytes, m.CSR.Bytes)
	fmt.Fprintf(os.Stdout, "serve     kappa serve -shards %s -k <k> -seed <seed>\n", *outDir)
}
