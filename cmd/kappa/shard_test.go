package main

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graphio"
)

// TestShardServeMatchesInProcess is the CLI equivalence test of the
// out-of-core path: `kappa shard` writes a store from a gengraph file,
// `kappa serve -shards` streams it to two real worker processes, and the
// resulting partition must be byte-identical to the in-process distributed
// run over the same file at the same seed. This is the same contract the
// in-process internal/remote suite pins, here across the actual binaries.
func TestShardServeMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	kappa, gengraph := buildBinaries(t)
	dir := t.TempDir()
	graphFile := filepath.Join(dir, "rgg.graph")
	storeDir := filepath.Join(dir, "rgg.kst")

	if out, err := exec.Command(gengraph, "-type", "rgg", "-scale", "10", "-seed", "5", "-o", graphFile).CombinedOutput(); err != nil {
		t.Fatalf("gengraph: %v\n%s", err, out)
	}
	if out, err := exec.Command(kappa, "shard", "-in", graphFile, "-pe", "2", "-dist", "rcb", "-o", storeDir).CombinedOutput(); err != nil {
		t.Fatalf("kappa shard: %v\n%s", err, out)
	}

	const k, pes, seed = 8, 2, 31337
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	partFile := filepath.Join(dir, "store.part")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	serve := exec.CommandContext(ctx, kappa, "serve",
		"-shards", storeDir, "-k", strconv.Itoa(k),
		"-seed", strconv.Itoa(seed), "-listen", addr, "-out", partFile)
	serveOut, err := serve.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	serve.Stderr = os.Stderr
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}

	workers := make([]*exec.Cmd, pes)
	for i := range workers {
		workers[i] = exec.CommandContext(ctx, kappa, "worker", "-connect", addr, "-timeout", "90s")
		var started bool
		for try := 0; try < 100; try++ {
			conn, err := net.Dial("tcp", addr)
			if err == nil {
				conn.Close()
				started = true
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if !started {
			t.Fatal("coordinator never listened")
		}
		if err := workers[i].Start(); err != nil {
			t.Fatal(err)
		}
	}

	// The summary's store line proves the splice path ran: every shard must
	// have been streamed from disk rather than extracted from a live CSR.
	var streamed = -1
	sc := bufio.NewScanner(serveOut)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "store"); ok {
			if i := strings.Index(rest, "("); i >= 0 {
				if n, err := strconv.Atoi(strings.Fields(rest[i+1:])[0]); err == nil {
					streamed = n
				}
			}
		}
	}
	if err := serve.Wait(); err != nil {
		t.Fatalf("serve: %v", err)
	}
	for i, w := range workers {
		if err := w.Wait(); err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if streamed != pes {
		t.Errorf("summary reports %d shards streamed, want %d", streamed, pes)
	}

	g, err := graphio.ReadFile(graphFile)
	if err != nil {
		t.Fatal(err)
	}
	// The serve run left -dist at auto; the manifest's rcb strategy must win,
	// so the reference run pins rcb explicitly.
	rcb, err := dist.ParseStrategy("rcb")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.NewConfig(core.Fast, k)
	cfg.Seed = seed
	cfg.PEs = pes
	cfg.Distribution = rcb
	cfg.Coarsen = core.CoarsenDistributed
	want, err := core.Run(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	got, err := readPartition(partFile, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	for v := range got {
		if got[v] != want.Blocks[v] {
			t.Fatalf("partition diverges at node %d: %d vs %d", v, got[v], want.Blocks[v])
		}
	}
}

// TestShardRejectsDirectoryInput pins the diagnostic for the easy mistake of
// pointing -in at a store directory: exit 1 with a message that names the
// right entry point, not an opaque decode error.
func TestShardRejectsDirectoryInput(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	kappa, gengraph := buildBinaries(t)
	dir := t.TempDir()
	graphFile := filepath.Join(dir, "g.graph")
	storeDir := filepath.Join(dir, "g.kst")
	if out, err := exec.Command(gengraph, "-type", "grid", "-w", "16", "-h", "16", "-o", graphFile).CombinedOutput(); err != nil {
		t.Fatalf("gengraph: %v\n%s", err, out)
	}
	if out, err := exec.Command(kappa, "shard", "-in", graphFile, "-pe", "2", "-o", storeDir).CombinedOutput(); err != nil {
		t.Fatalf("kappa shard: %v\n%s", err, out)
	}

	out, err := exec.Command(kappa, "-in", storeDir, "-k", "4").CombinedOutput()
	if err == nil {
		t.Fatalf("kappa -in <store dir> succeeded; want failure\n%s", out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "directory") || !strings.Contains(string(out), "-shards") {
		t.Fatalf("diagnostic should name the shard-store entry points:\n%s", out)
	}
}
