package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// runKappaReport runs the real kappa binary with -report and returns the
// report with its scheduling-dependent fields zeroed.
func runKappaReport(t *testing.T, kappa string, extra ...string) []byte {
	t.Helper()
	reportFile := filepath.Join(t.TempDir(), "run.json")
	args := append([]string{"-gen", "rgg:10", "-k", "4", "-seed", "7",
		"-workers", "2", "-coarsen", "distributed", "-report", reportFile}, extra...)
	if out, err := exec.Command(kappa, args...).CombinedOutput(); err != nil {
		t.Fatalf("kappa -report: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(reportFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, raw)
	}
	rep.ZeroTimes()
	var buf bytes.Buffer
	if _, err := rep.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestKappaReportDeterministic is the CLI half of the report contract: two
// fixed-seed invocations of the real binary produce byte-identical reports
// once the scheduling-dependent fields are zeroed, and the report carries
// every section.
func TestKappaReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	kappa, _ := buildBinaries(t)
	a := runKappaReport(t, kappa)
	b := runKappaReport(t, kappa)
	if !bytes.Equal(a, b) {
		t.Fatalf("reports differ across identical runs:\n--- first\n%s\n--- second\n%s", a, b)
	}
	var rep obs.Report
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Graph.Nodes != 1<<10 || rep.Config.K != 4 || rep.Config.Seed != 7 {
		t.Fatalf("report header wrong: %+v %+v", rep.Graph, rep.Config)
	}
	if len(rep.Levels) == 0 || len(rep.Phases) != 4 || rep.Result.Cut <= 0 {
		t.Fatalf("report body incomplete: %d levels, %d phases, cut %d",
			len(rep.Levels), len(rep.Phases), rep.Result.Cut)
	}
	if len(rep.Transport) == 0 || rep.Arena == nil || rep.Arena.Borrows == 0 {
		t.Fatalf("report lacks transport/arena sections: %s", a)
	}
}

// TestKappaReportStdout pins the `-report -` contract: stdout is exactly one
// parseable JSON document (the human summary moves to stderr).
func TestKappaReportStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	kappa, _ := buildBinaries(t)
	cmd := exec.Command(kappa, "-gen", "rgg:10", "-k", "4", "-seed", "7", "-report", "-")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("kappa -report -: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(stdout.Bytes()))
	var rep obs.Report
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, stdout.String())
	}
	if dec.More() {
		t.Fatalf("stdout carries extra data after the report:\n%s", stdout.String())
	}
	if rep.Result.Cut <= 0 {
		t.Fatalf("report result missing: %+v", rep.Result)
	}
	if !strings.Contains(stderr.String(), "cut") {
		t.Fatalf("human summary not on stderr:\n%s", stderr.String())
	}
}

// TestKappaMetricsEndpoint runs the binary with -metrics :0 and -metrics-hold,
// scrapes /metrics and /metrics.json while the endpoint lingers, and checks
// the scrape reflects the finished run.
func TestKappaMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	kappa, _ := buildBinaries(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, kappa, "-gen", "rgg:10", "-k", "4", "-seed", "7",
		"-metrics", "127.0.0.1:0", "-metrics-hold", "30s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The binary announces the bound address on stderr.
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "kappa: metrics on http://"); ok {
			addr = strings.TrimSuffix(strings.Fields(rest)[0], "/metrics")
			addr = strings.TrimSuffix(addr, "/")
		}
		if strings.Contains(line, "holding metrics endpoint") {
			break
		}
	}
	if addr == "" {
		t.Fatal("kappa never announced its metrics address")
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained while we scrape

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"# TYPE kappa_runs_total counter",
		"kappa_runs_total 1",
		"kappa_phase_seconds_bucket",
		"kappa_arena_borrows_total",
		"kappa_last_cut",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics is missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get("http://" + addr + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if len(snap.Metrics) == 0 {
		t.Fatal("/metrics.json snapshot is empty")
	}
}
