package main

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graphio"
)

// buildBinaries compiles kappa and gengraph into a temp dir — the real
// artifacts users run, so the test exercises the exact CLI surface.
func buildBinaries(t *testing.T) (kappa, gengraph string) {
	t.Helper()
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	kappa = filepath.Join(dir, "kappa")
	gengraph = filepath.Join(dir, "gengraph")
	for bin, pkg := range map[string]string{kappa: "repro/cmd/kappa", gengraph: "repro/cmd/gengraph"} {
		cmd := exec.Command(goTool, "build", "-o", bin, pkg)
		cmd.Dir = moduleRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
	return kappa, gengraph
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// freePort reserves a localhost TCP port for the coordinator.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// TestServeWorkerProcessesMatchInProcess is the two-process equivalence
// test of the out-of-process backend: a coordinator and two workers run as
// separate OS processes on a METIS file written by the gengraph binary, and
// the resulting partition must be byte-identical to the in-process
// Exchanger run of the library at the same seed.
func TestServeWorkerProcessesMatchInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	kappa, gengraph := buildBinaries(t)
	dir := t.TempDir()
	graphFile := filepath.Join(dir, "rgg.graph")

	// Satellite: gengraph -o/-format flags write through the new codec layer.
	if out, err := exec.Command(gengraph, "-type", "rgg", "-scale", "10", "-seed", "5", "-o", graphFile).CombinedOutput(); err != nil {
		t.Fatalf("gengraph: %v\n%s", err, out)
	}

	const k, pes, seed = 8, 2, 31337
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	partFile := filepath.Join(dir, "serve.part")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	serve := exec.CommandContext(ctx, kappa, "serve",
		"-in", graphFile, "-k", strconv.Itoa(k), "-pes", strconv.Itoa(pes),
		"-seed", strconv.Itoa(seed), "-listen", addr, "-out", partFile)
	serveOut, err := serve.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	serve.Stderr = os.Stderr
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}

	// Workers retry the dial until the coordinator listens.
	workers := make([]*exec.Cmd, pes)
	for i := range workers {
		workers[i] = exec.CommandContext(ctx, kappa, "worker", "-connect", addr, "-timeout", "90s")
		var started bool
		for try := 0; try < 100; try++ {
			conn, err := net.Dial("tcp", addr)
			if err == nil {
				conn.Close()
				started = true
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if !started {
			t.Fatal("coordinator never listened")
		}
		if err := workers[i].Start(); err != nil {
			t.Fatal(err)
		}
	}

	var cut int64 = -1
	sc := bufio.NewScanner(serveOut)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "cut"); ok {
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				t.Fatalf("parsing cut line %q: %v", sc.Text(), err)
			}
			cut = v
		}
	}
	if err := serve.Wait(); err != nil {
		t.Fatalf("serve: %v", err)
	}
	for i, w := range workers {
		if err := w.Wait(); err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	// In-process reference run over the same file, same seed.
	g, err := graphio.ReadFile(graphFile)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.NewConfig(core.Fast, k)
	cfg.Seed = seed
	cfg.PEs = pes
	cfg.Coarsen = core.CoarsenDistributed
	want, err := core.Run(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cut != want.Cut {
		t.Errorf("multi-process cut %d, in-process cut %d", cut, want.Cut)
	}

	got, err := readPartition(partFile, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	for v := range got {
		if got[v] != want.Blocks[v] {
			t.Fatalf("partition diverges at node %d: %d vs %d", v, got[v], want.Blocks[v])
		}
	}
}

// TestServeChaosWorkerKillProcesses is the cross-process chaos smoke: three
// real worker processes, one launched with a seeded fault schedule that
// kills its control connection while it sends its first level result. The
// coordinator must declare it dead, reassign its shard, and still produce
// the byte-identical partition of the healthy in-process run — the same
// property the in-process harness (internal/remote) pins, here across OS
// process boundaries.
func TestServeChaosWorkerKillProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	kappa, gengraph := buildBinaries(t)
	dir := t.TempDir()
	graphFile := filepath.Join(dir, "rgg.graph")
	if out, err := exec.Command(gengraph, "-type", "rgg", "-scale", "10", "-seed", "5", "-o", graphFile).CombinedOutput(); err != nil {
		t.Fatalf("gengraph: %v\n%s", err, out)
	}

	const k, pes, seed = 6, 3, 4242
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	partFile := filepath.Join(dir, "chaos.part")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	serve := exec.CommandContext(ctx, kappa, "serve",
		"-in", graphFile, "-k", strconv.Itoa(k), "-pes", strconv.Itoa(pes),
		"-seed", strconv.Itoa(seed), "-listen", addr, "-out", partFile,
		"-worker-timeout", "30s", "-heartbeat", "100ms")
	serveOut, err := serve.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	serve.Stderr = os.Stderr
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}

	workers := make([]*exec.Cmd, pes)
	for i := range workers {
		args := []string{"worker", "-connect", addr, "-timeout", "90s", "-heartbeat", "100ms"}
		if i == 0 {
			// The victim: its control connection dies on its second write —
			// the first contraction-level result, i.e. mid-coarsening.
			args = append(args, "-faults", "ctrl:write:2:kill")
		}
		workers[i] = exec.CommandContext(ctx, kappa, args...)
		var started bool
		for try := 0; try < 100; try++ {
			conn, err := net.Dial("tcp", addr)
			if err == nil {
				conn.Close()
				started = true
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if !started {
			t.Fatal("coordinator never listened")
		}
		if err := workers[i].Start(); err != nil {
			t.Fatal(err)
		}
	}

	var cut int64 = -1
	var faultsLine string
	sc := bufio.NewScanner(serveOut)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "cut"); ok {
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				t.Fatalf("parsing cut line %q: %v", sc.Text(), err)
			}
			cut = v
		}
		if rest, ok := strings.CutPrefix(sc.Text(), "faults"); ok {
			faultsLine = strings.TrimSpace(rest)
		}
	}
	if err := serve.Wait(); err != nil {
		t.Fatalf("serve did not survive the worker kill: %v", err)
	}
	if err := workers[0].Wait(); err == nil {
		t.Error("the victim worker exited cleanly; its kill schedule never fired")
	}
	for i := 1; i < pes; i++ {
		if err := workers[i].Wait(); err != nil {
			t.Errorf("surviving worker %d: %v", i, err)
		}
	}
	if !strings.Contains(faultsLine, "workers_failed=1") {
		t.Errorf("faults summary %q does not report exactly one dead worker", faultsLine)
	}

	g, err := graphio.ReadFile(graphFile)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.NewConfig(core.Fast, k)
	cfg.Seed = seed
	cfg.PEs = pes
	cfg.Coarsen = core.CoarsenDistributed
	want, err := core.Run(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cut != want.Cut {
		t.Errorf("chaos-run cut %d, healthy in-process cut %d", cut, want.Cut)
	}
	got, err := readPartition(partFile, g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	for v := range got {
		if got[v] != want.Blocks[v] {
			t.Fatalf("partition diverges at node %d: %d vs %d", v, got[v], want.Blocks[v])
		}
	}
}

// TestGengraphBinaryFormatRoundTrip pins the gengraph -format flag: a
// binary-format file written by the real binary parses back losslessly,
// coordinates included.
func TestGengraphBinaryFormatRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	_, gengraph := buildBinaries(t)
	dir := t.TempDir()
	binFile := filepath.Join(dir, "grid.bgraph")
	if out, err := exec.Command(gengraph, "-type", "grid3d", "-w", "8", "-h", "7", "-d", "6", "-o", binFile).CombinedOutput(); err != nil {
		t.Fatalf("gengraph: %v\n%s", err, out)
	}
	g, err := graphio.ReadFile(binFile)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 8*7*6 || g.CoordDims() != 3 {
		t.Fatalf("n=%d dims=%d", g.NumNodes(), g.CoordDims())
	}
}
