package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/graphio"
	"repro/internal/obs"
	"repro/internal/svc"
)

// runAPI is the `kappa api` subcommand — kappad, the partitioner as a
// service. It exposes submit/poll/result/cancel over HTTP/JSON with the
// hardening a long-running daemon needs: a bounded job queue with admission
// control (429 + Retry-After when full), per-job deadlines, panic isolation,
// and a graceful SIGTERM/SIGINT drain. Exit is 0 after a clean drain, 1 when
// the drain grace expired or a second signal forced shutdown, 2 on bad
// flags.
func runAPI(args []string) {
	fs := flag.NewFlagSet("kappa api", flag.ExitOnError)
	var (
		listen  = fs.String("listen", "127.0.0.1:2188", "address to serve the HTTP API on (host:port; port 0 picks a free port)")
		queue   = fs.Int("queue", 64, "job queue depth; submissions beyond it get 429")
		jobs    = fs.Int("jobs", 0, "jobs partitioning concurrently; 0 = GOMAXPROCS")
		defTO   = fs.Duration("default-timeout", 0, "deadline for jobs that request none; 0 = unlimited")
		maxTO   = fs.Duration("max-timeout", 0, "cap on the deadline a job may request; 0 = uncapped")
		maxBody = fs.Int64("max-body", 64<<20,
			"largest accepted submit request body in bytes (bounds inline graphs)")
		graphDir = fs.String("graph-dir", "",
			"confine graph_file loads to this directory; empty = any server-readable path")
		drainGrace = fs.Duration("drain-grace", 30*time.Second,
			"on SIGTERM/SIGINT, wait this long for queued and running jobs before deadline-canceling them")
		retryAfter = fs.Duration("retry-after", time.Second, "Retry-After hint sent with 429/503 rejections")
		retain     = fs.Int("retain", 1024, "finished jobs kept for status/result polling")
		maxNodes   = fs.Uint64("max-graph-nodes", 0,
			"decode budget: largest node count accepted from graph files; 0 = built-in default")
		maxEdges = fs.Uint64("max-graph-edges", 0,
			"decode budget: largest edge count accepted from graph files; 0 = built-in default")
	)
	fs.Parse(args)
	if *maxNodes != 0 || *maxEdges != 0 {
		graphio.SetDecodeBudget(*maxNodes, *maxEdges)
	}

	reg := obs.NewRegistry()
	server := svc.New(svc.Options{
		Queue:          *queue,
		Concurrency:    *jobs,
		DefaultTimeout: *defTO,
		MaxTimeout:     *maxTO,
		MaxBody:        *maxBody,
		GraphDir:       *graphDir,
		RetryAfter:     *retryAfter,
		Retain:         *retain,
		Registry:       reg,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail(err)
	}
	httpSrv := obs.NewServer(server.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	jobsN := *jobs
	if jobsN == 0 {
		jobsN = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "kappa: api serving on %s (queue %d, jobs %d)\n", ln.Addr(), *queue, jobsN)

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		// The listener died under us — nothing to drain into.
		server.Close()
		fail(err)
	case <-sigCtx.Done():
	}
	// Drain: stop admitting (readyz flips to 503 for load balancers), finish
	// the in-flight jobs within the grace, then stop the HTTP server. stop()
	// restores default signal handling first, so a second SIGTERM/SIGINT
	// kills the process immediately instead of being swallowed.
	stop()
	fmt.Fprintf(os.Stderr, "kappa: api draining (grace %v)\n", *drainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	drainErr := server.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		httpSrv.Close()
	}
	if drainErr != nil && !errors.Is(drainErr, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "kappa: api drain grace expired, in-flight jobs canceled\n")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "kappa: api drained cleanly")
}
