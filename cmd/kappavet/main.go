// Command kappavet runs the repository's project-invariant static-analysis
// suite (internal/lint) over the given packages:
//
//	go run ./cmd/kappavet ./...
//
// Analyzers: mapiter (no order-sensitive work inside map iteration),
// nondet (no ambient entropy in kernel packages), hotalloc (no allocation
// in //kappa:hotpath functions), panicfree (library packages return
// errors), wiresync (wire frame kinds handled on both encode and decode
// paths, version-gated fields guarded) — plus directive validation for the
// //kappa:allow suppression machinery itself.
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on a usage
// or load error. Run it over ./... — wiresync's frame audit is
// whole-program and a single-package invocation cannot see the decode
// switches in internal/remote.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: kappavet [-json] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the project-invariant analyzers over the packages (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name(), a.Doc())
		}
		fmt.Printf("%-10s %s\n", "directive", "kappa:allow with an unknown analyzer, a missing reason, or suppressing nothing")
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kappavet:", err)
		os.Exit(2)
	}
	fset := token.NewFileSet()
	pkgs, err := lint.Load(fset, cwd, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kappavet:", err)
		os.Exit(2)
	}
	findings := lint.NewSuite(fset).Run(pkgs)

	// Report positions relative to the working directory: stable output for
	// CI logs and golden comparisons.
	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].Pos.Filename); err == nil {
			findings[i].Pos.Filename = rel
		}
	}

	if *jsonOut {
		if findings == nil {
			findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "kappavet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "kappavet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
