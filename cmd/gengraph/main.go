// Command gengraph emits benchmark graphs in METIS format.
//
//	gengraph -type rgg -scale 15 > rgg15.graph
//	gengraph -type road -n 40000 -out deu.graph
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		typ   = flag.String("type", "rgg", "rgg | delaunay | grid | grid3d | road | social | rmat | fem | banded | er")
		scale = flag.Int("scale", 14, "log2 node count (rgg, delaunay, rmat)")
		n     = flag.Int("n", 10000, "node count (road, social, fem, banded, er)")
		w     = flag.Int("w", 64, "grid width / 3d x")
		h     = flag.Int("h", 64, "grid height / 3d y")
		d     = flag.Int("d", 8, "3d z; social attachment degree")
		seed  = flag.Uint64("seed", 1, "random seed")
		out   = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *graph.Graph
	switch *typ {
	case "rgg":
		g = gen.RGG(*scale, *seed)
	case "delaunay":
		g = gen.DelaunayX(*scale, *seed)
	case "grid":
		g = gen.Grid2D(*w, *h)
	case "grid3d":
		g = gen.Grid3D(*w, *h, *d)
	case "road":
		g = gen.Road(*n, 8, *seed)
	case "social":
		g = gen.PrefAttach(*n, *d, *seed)
	case "rmat":
		g = gen.RMAT(*scale, 10, *seed)
	case "fem":
		g = gen.FEMMesh(*n, 8, *seed)
	case "banded":
		g = gen.Banded(*n, 10, 30, 0.7, *seed)
	case "er":
		g = gen.ErdosRenyi(*n, 8**n, *seed)
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown type %q\n", *typ)
		os.Exit(1)
	}

	var f *os.File = os.Stdout
	if *out != "" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gengraph:", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	bw := bufio.NewWriter(f)
	if err := g.WriteMetis(bw); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
	bw.Flush()
	fmt.Fprintf(os.Stderr, "gengraph: %s n=%d m=%d\n", *typ, g.NumNodes(), g.NumEdges())
}
