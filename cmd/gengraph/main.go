// Command gengraph emits benchmark graphs through the graphio codec layer.
//
//	gengraph -type rgg -scale 15 > rgg15.graph
//	gengraph -type road -n 40000 -o deu.graph
//	gengraph -type grid3d -w 32 -h 32 -d 8 -format bin -o grid.bgraph
//	gengraph -type rgg -scale 20 -shards 8 -dist rcb -o rgg20.kst
//
// The output format is METIS text by default; -format bin (or a .bgraph/.bin
// extension with -format auto) selects the compact binary encoding, which
// also preserves node coordinates. With -shards the output is an on-disk
// shard store directory (see kappa shard / kappa serve -shards) written
// straight from the generator, skipping the intermediate graph file.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/store"
)

func main() {
	var (
		typ    = flag.String("type", "rgg", "rgg | delaunay | grid | grid3d | road | social | rmat | fem | banded | er")
		scale  = flag.Int("scale", 14, "log2 node count (rgg, delaunay, rmat)")
		n      = flag.Int("n", 10000, "node count (road, social, fem, banded, er)")
		w      = flag.Int("w", 64, "grid width / 3d x")
		h      = flag.Int("h", 64, "grid height / 3d y")
		d      = flag.Int("d", 8, "3d z; social attachment degree")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("o", "", "output file (default stdout)")
		outOld = flag.String("out", "", "alias of -o")
		format = flag.String("format", "auto", "output format: auto | metis | bin (auto picks by extension, metis on stdout)")
		shards = flag.Int("shards", 0, "write an on-disk shard store with this many shards instead of a graph file (requires -o)")
		distFl = flag.String("dist", "auto", "node-to-PE distribution for -shards: auto | ranges | rcb | sfc")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}

	f, err := graphio.ParseFormat(*format)
	if err != nil {
		fail(err)
	}

	var g *graph.Graph
	switch *typ {
	case "rgg":
		g = gen.RGG(*scale, *seed)
	case "delaunay":
		g = gen.DelaunayX(*scale, *seed)
	case "grid":
		g = gen.Grid2D(*w, *h)
	case "grid3d":
		g = gen.Grid3D(*w, *h, *d)
	case "road":
		g = gen.Road(*n, 8, *seed)
	case "social":
		g = gen.PrefAttach(*n, *d, *seed)
	case "rmat":
		g = gen.RMAT(*scale, 10, *seed)
	case "fem":
		g = gen.FEMMesh(*n, 8, *seed)
	case "banded":
		g = gen.Banded(*n, 10, 30, 0.7, *seed)
	case "er":
		g = gen.ErdosRenyi(*n, 8**n, *seed)
	default:
		fail(fmt.Errorf("unknown type %q", *typ))
	}

	path := *out
	if path == "" {
		path = *outOld
	}
	if *shards > 0 {
		if path == "" {
			fail(fmt.Errorf("-shards needs -o (a store is a directory, not a stream)"))
		}
		strategy, err := dist.ParseStrategy(*distFl)
		if err != nil {
			fail(err)
		}
		m, err := store.Write(path, g, store.WriteOptions{PEs: *shards, Strategy: strategy, Seed: *seed})
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "gengraph: %s n=%d m=%d store=%s shards=%d dist=%s\n",
			*typ, m.Nodes, m.Edges, path, m.PEs, m.Strategy)
		return
	}
	if path == "" {
		if err := graphio.Write(os.Stdout, g, f); err != nil {
			fail(err)
		}
	} else if err := graphio.WriteFile(path, g, f); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "gengraph: %s n=%d m=%d format=%s\n", *typ, g.NumNodes(), g.NumEdges(), f)
}
