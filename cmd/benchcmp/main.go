// Command benchcmp gates benchmark regressions against a committed baseline.
//
//	go test -bench 'Table1|Table2' -benchtime=1x -benchmem -run '^$' . > current.txt
//	go run ./cmd/benchcmp -baseline BENCH_BASELINE.txt -current current.txt
//
// Both files are standard `go test -bench` output — the same format benchstat
// reads, so the committed baseline doubles as the benchstat reference for
// deeper analysis. The gate compares the deterministic metrics: allocs/op
// (default +5% budget) and B/op (default +10%), which are machine-independent
// when the suite runs under GOMAXPROCS=1 because the pipeline itself is
// deterministic. ns/op is reported but never gated — wall clock on shared CI
// runners is noise. A benchmark present in the baseline but missing from the
// current run fails the gate: silently dropped coverage is itself a
// regression.
//
// Refresh the baseline intentionally (make bench-baseline) when a PR changes
// the allocation profile on purpose, and commit the new file with the change
// that explains it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics is one benchmark's measured values.
type metrics struct {
	ns     float64
	bytes  float64
	allocs float64
	has    bool // B/op + allocs/op present (-benchmem)
}

// parseBench reads `go test -bench` output, keyed by benchmark name with any
// -GOMAXPROCS suffix stripped, so files measured at different core counts
// still line up.
func parseBench(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]metrics)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcs(fields[0])
		var m metrics
		// fields[1] is the iteration count; after it come value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q for %s: %v", path, fields[i], name, err)
			}
			switch fields[i+1] {
			case "ns/op":
				m.ns = v
			case "B/op":
				m.bytes = v
				m.has = true
			case "allocs/op":
				m.allocs = v
				m.has = true
			}
		}
		out[name] = m
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}

// stripProcs removes the -N GOMAXPROCS suffix go test appends on
// multi-core hosts.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// pct is the relative change of cur over base, in percent.
func pct(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 100
	}
	return (cur - base) / base * 100
}

func main() {
	var (
		basePath  = flag.String("baseline", "BENCH_BASELINE.txt", "committed baseline (`go test -bench` output)")
		curPath   = flag.String("current", "", "current measurement to gate (same format); required")
		allocsPct = flag.Float64("max-allocs-pct", 5, "allocs/op regression budget in percent")
		bytesPct  = flag.Float64("max-bytes-pct", 10, "B/op regression budget in percent")
	)
	flag.Parse()
	if *curPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -current is required")
		os.Exit(2)
	}
	base, err := parseBench(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	cur, err := parseBench(*curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("FAIL  %s: in the baseline but not in the current run — dropped coverage\n", name)
			failed = true
			continue
		}
		fmt.Printf("      %s: ns/op %+.1f%% (informational)\n", name, pct(b.ns, c.ns))
		if !b.has || !c.has {
			fmt.Printf("FAIL  %s: missing -benchmem metrics (baseline %v, current %v)\n", name, b.has, c.has)
			failed = true
			continue
		}
		for _, g := range []struct {
			metric    string
			base, cur float64
			budget    float64
		}{
			{"allocs/op", b.allocs, c.allocs, *allocsPct},
			{"B/op", b.bytes, c.bytes, *bytesPct},
		} {
			delta := pct(g.base, g.cur)
			verdict := "ok  "
			if delta > g.budget {
				verdict = "FAIL"
				failed = true
			}
			fmt.Printf("%s  %s: %s %.0f -> %.0f (%+.2f%%, budget +%.0f%%)\n",
				verdict, name, g.metric, g.base, g.cur, delta, g.budget)
		}
	}
	extra := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Printf("note  %s: not in the baseline; refresh with `make bench-baseline` to start gating it\n", name)
	}
	if failed {
		fmt.Println("benchcmp: regression beyond budget (or lost coverage); if intentional, refresh BENCH_BASELINE.txt via `make bench-baseline` and commit it")
		os.Exit(1)
	}
	fmt.Println("benchcmp: within budget")
}
