// Command benchjson measures the repository's smoke benchmarks with
// allocation tracking and records the results as JSON — the perf trajectory
// of the repo (BENCH_PR4.json and successors), so performance work is driven
// by recorded numbers instead of recollection.
//
//	go run ./cmd/benchjson -out BENCH_PR4.json -baseline BENCH_PR4_baseline.json
//
// The measured workloads mirror the `go test -bench 'Table1|Table2'` smoke
// benchmarks plus the end-to-end Partition benchmarks on one instance per
// family (the coarsening-dominated cases perf PRs target). The -baseline
// flag attaches the recorded numbers of a previous measurement file to each
// benchmark, so the committed JSON carries the before/after pair.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/obs"
)

// Record is one measured benchmark configuration.
type Record struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Entry pairs a benchmark's current measurement with an optional recorded
// baseline.
type Entry struct {
	Name     string  `json:"name"`
	Baseline *Record `json:"baseline,omitempty"`
	Current  Record  `json:"current"`
}

// File is the schema of the committed BENCH_*.json artifacts.
type File struct {
	Note       string  `json:"note"`
	Benchmarks []Entry `json:"benchmarks"`
}

func measure(name string, f func()) Entry {
	// Warm once outside the measurement, like `go test -bench`'s N=1 probe:
	// one-time costs (the lazily generated, cached benchmark instances)
	// otherwise land in the recorded numbers.
	f()
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f()
		}
	})
	e := Entry{Name: name, Current: Record{
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}}
	fmt.Fprintf(os.Stderr, "%-22s %12d ns/op %12d B/op %8d allocs/op\n",
		name, e.Current.NsPerOp, e.Current.BytesPerOp, e.Current.AllocsPerOp)
	return e
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	baseFile := flag.String("baseline", "", "attach the 'current' numbers of this previous report as per-benchmark baselines")
	note := flag.String("note", "smoke benchmarks (Table1/Table2 + end-to-end Partition per family), single machine, go test -benchmem semantics", "note stored in the report")
	flag.Parse()

	smoke := bench.Options{Reps: 1, Ks: []int{8}, MaxInstances: 2}
	entries := []Entry{
		measure("Table1", func() { bench.Table1(io.Discard) }),
		measure("Table2", func() { bench.Table2(io.Discard, smoke) }),
	}
	// End-to-end Partition on one instance per family, KaPPa-Fast, k=16 —
	// the coarsening-dominated cases. The arena is shared across iterations
	// the way bench.RunKaPPa and a serving deployment share it.
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"Partition/rgg14", gen.RGG(14, 1)},
		{"Partition/delaunay14", gen.DelaunayX(14, 2)},
		{"Partition/road20k", gen.Road(20000, 8, 3)},
		{"Partition/social16k", gen.PrefAttach(16384, 5, 4)},
	}
	for _, c := range cases {
		arena := mem.NewArena()
		seed := uint64(0)
		entries = append(entries, measure(c.name, func() {
			cfg := core.NewConfig(core.Fast, 16)
			cfg.Seed = seed
			seed++
			if _, err := core.Run(nil, c.g, cfg, core.WithArena(arena)); err != nil {
				panic(err)
			}
		}))
	}

	// The same end-to-end run with the full metric stack attached — the
	// recorded evidence of the observability overhead (compare against
	// Partition/rgg14 above).
	{
		g := gen.RGG(14, 1)
		arena := mem.NewArena()
		reg := obs.NewRegistry()
		stats := dist.NewTransportStats(16)
		obs.BindTransport(reg, stats)
		obs.BindArena(reg, arena)
		observer := obs.NewPipelineObserver(reg)
		seed := uint64(0)
		entries = append(entries, measure("Partition/rgg14/observed", func() {
			cfg := core.NewConfig(core.Fast, 16)
			cfg.Seed = seed
			seed++
			if _, err := core.Run(nil, g, cfg,
				core.WithObserver(observer),
				core.WithTransportStats(stats),
				core.WithArena(arena)); err != nil {
				panic(err)
			}
		}))
	}

	if *baseFile != "" {
		raw, err := os.ReadFile(*baseFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var base File
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		byName := make(map[string]Record, len(base.Benchmarks))
		for _, e := range base.Benchmarks {
			byName[e.Name] = e.Current
		}
		for i := range entries {
			if r, ok := byName[entries[i].Name]; ok {
				rc := r
				entries[i].Baseline = &rc
			}
		}
	}

	buf, err := json.MarshalIndent(File{Note: *note, Benchmarks: entries}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
