// Command benchtables regenerates the tables and figures of the paper's
// evaluation section. Examples:
//
//	benchtables -table 3            # edge ratings & matchers (Table 3)
//	benchtables -table 4            # queue selection + tool comparison
//	benchtables -table 9 -k 16      # KaPPa-Fast per-instance (Table 9)
//	benchtables -figure 3           # scalability curves
//	benchtables -table 21           # Walshaw benchmark, eps=1%
//	benchtables -table phases       # per-phase timing breakdown (Trace events)
//	benchtables -ablation band      # band-depth ablation
//	benchtables -all -reps 3        # everything the paper reports
//
// Reps defaults to 3 (the paper uses 10); raise -reps for tighter averages.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	var (
		table    = flag.String("table", "", "table to regenerate: 1-23, 'initpart' or 'phases' (per-phase timing breakdown from pipeline Trace events)")
		figure   = flag.String("figure", "", "figure to regenerate: 3 (time vs k) or 3s (strong scaling vs PEs)")
		ablation = flag.String("ablation", "", "ablation: pairwise | band | gap | schedule | initrepeats | evolve | dist | coarsen")
		all      = flag.Bool("all", false, "regenerate everything")
		reps     = flag.Int("reps", 3, "repetitions per configuration (paper: 10)")
		ks       = flag.String("k", "", "comma-separated block counts (default depends on table)")
	)
	flag.Parse()
	o := bench.Options{Reps: *reps}
	if *ks != "" {
		for _, s := range strings.Split(*ks, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: bad -k value %q\n", s)
				os.Exit(1)
			}
			o.Ks = append(o.Ks, v)
		}
	}
	w := os.Stdout

	if *all {
		bench.Table1(w)
		bench.Table2(w, o)
		fmt.Fprintln(w)
		bench.Table3(w, o)
		fmt.Fprintln(w)
		bench.TableInitPart(w, o)
		fmt.Fprintln(w)
		bench.Table4Left(w, o)
		fmt.Fprintln(w)
		bench.Table4Right(w, bench.Options{Reps: o.Reps, Ks: orDefault(o.Ks, []int{16, 32, 64})})
		fmt.Fprintln(w)
		bench.Table5(w, o)
		fmt.Fprintln(w)
		for _, k := range []int{16, 32, 64} {
			for _, v := range []core.Variant{core.Minimal, core.Fast, core.Strong} {
				bench.TablePerInstanceVariant(w, v, k, o)
				fmt.Fprintln(w)
			}
			for _, t := range []baseline.Tool{baseline.KMetisLike, baseline.ParMetisLike} {
				bench.TablePerInstanceTool(w, t, k, o)
				fmt.Fprintln(w)
			}
		}
		bench.Figure3(w, o)
		fmt.Fprintln(w)
		bench.Figure3Scaling(w, o)
		fmt.Fprintln(w)
		bench.PhaseBreakdown(w, o)
		fmt.Fprintln(w)
		for _, eps := range []float64{0.01, 0.03, 0.05} {
			bench.TableWalshaw(w, eps, o)
			fmt.Fprintln(w)
		}
		bench.AblationPairwiseVsKway(w, o)
		bench.AblationDistribution(w, o)
		bench.AblationCoarsenMode(w, o)
		bench.AblationBandDepth(w, o)
		bench.AblationGapMatching(w, o)
		bench.AblationSchedule(w, o)
		bench.AblationInitRepeats(w, o)
		bench.AblationEvolveVsRestarts(w, o)
		return
	}

	switch {
	case *figure == "3":
		bench.Figure3(w, o)
	case *figure == "3s":
		bench.Figure3Scaling(w, o)
	case *table == "1":
		bench.Table1(w)
	case *table == "2":
		bench.Table2(w, o)
	case *table == "3":
		bench.Table3(w, o)
	case *table == "initpart":
		bench.TableInitPart(w, o)
	case *table == "phases":
		bench.PhaseBreakdown(w, o)
	case *table == "4":
		bench.Table4Left(w, o)
		fmt.Fprintln(w)
		bench.Table4Right(w, bench.Options{Reps: o.Reps, Ks: orDefault(o.Ks, []int{16, 32, 64})})
	case *table == "5":
		bench.Table5(w, o)
	case isBetween(*table, 6, 8):
		bench.TablePerInstanceVariant(w, core.Minimal, kOf(*table, 6), o)
	case isBetween(*table, 9, 11):
		bench.TablePerInstanceVariant(w, core.Fast, kOf(*table, 9), o)
	case isBetween(*table, 12, 14):
		bench.TablePerInstanceVariant(w, core.Strong, kOf(*table, 12), o)
	case *table == "15", *table == "17", *table == "19":
		bench.TablePerInstanceTool(w, baseline.KMetisLike, kOfOdd(*table, 15), o)
	case *table == "16", *table == "18", *table == "20":
		bench.TablePerInstanceTool(w, baseline.ParMetisLike, kOfOdd(*table, 16), o)
	case *table == "21":
		bench.TableWalshaw(w, 0.01, o)
	case *table == "22":
		bench.TableWalshaw(w, 0.03, o)
	case *table == "23":
		bench.TableWalshaw(w, 0.05, o)
	case *ablation == "pairwise":
		bench.AblationPairwiseVsKway(w, o)
	case *ablation == "band":
		bench.AblationBandDepth(w, o)
	case *ablation == "gap":
		bench.AblationGapMatching(w, o)
	case *ablation == "schedule":
		bench.AblationSchedule(w, o)
	case *ablation == "initrepeats":
		bench.AblationInitRepeats(w, o)
	case *ablation == "evolve":
		bench.AblationEvolveVsRestarts(w, o)
	case *ablation == "dist":
		bench.AblationDistribution(w, o)
	case *ablation == "coarsen":
		bench.AblationCoarsenMode(w, o)
	default:
		flag.Usage()
		os.Exit(1)
	}
}

func orDefault(ks, def []int) []int {
	if len(ks) > 0 {
		return ks
	}
	return def
}

func isBetween(s string, lo, hi int) bool {
	v, err := strconv.Atoi(s)
	return err == nil && v >= lo && v <= hi
}

// kOf maps consecutive table numbers to k=16/32/64.
func kOf(s string, base int) int {
	v, _ := strconv.Atoi(s)
	return 16 << uint(v-base)
}

// kOfOdd maps table numbers spaced by 2 (15,17,19 / 16,18,20) to k.
func kOfOdd(s string, base int) int {
	v, _ := strconv.Atoi(s)
	return 16 << uint((v-base)/2)
}
