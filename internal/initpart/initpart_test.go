package initpart

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/rng"
)

func checkPartition(t *testing.T, g *graph.Graph, k int, eps float64, block []int32) *part.Partition {
	t.Helper()
	p := part.FromBlocks(g, k, eps, block)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every block must be non-empty for k <= n.
	seen := make([]bool, k)
	for _, b := range block {
		seen[b] = true
	}
	for b, s := range seen {
		if !s {
			t.Fatalf("block %d is empty", b)
		}
	}
	return p
}

func TestPartitionGridAllK(t *testing.T) {
	g := gen.Grid2D(16, 16)
	for _, k := range []int{1, 2, 3, 4, 8, 16} {
		for _, eng := range []Engine{EngineScotch, EnginePMetis} {
			block := Partition(g, k, 0.03, eng, 7)
			p := checkPartition(t, g, k, 0.03, block)
			if !p.Feasible() {
				t.Errorf("k=%d %v: infeasible (max %d > Lmax %d)", k, eng, p.MaxBlockWeight(), p.Lmax())
			}
			if k > 1 && p.Cut() == 0 {
				t.Errorf("k=%d %v: zero cut on connected graph", k, eng)
			}
		}
	}
}

func TestBisectionQualityOnGrid(t *testing.T) {
	// A 16x16 grid has an optimal bisection cut of 16; greedy growing plus
	// FM should land well under 2x of that.
	g := gen.Grid2D(16, 16)
	block := Partition(g, 2, 0.03, EngineScotch, 3)
	p := checkPartition(t, g, 2, 0.03, block)
	if p.Cut() > 32 {
		t.Fatalf("bisection cut %d, want <= 32 (opt 16)", p.Cut())
	}
}

func TestScotchBeatsOrMatchesPMetis(t *testing.T) {
	// Averaged over seeds, the Scotch-like engine must not lose to the
	// pMetis-like engine (the paper reports pMetis ~4.7% worse).
	var scotch, pmetis int64
	for _, g := range []*graph.Graph{gen.RGG(11, 5), gen.DelaunayX(10, 2)} {
		for seed := uint64(0); seed < 8; seed++ {
			bs := Partition(g, 8, 0.03, EngineScotch, seed)
			bp := Partition(g, 8, 0.03, EnginePMetis, seed)
			scotch += part.FromBlocks(g, 8, 0.03, bs).Cut()
			pmetis += part.FromBlocks(g, 8, 0.03, bp).Cut()
		}
	}
	// Averaged over seeds and instances the high-quality engine must win;
	// allow 2% noise.
	if float64(scotch) > 1.02*float64(pmetis) {
		t.Fatalf("scotch-like total cut %d > pmetis-like %d", scotch, pmetis)
	}
}

func TestRepeatPicksBest(t *testing.T) {
	g := gen.RGG(10, 2)
	_, cut1 := Repeat(g, 4, 0.03, EngineScotch, 1, 9)
	blockN, cutN := Repeat(g, 4, 0.03, EngineScotch, 6, 9)
	if cutN > cut1 {
		t.Fatalf("best-of-6 cut %d worse than single cut %d", cutN, cut1)
	}
	p := checkPartition(t, g, 4, 0.03, blockN)
	if p.Cut() != cutN {
		t.Fatalf("reported cut %d != actual %d", cutN, p.Cut())
	}
}

func TestPartitionDisconnected(t *testing.T) {
	// Two disjoint grids; bisection must handle the disconnected case via
	// regrowth.
	b := graph.NewBuilder(32)
	add := func(off int32) {
		for i := int32(0); i < 4; i++ {
			for j := int32(0); j < 4; j++ {
				v := off + i*4 + j
				if i < 3 {
					b.AddEdge(v, v+4, 1)
				}
				if j < 3 {
					b.AddEdge(v, v+1, 1)
				}
			}
		}
	}
	add(0)
	add(16)
	g := b.Build()
	block := Partition(g, 2, 0.03, EngineScotch, 1)
	p := checkPartition(t, g, 2, 0.03, block)
	if !p.Feasible() {
		t.Fatalf("infeasible on disconnected input")
	}
	// The two components are a perfect bisection; a decent engine finds the
	// zero cut.
	if p.Cut() != 0 {
		t.Logf("note: nonzero cut %d on separable input", p.Cut())
	}
}

func TestPartitionWeightedNodes(t *testing.T) {
	b := graph.NewBuilder(8)
	for v := int32(0); v < 7; v++ {
		b.AddEdge(v, v+1, 1)
	}
	b.SetNodeWeight(0, 10) // one heavy node
	g := b.Build()
	block := Partition(g, 2, 0.03, EngineScotch, 4)
	p := checkPartition(t, g, 2, 0.03, block)
	if !p.Feasible() {
		t.Fatalf("infeasible with weighted nodes: max %d Lmax %d", p.MaxBlockWeight(), p.Lmax())
	}
}

func TestPartitionKEqualsN(t *testing.T) {
	g := gen.Grid2D(3, 3)
	block := Partition(g, 9, 0.03, EngineScotch, 2)
	p := checkPartition(t, g, 9, 0.03, block)
	if p.MaxBlockWeight() != 1 {
		t.Fatalf("k=n should give singleton blocks, max weight %d", p.MaxBlockWeight())
	}
}

func TestGrowBisectionTargets(t *testing.T) {
	g := gen.Grid2D(10, 10)
	r := rng.New(6)
	side := growBisection(g, 50, 3, r)
	var grown int64
	for _, s := range side {
		if s == 0 {
			grown++
		}
	}
	// Growth stops as soon as the target is reached; with unit weights it
	// lands exactly on it.
	if grown != 50 {
		t.Fatalf("grown weight %d, want 50", grown)
	}
}

func TestEngineString(t *testing.T) {
	if EngineScotch.String() != "scotch-like" || EnginePMetis.String() != "pmetis-like" {
		t.Fatal("engine names wrong")
	}
}

func BenchmarkInitialPartition(b *testing.B) {
	g := gen.RGG(12, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Partition(g, 8, 0.03, EngineScotch, uint64(i))
	}
}
