// Package initpart implements the initial partitioning phase of §4. The
// paper hands the coarsest graph to Scotch or pMetis, run simultaneously on
// all PEs with different seeds, and broadcasts the best result. Since those
// tools are external binaries, this package provides two built-in sequential
// multilevel recursive-bisection engines that play their roles:
//
//   - EngineScotch: GPA matching with the expansion*2 rating, best-of-many
//     greedy graph growing, and TopGain FM refinement at every level — the
//     high-quality engine (our "Scotch").
//   - EnginePMetis: SHEM matching with the plain weight rating, a single
//     growing attempt, and Alternate FM — the faster, cruder engine (our
//     "pMetis", measured ~5% worse, matching the paper's 4.7% observation).
package initpart

import (
	"sync"

	"repro/internal/coarsen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/part"
	"repro/internal/pq"
	"repro/internal/rating"
	"repro/internal/refine"
	"repro/internal/rng"
)

// Engine selects the initial-partitioning engine.
type Engine int

const (
	// EngineScotch is the high-quality recursive bisection engine.
	EngineScotch Engine = iota
	// EnginePMetis is the faster, lower-quality engine.
	EnginePMetis
)

// String names the engine after the tool it stands in for.
func (e Engine) String() string {
	if e == EnginePMetis {
		return "pmetis-like"
	}
	return "scotch-like"
}

type engineParams struct {
	matcher    matching.Algorithm
	rate       rating.Func
	growTries  int
	fmStrategy refine.Strategy
	fmPasses   int
	fmPatience float64
}

func (e Engine) params() engineParams {
	if e == EnginePMetis {
		return engineParams{
			matcher: matching.SHEM, rate: rating.Weight,
			growTries: 1, fmStrategy: refine.Alternate, fmPasses: 1, fmPatience: 0.05,
		}
	}
	return engineParams{
		matcher: matching.GPA, rate: rating.ExpansionStar2,
		growTries: 4, fmStrategy: refine.TopGain, fmPasses: 3, fmPatience: 0.25,
	}
}

// Partition computes a k-way partition of g with allowed imbalance eps,
// using recursive multilevel bisection. The result respects the Lmax bound
// of §2 whenever the rebalancing fallback succeeds (always, in practice).
func Partition(g *graph.Graph, k int, eps float64, engine Engine, seed uint64) []int32 {
	if k < 1 {
		//kappa:allow panicfree k is validated by Config.Validate before the pipeline runs
		panic("initpart: k must be >= 1")
	}
	r := rng.New(seed)
	out := make([]int32, g.NumNodes())
	params := engine.params()
	recursiveBisect(g, identity(g.NumNodes()), k, 0, eps, params, r, out)
	// The per-bisection bounds compose only approximately; repair any
	// residual overload against the global Lmax.
	p := part.FromBlocks(g, k, eps, out)
	if !p.Feasible() {
		refine.Rebalance(p, r)
	}
	return p.Block
}

// Repeat runs Partition `repeats` times concurrently with different seeds
// (§4: initial partitioning runs on all PEs simultaneously, each with a
// different seed, and is itself repeated) and returns the block array of the
// best feasible result — by (feasible, cut) — together with its cut.
func Repeat(g *graph.Graph, k int, eps float64, engine Engine, repeats int, seed uint64) ([]int32, int64) {
	if repeats < 1 {
		repeats = 1
	}
	type attempt struct {
		block    []int32
		cut      int64
		feasible bool
	}
	results := make([]attempt, repeats)
	var wg sync.WaitGroup
	for i := 0; i < repeats; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			block := Partition(g, k, eps, engine, seed+uint64(i)*0x9e37)
			p := part.FromBlocks(g, k, eps, block)
			results[i] = attempt{block, p.Cut(), p.Feasible()}
		}(i)
	}
	wg.Wait()
	best := 0
	for i := 1; i < repeats; i++ {
		a, b := results[i], results[best]
		if (a.feasible && !b.feasible) || (a.feasible == b.feasible && a.cut < b.cut) {
			best = i
		}
	}
	return results[best].block, results[best].cut
}

func identity(n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

// recursiveBisect assigns blocks [offset, offset+k) to the nodes of sub
// (whose node i is original node new2old[i]), writing into out.
func recursiveBisect(sub *graph.Graph, new2old []int32, k int, offset int32, eps float64, params engineParams, r *rng.RNG, out []int32) {
	if k == 1 {
		for _, ov := range new2old {
			out[ov] = offset
		}
		return
	}
	k1 := (k + 1) / 2
	targetA := sub.TotalNodeWeight() * int64(k1) / int64(k)
	side := multilevelBisect(sub, targetA, eps, params, r)
	ensureMinCounts(sub, side, k1, k-k1)
	keepA := make([]bool, sub.NumNodes())
	for v, s := range side {
		keepA[v] = s == 0
	}
	subA, mapA := sub.Subgraph(keepA)
	for i := range keepA {
		keepA[i] = !keepA[i]
	}
	subB, mapB := sub.Subgraph(keepA)
	oldA := make([]int32, len(mapA))
	for i, v := range mapA {
		oldA[i] = new2old[v]
	}
	oldB := make([]int32, len(mapB))
	for i, v := range mapB {
		oldB[i] = new2old[v]
	}
	recursiveBisect(subA, oldA, k1, offset, eps, params, r, out)
	recursiveBisect(subB, oldB, k-k1, offset+int32(k1), eps, params, r, out)
}

// ensureMinCounts guarantees that side 0 has at least k1 nodes and side 1 at
// least k2, so that the recursion below can fill every block. When a side is
// short, the lightest nodes of the other side are flipped over; this only
// triggers on tiny graphs or degenerate weight distributions.
func ensureMinCounts(sub *graph.Graph, side []byte, k1, k2 int) {
	counts := [2]int{}
	for _, s := range side {
		counts[s]++
	}
	flip := func(from, to byte, need int) {
		// Flip the lightest `need` nodes of side `from`.
		type cand struct {
			v int32
			w int64
		}
		var cands []cand
		for v, s := range side {
			if s == from {
				cands = append(cands, cand{int32(v), sub.NodeWeight(int32(v))})
			}
		}
		for i := 0; i < need && len(cands) > 0; i++ {
			best := 0
			for j := 1; j < len(cands); j++ {
				if cands[j].w < cands[best].w {
					best = j
				}
			}
			side[cands[best].v] = to
			cands[best] = cands[len(cands)-1]
			cands = cands[:len(cands)-1]
		}
	}
	if counts[0] < k1 {
		flip(1, 0, k1-counts[0])
	} else if counts[1] < k2 {
		flip(0, 1, k2-counts[1])
	}
}

// multilevelBisect bisects g into sides 0/1 with side-0 target weight
// targetA: coarsen, grow a bisection on the coarsest graph, then project and
// refine level by level.
func multilevelBisect(g *graph.Graph, targetA int64, eps float64, params engineParams, r *rng.RNG) []byte {
	const coarseEnough = 120
	h := coarsen.NewHierarchy(g)
	maxPair := g.TotalNodeWeight() / 4
	if maxPair < 2 {
		maxPair = 2
	}
	for h.Coarsest.NumNodes() > coarseEnough {
		rt := rating.NewRater(params.rate, h.Coarsest)
		m := matching.ComputeBounded(h.Coarsest, rt, params.matcher, r, maxPair)
		if m.Size() == 0 {
			break
		}
		cg, f2c := coarsen.Contract(h.Coarsest, m)
		if cg.NumNodes() >= h.Coarsest.NumNodes() {
			break
		}
		h.Push(cg, f2c)
	}

	side := growBisection(h.Coarsest, targetA, params.growTries, r)
	block := make([]int32, len(side))
	for v, s := range side {
		block[v] = int32(s)
	}
	refineBisection(h.Coarsest, block, targetA, eps, params, r)
	for li := h.Depth() - 1; li >= 0; li-- {
		block = h.Project(li, block)
		refineBisection(h.Levels[li].Fine, block, targetA, eps, params, r)
	}
	out := make([]byte, len(block))
	for v, b := range block {
		out[v] = byte(b)
	}
	return out
}

// refineBisection runs two-way FM between the sides. The balance bound is
// the larger side's target within (1+eps).
func refineBisection(g *graph.Graph, block []int32, targetA int64, eps float64, params engineParams, r *rng.RNG) {
	p := part.FromBlocks(g, 2, eps, block)
	targetB := g.TotalNodeWeight() - targetA
	maxTarget := targetA
	if targetB > maxTarget {
		maxTarget = targetB
	}
	p.SetLmax(int64((1+eps)*float64(maxTarget)) + g.MaxNodeWeight())
	cfg := refine.TwoWayConfig{Strategy: params.fmStrategy, Patience: params.fmPatience, BandDepth: 1 << 30}
	for pass := 0; pass < params.fmPasses; pass++ {
		out := refine.RefinePair(p, 0, 1, cfg, r.Uint64(), r.Uint64())
		if out.Gain <= 0 && pass > 0 {
			break
		}
	}
}

// growBisection grows side 0 from a random seed node by repeatedly absorbing
// the frontier node with the highest gain (greedy graph growing) until the
// target weight is reached; the best of `tries` attempts by resulting cut is
// returned.
func growBisection(g *graph.Graph, targetA int64, tries int, r *rng.RNG) []byte {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	var best []byte
	var bestCut int64 = -1
	for attempt := 0; attempt < tries; attempt++ {
		side := make([]byte, n)
		for i := range side {
			side[i] = 1
		}
		q := pq.NewGainQueue(n)
		var grown int64
		add := func(v int32) {
			side[v] = 0
			grown += g.NodeWeight(v)
			q.Remove(v)
			adj := g.Adj(v)
			ws := g.AdjWeights(v)
			for i, u := range adj {
				if side[u] == 0 {
					continue
				}
				// gain of absorbing u = w(u→grown) − w(u→rest)
				delta := 2 * ws[i]
				if q.Contains(u) {
					q.AdjustBy(u, delta)
				} else {
					q.Push(u, delta-g.WeightedDegree(u), uint32(r.Uint64()))
				}
			}
		}
		add(int32(r.Intn(n)))
		for grown < targetA {
			if q.Empty() {
				// Disconnected: restart growth from a random ungrown node.
				v := int32(-1)
				start := r.Intn(n)
				for i := 0; i < n; i++ {
					u := int32((start + i) % n)
					if side[u] == 1 {
						v = u
						break
					}
				}
				if v < 0 {
					break
				}
				add(v)
				continue
			}
			v, _ := q.PopMax()
			add(v)
		}
		blocks := make([]int32, n)
		for v, s := range side {
			blocks[v] = int32(s)
		}
		cut := part.FromBlocks(g, 2, 0.03, blocks).Cut()
		if bestCut < 0 || cut < bestCut {
			bestCut = cut
			best = side
		}
	}
	return best
}
