// Package part provides the k-way partition representation together with the
// quotient graph Q and its edge colorings (§5, Figure 1): the nodes of Q are
// the blocks of the partition, its edges connect blocks with cut edges
// between them, and the matchings induced by an edge coloring of Q tell the
// parallel refinement which pairs of blocks may be refined concurrently.
package part

import (
	"fmt"

	"repro/internal/graph"
)

// Partition is a k-way partition of the nodes of a graph together with the
// balance bookkeeping of §2. Block[v] is the block of node v in [0, K).
type Partition struct {
	G     *graph.Graph
	K     int
	Eps   float64 // allowed imbalance, e.g. 0.03
	Block []int32

	weights []int64 // block weights, maintained incrementally
	lmax    int64
}

// New returns a partition with every node in block 0.
func New(g *graph.Graph, k int, eps float64) *Partition {
	p := &Partition{
		G:       g,
		K:       k,
		Eps:     eps,
		Block:   make([]int32, g.NumNodes()),
		weights: make([]int64, k),
	}
	p.weights[0] = g.TotalNodeWeight()
	p.lmax = ComputeLmax(g, k, eps)
	return p
}

// FromBlocks wraps an existing block assignment (which is adopted, not
// copied).
//
//kappa:invariant block arrays come from this package's own partitions or decoded wire payloads that validate length
func FromBlocks(g *graph.Graph, k int, eps float64, block []int32) *Partition {
	if len(block) != g.NumNodes() {
		panic("part: block array has wrong length")
	}
	p := &Partition{G: g, K: k, Eps: eps, Block: block, weights: make([]int64, k)}
	for v, b := range block {
		p.weights[b] += g.NodeWeight(int32(v))
	}
	p.lmax = ComputeLmax(g, k, eps)
	return p
}

// ComputeLmax evaluates the balance bound Lmax = (1+ε)·c(V)/k + max_v c(v)
// of §2.
func ComputeLmax(g *graph.Graph, k int, eps float64) int64 {
	return int64((1+eps)*float64(g.TotalNodeWeight())/float64(k)) + g.MaxNodeWeight()
}

// Lmax returns the maximum allowed block weight.
func (p *Partition) Lmax() int64 { return p.lmax }

// SetLmax overrides the balance bound. Recursive bisection uses this to
// express per-side bounds when the two sides have unequal target weights.
func (p *Partition) SetLmax(v int64) { p.lmax = v }

// BlockWeight returns c(V_b).
func (p *Partition) BlockWeight(b int32) int64 { return p.weights[b] }

// Move reassigns node v to block to, updating block weights.
func (p *Partition) Move(v int32, to int32) {
	from := p.Block[v]
	if from == to {
		return
	}
	w := p.G.NodeWeight(v)
	p.weights[from] -= w
	p.weights[to] += w
	p.Block[v] = to
}

// Cut returns the total weight of edges crossing between blocks.
func (p *Partition) Cut() int64 {
	var cut int64
	for v := int32(0); v < int32(p.G.NumNodes()); v++ {
		adj := p.G.Adj(v)
		ws := p.G.AdjWeights(v)
		for i, u := range adj {
			if u > v && p.Block[u] != p.Block[v] {
				cut += ws[i]
			}
		}
	}
	return cut
}

// MaxBlockWeight returns the weight of the heaviest block.
func (p *Partition) MaxBlockWeight() int64 {
	max := int64(0)
	for _, w := range p.weights {
		if w > max {
			max = w
		}
	}
	return max
}

// Imbalance returns max_b c(V_b) / (c(V)/k); the paper reports this as
// "balance" (1.03 means 3% over the average).
func (p *Partition) Imbalance() float64 {
	avg := float64(p.G.TotalNodeWeight()) / float64(p.K)
	if avg == 0 {
		return 1
	}
	return float64(p.MaxBlockWeight()) / avg
}

// Feasible reports whether every block respects Lmax.
func (p *Partition) Feasible() bool {
	for _, w := range p.weights {
		if w > p.lmax {
			return false
		}
	}
	return true
}

// Validate checks internal consistency: block range, weight bookkeeping.
func (p *Partition) Validate() error {
	if len(p.Block) != p.G.NumNodes() {
		return fmt.Errorf("part: block array length %d != n %d", len(p.Block), p.G.NumNodes())
	}
	fresh := make([]int64, p.K)
	for v, b := range p.Block {
		if b < 0 || int(b) >= p.K {
			return fmt.Errorf("part: node %d in block %d outside [0,%d)", v, b, p.K)
		}
		fresh[b] += p.G.NodeWeight(int32(v))
	}
	for b := range fresh {
		if fresh[b] != p.weights[b] {
			return fmt.Errorf("part: block %d weight cache %d != actual %d", b, p.weights[b], fresh[b])
		}
	}
	return nil
}

// Clone returns a deep copy sharing only the graph.
func (p *Partition) Clone() *Partition {
	q := &Partition{G: p.G, K: p.K, Eps: p.Eps, lmax: p.lmax}
	q.Block = append([]int32(nil), p.Block...)
	q.weights = append([]int64(nil), p.weights...)
	return q
}

// BoundaryNodes returns all nodes with at least one neighbor in another
// block, in node order.
func (p *Partition) BoundaryNodes() []int32 {
	var out []int32
	for v := int32(0); v < int32(p.G.NumNodes()); v++ {
		for _, u := range p.G.Adj(v) {
			if p.Block[u] != p.Block[v] {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// ExternalDegree returns the number of distinct foreign blocks adjacent to
// block b's boundary; it is reported by examples as a halo statistic.
func (p *Partition) ExternalDegree(b int32) int {
	seen := make(map[int32]bool)
	for v := int32(0); v < int32(p.G.NumNodes()); v++ {
		if p.Block[v] != b {
			continue
		}
		for _, u := range p.G.Adj(v) {
			if p.Block[u] != b {
				seen[p.Block[u]] = true
			}
		}
	}
	return len(seen)
}
