package part

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func stripes(g *graph.Graph, k int) []int32 {
	n := g.NumNodes()
	block := make([]int32, n)
	for v := 0; v < n; v++ {
		block[v] = int32(v * k / n)
	}
	return block
}

func TestCutAndWeights(t *testing.T) {
	// 2x2 grid split into left/right columns: cut = 2.
	g := gen.Grid2D(2, 2)
	p := FromBlocks(g, 2, 0.03, []int32{0, 0, 1, 1})
	if p.Cut() != 2 {
		t.Fatalf("cut = %d, want 2", p.Cut())
	}
	if p.BlockWeight(0) != 2 || p.BlockWeight(1) != 2 {
		t.Fatal("block weights wrong")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.Feasible() {
		t.Fatal("balanced partition reported infeasible")
	}
	if p.Imbalance() != 1.0 {
		t.Fatalf("imbalance = %f, want 1.0", p.Imbalance())
	}
}

func TestMoveMaintainsWeights(t *testing.T) {
	g := gen.Grid2D(4, 4)
	p := FromBlocks(g, 2, 0.03, stripes(g, 2))
	before := p.Cut()
	p.Move(0, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.BlockWeight(0) != 7 || p.BlockWeight(1) != 9 {
		t.Fatalf("weights after move: %d %d", p.BlockWeight(0), p.BlockWeight(1))
	}
	p.Move(0, 1) // moving to own block is a no-op
	if p.BlockWeight(1) != 9 {
		t.Fatal("self-move changed weights")
	}
	p.Move(0, 0)
	if p.Cut() != before {
		t.Fatal("move round trip changed cut")
	}
}

func TestLmaxFormula(t *testing.T) {
	g := gen.Grid2D(10, 10) // 100 unit nodes
	lmax := ComputeLmax(g, 4, 0.03)
	// (1.03*100/4) + 1 = 25.75+1 → 26
	if lmax != 26 {
		t.Fatalf("Lmax = %d, want 26", lmax)
	}
}

func TestFeasible(t *testing.T) {
	g := gen.Grid2D(4, 4)
	block := make([]int32, 16) // all in block 0
	p := FromBlocks(g, 2, 0.03, block)
	if p.Feasible() {
		t.Fatal("fully unbalanced partition reported feasible")
	}
}

func TestBoundaryNodes(t *testing.T) {
	g := gen.Grid2D(4, 4) // columns of 4; split after column 2
	p := FromBlocks(g, 2, 0.03, stripes(g, 2))
	bn := p.BoundaryNodes()
	if len(bn) != 8 {
		t.Fatalf("boundary size %d, want 8", len(bn))
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := gen.Grid2D(3, 3)
	p := FromBlocks(g, 3, 0.03, stripes(g, 3))
	q := p.Clone()
	q.Move(0, 2)
	if p.Block[0] == q.Block[0] {
		t.Fatal("clone shares block array")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadBlock(t *testing.T) {
	g := gen.Grid2D(2, 2)
	p := FromBlocks(g, 2, 0.03, []int32{0, 0, 1, 1})
	p.Block[0] = 7 // corrupt without bookkeeping
	if p.Validate() == nil {
		t.Fatal("out-of-range block accepted")
	}
}

func TestQuotient(t *testing.T) {
	// 4x1 path in 4 blocks: quotient is a path 0-1-2-3.
	g := gen.Grid2D(4, 1)
	p := FromBlocks(g, 4, 0.03, []int32{0, 1, 2, 3})
	q := p.Quotient()
	if len(q) != 3 {
		t.Fatalf("quotient has %d edges, want 3", len(q))
	}
	for i, e := range q {
		if e.A != int32(i) || e.B != int32(i+1) || e.W != 1 {
			t.Fatalf("quotient edge %d = %+v", i, e)
		}
	}
}

func TestQuotientWeights(t *testing.T) {
	g := gen.Grid2D(4, 4)
	p := FromBlocks(g, 2, 0.03, stripes(g, 2))
	q := p.Quotient()
	if len(q) != 1 || q[0].W != 4 {
		t.Fatalf("quotient %+v, want single edge of weight 4", q)
	}
}

// validColoring checks that no two incident edges share a color.
func validColoring(edges []QEdge, colors []int) bool {
	seen := make(map[uint64]bool)
	for i, e := range edges {
		ka := uint64(e.A)<<32 | uint64(colors[i])
		kb := uint64(e.B)<<32 | uint64(colors[i])
		if seen[ka] || seen[kb] {
			return false
		}
		seen[ka], seen[kb] = true, true
	}
	return true
}

func maxQDegree(k int, edges []QEdge) int {
	deg := make([]int, k)
	for _, e := range edges {
		deg[e.A]++
		deg[e.B]++
	}
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	return max
}

func randomQuotient(k int, density float64, r *rng.RNG) []QEdge {
	var edges []QEdge
	for a := int32(0); a < int32(k); a++ {
		for b := a + 1; b < int32(k); b++ {
			if r.Float64() < density {
				edges = append(edges, QEdge{a, b, int64(1 + r.Intn(10))})
			}
		}
	}
	return edges
}

func TestGreedyColoringValidAndBounded(t *testing.T) {
	master := rng.New(71)
	f := func(seed uint16) bool {
		r := master.Split(uint64(seed))
		k := 2 + r.Intn(16)
		edges := randomQuotient(k, 0.5, r)
		colors, nc := GreedyColoring(k, edges)
		if !validColoring(edges, colors) {
			return false
		}
		maxDeg := maxQDegree(k, edges)
		return nc <= 2*maxDeg-1 || len(edges) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedColoringValidAndBounded(t *testing.T) {
	master := rng.New(72)
	f := func(seed uint16) bool {
		r := master.Split(uint64(seed))
		k := 2 + r.Intn(16)
		edges := randomQuotient(k, 0.5, r)
		colors, nc := DistributedColoring(k, edges, uint64(seed))
		for _, c := range colors {
			if c < 0 {
				return false // uncolored edge
			}
		}
		if !validColoring(edges, colors) {
			return false
		}
		// ≤ 2·OPT and OPT ≤ Δ+1 (Vizing), so ≤ 2Δ+2 is a safe bound.
		maxDeg := maxQDegree(k, edges)
		return nc <= 2*maxDeg+2 || len(edges) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedColoringDeterministic(t *testing.T) {
	r := rng.New(2)
	edges := randomQuotient(8, 0.6, r)
	c1, n1 := DistributedColoring(8, edges, 7)
	c2, n2 := DistributedColoring(8, edges, 7)
	if n1 != n2 {
		t.Fatal("color counts differ for equal seeds")
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("colorings differ for equal seeds")
		}
	}
}

func TestColorClassesAreMatchings(t *testing.T) {
	r := rng.New(3)
	edges := randomQuotient(12, 0.4, r)
	colors, nc := GreedyColoring(12, edges)
	classes := ColorClasses(edges, colors, nc)
	total := 0
	for _, class := range classes {
		busy := make(map[int32]bool)
		for _, e := range class {
			if busy[e.A] || busy[e.B] {
				t.Fatal("color class is not a matching")
			}
			busy[e.A], busy[e.B] = true, true
		}
		total += len(class)
	}
	if total != len(edges) {
		t.Fatal("color classes lost edges")
	}
}

func TestRandomPairScheduleCoversAllEdges(t *testing.T) {
	r := rng.New(4)
	edges := randomQuotient(10, 0.5, r)
	rounds := RandomPairSchedule(10, edges, 99)
	count := 0
	for _, round := range rounds {
		busy := make(map[int32]bool)
		for _, e := range round {
			if busy[e.A] || busy[e.B] {
				t.Fatal("round is not a matching")
			}
			busy[e.A], busy[e.B] = true, true
			count++
		}
	}
	if count != len(edges) {
		t.Fatalf("schedule covered %d of %d edges", count, len(edges))
	}
}

func TestExternalDegree(t *testing.T) {
	g := gen.Grid2D(4, 1)
	p := FromBlocks(g, 4, 0.03, []int32{0, 1, 2, 3})
	if p.ExternalDegree(0) != 1 || p.ExternalDegree(1) != 2 {
		t.Fatal("external degrees wrong")
	}
}
