package part

import (
	"sort"

	"repro/internal/rng"
)

// QEdge is an edge of the quotient graph Q: an unordered pair of blocks with
// at least one cut edge between them. A < B always holds.
type QEdge struct {
	A, B int32
	W    int64 // total weight of cut edges between the two blocks
}

// Quotient builds the quotient graph of the partition as an edge list sorted
// by (A, B). Its nodes are the K blocks.
func (p *Partition) Quotient() []QEdge {
	acc := make(map[uint64]int64)
	for v := int32(0); v < int32(p.G.NumNodes()); v++ {
		bv := p.Block[v]
		adj := p.G.Adj(v)
		ws := p.G.AdjWeights(v)
		for i, u := range adj {
			if u <= v {
				continue
			}
			bu := p.Block[u]
			if bu == bv {
				continue
			}
			a, b := bv, bu
			if a > b {
				a, b = b, a
			}
			acc[uint64(a)<<32|uint64(uint32(b))] += ws[i]
		}
	}
	edges := make([]QEdge, 0, len(acc))
	for key, w := range acc {
		edges = append(edges, QEdge{int32(key >> 32), int32(uint32(key)), w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	return edges
}

// GreedyColoring assigns each quotient edge the smallest color not yet used
// at either endpoint, scanning edges in the given order. It returns the
// per-edge colors and the number of colors used, which is at most 2Δ−1 for
// maximum quotient degree Δ.
func GreedyColoring(k int, edges []QEdge) ([]int, int) {
	used := make([]map[int]bool, k)
	for i := range used {
		used[i] = make(map[int]bool)
	}
	colors := make([]int, len(edges))
	maxColor := 0
	for i, e := range edges {
		c := 0
		for used[e.A][c] || used[e.B][c] {
			c++
		}
		colors[i] = c
		used[e.A][c] = true
		used[e.B][c] = true
		if c+1 > maxColor {
			maxColor = c + 1
		}
	}
	return colors, maxColor
}

// DistributedColoring runs the parallel randomized edge-coloring algorithm
// of §5.1: every PE (block) keeps a free-color list; in each round PEs flip
// an active/passive coin; an active PE picks a random uncolored incident
// edge and sends it with its free list to the other endpoint; a passive
// receiver colors the edge with the smallest color free at both endpoints.
// Requests arriving at active PEs are rejected and retried in a later round.
// The algorithm uses at most twice as many colors as an optimal edge
// coloring. This implementation simulates the synchronous rounds
// deterministically from the seed; the PE-parallel execution lives in
// internal/core, which iterates the resulting color classes.
func DistributedColoring(k int, edges []QEdge, seed uint64) ([]int, int) {
	colors := make([]int, len(edges))
	for i := range colors {
		colors[i] = -1
	}
	// incident[b] = indices of uncolored edges at block b.
	incident := make([][]int, k)
	for i, e := range edges {
		incident[e.A] = append(incident[e.A], i)
		incident[e.B] = append(incident[e.B], i)
	}
	usedAt := make([]map[int]bool, k)
	rngs := make([]*rng.RNG, k)
	for b := 0; b < k; b++ {
		usedAt[b] = make(map[int]bool)
		rngs[b] = rng.NewStream(seed, uint64(b))
	}
	remaining := len(edges)
	maxColor := 0
	for round := 0; remaining > 0; round++ {
		active := make([]bool, k)
		for b := 0; b < k; b++ {
			active[b] = rngs[b].Bool()
		}
		type request struct {
			edge int
			from int32
		}
		inbox := make([][]request, k)
		for b := int32(0); b < int32(k); b++ {
			if !active[b] {
				continue
			}
			// Prune already-colored incident edges lazily.
			inc := incident[b][:0]
			for _, ei := range incident[b] {
				if colors[ei] < 0 {
					inc = append(inc, ei)
				}
			}
			incident[b] = inc
			if len(inc) == 0 {
				continue
			}
			ei := inc[rngs[b].Intn(len(inc))]
			other := edges[ei].A
			if other == b {
				other = edges[ei].B
			}
			inbox[other] = append(inbox[other], request{ei, b})
		}
		for b := int32(0); b < int32(k); b++ {
			if active[b] {
				continue // active PEs reject requests
			}
			for _, req := range inbox[b] {
				if colors[req.edge] >= 0 {
					continue // a previous request this round colored it
				}
				c := 0
				for usedAt[b][c] || usedAt[req.from][c] {
					c++
				}
				colors[req.edge] = c
				usedAt[b][c] = true
				usedAt[req.from][c] = true
				if c+1 > maxColor {
					maxColor = c + 1
				}
				remaining--
			}
		}
	}
	return colors, maxColor
}

// ColorClasses groups quotient edges by color; each class is a matching of
// Q, i.e. a set of block pairs that can be refined concurrently.
func ColorClasses(edges []QEdge, colors []int, numColors int) [][]QEdge {
	classes := make([][]QEdge, numColors)
	for i, e := range edges {
		classes[colors[i]] = append(classes[colors[i]], e)
	}
	return classes
}

// RandomPairSchedule is the alternative schedule of §5.1: instead of
// stepping through color classes, it repeatedly emits a random maximal
// matching of the yet-unprocessed quotient edges until every edge has been
// scheduled once. The paper found edge coloring slightly better; this
// variant is kept for the schedule ablation.
func RandomPairSchedule(k int, edges []QEdge, seed uint64) [][]QEdge {
	r := rng.New(seed)
	done := make([]bool, len(edges))
	remaining := len(edges)
	var rounds [][]QEdge
	for remaining > 0 {
		perm := r.Perm(len(edges))
		busy := make([]bool, k)
		var round []QEdge
		for _, i := range perm {
			if done[i] {
				continue
			}
			e := edges[i]
			if busy[e.A] || busy[e.B] {
				continue
			}
			busy[e.A], busy[e.B] = true, true
			done[i] = true
			remaining--
			round = append(round, e)
		}
		rounds = append(rounds, round)
	}
	return rounds
}
