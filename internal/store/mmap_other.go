//go:build !unix

package store

import (
	"errors"
	"os"
)

const mmapSupported = false

func mapFile(_ *os.File, _ int64) ([]byte, func() error, error) {
	return nil, nil, errors.New("store: memory mapping unsupported on this platform")
}
