package store_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/store"
	"repro/internal/wire"
)

// weightedGraph builds a small weighted coordinate graph, so the CSR
// segment's ewgt/nwgt/coords sections all carry non-default values.
func weightedGraph(t *testing.T) *graph.Graph {
	t.Helper()
	const n = 200
	b := graph.NewBuilder(n)
	for v := int32(0); v < n; v++ {
		b.SetNodeWeight(v, int64(v%7)+1)
		b.SetCoord(v, float64(v%20), float64(v/20))
		b.AddEdge(v, (v+1)%n, int64(v%5)+1)
		b.AddEdge(v, (v+13)%n, 2)
	}
	return b.Build()
}

func writeStore(t *testing.T, g *graph.Graph, pes int, strategy dist.Strategy) (string, *store.Manifest) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "g.kst")
	m, err := store.Write(dir, g, store.WriteOptions{PEs: pes, Strategy: strategy, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return dir, m
}

// sameGraph compares every value a partitioning run can observe.
func sameGraph(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape: got %d/%d, want %d/%d", got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	if got.TotalNodeWeight() != want.TotalNodeWeight() || got.TotalEdgeWeight() != want.TotalEdgeWeight() ||
		got.MaxNodeWeight() != want.MaxNodeWeight() || got.AdjSorted() != want.AdjSorted() ||
		got.CoordDims() != want.CoordDims() {
		t.Fatal("aggregates diverged")
	}
	for v := int32(0); v < int32(want.NumNodes()); v++ {
		if !reflect.DeepEqual(got.Adj(v), want.Adj(v)) || !reflect.DeepEqual(got.AdjWeights(v), want.AdjWeights(v)) {
			t.Fatalf("adjacency of node %d diverged", v)
		}
		if got.NodeWeight(v) != want.NodeWeight(v) {
			t.Fatalf("weight of node %d diverged", v)
		}
	}
	if want.CoordDims() >= 2 {
		wx, wy, wz := want.Coords3()
		gx, gy, gz := got.Coords3()
		if !reflect.DeepEqual(gx, wx) || !reflect.DeepEqual(gy, wy) || !reflect.DeepEqual(gz, wz) {
			t.Fatal("coordinates diverged")
		}
	}
}

func TestWriteOpenRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name     string
		g        *graph.Graph
		pes      int
		strategy dist.Strategy
	}{
		{"weighted-2d", weightedGraph(t), 4, dist.StrategyAuto},
		{"rgg", gen.RGG(10, 1), 3, dist.StrategyRCB},
		{"grid3d", gen.Grid3D(8, 7, 5), 2, dist.StrategySFC},
		{"no-coords", gen.PrefAttach(500, 4, 9), 4, dist.StrategyRanges},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir, m := writeStore(t, tc.g, tc.pes, tc.strategy)
			if m.Nodes != int64(tc.g.NumNodes()) || m.Edges != int64(tc.g.NumEdges()) || m.PEs != tc.pes {
				t.Fatalf("manifest shape %d/%d/%d", m.Nodes, m.Edges, m.PEs)
			}
			if m.Strategy != tc.strategy.String() {
				t.Fatalf("manifest strategy %q, want %q", m.Strategy, tc.strategy)
			}
			s, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Verify(); err != nil {
				t.Fatal(err)
			}

			mg, err := s.MapGraph()
			if err != nil {
				t.Fatal(err)
			}
			defer mg.Close()
			sameGraph(t, tc.g, mg.G)

			// The parallel loader must reproduce exactly what the in-memory
			// coordinator would extract at level 0.
			want := dist.ExtractAll(tc.g, dist.Assign(tc.g, tc.strategy, tc.pes), tc.pes)
			got, err := s.LoadShards(2)
			if err != nil {
				t.Fatal(err)
			}
			for pe := range want {
				if !reflect.DeepEqual(got[pe], want[pe]) {
					t.Fatalf("shard %d diverged from in-memory extraction", pe)
				}
			}
		})
	}
}

// TestShardBytesMatchWireEncoding pins the splice contract: the stored
// shard file is byte-for-byte the wire.AppendSubgraph encoding the
// coordinator would produce at level 0.
func TestShardBytesMatchWireEncoding(t *testing.T) {
	g := gen.RGG(9, 5)
	const pes = 3
	dir, _ := writeStore(t, g, pes, dist.StrategyAuto)
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sgs := dist.ExtractAll(g, dist.Assign(g, dist.StrategyAuto, pes), pes)
	for pe := 0; pe < pes; pe++ {
		want, err := wire.AppendSubgraph(nil, sgs[pe])
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.ShardBytes(pe)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("shard %d bytes differ from the live encoding", pe)
		}
	}
}

// TestWriteDeterministic: two writes of the same graph produce identical
// bytes — manifest, shards, and CSR segment.
func TestWriteDeterministic(t *testing.T) {
	g := gen.RGG(9, 2)
	dirA, _ := writeStore(t, g, 4, dist.StrategyAuto)
	dirB, _ := writeStore(t, g, 4, dist.StrategyAuto)
	entries, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4+2 { // shards + manifest + csr
		t.Fatalf("store has %d files", len(entries))
	}
	for _, e := range entries {
		a, err := os.ReadFile(filepath.Join(dirA, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between two writes", e.Name())
		}
	}
}

// TestRunFromMappedGraph is the local byte-identity pin: a full pipeline
// run over the mapped graph equals the run over the original in-memory
// graph, bit for bit.
func TestRunFromMappedGraph(t *testing.T) {
	g := gen.RGG(10, 7)
	dir, _ := writeStore(t, g, 4, dist.StrategyAuto)
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := s.MapGraph()
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()

	cfg := core.NewConfig(core.Fast, 8)
	cfg.Seed = 4242
	cfg.PEs = 4
	cfg.Coarsen = core.CoarsenDistributed
	want, err := core.Run(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Run(context.Background(), mg.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cut != want.Cut || !reflect.DeepEqual(got.Blocks, want.Blocks) {
		t.Fatalf("mapped-graph run diverged: cut %d vs %d", got.Cut, want.Cut)
	}
}

// TestMapGraphHeapFootprint demonstrates the out-of-core claim: bringing
// the mapped graph up allocates O(1) heap, not O(CSR). (Heap-fallback
// platforms skip; there the loader is a conventional O(CSR) decoder.)
func TestMapGraphHeapFootprint(t *testing.T) {
	g := gen.Grid2D(400, 400) // ~160k nodes, ~319k edges; CSR segment ~8 MiB
	dir, m := writeStore(t, g, 2, dist.StrategyAuto)
	g = nil
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	mg, err := s.MapGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !mg.Mapped() {
		t.Skip("mmap unavailable on this platform; heap fallback in use")
	}
	runtime.ReadMemStats(&after)
	defer mg.Close()

	delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if limit := m.CSR.Bytes / 8; delta > limit {
		t.Fatalf("MapGraph allocated %d heap bytes for a %d-byte CSR segment (limit %d)", delta, m.CSR.Bytes, limit)
	}
	// The values must still be fully usable.
	if mg.G.NumNodes() != 160000 || mg.G.Degree(0) != 2 {
		t.Fatal("mapped graph unreadable")
	}
}

func TestHostileManifests(t *testing.T) {
	g := gen.RGG(8, 1)
	dir, _ := writeStore(t, g, 2, dist.StrategyAuto)
	good, err := os.ReadFile(filepath.Join(dir, store.ManifestFile))
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(t *testing.T, f func(m *store.Manifest)) error {
		t.Helper()
		m, err := store.ReadManifest(bytes.NewReader(good))
		if err != nil {
			t.Fatal(err)
		}
		f(m)
		return m.Validate()
	}

	t.Run("nodes-over-budget", func(t *testing.T) {
		err := mutate(t, func(m *store.Manifest) { m.Nodes = 1 << 40 })
		if !errors.Is(err, graphio.ErrLimit) {
			t.Fatalf("want ErrLimit, got %v", err)
		}
	})
	t.Run("edges-over-budget", func(t *testing.T) {
		err := mutate(t, func(m *store.Manifest) { m.Edges = 1 << 40 })
		if !errors.Is(err, graphio.ErrLimit) {
			t.Fatalf("want ErrLimit, got %v", err)
		}
	})
	t.Run("shard-bytes-inflated", func(t *testing.T) {
		err := mutate(t, func(m *store.Manifest) { m.Shards[0].Bytes = 1 << 50 })
		if !errors.Is(err, graphio.ErrLimit) {
			t.Fatalf("want ErrLimit, got %v", err)
		}
	})
	t.Run("wrong-version", func(t *testing.T) {
		if err := mutate(t, func(m *store.Manifest) { m.Version = 99 }); err == nil {
			t.Fatal("version 99 accepted")
		}
	})
	t.Run("path-traversal", func(t *testing.T) {
		if err := mutate(t, func(m *store.Manifest) { m.Shards[0].File = "../../etc/passwd" }); err == nil {
			t.Fatal("traversing file name accepted")
		}
	})
	t.Run("absolute-path", func(t *testing.T) {
		if err := mutate(t, func(m *store.Manifest) { m.CSR.File = "/etc/passwd" }); err == nil {
			t.Fatal("absolute file name accepted")
		}
	})
	t.Run("owned-sum-mismatch", func(t *testing.T) {
		if err := mutate(t, func(m *store.Manifest) { m.Shards[0].Owned++ }); err == nil {
			t.Fatal("incoherent owned sum accepted")
		}
	})
}

func TestCorruptionDetected(t *testing.T) {
	g := gen.RGG(8, 3)
	dir, m := writeStore(t, g, 2, dist.StrategyAuto)

	flip := func(t *testing.T, name string, off int64) func() {
		t.Helper()
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		orig := data[off]
		data[off] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return func() {
			data[off] = orig
			os.WriteFile(path, data, 0o644)
		}
	}

	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("shard-bit-flip", func(t *testing.T) {
		restore := flip(t, m.Shards[1].File, m.Shards[1].Bytes/2)
		defer restore()
		if _, err := s.ShardBytes(1); err == nil {
			t.Fatal("corrupted shard passed its checksum")
		}
	})
	t.Run("shard-truncated", func(t *testing.T) {
		path := filepath.Join(dir, m.Shards[0].File)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
			t.Fatal(err)
		}
		defer os.WriteFile(path, data, 0o644)
		if _, err := s.ShardBytes(0); err == nil {
			t.Fatal("truncated shard accepted")
		}
	})
	t.Run("csr-bit-flip", func(t *testing.T) {
		restore := flip(t, m.CSR.File, m.CSR.Bytes-3)
		defer restore()
		if err := s.Verify(); err == nil {
			t.Fatal("corrupted csr segment passed Verify")
		}
	})
}

func TestOpenRejectsNonStores(t *testing.T) {
	if _, err := store.Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("opened a missing directory")
	}
	empty := t.TempDir()
	if _, err := store.Open(empty); err == nil {
		t.Fatal("opened a directory without a manifest")
	}
	file := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Open(file); err == nil {
		t.Fatal("opened a plain file")
	}
}

func TestWriteRejectsBadOptions(t *testing.T) {
	g := gen.RGG(6, 1)
	if _, err := store.Write(t.TempDir(), g, store.WriteOptions{PEs: 0}); err == nil {
		t.Fatal("0 PEs accepted")
	}
	if _, err := store.Write(t.TempDir(), g, store.WriteOptions{PEs: g.NumNodes() + 1}); err == nil {
		t.Fatal("more PEs than nodes accepted")
	}
}
