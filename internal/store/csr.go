package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// The CSR segment (csr.kcb) is the global graph laid out for random access:
// a 16-byte header followed by fixed-width little-endian sections, each
// 8-byte aligned —
//
//	xadj   (n+1) × int32
//	adj    2m    × int32
//	ewgt   2m    × int64
//	nwgt   n     × int64
//	coords d·n   × float64   (x array, then y, then z; d = CoordDims)
//
// Fixed width is the point: on a little-endian host the file maps read-only
// and the sections ARE the graph's CSR arrays — no decode, no allocation
// proportional to the graph, the OS pages in exactly what the run touches.
// Hosts that cannot map (or are big-endian) decode the same sections into
// heap slices instead; the values, and therefore the partition, are
// identical either way.

const (
	csrMagic      = "KCSB"
	csrVersion    = 1
	csrHeaderSize = 16
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// csrLayout is the derived section placement for a graph's counts.
type csrLayout struct {
	xadjOff, adjOff, ewgtOff, nwgtOff, coordOff int64
	total                                       int64
}

func align8(n int64) int64 { return (n + 7) &^ 7 }

func layoutCSR(nodes, edges int64, coordDims int) csrLayout {
	var l csrLayout
	off := int64(csrHeaderSize)
	l.xadjOff = off
	off += align8(4 * (nodes + 1))
	l.adjOff = off
	off += align8(4 * 2 * edges)
	l.ewgtOff = off
	off += 8 * 2 * edges
	l.nwgtOff = off
	off += 8 * nodes
	if coordDims > 0 {
		l.coordOff = off
		off += 8 * int64(coordDims) * nodes
	}
	l.total = off
	return l
}

// countingWriter tracks the byte offset so the writer can pad sections to
// their 8-aligned layout positions.
type countingWriter struct {
	w   *bufio.Writer
	off int64
}

func (c *countingWriter) write(p []byte) error {
	n, err := c.w.Write(p)
	c.off += int64(n)
	return err
}

func (c *countingWriter) padTo(off int64) error {
	var zero [8]byte
	for c.off < off {
		n := off - c.off
		if n > 8 {
			n = 8
		}
		if err := c.write(zero[:n]); err != nil {
			return err
		}
	}
	return nil
}

// writeCSR streams g into the CSR segment at path and returns its location
// record. It never materializes a section: values go straight from the
// graph's accessors through a buffered writer (and the running checksum).
func writeCSR(path string, g *graph.Graph) (CSRInfo, error) {
	n := int64(g.NumNodes())
	m := int64(g.NumEdges())
	dims := g.CoordDims()
	lay := layoutCSR(n, m, dims)

	f, err := os.Create(path)
	if err != nil {
		return CSRInfo{}, err
	}
	defer f.Close()
	crc := crc32.New(castagnoli)
	cw := &countingWriter{w: bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<20)}

	var hdr [csrHeaderSize]byte
	copy(hdr[:4], csrMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], csrVersion)
	if err := cw.write(hdr[:]); err != nil {
		return CSRInfo{}, err
	}

	var b8 [8]byte
	put32 := func(v int32) error {
		binary.LittleEndian.PutUint32(b8[:4], uint32(v))
		return cw.write(b8[:4])
	}
	put64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(b8[:], v)
		return cw.write(b8[:])
	}

	// xadj: reconstructed from the degrees (xadj[0] is always 0).
	var cum int32
	if err := put32(0); err != nil {
		return CSRInfo{}, err
	}
	for v := int32(0); v < int32(n); v++ {
		cum += int32(g.Degree(v))
		if err := put32(cum); err != nil {
			return CSRInfo{}, err
		}
	}
	if err := cw.padTo(lay.adjOff); err != nil {
		return CSRInfo{}, err
	}
	for v := int32(0); v < int32(n); v++ {
		for _, u := range g.Adj(v) {
			if err := put32(u); err != nil {
				return CSRInfo{}, err
			}
		}
	}
	if err := cw.padTo(lay.ewgtOff); err != nil {
		return CSRInfo{}, err
	}
	for v := int32(0); v < int32(n); v++ {
		for _, w := range g.AdjWeights(v) {
			if err := put64(uint64(w)); err != nil {
				return CSRInfo{}, err
			}
		}
	}
	for v := int32(0); v < int32(n); v++ {
		if err := put64(uint64(g.NodeWeight(v))); err != nil {
			return CSRInfo{}, err
		}
	}
	if dims > 0 {
		x, y, z := g.Coords3()
		for _, arr := range [][]float64{x, y, z} {
			if arr == nil {
				continue
			}
			for _, c := range arr {
				if err := put64(uint64(floatBits(c))); err != nil {
					return CSRInfo{}, err
				}
			}
		}
	}
	if cw.off != lay.total {
		return CSRInfo{}, fmt.Errorf("store: csr writer produced %d bytes, layout says %d", cw.off, lay.total)
	}
	if err := cw.w.Flush(); err != nil {
		return CSRInfo{}, err
	}
	if err := f.Sync(); err != nil {
		return CSRInfo{}, err
	}
	return CSRInfo{
		File: CSRFile, Bytes: lay.total, CRC32C: crc.Sum32(),
		XadjOff: lay.xadjOff, AdjOff: lay.adjOff, EwgtOff: lay.ewgtOff,
		NwgtOff: lay.nwgtOff, CoordOff: lay.coordOff,
	}, nil
}

// MappedGraph is the store's view of the global graph. When Mapped reports
// true the Graph's CSR arrays are read-only views over the memory-mapped
// CSR segment — construction cost and heap footprint are O(1), the OS pages
// data in on access. Otherwise (mapping unsupported, or a big-endian host)
// the arrays were decoded onto the heap; the values are identical.
//
// The arrays alias the mapping: keep the Graph (or the MappedGraph)
// reachable while any slice derived from it is in use, and Close only when
// the run is over. An unclosed MappedGraph releases its mapping when the
// Graph becomes unreachable.
type MappedGraph struct {
	G      *graph.Graph
	mapped bool
	unmap  func() error
	once   *sync.Once
}

// Mapped reports whether the graph is backed by the mapped segment rather
// than heap copies.
func (m *MappedGraph) Mapped() bool { return m.mapped }

// Close releases the mapping (idempotent; a no-op for heap-backed graphs).
// The Graph's array contents must not be touched afterwards.
func (m *MappedGraph) Close() error {
	var err error
	m.once.Do(func() {
		if m.unmap != nil {
			err = m.unmap()
		}
	})
	return err
}

// MapGraph opens the store's global graph. The fast path maps the CSR
// segment and builds the Graph over its sections without reading them; the
// fallback decodes the sections into heap arrays. Structural validation is
// header/size-level (magic, version, exact segment size per the manifest) —
// content integrity is the writer's checksum, verifiable with Verify.
func (s *Store) MapGraph() (*MappedGraph, error) {
	man := s.manifest
	lay := layoutCSR(man.Nodes, man.Edges, man.CoordDims)
	f, err := os.Open(s.path(man.CSR.File))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() != lay.total {
		return nil, fmt.Errorf("store: csr segment is %d bytes, manifest layout says %d", st.Size(), lay.total)
	}
	var hdr [csrHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("store: csr header: %w", err)
	}
	if string(hdr[:4]) != csrMagic {
		return nil, fmt.Errorf("store: csr segment has magic %q, want %q", hdr[:4], csrMagic)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != csrVersion {
		return nil, fmt.Errorf("store: csr segment version %d, this build reads %d", v, csrVersion)
	}

	if mmapSupported && hostLittleEndian {
		data, unmap, err := mapFile(f, lay.total)
		if err == nil {
			g := graphOverMapping(data, man, lay)
			once := new(sync.Once)
			mg := &MappedGraph{G: g, mapped: true, once: once, unmap: func() error { return unmap() }}
			// Backstop for callers that drop the graph without closing
			// (e.g. a retained service job): release the address range when
			// the graph is collected. Close and the cleanup share the Once.
			runtime.AddCleanup(g, func(u func() error) { once.Do(func() { u() }) }, unmap)
			return mg, nil
		}
		// Mapping can legitimately fail (filesystem without mmap support);
		// fall through to the heap decoder.
	}
	g, err := readCSRHeap(f, man, lay)
	if err != nil {
		return nil, err
	}
	return &MappedGraph{G: g, once: new(sync.Once)}, nil
}

// graphOverMapping builds the Graph whose arrays are views into data. The
// offsets are 8-aligned by layout and the mapping is page-aligned, so the
// views are well-aligned for their types.
func graphOverMapping(data []byte, man *Manifest, lay csrLayout) *graph.Graph {
	n, half := man.Nodes, 2*man.Edges
	xadj := int32View(data, lay.xadjOff, n+1)
	adj := int32View(data, lay.adjOff, half)
	ewgt := int64View(data, lay.ewgtOff, half)
	nwgt := int64View(data, lay.nwgtOff, n)
	g := graph.FromCSRTrusted(xadj, adj, ewgt, nwgt, graph.CSRAggregates{
		TotalNodeWeight: man.TotalNodeWeight,
		TotalEdgeWeight: man.TotalEdgeWeight,
		MaxNodeWeight:   man.MaxNodeWeight,
		AdjSorted:       man.AdjSorted,
	})
	switch man.CoordDims {
	case 2:
		x := float64View(data, lay.coordOff, n)
		y := float64View(data, lay.coordOff+8*n, n)
		g.SetCoords(x, y)
	case 3:
		x := float64View(data, lay.coordOff, n)
		y := float64View(data, lay.coordOff+8*n, n)
		z := float64View(data, lay.coordOff+16*n, n)
		g.SetCoords3(x, y, z)
	}
	return g
}

// readCSRHeap decodes the sections into freshly allocated arrays — the
// portable path, O(CSR) heap like any other loader. f is positioned after
// the header; sections are read in file order.
func readCSRHeap(f *os.File, man *Manifest, lay csrLayout) (*graph.Graph, error) {
	n, half := man.Nodes, 2*man.Edges
	br := bufio.NewReaderSize(f, 1<<20)
	off := int64(csrHeaderSize)
	skipTo := func(target int64) error {
		if target < off {
			return fmt.Errorf("store: csr sections out of order")
		}
		if _, err := io.CopyN(io.Discard, br, target-off); err != nil {
			return err
		}
		off = target
		return nil
	}
	readInt32s := func(count int64) ([]int32, error) {
		out := make([]int32, count)
		var buf [4]byte
		for i := range out {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, err
			}
			out[i] = int32(binary.LittleEndian.Uint32(buf[:]))
		}
		off += 4 * count
		return out, nil
	}
	readInt64s := func(count int64) ([]int64, error) {
		out := make([]int64, count)
		var buf [8]byte
		for i := range out {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, err
			}
			out[i] = int64(binary.LittleEndian.Uint64(buf[:]))
		}
		off += 8 * count
		return out, nil
	}
	readFloat64s := func(count int64) ([]float64, error) {
		raw, err := readInt64s(count)
		if err != nil {
			return nil, err
		}
		out := make([]float64, count)
		for i, v := range raw {
			out[i] = floatFromBits(uint64(v))
		}
		return out, nil
	}

	if err := skipTo(lay.xadjOff); err != nil {
		return nil, err
	}
	xadj, err := readInt32s(n + 1)
	if err != nil {
		return nil, fmt.Errorf("store: csr xadj: %w", err)
	}
	if err := skipTo(lay.adjOff); err != nil {
		return nil, err
	}
	adj, err := readInt32s(half)
	if err != nil {
		return nil, fmt.Errorf("store: csr adj: %w", err)
	}
	if err := skipTo(lay.ewgtOff); err != nil {
		return nil, err
	}
	ewgt, err := readInt64s(half)
	if err != nil {
		return nil, fmt.Errorf("store: csr ewgt: %w", err)
	}
	nwgt, err := readInt64s(n)
	if err != nil {
		return nil, fmt.Errorf("store: csr nwgt: %w", err)
	}
	g := graph.FromCSRTrusted(xadj, adj, ewgt, nwgt, graph.CSRAggregates{
		TotalNodeWeight: man.TotalNodeWeight,
		TotalEdgeWeight: man.TotalEdgeWeight,
		MaxNodeWeight:   man.MaxNodeWeight,
		AdjSorted:       man.AdjSorted,
	})
	if man.CoordDims >= 2 {
		x, err := readFloat64s(n)
		if err != nil {
			return nil, fmt.Errorf("store: csr coords: %w", err)
		}
		y, err := readFloat64s(n)
		if err != nil {
			return nil, fmt.Errorf("store: csr coords: %w", err)
		}
		if man.CoordDims == 3 {
			z, err := readFloat64s(n)
			if err != nil {
				return nil, fmt.Errorf("store: csr coords: %w", err)
			}
			g.SetCoords3(x, y, z)
		} else {
			g.SetCoords(x, y)
		}
	}
	return g, nil
}

// verifyCSRChecksum streams the segment through the checksum — a full read
// by design, for integrity audits (Verify), never on the serve hot path.
func (s *Store) verifyCSRChecksum() error {
	f, err := os.Open(s.path(s.manifest.CSR.File))
	if err != nil {
		return err
	}
	defer f.Close()
	crc := crc32.New(castagnoli)
	if _, err := io.Copy(crc, f); err != nil {
		return err
	}
	if got := crc.Sum32(); got != s.manifest.CSR.CRC32C {
		return fmt.Errorf("store: csr segment checksum %08x, manifest records %08x", got, s.manifest.CSR.CRC32C)
	}
	return nil
}
