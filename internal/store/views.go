package store

import (
	"math"
	"unsafe"
)

// The mapped fast path reinterprets file bytes as typed slices, which is
// only a view (not a decode) when the host's in-memory layout matches the
// file's: little-endian, natural alignment. The layout guarantees 8-byte
// section alignment; endianness is checked once at startup and big-endian
// hosts take the portable heap decoder instead.

var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func int32View(data []byte, off, count int64) []int32 {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&data[off])), count)
}

func int64View(data []byte, off, count int64) []int64 {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&data[off])), count)
}

func float64View(data []byte, off, count int64) []float64 {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&data[off])), count)
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
