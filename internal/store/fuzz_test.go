package store_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graphio"
	"repro/internal/store"
)

// seedStore writes one small real store and returns its manifest and first
// shard bytes as fuzz seeds.
func seedStore(f *testing.F) (manifest, shard []byte) {
	f.Helper()
	dir := filepath.Join(f.TempDir(), "seed.kst")
	g := gen.RGG(7, 1)
	if _, err := store.Write(dir, g, store.WriteOptions{PEs: 2, Strategy: dist.StrategyAuto}); err != nil {
		f.Fatal(err)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, store.ManifestFile))
	if err != nil {
		f.Fatal(err)
	}
	shard, err = os.ReadFile(filepath.Join(dir, "shard-0000.kps"))
	if err != nil {
		f.Fatal(err)
	}
	return manifest, shard
}

// FuzzReadManifest: hostile manifests must fail with an error — never a
// panic, never size-proportional allocation (the validator checks declared
// counts against the decode budget before anything acts on them).
func FuzzReadManifest(f *testing.F) {
	manifest, _ := seedStore(f)
	f.Add(manifest)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1,"pes":1,"nodes":99999999999,"shards":[{}]}`))
	f.Add([]byte(`{"version":1,"pes":2,"nodes":4,"edges":3,"shards":[{"file":"../x","pe":0},{"file":"b","pe":1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := store.ReadManifest(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parses must re-validate cleanly: ReadManifest's contract
		// is that a returned manifest is coherent.
		if err := m.Validate(); err != nil {
			t.Fatalf("ReadManifest returned a manifest its own validator rejects: %v", err)
		}
	})
}

// FuzzReadShard: shard decoding (the same decoder workers run on job
// frames) must never panic and must respect the decode budget. The budget
// is tightened so mutated headers declaring huge-but-under-default-budget
// counts exercise the typed rejection path instead of multi-hundred-MB
// allocations per exec.
func FuzzReadShard(f *testing.F) {
	_, shard := seedStore(f)
	graphio.SetDecodeBudget(1<<16, 1<<17)
	f.Cleanup(func() { graphio.SetDecodeBudget(0, 0) })
	f.Add(shard)
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		sg, err := store.DecodeShard(data)
		if err != nil {
			return
		}
		if sg == nil || sg.Local == nil {
			t.Fatal("DecodeShard returned a nil subgraph without an error")
		}
	})
}
