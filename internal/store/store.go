// Package store implements kappastore, the on-disk sharded graph store the
// out-of-core serve path runs from. A store directory holds:
//
//	manifest.json    versioned description: counts, aggregate weights,
//	                 distribution strategy, per-shard records, checksums
//	shard-NNNN.kps   one shard per PE — the exact wire.AppendSubgraph
//	                 encoding of that PE's subgraph (local CSR + ghost
//	                 layer + local↔global id maps)
//	csr.kcb          the global graph as fixed-width little-endian CSR
//	                 sections, built for read-only memory mapping
//
// The shard files are the level-0 job payloads of the serve protocol,
// byte-for-byte: a coordinator splices them into wire frames without
// decoding, so serving from a store streams each worker exactly the bytes
// an in-memory coordinator would have extracted and encoded. The CSR
// segment gives the coordinator-local phases (initial partitioning on the
// coarsest graph's ancestry, final refinement) the same graph values
// without the coordinator ever allocating the global adjacency — the
// mapping's pages are the page cache's problem, not the Go heap's.
//
// Every reader validates declared sizes against the graphio decode budget
// before size-proportional work, with the same typed *graphio.LimitError
// contract the graph-file decoders follow.
package store

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/wire"
)

// Store is an opened shard store: the parsed, validated manifest and the
// directory to resolve shard and segment reads against. Open reads only the
// manifest — shards and the CSR segment are touched on demand.
type Store struct {
	dir      string
	manifest *Manifest
}

// Open reads and validates dir's manifest. It does not open shard files or
// the CSR segment; a coordinator that streams shards to workers holds
// nothing graph-sized after Open.
func Open(dir string) (*Store, error) {
	st, err := os.Stat(dir)
	if err != nil {
		return nil, err
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("store: %s is not a directory (a shard store is a directory holding %s)", dir, ManifestFile)
	}
	f, err := os.Open(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("store: %s has no readable manifest: %w", dir, err)
	}
	defer f.Close()
	m, err := ReadManifest(f)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", dir, err)
	}
	return &Store{dir: dir, manifest: m}, nil
}

// Manifest returns the store's validated manifest. Callers must treat it as
// read-only.
func (s *Store) Manifest() *Manifest { return s.manifest }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(name string) string { return filepath.Join(s.dir, name) }

// ShardBytes reads one shard file whole and verifies its size and checksum
// against the manifest. The returned bytes are the exact AppendSubgraph
// encoding — spliceable into a wire Job frame, decodable with DecodeShard.
func (s *Store) ShardBytes(pe int) ([]byte, error) {
	if pe < 0 || pe >= len(s.manifest.Shards) {
		return nil, fmt.Errorf("store: shard %d of %d", pe, len(s.manifest.Shards))
	}
	info := &s.manifest.Shards[pe]
	path := s.path(info.File)
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.Size() != info.Bytes {
		return nil, fmt.Errorf("store: shard %d is %d bytes, manifest records %d", pe, st.Size(), info.Bytes)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != info.Bytes {
		return nil, fmt.Errorf("store: shard %d read %d bytes, manifest records %d", pe, len(data), info.Bytes)
	}
	if got := crc32.Checksum(data, castagnoli); got != info.CRC32C {
		return nil, fmt.Errorf("store: shard %d checksum %08x, manifest records %08x", pe, got, info.CRC32C)
	}
	return data, nil
}

// DecodeShard decodes one shard's raw bytes (as stored on disk / shipped in
// a job frame). The embedded graph decode enforces the graphio budget; any
// trailing bytes are an error.
func DecodeShard(data []byte) (*dist.Subgraph, error) {
	sg, rest, err := wire.DecodeSubgraph(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("store: shard has %d trailing bytes", len(rest))
	}
	return sg, nil
}

// LoadShard reads, verifies, and decodes one PE's subgraph, and checks the
// decoded shape against the manifest's record.
func (s *Store) LoadShard(pe int) (*dist.Subgraph, error) {
	data, err := s.ShardBytes(pe)
	if err != nil {
		return nil, err
	}
	sg, err := DecodeShard(data)
	if err != nil {
		return nil, fmt.Errorf("store: shard %d: %w", pe, err)
	}
	info := &s.manifest.Shards[pe]
	if int(sg.PE) != pe || int64(sg.NumOwned) != info.Owned ||
		int64(sg.Local.NumNodes()) != info.Nodes || int64(sg.Local.NumEdges()) != info.Edges {
		return nil, fmt.Errorf("store: shard %d decodes to PE %d with %d/%d nodes and %d edges, manifest records %d/%d nodes and %d edges",
			pe, sg.PE, sg.NumOwned, sg.Local.NumNodes(), sg.Local.NumEdges(), info.Owned, info.Nodes, info.Edges)
	}
	return sg, nil
}

// LoadShards loads every shard with up to workers concurrent readers
// (0 = GOMAXPROCS) — the parallel loader: per-shard decode budgets, and at
// no point a global adjacency; peak memory is the decoded shards the caller
// asked for plus one file buffer per active reader.
func (s *Store) LoadShards(workers int) ([]*dist.Subgraph, error) {
	pes := s.manifest.PEs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > pes {
		workers = pes
	}
	out := make([]*dist.Subgraph, pes)
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, workers)
	for pe := 0; pe < pes; pe++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(pe int) {
			defer wg.Done()
			defer func() { <-sem }()
			sg, err := s.LoadShard(pe)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			out[pe] = sg
		}(pe)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Verify audits the store's content integrity: the CSR segment's checksum
// and every shard's size, checksum, and decoded shape. It reads everything
// — an offline audit, not something the serve path runs.
func (s *Store) Verify() error {
	if err := s.verifyCSRChecksum(); err != nil {
		return err
	}
	for pe := range s.manifest.Shards {
		if _, err := s.LoadShard(pe); err != nil {
			return err
		}
	}
	return nil
}

// WriteOptions configures Write.
type WriteOptions struct {
	// PEs is the shard count — one shard per processing element.
	PEs int
	// Strategy is the node-to-PE distribution to extract under. The
	// resulting store serves runs with exactly this strategy.
	Strategy dist.Strategy
	// Workers bounds how many shards are extracted and written
	// concurrently (0 = GOMAXPROCS). Peak memory over the write is the
	// input graph plus Workers in-flight shard encodings.
	Workers int
	// Seed is recorded in the manifest as provenance of the intended run.
	Seed uint64
}

// Write shards g into dir: assigns nodes to PEs under the strategy, extracts
// and encodes each PE's subgraph exactly as the serve protocol would,
// streams the global CSR segment, and writes the manifest last (via rename,
// so a crashed write never leaves a directory that Open accepts).
func Write(dir string, g *graph.Graph, o WriteOptions) (*Manifest, error) {
	if o.PEs < 1 {
		return nil, fmt.Errorf("store: need at least 1 PE, got %d", o.PEs)
	}
	if o.PEs > maxPEs {
		return nil, fmt.Errorf("store: %d PEs exceeds the manifest limit %d", o.PEs, maxPEs)
	}
	if g.NumNodes() < o.PEs {
		return nil, fmt.Errorf("store: cannot shard %d nodes across %d PEs", g.NumNodes(), o.PEs)
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > o.PEs {
		workers = o.PEs
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	assign := dist.Assign(g, o.Strategy, o.PEs)
	ownedOf := make([][]int32, o.PEs)
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		ownedOf[assign[v]] = append(ownedOf[assign[v]], v)
	}

	shards := make([]ShardInfo, o.PEs)
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, workers)
	for pe := 0; pe < o.PEs; pe++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(pe int) {
			defer wg.Done()
			defer func() { <-sem }()
			info, err := writeShard(dir, g, assign, pe, ownedOf[pe])
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("store: shard %d: %w", pe, err)
				}
				errMu.Unlock()
				return
			}
			shards[pe] = info
		}(pe)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	csrInfo, err := writeCSR(filepath.Join(dir, CSRFile), g)
	if err != nil {
		return nil, err
	}

	m := &Manifest{
		Version:         ManifestVersion,
		PEs:             o.PEs,
		Nodes:           int64(g.NumNodes()),
		Edges:           int64(g.NumEdges()),
		TotalNodeWeight: g.TotalNodeWeight(),
		TotalEdgeWeight: g.TotalEdgeWeight(),
		MaxNodeWeight:   g.MaxNodeWeight(),
		AdjSorted:       g.AdjSorted(),
		CoordDims:       g.CoordDims(),
		Strategy:        o.Strategy.String(),
		Seed:            o.Seed,
		CSR:             csrInfo,
		Shards:          shards,
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("store: writer produced an invalid manifest: %w", err)
	}
	if err := writeManifest(dir, m); err != nil {
		return nil, err
	}
	return m, nil
}

// writeShard extracts PE pe's subgraph and writes its encoding.
func writeShard(dir string, g *graph.Graph, assign []int32, pe int, owned []int32) (ShardInfo, error) {
	sg := dist.ExtractOwned(g, assign, int32(pe), owned)
	payload, err := wire.AppendSubgraph(nil, sg)
	if err != nil {
		return ShardInfo{}, err
	}
	name := shardFileName(pe)
	if err := os.WriteFile(filepath.Join(dir, name), payload, 0o644); err != nil {
		return ShardInfo{}, err
	}
	return ShardInfo{
		File:       name,
		PE:         pe,
		Owned:      int64(sg.NumOwned),
		Nodes:      int64(sg.Local.NumNodes()),
		Edges:      int64(sg.Local.NumEdges()),
		NodeWeight: sg.Local.TotalNodeWeight(),
		EdgeWeight: sg.Local.TotalEdgeWeight(),
		Bytes:      int64(len(payload)),
		CRC32C:     crc32.Checksum(payload, castagnoli),
	}, nil
}

func shardFileName(pe int) string { return fmt.Sprintf("shard-%04d.kps", pe) }

// writeManifest serializes m to a temporary file and renames it into place.
func writeManifest(dir string, m *Manifest) error {
	data, err := marshalManifest(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ManifestFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, ManifestFile))
}
