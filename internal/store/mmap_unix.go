//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

const mmapSupported = true

// mapFile maps size bytes of f read-only and returns the mapping with its
// release function. The mapping outlives f — closing the file descriptor
// does not invalidate mapped pages.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, fmt.Errorf("store: cannot map %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("store: mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
