package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/graphio"
)

// ManifestVersion is the manifest schema this build reads and writes.
// Version bumps are explicit: a reader refuses a manifest it does not
// understand instead of misinterpreting it.
const ManifestVersion = 1

const (
	// ManifestFile is the manifest's file name inside a store directory.
	ManifestFile = "manifest.json"
	// CSRFile is the global CSR segment's file name.
	CSRFile = "csr.kcb"

	// maxManifestBytes bounds how much manifest JSON ReadManifest accepts:
	// a manifest describes at most maxPEs shards at a few hundred bytes
	// each, so anything beyond this is hostile or corrupt.
	maxManifestBytes = 8 << 20
	// maxPEs bounds the shard count a manifest may declare. It matches the
	// practical ceiling of the serve protocol (one worker connection per
	// PE), far below anything that would make the []ShardInfo allocation
	// itself a resource attack.
	maxPEs = 1 << 16
)

// Manifest is the versioned description of one on-disk shard store: the
// global graph's shape and aggregate weights (so a coordinator can size
// balance constraints without touching the CSR), the distribution that
// produced the shards, the CSR segment's layout, and one record per shard
// with counts, byte size, and checksum.
//
// Everything a partitioning run derives from the global graph header —
// node/edge counts, total and maximum node weight, the adjacency-sorted
// flag — is recorded here at write time, which is what lets the mapped
// graph come up without scanning (and therefore paging in) its arrays.
type Manifest struct {
	Version int `json:"version"`
	PEs     int `json:"pes"`

	Nodes           int64 `json:"nodes"`
	Edges           int64 `json:"edges"` // undirected edge count
	TotalNodeWeight int64 `json:"total_node_weight"`
	TotalEdgeWeight int64 `json:"total_edge_weight"`
	MaxNodeWeight   int64 `json:"max_node_weight"`
	AdjSorted       bool  `json:"adj_sorted"`
	CoordDims       int   `json:"coord_dims"` // 0, 2, or 3

	// Strategy is the node-to-PE distribution the shards were extracted
	// under (dist.ParseStrategy vocabulary). A coordinator serving from
	// this store runs with exactly this strategy — the shard bytes embody
	// it. Seed records the run seed the store was produced for; it is
	// provenance, not a constraint (any seed partitions the same shards).
	Strategy string `json:"strategy"`
	Seed     uint64 `json:"seed"`

	CSR    CSRInfo     `json:"csr"`
	Shards []ShardInfo `json:"shards"`
}

// CSRInfo locates the global CSR segment and its sections. The offsets are
// derivable from the counts (the layout is fixed); they are recorded so the
// file is self-describing to other tooling, and validated against the
// derived layout on read.
type CSRInfo struct {
	File   string `json:"file"`
	Bytes  int64  `json:"bytes"`
	CRC32C uint32 `json:"crc32c"`

	XadjOff  int64 `json:"xadj_off"`
	AdjOff   int64 `json:"adj_off"`
	EwgtOff  int64 `json:"ewgt_off"`
	NwgtOff  int64 `json:"nwgt_off"`
	CoordOff int64 `json:"coord_off"` // 0 when the graph has no coordinates
}

// ShardInfo describes one PE's shard file: the exact wire.AppendSubgraph
// encoding of that PE's subgraph (local CSR + ghost layer + id maps).
type ShardInfo struct {
	File       string `json:"file"`
	PE         int    `json:"pe"`
	Owned      int64  `json:"owned"`       // nodes this PE owns
	Nodes      int64  `json:"nodes"`       // owned + ghost nodes in the local graph
	Edges      int64  `json:"edges"`       // local undirected edges
	NodeWeight int64  `json:"node_weight"` // local graph total node weight
	EdgeWeight int64  `json:"edge_weight"` // local graph total edge weight
	Bytes      int64  `json:"bytes"`
	CRC32C     uint32 `json:"crc32c"`
}

// ReadManifest parses and validates a manifest. Hostile input fails before
// any size-proportional work: the reader is byte-bounded, and every declared
// count is checked against the graphio decode budget (typed *LimitError,
// errors.Is(err, graphio.ErrLimit)) before a caller could act on it.
func ReadManifest(r io.Reader) (*Manifest, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxManifestBytes+1))
	if err != nil {
		return nil, fmt.Errorf("store: reading manifest: %w", err)
	}
	if len(data) > maxManifestBytes {
		return nil, &graphio.LimitError{What: "manifest bytes", Declared: uint64(len(data)), Limit: maxManifestBytes}
	}
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("store: parsing manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Validate checks the manifest's internal coherence and its declared sizes
// against the decode budget. Budget violations are *graphio.LimitError;
// everything else is a plain descriptive error.
func (m *Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("store: manifest version %d, this build reads version %d", m.Version, ManifestVersion)
	}
	if m.PEs < 1 || m.PEs > maxPEs {
		return fmt.Errorf("store: manifest declares %d PEs (want 1..%d)", m.PEs, maxPEs)
	}
	budgetNodes, budgetEdges := graphio.DecodeBudget()
	if m.Nodes < 0 || m.Edges < 0 {
		return fmt.Errorf("store: manifest declares negative counts (nodes %d, edges %d)", m.Nodes, m.Edges)
	}
	if uint64(m.Nodes) > budgetNodes {
		return &graphio.LimitError{What: "nodes", Declared: uint64(m.Nodes), Limit: budgetNodes}
	}
	if uint64(m.Edges) > budgetEdges {
		return &graphio.LimitError{What: "edges", Declared: uint64(m.Edges), Limit: budgetEdges}
	}
	if m.TotalNodeWeight < 0 || m.TotalEdgeWeight < 0 || m.MaxNodeWeight < 0 {
		return fmt.Errorf("store: manifest declares negative aggregate weights")
	}
	switch m.CoordDims {
	case 0, 2, 3:
	default:
		return fmt.Errorf("store: manifest declares %d coordinate dimensions (want 0, 2, or 3)", m.CoordDims)
	}
	if len(m.Shards) != m.PEs {
		return fmt.Errorf("store: manifest declares %d PEs but lists %d shards", m.PEs, len(m.Shards))
	}
	var owned int64
	for i := range m.Shards {
		s := &m.Shards[i]
		if s.PE != i {
			return fmt.Errorf("store: shard %d records PE %d", i, s.PE)
		}
		if err := checkLocalName(s.File); err != nil {
			return fmt.Errorf("store: shard %d: %w", i, err)
		}
		if s.Owned < 0 || s.Nodes < s.Owned || s.Edges < 0 || s.Bytes < 0 {
			return fmt.Errorf("store: shard %d declares incoherent counts (owned %d, nodes %d, edges %d, bytes %d)",
				i, s.Owned, s.Nodes, s.Edges, s.Bytes)
		}
		if uint64(s.Nodes) > budgetNodes {
			return &graphio.LimitError{What: "nodes", Declared: uint64(s.Nodes), Limit: budgetNodes}
		}
		if uint64(s.Edges) > budgetEdges {
			return &graphio.LimitError{What: "edges", Declared: uint64(s.Edges), Limit: budgetEdges}
		}
		// The shard file is read whole before decoding, so its size must be
		// plausible for its declared counts — a small declared graph cannot
		// smuggle in a huge read.
		if limit := maxShardBytes(s.Nodes, s.Edges); s.Bytes > limit {
			return &graphio.LimitError{What: "shard bytes", Declared: uint64(s.Bytes), Limit: uint64(limit)}
		}
		owned += s.Owned
	}
	if owned != m.Nodes {
		return fmt.Errorf("store: shards own %d nodes in total, manifest declares %d", owned, m.Nodes)
	}
	if err := checkLocalName(m.CSR.File); err != nil {
		return fmt.Errorf("store: csr segment: %w", err)
	}
	lay := layoutCSR(m.Nodes, m.Edges, m.CoordDims)
	if m.CSR.Bytes != lay.total {
		return fmt.Errorf("store: csr segment declares %d bytes, layout for %d nodes / %d edges is %d",
			m.CSR.Bytes, m.Nodes, m.Edges, lay.total)
	}
	if m.CSR.XadjOff != lay.xadjOff || m.CSR.AdjOff != lay.adjOff ||
		m.CSR.EwgtOff != lay.ewgtOff || m.CSR.NwgtOff != lay.nwgtOff || m.CSR.CoordOff != lay.coordOff {
		return fmt.Errorf("store: csr section offsets disagree with the derived layout")
	}
	return nil
}

// marshalManifest serializes a manifest with stable, human-diffable
// formatting.
func marshalManifest(m *Manifest) ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// maxShardBytes bounds a shard file's size by its declared counts: the
// varint encoding spends at most ~25 bytes per node (degree + node weight +
// id-map entry) and ~15 per directed edge (neighbor + weight), plus
// coordinates and a small header. The bound is deliberately loose — it only
// has to stop a size-independent huge read, not model the format.
func maxShardBytes(nodes, edges int64) int64 {
	return 256 + 64*nodes + 32*edges
}

// checkLocalName accepts only a bare file name: no separators, no parent
// references — a manifest must not be able to address files outside its own
// directory.
func checkLocalName(name string) error {
	if name == "" || name == "." || name == ".." || filepath.Base(name) != name {
		return fmt.Errorf("store: %q is not a plain file name", name)
	}
	return nil
}
