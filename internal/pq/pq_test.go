package pq

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPushPopOrdering(t *testing.T) {
	q := NewGainQueue(10)
	gains := []int64{3, -1, 7, 0, 5, 5, -9, 2, 2, 4}
	for v, g := range gains {
		q.Push(int32(v), g, uint32(v))
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d", q.Len())
	}
	var got []int64
	for !q.Empty() {
		_, g := q.PopMax()
		got = append(got, g)
	}
	want := append([]int64(nil), gains...)
	sort.Slice(want, func(i, j int) bool { return want[i] > want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestUpdateAndAdjust(t *testing.T) {
	q := NewGainQueue(4)
	q.Push(0, 1, 0)
	q.Push(1, 2, 0)
	q.Push(2, 3, 0)
	q.Update(0, 10)
	if v, g := q.Max(); v != 0 || g != 10 {
		t.Fatalf("Max = (%d,%d) after Update, want (0,10)", v, g)
	}
	q.AdjustBy(1, 20)
	if v, _ := q.Max(); v != 1 {
		t.Fatalf("Max = %d after AdjustBy, want 1", v)
	}
	q.AdjustBy(3, 5) // absent: must be a no-op
	if q.Contains(3) {
		t.Fatal("AdjustBy inserted an absent node")
	}
	if g := q.Gain(1); g != 22 {
		t.Fatalf("Gain(1) = %d, want 22", g)
	}
}

func TestRemove(t *testing.T) {
	q := NewGainQueue(5)
	for v := int32(0); v < 5; v++ {
		q.Push(v, int64(v), 0)
	}
	q.Remove(4)
	q.Remove(4) // double remove is a no-op
	q.Remove(2)
	if q.Len() != 3 {
		t.Fatalf("Len = %d after removes", q.Len())
	}
	if v, _ := q.PopMax(); v != 3 {
		t.Fatalf("Max after removing 4 is %d, want 3", v)
	}
	if q.Contains(2) || q.Contains(4) {
		t.Fatal("removed nodes still reported present")
	}
}

func TestClear(t *testing.T) {
	q := NewGainQueue(3)
	q.Push(0, 1, 0)
	q.Push(1, 2, 0)
	q.Clear()
	if !q.Empty() || q.Contains(0) || q.Contains(1) {
		t.Fatal("Clear did not empty the queue")
	}
	q.Push(0, 5, 0) // reusable after Clear
	if v, g := q.Max(); v != 0 || g != 5 {
		t.Fatal("queue unusable after Clear")
	}
}

func TestTiebreakOrdersEqualGains(t *testing.T) {
	q := NewGainQueue(3)
	q.Push(0, 7, 1)
	q.Push(1, 7, 9)
	q.Push(2, 7, 5)
	order := []int32{}
	for !q.Empty() {
		v, _ := q.PopMax()
		order = append(order, v)
	}
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("tiebreak order = %v, want [1 2 0]", order)
	}
}

func TestPushDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Push did not panic")
		}
	}()
	q := NewGainQueue(2)
	q.Push(1, 0, 0)
	q.Push(1, 0, 0)
}

// TestHeapPropertyRandom drives the queue with random operations and
// cross-checks against a naive model.
func TestHeapPropertyRandom(t *testing.T) {
	master := rng.New(555)
	f := func(seed uint16) bool {
		r := master.Split(uint64(seed))
		const n = 32
		q := NewGainQueue(n)
		model := map[int32]int64{}
		for step := 0; step < 300; step++ {
			op := r.Intn(4)
			v := int32(r.Intn(n))
			switch {
			case op == 0 && !q.Contains(v):
				g := int64(r.Intn(41) - 20)
				q.Push(v, g, uint32(r.Uint64()))
				model[v] = g
			case op == 1 && q.Contains(v):
				g := int64(r.Intn(41) - 20)
				q.Update(v, g)
				model[v] = g
			case op == 2:
				q.Remove(v)
				delete(model, v)
			case op == 3 && !q.Empty():
				v, g := q.PopMax()
				mg, ok := model[v]
				if !ok || mg != g {
					return false
				}
				// must be max of model
				for _, g2 := range model {
					if g2 > g {
						return false
					}
				}
				delete(model, v)
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	r := rng.New(1)
	const n = 1 << 14
	for i := 0; i < b.N; i++ {
		q := NewGainQueue(n)
		for v := int32(0); v < n; v++ {
			q.Push(v, int64(r.Intn(100)), uint32(r.Uint64()))
		}
		for !q.Empty() {
			q.PopMax()
		}
	}
}
