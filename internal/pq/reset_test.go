package pq

import "testing"

func TestGainQueueReset(t *testing.T) {
	q := NewGainQueue(4)
	q.Push(0, 5, 1)
	q.Push(3, 9, 2)
	q.Reset(8) // grow across a reset with residual content
	if !q.Empty() {
		t.Fatal("queue must be empty after Reset")
	}
	for v := int32(0); v < 8; v++ {
		if q.Contains(v) {
			t.Fatalf("node %d present after Reset", v)
		}
	}
	q.Push(7, 1, 0)
	q.Push(2, 3, 0)
	if v, g := q.PopMax(); v != 2 || g != 3 {
		t.Fatalf("PopMax = (%d,%d), want (2,3)", v, g)
	}
	// Shrinking reset reuses storage.
	q.Reset(2)
	q.Push(1, 4, 0)
	if v, _ := q.PopMax(); v != 1 {
		t.Fatal("queue broken after shrinking Reset")
	}
}

func TestBucketQueueReset(t *testing.T) {
	q := NewBucketQueue(4, 3)
	q.Push(0, 2)
	q.Push(1, -3)
	q.Reset(6, 5)
	if !q.Empty() {
		t.Fatal("queue must be empty after Reset")
	}
	q.Push(5, 5)
	q.Push(2, -5)
	if v, g := q.PopMax(); v != 5 || g != 5 {
		t.Fatalf("PopMax = (%d,%d), want (5,5)", v, g)
	}
	if v, g := q.PopMax(); v != 2 || g != -5 {
		t.Fatalf("PopMax = (%d,%d), want (2,-5)", v, g)
	}
}
