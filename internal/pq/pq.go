// Package pq provides the priority queues used by the FM local search.
//
// GainQueue is an addressable binary max-heap keyed by (gain, tiebreak): the
// paper's FM refinement keeps one queue of boundary nodes per block, ordered
// by the cut-size decrease of moving the node to the other block, and needs
// key updates when a neighbor moves (DecreaseKey/IncreaseKey) as well as
// removal of arbitrary elements. Random tie breaking among equal gains is
// implemented by storing a caller-supplied tiebreak value with each element;
// the paper uses random tie breaking for the TopGain strategy.
package pq

// item is one heap entry.
type item struct {
	node     int32
	gain     int64
	tiebreak uint32
}

// GainQueue is an addressable max-heap of nodes keyed by gain. Each node id
// in [0, n) may appear at most once. The zero value is not usable; construct
// with NewGainQueue.
type GainQueue struct {
	heap []item
	pos  []int32 // pos[node] = index into heap, or -1
}

// NewGainQueue returns an empty queue able to hold node ids in [0, n).
func NewGainQueue(n int) *GainQueue {
	q := &GainQueue{pos: make([]int32, n)}
	for i := range q.pos {
		q.pos[i] = -1
	}
	return q
}

// Len returns the number of queued nodes.
func (q *GainQueue) Len() int { return len(q.heap) }

// Empty reports whether the queue holds no nodes.
func (q *GainQueue) Empty() bool { return len(q.heap) == 0 }

// Contains reports whether node v is queued.
func (q *GainQueue) Contains(v int32) bool { return q.pos[v] >= 0 }

// Gain returns the current gain of queued node v. It panics if v is absent.
//
//kappa:invariant absent-node access is a refinement-kernel bug, not an input error
func (q *GainQueue) Gain(v int32) int64 {
	p := q.pos[v]
	if p < 0 {
		panic("pq: Gain of absent node")
	}
	return q.heap[p].gain
}

// less orders items descending by gain, then descending by tiebreak. The
// tiebreak is typically a random value, giving uniform tie breaking.
func less(a, b item) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	return a.tiebreak > b.tiebreak
}

// Push inserts node v with the given gain and tiebreak value. It panics if v
// is already queued.
//
//kappa:invariant double-push is a refinement-kernel bug, not an input error
func (q *GainQueue) Push(v int32, gain int64, tiebreak uint32) {
	if q.pos[v] >= 0 {
		panic("pq: Push of node already in queue")
	}
	q.heap = append(q.heap, item{v, gain, tiebreak})
	q.pos[v] = int32(len(q.heap) - 1)
	q.up(len(q.heap) - 1)
}

// Max returns the node with the highest gain and its gain without removing
// it. It panics on an empty queue.
//
//kappa:invariant callers check Empty first; an empty Max is a kernel bug
func (q *GainQueue) Max() (int32, int64) {
	if len(q.heap) == 0 {
		panic("pq: Max of empty queue")
	}
	return q.heap[0].node, q.heap[0].gain
}

// PopMax removes and returns the node with the highest gain.
func (q *GainQueue) PopMax() (int32, int64) {
	v, g := q.Max()
	q.remove(0)
	return v, g
}

// Update changes the gain of queued node v, restoring heap order.
//
//kappa:invariant absent-node update is a refinement-kernel bug, not an input error
func (q *GainQueue) Update(v int32, gain int64) {
	p := q.pos[v]
	if p < 0 {
		panic("pq: Update of absent node")
	}
	old := q.heap[p].gain
	q.heap[p].gain = gain
	switch {
	case gain > old:
		q.up(int(p))
	case gain < old:
		q.down(int(p))
	}
}

// AdjustBy adds delta to the gain of node v if it is queued; it is a no-op
// otherwise. This is the common operation when a neighbor of v moves.
func (q *GainQueue) AdjustBy(v int32, delta int64) {
	if q.pos[v] < 0 || delta == 0 {
		return
	}
	q.Update(v, q.heap[q.pos[v]].gain+delta)
}

// Remove deletes node v from the queue if present.
func (q *GainQueue) Remove(v int32) {
	p := q.pos[v]
	if p < 0 {
		return
	}
	q.remove(int(p))
}

// Clear empties the queue, keeping capacity.
func (q *GainQueue) Clear() {
	for _, it := range q.heap {
		q.pos[it.node] = -1
	}
	q.heap = q.heap[:0]
}

// Reset re-initializes the queue for node ids in [0, n), reusing the
// existing heap and position storage when it is large enough — the
// allocation-free equivalent of NewGainQueue(n) used by the refinement
// workspaces, which run one FM search per block pair per level per global
// iteration on the same queue pair.
//
//kappa:hotpath
func (q *GainQueue) Reset(n int) {
	if cap(q.pos) < n {
		//kappa:allow hotalloc grow-once; steady-state Resets reuse the storage
		q.pos = make([]int32, n)
	}
	q.pos = q.pos[:n]
	for i := range q.pos {
		q.pos[i] = -1
	}
	q.heap = q.heap[:0]
}

func (q *GainQueue) remove(i int) {
	last := len(q.heap) - 1
	q.pos[q.heap[i].node] = -1
	if i != last {
		q.heap[i] = q.heap[last]
		q.pos[q.heap[i].node] = int32(i)
	}
	q.heap = q.heap[:last]
	if i < last {
		q.down(i)
		q.up(i)
	}
}

func (q *GainQueue) up(i int) {
	it := q.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !less(it, q.heap[parent]) {
			break
		}
		q.heap[i] = q.heap[parent]
		q.pos[q.heap[i].node] = int32(i)
		i = parent
	}
	q.heap[i] = it
	q.pos[it.node] = int32(i)
}

func (q *GainQueue) down(i int) {
	it := q.heap[i]
	n := len(q.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && less(q.heap[r], q.heap[l]) {
			best = r
		}
		if !less(q.heap[best], it) {
			break
		}
		q.heap[i] = q.heap[best]
		q.pos[q.heap[i].node] = int32(i)
		i = best
	}
	q.heap[i] = it
	q.pos[it.node] = int32(i)
}
