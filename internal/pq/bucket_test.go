package pq

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBucketBasic(t *testing.T) {
	q := NewBucketQueue(8, 10)
	q.Push(0, 3)
	q.Push(1, -5)
	q.Push(2, 10)
	q.Push(3, 10)
	if q.Len() != 4 || q.Empty() {
		t.Fatal("size wrong")
	}
	v, g := q.PopMax()
	if g != 10 || (v != 2 && v != 3) {
		t.Fatalf("PopMax = (%d,%d)", v, g)
	}
	v2, g2 := q.PopMax()
	if g2 != 10 || v2 == v {
		t.Fatalf("second PopMax = (%d,%d)", v2, g2)
	}
	if v3, g3 := q.PopMax(); v3 != 0 || g3 != 3 {
		t.Fatalf("third PopMax = (%d,%d)", v3, g3)
	}
	if v4, g4 := q.PopMax(); v4 != 1 || g4 != -5 {
		t.Fatalf("fourth PopMax = (%d,%d)", v4, g4)
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
}

func TestBucketUpdateRemove(t *testing.T) {
	q := NewBucketQueue(4, 8)
	q.Push(0, 0)
	q.Push(1, 1)
	q.Update(0, 8)
	if g := q.Gain(0); g != 8 {
		t.Fatalf("Gain = %d", g)
	}
	if v, _ := q.PopMax(); v != 0 {
		t.Fatal("update did not reorder")
	}
	q.Remove(1)
	q.Remove(1) // idempotent
	if !q.Empty() || q.Contains(1) {
		t.Fatal("remove broken")
	}
}

func TestBucketPanics(t *testing.T) {
	q := NewBucketQueue(2, 3)
	mustPanicBucket(t, func() { q.Push(0, 4) }) // out of range
	q.Push(0, 1)
	mustPanicBucket(t, func() { q.Push(0, 1) }) // duplicate
	mustPanicBucket(t, func() { q.Gain(1) })    // absent
	q.PopMax()
	mustPanicBucket(t, func() { q.PopMax() }) // empty
}

func mustPanicBucket(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// TestBucketMatchesHeap cross-checks the bucket queue against GainQueue
// under random operation sequences.
func TestBucketMatchesHeap(t *testing.T) {
	master := rng.New(808)
	f := func(seed uint16) bool {
		r := master.Split(uint64(seed))
		const n, maxGain = 24, 12
		bq := NewBucketQueue(n, maxGain)
		hq := NewGainQueue(n)
		for step := 0; step < 200; step++ {
			v := int32(r.Intn(n))
			switch r.Intn(4) {
			case 0:
				if !bq.Contains(v) {
					g := r.Intn(2*maxGain+1) - maxGain
					bq.Push(v, g)
					hq.Push(v, int64(g), 0)
				}
			case 1:
				if bq.Contains(v) {
					g := r.Intn(2*maxGain+1) - maxGain
					bq.Update(v, g)
					hq.Update(v, int64(g))
				}
			case 2:
				bq.Remove(v)
				hq.Remove(v)
			case 3:
				if !bq.Empty() {
					bv, bg := bq.PopMax()
					hv, hg := hq.PopMax()
					if bg != hg {
						return false
					}
					if bv != hv {
						// Equal-gain tie broken differently: drop the
						// counterpart from each queue to re-sync contents.
						bq.Remove(hv)
						hq.Remove(bv)
					}
				}
			}
			if bq.Len() != hq.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBucketQueue(b *testing.B) {
	r := rng.New(1)
	const n = 1 << 14
	for i := 0; i < b.N; i++ {
		q := NewBucketQueue(n, 64)
		for v := int32(0); v < n; v++ {
			q.Push(v, r.Intn(129)-64)
		}
		for !q.Empty() {
			q.PopMax()
		}
	}
}
