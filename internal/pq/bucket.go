package pq

// BucketQueue is a monotone bucket priority queue over nodes with small
// integer gains in [-maxGain, +maxGain], the classical FM data structure:
// all operations are O(1) except PopMax, which walks down from the highest
// non-empty bucket. For unit-weight graphs the gain range is bounded by the
// maximum degree, making this faster than the binary heap; the FM search
// uses the heap because contracted graphs carry large weights, but the
// bucket queue is provided (and benchmarked) for the unit-weight fast path.
type BucketQueue struct {
	maxGain int
	buckets [][]int32
	pos     []int32 // pos[node] = index within its bucket, -1 if absent
	gain    []int32 // current gain per node (offset by maxGain)
	highest int     // highest possibly-non-empty bucket index
	size    int
}

// NewBucketQueue returns a queue for node ids in [0, n) and gains in
// [-maxGain, maxGain].
func NewBucketQueue(n, maxGain int) *BucketQueue {
	q := &BucketQueue{
		maxGain: maxGain,
		buckets: make([][]int32, 2*maxGain+1),
		pos:     make([]int32, n),
		gain:    make([]int32, n),
		highest: -1,
	}
	for i := range q.pos {
		q.pos[i] = -1
	}
	return q
}

// Reset re-initializes the queue for node ids in [0, n) and gains in
// [-maxGain, maxGain], reusing the bucket, position and gain storage when
// large enough — the allocation-free equivalent of NewBucketQueue.
//
//kappa:hotpath
func (q *BucketQueue) Reset(n, maxGain int) {
	if nb := 2*maxGain + 1; cap(q.buckets) < nb {
		//kappa:allow hotalloc grow-once; steady-state Resets reuse the buckets
		q.buckets = make([][]int32, nb)
	} else {
		q.buckets = q.buckets[:nb]
		for i := range q.buckets {
			q.buckets[i] = q.buckets[i][:0]
		}
	}
	q.maxGain = maxGain
	if cap(q.pos) < n {
		//kappa:allow hotalloc grow-once; steady-state Resets reuse the storage
		q.pos = make([]int32, n)
		//kappa:allow hotalloc grow-once; steady-state Resets reuse the storage
		q.gain = make([]int32, n)
	}
	q.pos = q.pos[:n]
	q.gain = q.gain[:n]
	for i := range q.pos {
		q.pos[i] = -1
	}
	q.highest = -1
	q.size = 0
}

// Len returns the number of queued nodes.
func (q *BucketQueue) Len() int { return q.size }

// Empty reports whether no nodes are queued.
func (q *BucketQueue) Empty() bool { return q.size == 0 }

// Contains reports whether v is queued.
func (q *BucketQueue) Contains(v int32) bool { return q.pos[v] >= 0 }

// Gain returns v's current gain; v must be queued.
//
//kappa:invariant absent-node access is a refinement-kernel bug, not an input error
func (q *BucketQueue) Gain(v int32) int64 {
	if q.pos[v] < 0 {
		panic("pq: Gain of absent node")
	}
	return int64(q.gain[v])
}

// bucketOf maps a gain to its bucket index; gains are bounded by the
// maximum weighted degree, so an out-of-range gain is a kernel bug.
//
//kappa:invariant gain bounds follow from the max weighted degree by construction
func (q *BucketQueue) bucketOf(gain int) int {
	if gain > q.maxGain || gain < -q.maxGain {
		panic("pq: gain outside bucket range")
	}
	return gain + q.maxGain
}

// Push inserts v with the given gain; v must be absent.
//
//kappa:invariant double-push is a refinement-kernel bug, not an input error
func (q *BucketQueue) Push(v int32, gain int) {
	if q.pos[v] >= 0 {
		panic("pq: Push of node already in queue")
	}
	b := q.bucketOf(gain)
	q.buckets[b] = append(q.buckets[b], v)
	q.pos[v] = int32(len(q.buckets[b]) - 1)
	q.gain[v] = int32(gain)
	if b > q.highest {
		q.highest = b
	}
	q.size++
}

// Update changes v's gain; v must be queued.
func (q *BucketQueue) Update(v int32, gain int) {
	q.Remove(v)
	q.Push(v, gain)
}

// Remove deletes v if queued (no-op otherwise).
func (q *BucketQueue) Remove(v int32) {
	p := q.pos[v]
	if p < 0 {
		return
	}
	b := q.bucketOf(int(q.gain[v]))
	bucket := q.buckets[b]
	last := len(bucket) - 1
	if int(p) != last {
		bucket[p] = bucket[last]
		q.pos[bucket[p]] = p
	}
	q.buckets[b] = bucket[:last]
	q.pos[v] = -1
	q.size--
}

// PopMax removes and returns a node with the maximum gain. The queue is
// "monotone-friendly": the highest pointer only moves down between pushes.
//
//kappa:invariant callers check Empty first; an empty PopMax is a kernel bug
func (q *BucketQueue) PopMax() (int32, int64) {
	if q.size == 0 {
		panic("pq: PopMax of empty queue")
	}
	for q.highest >= 0 && len(q.buckets[q.highest]) == 0 {
		q.highest--
	}
	bucket := q.buckets[q.highest]
	v := bucket[len(bucket)-1]
	g := int64(q.gain[v])
	q.buckets[q.highest] = bucket[:len(bucket)-1]
	q.pos[v] = -1
	q.size--
	return v, g
}
