package graphio

import (
	"bytes"
	"encoding/binary"
	"strconv"
	"strings"
	"testing"

	"repro/internal/gen"
)

// FuzzReadMETIS feeds arbitrary text to the METIS parser. Properties: the
// parser never panics; accepted input round-trips (write → read → same
// structure) — the parser only admits graphs the writer can faithfully
// reproduce.
func FuzzReadMETIS(f *testing.F) {
	f.Add("3 2\n2\n1 3\n2\n")
	f.Add("% comment\n3 2 1\n2 7\n1 7 3 2\n2 2\n")
	f.Add("2 1 11\n4 2 5\n1 1 5\n")
	f.Add("3 1\n3\n\n1\n")
	f.Add("1 0\n\n")
	var seed bytes.Buffer
	if err := WriteMETIS(&seed, gen.Grid2D(5, 4)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())

	f.Fuzz(func(t *testing.T, in string) {
		// Guard against allocation bombs: a tiny input can declare an
		// enormous node count; cap what the fuzzer asks the parser to
		// materialize (the parser itself enforces only the int32 bound).
		if n, m, ok := peekMETISHeader(in); !ok || n > 1<<16 || m > 1<<16 {
			return
		}
		g, err := ReadMETIS(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMETIS(&buf, g); err != nil {
			t.Fatalf("re-encoding accepted input: %v", err)
		}
		g2, err := ReadMETIS(&buf)
		if err != nil {
			t.Fatalf("re-parsing own output: %v\n%q", err, buf.String())
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() ||
			g2.TotalNodeWeight() != g.TotalNodeWeight() || g2.TotalEdgeWeight() != g.TotalEdgeWeight() {
			t.Fatalf("round trip changed graph: n %d->%d m %d->%d",
				g.NumNodes(), g2.NumNodes(), g.NumEdges(), g2.NumEdges())
		}
	})
}

// peekMETISHeader cheaply extracts the declared node and edge counts of the
// first non-comment line, without building anything.
func peekMETISHeader(in string) (n, m int64, ok bool) {
	for len(in) > 0 {
		line := in
		if i := strings.IndexByte(in, '\n'); i >= 0 {
			line, in = in[:i], in[i+1:]
		} else {
			in = ""
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, 0, false
		}
		var err error
		if n, err = strconv.ParseInt(fields[0], 10, 64); err != nil {
			return 0, 0, false
		}
		if m, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			return 0, 0, false
		}
		return n, m, true
	}
	return 0, 0, false
}

// FuzzReadBinary feeds arbitrary bytes to the binary parser. Properties: no
// panic; accepted input re-encodes deterministically to a byte-identical
// artifact (decode → encode → decode → encode must converge immediately).
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteBinary(&seed, gen.Grid3D(4, 3, 3)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	seed.Reset()
	if err := WriteBinary(&seed, gen.PrefAttach(60, 3, 1)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(binaryMagic))
	f.Add([]byte("KPRG\x01\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, in []byte) {
		if n, m, ok := peekBinaryHeader(in); !ok || n > 1<<16 || m > 1<<17 {
			return
		}
		g, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("re-encoding accepted input: %v", err)
		}
		g2, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing own output: %v", err)
		}
		var buf2 bytes.Buffer
		if err := WriteBinary(&buf2, g2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("binary encoding did not converge after one round trip")
		}
	})
}

// peekBinaryHeader cheaply extracts the declared node and half-edge counts.
func peekBinaryHeader(in []byte) (n, half uint64, ok bool) {
	if len(in) < 4 || string(in[:4]) != binaryMagic {
		return 0, 0, false
	}
	in = in[4:]
	for i := 0; i < 2; i++ { // version, flags
		_, sz := binary.Uvarint(in)
		if sz <= 0 {
			return 0, 0, false
		}
		in = in[sz:]
	}
	n, sz := binary.Uvarint(in)
	if sz <= 0 {
		return 0, 0, false
	}
	in = in[sz:]
	half, sz = binary.Uvarint(in)
	if sz <= 0 {
		return 0, 0, false
	}
	return n, half, true
}
