package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/graph"
)

// binaryMagic opens every binary graph file; the trailing '1' is the major
// layout generation (a reader that sees a different magic bails out before
// touching any length field).
const binaryMagic = "KPRG"

// binaryVersion is the current encoding version, written after the magic and
// checked by ReadBinary. Bump it when the layout changes incompatibly.
const binaryVersion = 1

// Binary flag bits.
const (
	binFlagNodeWeights = 1 << 0
	binFlagEdgeWeights = 1 << 1
	binFlagCoords      = 1 << 2
	binFlag3D          = 1 << 3
)

// WriteBinary writes the compact binary encoding of g: magic, version, a
// flag word, n and the half-edge count as uvarints, the per-node degrees,
// the adjacency targets, then (flag-dependent) edge weights, node weights,
// and coordinate arrays as little-endian float64 bits. The encoding is a
// pure function of the graph — the same graph always produces the same
// bytes — and, unlike METIS, it preserves coordinates and the exact
// adjacency order (so even contracted graphs round-trip to identical CSR).
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := int32(g.NumNodes())
	var flags uint64
	for v := int32(0); v < n; v++ {
		if g.NodeWeight(v) != 1 {
			flags |= binFlagNodeWeights
			break
		}
	}
	half := 0
	for v := int32(0); v < n; v++ {
		ws := g.AdjWeights(v)
		half += len(ws)
		if flags&binFlagEdgeWeights == 0 {
			for _, wt := range ws {
				if wt != 1 {
					flags |= binFlagEdgeWeights
					break
				}
			}
		}
	}
	switch g.CoordDims() {
	case 2:
		flags |= binFlagCoords
	case 3:
		flags |= binFlagCoords | binFlag3D
	}

	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) {
		bw.Write(scratch[:binary.PutUvarint(scratch[:], x)])
	}
	bw.WriteString(binaryMagic)
	putUvarint(binaryVersion)
	putUvarint(flags)
	putUvarint(uint64(n))
	putUvarint(uint64(half))
	for v := int32(0); v < n; v++ {
		putUvarint(uint64(g.Degree(v)))
	}
	for v := int32(0); v < n; v++ {
		for _, u := range g.Adj(v) {
			putUvarint(uint64(u))
		}
	}
	if flags&binFlagEdgeWeights != 0 {
		for v := int32(0); v < n; v++ {
			for _, wt := range g.AdjWeights(v) {
				putUvarint(uint64(wt))
			}
		}
	}
	if flags&binFlagNodeWeights != 0 {
		for v := int32(0); v < n; v++ {
			putUvarint(uint64(g.NodeWeight(v)))
		}
	}
	if flags&binFlagCoords != 0 {
		x, y, z := g.Coords3()
		writeFloats := func(c []float64) {
			for _, f := range c {
				binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(f))
				bw.Write(scratch[:8])
			}
		}
		writeFloats(x)
		writeFloats(y)
		if flags&binFlag3D != 0 {
			writeFloats(z)
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary graph encoding written by WriteBinary. All
// structural invariants are validated — magic, version, degree sums,
// neighbor ranges, weight signs — so corrupt or truncated input returns an
// error instead of corrupting memory or panicking. Symmetry of the adjacency
// is trusted (it holds for every writer in this module); call
// graph.Graph.Validate on files from untrusted producers.
func ReadBinary(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graphio: reading magic: %w", unexpectEOF(err))
	}
	if string(magic[:]) != binaryMagic {
		return nil, fmt.Errorf("graphio: bad magic %q (want %q)", magic[:], binaryMagic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graphio: reading version: %w", unexpectEOF(err))
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graphio: unsupported binary version %d (have %d)", version, binaryVersion)
	}
	flags, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graphio: reading flags: %w", unexpectEOF(err))
	}
	if flags&^uint64(binFlagNodeWeights|binFlagEdgeWeights|binFlagCoords|binFlag3D) != 0 {
		return nil, fmt.Errorf("graphio: unknown flag bits %#x", flags)
	}
	if flags&binFlag3D != 0 && flags&binFlagCoords == 0 {
		return nil, fmt.Errorf("graphio: 3D flag without coordinate flag")
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graphio: reading node count: %w", unexpectEOF(err))
	}
	if n64 > maxNodes {
		return nil, fmt.Errorf("graphio: node count %d out of range [0, %d]", n64, maxNodes)
	}
	// Budget check before the first n-proportional allocation: a handful of
	// header bytes must not be able to command gigabytes of CSR arrays.
	if err := checkNodeBudget(n64); err != nil {
		return nil, err
	}
	half64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graphio: reading edge count: %w", unexpectEOF(err))
	}
	if half64 > 2*maxEdges || half64%2 != 0 {
		return nil, fmt.Errorf("graphio: half-edge count %d invalid (want even, <= %d)", half64, 2*maxEdges)
	}
	if err := checkEdgeBudget(half64 / 2); err != nil {
		return nil, err
	}
	n, half := int(n64), int(half64)

	xadj := make([]int32, n+1)
	sum := uint64(0)
	for v := 0; v < n; v++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("graphio: reading degree of node %d: %w", v, unexpectEOF(err))
		}
		sum += d
		if sum > half64 {
			return nil, fmt.Errorf("graphio: degrees sum past declared %d half-edges", half)
		}
		xadj[v+1] = int32(sum)
	}
	if sum != half64 {
		return nil, fmt.Errorf("graphio: degrees sum to %d, declared %d", sum, half)
	}
	adj := make([]int32, half)
	for i := range adj {
		u, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("graphio: reading adjacency: %w", unexpectEOF(err))
		}
		if u >= n64 {
			return nil, fmt.Errorf("graphio: neighbor id %d out of range [0, %d)", u, n)
		}
		adj[i] = int32(u)
	}
	ewgt := make([]int64, half)
	if flags&binFlagEdgeWeights != 0 {
		for i := range ewgt {
			w, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("graphio: reading edge weights: %w", unexpectEOF(err))
			}
			if w == 0 || w > math.MaxInt64 {
				return nil, fmt.Errorf("graphio: edge weight %d out of range [1, 2^63)", w)
			}
			ewgt[i] = int64(w)
		}
	} else {
		for i := range ewgt {
			ewgt[i] = 1
		}
	}
	var nwgt []int64
	if flags&binFlagNodeWeights != 0 {
		nwgt = make([]int64, n)
		for v := range nwgt {
			w, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("graphio: reading node weights: %w", unexpectEOF(err))
			}
			if w > math.MaxInt64 {
				return nil, fmt.Errorf("graphio: node weight %d overflows int64", w)
			}
			nwgt[v] = int64(w)
		}
	}
	g, err := graph.FromCSR(xadj, adj, ewgt, nwgt)
	if err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if flags&binFlagCoords != 0 {
		readFloats := func(what string) ([]float64, error) {
			c := make([]float64, n)
			var buf [8]byte
			for i := range c {
				if _, err := io.ReadFull(br, buf[:]); err != nil {
					return nil, fmt.Errorf("graphio: reading %s coordinates: %w", what, unexpectEOF(err))
				}
				c[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
			}
			return c, nil
		}
		x, err := readFloats("x")
		if err != nil {
			return nil, err
		}
		y, err := readFloats("y")
		if err != nil {
			return nil, err
		}
		if flags&binFlag3D != 0 {
			z, err := readFloats("z")
			if err != nil {
				return nil, err
			}
			g.SetCoords3(x, y, z)
		} else {
			g.SetCoords(x, y)
		}
	}
	return g, nil
}
