package graphio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// families lists one representative instance per generator family; every
// codec must round-trip each of them losslessly.
func families() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"rgg":      gen.RGG(9, 1),
		"delaunay": gen.DelaunayX(9, 2),
		"grid":     gen.Grid2D(17, 13),
		"grid3d":   gen.Grid3D(7, 6, 5),
		"road":     gen.Road(700, 4, 3),
		"social":   gen.PrefAttach(600, 5, 4),
		"rmat":     gen.RMAT(9, 8, 5),
		"fem":      gen.FEMMesh(800, 4, 6),
		"banded":   gen.Banded(500, 10, 30, 0.7, 7),
		"er":       gen.ErdosRenyi(400, 1600, 8),
	}
}

// sameStructure fails the test unless a and b agree on sizes, node weights,
// adjacency sets and edge weights. Adjacency order may differ (METIS readers
// sort it); the comparison is order-insensitive via EdgeWeightTo.
func sameStructure(t *testing.T, name string, a, b *graph.Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: size changed: n %d->%d m %d->%d", name, a.NumNodes(), b.NumNodes(), a.NumEdges(), b.NumEdges())
	}
	for v := int32(0); v < int32(a.NumNodes()); v++ {
		if a.NodeWeight(v) != b.NodeWeight(v) {
			t.Fatalf("%s: node weight of %d changed: %d -> %d", name, v, a.NodeWeight(v), b.NodeWeight(v))
		}
		if a.Degree(v) != b.Degree(v) {
			t.Fatalf("%s: degree of %d changed: %d -> %d", name, v, a.Degree(v), b.Degree(v))
		}
		ws := a.AdjWeights(v)
		for i, u := range a.Adj(v) {
			if got := b.EdgeWeightTo(v, u); got != ws[i] {
				t.Fatalf("%s: edge {%d,%d} weight changed: %d -> %d", name, v, u, ws[i], got)
			}
		}
	}
}

// sameCoords fails the test unless a and b carry bit-identical coordinates.
func sameCoords(t *testing.T, name string, a, b *graph.Graph) {
	t.Helper()
	if a.CoordDims() != b.CoordDims() {
		t.Fatalf("%s: coord dims changed: %d -> %d", name, a.CoordDims(), b.CoordDims())
	}
	ax, ay, az := a.Coords3()
	bx, by, bz := b.Coords3()
	for i := range ax {
		if ax[i] != bx[i] || ay[i] != by[i] || (az != nil && az[i] != bz[i]) {
			t.Fatalf("%s: coordinates of node %d changed", name, i)
		}
	}
}

func TestMETISRoundTripFamilies(t *testing.T) {
	for name, g := range families() {
		var buf bytes.Buffer
		if err := WriteMETIS(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		g2, err := ReadMETIS(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		sameStructure(t, name, g, g2)
	}
}

func TestBinaryRoundTripFamilies(t *testing.T) {
	for name, g := range families() {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		g2, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		sameStructure(t, name, g, g2)
		sameCoords(t, name, g, g2)

		// Deterministic: re-encoding the decoded graph reproduces the bytes.
		var buf2 bytes.Buffer
		if err := WriteBinary(&buf2, g2); err != nil {
			t.Fatalf("%s: rewrite: %v", name, err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: binary encoding not deterministic across a round trip", name)
		}
	}
}

func TestAutoDetect(t *testing.T) {
	g := gen.Grid2D(5, 4)
	for _, f := range []Format{FormatMETIS, FormatBinary} {
		var buf bytes.Buffer
		if err := Write(&buf, g, f); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		g2, err := Read(&buf, FormatAuto)
		if err != nil {
			t.Fatalf("auto-read of %v: %v", f, err)
		}
		sameStructure(t, f.String(), g, g2)
	}
}

func TestReadWriteFile(t *testing.T) {
	g := gen.Grid3D(4, 3, 3)
	dir := t.TempDir()
	for _, name := range []string{"g.graph", "g.bgraph"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, g, FormatAuto); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g2, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameStructure(t, name, g, g2)
	}
	// Extension conventions: .bgraph must actually be binary.
	data, err := os.ReadFile(filepath.Join(dir, "g.bgraph"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:4]) != binaryMagic {
		t.Fatalf(".bgraph file does not start with the binary magic")
	}
}

func TestMETISWeightedRoundTrip(t *testing.T) {
	b := graph.NewBuilder(4)
	b.SetNodeWeight(0, 3)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 9)
	b.AddEdge(0, 3, 1)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "4 4 11\n") {
		t.Fatalf("unexpected header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	g2, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameStructure(t, "weighted", g, g2)
}

func TestMETISUnweightedHeader(t *testing.T) {
	b := graph.NewBuilder(5)
	for v := int32(0); v < 4; v++ {
		b.AddEdge(v, v+1, 1)
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "5 4\n") {
		t.Fatalf("unexpected header: %q", buf.String())
	}
	g2, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMETISComments(t *testing.T) {
	in := "% a comment\n3 2\n2\n1 3\n2\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestMETISIsolatedNode(t *testing.T) {
	// Node 2 has degree 0: its line is empty. The streaming reader must
	// consume exactly one line per node, not skip the blank one.
	in := "3 1\n3\n\n1\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 1 || g.Degree(1) != 0 {
		t.Fatalf("n=%d m=%d deg(1)=%d", g.NumNodes(), g.NumEdges(), g.Degree(1))
	}
}

func TestMETISErrors(t *testing.T) {
	cases := []string{
		"",                   // empty
		"x y\n",              // bad header
		"2 1\n2\n",           // missing line for node 2
		"2 5\n2\n1\n",        // wrong edge count
		"2 1 7\n2\n1\n",      // unknown format code
		"2 1\n9\n1\n",        // neighbor out of range
		"2 1 1\n2\n1 2\n",    // missing edge weight on first line
		"2 1 1\n2 0\n1 0\n",  // non-positive edge weight
		"2 1 10\n-1 2\n1\n",  // negative node weight
		"-1 0\n",             // negative node count
		"99999999999999 0\n", // absurd node count
	}
	for _, in := range cases {
		if _, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("ReadMETIS accepted %q", in)
		}
	}
}

func TestBinaryErrors(t *testing.T) {
	g := gen.Grid2D(4, 4)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Truncations at every prefix length must error, never panic.
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("accepted truncation at %d bytes", cut)
		}
	}
	// Corrupt magic and version.
	bad := append([]byte("XXXX"), data[4:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted bad magic")
	}
	bad = append([]byte(binaryMagic), 0x7f)
	bad = append(bad, data[5:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted bad version")
	}
}
