package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/graph"
)

// maxNodes bounds the node count a reader accepts: node ids are int32.
const maxNodes = 1<<31 - 2

// maxEdges bounds the undirected edge count: 2m offsets must fit in int32.
const maxEdges = 1 << 30

// WriteMETIS writes the graph in the METIS/Chaco graph file format used by
// the partitioning community (and by the Walshaw archive): a header line
// "n m fmt" followed by one line per node listing its neighbors 1-indexed.
// fmt is 11 when both node and edge weights are present, 1 for edge weights
// only, 10 for node weights only, and omitted for unweighted graphs.
// Coordinates are not part of the format and are dropped; use FormatBinary
// to keep them.
func WriteMETIS(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := int32(g.NumNodes())
	hasNW := false
	for v := int32(0); v < n; v++ {
		if g.NodeWeight(v) != 1 {
			hasNW = true
			break
		}
	}
	hasEW := false
	for v := int32(0); v < n && !hasEW; v++ {
		for _, wt := range g.AdjWeights(v) {
			if wt != 1 {
				hasEW = true
				break
			}
		}
	}
	switch {
	case hasNW && hasEW:
		fmt.Fprintf(bw, "%d %d 11\n", g.NumNodes(), g.NumEdges())
	case hasNW:
		fmt.Fprintf(bw, "%d %d 10\n", g.NumNodes(), g.NumEdges())
	case hasEW:
		fmt.Fprintf(bw, "%d %d 1\n", g.NumNodes(), g.NumEdges())
	default:
		fmt.Fprintf(bw, "%d %d\n", g.NumNodes(), g.NumEdges())
	}
	var scratch [24]byte
	writeInt := func(x int64, sep bool) {
		if sep {
			bw.WriteByte(' ')
		}
		bw.Write(strconv.AppendInt(scratch[:0], x, 10))
	}
	for v := int32(0); v < n; v++ {
		first := true
		if hasNW {
			writeInt(g.NodeWeight(v), false)
			first = false
		}
		adj := g.Adj(v)
		ws := g.AdjWeights(v)
		for i, u := range adj {
			writeInt(int64(u)+1, !first)
			first = false
			if hasEW {
				writeInt(ws[i], true)
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// metisReader tokenizes a METIS file without materializing lines, so inputs
// with arbitrarily long adjacency lines (high-degree nodes) stream through a
// fixed-size buffer.
type metisReader struct {
	br  *bufio.Reader
	tok []byte // token scratch, reused across tokens
}

// skipComments consumes comment lines (first non-blank byte '%') and the
// leading blanks of the following line. It must be called at a line start
// and leaves the position before the line's first significant byte — which
// may be the newline of an empty line. Returns io.EOF at end of input.
func (mr *metisReader) skipComments() error {
	for {
		c, err := mr.br.ReadByte()
		if err != nil {
			return err
		}
		switch c {
		case ' ', '\t', '\r':
			continue
		case '%':
			for {
				c2, err := mr.br.ReadByte()
				if err != nil {
					return err
				}
				if c2 == '\n' {
					break
				}
			}
		default:
			return mr.br.UnreadByte()
		}
	}
}

// token returns the next token on the current line; eol is true at the end
// of the line (the newline is consumed) or at end of input. The returned
// slice is valid until the next call.
func (mr *metisReader) token() (tok []byte, eol bool, err error) {
	for {
		c, err := mr.br.ReadByte()
		if err == io.EOF {
			return nil, true, nil
		}
		if err != nil {
			return nil, false, err
		}
		if c == ' ' || c == '\t' || c == '\r' {
			continue
		}
		if c == '\n' {
			return nil, true, nil
		}
		mr.br.UnreadByte()
		break
	}
	mr.tok = mr.tok[:0]
	for {
		c, err := mr.br.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, false, err
		}
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			mr.br.UnreadByte()
			break
		}
		mr.tok = append(mr.tok, c)
	}
	return mr.tok, false, nil
}

// skipLine consumes the remainder of the current line.
func (mr *metisReader) skipLine() error {
	for {
		c, err := mr.br.ReadByte()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if c == '\n' {
			return nil
		}
	}
}

// parseInt parses a decimal integer from a token without allocating.
func parseInt(tok []byte) (int64, error) {
	if len(tok) == 0 {
		return 0, fmt.Errorf("empty number")
	}
	i, neg := 0, false
	if tok[0] == '-' || tok[0] == '+' {
		neg = tok[0] == '-'
		i = 1
		if len(tok) == 1 {
			return 0, fmt.Errorf("bad number %q", tok)
		}
	}
	var v int64
	for ; i < len(tok); i++ {
		c := tok[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad number %q", tok)
		}
		d := int64(c - '0')
		if v > (1<<63-1-d)/10 {
			return 0, fmt.Errorf("number %q overflows int64", tok)
		}
		v = v*10 + d
	}
	if neg {
		v = -v
	}
	return v, nil
}

// ReadMETIS parses a graph in METIS format, streaming token by token (no
// line-length limit). Comment lines starting with '%' are skipped; an empty
// line is a degree-0 node. The declared edge count is validated against the
// parsed one, and malformed input of every kind — bad numbers, out-of-range
// neighbors, non-positive edge weights, negative node weights — comes back
// as an error, never a panic.
func ReadMETIS(r io.Reader) (*graph.Graph, error) {
	mr := &metisReader{br: bufio.NewReaderSize(r, 1<<16)}
	if err := mr.skipComments(); err != nil {
		return nil, fmt.Errorf("graphio: missing header: %w", unexpectEOF(err))
	}
	header := [2]int64{}
	for i := range header {
		tok, eol, err := mr.token()
		if err != nil {
			return nil, fmt.Errorf("graphio: reading header: %w", err)
		}
		if eol {
			return nil, fmt.Errorf("graphio: malformed header: %d fields, want at least 2", i)
		}
		if header[i], err = parseInt(tok); err != nil {
			return nil, fmt.Errorf("graphio: bad header: %w", err)
		}
	}
	n, m := header[0], header[1]
	if n < 0 || n > maxNodes {
		return nil, fmt.Errorf("graphio: node count %d out of range [0, %d]", n, maxNodes)
	}
	if m < 0 || m > maxEdges {
		return nil, fmt.Errorf("graphio: edge count %d out of range [0, %d]", m, maxEdges)
	}
	// Budget check before the builder's n-proportional allocation: a
	// one-line header must not command gigabytes.
	if err := checkNodeBudget(uint64(n)); err != nil {
		return nil, err
	}
	if err := checkEdgeBudget(uint64(m)); err != nil {
		return nil, err
	}
	hasNW, hasEW := false, false
	if tok, eol, err := mr.token(); err != nil {
		return nil, fmt.Errorf("graphio: reading header: %w", err)
	} else if !eol {
		switch string(tok) {
		case "0", "00", "000":
		case "1", "01", "001":
			hasEW = true
		case "10", "010":
			hasNW = true
		case "11", "011":
			hasNW, hasEW = true, true
		default:
			return nil, fmt.Errorf("graphio: unsupported format code %q", tok)
		}
		// Ignore a trailing ncon field; multi-constraint weights are not
		// supported, only the single-weight layouts above.
		if err := mr.skipLine(); err != nil {
			return nil, fmt.Errorf("graphio: reading header: %w", err)
		}
	}

	b := graph.NewBuilder(int(n))
	for v := int64(0); v < n; v++ {
		if err := mr.skipComments(); err != nil {
			return nil, fmt.Errorf("graphio: missing line for node %d: %w", v+1, unexpectEOF(err))
		}
		wantNW := hasNW
		wantEWFor := int64(-1) // neighbor awaiting its weight, -1 = none
		for {
			tok, eol, err := mr.token()
			if err != nil {
				return nil, fmt.Errorf("graphio: node %d: %w", v+1, err)
			}
			if eol {
				break
			}
			x, err := parseInt(tok)
			if err != nil {
				return nil, fmt.Errorf("graphio: node %d: %w", v+1, err)
			}
			switch {
			case wantNW:
				if x < 0 {
					return nil, fmt.Errorf("graphio: node %d: negative weight %d", v+1, x)
				}
				b.SetNodeWeight(int32(v), x)
				wantNW = false
			case wantEWFor >= 0:
				if x <= 0 {
					return nil, fmt.Errorf("graphio: node %d: non-positive edge weight %d", v+1, x)
				}
				if wantEWFor-1 > v { // store each undirected edge once
					b.AddEdge(int32(v), int32(wantEWFor-1), x)
				}
				wantEWFor = -1
			default:
				if x < 1 || x > n {
					return nil, fmt.Errorf("graphio: node %d: neighbor %d out of range [1, %d]", v+1, x, n)
				}
				if hasEW {
					wantEWFor = x
				} else if x-1 > v {
					b.AddEdge(int32(v), int32(x-1), 1)
				}
			}
		}
		if wantNW {
			return nil, fmt.Errorf("graphio: node %d: missing node weight", v+1)
		}
		if wantEWFor >= 0 {
			return nil, fmt.Errorf("graphio: node %d: missing edge weight", v+1)
		}
	}
	g := b.Build()
	if int64(g.NumEdges()) != m {
		return nil, fmt.Errorf("graphio: header declares %d edges, parsed %d", m, g.NumEdges())
	}
	return g, nil
}

// unexpectEOF upgrades a bare io.EOF to io.ErrUnexpectedEOF, since callers
// only see it when required content is missing.
func unexpectEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
