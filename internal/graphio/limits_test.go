package graphio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

// binaryHeader builds the prefix of a binary graph file declaring n nodes
// and half half-edges — all an attacker needs to write to command the
// reader's big allocations.
func binaryHeader(n, half uint64) []byte {
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	var scratch [binary.MaxVarintLen64]byte
	put := func(x uint64) { buf.Write(scratch[:binary.PutUvarint(scratch[:], x)]) }
	put(binaryVersion)
	put(0) // flags
	put(n)
	put(half)
	return buf.Bytes()
}

func TestReadBinaryRejectsOverBudgetNodes(t *testing.T) {
	SetDecodeBudget(1000, 0)
	t.Cleanup(func() { SetDecodeBudget(0, 0) })

	_, err := ReadBinary(bytes.NewReader(binaryHeader(1_000_000, 0)))
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("ReadBinary(n=1e6, budget 1000) err = %v, want ErrLimit", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.What != "nodes" || le.Declared != 1_000_000 || le.Limit != 1000 {
		t.Fatalf("LimitError = %+v, want nodes/1e6/1000", err)
	}
	if !strings.Contains(le.Error(), "decode budget") {
		t.Fatalf("error text %q does not mention the budget", le.Error())
	}
}

func TestReadBinaryRejectsOverBudgetEdges(t *testing.T) {
	SetDecodeBudget(0, 1<<20)
	t.Cleanup(func() { SetDecodeBudget(0, 0) })

	// A ~25-byte file declaring 2^29 undirected edges: without the budget
	// the reader would attempt a multi-gigabyte adjacency allocation before
	// noticing the file ends.
	_, err := ReadBinary(bytes.NewReader(binaryHeader(4, 1<<30)))
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("ReadBinary(half=2^30, budget 2^20) err = %v, want ErrLimit", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.What != "edges" || le.Declared != 1<<29 {
		t.Fatalf("LimitError = %+v, want edges/2^29", err)
	}
}

func TestReadMETISRejectsOverBudgetHeader(t *testing.T) {
	SetDecodeBudget(1000, 1000)
	t.Cleanup(func() { SetDecodeBudget(0, 0) })

	if _, err := ReadMETIS(strings.NewReader("2000000 3\n")); !errors.Is(err, ErrLimit) {
		t.Fatalf("ReadMETIS(n=2e6) err = %v, want ErrLimit", err)
	}
	if _, err := ReadMETIS(strings.NewReader("10 2000000\n")); !errors.Is(err, ErrLimit) {
		t.Fatalf("ReadMETIS(m=2e6) err = %v, want ErrLimit", err)
	}
	// Within budget still parses.
	g, err := ReadMETIS(strings.NewReader("3 2\n2\n1 3\n2\n"))
	if err != nil || g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("in-budget graph: g=%v err=%v", g, err)
	}
}

func TestDecodeBudgetDefaultsAndClamp(t *testing.T) {
	n, m := DecodeBudget()
	if n != DefaultMaxDecodeNodes || m != DefaultMaxDecodeEdges {
		t.Fatalf("DecodeBudget() = %d, %d; want defaults %d, %d",
			n, m, DefaultMaxDecodeNodes, DefaultMaxDecodeEdges)
	}
	// Budgets above the format limits clamp to them: the budget can only
	// tighten the format's own bounds, never widen them.
	SetDecodeBudget(1<<40, 1<<40)
	t.Cleanup(func() { SetDecodeBudget(0, 0) })
	n, m = DecodeBudget()
	if n != maxNodes || m != maxEdges {
		t.Fatalf("DecodeBudget() after oversized Set = %d, %d; want format limits %d, %d",
			n, m, uint64(maxNodes), uint64(maxEdges))
	}
}

func TestDecodeBudgetDefaultWithinFormatLimits(t *testing.T) {
	// Well-formed graphs under the default budget keep round-tripping: the
	// budget must be invisible to honest inputs.
	var buf bytes.Buffer
	g, err := ReadMETIS(strings.NewReader("4 3\n2\n1 3\n2 4\n3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("round-trip under default budget: %v", err)
	}
	if g2.NumNodes() != 4 || g2.NumEdges() != 3 {
		t.Fatalf("round-trip graph: n=%d m=%d", g2.NumNodes(), g2.NumEdges())
	}
}
