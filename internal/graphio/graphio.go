// Package graphio is the codec layer between on-disk graph files and the
// in-memory graph.Graph: it turns "graph" from an in-memory-only value into a
// first-class serializable artifact.
//
// Two formats are supported:
//
//   - METIS — the text format of the partitioning community (METIS, Chaco,
//     the Walshaw archive): a "n m fmt" header followed by one line per node
//     listing its 1-indexed neighbors, with optional node and edge weights.
//     ReadMETIS is a streaming tokenizer (no per-line string splitting), so
//     multi-gigabyte benchmark instances parse without line-length limits.
//   - Binary — a compact deterministic varint encoding of the CSR arrays
//     (magic "KPRG"), including the optional 2D/3D coordinates METIS cannot
//     carry. Writing the same graph always produces the same bytes, so
//     binary artifacts can be compared and content-addressed.
//
// Read with FormatAuto sniffs the binary magic and falls back to METIS, so
// callers never need to know what a file contains. ReadFile/WriteFile pick
// the format from the file extension (".bgraph"/".bin" = binary, anything
// else METIS).
//
// The repro facade re-exports the entry points as repro.ReadGraph and
// repro.WriteGraph; cmd/kappa and cmd/gengraph speak both formats through
// them.
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/graph"
)

// Format names an on-disk graph encoding.
type Format int

const (
	// FormatAuto detects the format: by magic bytes when reading, by file
	// extension in ReadFile/WriteFile (METIS when unknown).
	FormatAuto Format = iota
	// FormatMETIS is the textual METIS/Chaco graph format.
	FormatMETIS
	// FormatBinary is the compact deterministic binary CSR format.
	FormatBinary
)

// String returns the flag-level name of the format.
func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatMETIS:
		return "metis"
	case FormatBinary:
		return "bin"
	default:
		return fmt.Sprintf("graphio.Format(%d)", int(f))
	}
}

// ParseFormat parses a flag-level format name, case-insensitively.
func ParseFormat(name string) (Format, error) {
	switch strings.ToLower(name) {
	case "auto", "":
		return FormatAuto, nil
	case "metis", "graph", "txt":
		return FormatMETIS, nil
	case "bin", "binary", "bgraph":
		return FormatBinary, nil
	default:
		return FormatAuto, fmt.Errorf("graphio: unknown format %q (want auto|metis|bin)", name)
	}
}

// FormatForPath picks the format conventionally associated with a file name:
// ".bgraph" and ".bin" mean binary, everything else (".graph", ".metis", no
// extension) means METIS.
func FormatForPath(path string) Format {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".bgraph", ".bin":
		return FormatBinary
	default:
		return FormatMETIS
	}
}

// Read parses a graph from r. FormatAuto sniffs the binary magic and falls
// back to METIS.
func Read(r io.Reader, f Format) (*graph.Graph, error) {
	switch f {
	case FormatMETIS:
		return ReadMETIS(r)
	case FormatBinary:
		return ReadBinary(r)
	case FormatAuto:
		br := bufio.NewReaderSize(r, 1<<16)
		head, err := br.Peek(len(binaryMagic))
		if err == nil && string(head) == binaryMagic {
			return ReadBinary(br)
		}
		return ReadMETIS(br)
	default:
		return nil, fmt.Errorf("graphio: unknown format %v", f)
	}
}

// Write encodes g to w. FormatAuto writes METIS, the interchange default.
func Write(w io.Writer, g *graph.Graph, f Format) error {
	switch f {
	case FormatMETIS, FormatAuto:
		return WriteMETIS(w, g)
	case FormatBinary:
		return WriteBinary(w, g)
	default:
		return fmt.Errorf("graphio: unknown format %v", f)
	}
}

// ReadFile reads a graph file, detecting the format from the content (binary
// magic first, METIS otherwise) regardless of extension.
func ReadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil && fi.IsDir() {
		// A directory here is almost always a shard store (kappa shard's
		// output); reading it as a graph file can only fail, so name the
		// right entry point instead of surfacing a raw EISDIR.
		return nil, fmt.Errorf("graphio: %s is a directory, not a graph file; shard stores are served with the shard-store entry points (kappa serve -shards, store.Open)", path)
	}
	return Read(f, FormatAuto)
}

// WriteFile writes a graph file. FormatAuto picks the format from the
// extension (FormatForPath).
func WriteFile(path string, g *graph.Graph, format Format) error {
	if format == FormatAuto {
		format = FormatForPath(path)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := Write(bw, g, format); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
