package graphio

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrLimit is the sentinel wrapped by every decode-budget rejection:
// errors.Is(err, graphio.ErrLimit) distinguishes "this input declares a
// graph bigger than the process is willing to decode" from malformed input.
var ErrLimit = errors.New("graphio: declared size exceeds decode budget")

// LimitError reports a header quantity whose declared size exceeds the
// configured decode budget. The binary format in particular is a chain of
// length-prefixed sections: a 20-byte file can declare 2^31 half-edges, and
// without a budget the reader would attempt the multi-gigabyte CSR
// allocation before discovering the file ends. The budget check runs on the
// declared counts, before any size-proportional allocation.
type LimitError struct {
	What     string // what was declared: "nodes" or "edges"
	Declared uint64 // the count the input announced
	Limit    uint64 // the budget in force
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("graphio: declared %s count %d exceeds decode budget %d (raise it with SetDecodeBudget / kappa api -max-graph-nodes/-max-graph-edges)",
		e.What, e.Declared, e.Limit)
}

// Unwrap makes errors.Is(err, ErrLimit) hold for every LimitError.
func (e *LimitError) Unwrap() error { return ErrLimit }

// Default decode budgets: generous enough for every benchmark family in the
// paper (and an order of magnitude beyond the largest Walshaw instance),
// small enough that the worst-case decoder allocation is hundreds of
// megabytes rather than the 8 GiB the format limits would admit. Processes
// that really load bigger graphs raise the budget explicitly.
const (
	DefaultMaxDecodeNodes = 1 << 27 // ~134M nodes
	DefaultMaxDecodeEdges = 1 << 28 // ~268M undirected edges
)

// budgetNodes/budgetEdges hold the configurable budgets (atomic: readers run
// on request-serving goroutines; configuration is a startup-time act). Zero
// means "the default".
var (
	budgetNodes atomic.Uint64
	budgetEdges atomic.Uint64
)

// DecodeBudget returns the decode budgets in force: the maximum node and
// undirected-edge counts a reader accepts from a declared header.
func DecodeBudget() (nodes, edges uint64) {
	nodes, edges = budgetNodes.Load(), budgetEdges.Load()
	if nodes == 0 {
		nodes = DefaultMaxDecodeNodes
	}
	if edges == 0 {
		edges = DefaultMaxDecodeEdges
	}
	return nodes, edges
}

// SetDecodeBudget bounds the graph size every reader in this process accepts;
// 0 restores the default for that dimension. Budgets above the format limits
// (int32 node ids, 2m offsets in int32) are clamped to them. Call it at
// startup — kappa api exposes it as -max-graph-nodes/-max-graph-edges.
func SetDecodeBudget(nodes, edges uint64) {
	if nodes > maxNodes {
		nodes = maxNodes
	}
	if edges > maxEdges {
		edges = maxEdges
	}
	budgetNodes.Store(nodes)
	budgetEdges.Store(edges)
}

// checkNodeBudget rejects a declared node count exceeding the budget.
func checkNodeBudget(n uint64) error {
	if limit, _ := DecodeBudget(); n > limit {
		return &LimitError{What: "nodes", Declared: n, Limit: limit}
	}
	return nil
}

// checkEdgeBudget rejects a declared undirected-edge count exceeding the
// budget.
func checkEdgeBudget(m uint64) error {
	if _, limit := DecodeBudget(); m > limit {
		return &LimitError{What: "edges", Declared: m, Limit: limit}
	}
	return nil
}
