package gen

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// RGG generates the paper's rggX family: a random geometric graph with
// n = 2^scale nodes at random positions in the unit square, connecting nodes
// whose Euclidean distance is below 0.55·sqrt(ln n / n). The threshold is the
// paper's choice, made so that the graph is almost connected. The returned
// graph carries coordinates.
func RGG(scale int, seed uint64) *graph.Graph {
	n := 1 << scale
	r := rng.New(seed)
	pts := UniformPoints(n, r)
	radius := 0.55 * math.Sqrt(math.Log(float64(n))/float64(n))
	return GeometricGraph(pts, radius)
}

// GeometricGraph connects every pair of points at distance below radius. A
// uniform grid with cells of side radius keeps the running time near-linear
// for the point densities the generators produce.
func GeometricGraph(pts []Point, radius float64) *graph.Graph {
	n := len(pts)
	b := graph.NewBuilder(n)
	for v, p := range pts {
		b.SetCoord(int32(v), p.X, p.Y)
	}
	if n == 0 {
		return b.Build()
	}
	cells := int(1/radius) + 1
	grid := make(map[[2]int][]int32)
	cellOf := func(p Point) [2]int {
		cx := int(p.X / radius)
		cy := int(p.Y / radius)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return [2]int{cx, cy}
	}
	for v, p := range pts {
		grid[cellOf(p)] = append(grid[cellOf(p)], int32(v))
	}
	r2 := radius * radius
	for v, p := range pts {
		c := cellOf(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, u := range grid[[2]int{c[0] + dx, c[1] + dy}] {
					if u <= int32(v) {
						continue // each pair once
					}
					q := pts[u]
					ddx, ddy := p.X-q.X, p.Y-q.Y
					if ddx*ddx+ddy*ddy < r2 {
						b.AddEdge(int32(v), u, 1)
					}
				}
			}
		}
	}
	return b.Build()
}
