package gen

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Road generates a road-network-like graph with about n nodes: near-planar,
// average degree ≈ 2.5, long geodesic diameter, and natural cut structure
// from "waterbodies" (the paper observes that Metis fails to find the
// structure that rivers and mountains induce in the European road network).
//
// Construction: take the Delaunay triangulation of jittered grid points,
// keep only each node's `keep` shortest incident edges (road intersections
// have few streets), remove edges crossing elongated random obstacles, and
// return the largest connected component. Coordinates are attached.
func Road(n int, obstacles int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	pts := JitteredGridPoints(n, 0.4, r)
	tg := Delaunay(pts, seed+1)

	// Obstacles: thin rectangles ("rivers") in random orientation.
	type obstacle struct {
		cx, cy, len, wid, cos, sin float64
	}
	obs := make([]obstacle, obstacles)
	for i := range obs {
		angle := r.Float64() * math.Pi
		obs[i] = obstacle{
			cx: r.Float64(), cy: r.Float64(),
			len: 0.15 + 0.35*r.Float64(), wid: 0.004 + 0.012*r.Float64(),
			cos: math.Cos(angle), sin: math.Sin(angle),
		}
	}
	inObstacle := func(x, y float64) bool {
		for _, o := range obs {
			dx, dy := x-o.cx, y-o.cy
			u := dx*o.cos + dy*o.sin
			v := -dx*o.sin + dy*o.cos
			if math.Abs(u) < o.len/2 && math.Abs(v) < o.wid/2 {
				return true
			}
		}
		return false
	}

	// Degree thinning: per node, rank incident edges by length; an edge
	// survives if it is among the `keep` shortest at either endpoint.
	const keep = 2
	nn := tg.NumNodes()
	x, y := tg.Coords()
	type rankedEdge struct {
		to   int32
		dist float64
	}
	survive := make(map[uint64]bool)
	edges := make([]rankedEdge, 0, 16)
	for v := int32(0); v < int32(nn); v++ {
		edges = edges[:0]
		for _, u := range tg.Adj(v) {
			dx, dy := x[v]-x[u], y[v]-y[u]
			edges = append(edges, rankedEdge{u, dx*dx + dy*dy})
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i].dist < edges[j].dist })
		lim := keep
		if lim > len(edges) {
			lim = len(edges)
		}
		for i := 0; i < lim; i++ {
			u := edges[i].to
			a, c := v, u
			if a > c {
				a, c = c, a
			}
			survive[uint64(a)<<32|uint64(uint32(c))] = true
		}
	}

	b := graph.NewBuilder(nn)
	for v := int32(0); v < int32(nn); v++ {
		b.SetCoord(v, x[v], y[v])
	}
	for v := int32(0); v < int32(nn); v++ {
		for _, u := range tg.Adj(v) {
			if u <= v {
				continue
			}
			if !survive[uint64(v)<<32|uint64(uint32(u))] {
				continue
			}
			// Edges crossing an obstacle are removed (sampled at midpoint
			// and quarter points, enough at road edge lengths).
			crosses := false
			for _, f := range []float64{0.25, 0.5, 0.75} {
				if inObstacle(x[v]+f*(x[u]-x[v]), y[v]+f*(y[u]-y[v])) {
					crosses = true
					break
				}
			}
			if crosses {
				continue
			}
			b.AddEdge(v, u, 1)
		}
	}
	g := b.Build()
	lc, _ := g.LargestComponent()
	return lc
}
