package gen

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// PrefAttach generates a preferential-attachment (Barabási–Albert) graph
// with n nodes, each new node attaching d edges to existing nodes chosen
// with probability proportional to their degree. This reproduces the heavy
// power-law degree tail of the paper's coAuthorsDBLP/citationCiteseer social
// instances, which stress partitioners very differently from meshes.
//
//kappa:invariant generator parameters are fixed by the scenario catalog, not user input
func PrefAttach(n, d int, seed uint64) *graph.Graph {
	if d < 1 {
		panic("gen: PrefAttach needs d >= 1")
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	// repeated-node list: each node appears once per incident half-edge, so
	// uniform sampling from it is degree-proportional sampling.
	var pool []int32
	start := d + 1
	if start > n {
		start = n
	}
	// Seed clique over the first min(d+1, n) nodes.
	for i := 0; i < start; i++ {
		for j := i + 1; j < start; j++ {
			b.AddEdge(int32(i), int32(j), 1)
			pool = append(pool, int32(i), int32(j))
		}
	}
	chosen := make([]int32, 0, d)
	for v := start; v < n; v++ {
		// Deduplicate in insertion order: ranging over a set here would make
		// the edge order — and through the pool, every later degree draw —
		// depend on map iteration, so the "same" seed generated a different
		// graph on every process.
		chosen = chosen[:0]
		for len(chosen) < d {
			u := pool[r.Intn(len(pool))]
			dup := false
			for _, c := range chosen {
				if c == u {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, u)
			}
		}
		for _, u := range chosen {
			b.AddEdge(int32(v), u, 1)
			pool = append(pool, int32(v), u)
		}
	}
	return b.Build()
}

// RMAT generates a recursive-matrix random graph with 2^scale nodes and
// about edgeFactor·2^scale undirected edges using the standard
// (a,b,c,d) = (0.57, 0.19, 0.19, 0.05) parameters. RMAT graphs have skewed
// degrees and weak community structure, similar to citation networks.
// Duplicate edges and self loops are discarded, so the realized edge count is
// slightly below the requested one. The graph is restricted to its largest
// connected component.
func RMAT(scale, edgeFactor int, seed uint64) *graph.Graph {
	n := 1 << scale
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	seen := make(map[uint64]bool)
	target := edgeFactor * n
	const a, bb, c = 0.57, 0.19, 0.19
	for e := 0; e < target; e++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			p := r.Float64()
			switch {
			case p < a:
			case p < a+bb:
				v |= 1 << bit
			case p < a+bb+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		key := uint64(lo)<<32 | uint64(uint32(hi))
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(int32(u), int32(v), 1)
	}
	g := b.Build()
	lc, _ := g.LargestComponent()
	return lc
}

// ErdosRenyi generates a G(n, m) random graph (m distinct uniform edges).
// It is used by tests as an unstructured control input.
func ErdosRenyi(n, m int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	seen := make(map[uint64]bool)
	for len(seen) < m {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(int32(u), int32(v), 1)
	}
	return b.Build()
}
