// Package gen generates the benchmark graph families of the paper's
// evaluation (Table 1): random geometric graphs (rggX), Delaunay
// triangulations (DelaunayX), FEM-style meshes, road networks, sparse-matrix
// graphs, and social networks. Since the original instances (Walshaw archive,
// Florida matrices, DIMACS road networks, DBLP/Citeseer) are not shippable,
// each generator reproduces the structural properties of its family:
// near-planarity and coordinates for the geometric/FEM/road families, power
// law degrees and community structure for the social family, banded structure
// for the matrix family.
package gen

import (
	"repro/internal/rng"
)

// Point is a 2D point in the unit square.
type Point struct {
	X, Y float64
}

// UniformPoints returns n points drawn uniformly at random from the unit
// square.
func UniformPoints(n int, r *rng.RNG) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{r.Float64(), r.Float64()}
	}
	return pts
}

// JitteredGridPoints returns roughly n points on a √n×√n grid, each
// perturbed by up to jitter·cell. Road-network generation uses this to get
// the near-uniform but irregular node placement of real street maps.
func JitteredGridPoints(n int, jitter float64, r *rng.RNG) []Point {
	side := 1
	for side*side < n {
		side++
	}
	cell := 1.0 / float64(side)
	pts := make([]Point, 0, side*side)
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			x := (float64(i)+0.5)*cell + (r.Float64()-0.5)*2*jitter*cell
			y := (float64(j)+0.5)*cell + (r.Float64()-0.5)*2*jitter*cell
			pts = append(pts, Point{clamp01(x), clamp01(y)})
		}
	}
	return pts[:n]
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
