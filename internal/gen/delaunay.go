package gen

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// DelaunayX generates the paper's DelaunayX family: the Delaunay
// triangulation of 2^scale random points in the unit square. The graph
// carries coordinates.
func DelaunayX(scale int, seed uint64) *graph.Graph {
	n := 1 << scale
	pts := UniformPoints(n, rng.New(seed))
	return Delaunay(pts, seed+1)
}

// Delaunay triangulates the given point set with the incremental
// Bowyer–Watson algorithm (walking point location, spatially sorted insertion
// order) and returns the triangulation as a unit-weight graph with
// coordinates. The super-triangle is finite but far away, so the result may
// deviate from the exact Delaunay triangulation near the convex hull; this is
// irrelevant for benchmark-graph generation.
func Delaunay(pts []Point, seed uint64) *graph.Graph {
	n := len(pts)
	b := graph.NewBuilder(n)
	for v, p := range pts {
		b.SetCoord(int32(v), p.X, p.Y)
	}
	if n < 3 {
		for v := 1; v < n; v++ {
			b.AddEdge(int32(v-1), int32(v), 1)
		}
		return b.Build()
	}

	d := newTriangulator(pts)
	for _, v := range spatialOrder(pts) {
		d.insert(v)
	}

	seen := make(map[uint64]bool)
	for ti := range d.tris {
		t := &d.tris[ti]
		if !t.alive {
			continue
		}
		for i := 0; i < 3; i++ {
			u, v := t.v[i], t.v[(i+1)%3]
			if u >= int32(n) || v >= int32(n) {
				continue // super-triangle vertex
			}
			if u > v {
				u, v = v, u
			}
			key := uint64(u)<<32 | uint64(uint32(v))
			if !seen[key] {
				seen[key] = true
				b.AddEdge(u, v, 1)
			}
		}
	}
	_ = seed
	return b.Build()
}

// spatialOrder returns the insertion order: points sorted along a serpentine
// grid curve, which keeps consecutive points close so that the walking point
// location runs in near-constant amortized time.
func spatialOrder(pts []Point) []int32 {
	n := len(pts)
	side := int(math.Sqrt(float64(n))) + 1
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	cell := func(i int32) (int, int) {
		cx := int(pts[i].X * float64(side))
		cy := int(pts[i].Y * float64(side))
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		return cx, cy
	}
	key := func(i int32) int {
		cx, cy := cell(i)
		if cy%2 == 1 {
			cx = side - 1 - cx
		}
		return cy*side + cx
	}
	sort.Slice(order, func(a, b int) bool { return key(order[a]) < key(order[b]) })
	return order
}

// tri is one triangle of the triangulation. Vertices are stored in
// counter-clockwise order; nb[i] is the triangle across the edge opposite
// v[i] (-1 at the outer boundary).
type tri struct {
	v     [3]int32
	nb    [3]int32
	alive bool
}

type triangulator struct {
	px, py []float64 // positions, including 3 super vertices at the end
	tris   []tri
	last   int32 // walk hint: most recently created triangle

	// scratch buffers reused across insertions
	cavity   []int32
	inCavity map[int32]bool
	byA      map[int32]int32 // second vertex -> new triangle
	byB      map[int32]int32 // third vertex  -> new triangle
}

func newTriangulator(pts []Point) *triangulator {
	n := len(pts)
	const m = 1e3
	px := make([]float64, n+3)
	py := make([]float64, n+3)
	for i, p := range pts {
		px[i], py[i] = p.X, p.Y
	}
	// Far super-triangle containing the unit square.
	px[n], py[n] = -m, -m
	px[n+1], py[n+1] = 3*m, -m
	px[n+2], py[n+2] = -m, 3*m
	d := &triangulator{
		px: px, py: py,
		inCavity: make(map[int32]bool),
		byA:      make(map[int32]int32),
		byB:      make(map[int32]int32),
	}
	d.tris = append(d.tris, tri{
		v:     [3]int32{int32(n), int32(n + 1), int32(n + 2)},
		nb:    [3]int32{-1, -1, -1},
		alive: true,
	})
	return d
}

// orient returns a positive value if (a,b,c) is counter-clockwise.
func (d *triangulator) orient(a, b, c int32) float64 {
	return (d.px[b]-d.px[a])*(d.py[c]-d.py[a]) - (d.py[b]-d.py[a])*(d.px[c]-d.px[a])
}

// inCircum reports whether point p lies inside the circumcircle of CCW
// triangle t.
func (d *triangulator) inCircum(t *tri, p int32) bool {
	a, b, c := t.v[0], t.v[1], t.v[2]
	ax, ay := d.px[a]-d.px[p], d.py[a]-d.py[p]
	bx, by := d.px[b]-d.px[p], d.py[b]-d.py[p]
	cx, cy := d.px[c]-d.px[p], d.py[c]-d.py[p]
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	return det > 0
}

// locate walks from the hint triangle to a triangle containing p. The
// super-triangle encloses every input point, so failing to locate one is a
// triangulation-invariant violation, not an input error.
//
//kappa:invariant the super-triangle guarantees every point is locatable
func (d *triangulator) locate(p int32) int32 {
	t := d.last
	if !d.tris[t].alive {
		for i := len(d.tris) - 1; i >= 0; i-- {
			if d.tris[i].alive {
				t = int32(i)
				break
			}
		}
	}
	for steps := 0; steps < 4*len(d.tris)+16; steps++ {
		tr := &d.tris[t]
		moved := false
		for i := 0; i < 3; i++ {
			a, b := tr.v[(i+1)%3], tr.v[(i+2)%3]
			if d.orient(a, b, p) < 0 {
				next := tr.nb[i]
				if next < 0 {
					break // outside the super triangle: numerically impossible
				}
				t = next
				moved = true
				break
			}
		}
		if !moved {
			return t
		}
	}
	// Fallback: exhaustive scan. Reached only on pathological inputs.
	for i := range d.tris {
		tr := &d.tris[i]
		if !tr.alive {
			continue
		}
		if d.orient(tr.v[0], tr.v[1], p) >= 0 &&
			d.orient(tr.v[1], tr.v[2], p) >= 0 &&
			d.orient(tr.v[2], tr.v[0], p) >= 0 {
			return int32(i)
		}
	}
	panic("delaunay: point location failed")
}

// insert adds point p via cavity retriangulation.
func (d *triangulator) insert(p int32) {
	start := d.locate(p)

	// Grow the cavity: all triangles whose circumcircle contains p,
	// connected to start.
	d.cavity = d.cavity[:0]
	for k := range d.inCavity {
		delete(d.inCavity, k)
	}
	d.cavity = append(d.cavity, start)
	d.inCavity[start] = true
	for qi := 0; qi < len(d.cavity); qi++ {
		t := d.cavity[qi]
		for _, nbt := range d.tris[t].nb {
			if nbt >= 0 && !d.inCavity[nbt] && d.inCircum(&d.tris[nbt], p) {
				d.inCavity[nbt] = true
				d.cavity = append(d.cavity, nbt)
			}
		}
	}

	// Collect boundary edges (a, b) with their outer neighbors, kill the
	// cavity, and fan new triangles (p, a, b) around p.
	for k := range d.byA {
		delete(d.byA, k)
	}
	for k := range d.byB {
		delete(d.byB, k)
	}
	type boundaryEdge struct {
		a, b  int32
		outer int32
	}
	var boundary []boundaryEdge
	for _, t := range d.cavity {
		tr := &d.tris[t]
		for i := 0; i < 3; i++ {
			o := tr.nb[i]
			if o < 0 || !d.inCavity[o] {
				boundary = append(boundary, boundaryEdge{tr.v[(i+1)%3], tr.v[(i+2)%3], o})
			}
		}
	}
	for _, t := range d.cavity {
		d.tris[t].alive = false
	}
	for _, e := range boundary {
		nt := int32(len(d.tris))
		d.tris = append(d.tris, tri{
			v:     [3]int32{p, e.a, e.b},
			nb:    [3]int32{e.outer, -1, -1},
			alive: true,
		})
		if e.outer >= 0 {
			// Point the outer triangle back at the new one.
			out := &d.tris[e.outer]
			for j := 0; j < 3; j++ {
				oa, ob := out.v[(j+1)%3], out.v[(j+2)%3]
				if (oa == e.a && ob == e.b) || (oa == e.b && ob == e.a) {
					out.nb[j] = nt
					break
				}
			}
		}
		d.byA[e.a] = nt
		d.byB[e.b] = nt
	}
	// Stitch the fan: triangle (p,a,b) shares edge (b,p) with the new
	// triangle whose second vertex is b, and edge (p,a) with the one whose
	// third vertex is a.
	for _, e := range boundary {
		nt := d.byA[e.a]
		d.tris[nt].nb[1] = d.byA[e.b]
		d.tris[nt].nb[2] = d.byB[e.a]
	}
	d.last = int32(len(d.tris) - 1)
}
