package gen

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestRGGBasic(t *testing.T) {
	g := RGG(10, 1)
	if g.NumNodes() != 1024 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.HasCoords() {
		t.Fatal("RGG must carry coordinates")
	}
	// Paper's threshold makes the graph "almost connected": the largest
	// component must dominate.
	lc, _ := g.LargestComponent()
	if lc.NumNodes() < g.NumNodes()*9/10 {
		t.Fatalf("largest component only %d of %d", lc.NumNodes(), g.NumNodes())
	}
	// Every edge respects the radius.
	n := g.NumNodes()
	radius := 0.55 * math.Sqrt(math.Log(float64(n))/float64(n))
	x, y := g.Coords()
	for v := int32(0); v < int32(n); v++ {
		for _, u := range g.Adj(v) {
			dx, dy := x[v]-x[u], y[v]-y[u]
			if dx*dx+dy*dy >= radius*radius {
				t.Fatalf("edge {%d,%d} longer than radius", v, u)
			}
		}
	}
}

func TestRGGDeterministic(t *testing.T) {
	a, b := RGG(8, 5), RGG(8, 5)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	c := RGG(8, 6)
	if a.NumEdges() == c.NumEdges() && a.NumNodes() == c.NumNodes() {
		// edge counts could coincide; compare adjacency of node 0 too
		same := len(a.Adj(0)) == len(c.Adj(0))
		for i, u := range a.Adj(0) {
			if !same || i >= len(c.Adj(0)) {
				break
			}
			same = same && u == c.Adj(0)[i]
		}
		if same && a.NumEdges() == c.NumEdges() {
			t.Log("warning: different seeds produced identical node-0 adjacency (possible but unlikely)")
		}
	}
}

func TestGeometricGraphEmpty(t *testing.T) {
	g := GeometricGraph(nil, 0.1)
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty input must give empty graph")
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(7, 5)
	if g.NumNodes() != 35 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	// A w×h grid has w(h-1) + h(w-1) edges.
	want := 7*4 + 5*6
	if g.NumEdges() != want {
		t.Fatalf("m = %d, want %d", g.NumEdges(), want)
	}
	if !g.IsConnected() {
		t.Fatal("grid must be connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGrid3D(t *testing.T) {
	g := Grid3D(3, 4, 5)
	if g.NumNodes() != 60 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	want := 2*4*5 + 3*3*5 + 3*4*4
	if g.NumEdges() != want {
		t.Fatalf("m = %d, want %d", g.NumEdges(), want)
	}
	if !g.IsConnected() {
		t.Fatal("grid must be connected")
	}
	if g.CoordDims() != 3 {
		t.Fatalf("Grid3D must carry 3D coordinates, got %d dims", g.CoordDims())
	}
	x, y, z := g.Coord3(int32((1*4+2)*5 + 3)) // lattice point (1,2,3)
	if x != 1 || y != 2 || z != 3 {
		t.Fatalf("coords of (1,2,3) = (%g,%g,%g)", x, y, z)
	}
}

func TestDelaunayProperties(t *testing.T) {
	for _, n := range []int{3, 10, 100, 2000} {
		pts := UniformPoints(n, rng.New(uint64(n)))
		g := Delaunay(pts, 1)
		if g.NumNodes() != n {
			t.Fatalf("n=%d: NumNodes=%d", n, g.NumNodes())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !g.IsConnected() {
			t.Fatalf("n=%d: triangulation must be connected", n)
		}
		// Planarity bound: m <= 3n - 6 for n >= 3.
		if g.NumEdges() > 3*n-6 {
			t.Fatalf("n=%d: m=%d exceeds planar bound %d", n, g.NumEdges(), 3*n-6)
		}
		// A triangulation of random points has close to 3n edges.
		if n >= 100 && g.NumEdges() < 2*n {
			t.Fatalf("n=%d: only %d edges, not a triangulation", n, g.NumEdges())
		}
	}
}

func TestDelaunayTiny(t *testing.T) {
	g := Delaunay([]Point{{0.1, 0.1}, {0.9, 0.2}}, 0)
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatal("2-point triangulation must be a single edge")
	}
	g = Delaunay(nil, 0)
	if g.NumNodes() != 0 {
		t.Fatal("empty triangulation")
	}
}

func TestDelaunayX(t *testing.T) {
	g := DelaunayX(9, 3)
	if g.NumNodes() != 512 || !g.HasCoords() {
		t.Fatal("DelaunayX shape wrong")
	}
	if !g.IsConnected() {
		t.Fatal("DelaunayX must be connected")
	}
}

func TestFEMMesh(t *testing.T) {
	g := FEMMesh(2000, 4, 9)
	if g.NumNodes() < 1000 {
		t.Fatalf("FEM mesh too small after holes: %d", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("FEMMesh must return a connected component")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	if s.AvgDegree < 3 || s.AvgDegree > 7 {
		t.Fatalf("FEM mesh avg degree %.2f out of triangulation range", s.AvgDegree)
	}
}

func TestBanded(t *testing.T) {
	g := Banded(1000, 8, 20, 0.5, 4)
	if g.NumNodes() != 1000 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("banded graph must be connected")
	}
	// All edges stay within the band or the block.
	for v := int32(0); v < 1000; v++ {
		for _, u := range g.Adj(v) {
			d := int(v) - int(u)
			if d < 0 {
				d = -d
			}
			if d > 20 && d > 8 {
				t.Fatalf("edge {%d,%d} outside band", v, u)
			}
		}
	}
}

func TestPrefAttach(t *testing.T) {
	g := PrefAttach(3000, 4, 11)
	if g.NumNodes() != 3000 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("preferential attachment graph must be connected")
	}
	s := g.ComputeStats()
	// Power-law tail: max degree far above average.
	if float64(s.MaxDegree) < 5*s.AvgDegree {
		t.Fatalf("max degree %d not heavy-tailed (avg %.1f)", s.MaxDegree, s.AvgDegree)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefAttachSmallN(t *testing.T) {
	g := PrefAttach(3, 5, 1) // d larger than n: seed clique only
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 8, 13)
	if g.NumNodes() == 0 || g.NumNodes() > 1024 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("RMAT returns largest component, must be connected")
	}
	s := g.ComputeStats()
	if float64(s.MaxDegree) < 3*s.AvgDegree {
		t.Fatalf("RMAT degrees not skewed: max %d avg %.1f", s.MaxDegree, s.AvgDegree)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(500, 2000, 17)
	if g.NumNodes() != 500 || g.NumEdges() != 2000 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoad(t *testing.T) {
	g := Road(4000, 6, 21)
	if g.NumNodes() < 1500 {
		t.Fatalf("road network too small: %d", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("road network must be connected")
	}
	s := g.ComputeStats()
	if s.AvgDegree > 4 {
		t.Fatalf("road avg degree %.2f too high (real road nets are ~2.5)", s.AvgDegree)
	}
	if !g.HasCoords() {
		t.Fatal("road network must carry coordinates")
	}
}

func TestJitteredGridPoints(t *testing.T) {
	pts := JitteredGridPoints(100, 0.4, rng.New(2))
	if len(pts) != 100 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("point outside unit square: %+v", p)
		}
	}
}

func BenchmarkRGG15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RGG(15, uint64(i))
	}
}

func BenchmarkDelaunay14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		DelaunayX(14, uint64(i))
	}
}
