package gen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// FromSpec builds a benchmark-family graph from a compact textual spec of the
// form "family:arg" — the vocabulary of the kappa CLI's -gen flag and of the
// service API's "gen" job field:
//
//	rgg:S        random geometric graph, 2^S nodes
//	delaunay:S   Delaunay triangulation, 2^S points
//	grid:WxH     2D lattice
//	grid3d:XxYxZ 3D lattice
//	road:N       road-network-like graph
//	social:N     preferential-attachment network
//	rmat:S       RMAT power-law graph, 2^S nodes
//	fem:N        unstructured FEM triangle mesh
//	banded:N     banded sparse-matrix graph
//
// Every size argument is validated before any generator runs, so a hostile or
// mistyped spec comes back as an error instead of an attempted 2^63-node
// allocation — the admission-control property the serving layer relies on.
func FromSpec(spec string) (*graph.Graph, error) {
	kind, arg, _ := strings.Cut(spec, ":")
	switch kind {
	case "rgg":
		s, err := specScale(arg)
		if err != nil {
			return nil, fmt.Errorf("gen: rgg spec: %w", err)
		}
		return RGG(s, 1), nil
	case "delaunay":
		s, err := specScale(arg)
		if err != nil {
			return nil, fmt.Errorf("gen: delaunay spec: %w", err)
		}
		return DelaunayX(s, 1), nil
	case "grid":
		dims, err := specDims(arg, 2)
		if err != nil {
			return nil, fmt.Errorf("gen: grid spec must be WxH: %w", err)
		}
		return Grid2D(dims[0], dims[1]), nil
	case "grid3d":
		dims, err := specDims(arg, 3)
		if err != nil {
			return nil, fmt.Errorf("gen: grid3d spec must be XxYxZ: %w", err)
		}
		return Grid3D(dims[0], dims[1], dims[2]), nil
	case "road":
		n, err := specSize(arg)
		if err != nil {
			return nil, fmt.Errorf("gen: road spec: %w", err)
		}
		return Road(n, 8, 1), nil
	case "social":
		n, err := specSize(arg)
		if err != nil {
			return nil, fmt.Errorf("gen: social spec: %w", err)
		}
		return PrefAttach(n, 5, 1), nil
	case "rmat":
		s, err := specScale(arg)
		if err != nil {
			return nil, fmt.Errorf("gen: rmat spec: %w", err)
		}
		return RMAT(s, 10, 1), nil
	case "fem":
		n, err := specSize(arg)
		if err != nil {
			return nil, fmt.Errorf("gen: fem spec: %w", err)
		}
		return FEMMesh(n, 8, 1), nil
	case "banded":
		n, err := specSize(arg)
		if err != nil {
			return nil, fmt.Errorf("gen: banded spec: %w", err)
		}
		return Banded(n, 10, 30, 0.7, 1), nil
	default:
		if strings.ContainsAny(spec, `/\`) {
			// A path is a frequent mix-up: graph files belong to -in (or a
			// graph_file job field), shard directories to the shard-store
			// entry points — never to a generator spec.
			return nil, fmt.Errorf("gen: %q names a file path, not a generator; pass graph files via -in and shard directories via -shards", spec)
		}
		return nil, fmt.Errorf("gen: unknown generator %q", kind)
	}
}

// maxSpecScale bounds 2^scale generators: 2^28 nodes is already past every
// benchmark family and keeps the shift far from overflow.
const maxSpecScale = 28

// maxSpecSize bounds node-count generators to the same ceiling.
const maxSpecSize = 1 << maxSpecScale

func specScale(arg string) (int, error) {
	s, err := strconv.Atoi(arg)
	if err != nil {
		return 0, fmt.Errorf("bad scale %q", arg)
	}
	if s < 1 || s > maxSpecScale {
		return 0, fmt.Errorf("scale %d out of range [1, %d]", s, maxSpecScale)
	}
	return s, nil
}

func specSize(arg string) (int, error) {
	n, err := strconv.Atoi(arg)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", arg)
	}
	if n < 1 || n > maxSpecSize {
		return 0, fmt.Errorf("size %d out of range [1, %d]", n, maxSpecSize)
	}
	return n, nil
}

func specDims(arg string, want int) ([]int, error) {
	parts := strings.Split(arg, "x")
	if len(parts) != want {
		return nil, fmt.Errorf("want %d dimensions, got %d", want, len(parts))
	}
	dims := make([]int, want)
	total := 1
	for i, p := range parts {
		d, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		if d < 1 {
			return nil, fmt.Errorf("dimension %d must be >= 1", d)
		}
		dims[i] = d
		total *= d
		if total > maxSpecSize {
			return nil, fmt.Errorf("grid exceeds %d nodes", maxSpecSize)
		}
	}
	return dims, nil
}
