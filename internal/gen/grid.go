package gen

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// Grid2D generates a w×h lattice with 4-neighbor connectivity and unit
// weights. Structured grids are the simplest FEM stand-in and useful for
// tests because optimal cuts are known analytically (a k-way strip partition
// of a w×h grid cuts (k-1)·h edges).
func Grid2D(w, h int) *graph.Graph {
	b := graph.NewBuilder(w * h)
	id := func(i, j int) int32 { return int32(i*h + j) }
	for i := 0; i < w; i++ {
		for j := 0; j < h; j++ {
			v := id(i, j)
			b.SetCoord(v, float64(i)/float64(w), float64(j)/float64(h))
			if i+1 < w {
				b.AddEdge(v, id(i+1, j), 1)
			}
			if j+1 < h {
				b.AddEdge(v, id(i, j+1), 1)
			}
		}
	}
	return b.Build()
}

// Grid3D generates an x×y×z lattice with 6-neighbor connectivity; 3D FEM
// meshes (the paper's 598a, m14b, auto) have this flavor. Lattice-index 3D
// coordinates are attached so geometric prepartitioning (RCB over the widest
// of the three axes) applies instead of the index-range fallback.
func Grid3D(x, y, z int) *graph.Graph {
	b := graph.NewBuilder(x * y * z)
	id := func(i, j, k int) int32 { return int32((i*y+j)*z + k) }
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				v := id(i, j, k)
				b.SetCoord3(v, float64(i), float64(j), float64(k))
				if i+1 < x {
					b.AddEdge(v, id(i+1, j, k), 1)
				}
				if j+1 < y {
					b.AddEdge(v, id(i, j+1, k), 1)
				}
				if k+1 < z {
					b.AddEdge(v, id(i, j, k+1), 1)
				}
			}
		}
	}
	return b.Build()
}

// FEMMesh generates an unstructured 2D finite-element-style mesh: the
// Delaunay triangulation of jittered grid points with circular holes punched
// out (modelling domains with cavities, like the paper's feocean/fetooth
// instances). The result is the largest connected component and carries
// coordinates.
func FEMMesh(n int, holes int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	pts := JitteredGridPoints(n, 0.45, r)
	type hole struct{ x, y, rad float64 }
	hs := make([]hole, holes)
	for i := range hs {
		hs[i] = hole{r.Float64(), r.Float64(), 0.03 + 0.07*r.Float64()}
	}
	kept := pts[:0]
	for _, p := range pts {
		inHole := false
		for _, h := range hs {
			dx, dy := p.X-h.x, p.Y-h.y
			if dx*dx+dy*dy < h.rad*h.rad {
				inHole = true
				break
			}
		}
		if !inHole {
			kept = append(kept, p)
		}
	}
	g := Delaunay(kept, seed+1)
	lc, _ := g.LargestComponent()
	return lc
}

// Banded generates a sparse-matrix-style graph resembling the structural
// symmetrized adjacency of a banded FEM stiffness matrix (the paper's
// bcsstk*/af_shell* instances): n nodes with dense diagonal blocks of size
// blk and random couplings within a band of width band. Approximately
// fill·n·band/2 band edges are added.
func Banded(n, blk, band int, fill float64, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	// Dense diagonal blocks (element cliques).
	for start := 0; start < n; start += blk {
		end := start + blk
		if end > n {
			end = n
		}
		for i := start; i < end; i++ {
			for j := i + 1; j < end; j++ {
				b.AddEdge(int32(i), int32(j), 1)
			}
		}
	}
	// Band couplings.
	edges := int(fill * float64(n) * float64(band) / 2)
	for e := 0; e < edges; e++ {
		i := r.Intn(n)
		off := 1 + r.Intn(band)
		j := i + off
		if j >= n {
			continue
		}
		b.AddEdge(int32(i), int32(j), 1)
	}
	// Chain consecutive blocks so the graph is connected.
	for start := blk; start < n; start += blk {
		b.AddEdge(int32(start-1), int32(start), 1)
	}
	return b.Build()
}
