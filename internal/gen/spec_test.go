package gen

import "testing"

func TestFromSpecFamilies(t *testing.T) {
	cases := []struct {
		spec  string
		nodes int // 0 = just require non-nil
	}{
		{"rgg:6", 64},
		{"delaunay:6", 64},
		{"grid:4x5", 20},
		{"grid3d:3x3x3", 27},
		{"road:100", 0},
		{"social:100", 100},
		{"rmat:6", 0}, // RMAT compacts away isolated nodes
		{"fem:100", 0},
		{"banded:100", 100},
	}
	for _, tc := range cases {
		g, err := FromSpec(tc.spec)
		if err != nil {
			t.Errorf("FromSpec(%q): %v", tc.spec, err)
			continue
		}
		if tc.nodes > 0 && g.NumNodes() != tc.nodes {
			t.Errorf("FromSpec(%q): %d nodes, want %d", tc.spec, g.NumNodes(), tc.nodes)
		}
	}
}

func TestFromSpecRejectsHostileArgs(t *testing.T) {
	// Every one of these would panic or attempt an absurd allocation if it
	// reached a generator unvalidated.
	bad := []string{
		"",
		"rgg",
		"rgg:",
		"rgg:-1",
		"rgg:63",
		"rgg:banana",
		"road:0",
		"road:-5",
		"road:999999999999",
		"social:1000000000",
		"grid:0x5",
		"grid:4",
		"grid:4x5x6",
		"grid:99999x99999",
		"grid3d:4x5",
		"grid3d:2000x2000x2000",
		"banded:1x2",
		"warp:10",
	}
	for _, spec := range bad {
		if g, err := FromSpec(spec); err == nil {
			t.Errorf("FromSpec(%q) = %d-node graph, want error", spec, g.NumNodes())
		}
	}
}

func TestFromSpecMatchesDirectCall(t *testing.T) {
	// The spec path must produce the same graph as the direct constructor
	// with the documented fixed parameters (seed 1 etc.).
	a, err := FromSpec("rgg:8")
	if err != nil {
		t.Fatal(err)
	}
	b := RGG(8, 1)
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("FromSpec(rgg:8) = n%d m%d, RGG(8,1) = n%d m%d",
			a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
}
