// Package remote runs the distributed coarsening phase across OS processes —
// the paper's actual process model (one MPI rank per PE) realized over the
// dist.Transport seam with sockets and the internal/wire codecs.
//
// Roles:
//
//   - The coordinator (Serve) owns the global graph and the pipeline: it
//     accepts one control and one transport connection per worker, assigns
//     PEs, and replaces the in-process contraction kernel with one that
//     ships each PE its subgraph shard (wire-encoded) per level, waits for
//     the per-PE contraction results, and stitches them into the next
//     coarser graph. Initial partitioning and refinement run on the
//     coordinator, exactly as §4/§5 of the paper run them on one rank.
//
//   - A worker (Work) hosts a single PE: it receives its shard, runs the
//     exported per-PE kernels (matching.MatchSubgraph,
//     coarsen.ContractSubgraph) against a dist.SocketTransport whose hub
//     lives in the coordinator, and ships its contraction back.
//
// Because the workers execute the identical kernel code the in-process
// goroutine PEs execute, a fixed seed yields byte-identical partitions to
// the Exchanger-backed run — the property TestServeMatchesInProcess and the
// cmd/kappa two-process test pin.
package remote

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/wire"
)

// ctrlConn is the coordinator's control channel to one worker.
type ctrlConn struct {
	conn net.Conn
	br   *bufio.Reader
}

// coordinator implements core.Coarsener by outsourcing every contraction
// level to the connected workers.
type coordinator struct {
	pes  int
	ctrl []*ctrlConn
}

// Serve runs the full pipeline for g with the contraction phase distributed
// over cfg.NumPEs() worker processes connecting to ln. It blocks until the
// workers have connected (one control plus one transport connection each),
// runs the pipeline, broadcasts the final partition to the workers, and
// returns the result. cfg.Coarsen is forced to CoarsenDistributed — that is
// the only mode with a per-PE kernel to distribute.
//
// Cancelling ctx closes every connection and the listener, so blocked
// accepts and superstep reads abort promptly.
func Serve(ctx context.Context, ln net.Listener, g *graph.Graph, cfg core.Config, opts ...core.Option) (core.Result, error) {
	return ServeMetered(ctx, ln, g, cfg, nil, opts...)
}

// ServeMetered is Serve with the hub's traffic counted into stats: the
// coordinator's per-worker view of frames, payload bytes, and routed
// supersteps, readable while the run is in flight (obs.BindTransport) and
// afterwards for the run report's transport section. A nil stats is exactly
// Serve.
func ServeMetered(ctx context.Context, ln net.Listener, g *graph.Graph, cfg core.Config, stats *dist.TransportStats, opts ...core.Option) (core.Result, error) {
	pes := cfg.NumPEs()
	cfg.Coarsen = core.CoarsenDistributed

	hub := dist.NewSocketHub(pes)
	hub.SetStats(stats)
	co := &coordinator{pes: pes, ctrl: make([]*ctrlConn, pes)}
	var transportConns []net.Conn
	var connMu sync.Mutex
	// Close every accepted connection on the way out — including transport
	// connections accepted before a handshake failure, which no hub ever
	// adopts (hub.Route closes its connections itself; double Close on a
	// net.Conn is harmless).
	defer func() {
		connMu.Lock()
		defer connMu.Unlock()
		for _, c := range co.ctrl {
			if c != nil {
				c.conn.Close()
			}
		}
		for _, c := range transportConns {
			c.Close()
		}
	}()

	// Abort path: tear down everything the moment the context dies, so no
	// read below can block past cancellation.
	stop := context.AfterFunc(ctx, func() {
		ln.Close()
		connMu.Lock()
		defer connMu.Unlock()
		for _, c := range co.ctrl {
			if c != nil {
				c.conn.Close()
			}
		}
		for _, c := range transportConns {
			c.Close()
		}
	})
	defer stop()

	// Handshake: collect pes control and pes transport connections, in any
	// interleaving. Control hellos request a PE (-1) and are assigned in
	// arrival order; each worker then dials its transport connection with
	// the assigned PE.
	nextPE := 0
	haveTransport := 0
	for nextPE < pes || haveTransport < pes {
		conn, err := ln.Accept()
		if err != nil {
			return core.Result{}, fmt.Errorf("remote: waiting for workers (%d/%d control, %d/%d transport): %w",
				nextPE, pes, haveTransport, pes, err)
		}
		br := bufio.NewReaderSize(conn, 1<<16)
		hello, err := dist.ReadHello(br)
		if err != nil {
			// Port probes and health checks connect and hang up without a
			// hello; drop them and keep waiting for real workers.
			conn.Close()
			continue
		}
		switch hello.Role {
		case dist.RoleControl:
			if nextPE >= pes {
				conn.Close()
				return core.Result{}, fmt.Errorf("remote: more than %d workers connected", pes)
			}
			c := &ctrlConn{conn: conn, br: br}
			assign := wire.Assign{
				Version:  wire.Version,
				PE:       nextPE,
				PEs:      pes,
				Rating:   int(cfg.Rating),
				Matcher:  int(cfg.Matcher),
				Boundary: cfg.GapMatching,
			}
			if err := wire.WriteFrame(conn, wire.KindAssign, wire.AppendAssign(nil, assign)); err != nil {
				conn.Close()
				return core.Result{}, fmt.Errorf("remote: assigning PE %d: %w", nextPE, err)
			}
			connMu.Lock()
			co.ctrl[nextPE] = c
			connMu.Unlock()
			nextPE++
		case dist.RoleTransport:
			if err := hub.AddConnBuffered(hello.PE, conn, br); err != nil {
				conn.Close()
				return core.Result{}, fmt.Errorf("remote: %w", err)
			}
			connMu.Lock()
			transportConns = append(transportConns, conn)
			connMu.Unlock()
			haveTransport++
		}
	}

	hubErr := make(chan error, 1)
	go func() { hubErr <- hub.Route() }()

	res, runErr := core.Run(ctx, g, cfg, append(opts, core.WithCoarsener(co))...)

	// Session end: broadcast the final partition (empty on failure); the
	// workers close their connections, which lets the hub drain and return.
	var done []byte
	if runErr == nil {
		done = wire.AppendPartition(nil, res.Blocks)
	}
	for pe, c := range co.ctrl {
		if err := wire.WriteFrame(c.conn, wire.KindDone, done); err != nil && runErr == nil {
			runErr = fmt.Errorf("remote: finishing worker %d: %w", pe, err)
		}
	}
	if err := <-hubErr; err != nil && runErr == nil {
		runErr = fmt.Errorf("remote: %w", err)
	}
	if runErr != nil {
		return core.Result{}, runErr
	}
	return res, nil
}

// Coarsen implements core.Coarsener: the standard stop-rule loop around the
// remote level kernel.
func (co *coordinator) Coarsen(ctx context.Context, g *graph.Graph, cfg *core.Config, env *core.Env) (*coarsen.Hierarchy, error) {
	return core.CoarsenWith(ctx, g, cfg, env, co.level)
}

// level is the remote LevelKernel: extract every PE's shard, ship the jobs,
// collect the per-PE contractions, stitch. The workers decide "empty
// matching" collectively over the transport (an OR vote), so either every
// result carries a contraction or none does.
func (co *coordinator) level(ctx context.Context, cur *graph.Graph, cfg *core.Config, blocks []int32, level int, maxPair int64) (*graph.Graph, []int32, time.Duration, time.Duration, error) {
	if blocks == nil {
		blocks = make([]int32, cur.NumNodes())
	}
	sgs := dist.ExtractAll(cur, blocks, co.pes)

	jobs := make(chan error, co.pes)
	for pe := 0; pe < co.pes; pe++ {
		go func(pe int) {
			job := wire.Job{
				Level:   level,
				Seed:    cfg.Seed + uint64(level)*101,
				MaxPair: maxPair,
				Shard:   sgs[pe],
			}
			payload, err := wire.AppendJob(nil, job)
			if err == nil {
				err = wire.WriteFrame(co.ctrl[pe].conn, wire.KindJob, payload)
			}
			if err != nil {
				err = fmt.Errorf("remote: job for PE %d at level %d: %w", pe, level, err)
			}
			jobs <- err
		}(pe)
	}
	// Drain every sender before returning: an early return would leave a
	// sibling goroutine mid-WriteFrame on a control connection that Serve's
	// Done broadcast then writes to concurrently, interleaving frames.
	var jobErr error
	for pe := 0; pe < co.pes; pe++ {
		if err := <-jobs; err != nil && jobErr == nil {
			jobErr = err
		}
	}
	if jobErr != nil {
		return nil, nil, 0, 0, jobErr
	}

	parts := make([]*coarsen.PEContraction, co.pes)
	var matchNanos, contractNanos int64
	matched := false
	results := make(chan error, co.pes)
	var mu sync.Mutex
	for pe := 0; pe < co.pes; pe++ {
		go func(pe int) {
			kind, payload, err := wire.ReadFrame(co.ctrl[pe].br)
			if err != nil {
				results <- fmt.Errorf("remote: result of PE %d at level %d: %w", pe, level, err)
				return
			}
			if kind != wire.KindResult {
				results <- fmt.Errorf("remote: PE %d sent frame kind %d, want result", pe, kind)
				return
			}
			r, err := wire.DecodeResult(payload)
			if err != nil {
				results <- err
				return
			}
			if r.PE != pe {
				results <- fmt.Errorf("remote: result for PE %d arrived on PE %d's connection", r.PE, pe)
				return
			}
			mu.Lock()
			parts[pe] = r.Part
			if r.Matched > 0 {
				matched = true
			}
			if r.MatchNanos > matchNanos {
				matchNanos = r.MatchNanos
			}
			if r.ContractNanos > contractNanos {
				contractNanos = r.ContractNanos
			}
			mu.Unlock()
			results <- nil
		}(pe)
	}
	// Same draining discipline as the job senders. On the first failure the
	// other readers may be blocked on healthy connections whose workers are
	// stuck in a superstep the dead peer will never complete — closing the
	// control connections unblocks the readers so the drain terminates.
	var resErr error
	for pe := 0; pe < co.pes; pe++ {
		if err := <-results; err != nil && resErr == nil {
			resErr = err
			for _, c := range co.ctrl {
				c.conn.Close()
			}
		}
	}
	if resErr != nil {
		return nil, nil, 0, 0, resErr
	}
	matchT := time.Duration(matchNanos)
	if !matched {
		return nil, nil, matchT, 0, nil
	}
	for pe, p := range parts {
		if p == nil {
			return nil, nil, 0, 0, fmt.Errorf("remote: PE %d matched but sent no contraction", pe)
		}
	}
	cg, f2c := coarsen.Stitch(cur, parts)
	return cg, f2c, matchT, time.Duration(contractNanos), nil
}
