// Package remote runs the distributed coarsening phase across OS processes —
// the paper's actual process model (one MPI rank per PE) realized over the
// dist.Transport seam with sockets and the internal/wire codecs.
//
// Roles:
//
//   - The coordinator (Serve) owns the global graph and the pipeline: it
//     accepts one control and one transport connection per worker, assigns
//     PEs, and replaces the in-process contraction kernel with one that
//     ships each PE its subgraph shard (wire-encoded) per level, waits for
//     the per-PE contraction results, and stitches them into the next
//     coarser graph. Initial partitioning and refinement run on the
//     coordinator, exactly as §4/§5 of the paper run them on one rank.
//
//   - A worker (Work) hosts one or more PEs: it receives its shards, runs
//     the exported per-PE kernels (matching.MatchSubgraph,
//     coarsen.ContractSubgraph) against a dist.SocketTransport whose hub
//     lives in the coordinator, and ships its contractions back.
//
// Because the workers execute the identical kernel code the in-process
// goroutine PEs execute, a fixed seed yields byte-identical partitions to
// the Exchanger-backed run — the property TestServeMatchesInProcess and the
// cmd/kappa two-process test pin.
//
// # Fault tolerance
//
// A contraction level commits nothing until coarsen.Stitch, and its inputs
// (shards extracted from the current graph, the level-derived seed) are
// deterministic — so the recovery unit is the level: when anything fails,
// the coordinator collapses the attempt, repairs the worker set, and re-runs
// the level from scratch, producing the byte-identical partition of a
// healthy run. Failure detection is per control connection (I/O errors,
// read-deadline expiry between heartbeats); one dead worker necessarily
// collapses the whole superstep barrier, so the coordinator stops the hub,
// drains an outcome — a result, an explicit level-aborted notice, or an
// error — for every outstanding PE (keeping surviving control streams
// frame-aligned), and then rebuilds: orphaned PEs move to the live worker
// hosting the fewest (ties to the lowest id), every live worker re-dials its
// transport connections into a fresh hub (the re-dial doubling as a
// liveness probe), and the level retries. When no workers remain, the
// coordinator runs all remaining levels itself over the in-process
// Exchanger — the same kernels, the same bytes.
package remote

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coarsen"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/store"
	"repro/internal/wire"
)

// maxLevelAttempts bounds how often one contraction level is retried before
// the coordinator gives up. Each retry follows a repair (reassignment or
// local fallback), so hitting the bound means failures keep happening on
// freshly repaired configurations.
const maxLevelAttempts = 4

// ServeOptions configures the coordinator's fault tolerance. The zero value
// is the legacy behavior: no deadlines, no heartbeats — failures are still
// detected (a dead worker's connection errors) and recovered, but a silently
// stalled worker blocks forever.
type ServeOptions struct {
	// Stats receives the hub's per-worker traffic counts (ServeMetered).
	Stats *dist.TransportStats
	// WorkerTimeout bounds every control-frame read (refreshed by worker
	// heartbeats), every handshake accept, and the hub's intra-superstep
	// I/O. A worker silent for longer is declared dead. It is announced to
	// workers in the assignment, where it also bounds their transport I/O.
	WorkerTimeout time.Duration
	// Heartbeat is the interval of coordinator → worker heartbeats, which
	// keep workers from timing out during long coordinator-local phases
	// (initial partitioning, refinement). Announced in the assignment;
	// workers derive their control-read deadline from it.
	Heartbeat time.Duration
	// Counters receives the fault-tolerance ledger; nil allocates a private
	// one (Serve still recovers, the numbers are just not observable).
	Counters *Counters
}

// workerConn is the coordinator's control channel to one worker process.
type workerConn struct {
	id     int // worker id == its first assigned PE
	conn   net.Conn
	br     *bufio.Reader
	wmu    sync.Mutex  // serializes frame writes (jobs, heartbeats, done)
	dead   atomic.Bool // set once, never cleared
	hosted []int       // PEs this worker currently runs, sorted
}

// coordinator implements core.Coarsener by outsourcing every contraction
// level to the connected workers, supervising them, and repairing the
// worker set between attempts.
type coordinator struct {
	pes      int
	ln       net.Listener
	opts     ServeOptions
	counters *Counters

	workers []*workerConn
	owner   []int // pe → worker id

	hub    *dist.SocketHub
	hubErr chan error

	local    bool           // all shards run coordinator-locally from now on
	localT   dist.Transport // lazily built Exchanger for local mode
	degraded bool           // any failure happened; hub teardown errors are expected

	// Shard-store serving (ServeStore). When store is set and the level's
	// current graph IS the fine graph, remoteLevel splices each PE's stored
	// shard bytes into its job frame instead of extracting subgraphs from
	// the global adjacency; spliceSem (capacity 1) serializes load+send so
	// at most one shard's bytes are resident at a time.
	store     *store.Store
	fine      *graph.Graph
	spliceSem chan struct{}
}

// Serve runs the full pipeline for g with the contraction phase distributed
// over cfg.NumPEs() worker processes connecting to ln. It blocks until the
// workers have connected (one control plus one transport connection each),
// runs the pipeline, broadcasts the final partition to the workers, and
// returns the result. cfg.Coarsen is forced to CoarsenDistributed — that is
// the only mode with a per-PE kernel to distribute.
//
// Cancelling ctx closes every connection and the listener, so blocked
// accepts and superstep reads abort promptly.
func Serve(ctx context.Context, ln net.Listener, g *graph.Graph, cfg core.Config, opts ...core.Option) (core.Result, error) {
	return ServeWith(ctx, ln, g, cfg, ServeOptions{}, opts...)
}

// ServeMetered is Serve with the hub's traffic counted into stats: the
// coordinator's per-worker view of frames, payload bytes, and routed
// supersteps, readable while the run is in flight (obs.BindTransport) and
// afterwards for the run report's transport section. A nil stats is exactly
// Serve.
func ServeMetered(ctx context.Context, ln net.Listener, g *graph.Graph, cfg core.Config, stats *dist.TransportStats, opts ...core.Option) (core.Result, error) {
	return ServeWith(ctx, ln, g, cfg, ServeOptions{Stats: stats}, opts...)
}

// ServeWith is Serve with explicit fault-tolerance options.
func ServeWith(ctx context.Context, ln net.Listener, g *graph.Graph, cfg core.Config, so ServeOptions, opts ...core.Option) (core.Result, error) {
	return newCoordinator(cfg.NumPEs(), ln, so).serve(ctx, g, cfg, opts...)
}

// newCoordinator builds a coordinator for pes workers on ln.
func newCoordinator(pes int, ln net.Listener, so ServeOptions) *coordinator {
	if so.Counters == nil {
		so.Counters = &Counters{}
	}
	return &coordinator{
		pes:      pes,
		ln:       ln,
		opts:     so,
		counters: so.Counters,
		workers:  make([]*workerConn, pes),
		owner:    make([]int, pes),
	}
}

// serve runs the coordinator's full session: handshake, pipeline, final
// broadcast. cfg.Coarsen is forced to CoarsenDistributed — the only mode
// with a per-PE kernel to distribute.
func (co *coordinator) serve(ctx context.Context, g *graph.Graph, cfg core.Config, opts ...core.Option) (core.Result, error) {
	pes := co.pes
	cfg.Coarsen = core.CoarsenDistributed
	so := co.opts
	var transportConns []net.Conn
	var connMu sync.Mutex
	closeAll := func() {
		connMu.Lock()
		defer connMu.Unlock()
		for _, w := range co.workers {
			if w != nil {
				w.conn.Close()
			}
		}
		for _, c := range transportConns {
			c.Close()
		}
	}
	// Close every accepted connection on the way out — including transport
	// connections accepted before a handshake failure, which no hub ever
	// adopts (hub.Route closes its connections itself; double Close on a
	// net.Conn is harmless).
	defer closeAll()

	// Abort path: tear down everything the moment the context dies, so no
	// read below can block past cancellation.
	stop := context.AfterFunc(ctx, func() {
		co.ln.Close()
		closeAll()
	})
	defer stop()

	// Handshake: collect pes control and pes transport connections, in any
	// interleaving. Control hellos request a PE (-1) and are assigned in
	// arrival order; each worker then dials its transport connection with
	// the assigned PE. With a WorkerTimeout, silence on the listener for
	// longer than the timeout fails the handshake with a typed WorkerError —
	// a worker that died mid-handshake never completes the set.
	hub := dist.NewSocketHub(pes)
	hub.SetStats(so.Stats)
	hub.SetIODeadline(so.WorkerTimeout)
	nextPE := 0
	haveTransport := 0
	for nextPE < pes || haveTransport < pes {
		armListener(co.ln, so.WorkerTimeout)
		conn, err := co.ln.Accept()
		if err != nil {
			return core.Result{}, workerErr(-1, "handshake",
				fmt.Errorf("waiting for workers (%d/%d control, %d/%d transport): %w",
					nextPE, pes, haveTransport, pes, err))
		}
		armConnRead(conn, so.WorkerTimeout)
		br := bufio.NewReaderSize(conn, 1<<16)
		hello, err := dist.ReadHello(br)
		if err != nil {
			// Port probes and health checks connect and hang up without a
			// hello; drop them and keep waiting for real workers.
			conn.Close()
			continue
		}
		armConnRead(conn, 0)
		switch hello.Role {
		case dist.RoleControl:
			if nextPE >= pes {
				conn.Close()
				return core.Result{}, fmt.Errorf("remote: more than %d workers connected", pes)
			}
			w := &workerConn{id: nextPE, conn: conn, br: br, hosted: []int{nextPE}}
			assign := wire.Assign{
				Version:         wire.Version,
				PE:              nextPE,
				PEs:             pes,
				Rating:          int(cfg.Rating),
				Matcher:         int(cfg.Matcher),
				Boundary:        cfg.GapMatching,
				HeartbeatMillis: int(so.Heartbeat / time.Millisecond),
				TimeoutMillis:   int(so.WorkerTimeout / time.Millisecond),
			}
			if err := co.writeCtrl(w, wire.KindAssign, wire.AppendAssign(nil, assign)); err != nil {
				conn.Close()
				return core.Result{}, workerErr(nextPE, "handshake", err)
			}
			connMu.Lock()
			co.workers[nextPE] = w
			connMu.Unlock()
			co.owner[nextPE] = nextPE
			nextPE++
		case dist.RoleTransport:
			if err := hub.AddConnBuffered(hello.PE, conn, br); err != nil {
				conn.Close()
				return core.Result{}, fmt.Errorf("remote: %w", err)
			}
			connMu.Lock()
			transportConns = append(transportConns, conn)
			connMu.Unlock()
			haveTransport++
		}
	}
	armListener(co.ln, 0)
	co.hub = hub
	co.hubErr = make(chan error, 1)
	go func() { co.hubErr <- hub.Route() }()

	// Coordinator → worker heartbeats: without them a worker with a control
	// read deadline would declare the coordinator dead during long local
	// phases (initial partitioning, refinement), when no job traffic flows.
	var hbStop chan struct{}
	if so.Heartbeat > 0 {
		hbStop = make(chan struct{})
		go co.heartbeat(so.Heartbeat, hbStop)
	}

	res, runErr := core.Run(ctx, g, cfg, append(opts, core.WithCoarsener(co))...)
	if hbStop != nil {
		close(hbStop)
	}

	// Session end: broadcast the final partition (empty on failure) to every
	// worker still alive; the workers close their connections, which lets
	// the hub drain and return. A failing broadcast is NOT an error: the
	// result is already computed and verified coordinator-side, and a worker
	// that dies after its last result must not fail the run it no longer
	// participates in.
	var done []byte
	if runErr == nil {
		done = wire.AppendPartition(nil, res.Blocks)
	}
	for _, w := range co.workers {
		if w.dead.Load() {
			co.counters.DoneFailures.Add(1)
			continue
		}
		if err := co.writeCtrl(w, wire.KindDone, done); err != nil {
			co.counters.DoneFailures.Add(1)
		}
	}
	if co.hub != nil {
		if err := <-co.hubErr; err != nil && runErr == nil && !co.degraded {
			runErr = fmt.Errorf("remote: %w", err)
		}
	}
	if runErr != nil {
		return core.Result{}, runErr
	}
	return res, nil
}

// heartbeat writes one heartbeat frame per interval to every live worker
// until stopped. Write failures are ignored here — detection and repair
// belong to the supervision loop, which will see the same dead connection.
func (co *coordinator) heartbeat(interval time.Duration, stop chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			for _, w := range co.workers {
				if w.dead.Load() {
					continue
				}
				if err := co.writeCtrl(w, wire.KindHeartbeat, nil); err == nil {
					co.counters.HeartbeatsSent.Add(1)
				}
			}
		}
	}
}

// writeCtrl writes one control frame to w under its write lock, bounded by
// the worker timeout. The lock keeps heartbeats, job frames, and the final
// broadcast from interleaving mid-frame.
func (co *coordinator) writeCtrl(w *workerConn, kind byte, payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if co.opts.WorkerTimeout > 0 {
		w.conn.SetWriteDeadline(time.Now().Add(co.opts.WorkerTimeout))
	}
	return wire.WriteFrame(w.conn, kind, payload)
}

// readCtrl reads the next non-heartbeat control frame from w. Each read —
// including each skipped heartbeat — re-arms the worker's deadline, so a
// worker stays live exactly as long as SOMETHING flows within every
// WorkerTimeout window.
func (co *coordinator) readCtrl(w *workerConn) (byte, []byte, error) {
	for {
		if co.opts.WorkerTimeout > 0 {
			w.conn.SetReadDeadline(time.Now().Add(co.opts.WorkerTimeout))
		}
		kind, payload, err := wire.ReadFrame(w.br)
		if err != nil {
			return 0, nil, err
		}
		if kind == wire.KindHeartbeat {
			co.counters.HeartbeatsRecv.Add(1)
			continue
		}
		return kind, payload, nil
	}
}

// markDead declares worker w failed. Closing the connection unblocks any
// concurrent reader and makes every later write fail fast.
func (co *coordinator) markDead(w *workerConn) {
	if !w.dead.CompareAndSwap(false, true) {
		return
	}
	w.conn.Close()
	co.counters.WorkerFailures.Add(1)
}

// Coarsen implements core.Coarsener: the standard stop-rule loop around the
// supervised remote level kernel.
func (co *coordinator) Coarsen(ctx context.Context, g *graph.Graph, cfg *core.Config, env *core.Env) (*coarsen.Hierarchy, error) {
	return core.CoarsenWith(ctx, g, cfg, env, co.level)
}

// level is the supervised LevelKernel: run the level remotely, and on a
// worker failure repair the configuration and retry. A level's inputs are
// pure functions of the current graph and the seed, and nothing commits
// before Stitch, so a retried level is byte-identical to an undisturbed one.
func (co *coordinator) level(ctx context.Context, cur *graph.Graph, cfg *core.Config, blocks []int32, level int, maxPair int64) (*graph.Graph, []int32, time.Duration, time.Duration, error) {
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, 0, 0, err
		}
		if co.local {
			return co.localLevel(cur, cfg, blocks, level, maxPair)
		}
		cg, f2c, mt, ct, err := co.remoteLevel(cur, cfg, blocks, level, maxPair)
		if err == nil {
			return cg, f2c, mt, ct, nil
		}
		co.degraded = true
		var we *WorkerError
		if !errors.As(err, &we) {
			return nil, nil, 0, 0, err // protocol bug, not a worker fault
		}
		if attempt >= maxLevelAttempts {
			return nil, nil, 0, 0, fmt.Errorf("remote: level %d failed after %d attempts (consider a longer worker timeout): %w", level, attempt, err)
		}
		co.counters.LevelRetries.Add(1)
		if rerr := co.rebuild(ctx); rerr != nil {
			return nil, nil, 0, 0, rerr
		}
	}
}

// outcome is one PE's answer to a level attempt.
type outcome struct {
	pe      int
	result  *wire.Result
	aborted bool
	err     error // connection-level failure of the owning worker
}

// remoteLevel runs one level attempt across the current worker set: extract
// every PE's shard, ship the jobs, collect an outcome per PE, stitch. The
// workers decide "empty matching" collectively over the transport (an OR
// vote), so either every result carries a contraction or none does.
//
// Failure discipline: the moment any outcome is an error or an abort, the
// attempt cannot succeed — but every outstanding PE still gets drained, so
// surviving control streams end the attempt frame-aligned and reusable.
// Stopping the hub guarantees the drain terminates: live workers blocked in
// a superstep the dead peer will never complete abort their kernels and
// answer with level-aborted frames instead of results.
func (co *coordinator) remoteLevel(cur *graph.Graph, cfg *core.Config, blocks []int32, level int, maxPair int64) (*graph.Graph, []int32, time.Duration, time.Duration, error) {
	// Shard-store fast path: at level 0 the stored shard files already hold
	// the exact bytes AppendJob would produce for this level's subgraphs
	// (Store.Write extracts under the manifest's distribution strategy), so
	// the coordinator splices file bytes behind a job header instead of
	// materializing any subgraph from the global adjacency.
	splice := co.store != nil && cur == co.fine
	var sgs []*dist.Subgraph
	if !splice {
		if blocks == nil {
			blocks = make([]int32, cur.NumNodes())
		}
		sgs = dist.ExtractAll(cur, blocks, co.pes)
	}

	live := co.liveWorkers()
	outcomes := make(chan outcome, co.pes)
	var stopOnce sync.Once
	failed := func() { stopOnce.Do(func() { co.hub.Stop() }) }

	for _, w := range live {
		go func(w *workerConn) {
			// Ship this worker's jobs, then read one outcome per hosted PE.
			// Results and aborts arrive in kernel-completion order, each
			// frame self-identifying its PE. Every hosted PE is pending from
			// the start: a job write that fails mid-batch must still emit an
			// outcome for the PEs whose jobs were never sent, or the
			// collector's outcome count comes up short and the level hangs.
			pending := make(map[int]bool, len(w.hosted))
			for _, pe := range w.hosted {
				pending[pe] = true
			}
			for _, pe := range w.hosted {
				if splice {
					if err := co.spliceJob(w, pe, level, cfg.Seed, maxPair); err != nil {
						var we *WorkerError
						if !errors.As(err, &we) {
							// The shard file, not the worker, failed: fatal to
							// the run (a retry would re-read the same bytes),
							// and the worker stays alive.
							co.abortLevel(outcomes, pending, err)
						} else {
							co.failWorker(w, outcomes, pending, we)
						}
						failed()
						return
					}
					continue
				}
				job := wire.Job{
					Level:   level,
					Seed:    cfg.Seed + uint64(level)*101,
					MaxPair: maxPair,
					Shard:   sgs[pe],
				}
				payload, err := wire.AppendJob(nil, job)
				if err == nil {
					err = co.writeCtrl(w, wire.KindJob, payload)
				}
				if err != nil {
					co.failWorker(w, outcomes, pending, workerErr(w.id, "job", err))
					failed()
					return
				}
			}
			for len(pending) > 0 {
				kind, payload, err := co.readCtrl(w)
				if err != nil {
					co.failWorker(w, outcomes, pending, workerErr(w.id, "result", err))
					failed()
					return
				}
				switch kind {
				case wire.KindResult:
					r, err := wire.DecodeResult(payload)
					if err == nil && !pending[r.PE] {
						err = fmt.Errorf("unexpected result for PE %d", r.PE)
					}
					if err != nil {
						co.failWorker(w, outcomes, pending, workerErr(w.id, "result", err))
						failed()
						return
					}
					delete(pending, r.PE)
					outcomes <- outcome{pe: r.PE, result: &r}
				case wire.KindLevelAborted:
					la, err := wire.DecodeLevelAborted(payload)
					if err == nil && !pending[la.PE] {
						err = fmt.Errorf("unexpected abort for PE %d", la.PE)
					}
					if err != nil {
						co.failWorker(w, outcomes, pending, workerErr(w.id, "result", err))
						failed()
						return
					}
					delete(pending, la.PE)
					outcomes <- outcome{pe: la.PE, aborted: true}
					failed()
				default:
					co.failWorker(w, outcomes, pending,
						workerErr(w.id, "result", fmt.Errorf("unexpected frame kind %d", kind)))
					failed()
					return
				}
			}
		}(w)
	}

	parts := make([]*coarsen.PEContraction, co.pes)
	var matchNanos, contractNanos int64
	matched := false
	var firstErr error
	sawAbort := false
	for i := 0; i < co.pes; i++ {
		o := <-outcomes
		switch {
		case o.err != nil:
			if firstErr == nil {
				firstErr = o.err
			}
		case o.aborted:
			sawAbort = true
		default:
			r := o.result
			parts[o.pe] = r.Part
			if r.Matched > 0 {
				matched = true
			}
			if r.MatchNanos > matchNanos {
				matchNanos = r.MatchNanos
			}
			if r.ContractNanos > contractNanos {
				contractNanos = r.ContractNanos
			}
		}
	}
	if firstErr != nil {
		return nil, nil, 0, 0, firstErr
	}
	if sawAbort {
		// Aborts without a dead worker: a transport-level fault (dropped or
		// corrupted superstep frame) collapsed the barrier, but every worker
		// survived. The rebuild still replaces the hub and re-dials, so the
		// retry runs on verified-fresh connections.
		return nil, nil, 0, 0, workerErr(-1, "result", fmt.Errorf("level %d aborted by transport failure", level))
	}
	matchT := time.Duration(matchNanos)
	if !matched {
		return nil, nil, matchT, 0, nil
	}
	for pe, p := range parts {
		if p == nil {
			return nil, nil, 0, 0, fmt.Errorf("remote: PE %d matched but sent no contraction", pe)
		}
	}
	cg, f2c := coarsen.Stitch(cur, parts)
	return cg, f2c, matchT, time.Duration(contractNanos), nil
}

// spliceJob ships PE pe its level-0 job by splicing the stored shard file's
// bytes behind a freshly encoded job header — byte-identical to AppendJob on
// the extracted subgraph, with zero decoding and no global adjacency touch.
// The capacity-1 semaphore spans load and send, so the coordinator holds at
// most one shard's bytes at any moment regardless of worker count. Send
// failures come back as *WorkerError (the worker is at fault and the level
// can retry elsewhere); load failures come back plain (the store is at
// fault, retrying cannot help).
func (co *coordinator) spliceJob(w *workerConn, pe, level int, runSeed uint64, maxPair int64) error {
	co.spliceSem <- struct{}{}
	defer func() { <-co.spliceSem }()
	data, err := co.store.ShardBytes(pe)
	if err != nil {
		return fmt.Errorf("remote: loading shard %d: %w", pe, err)
	}
	payload := wire.AppendJobHeader(make([]byte, 0, len(data)+32), level, runSeed+uint64(level)*101, maxPair)
	payload = append(payload, data...)
	if err := co.writeCtrl(w, wire.KindJob, payload); err != nil {
		return workerErr(w.id, "job", err)
	}
	co.counters.ShardsStreamed.Add(1)
	return nil
}

// abortLevel emits a fatal (non-worker) error outcome for every PE still
// pending, keeping the collector's outcome count exact without declaring
// any worker dead. PEs are emitted in ascending order so the error a failed
// run reports does not depend on map iteration order.
func (co *coordinator) abortLevel(outcomes chan<- outcome, pending map[int]bool, err error) {
	pes := make([]int, 0, len(pending))
	for pe := range pending {
		pes = append(pes, pe)
	}
	sort.Ints(pes)
	for _, pe := range pes {
		outcomes <- outcome{pe: pe, err: err}
	}
}

// failWorker declares w dead mid-attempt and emits an error outcome for
// every PE it still owed, so the attempt's outcome count stays exact. PEs
// are emitted in ascending order so the first error the collector sees —
// the one a failed run reports — does not depend on map iteration order.
func (co *coordinator) failWorker(w *workerConn, outcomes chan<- outcome, pending map[int]bool, err *WorkerError) {
	co.markDead(w)
	pes := make([]int, 0, len(pending))
	for pe := range pending {
		pes = append(pes, pe)
	}
	sort.Ints(pes)
	for _, pe := range pes {
		outcomes <- outcome{pe: pe, err: err}
	}
}

// liveWorkers returns the workers not declared dead.
func (co *coordinator) liveWorkers() []*workerConn {
	var live []*workerConn
	for _, w := range co.workers {
		if !w.dead.Load() {
			live = append(live, w)
		}
	}
	return live
}

// rebuild repairs the worker set after a failed level attempt: orphaned PEs
// move to live workers (fewest-loaded first, ties to the lowest id), every
// live worker is told its new PE set and re-dials one transport connection
// per hosted PE into a fresh hub — the re-dial doubling as a liveness probe;
// a worker that cannot re-dial within the timeout is declared dead and the
// rebuild restarts. When no live workers remain, the coordinator flips to
// local mode and finishes the remaining levels itself.
func (co *coordinator) rebuild(ctx context.Context) error {
	// The failed epoch's hub must be fully down before a new one accepts:
	// Stop is idempotent, and Route's return resolves every old connection.
	if co.hub != nil {
		co.hub.Stop()
		<-co.hubErr
		co.hub = nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		live := co.liveWorkers()
		if len(live) == 0 {
			co.local = true
			co.counters.LocalFallbacks.Add(1)
			return nil
		}
		// Deterministic reassignment of orphaned PEs.
		for pe := 0; pe < co.pes; pe++ {
			if !co.workers[co.owner[pe]].dead.Load() {
				continue
			}
			tgt := live[0]
			for _, w := range live[1:] {
				if len(w.hosted) < len(tgt.hosted) {
					tgt = w
				}
			}
			tgt.hosted = append(tgt.hosted, pe)
			sort.Ints(tgt.hosted)
			co.owner[pe] = tgt.id
			co.counters.Reassignments.Add(1)
		}
		// Announce the (possibly unchanged) PE sets: even a worker that kept
		// its PEs lost its transport connections with the old hub and must
		// re-dial them all.
		retry := false
		for _, w := range live {
			pes := make([]int32, len(w.hosted))
			for i, pe := range w.hosted {
				pes[i] = int32(pe)
			}
			if err := co.writeCtrl(w, wire.KindReassign, wire.AppendReassign(nil, pes)); err != nil {
				co.markDead(w)
				retry = true
			}
		}
		if retry {
			continue
		}
		if err := co.acceptTransports(ctx); err != nil {
			continue // acceptTransports marked the stragglers dead
		}
		return nil
	}
}

// acceptTransports builds the new epoch's hub: accept pes transport
// connections on the shared listener, bounded by the worker timeout. On
// timeout, the owners of the PEs that never arrived are declared dead and an
// error tells rebuild to start over.
func (co *coordinator) acceptTransports(ctx context.Context) error {
	hub := dist.NewSocketHub(co.pes)
	hub.SetStats(co.opts.Stats)
	hub.SetIODeadline(co.opts.WorkerTimeout)
	arrived := make([]bool, co.pes)
	for got := 0; got < co.pes; got++ {
		armListener(co.ln, co.opts.WorkerTimeout)
		conn, err := co.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			missing := false
			for pe, ok := range arrived {
				if !ok {
					co.markDead(co.workers[co.owner[pe]])
					missing = true
				}
			}
			if !missing {
				return fmt.Errorf("remote: rebuilding transports: %w", err)
			}
			armListener(co.ln, 0)
			return fmt.Errorf("remote: transport rebuild timed out: %w", err)
		}
		armConnRead(conn, co.opts.WorkerTimeout)
		br := bufio.NewReaderSize(conn, 1<<16)
		hello, err := dist.ReadHello(br)
		if err != nil || hello.Role != dist.RoleTransport || hello.PE < 0 || hello.PE >= co.pes || arrived[hello.PE] {
			conn.Close()
			got--
			continue
		}
		armConnRead(conn, 0)
		if err := hub.AddConnBuffered(hello.PE, conn, br); err != nil {
			conn.Close()
			got--
			continue
		}
		arrived[hello.PE] = true
	}
	armListener(co.ln, 0)
	co.hub = hub
	co.hubErr = make(chan error, 1)
	go func() { co.hubErr <- hub.Route() }()
	return nil
}

// localLevel is the graceful-degradation kernel: the coordinator runs every
// PE's kernel itself over the in-process Exchanger — the exact code path of
// `-coarsen distributed` in one process, hence byte-identical results.
func (co *coordinator) localLevel(cur *graph.Graph, cfg *core.Config, blocks []int32, level int, maxPair int64) (*graph.Graph, []int32, time.Duration, time.Duration, error) {
	if co.localT == nil {
		co.localT = dist.Metered(dist.NewExchanger(co.pes), co.opts.Stats)
	}
	if blocks == nil {
		if co.store != nil && cur == co.fine {
			// Store mode skips the level-0 assignment (the shards embody it);
			// the degraded local path has to reconstruct it — this is the one
			// path where a store-served coordinator computes over the full
			// fine graph, accepted in exchange for finishing the run.
			blocks = dist.Assign(cur, cfg.Distribution, co.pes)
		} else {
			blocks = make([]int32, cur.NumNodes())
		}
	}
	tm := time.Now()
	sgs := dist.ExtractAll(cur, blocks, co.pes)
	ms := matching.DistributedBounded(sgs, co.localT, cfg.Rating, cfg.Matcher,
		cfg.Seed+uint64(level)*101, maxPair, cfg.GapMatching)
	matchT := time.Since(tm)
	matched := false
	for _, m := range ms {
		if m.Size() > 0 {
			matched = true
			break
		}
	}
	if !matched {
		return nil, nil, matchT, 0, nil
	}
	tc := time.Now()
	cg, f2c := coarsen.ContractDistributed(cur, sgs, ms, co.localT)
	return cg, f2c, matchT, time.Since(tc), nil
}

// armListener sets (or clears, d == 0) the accept deadline on listeners
// that support one (TCP and unix listeners both do).
func armListener(ln net.Listener, d time.Duration) {
	type deadliner interface{ SetDeadline(time.Time) error }
	dl, ok := ln.(deadliner)
	if !ok {
		return
	}
	if d <= 0 {
		dl.SetDeadline(time.Time{})
		return
	}
	dl.SetDeadline(time.Now().Add(d))
}

// armConnRead sets (or clears, d == 0) a connection's read deadline.
func armConnRead(conn net.Conn, d time.Duration) {
	if d <= 0 {
		conn.SetReadDeadline(time.Time{})
		return
	}
	conn.SetReadDeadline(time.Now().Add(d))
}
