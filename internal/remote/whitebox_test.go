// White-box tests for the coordinator's outcome accounting — invariants of
// unexported machinery that the black-box fault harness cannot pin directly.
package remote

import (
	"bufio"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
)

// TestRemoteLevelMidBatchJobFailure pins the outcome accounting of a job
// write that fails partway through a worker hosting several PEs — the normal
// state after a reassignment. Every hosted PE must yield exactly one outcome
// even when some jobs were never sent; the collector waits for pes outcomes,
// so a short count hangs the level (and Serve) forever. Regression test for
// the lazily-populated pending set that dropped the unsent PEs.
func TestRemoteLevelMidBatchJobFailure(t *testing.T) {
	c1, c2 := net.Pipe()
	c2.Close() // every write on c1 now fails immediately
	w := &workerConn{id: 0, conn: c1, br: bufio.NewReader(c1), hosted: []int{0, 1}}
	deadW := &workerConn{id: 1}
	deadW.dead.Store(true)

	co := &coordinator{
		pes:      2,
		counters: &Counters{},
		workers:  []*workerConn{w, deadW},
		owner:    []int{0, 0},
		hub:      dist.NewSocketHub(2),
	}
	cfg := core.NewConfig(core.Fast, 2)
	cfg.PEs = 2
	g := gen.Grid2D(8, 8)

	done := make(chan error, 1)
	go func() {
		_, _, _, _, err := co.remoteLevel(g, &cfg, nil, 0, 0)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("remoteLevel succeeded over a closed control connection")
		}
		var we *WorkerError
		if !errors.As(err, &we) {
			t.Fatalf("error %v is not a *WorkerError", err)
		}
		if we.Phase != "job" {
			t.Fatalf("WorkerError phase %q, want \"job\"", we.Phase)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("remoteLevel hung: a mid-batch job failure did not drain every hosted PE")
	}
}
