package remote

import (
	"time"

	"repro/internal/rng"
)

// RetryPolicy governs a worker's connection attempts: how often to retry the
// dial + handshake, how long each attempt may take, and how to space the
// attempts. Backoff is exponential with equal jitter — with d =
// Backoff·2^(i-1) capped at MaxBackoff, attempt i waits uniformly in
// [d/2, d) — drawn from the repo's deterministic rng stream, so a fixed
// Seed reproduces the exact retry timeline in tests while distinct workers
// (distinct seeds) still desynchronize their retries in production,
// avoiding reconnect stampedes after a coordinator restart.
type RetryPolicy struct {
	Attempts   int           // total attempts; <= 1 means a single try
	Timeout    time.Duration // per-attempt bound on dial + assignment; 0 = none
	Backoff    time.Duration // base delay before the second attempt
	MaxBackoff time.Duration // cap on any single delay; 0 = 16×Backoff
	Seed       uint64        // jitter stream seed
}

// backoff returns the delay before attempt (2-based: the wait after failed
// attempt i uses backoff(rng, i)).
func (p RetryPolicy) backoff(r *rng.RNG, attempt int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 16 * p.Backoff
	}
	d := p.Backoff
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Equal jitter: d/2 plus a uniform half, i.e. uniform in [d/2, d).
	// The floor keeps sleeps non-zero, so "retried" and "never waited"
	// stay distinguishable in tests.
	return time.Duration(float64(d)*r.Float64())/2 + d/2
}
