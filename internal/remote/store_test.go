package remote_test

import (
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/remote"
	"repro/internal/store"
)

// writeTestStore shards g into a fresh directory and opens it.
func writeTestStore(t *testing.T, g *graph.Graph, pes int, strat dist.Strategy) *store.Store {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "g.kst")
	if _, err := store.Write(dir, g, store.WriteOptions{PEs: pes, Strategy: strat}); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// runServeStoreWorkers is runServeWorkers for the shard-store path.
func runServeStoreWorkers(t *testing.T, st *store.Store, cfg core.Config, so remote.ServeOptions, opts ...core.Option) (core.Result, []remote.WorkResult) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	pes := st.Manifest().PEs
	workers := make([]remote.WorkResult, pes)
	var wg sync.WaitGroup
	for i := 0; i < pes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wr, err := remote.Work(ctx, "tcp", addr)
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			workers[i] = wr
		}(i)
	}
	res, err := remote.ServeStore(ctx, ln, st, cfg, so, opts...)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return res, workers
}

// zeroedReport runs the pipeline runner with a report observer attached and
// returns the serialized time-zeroed report.
func zeroedReport(t *testing.T, g *graph.Graph, cfg core.Config,
	run func(opts ...core.Option) (core.Result, error)) []byte {
	t.Helper()
	rep := obs.NewReportObserver(g, cfg)
	res, err := run(core.WithObserver(rep))
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Finish(res, nil, nil)
	r.ZeroTimes()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServeStoreMatchesInMemory is the acceptance pin of the out-of-core
// path: serving from a shard directory produces the byte-identical partition
// AND the byte-identical (time-zeroed) run report of the classic in-memory
// run — same graph, same seed, same flags — while the coordinator streams
// shard files instead of extracting level-0 subgraphs.
func TestServeStoreMatchesInMemory(t *testing.T) {
	for _, tc := range []struct {
		name  string
		g     *graph.Graph
		pes   int
		k     int
		strat dist.Strategy
	}{
		{"rgg-2pe-rcb", gen.RGG(11, 3), 2, 8, dist.StrategyRCB},
		{"grid-3pe-auto", gen.Grid2D(40, 40), 3, 6, dist.StrategyAuto},
		{"grid3d-2pe-sfc", gen.Grid3D(12, 10, 8), 2, 4, dist.StrategySFC},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.NewConfig(core.Fast, tc.k)
			cfg.Seed = 4242
			cfg.PEs = tc.pes
			cfg.Coarsen = core.CoarsenDistributed
			cfg.Distribution = tc.strat

			st := writeTestStore(t, tc.g, tc.pes, tc.strat)

			wantReport := zeroedReport(t, tc.g, cfg, func(opts ...core.Option) (core.Result, error) {
				return core.Run(context.Background(), tc.g, cfg, opts...)
			})
			want, err := core.Run(context.Background(), tc.g, cfg)
			if err != nil {
				t.Fatal(err)
			}

			var counters remote.Counters
			var got core.Result
			mg, err := st.MapGraph()
			if err != nil {
				t.Fatal(err)
			}
			defer mg.Close()
			gotReport := zeroedReport(t, mg.G, cfg, func(opts ...core.Option) (core.Result, error) {
				var workers []remote.WorkResult
				got, workers = runServeStoreWorkers(t, st, cfg, remote.ServeOptions{Counters: &counters}, opts...)
				for i, wr := range workers {
					if !reflect.DeepEqual(wr.Partition, got.Blocks) {
						t.Errorf("worker %d received a different final partition", i)
					}
				}
				return got, nil
			})

			if got.Cut != want.Cut || !reflect.DeepEqual(got.Blocks, want.Blocks) {
				t.Fatalf("shard-store partition diverged: cut %d vs %d", got.Cut, want.Cut)
			}
			if !bytes.Equal(gotReport, wantReport) {
				t.Fatalf("shard-store report diverged:\n--- in-memory\n%s\n--- shard-store\n%s", wantReport, gotReport)
			}
			if n := counters.ShardsStreamed.Load(); n != int64(tc.pes) {
				t.Fatalf("ShardsStreamed = %d, want %d (level 0 must splice, never extract)", n, tc.pes)
			}
		})
	}
}

// TestServeStoreReconcilesConfig pins the manifest-is-authoritative rules:
// zero PEs adopt the manifest's shard count, conflicts are rejected as
// invalid configuration before any worker is awaited.
func TestServeStoreReconcilesConfig(t *testing.T) {
	g := gen.RGG(9, 1)
	st := writeTestStore(t, g, 2, dist.StrategyRCB)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	cfg := core.NewConfig(core.Fast, 4)
	cfg.PEs = 3
	if _, err := remote.ServeStore(context.Background(), ln, st, cfg, remote.ServeOptions{}); !errors.Is(err, core.ErrInvalidConfig) {
		t.Fatalf("PE mismatch: got %v, want ErrInvalidConfig", err)
	}

	cfg = core.NewConfig(core.Fast, 4)
	cfg.Distribution = dist.StrategySFC // store holds RCB shards
	if _, err := remote.ServeStore(context.Background(), ln, st, cfg, remote.ServeOptions{}); !errors.Is(err, core.ErrInvalidConfig) {
		t.Fatalf("strategy conflict: got %v, want ErrInvalidConfig", err)
	}
}

// TestServeStoreCorruptShard pins the failure contract for a store that rots
// after opening: the run fails with the shard's error instead of declaring
// innocent workers dead and retrying a read that cannot heal.
func TestServeStoreCorruptShard(t *testing.T) {
	g := gen.RGG(9, 1)
	st := writeTestStore(t, g, 2, dist.StrategyAuto)

	// Flip one byte mid-file; ShardBytes' checksum catches it at stream time.
	path := filepath.Join(st.Dir(), st.Manifest().Shards[1].File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for i := 0; i < 2; i++ {
		go remote.Work(ctx, "tcp", ln.Addr().String())
	}
	var counters remote.Counters
	cfg := core.NewConfig(core.Fast, 4)
	cfg.Seed = 7
	_, err = remote.ServeStore(ctx, ln, st, cfg, remote.ServeOptions{Counters: &counters})
	if err == nil {
		t.Fatal("corrupt shard served without error")
	}
	var we *remote.WorkerError
	if errors.As(err, &we) {
		t.Fatalf("store corruption misattributed to a worker: %v", err)
	}
	if n := counters.WorkerFailures.Load(); n != 0 {
		t.Fatalf("store corruption killed %d workers", n)
	}
}
