package remote

import "fmt"

// WorkerError is the typed failure of one worker connection: which worker
// (by id, which equals its initially assigned PE; -1 when the failure
// happened before any assignment) and in which protocol phase. The
// supervision loop in ServeWith treats worker errors as retryable — the
// worker is declared dead, its shards move, the level re-runs — and only
// surfaces one when recovery itself is exhausted, so a WorkerError escaping
// Serve means the system could not reach a healthy configuration.
type WorkerError struct {
	PE    int    // worker id (== first assigned PE); -1 before assignment
	Phase string // "handshake", "job", "result", "reassign", "done"
	Err   error
}

func (e *WorkerError) Error() string {
	if e.PE < 0 {
		return fmt.Sprintf("remote: worker failed during %s: %v", e.Phase, e.Err)
	}
	return fmt.Sprintf("remote: worker %d failed during %s: %v", e.PE, e.Phase, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// workerErr builds a WorkerError.
func workerErr(pe int, phase string, err error) *WorkerError {
	return &WorkerError{PE: pe, Phase: phase, Err: err}
}
