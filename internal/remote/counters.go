package remote

import "sync/atomic"

// (The coordinator always allocates a Counters when the caller passes none,
// so its own increments never need nil checks; Snapshot stays nil-safe for
// external readers.)

// Counters is the coordinator's fault-tolerance ledger: how many workers it
// declared dead, how their shards were recovered, and how much liveness
// traffic flowed. All fields are atomics — the heartbeater, the supervision
// loop, and metric pull callbacks (obs.BindRemote) touch them concurrently.
// A nil *Counters is accepted everywhere and counts nothing.
type Counters struct {
	WorkerFailures atomic.Int64 // workers declared dead (I/O error or deadline expiry)
	Reassignments  atomic.Int64 // orphaned PE shards moved to a live worker
	LocalFallbacks atomic.Int64 // times the coordinator took over all remaining shards
	LevelRetries   atomic.Int64 // contraction levels re-run after a failure
	HeartbeatsSent atomic.Int64 // coordinator → worker heartbeat frames
	HeartbeatsRecv atomic.Int64 // worker → coordinator heartbeat frames
	DoneFailures   atomic.Int64 // final-partition broadcasts that failed (non-fatal)
	ShardsStreamed atomic.Int64 // level-0 shard files spliced to workers without decoding (ServeStore)
}

// CounterSnapshot is a plain-value copy of Counters, for reports.
type CounterSnapshot struct {
	WorkerFailures int64
	Reassignments  int64
	LocalFallbacks int64
	LevelRetries   int64
	HeartbeatsSent int64
	HeartbeatsRecv int64
	DoneFailures   int64
	ShardsStreamed int64
}

// Snapshot copies the current counter values; nil-safe (all zeros).
func (c *Counters) Snapshot() CounterSnapshot {
	if c == nil {
		return CounterSnapshot{}
	}
	return CounterSnapshot{
		WorkerFailures: c.WorkerFailures.Load(),
		Reassignments:  c.Reassignments.Load(),
		LocalFallbacks: c.LocalFallbacks.Load(),
		LevelRetries:   c.LevelRetries.Load(),
		HeartbeatsSent: c.HeartbeatsSent.Load(),
		HeartbeatsRecv: c.HeartbeatsRecv.Load(),
		DoneFailures:   c.DoneFailures.Load(),
		ShardsStreamed: c.ShardsStreamed.Load(),
	}
}
