package remote

import (
	"context"
	"fmt"
	"net"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/store"
)

// ServeStore is Serve reading the graph from an on-disk shard store instead
// of an in-memory graph: the coordinator opens only the manifest and a
// memory-mapped view of the CSR segment, and at level 0 it streams each PE's
// stored shard file straight into that worker's job frame — the global
// adjacency is never materialized on the coordinator's heap. The result is
// byte-identical to Serve on the graph the store was written from (the shard
// files hold the exact bytes level-0 extraction would wire-encode, and the
// mapped CSR holds the exact values the in-memory graph holds).
//
// The manifest is authoritative for the run's shape: cfg.PEs is taken from
// it (a non-zero cfg.PEs that disagrees is rejected — the store has exactly
// that many shards to stream), and cfg.Distribution is forced to the
// strategy the shards were extracted under (an explicit conflicting strategy
// is rejected; StrategyAuto defers to the manifest).
func ServeStore(ctx context.Context, ln net.Listener, st *store.Store, cfg core.Config, so ServeOptions, opts ...core.Option) (core.Result, error) {
	m := st.Manifest()
	if cfg.PEs != 0 && cfg.PEs != m.PEs {
		return core.Result{}, fmt.Errorf("%w: %d PEs configured but the store holds %d shards",
			core.ErrInvalidConfig, cfg.PEs, m.PEs)
	}
	cfg.PEs = m.PEs
	strat, err := dist.ParseStrategy(m.Strategy)
	if err != nil {
		return core.Result{}, fmt.Errorf("remote: store manifest: %w", err)
	}
	if cfg.Distribution != strat && cfg.Distribution != dist.StrategyAuto {
		return core.Result{}, fmt.Errorf("%w: distribution %s requested but the shards were extracted under %s",
			core.ErrInvalidConfig, cfg.Distribution, strat)
	}
	cfg.Distribution = strat

	mg, err := st.MapGraph()
	if err != nil {
		return core.Result{}, fmt.Errorf("remote: mapping store graph: %w", err)
	}
	defer mg.Close()

	co := newCoordinator(m.PEs, ln, so)
	co.store = st
	co.fine = mg.G
	co.spliceSem = make(chan struct{}, 1)
	// Level 0 needs no node-to-PE assignment — the stored shards embody it —
	// so the distributor skips the O(n) computation exactly when remoteLevel
	// skips the O(n) extraction. Coarse levels distribute as usual.
	opts = append(opts, core.WithDistributor(storeDistributor{fine: mg.G}))
	return co.serve(ctx, mg.G, cfg, opts...)
}

// storeDistributor suppresses the prepartitioning stage for the fine graph
// (its assignment lives in the shard files) and falls back to the strategy
// assignment everywhere else.
type storeDistributor struct {
	fine *graph.Graph
}

func (d storeDistributor) Distribute(ctx context.Context, g *graph.Graph, cfg *core.Config, pes int) ([]int32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if g == d.fine {
		return nil, nil
	}
	return dist.Assign(g, cfg.Distribution, pes), nil
}
