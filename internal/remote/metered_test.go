package remote_test

import (
	"bytes"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/remote"
)

// serveReport runs a metered coordinator + workers and returns the
// serialized, ZeroTimes'd run report — the coordinator-side report of the
// out-of-process backend, with per-worker transport sections from the hub.
func serveReport(t *testing.T, g *graph.Graph, cfg core.Config) ([]byte, *dist.TransportStats) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	pes := cfg.NumPEs()
	var wg sync.WaitGroup
	for i := 0; i < pes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := remote.Work(ctx, "tcp", addr); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	stats := dist.NewTransportStats(pes)
	cfg.Coarsen = core.CoarsenDistributed
	rep := obs.NewReportObserver(g, cfg)
	res, err := remote.ServeMetered(ctx, ln, g, cfg, stats, core.WithObserver(rep))
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	r := rep.Finish(res, stats, nil)
	r.ZeroTimes()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), stats
}

// TestServeMeteredCountsTraffic checks the hub-side instrumentation: every
// worker PE must show frames and bytes in both directions and one routed
// superstep count, visible in the coordinator's report.
func TestServeMeteredCountsTraffic(t *testing.T) {
	cfg := core.NewConfig(core.Fast, 4)
	cfg.Seed = 7
	cfg.PEs = 2
	report, stats := serveReport(t, gen.RGG(10, 1), cfg)

	for pe, st := range stats.Snapshot() {
		if st.FramesSent == 0 || st.FramesRecv == 0 || st.BytesSent == 0 || st.BytesRecv == 0 {
			t.Errorf("PE %d saw no traffic: %+v", pe, st)
		}
		if st.Supersteps == 0 {
			t.Errorf("PE %d routed no supersteps", pe)
		}
	}
	if !bytes.Contains(report, []byte(`"transport"`)) ||
		!bytes.Contains(report, []byte(`"frames_sent"`)) {
		t.Fatalf("report lacks the transport section:\n%s", report)
	}
}

// TestServeReportDeterministic pins that the coordinator's run report is
// byte-identical across repeated fixed-seed serve/worker sessions once
// ZeroTimes has cleared the scheduling-dependent fields — the wire traffic
// itself is deterministic, so the transport sections must match too.
func TestServeReportDeterministic(t *testing.T) {
	cfg := core.NewConfig(core.Fast, 4)
	cfg.Seed = 1217
	cfg.PEs = 2
	a, _ := serveReport(t, gen.RGG(10, 4), cfg)
	b, _ := serveReport(t, gen.RGG(10, 4), cfg)
	if !bytes.Equal(a, b) {
		t.Fatalf("serve-mode reports differ across identical sessions:\n--- first\n%s\n--- second\n%s", a, b)
	}
}
