// The deterministic fault-injection harness: every test runs the full
// coordinator/worker protocol over localhost TCP with a seeded fault
// schedule on one (or every) worker and asserts the recovered partition is
// byte-identical to the undisturbed in-process run — the acceptance property
// of the fault-tolerant backend. The cmd/kappa chaos test replays the same
// schedules across real OS processes.
package remote_test

import (
	"bufio"
	"context"
	"errors"
	"net"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/remote"
	"repro/internal/wire"
)

// workerRun is one worker goroutine's outcome.
type workerRun struct {
	res remote.WorkResult
	err error
}

// runServeFaulty runs a coordinator with so and len(wos) workers, each with
// its own options (fault schedules, retries, heartbeats). Worker errors are
// returned, not failed on — dying is the point of these tests.
func runServeFaulty(t *testing.T, g *graph.Graph, cfg core.Config, so remote.ServeOptions, wos []remote.WorkOptions) (core.Result, error, []workerRun) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	outs := make([]workerRun, len(wos))
	var wg sync.WaitGroup
	for i, wo := range wos {
		wg.Add(1)
		go func(i int, wo remote.WorkOptions) {
			defer wg.Done()
			outs[i].res, outs[i].err = remote.WorkWith(ctx, "tcp", addr, wo)
		}(i, wo)
	}
	res, serr := remote.ServeWith(ctx, ln, g, cfg, so)
	wg.Wait()
	return res, serr, outs
}

// inProcess runs the undisturbed baseline the recovered runs must match.
func inProcess(t *testing.T, g *graph.Graph, cfg core.Config) core.Result {
	t.Helper()
	want, err := core.Run(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// schedule parses a fault-schedule string or fails the test.
func schedule(t *testing.T, s string) *dist.FaultSchedule {
	t.Helper()
	sched, err := dist.ParseFaultSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// TestServeSurvivesWorkerKill is the tentpole pin: one of three workers is
// killed mid-coarsening (its control connection dies while sending its first
// level result), the coordinator reassigns the orphaned shard to a survivor,
// retries the level, and the final partition is byte-identical to the
// healthy run. The worker's arrival order (hence its PE) is scheduling-
// dependent; the recovered bytes must not be.
func TestServeSurvivesWorkerKill(t *testing.T) {
	g := gen.Grid2D(40, 40)
	cfg := core.NewConfig(core.Fast, 6)
	cfg.Seed = 4242
	cfg.PEs = 3
	cfg.Coarsen = core.CoarsenDistributed
	want := inProcess(t, g, cfg)

	sched := schedule(t, "ctrl:write:2:kill")
	counters := &remote.Counters{}
	so := remote.ServeOptions{WorkerTimeout: 10 * time.Second, Counters: counters}
	wos := []remote.WorkOptions{{Faults: sched}, {}, {}}

	res, serr, outs := runServeFaulty(t, g, cfg, so, wos)
	if serr != nil {
		t.Fatalf("Serve did not survive the worker kill: %v", serr)
	}
	if n := sched.Injected(); n != 1 {
		t.Fatalf("schedule injected %d faults, want 1", n)
	}
	if res.Cut != want.Cut || !reflect.DeepEqual(res.Blocks, want.Blocks) {
		t.Fatalf("recovered partition diverged from healthy run: cut %d vs %d", res.Cut, want.Cut)
	}
	s := counters.Snapshot()
	if s.WorkerFailures != 1 {
		t.Errorf("WorkerFailures = %d, want 1", s.WorkerFailures)
	}
	if s.Reassignments != 1 {
		t.Errorf("Reassignments = %d, want 1 (the victim's single PE)", s.Reassignments)
	}
	if s.LevelRetries < 1 {
		t.Errorf("LevelRetries = %d, want >= 1", s.LevelRetries)
	}
	if s.LocalFallbacks != 0 {
		t.Errorf("LocalFallbacks = %d, want 0 (two workers survived)", s.LocalFallbacks)
	}
	// The victim is dead by the final broadcast: skipping it is non-fatal —
	// the "worker dies after the final result" error path.
	if s.DoneFailures != 1 {
		t.Errorf("DoneFailures = %d, want 1", s.DoneFailures)
	}
	victims, survivors := 0, 0
	for i, o := range outs {
		if o.err != nil {
			victims++
			continue
		}
		survivors++
		if !reflect.DeepEqual(o.res.Partition, want.Blocks) {
			t.Errorf("surviving worker %d received a different final partition", i)
		}
	}
	if victims != 1 || survivors != 2 {
		t.Fatalf("%d workers died, %d survived; want 1 and 2", victims, survivors)
	}
}

// TestServeSurvivesTransportFault covers the transient-fault path: a
// transport connection dies mid-superstep but every worker process survives.
// The level aborts collectively (each worker answers with a level-aborted
// frame), the rebuild re-dials everything, and the retry succeeds with zero
// worker failures.
func TestServeSurvivesTransportFault(t *testing.T) {
	g := gen.Grid2D(40, 40)
	cfg := core.NewConfig(core.Fast, 6)
	cfg.Seed = 4242
	cfg.PEs = 3
	cfg.Coarsen = core.CoarsenDistributed
	want := inProcess(t, g, cfg)

	// The victim's PE depends on arrival order, so arm one rule per possible
	// transport label; exactly one can ever match.
	sched := schedule(t, "pe0:write:4:kill;pe1:write:4:kill;pe2:write:4:kill")
	counters := &remote.Counters{}
	so := remote.ServeOptions{WorkerTimeout: 10 * time.Second, Counters: counters}
	wos := []remote.WorkOptions{{Faults: sched}, {}, {}}

	res, serr, outs := runServeFaulty(t, g, cfg, so, wos)
	if serr != nil {
		t.Fatalf("Serve did not survive the transport fault: %v", serr)
	}
	if n := sched.Injected(); n != 1 {
		t.Fatalf("schedule injected %d faults, want 1", n)
	}
	if res.Cut != want.Cut || !reflect.DeepEqual(res.Blocks, want.Blocks) {
		t.Fatalf("recovered partition diverged from healthy run: cut %d vs %d", res.Cut, want.Cut)
	}
	s := counters.Snapshot()
	if s.WorkerFailures != 0 {
		t.Errorf("WorkerFailures = %d, want 0 (every process survived)", s.WorkerFailures)
	}
	if s.Reassignments != 0 {
		t.Errorf("Reassignments = %d, want 0", s.Reassignments)
	}
	if s.LevelRetries < 1 {
		t.Errorf("LevelRetries = %d, want >= 1", s.LevelRetries)
	}
	for i, o := range outs {
		if o.err != nil {
			t.Errorf("worker %d died of a transport-only fault: %v", i, o.err)
		} else if !reflect.DeepEqual(o.res.Partition, want.Blocks) {
			t.Errorf("worker %d received a different final partition", i)
		}
	}
}

// TestServeSurvivesStalledWorker covers deadline-based detection: the victim
// does not crash, it goes silent (a long injected delay while sending its
// result). Only the read deadline can notice; the coordinator declares it
// dead and recovers as if it had crashed.
func TestServeSurvivesStalledWorker(t *testing.T) {
	g := gen.Grid2D(32, 32)
	cfg := core.NewConfig(core.Fast, 4)
	cfg.Seed = 99
	cfg.PEs = 2
	cfg.Coarsen = core.CoarsenDistributed
	want := inProcess(t, g, cfg)

	sched := schedule(t, "ctrl:write:2:delay:2s")
	counters := &remote.Counters{}
	so := remote.ServeOptions{WorkerTimeout: 500 * time.Millisecond, Counters: counters}
	wos := []remote.WorkOptions{{Faults: sched}, {}}

	res, serr, outs := runServeFaulty(t, g, cfg, so, wos)
	if serr != nil {
		t.Fatalf("Serve did not survive the stalled worker: %v", serr)
	}
	if res.Cut != want.Cut || !reflect.DeepEqual(res.Blocks, want.Blocks) {
		t.Fatalf("recovered partition diverged from healthy run: cut %d vs %d", res.Cut, want.Cut)
	}
	s := counters.Snapshot()
	if s.WorkerFailures != 1 {
		t.Errorf("WorkerFailures = %d, want 1", s.WorkerFailures)
	}
	victims := 0
	for _, o := range outs {
		if o.err != nil {
			victims++
		}
	}
	if victims != 1 {
		t.Fatalf("%d workers died, want exactly the stalled one", victims)
	}
}

// TestServeLocalFallback kills every worker: with nobody left to reassign
// to, the coordinator must finish the remaining levels itself — same
// kernels over the in-process Exchanger, so still byte-identical.
func TestServeLocalFallback(t *testing.T) {
	g := gen.Grid2D(32, 32)
	cfg := core.NewConfig(core.Fast, 4)
	cfg.Seed = 99
	cfg.PEs = 2
	cfg.Coarsen = core.CoarsenDistributed
	want := inProcess(t, g, cfg)

	counters := &remote.Counters{}
	so := remote.ServeOptions{WorkerTimeout: 10 * time.Second, Counters: counters}
	wos := []remote.WorkOptions{
		{Faults: schedule(t, "ctrl:write:2:kill")},
		{Faults: schedule(t, "ctrl:write:2:kill")},
	}

	res, serr, outs := runServeFaulty(t, g, cfg, so, wos)
	if serr != nil {
		t.Fatalf("Serve did not degrade to local execution: %v", serr)
	}
	if res.Cut != want.Cut || !reflect.DeepEqual(res.Blocks, want.Blocks) {
		t.Fatalf("degraded partition diverged from healthy run: cut %d vs %d", res.Cut, want.Cut)
	}
	s := counters.Snapshot()
	if s.WorkerFailures != 2 {
		t.Errorf("WorkerFailures = %d, want 2", s.WorkerFailures)
	}
	if s.LocalFallbacks != 1 {
		t.Errorf("LocalFallbacks = %d, want 1", s.LocalFallbacks)
	}
	if s.DoneFailures != 2 {
		t.Errorf("DoneFailures = %d, want 2 (nobody left to broadcast to)", s.DoneFailures)
	}
	for i, o := range outs {
		if o.err == nil {
			t.Errorf("worker %d survived its own kill schedule", i)
		}
	}
}

// TestServeWorkerDiesMidHandshake pins the typed error of an incomplete
// handshake: a worker claims a PE over the control channel and dies before
// dialing its transport connection, so the worker set never completes and
// Serve fails with a *WorkerError in the handshake phase once the listener
// deadline expires.
func TestServeWorkerDiesMidHandshake(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.NewConfig(core.Fast, 4)
	cfg.PEs = 2

	done := make(chan error, 1)
	go func() {
		_, err := remote.ServeWith(context.Background(), ln, gen.RGG(8, 1), cfg,
			remote.ServeOptions{WorkerTimeout: 250 * time.Millisecond})
		done <- err
	}()

	// Half a handshake: control hello, read the assignment, hang up.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := dist.WriteHello(conn, dist.Hello{Role: dist.RoleControl, PE: -1}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	conn.Read(buf)
	conn.Close()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Serve returned nil with an incomplete worker set")
		}
		var we *remote.WorkerError
		if !errors.As(err, &we) {
			t.Fatalf("error %v is not a *WorkerError", err)
		}
		if we.Phase != "handshake" {
			t.Fatalf("WorkerError phase %q, want \"handshake\"", we.Phase)
		}
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("error %v does not wrap os.ErrDeadlineExceeded", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve hung on an incomplete handshake")
	}
}

// TestServeHandshakeRetry: the worker's first connection attempt dies before
// the hello reaches the coordinator; with a retry policy the second attempt
// succeeds and the run completes normally. The coordinator treats the dead
// first connection like any port probe: drop and keep waiting.
func TestServeHandshakeRetry(t *testing.T) {
	g := gen.Grid2D(16, 16)
	cfg := core.NewConfig(core.Fast, 4)
	cfg.Seed = 7
	cfg.PEs = 2
	cfg.Coarsen = core.CoarsenDistributed
	want := inProcess(t, g, cfg)

	sched := schedule(t, "ctrl:write:1:kill")
	wos := []remote.WorkOptions{
		{
			Retry:  remote.RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Seed: 7},
			Faults: sched,
		},
		{},
	}
	res, serr, outs := runServeFaulty(t, g, cfg, remote.ServeOptions{}, wos)
	if serr != nil {
		t.Fatalf("Serve: %v", serr)
	}
	if outs[0].err != nil {
		t.Fatalf("worker did not recover via handshake retry: %v", outs[0].err)
	}
	if n := sched.Injected(); n != 1 {
		t.Fatalf("schedule injected %d faults, want 1", n)
	}
	if res.Cut != want.Cut || !reflect.DeepEqual(res.Blocks, want.Blocks) {
		t.Fatalf("partition diverged after handshake retry: cut %d vs %d", res.Cut, want.Cut)
	}
}

// TestServeRetryExhaustion: with no retry budget and no listener, the worker
// fails immediately with the dial error; with a budget, the wrapped error
// names the attempt count.
func TestServeRetryExhaustion(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore

	_, err = remote.WorkWith(context.Background(), "tcp", addr, remote.WorkOptions{
		Retry: remote.RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Seed: 1},
	})
	if err == nil {
		t.Fatal("worker connected to a closed listener")
	}
	if want := "after 3 attempts"; !contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestServeHeartbeats: a healthy run with heartbeats on both sides and an
// injected superstep delay long enough to guarantee beats flow while the
// kernels are (artificially) slow. Liveness traffic must not disturb the
// partition bytes.
func TestServeHeartbeats(t *testing.T) {
	g := gen.Grid2D(40, 40)
	cfg := core.NewConfig(core.Fast, 6)
	cfg.Seed = 4242
	cfg.PEs = 3
	cfg.Coarsen = core.CoarsenDistributed
	want := inProcess(t, g, cfg)

	// One worker's second inbox read stalls 200ms: the coordinator's result
	// readers block meanwhile, so worker heartbeats demonstrably refresh the
	// deadline (and get counted).
	sched := schedule(t, "pe0:read:2:delay:200ms;pe1:read:2:delay:200ms;pe2:read:2:delay:200ms")
	counters := &remote.Counters{}
	so := remote.ServeOptions{
		WorkerTimeout: 10 * time.Second,
		Heartbeat:     20 * time.Millisecond,
		Counters:      counters,
	}
	hb := remote.WorkOptions{Heartbeat: 10 * time.Millisecond}
	wos := []remote.WorkOptions{{Heartbeat: hb.Heartbeat, Faults: sched}, hb, hb}

	res, serr, outs := runServeFaulty(t, g, cfg, so, wos)
	if serr != nil {
		t.Fatalf("Serve: %v", serr)
	}
	if res.Cut != want.Cut || !reflect.DeepEqual(res.Blocks, want.Blocks) {
		t.Fatalf("heartbeats changed the partition: cut %d vs %d", res.Cut, want.Cut)
	}
	s := counters.Snapshot()
	if s.HeartbeatsSent < 1 {
		t.Errorf("HeartbeatsSent = %d, want >= 1", s.HeartbeatsSent)
	}
	if s.HeartbeatsRecv < 1 {
		t.Errorf("HeartbeatsRecv = %d, want >= 1", s.HeartbeatsRecv)
	}
	if s.WorkerFailures != 0 {
		t.Errorf("WorkerFailures = %d in a healthy (if slow) run", s.WorkerFailures)
	}
	for i, o := range outs {
		if o.err != nil {
			t.Errorf("worker %d: %v", i, o.err)
		}
	}
}

// TestWorkerDerivedHeartbeat: a worker given no explicit heartbeat interval
// derives one (a quarter of the announced worker timeout) from the
// assignment, so `kappa serve -worker-timeout` alone keeps slow-but-healthy
// workers from being falsely declared dead. A fake coordinator announces a
// 200ms timeout and waits for the beats that only the derivation can send.
func TestWorkerDerivedHeartbeat(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	beats := make(chan int, 1)
	go func() {
		ctrl, err := ln.Accept()
		if err != nil {
			beats <- -1
			return
		}
		defer ctrl.Close()
		br := bufio.NewReaderSize(ctrl, 1<<16)
		if _, err := dist.ReadHello(br); err != nil {
			beats <- -1
			return
		}
		a := wire.Assign{Version: wire.Version, PE: 0, PEs: 1, TimeoutMillis: 200}
		if err := wire.WriteFrame(ctrl, wire.KindAssign, wire.AppendAssign(nil, a)); err != nil {
			beats <- -1
			return
		}
		// The worker dials one transport connection next; accept and hold it.
		tr, err := ln.Accept()
		if err != nil {
			beats <- -1
			return
		}
		defer tr.Close()
		// Count two heartbeats (due at 50ms and 100ms), then end the session.
		ctrl.SetReadDeadline(time.Now().Add(10 * time.Second))
		n := 0
		for n < 2 {
			kind, _, err := wire.ReadFrame(br)
			if err != nil {
				beats <- n
				return
			}
			if kind == wire.KindHeartbeat {
				n++
			}
		}
		wire.WriteFrame(ctrl, wire.KindDone, nil)
		beats <- n
	}()

	if _, err := remote.WorkWith(ctx, "tcp", ln.Addr().String(), remote.WorkOptions{}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if n := <-beats; n < 2 {
		t.Fatalf("coordinator saw %d heartbeats, want >= 2 derived from the announced timeout", n)
	}
}

// TestServeOptionsAnnounced: the assignment frame carries the coordinator's
// timing contract to the worker.
func TestServeOptionsAnnounced(t *testing.T) {
	a := wire.Assign{Version: wire.Version, PE: 0, PEs: 2, HeartbeatMillis: 20, TimeoutMillis: 1000}
	dec, err := wire.DecodeAssign(wire.AppendAssign(nil, a))
	if err != nil {
		t.Fatal(err)
	}
	if dec.HeartbeatMillis != 20 || dec.TimeoutMillis != 1000 {
		t.Fatalf("timing fields did not round-trip: %+v", dec)
	}
}
