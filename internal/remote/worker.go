package remote

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/coarsen"
	"repro/internal/dist"
	"repro/internal/matching"
	"repro/internal/rating"
	"repro/internal/wire"
)

// WorkResult is what a finished worker session reports: the PE this process
// hosted, how many contraction levels it worked, and the final partition the
// coordinator broadcast (nil when the run failed coordinator-side).
type WorkResult struct {
	PE        int
	Levels    int
	Partition []int32
}

// Work runs one worker process: dial the coordinator at addr, receive a PE
// assignment, then serve contraction-level jobs — per level: decode the
// shard, run the per-PE matching kernel, vote on whether anyone matched,
// contract, ship the result — until the coordinator sends Done. The worker
// executes exactly the in-process per-PE kernels, so its results are
// byte-identical to a goroutine PE's.
//
// Cancelling ctx closes the connections, aborting blocked reads promptly.
func Work(ctx context.Context, network, addr string) (WorkResult, error) {
	ctrl, err := net.Dial(network, addr)
	if err != nil {
		return WorkResult{}, fmt.Errorf("remote: dialing coordinator: %w", err)
	}
	defer ctrl.Close()

	// The transport only exists once the assignment is in; the abort hook
	// reads it under the mutex so a cancellation racing the handshake
	// cannot miss (or doubly close) it.
	var transportMu sync.Mutex
	var transport *dist.SocketTransport
	stop := context.AfterFunc(ctx, func() {
		ctrl.Close()
		transportMu.Lock()
		t := transport
		transportMu.Unlock()
		if t != nil {
			t.Close()
		}
	})
	defer stop()

	if err := dist.WriteHello(ctrl, dist.Hello{Role: dist.RoleControl, PE: -1}); err != nil {
		return WorkResult{}, fmt.Errorf("remote: hello: %w", err)
	}
	br := bufio.NewReaderSize(ctrl, 1<<16)
	kind, payload, err := wire.ReadFrame(br)
	if err != nil {
		return WorkResult{}, fmt.Errorf("remote: waiting for assignment: %w", err)
	}
	if kind != wire.KindAssign {
		return WorkResult{}, fmt.Errorf("remote: first frame has kind %d, want assignment", kind)
	}
	assign, err := wire.DecodeAssign(payload)
	if err != nil {
		return WorkResult{}, err
	}
	if assign.Version != wire.Version {
		return WorkResult{}, fmt.Errorf("remote: coordinator speaks wire version %d, this worker %d", assign.Version, wire.Version)
	}
	if assign.PE < 0 || assign.PE >= assign.PEs {
		return WorkResult{}, fmt.Errorf("remote: assigned PE %d of %d", assign.PE, assign.PEs)
	}
	rf := rating.Func(assign.Rating)
	alg := matching.Algorithm(assign.Matcher)

	transportMu.Lock()
	transport = dist.NewSocketTransport(assign.PEs, wire.MsgCodec{})
	transportMu.Unlock()
	defer transport.Close()
	if ctx.Err() != nil { // cancelled during the handshake: the hook may have run already
		return WorkResult{}, ctx.Err()
	}
	if err := transport.Dial(network, addr, assign.PE); err != nil {
		return WorkResult{}, fmt.Errorf("remote: dialing transport: %w", err)
	}

	res := WorkResult{PE: assign.PE}
	for {
		kind, payload, err := wire.ReadFrame(br)
		if err != nil {
			return res, fmt.Errorf("remote: waiting for job: %w", err)
		}
		switch kind {
		case wire.KindJob:
			job, err := wire.DecodeJob(payload)
			if err != nil {
				return res, err
			}
			result, err := runLevel(transport, assign, rf, alg, job)
			if err != nil {
				return res, err
			}
			if err := wire.WriteFrame(ctrl, wire.KindResult, wire.AppendResult(nil, result)); err != nil {
				return res, fmt.Errorf("remote: sending level %d result: %w", job.Level, err)
			}
			res.Levels++
		case wire.KindDone:
			if len(payload) > 0 {
				blocks, _, err := wire.DecodePartition(payload)
				if err != nil {
					return res, err
				}
				res.Partition = blocks
			}
			return res, nil
		default:
			return res, fmt.Errorf("remote: unexpected frame kind %d", kind)
		}
	}
}

// runLevel executes one contraction-level job against the transport. The
// socket transport reports I/O failure by panicking with *dist.SocketError
// (the Transport interface has no error returns); this is the superstep-
// sequence boundary where that panic converts back into an error.
func runLevel(t *dist.SocketTransport, assign wire.Assign, rf rating.Func, alg matching.Algorithm, job wire.Job) (result wire.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			var serr *dist.SocketError
			if e, ok := r.(error); ok && errors.As(e, &serr) {
				err = fmt.Errorf("remote: level %d: %w", job.Level, e)
				return
			}
			panic(r)
		}
	}()
	start := time.Now()
	m := matching.MatchSubgraph(job.Shard, t, rf, alg, job.Seed, job.MaxPair, assign.Boundary, assign.PE)
	matchNanos := time.Since(start).Nanoseconds()
	result = wire.Result{PE: assign.PE, Matched: m.Size(), MatchNanos: matchNanos}
	// Collective empty-matching vote: every PE reaches the same verdict, so
	// either all contract (keeping the superstep sequences aligned) or none
	// does — mirroring the coordinator-side check of the in-process path.
	if !t.AllReduceOr(assign.PE, m.Size() > 0) {
		return result, nil
	}
	start = time.Now()
	result.Part = coarsen.ContractSubgraph(job.Shard, m, t, assign.PE)
	result.ContractNanos = time.Since(start).Nanoseconds()
	return result, nil
}
