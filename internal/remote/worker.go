package remote

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/coarsen"
	"repro/internal/dist"
	"repro/internal/matching"
	"repro/internal/rating"
	"repro/internal/rng"
	"repro/internal/wire"
)

// WorkResult is what a finished worker session reports: the PE this process
// was first assigned, how many contraction levels the run reached, and the
// final partition the coordinator broadcast (nil when the run failed
// coordinator-side).
type WorkResult struct {
	PE        int
	Levels    int
	Partition []int32
}

// WorkOptions configures a worker's fault tolerance. The zero value is the
// legacy behavior: one connection attempt, no heartbeats, no injection.
type WorkOptions struct {
	// Retry governs the initial dial + handshake (see RetryPolicy).
	Retry RetryPolicy
	// Heartbeat is the interval of worker → coordinator heartbeats; they
	// refresh the coordinator's read deadline for this worker, so a slow
	// kernel is distinguishable from a dead process. Zero defaults to a
	// quarter of the worker timeout the coordinator announces in the
	// assignment (no heartbeats when that is zero too).
	Heartbeat time.Duration
	// Faults injects scheduled connection faults: the control connection is
	// labeled "ctrl", transport connections "pe<N>". Nil injects nothing.
	Faults *dist.FaultSchedule
}

// Work runs one worker process: dial the coordinator at addr, receive a PE
// assignment, then serve contraction-level jobs — per level and hosted PE:
// decode the shard, run the per-PE matching kernel, vote on whether anyone
// matched, contract, ship the result — until the coordinator sends Done. The
// worker executes exactly the in-process per-PE kernels, so its results are
// byte-identical to a goroutine PE's.
//
// A worker starts with one PE and may be handed more: when a sibling worker
// dies, the coordinator reassigns the orphaned shards and this worker runs
// several PE kernels concurrently over one transport — the processes shrink,
// the PE structure (and therefore the partition bytes) does not.
//
// Cancelling ctx closes the connections, aborting blocked reads promptly.
func Work(ctx context.Context, network, addr string) (WorkResult, error) {
	return WorkWith(ctx, network, addr, WorkOptions{})
}

// WorkWith is Work with explicit fault-tolerance options.
func WorkWith(ctx context.Context, network, addr string, wo WorkOptions) (WorkResult, error) {
	// The connections come and go (handshake retries, transport re-dials
	// after a reassignment); the abort hook reads the current ones under the
	// mutex so a cancellation racing a swap cannot miss (or doubly close)
	// anything.
	var connMu sync.Mutex
	var ctrl net.Conn
	var transport *dist.SocketTransport
	setCtrl := func(c net.Conn) {
		connMu.Lock()
		ctrl = c
		connMu.Unlock()
	}
	setTransport := func(t *dist.SocketTransport) {
		connMu.Lock()
		transport = t
		connMu.Unlock()
	}
	stop := context.AfterFunc(ctx, func() {
		connMu.Lock()
		c, t := ctrl, transport
		connMu.Unlock()
		if c != nil {
			c.Close()
		}
		if t != nil {
			t.Close()
		}
	})
	defer stop()

	conn, br, assign, err := dialControl(ctx, network, addr, wo, setCtrl)
	if err != nil {
		return WorkResult{}, err
	}
	defer conn.Close()
	if assign.PE < 0 || assign.PE >= assign.PEs {
		return WorkResult{}, fmt.Errorf("remote: assigned PE %d of %d", assign.PE, assign.PEs)
	}
	w := &workSession{
		network:   network,
		addr:      addr,
		ctrl:      conn,
		br:        br,
		assign:    assign,
		rf:        rating.Func(assign.Rating),
		alg:       matching.Algorithm(assign.Matcher),
		faults:    wo.Faults,
		hosted:    []int{assign.PE},
		ctrlGrace: 4 * time.Duration(assign.HeartbeatMillis) * time.Millisecond,
	}

	if err := w.dialTransport(setTransport); err != nil {
		return WorkResult{}, err
	}
	defer func() {
		connMu.Lock()
		t := transport
		connMu.Unlock()
		if t != nil {
			t.Close()
		}
	}()
	if ctx.Err() != nil { // cancelled during the handshake: the hook may have run already
		return WorkResult{}, ctx.Err()
	}

	// Worker → coordinator heartbeats: they refresh the coordinator's read
	// deadline for this worker while the kernels compute. When no explicit
	// interval is configured but the coordinator announced a worker timeout,
	// default to a quarter of it — otherwise any kernel outlasting the
	// timeout would get this worker falsely declared dead, and the Assign
	// contract says one coordinator flag configures the system consistently.
	if wo.Heartbeat <= 0 && assign.TimeoutMillis > 0 {
		wo.Heartbeat = time.Duration(assign.TimeoutMillis) * time.Millisecond / 4
	}
	if wo.Heartbeat > 0 {
		hbStop := make(chan struct{})
		defer close(hbStop)
		go func() {
			t := time.NewTicker(wo.Heartbeat)
			defer t.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-t.C:
					w.writeCtrl(wire.KindHeartbeat, nil) // failures surface in the main loop
				}
			}
		}()
	}

	res := WorkResult{PE: assign.PE}
	err = w.run(setTransport, &res)
	return res, err
}

// workSession is the state of one worker process's session.
type workSession struct {
	network, addr string
	ctrl          net.Conn
	br            *bufio.Reader
	assign        wire.Assign
	rf            rating.Func
	alg           matching.Algorithm
	faults        *dist.FaultSchedule
	hosted        []int
	ctrlGrace     time.Duration // control-read deadline; 0 when no coordinator heartbeats

	wmu       sync.Mutex // serializes control writes (results, aborts, heartbeats)
	transport *dist.SocketTransport
	kernels   sync.WaitGroup
	kerrMu    sync.Mutex
	kerr      error // first fatal kernel-side failure (result write died)
}

// run is the control loop: jobs spawn kernels, reassignments re-dial the
// transport, done ends the session.
func (w *workSession) run(setTransport func(*dist.SocketTransport), res *WorkResult) error {
	for {
		kind, payload, err := w.readCtrl()
		if err != nil {
			w.kernels.Wait()
			if kerr := w.kernelErr(); kerr != nil {
				return kerr
			}
			return fmt.Errorf("remote: waiting for job: %w", err)
		}
		switch kind {
		case wire.KindJob:
			job, err := wire.DecodeJob(payload)
			if err != nil {
				return err
			}
			if lv := job.Level + 1; lv > res.Levels {
				res.Levels = lv
			}
			w.kernels.Add(1)
			go func() {
				defer w.kernels.Done()
				w.runJob(job)
			}()
		case wire.KindReassign:
			pes, err := wire.DecodeReassign(payload)
			if err != nil {
				return err
			}
			// All kernels of the aborted level have answered (the
			// coordinator drains every outcome before reassigning), so the
			// wait is immediate; it guards the transport swap regardless.
			w.kernels.Wait()
			if kerr := w.kernelErr(); kerr != nil {
				return kerr
			}
			w.hosted = w.hosted[:0]
			for _, pe := range pes {
				w.hosted = append(w.hosted, int(pe))
			}
			w.transport.Close()
			if err := w.dialTransport(setTransport); err != nil {
				return err
			}
		case wire.KindDone:
			w.kernels.Wait()
			if len(payload) > 0 {
				blocks, _, err := wire.DecodePartition(payload)
				if err != nil {
					return err
				}
				res.Partition = blocks
			}
			return nil
		default:
			return fmt.Errorf("remote: unexpected frame kind %d", kind)
		}
	}
}

// dialTransport (re)connects one transport connection per hosted PE into the
// coordinator's current hub.
func (w *workSession) dialTransport(setTransport func(*dist.SocketTransport)) error {
	t := dist.NewSocketTransport(w.assign.PEs, wire.MsgCodec{})
	t.SetFaults(w.faults)
	t.SetIODeadline(time.Duration(w.assign.TimeoutMillis) * time.Millisecond)
	w.transport = t
	setTransport(t)
	for _, pe := range w.hosted {
		if err := t.Dial(w.network, w.addr, pe); err != nil {
			return fmt.Errorf("remote: dialing transport for PE %d: %w", pe, err)
		}
	}
	return nil
}

// readCtrl reads the next non-heartbeat control frame. With coordinator
// heartbeats announced, each read is bounded by four intervals — the
// coordinator has to miss four beats before this worker declares it dead.
func (w *workSession) readCtrl() (byte, []byte, error) {
	for {
		if w.ctrlGrace > 0 {
			w.ctrl.SetReadDeadline(time.Now().Add(w.ctrlGrace))
		}
		kind, payload, err := wire.ReadFrame(w.br)
		if err != nil {
			return 0, nil, err
		}
		if kind == wire.KindHeartbeat {
			continue
		}
		return kind, payload, nil
	}
}

// writeCtrl writes one control frame under the write lock.
func (w *workSession) writeCtrl(kind byte, payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if w.ctrlGrace > 0 {
		w.ctrl.SetWriteDeadline(time.Now().Add(w.ctrlGrace))
	}
	return wire.WriteFrame(w.ctrl, kind, payload)
}

// kernelErr returns the first fatal kernel failure, if any.
func (w *workSession) kernelErr() error {
	w.kerrMu.Lock()
	defer w.kerrMu.Unlock()
	return w.kerr
}

// runJob executes one PE's level kernel and ships the outcome: a result on
// success, an explicit level-aborted frame when the transport collapsed
// underneath the kernel. The abort frame — rather than a closed connection —
// keeps the control stream frame-aligned, so the coordinator can reuse it
// for the retry.
func (w *workSession) runJob(job wire.Job) {
	result, err := runLevel(w.transport, w.assign, w.rf, w.alg, job)
	var werr error
	if err != nil {
		la := wire.LevelAborted{PE: int(job.Shard.PE), Level: job.Level}
		werr = w.writeCtrl(wire.KindLevelAborted, wire.AppendLevelAborted(nil, la))
	} else {
		werr = w.writeCtrl(wire.KindResult, wire.AppendResult(nil, result))
	}
	if werr != nil {
		w.kerrMu.Lock()
		if w.kerr == nil {
			w.kerr = fmt.Errorf("remote: sending level %d outcome for PE %d: %w", job.Level, job.Shard.PE, werr)
		}
		w.kerrMu.Unlock()
	}
}

// dialControl establishes the control connection and handshake, retrying per
// the policy with seeded exponential backoff. Each attempt is independently
// bounded; the returned connection has no deadlines armed.
func dialControl(ctx context.Context, network, addr string, wo WorkOptions, setCtrl func(net.Conn)) (net.Conn, *bufio.Reader, wire.Assign, error) {
	attempts := wo.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	jitter := rng.NewStream(wo.Retry.Seed, 0)
	var lastErr error
	for a := 1; a <= attempts; a++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, wire.Assign{}, err
		}
		conn, br, assign, err := tryHandshake(network, addr, wo, setCtrl)
		if err == nil {
			return conn, br, assign, nil
		}
		lastErr = err
		if a < attempts {
			if d := wo.Retry.backoff(jitter, a); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return nil, nil, wire.Assign{}, ctx.Err()
				}
			}
		}
	}
	if attempts > 1 {
		lastErr = fmt.Errorf("remote: handshake failed after %d attempts: %w", attempts, lastErr)
	}
	return nil, nil, wire.Assign{}, lastErr
}

// tryHandshake is one bounded dial + hello + assignment exchange.
func tryHandshake(network, addr string, wo WorkOptions, setCtrl func(net.Conn)) (net.Conn, *bufio.Reader, wire.Assign, error) {
	d := net.Dialer{Timeout: wo.Retry.Timeout}
	conn, err := d.Dial(network, addr)
	if err != nil {
		return nil, nil, wire.Assign{}, fmt.Errorf("remote: dialing coordinator: %w", err)
	}
	conn = wo.Faults.Wrap("ctrl", conn)
	setCtrl(conn)
	if wo.Retry.Timeout > 0 {
		conn.SetDeadline(time.Now().Add(wo.Retry.Timeout))
	}
	fail := func(err error) (net.Conn, *bufio.Reader, wire.Assign, error) {
		conn.Close()
		setCtrl(nil)
		return nil, nil, wire.Assign{}, err
	}
	if err := dist.WriteHello(conn, dist.Hello{Role: dist.RoleControl, PE: -1}); err != nil {
		return fail(fmt.Errorf("remote: hello: %w", err))
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	kind, payload, err := wire.ReadFrame(br)
	if err != nil {
		return fail(fmt.Errorf("remote: waiting for assignment: %w", err))
	}
	if kind != wire.KindAssign {
		return fail(fmt.Errorf("remote: first frame has kind %d, want assignment", kind))
	}
	assign, err := wire.DecodeAssign(payload)
	if err != nil {
		return fail(err)
	}
	if assign.Version != wire.Version {
		return fail(fmt.Errorf("remote: coordinator speaks wire version %d, this worker %d", assign.Version, wire.Version))
	}
	conn.SetDeadline(time.Time{})
	return conn, br, assign, nil
}

// runLevel executes one contraction-level job against the transport. The
// socket transport reports I/O failure by panicking with *dist.SocketError
// (the Transport interface has no error returns); this is the superstep-
// sequence boundary where that panic converts back into an error.
func runLevel(t *dist.SocketTransport, assign wire.Assign, rf rating.Func, alg matching.Algorithm, job wire.Job) (result wire.Result, err error) {
	pe := int(job.Shard.PE)
	defer func() {
		if r := recover(); r != nil {
			var serr *dist.SocketError
			if e, ok := r.(error); ok && errors.As(e, &serr) {
				err = fmt.Errorf("remote: level %d: %w", job.Level, e)
				return
			}
			panic(r)
		}
	}()
	start := time.Now()
	m := matching.MatchSubgraph(job.Shard, t, rf, alg, job.Seed, job.MaxPair, assign.Boundary, pe)
	matchNanos := time.Since(start).Nanoseconds()
	result = wire.Result{PE: pe, Matched: m.Size(), MatchNanos: matchNanos}
	// Collective empty-matching vote: every PE reaches the same verdict, so
	// either all contract (keeping the superstep sequences aligned) or none
	// does — mirroring the coordinator-side check of the in-process path.
	if !t.AllReduceOr(pe, m.Size() > 0) {
		return result, nil
	}
	start = time.Now()
	result.Part = coarsen.ContractSubgraph(job.Shard, m, t, pe)
	result.ContractNanos = time.Since(start).Nanoseconds()
	return result, nil
}
