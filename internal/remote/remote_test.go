package remote_test

import (
	"context"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/remote"
)

// runServeWorkers runs a coordinator and pes workers over localhost TCP —
// the full out-of-process protocol, minus the process boundary (the
// cmd/kappa test covers that part with real OS processes).
func runServeWorkers(t *testing.T, g *graph.Graph, cfg core.Config) (core.Result, []remote.WorkResult) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	pes := cfg.NumPEs()
	workers := make([]remote.WorkResult, pes)
	var wg sync.WaitGroup
	for i := 0; i < pes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wr, err := remote.Work(ctx, "tcp", addr)
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			workers[i] = wr
		}(i)
	}
	res, err := remote.Serve(ctx, ln, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return res, workers
}

// TestServeMatchesInProcess is the acceptance pin of the out-of-process
// backend: coordinator + workers over sockets produce a byte-identical
// partition to the in-process Exchanger run at the same seed.
func TestServeMatchesInProcess(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		pes  int
		k    int
	}{
		{"rgg-2pe", gen.RGG(11, 3), 2, 8},
		{"grid-3pe", gen.Grid2D(40, 40), 3, 6},
		{"grid3d-2pe", gen.Grid3D(12, 10, 8), 2, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.NewConfig(core.Fast, tc.k)
			cfg.Seed = 4242
			cfg.PEs = tc.pes
			cfg.Coarsen = core.CoarsenDistributed

			want, err := core.Run(context.Background(), tc.g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, workers := runServeWorkers(t, tc.g, cfg)

			if got.Cut != want.Cut || !reflect.DeepEqual(got.Blocks, want.Blocks) {
				t.Fatalf("out-of-process partition diverged: cut %d vs %d", got.Cut, want.Cut)
			}
			if got.Levels == 0 {
				t.Fatal("no contraction levels built remotely")
			}
			for i, wr := range workers {
				// Workers count jobs served; the coordinator may reject the
				// last level for shrinking too little, so jobs ∈ [levels, levels+1].
				if wr.Levels < got.Levels || wr.Levels > got.Levels+1 {
					t.Errorf("worker %d worked %d levels, coordinator built %d", i, wr.Levels, got.Levels)
				}
				if !reflect.DeepEqual(wr.Partition, want.Blocks) {
					t.Errorf("worker %d received a different final partition", i)
				}
			}
		})
	}
}

// TestServeObserverEvents checks that the remote coarsener feeds the same
// typed trace machinery: one LevelEvent per level with kernel timings.
func TestServeObserverEvents(t *testing.T) {
	g := gen.RGG(10, 1)
	cfg := core.NewConfig(core.Fast, 4)
	cfg.Seed = 7
	cfg.PEs = 2

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for i := 0; i < 2; i++ {
		go remote.Work(ctx, "tcp", ln.Addr().String())
	}
	var levels int
	res, err := remote.Serve(ctx, ln, g, cfg, core.WithObserver(core.ObserverFunc(func(ev core.TraceEvent) {
		if _, ok := ev.(core.LevelEvent); ok {
			levels++
		}
	})))
	if err != nil {
		t.Fatal(err)
	}
	if levels != res.Levels {
		t.Fatalf("saw %d LevelEvents for %d levels", levels, res.Levels)
	}
}

// TestServeContextCancel pins the abort path: cancelling the context while
// the coordinator waits for workers must fail promptly, not hang.
func TestServeContextCancel(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		cfg := core.NewConfig(core.Fast, 4)
		cfg.PEs = 2
		_, err := remote.Serve(ctx, ln, gen.RGG(8, 1), cfg)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let Serve reach Accept
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled Serve returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled Serve did not return")
	}
}
