package dist

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestExtractGhostRoundTrip(t *testing.T) {
	g := gen.Grid2D(16, 16)
	assign := IndexRanges(g.NumNodes(), 4)
	for _, s := range ExtractAll(g, assign, 4) {
		if s.Local.NumNodes() == 0 {
			t.Fatalf("PE %d: empty subgraph", s.PE)
		}
		if err := s.Local.Validate(); err != nil {
			t.Fatalf("PE %d: invalid local graph: %v", s.PE, err)
		}
		for li := int32(0); int(li) < s.Local.NumNodes(); li++ {
			global := s.ToGlobal(li)
			back, ok := s.ToLocal(global)
			if !ok || back != li {
				t.Fatalf("PE %d: round trip %d -> %d -> (%d,%v)", s.PE, li, global, back, ok)
			}
			if s.IsGhost(li) != (assign[global] != s.PE) {
				t.Fatalf("PE %d: ghost flag wrong for local %d (global %d)", s.PE, li, global)
			}
			if s.Local.NodeWeight(li) != g.NodeWeight(global) {
				t.Fatalf("PE %d: node weight mismatch at local %d", s.PE, li)
			}
		}
		for gi, owner := range s.GhostOwner {
			global := s.ToGlobal(int32(s.NumOwned + gi))
			if assign[global] != owner {
				t.Fatalf("PE %d: ghost %d owner recorded %d, assignment says %d", s.PE, gi, owner, assign[global])
			}
			if owner == s.PE {
				t.Fatalf("PE %d: ghost %d owned by itself", s.PE, gi)
			}
		}
	}
}

// TestExtractEdgeConservation: every global edge appears in the subgraph of
// each endpoint's owner — internal edges in exactly one subgraph, cut edges
// in exactly two (once per side) — and no subgraph carries ghost–ghost edges.
func TestExtractEdgeConservation(t *testing.T) {
	g := gen.RGG(10, 5)
	pes := 5
	x, y := g.Coords()
	assign := RCB(x, y, pes)
	internal := g.NumEdges() - int(countCut(g, assign))
	cut := int(countCut(g, assign))

	totalLocal, totalCross := 0, 0
	for _, s := range ExtractAll(g, assign, pes) {
		for v := int32(0); int(v) < s.Local.NumNodes(); v++ {
			for _, u := range s.Local.Adj(v) {
				if u <= v {
					continue
				}
				if s.IsGhost(v) && s.IsGhost(u) {
					t.Fatalf("PE %d: ghost-ghost edge {%d,%d}", s.PE, v, u)
				}
				gv, gu := s.ToGlobal(v), s.ToGlobal(u)
				if w := g.EdgeWeightTo(gv, gu); w == 0 {
					t.Fatalf("PE %d: local edge {%d,%d} has no global counterpart", s.PE, v, u)
				}
				if s.IsGhost(v) || s.IsGhost(u) {
					totalCross++
				} else {
					totalLocal++
				}
			}
		}
	}
	if totalLocal != internal {
		t.Errorf("internal edges: subgraphs carry %d, global graph has %d", totalLocal, internal)
	}
	if totalCross != 2*cut {
		t.Errorf("cut edges: subgraphs carry %d halves, want %d", totalCross, 2*cut)
	}
}

// countCut counts cross-PE undirected edges (unweighted).
func countCut(g *graph.Graph, assign []int32) int64 {
	var cut int64
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		for _, u := range g.Adj(v) {
			if u > v && assign[v] != assign[u] {
				cut++
			}
		}
	}
	return cut
}

func TestExtractCoordsAndEmptyPE(t *testing.T) {
	g := gen.Grid2D(8, 8)
	// Assign everything to PE 0: PE 1's subgraph is empty but well-formed.
	assign := make([]int32, g.NumNodes())
	subs := ExtractAll(g, assign, 2)
	if subs[0].Local.NumNodes() != g.NumNodes() || subs[0].NumGhosts() != 0 {
		t.Errorf("PE 0 should own the whole graph")
	}
	if subs[0].Local.NumEdges() != g.NumEdges() {
		t.Errorf("PE 0 has %d edges, want %d", subs[0].Local.NumEdges(), g.NumEdges())
	}
	if !subs[0].Local.HasCoords() {
		t.Errorf("coordinates must survive extraction")
	}
	if subs[1].Local.NumNodes() != 0 {
		t.Errorf("PE 1 should be empty, has %d nodes", subs[1].Local.NumNodes())
	}
}
