// Socket-transport tests live in the external test package so they can use
// internal/wire's MsgCodec (wire imports dist; an internal test would cycle).
package dist_test

import (
	"context"
	"net"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/matching"
	"repro/internal/wire"
)

// dialAll starts a hub on a unix socket and connects pes local PEs.
func dialAll(t *testing.T, pes int) (*dist.SocketTransport, chan error) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "hub.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	hub := dist.NewSocketHub(pes)
	errc := make(chan error, 1)
	go func() {
		defer ln.Close()
		errc <- hub.Serve(ln)
	}()
	tr := dist.NewSocketTransport(pes, wire.MsgCodec{})
	for pe := 0; pe < pes; pe++ {
		if err := tr.Dial("unix", sock, pe); err != nil {
			t.Fatal(err)
		}
	}
	return tr, errc
}

// TestSocketTransportExchange checks the basic superstep contract over real
// sockets: sender-ordered inboxes, empty batches, several rounds.
func TestSocketTransportExchange(t *testing.T) {
	const pes = 3
	tr, errc := dialAll(t, pes)
	done := make(chan [][]dist.Msg, 1)
	go func() {
		inboxes := make([][]dist.Msg, pes)
		var wg chan struct{} = make(chan struct{})
		for pe := 0; pe < pes; pe++ {
			go func(pe int) {
				for round := 0; round < 3; round++ {
					out := make([][]dist.Msg, pes)
					for q := 0; q < pes; q++ {
						if (pe+round)%2 == 0 { // exercise empty batches too
							out[q] = []dist.Msg{{Kind: dist.MsgCount, A: int32(pe), B: int32(q), W: int64(round)}}
						}
					}
					in := tr.Exchange(pe, out)
					if round == 2 {
						inboxes[pe] = append([]dist.Msg(nil), in...)
					}
				}
				wg <- struct{}{}
			}(pe)
		}
		for pe := 0; pe < pes; pe++ {
			<-wg
		}
		done <- inboxes
	}()
	inboxes := <-done
	for pe := 0; pe < pes; pe++ {
		last := int32(-1)
		for _, m := range inboxes[pe] {
			if m.B != int32(pe) || m.W != 2 {
				t.Fatalf("PE %d got stray message %+v", pe, m)
			}
			if m.A < last {
				t.Fatalf("PE %d inbox not in sender order: %v", pe, inboxes[pe])
			}
			last = m.A
		}
	}
	tr.Close()
	if err := <-errc; err != nil {
		t.Fatalf("hub: %v", err)
	}
}

// TestSocketTransportMatchesExchanger is the drop-in proof for the socket
// backend: the full pipeline with distributed coarsening routed through a
// SocketTransport (real unix-socket hub, wire-codec frames) must produce a
// byte-identical partition to the in-process Exchanger run.
func TestSocketTransportMatchesExchanger(t *testing.T) {
	g := gen.RGG(11, 5)
	cfg := core.NewConfig(core.Fast, 4)
	cfg.Seed = 99
	cfg.Coarsen = core.CoarsenDistributed

	want, err := core.Run(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	tr, errc := dialAll(t, 4)
	got, err := core.Run(context.Background(), g, cfg, core.WithTransport(tr))
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if err := <-errc; err != nil {
		t.Fatalf("hub: %v", err)
	}

	if want.Cut != got.Cut || !reflect.DeepEqual(want.Blocks, got.Blocks) {
		t.Fatalf("socket transport diverged from Exchanger: cut %d vs %d", got.Cut, want.Cut)
	}
}

// TestSocketTransportAllReduce covers the OR-vote superstep over sockets.
func TestSocketTransportAllReduce(t *testing.T) {
	const pes = 2
	tr, errc := dialAll(t, pes)
	res := make([]bool, pes)
	done := make(chan struct{}, pes)
	for pe := 0; pe < pes; pe++ {
		go func(pe int) {
			res[pe] = tr.AllReduceOr(pe, pe == 1)
			done <- struct{}{}
		}(pe)
	}
	for pe := 0; pe < pes; pe++ {
		<-done
	}
	if !res[0] || !res[1] {
		t.Fatalf("OR vote lost: %v", res)
	}
	tr.Close()
	if err := <-errc; err != nil {
		t.Fatalf("hub: %v", err)
	}
}

// TestMatchSubgraphOverSockets runs the exported per-PE matching kernel —
// the code path out-of-process workers execute — over the socket transport
// and checks it agrees with the in-process distributed matcher.
func TestMatchSubgraphOverSockets(t *testing.T) {
	g := gen.Grid2D(24, 24)
	const pes = 3
	assign := dist.Assign(g, dist.StrategyRanges, pes)
	sgs := dist.ExtractAll(g, assign, pes)

	want := matching.Distributed(sgs, dist.NewExchanger(pes), core.NewConfig(core.Fast, pes).Rating, matching.GPA, 7)

	tr, errc := dialAll(t, pes)
	got := make([]matching.Matching, pes)
	done := make(chan struct{}, pes)
	for pe := 0; pe < pes; pe++ {
		go func(pe int) {
			got[pe] = matching.MatchSubgraph(sgs[pe], tr, core.NewConfig(core.Fast, pes).Rating, matching.GPA, 7, 0, true, pe)
			done <- struct{}{}
		}(pe)
	}
	for pe := 0; pe < pes; pe++ {
		<-done
	}
	tr.Close()
	if err := <-errc; err != nil {
		t.Fatalf("hub: %v", err)
	}
	for pe := range want {
		if !reflect.DeepEqual(want[pe], got[pe]) {
			t.Fatalf("PE %d matching diverged over sockets", pe)
		}
	}
}
