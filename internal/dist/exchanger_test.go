package dist

import (
	"sync"
	"testing"
	"time"
)

// TestExchangerDelivery checks that every PE receives exactly the batches
// addressed to it, ordered by sender.
func TestExchangerDelivery(t *testing.T) {
	const pes = 5
	ex := NewExchanger(pes)
	inboxes := make([][]Msg, pes)
	var wg sync.WaitGroup
	for pe := 0; pe < pes; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			out := make([][]Msg, pes)
			for q := 0; q < pes; q++ {
				// Two messages to every PE, tagged with sender and receiver.
				out[q] = []Msg{
					{Kind: MsgGhostState, A: int32(pe), B: int32(q), W: 1},
					{Kind: MsgGhostState, A: int32(pe), B: int32(q), W: 2},
				}
			}
			inboxes[pe] = ex.Exchange(pe, out)
		}(pe)
	}
	wg.Wait()
	for pe, in := range inboxes {
		if len(in) != 2*pes {
			t.Fatalf("PE %d received %d messages, want %d", pe, len(in), 2*pes)
		}
		for i, msg := range in {
			wantFrom, wantW := int32(i/2), int64(i%2+1)
			if msg.A != wantFrom || msg.B != int32(pe) || msg.W != wantW {
				t.Fatalf("PE %d msg %d = %+v, want from=%d to=%d w=%d", pe, i, msg, wantFrom, pe, wantW)
			}
		}
	}
}

// TestExchangerSkew runs many supersteps with deliberately skewed PE speeds:
// a fast PE may deposit its next-round batch before a slow PE drained the
// current round, and the step tags must keep the rounds apart.
func TestExchangerSkew(t *testing.T) {
	const pes = 4
	const rounds = 50
	ex := NewExchanger(pes)
	var wg sync.WaitGroup
	errs := make(chan string, pes)
	for pe := 0; pe < pes; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if pe == 0 && r%7 == 0 {
					time.Sleep(time.Millisecond) // the deliberately slow PE
				}
				out := make([][]Msg, pes)
				for q := 0; q < pes; q++ {
					out[q] = []Msg{{Kind: MsgCount, A: int32(pe), W: int64(r)}}
				}
				in := ex.Exchange(pe, out)
				if len(in) != pes {
					errs <- "wrong inbox size"
					return
				}
				for i, msg := range in {
					if msg.A != int32(i) || msg.W != int64(r) {
						errs <- "round leakage: got a batch from the wrong superstep"
						return
					}
				}
			}
		}(pe)
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

// TestExchangerAllReduceOr checks the termination vote.
func TestExchangerAllReduceOr(t *testing.T) {
	const pes = 3
	for voter := -1; voter < pes; voter++ {
		ex := NewExchanger(pes)
		got := make([]bool, pes)
		var wg sync.WaitGroup
		for pe := 0; pe < pes; pe++ {
			wg.Add(1)
			go func(pe int) {
				defer wg.Done()
				got[pe] = ex.AllReduceOr(pe, pe == voter)
			}(pe)
		}
		wg.Wait()
		want := voter >= 0
		for pe, v := range got {
			if v != want {
				t.Fatalf("voter=%d: PE %d got %v, want %v", voter, pe, v, want)
			}
		}
	}
}
