package dist

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestHilbert3DKeyAdjacency(t *testing.T) {
	// Consecutive curve positions are grid neighbors — the defining Hilbert
	// property, checked exhaustively on an 8x8x8 grid.
	const order = 3
	type pt struct{ x, y, z uint32 }
	pos := make(map[uint64]pt)
	const cell = uint32(1) << (sfcOrder3D - order)
	for x := uint32(0); x < 1<<order; x++ {
		for y := uint32(0); y < 1<<order; y++ {
			for z := uint32(0); z < 1<<order; z++ {
				key := hilbert3DKey(x*cell, y*cell, z*cell)
				pos[key] = pt{x, y, z}
			}
		}
	}
	if len(pos) != 512 {
		t.Fatalf("got %d distinct keys for 512 cells", len(pos))
	}
	keys := make([]uint64, 0, 512)
	for k := range pos {
		keys = append(keys, k)
	}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for i := 1; i < len(keys); i++ {
		a, b := pos[keys[i-1]], pos[keys[i]]
		dx, dy, dz := int(a.x)-int(b.x), int(a.y)-int(b.y), int(a.z)-int(b.z)
		if dx*dx+dy*dy+dz*dz != 1 {
			t.Fatalf("curve jump between (%d,%d,%d) and (%d,%d,%d)",
				a.x, a.y, a.z, b.x, b.y, b.z)
		}
	}
}

func TestMorton3DKeyDistinct(t *testing.T) {
	const order = 3
	const cell = uint32(1) << (sfcOrder3D - order)
	seen := make(map[uint64]bool)
	for x := uint32(0); x < 1<<order; x++ {
		for y := uint32(0); y < 1<<order; y++ {
			for z := uint32(0); z < 1<<order; z++ {
				k := morton3DKey(x*cell, y*cell, z*cell)
				if seen[k] {
					t.Fatalf("duplicate Morton key for (%d,%d,%d)", x, y, z)
				}
				seen[k] = true
			}
		}
	}
}

// TestHilbert3DLocality is the ROADMAP regression: on 3D meshes the real 3D
// Hilbert ordering must keep at least as much edge weight PE-internal as the
// Morton (Z-order) comparison point, and strictly more than the old x/y
// projection on instances where the projection collapses the z axis.
func TestHilbert3DLocality(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		pes  int
	}{
		{"grid3d-cube", gen.Grid3D(16, 16, 16), 7},
		{"grid3d-slab", gen.Grid3D(24, 24, 6), 5},
		{"grid3d-tall", gen.Grid3D(6, 6, 96), 7},
	} {
		x, y, z := tc.g.Coords3()
		hil := Hilbert3D(x, y, z, tc.pes)
		mor := Morton3D(x, y, z, tc.pes)
		proj := Hilbert(x, y, tc.pes)
		lh := EdgeLocality(tc.g, hil)
		lm := EdgeLocality(tc.g, mor)
		lp := EdgeLocality(tc.g, proj)
		t.Logf("%s: hilbert3d %.4f morton3d %.4f xy-projection %.4f", tc.name, lh, lm, lp)
		if lh < lm {
			t.Errorf("%s: 3D Hilbert locality %.4f below Morton %.4f", tc.name, lh, lm)
		}
		if tc.name == "grid3d-tall" && lh <= lp {
			t.Errorf("%s: 3D Hilbert locality %.4f not above x/y projection %.4f", tc.name, lh, lp)
		}
		if im := Imbalance(tc.g, hil, tc.pes); im > 1.05 {
			t.Errorf("%s: 3D Hilbert imbalance %.4f", tc.name, im)
		}
	}
}

// TestAssignUses3DHilbert pins the Assign wiring: a 3D graph under
// StrategySFC gets the 3D curve, not the x/y projection.
func TestAssignUses3DHilbert(t *testing.T) {
	g := gen.Grid3D(8, 8, 8)
	x, y, z := g.Coords3()
	want := Hilbert3DWeighted(x, y, z, nodeWeights(g), 4)
	got := Assign(g, StrategySFC, 4)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("Assign(SFC) diverges from Hilbert3DWeighted at node %d", v)
		}
	}
}
