package dist

import "sort"

// sfcOrder3D is the per-axis quantization depth of the 3D curves: 16 bits per
// axis give 48-bit curve keys, comfortably inside uint64.
const sfcOrder3D = 16

// Hilbert3DWeighted sorts nodes with 3D coordinates by their position along a
// 3D Hilbert curve through the bounding box and cuts the order into pes
// node-weight balanced ranges — the 3D counterpart of HilbertWeighted, closing
// the gap where 3D inputs used to be ordered by their x/y projection. w == nil
// means unit weights. Deterministic: key ties break by node id.
func Hilbert3DWeighted(x, y, z []float64, w []int64, pes int) []int32 {
	return sfcAssign3(x, y, z, w, pes, hilbert3DKey)
}

// Hilbert3D is Hilbert3DWeighted with unit node weights.
func Hilbert3D(x, y, z []float64, pes int) []int32 {
	return Hilbert3DWeighted(x, y, z, nil, pes)
}

// Morton3D orders by 3D Morton (Z-order) keys: cheaper per node than the
// Hilbert transform but with locality jumps at every octant seam. Kept as the
// comparison point the 3D locality regression tests measure against.
func Morton3D(x, y, z []float64, pes int) []int32 {
	return sfcAssign3(x, y, z, nil, pes, morton3DKey)
}

// sfcAssign3 quantizes 3D coordinates, sorts node ids by curve key, and cuts
// the curve order into weighted ranges (the 3D twin of sfcAssign).
func sfcAssign3(x, y, z []float64, w []int64, pes int, key func(qx, qy, qz uint32) uint64) []int32 {
	n := len(x)
	assign := make([]int32, n)
	if pes <= 1 || n == 0 {
		return assign
	}
	qx := quantize3(x)
	qy := quantize3(y)
	qz := quantize3(z)
	keys := make([]uint64, n)
	order := make([]int32, n)
	for v := 0; v < n; v++ {
		keys[v] = key(qx[v], qy[v], qz[v])
		order[v] = int32(v)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if keys[a] != keys[b] {
			return keys[a] < keys[b]
		}
		return a < b
	})
	ow := make([]int64, n)
	for i, v := range order {
		if w == nil {
			ow[i] = 1
		} else {
			ow[i] = w[v]
		}
	}
	ranges := WeightedRanges(ow, pes)
	for i, v := range order {
		assign[v] = ranges[i]
	}
	return assign
}

// quantize3 maps coordinates linearly onto the [0, 2^sfcOrder3D) integer
// grid. A degenerate axis (all values equal) maps to 0.
func quantize3(c []float64) []uint32 {
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	q := make([]uint32, len(c))
	if hi == lo {
		return q
	}
	scale := float64((uint32(1)<<sfcOrder3D)-1) / (hi - lo)
	for i, v := range c {
		q[i] = uint32((v - lo) * scale)
	}
	return q
}

// hilbert3DKey converts grid coordinates to the distance along the 3D Hilbert
// curve of order sfcOrder3D, via Skilling's transpose algorithm ("Programming
// the Hilbert curve", AIP 2004): first map the axes into the "transpose"
// Gray-code representation, then interleave the bits into a single index.
func hilbert3DKey(qx, qy, qz uint32) uint64 {
	x := [3]uint32{qx, qy, qz}

	// Axes → transpose (inverse undo of Skilling's TransposetoAxes).
	const m = uint32(1) << (sfcOrder3D - 1)
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < 3; i++ {
			if x[i]&q != 0 {
				x[0] ^= p // invert low bits of x
			} else {
				t := (x[0] ^ x[i]) & p // exchange low bits of x and x[i]
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < 3; i++ {
		x[i] ^= x[i-1]
	}
	t := uint32(0)
	for q := m; q > 1; q >>= 1 {
		if x[2]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < 3; i++ {
		x[i] ^= t
	}

	// Interleave: bit j of axis i lands at position 3j + (2-i), so x[0]
	// carries the most significant bit of every triple.
	var d uint64
	for j := sfcOrder3D - 1; j >= 0; j-- {
		for i := 0; i < 3; i++ {
			d = d<<1 | uint64(x[i]>>uint(j)&1)
		}
	}
	return d
}

// morton3DKey interleaves the bits of the three grid coordinates (Z-order).
func morton3DKey(qx, qy, qz uint32) uint64 {
	return spread3(qx)<<2 | spread3(qy)<<1 | spread3(qz)
}

// spread3 inserts two zero bits between consecutive bits of the low 21 bits
// (the classic Morton-3D bit spread).
func spread3(v uint32) uint64 {
	x := uint64(v) & 0x1fffff
	x = (x | x<<32) & 0x001f00000000ffff
	x = (x | x<<16) & 0x001f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}
