package dist

import (
	"testing"

	"repro/internal/gen"
)

func TestHilbertKeyAdjacency(t *testing.T) {
	// Consecutive curve positions are grid neighbors — the defining Hilbert
	// property, checked exhaustively on an 8x8 grid via a tiny re-walk.
	const order = 3
	type pt struct{ x, y uint32 }
	pos := make(map[uint64]pt)
	for x := uint32(0); x < 1<<order; x++ {
		for y := uint32(0); y < 1<<order; y++ {
			// Scale up to the full sfcOrder grid: multiply by the cell
			// size so the coarse cells stay Hilbert-ordered.
			const cell = uint32(1) << (sfcOrder - order)
			key := hilbertKey(x*cell, y*cell)
			pos[key] = pt{x, y}
		}
	}
	if len(pos) != 64 {
		t.Fatalf("got %d distinct keys for 64 cells", len(pos))
	}
	keys := make([]uint64, 0, 64)
	for k := range pos {
		keys = append(keys, k)
	}
	// The keys of coarse cells are spaced cell² apart; sort and walk.
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for i := 1; i < len(keys); i++ {
		a, b := pos[keys[i-1]], pos[keys[i]]
		dx, dy := int(a.x)-int(b.x), int(a.y)-int(b.y)
		if dx*dx+dy*dy != 1 {
			t.Fatalf("curve jump between (%d,%d) and (%d,%d)", a.x, a.y, b.x, b.y)
		}
	}
}

func TestSFCBeatsIndexRangesOnGrid(t *testing.T) {
	// The satellite claim: on a 2D grid, curve order keeps neighbors
	// together while the row-major index order cuts every row at range
	// boundaries.
	g := gen.Grid2D(64, 64)
	x, y := g.Coords()
	for _, pes := range []int{4, 7, 8, 16} {
		sfc := Hilbert(x, y, pes)
		rng := IndexRanges(g.NumNodes(), pes)
		ls, lr := EdgeLocality(g, sfc), EdgeLocality(g, rng)
		if ls <= lr {
			t.Errorf("pes=%d: Hilbert locality %.3f not better than index ranges %.3f", pes, ls, lr)
		}
	}
}

func TestSFCComparableToRCBOnRGG(t *testing.T) {
	// SFC is the cheap alternative: it should land within a few points of
	// RCB's locality on a mesh-like geometric graph, far above ranges.
	g := gen.RGG(12, 99)
	x, y := g.Coords()
	pes := 8
	lsfc := EdgeLocality(g, Hilbert(x, y, pes))
	lrcb := EdgeLocality(g, RCB(x, y, pes))
	if lsfc < 0.8*lrcb {
		t.Errorf("Hilbert locality %.3f far below RCB %.3f", lsfc, lrcb)
	}
}

func TestMortonBalanced(t *testing.T) {
	x, y := randomPoints(3000, 17)
	for _, pes := range []int{3, 8} {
		assign := Morton(x, y, pes)
		checkAssignment(t, assign, len(x), pes)
		counts := make([]int, pes)
		for _, pe := range assign {
			counts[pe]++
		}
		avg := float64(len(x)) / float64(pes)
		for pe, c := range counts {
			if ratio := float64(c) / avg; ratio > 1.05 || ratio < 0.95 {
				t.Errorf("pes=%d: PE %d holds %d nodes (%.2fx average)", pes, pe, c, ratio)
			}
		}
	}
}

func TestSFCDeterministicAndDegenerate(t *testing.T) {
	x, y := randomPoints(1000, 3)
	a, b := Hilbert(x, y, 6), Hilbert(x, y, 6)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("Hilbert not deterministic at node %d", v)
		}
	}
	// Degenerate axis (all points on a line) must still balance.
	line := make([]float64, 200)
	for i := range line {
		line[i] = float64(i)
	}
	flat := make([]float64, 200)
	assign := Hilbert(line, flat, 4)
	checkAssignment(t, assign, 200, 4)
	counts := make([]int, 4)
	for _, pe := range assign {
		counts[pe]++
	}
	for pe, c := range counts {
		if c != 50 {
			t.Errorf("line: PE %d got %d nodes, want 50", pe, c)
		}
	}
}
