package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The socket transport turns the Transport seam into real message passing:
// every PE holds one net.Conn to a central SocketHub, sends its per-
// destination batches as one length-delimited frame per superstep, and
// blocks until the hub has collected the step's frame from every PE and
// replied with the PE's inbox. The hub routes opaque bytes — it never
// decodes a Msg — so the message encoding is owned entirely by the
// pluggable BatchCodec (internal/wire provides the versioned default).
//
// Wire layout, client → hub, one frame per Exchange call:
//
//	uvarint pes                        number of destination segments
//	pes × { uvarint len, len bytes }   encoded batch for each destination
//
// hub → client, one frame per superstep:
//
//	uvarint len, len bytes             all senders' segments for this PE,
//	                                   concatenated in sender-PE order
//
// Because a batch encoding is defined as the plain concatenation of message
// encodings (see BatchCodec), the hub's byte-level concatenation IS the
// sender-ordered inbox — the same determinism contract the in-process
// Exchanger provides.

// socketMagic opens the per-connection hello of the socket protocol; the
// trailing '1' is the protocol generation.
const socketMagic = "KPT1"

// Connection roles announced in the hello. The hub serves RoleTransport
// connections; RoleControl is reserved for the coordinator/worker control
// protocol that shares a listener with the hub (cmd/kappa serve).
const (
	RoleTransport = 0
	RoleControl   = 1
)

// Hello is the fixed first frame of every socket-protocol connection.
type Hello struct {
	Role byte
	PE   int // -1 on control connections that request a PE assignment
}

// WriteHello writes the hello frame.
func WriteHello(w io.Writer, h Hello) error {
	var buf [4 + 1 + binary.MaxVarintLen64]byte
	n := copy(buf[:], socketMagic)
	buf[n] = h.Role
	n++
	n += binary.PutUvarint(buf[n:], uint64(h.PE+1))
	_, err := w.Write(buf[:n])
	return err
}

// ReadHello reads and validates a hello frame.
func ReadHello(r *bufio.Reader) (Hello, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return Hello{}, fmt.Errorf("dist: reading hello: %w", err)
	}
	if string(magic[:]) != socketMagic {
		return Hello{}, fmt.Errorf("dist: bad hello magic %q", magic[:])
	}
	role, err := r.ReadByte()
	if err != nil {
		return Hello{}, fmt.Errorf("dist: reading hello role: %w", err)
	}
	if role != RoleTransport && role != RoleControl {
		return Hello{}, fmt.Errorf("dist: unknown hello role %d", role)
	}
	pe1, err := binary.ReadUvarint(r)
	if err != nil {
		return Hello{}, fmt.Errorf("dist: reading hello PE: %w", err)
	}
	if pe1 > 1<<31 {
		return Hello{}, fmt.Errorf("dist: hello PE %d out of range", pe1)
	}
	return Hello{Role: role, PE: int(pe1) - 1}, nil
}

// BatchCodec encodes Msg batches for the socket transport. The contract that
// makes the hub codec-agnostic: the encoding of a batch is the plain
// concatenation of its messages' encodings (no count prefix, each message
// self-delimiting), so concatenating encoded batches yields a decodable
// batch. AppendBatch appends to dst and returns the extended slice;
// DecodeBatch appends every decoded message to into and returns it.
// internal/wire.MsgCodec is the versioned production implementation.
type BatchCodec interface {
	AppendBatch(dst []byte, msgs []Msg) []byte
	DecodeBatch(data []byte, into []Msg) ([]Msg, error)
}

// SocketError wraps the I/O failures of a SocketTransport. The Transport
// interface has no error returns (its in-process implementations cannot
// fail), so Exchange panics with a *SocketError when the connection dies;
// process entry points recover it at the superstep-sequence boundary
// (remote.Work's kernel goroutine), converting it back into an error.
//
//kappa:invariant recovered at the kernel-goroutine boundary by contract
type SocketError struct{ Err error }

func (e *SocketError) Error() string { return "dist: socket transport: " + e.Err.Error() }
func (e *SocketError) Unwrap() error { return e.Err }

// socketPE is one local PE's connection state.
type socketPE struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	enc  []byte // frame scratch, reused across supersteps
	in   []byte // inbox byte scratch
	msgs []Msg  // inbox decode scratch
}

// SocketTransport implements Transport over per-PE socket connections to a
// SocketHub. One transport can host any subset of the PEs: a worker process
// adds just its own PE, while a single-process test can add all of them and
// swap the transport in for the Exchanger unchanged. Exchange may be called
// concurrently for different local PEs (each PE has its own connection) but,
// as with every Transport, sequentially per PE.
//
// The inbox slice returned by Exchange is reused by that PE's next Exchange
// call; callers must consume it before the next superstep (both distributed
// pipeline stages do).
type SocketTransport struct {
	pes      int
	codec    BatchCodec
	stats    *TransportStats
	deadline time.Duration
	faults   *FaultSchedule

	mu    sync.Mutex
	conns map[int]*socketPE
}

var _ Transport = (*SocketTransport)(nil)

// NewSocketTransport returns a SocketTransport for a pes-PE system speaking
// codec on every connection; add the locally hosted PEs with AddPE or Dial.
func NewSocketTransport(pes int, codec BatchCodec) *SocketTransport {
	return &SocketTransport{pes: pes, codec: codec, conns: make(map[int]*socketPE)}
}

// SetStats attaches s as the transport's byte/frame counter: every Exchange
// adds its frame counts and payload bytes to s's entry for the calling PE.
// Call before the first Exchange; nil detaches.
func (t *SocketTransport) SetStats(s *TransportStats) { t.stats = s }

// SetIODeadline bounds every Exchange I/O operation: each superstep send and
// each inbox read must complete within d or Exchange panics with a
// *SocketError wrapping os.ErrDeadlineExceeded. Without a deadline a
// half-closed or stalled peer blocks the inbox read forever and the whole
// superstep barrier hangs with it; with one, the stall surfaces as an
// ordinary transport failure the caller's recovery path can handle. A
// superstep is known to be in flight the moment our own frame is sent, so —
// unlike the hub — the transport side can arm the deadline unconditionally.
// Zero disables (the default). Call before the first Exchange.
func (t *SocketTransport) SetIODeadline(d time.Duration) { t.deadline = d }

// SetFaults attaches a fault-injection schedule: every connection added
// after this call is wrapped per its "pe<N>" label (see FaultSchedule). Nil
// or empty schedules leave connections unwrapped. Call before AddPE/Dial.
func (t *SocketTransport) SetFaults(s *FaultSchedule) { t.faults = s }

// AddPE attaches conn as local PE pe's connection and sends the hello frame.
func (t *SocketTransport) AddPE(pe int, conn net.Conn) error {
	if pe < 0 || pe >= t.pes {
		return fmt.Errorf("dist: PE %d out of range [0, %d)", pe, t.pes)
	}
	conn = t.faults.Wrap(fmt.Sprintf("pe%d", pe), conn)
	if err := WriteHello(conn, Hello{Role: RoleTransport, PE: pe}); err != nil {
		return fmt.Errorf("dist: hello for PE %d: %w", pe, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.conns[pe]; dup {
		return fmt.Errorf("dist: PE %d already attached", pe)
	}
	t.conns[pe] = &socketPE{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}
	return nil
}

// Dial connects local PE pe to the hub at addr and attaches it.
func (t *SocketTransport) Dial(network, addr string, pe int) error {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return err
	}
	if err := t.AddPE(pe, conn); err != nil {
		conn.Close()
		return err
	}
	return nil
}

// Close closes every attached connection, which also lets the hub finish.
func (t *SocketTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var first error
	for _, c := range t.conns {
		if err := c.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.conns = make(map[int]*socketPE)
	return first
}

// PEs returns the number of PEs in the system (not just the local ones).
func (t *SocketTransport) PEs() int { return t.pes }

// Exchange implements Transport.Exchange for a locally hosted PE: encode
// out, frame it to the hub, block for the inbox frame, decode. Panics with
// *SocketError when the connection fails (see SocketError).
func (t *SocketTransport) Exchange(pe int, out [][]Msg) []Msg {
	t.mu.Lock()
	c := t.conns[pe]
	t.mu.Unlock()
	if c == nil {
		panic(&SocketError{fmt.Errorf("PE %d is not hosted by this transport", pe)})
	}

	// Encode the frame: uvarint pes, then one length-prefixed segment per
	// destination (missing tails of out are empty segments).
	buf := c.enc[:0]
	buf = binary.AppendUvarint(buf, uint64(t.pes))
	seg := c.in[:0] // reuse as segment scratch during encode
	for q := 0; q < t.pes; q++ {
		seg = seg[:0]
		if q < len(out) {
			seg = t.codec.AppendBatch(seg, out[q])
		}
		buf = binary.AppendUvarint(buf, uint64(len(seg)))
		buf = append(buf, seg...)
	}
	c.enc, c.in = buf, seg[:0]
	if t.deadline > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(t.deadline))
	}
	if _, err := c.bw.Write(buf); err != nil {
		panic(&SocketError{fmt.Errorf("PE %d superstep send: %w", pe, err)})
	}
	if err := c.bw.Flush(); err != nil {
		panic(&SocketError{fmt.Errorf("PE %d superstep send: %w", pe, err)})
	}

	// Inbox frame: uvarint length, then the sender-ordered concatenation of
	// every PE's batch for us. The deadline covers the whole frame: the hub
	// replies only once every PE's frame arrived, so a stalled peer anywhere
	// in the system surfaces here as a deadline expiry.
	if t.deadline > 0 {
		c.conn.SetReadDeadline(time.Now().Add(t.deadline))
	}
	nb, err := binary.ReadUvarint(c.br)
	if err != nil {
		panic(&SocketError{fmt.Errorf("PE %d superstep receive: %w", pe, err)})
	}
	if nb > 1<<32 {
		panic(&SocketError{fmt.Errorf("PE %d inbox frame of %d bytes", pe, nb)})
	}
	if uint64(cap(c.in)) < nb {
		c.in = make([]byte, nb)
	}
	c.in = c.in[:nb]
	if t.deadline > 0 {
		c.conn.SetReadDeadline(time.Now().Add(t.deadline))
	}
	if _, err := io.ReadFull(c.br, c.in); err != nil {
		panic(&SocketError{fmt.Errorf("PE %d superstep receive: %w", pe, err)})
	}
	c.msgs, err = t.codec.DecodeBatch(c.in, c.msgs[:0])
	if err != nil {
		panic(&SocketError{fmt.Errorf("PE %d inbox decode: %w", pe, err)})
	}
	if st := t.stats.PE(pe); st != nil {
		st.FramesSent.Add(1)
		st.BytesSent.Add(int64(len(buf)))
		st.FramesRecv.Add(1)
		st.BytesRecv.Add(int64(nb))
	}
	return c.msgs
}

// AllReduceOr implements Transport.AllReduceOr over one Exchange superstep.
func (t *SocketTransport) AllReduceOr(pe int, v bool) bool {
	return allReduceOr(t, pe, v)
}

// hubConn is one registered PE connection on the hub side.
type hubConn struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	segs [][]byte // this step's destination segments, reused
	buf  []byte   // backing storage for segs
}

// SocketHub is the superstep router of the socket transport: it owns one
// connection per PE, and per superstep reads every PE's frame (in PE order —
// the barrier), assembles each PE's inbox by concatenating the senders'
// segments in sender order, and writes the replies. It never decodes a
// message, so any BatchCodec works across it unchanged.
type SocketHub struct {
	pes      int
	stats    *TransportStats
	deadline time.Duration
	faults   *FaultSchedule
	mu       sync.Mutex
	conns    []*hubConn
	stopped  bool
}

// NewSocketHub returns a hub for pes PEs; attach connections with AddConn
// (or let Serve accept them) and then call Route.
func NewSocketHub(pes int) *SocketHub {
	return &SocketHub{pes: pes, conns: make([]*hubConn, pes)}
}

// SetStats attaches s as the hub's traffic counter. The hub records each
// PE's traffic from that PE's perspective: FramesSent/BytesSent are the
// frames the PE sent (which the hub read), FramesRecv/BytesRecv the inbox
// frames the hub wrote back, and Supersteps the routed superstep count —
// per-worker transport visibility without touching the worker processes.
// Call before Route; nil detaches.
func (h *SocketHub) SetStats(s *TransportStats) { h.stats = s }

// SetIODeadline bounds the hub's per-connection frame I/O. Unlike the
// transport side, the hub cannot arm a blanket read deadline: between
// supersteps it legitimately blocks for as long as the coordinator computes
// (initial partitioning, refinement), so only intra-superstep reads are
// bounded — the first PE's frame is awaited without deadline (that wait IS
// the idle period), and once it starts arriving the step is in flight and
// every remaining read and reply write must finish within d. Zero disables.
func (h *SocketHub) SetIODeadline(d time.Duration) { h.deadline = d }

// SetFaults attaches a fault-injection schedule: connections added after
// this call are wrapped per their "hub<N>" label. Connections registered via
// AddConnBuffered only get write-side injection (their reader predates the
// wrap). Call before AddConn/Serve.
func (h *SocketHub) SetFaults(s *FaultSchedule) { h.faults = s }

// Stop closes every attached connection, failing any in-flight or future
// superstep so a blocked Route call returns. The coordinator uses it to
// collapse the current contraction level after detecting a dead worker:
// every live worker's kernel aborts with a transport error instead of
// blocking forever on a barrier that can no longer complete.
func (h *SocketHub) Stop() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stopped = true
	for _, c := range h.conns {
		if c != nil {
			c.conn.Close()
		}
	}
}

// AddConn registers the transport connection of PE pe. The hello frame must
// already have been consumed by the caller (Serve does this itself).
func (h *SocketHub) AddConn(pe int, conn net.Conn) error {
	conn = h.faults.Wrap(fmt.Sprintf("hub%d", pe), conn)
	return h.addConn(pe, conn, bufio.NewReaderSize(conn, 1<<16))
}

// AddConnBuffered is AddConn for callers that consumed the hello through
// their own bufio.Reader (a shared accept loop): br's already-buffered bytes
// stay with the connection. Fault schedules only reach this connection's
// write side — br predates the wrap.
func (h *SocketHub) AddConnBuffered(pe int, conn net.Conn, br *bufio.Reader) error {
	return h.addConn(pe, h.faults.Wrap(fmt.Sprintf("hub%d", pe), conn), br)
}

func (h *SocketHub) addConn(pe int, conn net.Conn, br *bufio.Reader) error {
	if pe < 0 || pe >= h.pes {
		return fmt.Errorf("dist: hub: PE %d out of range [0, %d)", pe, h.pes)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.conns[pe] != nil {
		return fmt.Errorf("dist: hub: PE %d already connected", pe)
	}
	if h.stopped {
		conn.Close()
		return fmt.Errorf("dist: hub: stopped")
	}
	h.conns[pe] = &hubConn{
		conn: conn,
		br:   br,
		bw:   bufio.NewWriterSize(conn, 1<<16),
		segs: make([][]byte, h.pes),
	}
	return nil
}

// Serve accepts exactly pes transport connections from ln, reading each
// connection's hello, then routes supersteps until every PE disconnects.
// Use AddConn + Route instead when the listener is shared with other
// traffic.
func (h *SocketHub) Serve(ln net.Listener) error {
	for got := 0; got < h.pes; got++ {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("dist: hub accept: %w", err)
		}
		br := bufio.NewReaderSize(conn, 1<<16)
		hello, err := ReadHello(br)
		if err != nil {
			conn.Close()
			return err
		}
		if hello.Role != RoleTransport {
			conn.Close()
			return fmt.Errorf("dist: hub: unexpected role %d", hello.Role)
		}
		if err := h.AddConnBuffered(hello.PE, conn, br); err != nil {
			conn.Close()
			return err
		}
	}
	return h.Route()
}

// Route runs the superstep routing loop until every PE has disconnected
// (clean shutdown, nil) or a connection fails mid-superstep (error). Every
// PE must be attached before Route is called.
func (h *SocketHub) Route() error {
	for pe, c := range h.conns {
		if c == nil {
			return fmt.Errorf("dist: hub: PE %d never connected", pe)
		}
	}
	defer func() {
		for _, c := range h.conns {
			c.conn.Close()
		}
	}()
	for step := 0; ; step++ {
		closed := 0
		for pe, c := range h.conns {
			if h.deadline > 0 {
				if pe == 0 {
					// Idle wait: between supersteps the hub blocks here for
					// as long as the coordinator computes, so the first PE's
					// first byte is awaited without deadline. Once it is
					// buffered, the superstep is in flight and the rest of
					// the frame (and every other PE) is bounded.
					c.conn.SetReadDeadline(time.Time{})
					c.br.Peek(1) // block for the step's first byte; errors resurface in readFrame
				}
				c.conn.SetReadDeadline(time.Now().Add(h.deadline))
			}
			err := h.readFrame(c)
			if err == io.EOF && closed == pe {
				closed++
				continue
			}
			if err != nil {
				return fmt.Errorf("dist: hub: PE %d superstep %d: %w", pe, step, err)
			}
			if closed > 0 {
				return fmt.Errorf("dist: hub: PE %d disconnected at superstep %d but PE %d kept going", closed-1, step, pe)
			}
			if st := h.stats.PE(pe); st != nil {
				st.FramesSent.Add(1)
				st.BytesSent.Add(int64(len(c.buf)))
				st.Supersteps.Add(1)
			}
		}
		if closed == h.pes {
			return nil // all PEs finished their superstep sequence
		}
		// Reply: each PE's inbox is the sender-ordered concatenation of the
		// segments addressed to it.
		for q, c := range h.conns {
			var scratch [binary.MaxVarintLen64]byte
			total := 0
			for _, s := range h.conns {
				total += len(s.segs[q])
			}
			if h.deadline > 0 {
				c.conn.SetWriteDeadline(time.Now().Add(h.deadline))
			}
			c.bw.Write(scratch[:binary.PutUvarint(scratch[:], uint64(total))])
			for _, s := range h.conns {
				c.bw.Write(s.segs[q])
			}
			if err := c.bw.Flush(); err != nil {
				return fmt.Errorf("dist: hub: replying to PE %d at superstep %d: %w", q, step, err)
			}
			if st := h.stats.PE(q); st != nil {
				st.FramesRecv.Add(1)
				st.BytesRecv.Add(int64(total))
			}
		}
	}
}

// readFrame reads one exchange frame from c into c.segs. Returns io.EOF only
// for a clean close before the frame's first byte.
func (h *SocketHub) readFrame(c *hubConn) error {
	nseg, err := binary.ReadUvarint(c.br)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return err
	}
	if int(nseg) != h.pes {
		return fmt.Errorf("frame addresses %d PEs, hub has %d", nseg, h.pes)
	}
	total := 0
	lens := make([]int, h.pes)
	// Segment lengths are interleaved with payloads in the frame; read
	// sequentially, growing one backing buffer for all segments.
	c.buf = c.buf[:0]
	for q := 0; q < h.pes; q++ {
		l, err := binary.ReadUvarint(c.br)
		if err != nil {
			return unexpectedEOF(err)
		}
		if l > 1<<32 {
			return fmt.Errorf("segment of %d bytes", l)
		}
		lens[q] = int(l)
		start := total
		total += int(l)
		if cap(c.buf) < total {
			nb := make([]byte, total, max(2*cap(c.buf), total))
			copy(nb, c.buf)
			c.buf = nb
		} else {
			c.buf = c.buf[:total]
		}
		if _, err := io.ReadFull(c.br, c.buf[start:total]); err != nil {
			return unexpectedEOF(err)
		}
	}
	off := 0
	for q := 0; q < h.pes; q++ {
		c.segs[q] = c.buf[off : off+lens[q]]
		off += lens[q]
	}
	return nil
}

// unexpectedEOF upgrades io.EOF mid-frame to io.ErrUnexpectedEOF.
func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
