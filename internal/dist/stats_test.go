package dist

import (
	"sync"
	"testing"
)

// TestMeteredCounts drives a metered Exchanger through supersteps from every
// PE and checks the per-PE accounting: messages out, messages in, superstep
// count (including the AllReduceOr vote), and a non-negative barrier clock.
func TestMeteredCounts(t *testing.T) {
	const pes = 3
	stats := NewTransportStats(pes)
	tr := Metered(NewExchanger(pes), stats)
	if tr.PEs() != pes {
		t.Fatalf("PEs() = %d, want %d", tr.PEs(), pes)
	}
	var wg sync.WaitGroup
	for pe := 0; pe < pes; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			// Each PE sends one message to every peer (not itself).
			out := make([][]Msg, pes)
			for q := 0; q < pes; q++ {
				if q != pe {
					out[q] = []Msg{{A: int32(pe), B: int32(q)}}
				}
			}
			in := tr.Exchange(pe, out)
			if len(in) != pes-1 {
				t.Errorf("PE %d received %d msgs, want %d", pe, len(in), pes-1)
			}
			if !tr.AllReduceOr(pe, pe == 0) {
				t.Errorf("PE %d: OR vote must be true", pe)
			}
		}(pe)
	}
	wg.Wait()
	for pe := 0; pe < pes; pe++ {
		st := stats.PE(pe)
		// Supersteps: the explicit Exchange plus AllReduceOr's.
		if got := st.Supersteps.Load(); got != 2 {
			t.Errorf("PE %d supersteps = %d, want 2", pe, got)
		}
		// The data superstep sent pes-1 msgs; the vote sends one to every PE
		// including itself, and receives pes votes.
		if got := st.MsgsSent.Load(); got != int64(pes-1+pes) {
			t.Errorf("PE %d msgs sent = %d, want %d", pe, got, pes-1+pes)
		}
		if got := st.MsgsRecv.Load(); got != int64(pes-1+pes) {
			t.Errorf("PE %d msgs recv = %d, want %d", pe, got, pes-1+pes)
		}
		if st.BarrierNanos.Load() < 0 {
			t.Errorf("PE %d negative barrier time", pe)
		}
	}
	totals := stats.Totals()
	if totals.MsgsSent != totals.MsgsRecv {
		t.Fatalf("conservation violated: sent %d, recv %d", totals.MsgsSent, totals.MsgsRecv)
	}
}

// TestMeteredNilIdentity pins the no-observer contract: nil stats must
// return the transport unwrapped — zero overhead when observability is off.
func TestMeteredNilIdentity(t *testing.T) {
	e := NewExchanger(2)
	if got := Metered(e, nil); got != Transport(e) {
		t.Fatal("Metered(t, nil) must be the identity")
	}
}

// TestStatsNilSafe pins the nil-safety of the sink: instrumentation sites
// count unconditionally through nil receivers and out-of-range PEs.
func TestStatsNilSafe(t *testing.T) {
	var s *TransportStats
	if s.PEs() != 0 || s.PE(0) != nil || s.Snapshot() != nil {
		t.Fatal("nil TransportStats must degrade to zeros")
	}
	s2 := NewTransportStats(2)
	if s2.PE(-1) != nil || s2.PE(2) != nil {
		t.Fatal("out-of-range PE must be nil")
	}
	var zero PETotals
	if s2.Totals() != zero {
		t.Fatal("fresh stats must total zero")
	}
}
