package dist

import (
	"testing"

	"repro/internal/rng"
)

// randomPoints returns n deterministic pseudo-random points in the unit
// square.
func randomPoints(n int, seed uint64) (x, y []float64) {
	r := rng.New(seed)
	x = make([]float64, n)
	y = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = r.Float64()
		y[i] = r.Float64()
	}
	return x, y
}

func TestRCBBalanceNonPowerOfTwo(t *testing.T) {
	for _, pes := range []int{2, 3, 4, 5, 6, 7, 8, 12, 13} {
		for _, seed := range []uint64{1, 2, 3} {
			x, y := randomPoints(4000, seed)
			assign := RCB(x, y, pes)
			checkAssignment(t, assign, len(x), pes)
			counts := make([]int, pes)
			for _, pe := range assign {
				counts[pe]++
			}
			avg := float64(len(x)) / float64(pes)
			for pe, c := range counts {
				if ratio := float64(c) / avg; ratio > 1.05 || ratio < 0.95 {
					t.Errorf("pes=%d seed=%d: PE %d holds %d nodes (%.2fx average)", pes, seed, pe, c, ratio)
				}
			}
		}
	}
}

func TestRCBDeterministic(t *testing.T) {
	for _, seed := range []uint64{7, 8, 9} {
		x, y := randomPoints(2000, seed)
		a := RCB(x, y, 5)
		b := RCB(x, y, 5)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("seed=%d: RCB not deterministic at node %d: %d vs %d", seed, v, a[v], b[v])
			}
		}
	}
}

func TestRCBWeighted(t *testing.T) {
	// A heavy cluster in one corner: weighted bisection must move the cut
	// toward it so that PE weights stay balanced.
	x, y := randomPoints(3000, 42)
	w := make([]int64, len(x))
	for i := range w {
		w[i] = 1
		if x[i] < 0.25 && y[i] < 0.25 {
			w[i] = 20
		}
	}
	pes := 4
	assign := RCBWeighted(x, y, w, pes)
	checkAssignment(t, assign, len(x), pes)
	sums := make([]int64, pes)
	var total int64
	for v, pe := range assign {
		sums[pe] += w[v]
		total += w[v]
	}
	avg := float64(total) / float64(pes)
	for pe, s := range sums {
		if ratio := float64(s) / avg; ratio > 1.15 || ratio < 0.85 {
			t.Errorf("PE %d has weight %d (%.2fx average)", pe, s, ratio)
		}
	}
}

func TestRCBDegenerate(t *testing.T) {
	// n < pes: all PEs in range, every node its own PE.
	x, y := randomPoints(3, 11)
	assign := RCB(x, y, 8)
	checkAssignment(t, assign, 3, 8)

	// Identical coordinates: ties break by id, split must still balance.
	xc := make([]float64, 100)
	yc := make([]float64, 100)
	assign = RCB(xc, yc, 4)
	checkAssignment(t, assign, 100, 4)
	counts := make([]int, 4)
	for _, pe := range assign {
		counts[pe]++
	}
	for pe, c := range counts {
		if c != 25 {
			t.Errorf("identical coords: PE %d got %d nodes, want 25", pe, c)
		}
	}

	// Zero-weight subset must not panic or leave PEs out of range.
	x, y = randomPoints(60, 5)
	checkAssignment(t, RCBWeighted(x, y, make([]int64, 60), 7), 60, 7)

	// pes=1 and empty input.
	if got := RCB(nil, nil, 4); len(got) != 0 {
		t.Errorf("empty input: got %v", got)
	}
	for _, pe := range RCB(x, y, 1) {
		if pe != 0 {
			t.Fatal("pes=1 must map everything to PE 0")
		}
	}
}

func TestRCBEveryPEPopulated(t *testing.T) {
	for _, pes := range []int{2, 3, 5, 9, 16} {
		x, y := randomPoints(500, 33)
		assign := RCB(x, y, pes)
		counts := make([]int, pes)
		for _, pe := range assign {
			counts[pe]++
		}
		for pe, c := range counts {
			if c == 0 {
				t.Errorf("pes=%d: PE %d received no nodes", pes, pe)
			}
		}
	}
}
