package dist

import (
	"testing"

	"repro/internal/rng"
)

// randomPoints returns n deterministic pseudo-random points in the unit
// square.
func randomPoints(n int, seed uint64) (x, y []float64) {
	r := rng.New(seed)
	x = make([]float64, n)
	y = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = r.Float64()
		y[i] = r.Float64()
	}
	return x, y
}

func TestRCBBalanceNonPowerOfTwo(t *testing.T) {
	for _, pes := range []int{2, 3, 4, 5, 6, 7, 8, 12, 13} {
		for _, seed := range []uint64{1, 2, 3} {
			x, y := randomPoints(4000, seed)
			assign := RCB(x, y, pes)
			checkAssignment(t, assign, len(x), pes)
			counts := make([]int, pes)
			for _, pe := range assign {
				counts[pe]++
			}
			avg := float64(len(x)) / float64(pes)
			for pe, c := range counts {
				if ratio := float64(c) / avg; ratio > 1.05 || ratio < 0.95 {
					t.Errorf("pes=%d seed=%d: PE %d holds %d nodes (%.2fx average)", pes, seed, pe, c, ratio)
				}
			}
		}
	}
}

func TestRCBDeterministic(t *testing.T) {
	for _, seed := range []uint64{7, 8, 9} {
		x, y := randomPoints(2000, seed)
		a := RCB(x, y, 5)
		b := RCB(x, y, 5)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("seed=%d: RCB not deterministic at node %d: %d vs %d", seed, v, a[v], b[v])
			}
		}
	}
}

func TestRCBWeighted(t *testing.T) {
	// A heavy cluster in one corner: weighted bisection must move the cut
	// toward it so that PE weights stay balanced.
	x, y := randomPoints(3000, 42)
	w := make([]int64, len(x))
	for i := range w {
		w[i] = 1
		if x[i] < 0.25 && y[i] < 0.25 {
			w[i] = 20
		}
	}
	pes := 4
	assign := RCBWeighted(x, y, w, pes)
	checkAssignment(t, assign, len(x), pes)
	sums := make([]int64, pes)
	var total int64
	for v, pe := range assign {
		sums[pe] += w[v]
		total += w[v]
	}
	avg := float64(total) / float64(pes)
	for pe, s := range sums {
		if ratio := float64(s) / avg; ratio > 1.15 || ratio < 0.85 {
			t.Errorf("PE %d has weight %d (%.2fx average)", pe, s, ratio)
		}
	}
}

func TestRCBDegenerate(t *testing.T) {
	// n < pes: all PEs in range, every node its own PE.
	x, y := randomPoints(3, 11)
	assign := RCB(x, y, 8)
	checkAssignment(t, assign, 3, 8)

	// Identical coordinates: ties break by id, split must still balance.
	xc := make([]float64, 100)
	yc := make([]float64, 100)
	assign = RCB(xc, yc, 4)
	checkAssignment(t, assign, 100, 4)
	counts := make([]int, 4)
	for _, pe := range assign {
		counts[pe]++
	}
	for pe, c := range counts {
		if c != 25 {
			t.Errorf("identical coords: PE %d got %d nodes, want 25", pe, c)
		}
	}

	// Zero-weight subset must not panic or leave PEs out of range.
	x, y = randomPoints(60, 5)
	checkAssignment(t, RCBWeighted(x, y, make([]int64, 60), 7), 60, 7)

	// pes=1 and empty input.
	if got := RCB(nil, nil, 4); len(got) != 0 {
		t.Errorf("empty input: got %v", got)
	}
	for _, pe := range RCB(x, y, 1) {
		if pe != 0 {
			t.Fatal("pes=1 must map everything to PE 0")
		}
	}
}

func TestRCBEveryPEPopulated(t *testing.T) {
	for _, pes := range []int{2, 3, 5, 9, 16} {
		x, y := randomPoints(500, 33)
		assign := RCB(x, y, pes)
		counts := make([]int, pes)
		for _, pe := range assign {
			counts[pe]++
		}
		for pe, c := range counts {
			if c == 0 {
				t.Errorf("pes=%d: PE %d received no nodes", pes, pe)
			}
		}
	}
}

// TestRCBDims2DEquivalence checks that the generalized widest-dimension
// bisection reproduces the classic 2D RCB exactly when given two dimensions.
func TestRCBDims2DEquivalence(t *testing.T) {
	for _, pes := range []int{2, 5, 8, 13} {
		x, y := randomPoints(3000, 7)
		a := RCBWeighted(x, y, nil, pes)
		b := RCBWeightedDims([][]float64{x, y}, nil, pes)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("pes=%d: assignment differs at node %d: %d vs %d", pes, v, a[v], b[v])
			}
		}
	}
}

// TestRCB3DSplitsWidestAxis gives the third dimension by far the largest
// extent; the first bisection must cut it, so with two PEs the assignment
// separates low z from high z exactly.
func TestRCB3DSplitsWidestAxis(t *testing.T) {
	x, y := randomPoints(2000, 9)
	z := make([]float64, len(x))
	r := rng.New(11)
	for i := range z {
		z[i] = 100 * r.Float64()
	}
	assign := RCBWeightedDims([][]float64{x, y, z}, nil, 2)
	// Every PE-0 node must have smaller z than every PE-1 node.
	max0, min1 := -1.0, 101.0
	var n0 int
	for v, pe := range assign {
		if pe == 0 {
			n0++
			if z[v] > max0 {
				max0 = z[v]
			}
		} else if z[v] < min1 {
			min1 = z[v]
		}
	}
	if max0 > min1 {
		t.Fatalf("bisection did not cut the z axis: max z on PE0 %.3f > min z on PE1 %.3f", max0, min1)
	}
	if n0 < 900 || n0 > 1100 {
		t.Fatalf("unbalanced bisection: %d of %d on PE 0", n0, len(assign))
	}
}

// TestRCB3DBalance runs 3D RCB across PE counts and checks every PE is
// populated and node counts stay near-balanced.
func TestRCB3DBalance(t *testing.T) {
	x, y := randomPoints(4000, 3)
	z := make([]float64, len(x))
	r := rng.New(5)
	for i := range z {
		z[i] = r.Float64()
	}
	for _, pes := range []int{2, 3, 7, 8, 16} {
		assign := RCBWeightedDims([][]float64{x, y, z}, nil, pes)
		counts := make([]int, pes)
		for _, pe := range assign {
			if pe < 0 || int(pe) >= pes {
				t.Fatalf("pes=%d: assignment out of range: %d", pes, pe)
			}
			counts[pe]++
		}
		ideal := len(assign) / pes
		for pe, c := range counts {
			if c == 0 {
				t.Fatalf("pes=%d: PE %d empty", pes, pe)
			}
			if c < ideal*7/10 || c > ideal*13/10 {
				t.Errorf("pes=%d: PE %d holds %d nodes (ideal %d)", pes, pe, c, ideal)
			}
		}
	}
}
