package dist

import (
	"testing"

	"repro/internal/gen"
)

// TestAssignGrid3DUsesRCB closes the former 2D-only gap: a Grid3D instance
// carries 3D coordinates, so the auto and rcb strategies must run real
// geometric bisection — visibly better edge locality than the index-range
// fallback the instance used to get — and still balance node counts.
func TestAssignGrid3DUsesRCB(t *testing.T) {
	g := gen.Grid3D(6, 12, 24) // anisotropic: the widest axis is z
	const pes = 8
	rcb := Assign(g, StrategyAuto, pes)
	ranges := WeightedRanges(nodeWeights(g), pes)

	if lr, lg := EdgeLocality(g, rcb), EdgeLocality(g, ranges); lr < lg {
		t.Fatalf("RCB locality %.4f worse than ranges %.4f", lr, lg)
	}
	if im := Imbalance(g, rcb, pes); im > 1.05 {
		t.Fatalf("RCB imbalance %.4f", im)
	}

	// The first bisection must cut the z axis (extent 24 vs 6 and 12): the
	// two PE groups {0..3} and {4..7} separate along z.
	_, _, z := g.Coords3()
	maxLow, minHigh := -1.0, 1e18
	for v, pe := range rcb {
		if pe < 4 {
			if z[v] > maxLow {
				maxLow = z[v]
			}
		} else if z[v] < minHigh {
			minHigh = z[v]
		}
	}
	if maxLow > minHigh {
		t.Fatalf("first cut not on z: max z of low group %.1f > min z of high group %.1f", maxLow, minHigh)
	}
}
