// Package dist distributes graph nodes over processing elements (PEs), the
// prepartitioning layer of §3.3 of the paper ("Engineering a Scalable High
// Quality Graph Partitioner", Holtgrewe, Sanders, Schulz, IPDPS 2010).
//
// Before the parallel coarsening phase can match in parallel, every node must
// live on some PE; the quality of that assignment decides how much of the
// matching work is PE-local (cheap) versus in the cross-PE gap graph
// (expensive). The package implements the paper's two assignments and one
// cheaper geometric alternative:
//
//   - IndexRanges / WeightedRanges — contiguous index ranges, the fallback of
//     §3.3 when no geometry is available. Zero-cost, balance is exact, but
//     edge locality is whatever the input numbering happens to provide.
//   - RCB / RCBWeighted — recursive coordinate bisection over node
//     coordinates, the paper's choice for geometric instances (rgg, Delaunay,
//     street networks): recursively split the longest axis at the weighted
//     median. Handles non-power-of-two PE counts by splitting PE groups
//     proportionally.
//   - Hilbert / Morton — space-filling-curve orderings, a cheaper geometric
//     alternative not in the paper: sort nodes along the curve once and cut
//     the order into weighted ranges. One sort instead of a sort per
//     bisection level, locality close to RCB on mesh-like inputs.
//
// Strategy and Assign select between them; EdgeLocality and Imbalance make
// the strategies comparable; Extract materializes each PE's local subgraph
// plus its ghost (halo) layer with local↔global ID maps; and Exchanger is
// the channel-backed bulk-synchronous message layer (one mailbox per PE)
// over which the PEs trade ghost-node state during distributed coarsening —
// together the building blocks of the PE-local contraction phase in
// internal/matching and internal/coarsen.
package dist

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// Strategy names a node-to-PE distribution strategy.
type Strategy int

const (
	// StrategyAuto picks RCB when the graph carries coordinates and
	// weighted index ranges otherwise — the paper's §3.3 behavior.
	StrategyAuto Strategy = iota
	// StrategyRanges assigns contiguous, node-weight-balanced index ranges.
	StrategyRanges
	// StrategyRCB is recursive coordinate bisection (requires coordinates;
	// falls back to ranges without them).
	StrategyRCB
	// StrategySFC orders nodes along a Hilbert space-filling curve and cuts
	// the order into weighted ranges (requires coordinates; falls back to
	// ranges without them).
	StrategySFC
)

// String returns the flag-level name of the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyRanges:
		return "ranges"
	case StrategyRCB:
		return "rcb"
	case StrategySFC:
		return "sfc"
	default:
		return fmt.Sprintf("dist.Strategy(%d)", int(s))
	}
}

// ParseStrategy parses a flag-level strategy name, case-insensitively.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(name) {
	case "auto", "":
		return StrategyAuto, nil
	case "ranges", "index":
		return StrategyRanges, nil
	case "rcb":
		return StrategyRCB, nil
	case "sfc", "hilbert":
		return StrategySFC, nil
	default:
		return StrategyAuto, fmt.Errorf("dist: unknown strategy %q (want auto|ranges|rcb|sfc)", name)
	}
}

// Assign distributes the nodes of g over pes PEs with the given strategy and
// returns the PE of every node. Geometric strategies fall back to weighted
// index ranges when g has no coordinates, so Assign never fails. Node weights
// are respected by every strategy.
func Assign(g *graph.Graph, s Strategy, pes int) []int32 {
	n := g.NumNodes()
	if pes <= 1 {
		return make([]int32, n)
	}
	switch s {
	case StrategyRCB, StrategyAuto:
		if g.HasCoords() {
			// All available dimensions: real 3D bisection for 3D inputs.
			return RCBWeightedDims(g.CoordSlices(), nodeWeights(g), pes)
		}
	case StrategySFC:
		if g.CoordDims() == 3 {
			x, y, z := g.Coords3()
			return Hilbert3DWeighted(x, y, z, nodeWeights(g), pes)
		}
		if g.HasCoords() {
			x, y := g.Coords()
			return HilbertWeighted(x, y, nodeWeights(g), pes)
		}
	}
	return WeightedRanges(nodeWeights(g), pes)
}

// nodeWeights copies the node weights of g into a slice.
func nodeWeights(g *graph.Graph) []int64 {
	w := make([]int64, g.NumNodes())
	for v := range w {
		w[v] = g.NodeWeight(int32(v))
	}
	return w
}
