package dist

import "sync"

// Transport is the message-passing seam of distributed coarsening: the
// bulk-synchronous superstep operations that matching.DistributedBounded and
// coarsen.ContractDistributed are written against. Every PE participating in
// a superstep calls Exchange exactly once; the call doubles as a barrier and
// returns the PE's inbox ordered by sender PE with each sender's messages in
// send order — the property that makes distributed coarsening byte-identical
// under a fixed seed regardless of goroutine scheduling.
//
// The channel-backed Exchanger is the in-process default; LockstepTransport
// is a second, mutex-based implementation proving the seam is real. A future
// RPC or MPI backend implements the same three calls and becomes a drop-in
// replacement for the whole distributed contraction phase.
type Transport interface {
	// PEs returns the number of connected processing elements.
	PEs() int
	// Exchange performs one superstep for PE pe: out[q] is delivered to PE
	// q (out may be shorter than PEs(); missing tails count as empty), and
	// the call blocks until every PE's batch for this superstep is in. The
	// returned inbox is ordered by sender PE, each sender's messages in
	// send order.
	Exchange(pe int, out [][]Msg) []Msg
	// AllReduceOr runs one superstep that ORs v across all PEs; every PE
	// receives the same result (the termination vote of iterated rounds).
	AllReduceOr(pe int, v bool) bool
}

// Exchanger is the default Transport.
var _ Transport = (*Exchanger)(nil)

// LockstepTransport is a second in-process Transport implementation: a
// strict mutex/condvar barrier with per-superstep staging buffers instead of
// per-PE mailbox channels. It exists to prove the Transport seam carries the
// whole distributed contraction phase — swapping it for the Exchanger must
// not change a single byte of the result — and as the simplest template for
// an out-of-process backend.
type LockstepTransport struct {
	pes  int
	mu   sync.Mutex
	cond *sync.Cond
	next []uint64 // per-PE next superstep index
	step map[uint64]*lockstepRound
}

// lockstepRound is the staging buffer of one superstep.
type lockstepRound struct {
	out  [][][]Msg // by sender PE
	got  int       // senders arrived
	read int       // receivers done
}

// NewLockstepTransport returns a LockstepTransport connecting pes PEs.
func NewLockstepTransport(pes int) *LockstepTransport {
	t := &LockstepTransport{
		pes:  pes,
		next: make([]uint64, pes),
		step: make(map[uint64]*lockstepRound),
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// PEs returns the number of connected PEs.
func (t *LockstepTransport) PEs() int { return t.pes }

// Exchange implements Transport.Exchange with a strict barrier: the last PE
// to arrive wakes everyone, each receiver assembles its inbox in sender
// order, and the round's buffers are released once every PE has read.
func (t *LockstepTransport) Exchange(pe int, out [][]Msg) []Msg {
	t.mu.Lock()
	defer t.mu.Unlock()
	step := t.next[pe]
	t.next[pe]++
	r := t.step[step]
	if r == nil {
		r = &lockstepRound{out: make([][][]Msg, t.pes)}
		t.step[step] = r
	}
	r.out[pe] = out
	r.got++
	if r.got == t.pes {
		t.cond.Broadcast()
	}
	for r.got < t.pes {
		t.cond.Wait()
	}
	total := 0
	for q := 0; q < t.pes; q++ {
		if pe < len(r.out[q]) {
			total += len(r.out[q][pe])
		}
	}
	in := make([]Msg, 0, total)
	for q := 0; q < t.pes; q++ {
		if pe < len(r.out[q]) {
			in = append(in, r.out[q][pe]...)
		}
	}
	r.read++
	if r.read == t.pes {
		delete(t.step, step)
	}
	return in
}

// AllReduceOr implements Transport.AllReduceOr over one Exchange superstep.
func (t *LockstepTransport) AllReduceOr(pe int, v bool) bool {
	return allReduceOr(t, pe, v)
}

// allReduceOr is the shared OR-vote superstep: broadcast a flag to every PE
// and OR the received flags.
func allReduceOr(t Transport, pe int, v bool) bool {
	var w int64
	if v {
		w = 1
	}
	out := make([][]Msg, t.PEs())
	for q := range out {
		out[q] = []Msg{{Kind: MsgFlag, W: w}}
	}
	any := false
	for _, m := range t.Exchange(pe, out) {
		if m.W != 0 {
			any = true
		}
	}
	return any
}
