// Fault-injection and I/O-deadline tests for the socket backend. Like the
// socket tests, these live in the external test package to use wire.MsgCodec.
package dist_test

import (
	"bufio"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/wire"
)

// unixPair returns two ends of a fresh unix-socket connection.
func unixPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "pair.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			t.Error(err)
			accepted <- nil
			return
		}
		accepted <- c
	}()
	client, err = net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	server = <-accepted
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// exchangeErr runs one Exchange and converts its *SocketError panic (the
// Transport interface has no error returns) back into an error.
func exchangeErr(tr *dist.SocketTransport, pe int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			se, ok := r.(*dist.SocketError)
			if !ok {
				panic(r)
			}
			err = se
		}
	}()
	tr.Exchange(pe, make([][]dist.Msg, tr.PEs()))
	return nil
}

// TestSocketTransportDeadlineStalledHub pins the half-closed-peer bug: a hub
// that accepts the connection but never replies used to block Exchange's
// inbox read forever. With SetIODeadline the stall surfaces promptly as a
// *SocketError wrapping os.ErrDeadlineExceeded.
func TestSocketTransportDeadlineStalledHub(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "hub.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	held := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		held <- c // accept, then go silent: never read, never reply
	}()

	tr := dist.NewSocketTransport(1, wire.MsgCodec{})
	tr.SetIODeadline(50 * time.Millisecond)
	if err := tr.Dial("unix", sock, 0); err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	start := time.Now()
	err = exchangeErr(tr, 0)
	if err == nil {
		t.Fatal("Exchange succeeded against a hub that never replied")
	}
	var se *dist.SocketError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *SocketError", err)
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("error %v does not wrap os.ErrDeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	if c := <-held; c != nil {
		c.Close()
	}
}

// TestSocketHubDeadlineStalledPE covers the hub side: once a superstep is in
// flight (PE 0's frame arrived), a PE that never sends its frame trips the
// hub's intra-superstep deadline and Route returns instead of hanging.
func TestSocketHubDeadlineStalledPE(t *testing.T) {
	const pes = 2
	sock := filepath.Join(t.TempDir(), "hub.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	hub := dist.NewSocketHub(pes)
	hub.SetIODeadline(100 * time.Millisecond)
	tr := dist.NewSocketTransport(pes, wire.MsgCodec{})
	tr.SetIODeadline(time.Second)
	errc := make(chan error, 1)
	go func() {
		for got := 0; got < pes; got++ {
			conn, err := ln.Accept()
			if err != nil {
				errc <- err
				return
			}
			br := bufio.NewReader(conn)
			hello, err := dist.ReadHello(br)
			if err != nil {
				errc <- err
				return
			}
			if err := hub.AddConnBuffered(hello.PE, conn, br); err != nil {
				errc <- err
				return
			}
		}
		errc <- hub.Route()
	}()
	for pe := 0; pe < pes; pe++ {
		if err := tr.Dial("unix", sock, pe); err != nil {
			t.Fatal(err)
		}
	}
	defer tr.Close()

	// PE 0 exchanges; PE 1 stays silent. The hub reads PE 0's frame (the idle
	// wait ends), then PE 1's read deadline expires and Route fails.
	peErr := make(chan error, 1)
	go func() { peErr <- exchangeErr(tr, 0) }()
	if err := <-errc; err == nil {
		t.Fatal("Route returned nil with PE 1 silent mid-superstep")
	} else if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Route error %v does not wrap os.ErrDeadlineExceeded", err)
	}
	if err := <-peErr; err == nil {
		t.Fatal("PE 0's Exchange succeeded though the hub aborted the superstep")
	}
}

// TestFaultScheduleWrapIdentity: empty schedules and non-matching labels
// leave the connection unwrapped — production runs pay nothing.
func TestFaultScheduleWrapIdentity(t *testing.T) {
	client, _ := unixPair(t)
	var nilSched *dist.FaultSchedule
	if got := nilSched.Wrap("pe0", client); got != client {
		t.Fatal("nil schedule wrapped the connection")
	}
	if got := dist.NewFaultSchedule().Wrap("pe0", client); got != client {
		t.Fatal("empty schedule wrapped the connection")
	}
	sched := dist.NewFaultSchedule(dist.FaultRule{Conn: "ctrl", Op: dist.OpRead, Nth: 1, Action: dist.ActKill})
	if got := sched.Wrap("pe0", client); got != client {
		t.Fatal("schedule wrapped a connection whose label matches no rule")
	}
	if got := sched.Wrap("ctrl", client); got == client {
		t.Fatal("schedule did not wrap a matching connection")
	}
	if n := sched.Injected(); n != 0 {
		t.Fatalf("wrapping alone injected %d faults", n)
	}
}

// TestFaultKillOneShot: a kill rule fires on exactly its Nth write, exactly
// once per schedule — a fresh connection wrapped afterwards (recovery
// re-dialing) is untouched even though its op counter restarts.
func TestFaultKillOneShot(t *testing.T) {
	client, server := unixPair(t)
	sched := dist.NewFaultSchedule(dist.FaultRule{Conn: "pe0", Op: dist.OpWrite, Nth: 2, Action: dist.ActKill})
	wrapped := sched.Wrap("pe0", client)
	if _, err := wrapped.Write([]byte("a")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := wrapped.Write([]byte("b")); err == nil {
		t.Fatal("write 2 survived the kill rule")
	}
	if n := sched.Injected(); n != 1 {
		t.Fatalf("Injected() = %d, want 1", n)
	}
	server.Close()

	// Recovery: same label, fresh connection, op counter restarts at 1 — but
	// the rule is spent, so write 2 passes.
	client2, server2 := unixPair(t)
	wrapped2 := sched.Wrap("pe0", client2)
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 2)
		io.ReadFull(server2, buf)
		done <- buf
	}()
	if _, err := wrapped2.Write([]byte("c")); err != nil {
		t.Fatalf("replacement write 1: %v", err)
	}
	if _, err := wrapped2.Write([]byte("d")); err != nil {
		t.Fatalf("replacement write 2 re-tripped the one-shot rule: %v", err)
	}
	if got := <-done; string(got) != "cd" {
		t.Fatalf("replacement carried %q, want \"cd\"", got)
	}
	if n := sched.Injected(); n != 1 {
		t.Fatalf("Injected() = %d after recovery, want still 1", n)
	}
}

// TestFaultDropDupDelay covers the remaining write actions byte-for-byte.
func TestFaultDropDupDelay(t *testing.T) {
	client, server := unixPair(t)
	sched, err := dist.ParseFaultSchedule("pe3:write:2:drop; pe3:write:4:dup; pe3:write:5:delay:1ms")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := sched.Wrap("pe3", client)
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 5)
		io.ReadFull(server, buf)
		done <- buf
	}()
	for _, s := range []string{"a", "b", "c", "d", "e"} {
		if _, err := wrapped.Write([]byte(s)); err != nil {
			t.Fatalf("write %q: %v", s, err)
		}
	}
	// "b" dropped, "d" duplicated, "e" delayed but delivered.
	if got := <-done; string(got) != "acdde" {
		t.Fatalf("peer saw %q, want \"acdde\"", got)
	}
	if n := sched.Injected(); n != 3 {
		t.Fatalf("Injected() = %d, want 3", n)
	}
}

// TestFaultReadKill: read-side kills fail the blocked reader.
func TestFaultReadKill(t *testing.T) {
	client, server := unixPair(t)
	sched := dist.NewFaultSchedule(dist.FaultRule{Op: dist.OpRead, Nth: 1, Action: dist.ActKill})
	wrapped := sched.Wrap("anything", client) // empty Conn matches every label
	go server.Write([]byte("x"))
	if _, err := wrapped.Read(make([]byte, 1)); err == nil {
		t.Fatal("read survived the kill rule")
	}
	if n := sched.Injected(); n != 1 {
		t.Fatalf("Injected() = %d, want 1", n)
	}
}

// TestFaultScheduleParse checks the clause grammar: round-trip through rule
// String()s and rejection of malformed clauses.
func TestFaultScheduleParse(t *testing.T) {
	sched, err := dist.ParseFaultSchedule("ctrl:read:3:kill;pe0:write:2:delay:50ms; *:write:9:drop ;;hub1:write:1:dup")
	if err != nil {
		t.Fatal(err)
	}
	if sched.Empty() {
		t.Fatal("parsed schedule is empty")
	}
	want := []dist.FaultRule{
		{Conn: "ctrl", Op: dist.OpRead, Nth: 3, Action: dist.ActKill},
		{Conn: "pe0", Op: dist.OpWrite, Nth: 2, Action: dist.ActDelay, Delay: 50 * time.Millisecond},
		{Op: dist.OpWrite, Nth: 9, Action: dist.ActDrop},
		{Conn: "hub1", Op: dist.OpWrite, Nth: 1, Action: dist.ActDup},
	}
	if got := sched.Rules(); !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed rules %v, want %v", got, want)
	}
	wantStr := []string{"ctrl:read:3:kill", "pe0:write:2:delay:50ms", "*:write:9:drop", "hub1:write:1:dup"}
	for i, r := range sched.Rules() {
		if got := r.String(); got != wantStr[i] {
			t.Fatalf("rule %d renders %q, want %q", i, got, wantStr[i])
		}
	}

	empty, err := dist.ParseFaultSchedule("")
	if err != nil {
		t.Fatal(err)
	}
	if !empty.Empty() {
		t.Fatal("empty string parsed to a non-empty schedule")
	}

	for _, bad := range []string{
		"ctrl:read:3",         // missing action
		"ctrl:peek:3:kill",    // unknown op
		"ctrl:read:zero:kill", // bad index
		"ctrl:read:0:kill",    // index must be 1-based
		"ctrl:read:3:melt",    // unknown action
		"ctrl:read:3:delay",   // delay without duration
		"ctrl:read:3:delay:x", // bad duration
	} {
		if _, err := dist.ParseFaultSchedule(bad); err == nil {
			t.Fatalf("clause %q parsed without error", bad)
		}
	}
}
