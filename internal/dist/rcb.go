package dist

import "sort"

// RCB distributes nodes with 2D coordinates over pes PEs by recursive
// coordinate bisection with unit node weights; see RCBWeighted.
func RCB(x, y []float64, pes int) []int32 {
	return RCBWeighted(x, y, nil, pes)
}

// RCBWeighted is recursive coordinate bisection over 2D coordinates; see
// RCBWeightedDims for the algorithm.
func RCBWeighted(x, y []float64, w []int64, pes int) []int32 {
	return RCBWeightedDims([][]float64{x, y}, w, pes)
}

// RCBWeightedDims is recursive coordinate bisection (§3.3) over any number
// of coordinate dimensions: the current node set is split at the weighted
// median of its widest dimension (the one with the largest extent; the
// lowest dimension index wins ties), the two halves recurse on the two
// halves of the PE group. Non-power-of-two PE counts are handled by
// splitting a p-PE group into ⌊p/2⌋ and ⌈p/2⌉ PEs and placing the cut at
// the matching weight fraction. w == nil means unit weights. The result is
// deterministic: ties in coordinates are broken by node id. With two
// dimensions this is exactly the classic 2D RCB; 3D instances (e.g. Grid3D)
// get real geometric bisection instead of an index-range fallback.
//
//kappa:invariant the distributor only selects RCB for graphs that carry coordinates
func RCBWeightedDims(dims [][]float64, w []int64, pes int) []int32 {
	if len(dims) == 0 {
		panic("dist: RCBWeightedDims needs at least one coordinate dimension")
	}
	n := len(dims[0])
	assign := make([]int32, n)
	if pes <= 1 || n == 0 {
		return assign
	}
	wt := func(v int32) int64 {
		if w == nil {
			return 1
		}
		return w[v]
	}
	nodes := make([]int32, n)
	var total int64
	for v := range nodes {
		nodes[v] = int32(v)
		total += wt(int32(v))
	}
	var rec func(nodes []int32, weight int64, pe0, p int)
	rec = func(nodes []int32, weight int64, pe0, p int) {
		if p <= 1 || len(nodes) <= 1 {
			for _, v := range nodes {
				assign[v] = int32(pe0)
			}
			return
		}
		pl := p / 2
		pr := p - pl

		// Widest dimension of the bounding box of the current set.
		coord, widest := dims[0], extent(dims[0], nodes)
		for _, c := range dims[1:] {
			if e := extent(c, nodes); e > widest {
				coord, widest = c, e
			}
		}
		sort.Slice(nodes, func(i, j int) bool {
			a, b := nodes[i], nodes[j]
			if coord[a] != coord[b] {
				return coord[a] < coord[b]
			}
			return a < b
		})

		// Weighted median at fraction pl/p: the split index s is the first
		// position whose prefix weight reaches weight·pl/p; an all-zero
		// subset splits by node count instead. Clamping keeps both sides
		// non-empty so no PE starves while nodes remain.
		s, leftWeight := 0, int64(0)
		if weight == 0 {
			s = len(nodes) * pl / p
		} else {
			target := weight * int64(pl) / int64(p)
			for s < len(nodes) && leftWeight+wt(nodes[s])/2 < target {
				leftWeight += wt(nodes[s])
				s++
			}
		}
		lo, hi := minSide(pl, len(nodes), pr), len(nodes)-minSide(pr, len(nodes), pl)
		for s < lo {
			leftWeight += wt(nodes[s])
			s++
		}
		for s > hi {
			s--
			leftWeight -= wt(nodes[s])
		}
		rec(nodes[:s], leftWeight, pe0, pl)
		rec(nodes[s:], weight-leftWeight, pe0+pl, pr)
	}
	rec(nodes, total, 0, pes)
	return assign
}

// extent returns the coordinate spread of the node set along one dimension.
func extent(c []float64, nodes []int32) float64 {
	lo, hi := c[nodes[0]], c[nodes[0]]
	for _, v := range nodes[1:] {
		if c[v] < lo {
			lo = c[v]
		}
		if c[v] > hi {
			hi = c[v]
		}
	}
	return hi - lo
}

// minSide returns the minimum number of nodes the p-PE side of a split must
// receive so that no PE stays empty while nodes remain: p when the set is
// large enough, otherwise whatever is left after the other side took its
// share.
func minSide(p, n, otherP int) int {
	if n >= p+otherP {
		return p
	}
	if n > otherP {
		return n - otherP
	}
	return 0
}
