package dist

import (
	"sync/atomic"
	"time"
)

// PEStats counts one PE's transport traffic. All fields are atomic, so the
// counters can be read (scraped by a metrics endpoint) while supersteps are
// in flight. Message and superstep counts come from the Metered wrapper,
// which sees every Transport uniformly; byte and frame counts exist only at
// the socket layer and are filled in by SocketTransport/SocketHub when a
// stats sink is attached with SetStats.
type PEStats struct {
	MsgsSent   atomic.Int64 // messages handed to Exchange (all destinations)
	MsgsRecv   atomic.Int64 // messages in returned inboxes
	BytesSent  atomic.Int64 // payload bytes written to the socket
	BytesRecv  atomic.Int64 // payload bytes read from the socket
	FramesSent atomic.Int64 // superstep frames written
	FramesRecv atomic.Int64 // superstep frames read
	Supersteps atomic.Int64 // Exchange calls (AllReduceOr counts as one)
	// BarrierNanos is the time the PE spent blocked inside Exchange — the
	// superstep barrier plus, on socket transports, encode/decode and I/O.
	BarrierNanos atomic.Int64
}

// PETotals is a plain-value snapshot of one PE's counters.
type PETotals struct {
	MsgsSent, MsgsRecv     int64
	BytesSent, BytesRecv   int64
	FramesSent, FramesRecv int64
	Supersteps             int64
	BarrierNanos           int64
}

// TransportStats aggregates per-PE transport counters for one run (or one
// long-lived transport). Safe for concurrent use.
type TransportStats struct {
	pe []PEStats
}

// NewTransportStats returns zeroed counters for pes PEs.
func NewTransportStats(pes int) *TransportStats {
	return &TransportStats{pe: make([]PEStats, pes)}
}

// PEs returns the number of tracked PEs.
func (s *TransportStats) PEs() int {
	if s == nil {
		return 0
	}
	return len(s.pe)
}

// PE returns PE pe's counters, or nil when pe is out of range (or s is nil),
// so instrumentation sites can count unconditionally.
func (s *TransportStats) PE(pe int) *PEStats {
	if s == nil || pe < 0 || pe >= len(s.pe) {
		return nil
	}
	return &s.pe[pe]
}

// Snapshot returns a plain-value copy of every PE's counters.
func (s *TransportStats) Snapshot() []PETotals {
	if s == nil {
		return nil
	}
	out := make([]PETotals, len(s.pe))
	for i := range s.pe {
		p := &s.pe[i]
		out[i] = PETotals{
			MsgsSent:     p.MsgsSent.Load(),
			MsgsRecv:     p.MsgsRecv.Load(),
			BytesSent:    p.BytesSent.Load(),
			BytesRecv:    p.BytesRecv.Load(),
			FramesSent:   p.FramesSent.Load(),
			FramesRecv:   p.FramesRecv.Load(),
			Supersteps:   p.Supersteps.Load(),
			BarrierNanos: p.BarrierNanos.Load(),
		}
	}
	return out
}

// Totals returns the sum over all PEs.
func (s *TransportStats) Totals() PETotals {
	var t PETotals
	for _, p := range s.Snapshot() {
		t.MsgsSent += p.MsgsSent
		t.MsgsRecv += p.MsgsRecv
		t.BytesSent += p.BytesSent
		t.BytesRecv += p.BytesRecv
		t.FramesSent += p.FramesSent
		t.FramesRecv += p.FramesRecv
		t.Supersteps += p.Supersteps
		t.BarrierNanos += p.BarrierNanos
	}
	return t
}

// Metered wraps t so every superstep is counted into s: messages in and out,
// superstep count, and the time each PE spends blocked in Exchange. The
// wrapper works for any Transport (Exchanger, LockstepTransport,
// SocketTransport alike) and adds two atomic adds and one clock read per
// superstep — nothing when s is nil, in which case t is returned unwrapped.
func Metered(t Transport, s *TransportStats) Transport {
	if s == nil {
		return t
	}
	return &meteredTransport{t: t, s: s}
}

type meteredTransport struct {
	t Transport
	s *TransportStats
}

// PEs returns the wrapped transport's PE count.
func (m *meteredTransport) PEs() int { return m.t.PEs() }

// Exchange counts the superstep and delegates.
func (m *meteredTransport) Exchange(pe int, out [][]Msg) []Msg {
	sent := 0
	for _, b := range out {
		sent += len(b)
	}
	start := time.Now()
	in := m.t.Exchange(pe, out)
	if st := m.s.PE(pe); st != nil {
		st.BarrierNanos.Add(time.Since(start).Nanoseconds())
		st.Supersteps.Add(1)
		st.MsgsSent.Add(int64(sent))
		st.MsgsRecv.Add(int64(len(in)))
	}
	return in
}

// AllReduceOr runs the shared OR-vote superstep through the metered
// Exchange, so the vote's messages are counted like any other superstep.
func (m *meteredTransport) AllReduceOr(pe int, v bool) bool {
	return allReduceOr(m, pe, v)
}
