package dist

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestEdgeLocalityBounds(t *testing.T) {
	g := gen.Grid2D(10, 10)
	// Everything on one PE: locality 1.
	if l := EdgeLocality(g, make([]int32, g.NumNodes())); l != 1 {
		t.Errorf("single PE locality = %v, want 1", l)
	}
	// Checkerboard on a grid: every edge crosses, locality 0.
	assign := make([]int32, g.NumNodes())
	for v := range assign {
		i, j := v/10, v%10
		assign[v] = int32((i + j) % 2)
	}
	if l := EdgeLocality(g, assign); l != 0 {
		t.Errorf("checkerboard locality = %v, want 0", l)
	}
	if c := CutWeight(g, assign); c != int64(g.NumEdges()) {
		t.Errorf("checkerboard cut = %d, want %d", c, g.NumEdges())
	}
}

func TestMetricsDegenerate(t *testing.T) {
	// Edgeless graph: locality defined as 1, imbalance finite.
	edgeless, err := graph.FromCSR([]int32{0, 0, 0, 0}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l := EdgeLocality(edgeless, make([]int32, 3)); l != 1 {
		t.Errorf("edgeless locality = %v, want 1", l)
	}

	// n < pes: imbalance reflects empty PEs but stays finite.
	assign := IndexRanges(3, 8)
	if b := Imbalance(edgeless, assign, 8); b < 1 {
		t.Errorf("n<pes imbalance = %v, want >= 1", b)
	}

	// Zero-weight nodes: total weight 0 reports 1.0, not NaN.
	zero, err := graph.FromCSR([]int32{0, 1, 2}, []int32{1, 0}, []int64{1, 1}, []int64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if b := Imbalance(zero, []int32{0, 1}, 2); b != 1 {
		t.Errorf("zero-weight imbalance = %v, want 1", b)
	}

	// pes <= 0 guarded.
	if b := Imbalance(zero, []int32{0, 0}, 0); b != 1 {
		t.Errorf("pes=0 imbalance = %v, want 1", b)
	}

	// Empty graph.
	empty, err := graph.FromCSR([]int32{0}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l := EdgeLocality(empty, nil); l != 1 {
		t.Errorf("empty locality = %v, want 1", l)
	}
	if b := Imbalance(empty, nil, 4); b != 1 {
		t.Errorf("empty imbalance = %v, want 1", b)
	}
}

func TestImbalanceMatchesBlockWeights(t *testing.T) {
	g := gen.RGG(10, 7)
	x, y := g.Coords()
	pes := 6
	assign := RCB(x, y, pes)
	weights := BlockWeights(g, assign, pes)
	var total, max int64
	for _, w := range weights {
		total += w
		if w > max {
			max = w
		}
	}
	if total != g.TotalNodeWeight() {
		t.Errorf("block weights sum to %d, graph weighs %d", total, g.TotalNodeWeight())
	}
	want := float64(max) * float64(pes) / float64(total)
	if got := Imbalance(g, assign, pes); got != want {
		t.Errorf("imbalance = %v, want %v", got, want)
	}
	// RCB on an RGG should be essentially balanced.
	if got := Imbalance(g, assign, pes); got > 1.05 {
		t.Errorf("RCB imbalance %v too high", got)
	}
}

func TestAssignStrategies(t *testing.T) {
	withCoords := gen.Grid2D(20, 20)
	noCoords := gen.Grid3D(6, 6, 6)
	for _, s := range []Strategy{StrategyAuto, StrategyRanges, StrategyRCB, StrategySFC} {
		for _, g := range []*graph.Graph{withCoords, noCoords} {
			assign := Assign(g, s, 5)
			checkAssignment(t, assign, g.NumNodes(), 5)
		}
		// pes=1 short-circuits to all-zero.
		for _, pe := range Assign(withCoords, s, 1) {
			if pe != 0 {
				t.Fatalf("%v: pes=1 must assign PE 0", s)
			}
		}
	}
	// Geometric strategies must actually use the geometry: better locality
	// than ranges on the grid.
	lr := EdgeLocality(withCoords, Assign(withCoords, StrategyRanges, 8))
	for _, s := range []Strategy{StrategyRCB, StrategySFC} {
		if l := EdgeLocality(withCoords, Assign(withCoords, s, 8)); l <= lr {
			t.Errorf("%v locality %.3f not better than ranges %.3f", s, l, lr)
		}
	}
}

func TestParseStrategyRoundTrip(t *testing.T) {
	for _, s := range []Strategy{StrategyAuto, StrategyRanges, StrategyRCB, StrategySFC} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy must reject unknown names")
	}
	// Case-insensitive: the CLI and the facade accept the same names.
	if got, err := ParseStrategy("RCB"); err != nil || got != StrategyRCB {
		t.Errorf("ParseStrategy(\"RCB\") = %v, %v", got, err)
	}
}
