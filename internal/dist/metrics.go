package dist

import "repro/internal/graph"

// EdgeLocality returns the fraction of total edge weight whose endpoints
// live on the same PE — the quantity a good prepartition maximizes, since
// only local edges can be matched without the gap-graph phase (§3.3). A
// graph without edges has locality 1.
func EdgeLocality(g *graph.Graph, assign []int32) float64 {
	var local, total int64
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		adj, wts := g.Adj(v), g.AdjWeights(v)
		for i, u := range adj {
			if u <= v {
				continue // count each undirected edge once
			}
			total += wts[i]
			if assign[v] == assign[u] {
				local += wts[i]
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(local) / float64(total)
}

// CutWeight returns the total weight of edges crossing PE boundaries, each
// undirected edge counted once.
func CutWeight(g *graph.Graph, assign []int32) int64 {
	var cut int64
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		adj, wts := g.Adj(v), g.AdjWeights(v)
		for i, u := range adj {
			if u > v && assign[v] != assign[u] {
				cut += wts[i]
			}
		}
	}
	return cut
}

// BlockWeights returns the total node weight assigned to each PE.
func BlockWeights(g *graph.Graph, assign []int32, pes int) []int64 {
	w := make([]int64, pes)
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		w[assign[v]] += g.NodeWeight(v)
	}
	return w
}

// Imbalance returns max PE weight divided by the average PE weight (1.0 is
// perfect balance, like part.Partition.Imbalance). Degenerate inputs — no
// PEs, or zero total weight as with n = 0 or all-zero node weights — report
// 1.0 rather than dividing by zero.
func Imbalance(g *graph.Graph, assign []int32, pes int) float64 {
	if pes <= 0 {
		return 1
	}
	weights := BlockWeights(g, assign, pes)
	var total, max int64
	for _, w := range weights {
		total += w
		if w > max {
			max = w
		}
	}
	if total == 0 {
		return 1
	}
	avg := float64(total) / float64(pes)
	return float64(max) / avg
}
