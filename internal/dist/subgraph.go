package dist

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// Subgraph is one PE's share of a distributed graph: the nodes assigned to
// the PE ("owned", local ids [0, NumOwned)), followed by the ghost (halo)
// layer — every foreign node adjacent to an owned node — with both directions
// of the id mapping. Edges between two ghost nodes are not materialized; they
// belong to other PEs. This is the building block a genuinely distributed
// coarsening phase exchanges: each PE coarsens its owned nodes and reads
// ghost state written by the owners.
type Subgraph struct {
	PE    int32        // the PE this subgraph belongs to
	Local *graph.Graph // owned nodes then ghosts, weights and coords copied

	NumOwned      int     // owned nodes are local ids [0, NumOwned)
	LocalToGlobal []int32 // len = Local.NumNodes()
	GhostOwner    []int32 // owner PE of each ghost, parallel to local ids NumOwned...

	globalToLocal map[int32]int32
}

// NewSubgraph reassembles a Subgraph from its parts — the constructor the
// wire codec uses after shipping a shard to another process. local's nodes
// must be ordered owned-first; localToGlobal must have one entry per local
// node and ghostOwner one per ghost. The global→local index is rebuilt here.
func NewSubgraph(pe int32, local *graph.Graph, numOwned int, localToGlobal, ghostOwner []int32) (*Subgraph, error) {
	if numOwned < 0 || numOwned > local.NumNodes() {
		return nil, fmt.Errorf("dist: owned count %d out of range [0, %d]", numOwned, local.NumNodes())
	}
	if len(localToGlobal) != local.NumNodes() {
		return nil, fmt.Errorf("dist: id map has %d entries for %d local nodes", len(localToGlobal), local.NumNodes())
	}
	if len(ghostOwner) != local.NumNodes()-numOwned {
		return nil, fmt.Errorf("dist: ghost owner list has %d entries for %d ghosts", len(ghostOwner), local.NumNodes()-numOwned)
	}
	s := &Subgraph{
		PE:            pe,
		Local:         local,
		NumOwned:      numOwned,
		LocalToGlobal: localToGlobal,
		GhostOwner:    ghostOwner,
		globalToLocal: make(map[int32]int32, len(localToGlobal)),
	}
	for lv, gv := range localToGlobal {
		if _, dup := s.globalToLocal[gv]; dup {
			return nil, fmt.Errorf("dist: global id %d appears twice in shard", gv)
		}
		s.globalToLocal[gv] = int32(lv)
	}
	return s, nil
}

// NumGhosts returns the size of the halo layer.
func (s *Subgraph) NumGhosts() int { return s.Local.NumNodes() - s.NumOwned }

// IsGhost reports whether the local id names a halo node.
func (s *Subgraph) IsGhost(local int32) bool { return int(local) >= s.NumOwned }

// ToGlobal maps a local id (owned or ghost) to the global node id.
func (s *Subgraph) ToGlobal(local int32) int32 { return s.LocalToGlobal[local] }

// ToLocal maps a global id to the local id; ok is false when the node is
// neither owned by this PE nor in its ghost layer.
func (s *Subgraph) ToLocal(global int32) (local int32, ok bool) {
	local, ok = s.globalToLocal[global]
	return local, ok
}

// BoundaryPeers returns, for every owned node, the distinct owner PEs of
// its ghost neighbors in ascending order (nil for interior nodes) — the PEs
// that hold the node as a ghost and therefore must receive its state during
// ghost exchange.
func (s *Subgraph) BoundaryPeers() [][]int32 {
	peers := make([][]int32, s.NumOwned)
	for lv := int32(0); lv < int32(s.NumOwned); lv++ {
		for _, lu := range s.Local.Adj(lv) {
			if int(lu) < s.NumOwned {
				continue
			}
			q := s.GhostOwner[int(lu)-s.NumOwned]
			found := false
			for _, p := range peers[lv] {
				if p == q {
					found = true
					break
				}
			}
			if !found {
				peers[lv] = append(peers[lv], q)
			}
		}
		// Insertion sort: peer lists are a handful of PEs long.
		p := peers[lv]
		for i := 1; i < len(p); i++ {
			for j := i; j > 0 && p[j] < p[j-1]; j-- {
				p[j], p[j-1] = p[j-1], p[j]
			}
		}
	}
	return peers
}

// Extract builds PE pe's local subgraph from the global graph and a
// node-to-PE assignment. All edges incident to an owned node are kept —
// owned–owned edges once, owned–ghost edges once — so cut edges appear in
// the subgraphs of both endpoint owners.
func Extract(g *graph.Graph, assign []int32, pe int32) *Subgraph {
	var owned []int32
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if assign[v] == pe {
			owned = append(owned, v)
		}
	}
	return extractOwned(g, assign, pe, owned)
}

// ExtractOwned is Extract with the PE's owned-node list precomputed (in
// ascending global id order, as one bucketing pass over assign produces
// it). It lets a caller that extracts many PEs sequentially — the shard
// store writer, which bounds how many subgraphs are alive at once — pay
// the O(n) ownership scan once instead of once per PE, while producing
// bytes identical to Extract and ExtractAll.
func ExtractOwned(g *graph.Graph, assign []int32, pe int32, owned []int32) *Subgraph {
	return extractOwned(g, assign, pe, owned)
}

// extractOwned builds the subgraph from a precomputed owned-node list (in
// ascending global id order).
func extractOwned(g *graph.Graph, assign []int32, pe int32, owned []int32) *Subgraph {
	s := &Subgraph{PE: pe, globalToLocal: make(map[int32]int32, len(owned))}

	// Owned nodes first, in global id order for determinism.
	for _, v := range owned {
		s.globalToLocal[v] = int32(len(s.LocalToGlobal))
		s.LocalToGlobal = append(s.LocalToGlobal, v)
	}
	s.NumOwned = len(s.LocalToGlobal)

	// Ghost layer: foreign neighbors of owned nodes, in discovery order
	// (owned nodes are scanned in global id order, so this too is
	// deterministic).
	for li := 0; li < s.NumOwned; li++ {
		for _, u := range g.Adj(s.LocalToGlobal[li]) {
			if assign[u] != pe {
				if _, seen := s.globalToLocal[u]; !seen {
					s.globalToLocal[u] = int32(len(s.LocalToGlobal))
					s.LocalToGlobal = append(s.LocalToGlobal, u)
					s.GhostOwner = append(s.GhostOwner, assign[u])
				}
			}
		}
	}

	b := graph.NewBuilder(len(s.LocalToGlobal))
	for li, v := range s.LocalToGlobal {
		b.SetNodeWeight(int32(li), g.NodeWeight(v))
	}
	if g.CoordDims() == 3 {
		for li, v := range s.LocalToGlobal {
			cx, cy, cz := g.Coord3(v)
			b.SetCoord3(int32(li), cx, cy, cz)
		}
	} else if g.HasCoords() {
		for li, v := range s.LocalToGlobal {
			cx, cy := g.Coord(v)
			b.SetCoord(int32(li), cx, cy)
		}
	}
	for li := 0; li < s.NumOwned; li++ {
		v := s.LocalToGlobal[li]
		adj, wts := g.Adj(v), g.AdjWeights(v)
		for i, u := range adj {
			lu := s.globalToLocal[u]
			// Add owned–owned edges from the smaller endpoint only; an
			// owned–ghost edge is seen exactly once (from the owned side).
			if int(lu) < s.NumOwned && lu <= int32(li) {
				continue
			}
			b.AddEdge(int32(li), lu, wts[i])
		}
	}
	s.Local = b.Build()
	return s
}

// ExtractAll extracts every PE's subgraph concurrently. Ownership lists are
// bucketed in one shared pass so the total cost is O(n + Σ local work), not
// pes full scans.
func ExtractAll(g *graph.Graph, assign []int32, pes int) []*Subgraph {
	ownedOf := make([][]int32, pes)
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		ownedOf[assign[v]] = append(ownedOf[assign[v]], v)
	}
	out := make([]*Subgraph, pes)
	var wg sync.WaitGroup
	for pe := 0; pe < pes; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			out[pe] = extractOwned(g, assign, int32(pe), ownedOf[pe])
		}(pe)
	}
	wg.Wait()
	return out
}
