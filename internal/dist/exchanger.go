package dist

import "sort"

// MsgKind tags the payload of a Msg exchanged between PEs during distributed
// coarsening.
type MsgKind uint8

const (
	// MsgGhostState publishes the matching state of a boundary node to the
	// PEs that hold it as a ghost: A is the global node id, R the rating of
	// its current local match (0 when unmatched), and W is non-zero when the
	// node is finally matched across a cut and no longer accepts proposals.
	MsgGhostState MsgKind = iota
	// MsgProposal proposes to match the cut edge {A, B}: A is the proposing
	// (sender-owned) global node id, B the receiver-owned global node id, R
	// the sender-side rating of the edge.
	MsgProposal
	// MsgCoarseID publishes the coarse global id B of the fine global node A
	// (coarse-numbering updates during contraction stitching).
	MsgCoarseID
	// MsgCount broadcasts a per-PE tally in W (e.g. the number of coarse
	// nodes a PE owns, for the prefix sum of the global coarse numbering).
	MsgCount
	// MsgFlag carries a single boolean (W != 0) for all-reduce rounds.
	MsgFlag
)

// Msg is one unit of ghost information exchanged between PEs. The field
// meaning depends on Kind; unused fields are zero.
type Msg struct {
	Kind MsgKind
	A, B int32
	W    int64
	R    float64
}

// batch is everything one PE sends to one mailbox in one superstep.
type batch struct {
	from int
	step uint64
	msgs []Msg
}

// Exchanger is channel-backed bulk-synchronous message passing between the
// PE goroutines of distributed coarsening: one mailbox (buffered channel)
// per PE. Every PE must call Exchange once per superstep; the call doubles
// as a barrier, because each mailbox receives exactly one batch from every
// PE (empty batches included) before Exchange returns.
//
// The inbox is returned ordered by sender PE, and each sender's messages
// keep their send order, so receivers observe a schedule-independent,
// deterministic message sequence — the property that makes distributed
// coarsening byte-reproducible under a fixed seed.
type Exchanger struct {
	pes   int
	boxes []chan batch
	// Per-receiver state, touched only by that PE's goroutine: the current
	// superstep number and batches that arrived one step early (a sender may
	// run at most one superstep ahead before it blocks waiting for everyone
	// else's batches, so a single stash level suffices).
	step  []uint64
	early [][]batch
}

// NewExchanger returns an Exchanger connecting pes PEs.
func NewExchanger(pes int) *Exchanger {
	e := &Exchanger{
		pes:   pes,
		boxes: make([]chan batch, pes),
		step:  make([]uint64, pes),
		early: make([][]batch, pes),
	}
	for i := range e.boxes {
		// Room for every sender's current batch plus a one-step-ahead batch,
		// so no Exchange call ever blocks on a send.
		e.boxes[i] = make(chan batch, 2*pes)
	}
	return e
}

// PEs returns the number of connected PEs.
func (e *Exchanger) PEs() int { return e.pes }

// Exchange performs one superstep for PE pe: out[q] is delivered to PE q's
// mailbox (out may be shorter than PEs(); missing tails count as empty), and
// the PE's own inbox — the concatenation of every sender's batch in sender
// order — is returned. All PEs must call Exchange the same number of times;
// the call blocks until every PE's batch for this superstep has arrived.
func (e *Exchanger) Exchange(pe int, out [][]Msg) []Msg {
	step := e.step[pe]
	e.step[pe]++
	for q := 0; q < e.pes; q++ {
		var msgs []Msg
		if q < len(out) {
			msgs = out[q]
		}
		e.boxes[q] <- batch{from: pe, step: step, msgs: msgs}
	}
	// Adopt batches stashed by the previous superstep, then receive until one
	// batch per sender for this step is in; later-step arrivals are stashed.
	batches := e.early[pe][:0:0]
	batches = append(batches, e.early[pe]...)
	e.early[pe] = e.early[pe][:0]
	for len(batches) < e.pes {
		b := <-e.boxes[pe]
		if b.step != step {
			e.early[pe] = append(e.early[pe], b)
			continue
		}
		batches = append(batches, b)
	}
	sort.Slice(batches, func(i, j int) bool { return batches[i].from < batches[j].from })
	total := 0
	for _, b := range batches {
		total += len(b.msgs)
	}
	in := make([]Msg, 0, total)
	for _, b := range batches {
		in = append(in, b.msgs...)
	}
	return in
}

// AllReduceOr runs one superstep that ORs v across all PEs; every PE
// receives the same result. It is the termination vote of the iterated
// boundary-matching rounds.
func (e *Exchanger) AllReduceOr(pe int, v bool) bool {
	return allReduceOr(e, pe, v)
}
