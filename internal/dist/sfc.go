package dist

import "sort"

// sfcOrder is the quantization depth of the space-filling curves: coordinates
// are snapped to a 2^sfcOrder × 2^sfcOrder grid, giving 32-bit curve keys.
const sfcOrder = 16

// Hilbert distributes nodes with 2D coordinates over pes PEs by Hilbert
// space-filling-curve ordering with unit node weights; see HilbertWeighted.
func Hilbert(x, y []float64, pes int) []int32 {
	return HilbertWeighted(x, y, nil, pes)
}

// HilbertWeighted sorts the nodes by their position along a Hilbert curve
// through the bounding box and cuts the sorted order into pes node-weight
// balanced ranges. Compared to RCB this needs a single sort instead of one
// per bisection level, and the curve's locality keeps most mesh edges inside
// a range; it is the "cheap geometric" alternative to §3.3's RCB. w == nil
// means unit weights. Deterministic: key ties break by node id.
func HilbertWeighted(x, y []float64, w []int64, pes int) []int32 {
	return sfcAssign(x, y, w, pes, hilbertKey)
}

// Morton is like Hilbert but orders by Morton (Z-order) keys: marginally
// cheaper per node, slightly worse locality at the quadrant seams. Kept as a
// comparison point for the SFC family.
func Morton(x, y []float64, pes int) []int32 {
	return sfcAssign(x, y, nil, pes, mortonKey)
}

// sfcAssign quantizes coordinates, sorts node ids by curve key, and reuses
// the weighted-range splitter on the curve order.
func sfcAssign(x, y []float64, w []int64, pes int, key func(qx, qy uint32) uint64) []int32 {
	n := len(x)
	assign := make([]int32, n)
	if pes <= 1 || n == 0 {
		return assign
	}
	qx := quantize(x)
	qy := quantize(y)
	keys := make([]uint64, n)
	order := make([]int32, n)
	for v := 0; v < n; v++ {
		keys[v] = key(qx[v], qy[v])
		order[v] = int32(v)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if keys[a] != keys[b] {
			return keys[a] < keys[b]
		}
		return a < b
	})
	ow := make([]int64, n)
	for i, v := range order {
		if w == nil {
			ow[i] = 1
		} else {
			ow[i] = w[v]
		}
	}
	ranges := WeightedRanges(ow, pes)
	for i, v := range order {
		assign[v] = ranges[i]
	}
	return assign
}

// quantize maps coordinates linearly onto the [0, 2^sfcOrder) integer grid.
// A degenerate axis (all values equal) maps to 0.
func quantize(c []float64) []uint32 {
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	q := make([]uint32, len(c))
	if hi == lo {
		return q
	}
	scale := float64((uint32(1)<<sfcOrder)-1) / (hi - lo)
	for i, v := range c {
		q[i] = uint32((v - lo) * scale)
	}
	return q
}

// hilbertKey converts grid coordinates to the distance along the Hilbert
// curve of order sfcOrder (the classical rotate-and-flip formulation).
func hilbertKey(qx, qy uint32) uint64 {
	var d uint64
	for s := uint32(1) << (sfcOrder - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if qx&s > 0 {
			rx = 1
		}
		if qy&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant so the curve stays continuous.
		if ry == 0 {
			if rx == 1 {
				const n = uint32(1) << sfcOrder
				qx = n - 1 - qx
				qy = n - 1 - qy
			}
			qx, qy = qy, qx
		}
	}
	return d
}

// mortonKey interleaves the bits of the grid coordinates (Z-order).
func mortonKey(qx, qy uint32) uint64 {
	return spreadBits(qx) | spreadBits(qy)<<1
}

// spreadBits inserts a zero bit between consecutive bits of the low 32 bits.
func spreadBits(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}
