package dist

import "testing"

// checkAssignment verifies basic well-formedness: right length, values in
// [0, pes), and (for range-style strategies) monotone non-decreasing PEs.
func checkAssignment(t *testing.T, assign []int32, n, pes int) {
	t.Helper()
	if len(assign) != n {
		t.Fatalf("assignment has %d entries, want %d", len(assign), n)
	}
	for v, pe := range assign {
		if pe < 0 || int(pe) >= pes {
			t.Fatalf("node %d assigned to PE %d, want [0,%d)", v, pe, pes)
		}
	}
}

func TestIndexRangesBalance(t *testing.T) {
	for _, tc := range []struct{ n, pes int }{
		{100, 4}, {100, 3}, {101, 7}, {1, 1}, {5, 5}, {8192, 13},
	} {
		assign := IndexRanges(tc.n, tc.pes)
		checkAssignment(t, assign, tc.n, tc.pes)
		counts := make([]int, tc.pes)
		for i, pe := range assign {
			if i > 0 && pe < assign[i-1] {
				t.Fatalf("n=%d pes=%d: assignment not contiguous at %d", tc.n, tc.pes, i)
			}
			counts[pe]++
		}
		min, max := tc.n, 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Errorf("n=%d pes=%d: range sizes spread %d..%d, want within 1", tc.n, tc.pes, min, max)
		}
	}
}

func TestIndexRangesDegenerate(t *testing.T) {
	if got := IndexRanges(0, 4); len(got) != 0 {
		t.Errorf("n=0: got %v", got)
	}
	// n < pes: every node gets its own PE, no out-of-range values.
	assign := IndexRanges(3, 8)
	checkAssignment(t, assign, 3, 8)
	seen := map[int32]bool{}
	for _, pe := range assign {
		if seen[pe] {
			t.Errorf("n<pes: PE %d used twice in %v", pe, assign)
		}
		seen[pe] = true
	}
}

func TestWeightedRangesBalance(t *testing.T) {
	// Geometric-ish weights: the heavy tail must not all land on one PE.
	n, pes := 1000, 7
	w := make([]int64, n)
	for i := range w {
		w[i] = int64(1 + i%17)
	}
	assign := WeightedRanges(w, pes)
	checkAssignment(t, assign, n, pes)
	var total int64
	sums := make([]int64, pes)
	for v, pe := range assign {
		sums[pe] += w[v]
		total += w[v]
	}
	avg := float64(total) / float64(pes)
	for pe, s := range sums {
		if ratio := float64(s) / avg; ratio > 1.10 || ratio < 0.90 {
			t.Errorf("PE %d has weight %d (%.2fx average)", pe, s, ratio)
		}
	}
}

func TestWeightedRangesHeavyNodeNoStarvation(t *testing.T) {
	// A node heavier than a whole range must not let the cut points skip
	// PEs: with n >= pes every PE still gets at least one node.
	for _, w := range [][]int64{
		{100, 1, 1, 1},
		{1, 1, 1, 100},
		{1, 100, 1, 1, 1, 1},
		{50, 50, 1, 1},
	} {
		for pes := 2; pes <= len(w); pes++ {
			assign := WeightedRanges(w, pes)
			checkAssignment(t, assign, len(w), pes)
			counts := make([]int, pes)
			for i, pe := range assign {
				if i > 0 && pe < assign[i-1] {
					t.Fatalf("w=%v pes=%d: not contiguous: %v", w, pes, assign)
				}
				counts[pe]++
			}
			for pe, c := range counts {
				if c == 0 {
					t.Errorf("w=%v pes=%d: PE %d starved: %v", w, pes, pe, assign)
				}
			}
		}
	}
}

func TestWeightedRangesZeroWeights(t *testing.T) {
	// All-zero weights degrade to index ranges rather than collapsing.
	assign := WeightedRanges(make([]int64, 100), 4)
	checkAssignment(t, assign, 100, 4)
	counts := make([]int, 4)
	for _, pe := range assign {
		counts[pe]++
	}
	for pe, c := range counts {
		if c != 25 {
			t.Errorf("PE %d got %d nodes, want 25", pe, c)
		}
	}
	// Mixed zero and non-zero weights stay in range.
	w := make([]int64, 50)
	for i := 10; i < 40; i++ {
		w[i] = 3
	}
	checkAssignment(t, WeightedRanges(w, 6), 50, 6)
}
