package dist

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Fault injection for the socket backend. A FaultSchedule is a deterministic
// list of rules — "on the Nth write of connection pe1, kill it" — consulted
// by a thin net.Conn wrapper that SocketTransport and SocketHub thread in
// front of every connection when a schedule is attached with SetFaults. An
// empty (or nil) schedule is the identity, mirroring Metered: zero cost, no
// wrapper, so production runs are untouched.
//
// Because the byte streams of the socket protocol are deterministic for a
// fixed seed, the sequence of Read/Write calls on every connection is too —
// an (op, nth) pair addresses the exact same protocol moment on every run.
// That is what makes chaos tests reproducible: the same schedule kills the
// same connection at the same superstep, in-process or across OS processes.

// FaultOp selects which conn operations a rule fires on.
type FaultOp int

const (
	// OpRead fires on Read calls.
	OpRead FaultOp = iota
	// OpWrite fires on Write calls.
	OpWrite
)

func (o FaultOp) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// FaultAction is what an armed rule does to the operation.
type FaultAction int

const (
	// ActKill closes the underlying connection before the operation, so the
	// operation (and every later one) fails — a crashed peer.
	ActKill FaultAction = iota
	// ActDelay sleeps the rule's Delay before the operation — a stalled
	// peer or congested link. The operation then proceeds normally.
	ActDelay
	// ActDrop (writes only) swallows the payload and reports success — a
	// lost frame; the reader on the other side stalls until its deadline.
	ActDrop
	// ActDup (writes only) writes the payload twice — a duplicated frame;
	// the reader desynchronizes and fails its next decode.
	ActDup
)

func (a FaultAction) String() string {
	switch a {
	case ActKill:
		return "kill"
	case ActDelay:
		return "delay"
	case ActDrop:
		return "drop"
	case ActDup:
		return "dup"
	}
	return fmt.Sprintf("dist.FaultAction(%d)", int(a))
}

// FaultRule arms one fault: on the Nth Op (1-based, counted per connection)
// of the first connection whose label matches Conn and reaches that count,
// perform Action. Every rule fires AT MOST ONCE per schedule: recovery
// replaces failed connections with fresh ones whose op counters restart at
// zero, and a rule that re-fired on the replacement would kill every retry
// forever. Want the same fault twice? Arm two rules. An empty Conn matches
// every connection. Labels are assigned at wrap time: the socket transport
// labels PE connections "pe<N>", the hub labels its side "hub<N>", and the
// remote worker labels its control connection "ctrl".
type FaultRule struct {
	Conn   string
	Op     FaultOp
	Nth    int
	Action FaultAction
	Delay  time.Duration // ActDelay only
}

func (r FaultRule) String() string {
	conn := r.Conn
	if conn == "" {
		conn = "*"
	}
	s := fmt.Sprintf("%s:%s:%d:%s", conn, r.Op, r.Nth, r.Action)
	if r.Action == ActDelay {
		s += ":" + r.Delay.String()
	}
	return s
}

// FaultSchedule is a fixed set of fault rules plus the injection counter.
// Safe for concurrent use by many wrapped connections. The zero value (and
// nil) is the empty schedule: Wrap returns connections unchanged.
type FaultSchedule struct {
	rules    []FaultRule
	fired    []atomic.Bool // one-shot latch per rule
	injected atomic.Int64
}

// NewFaultSchedule returns a schedule armed with the given rules.
func NewFaultSchedule(rules ...FaultRule) *FaultSchedule {
	return &FaultSchedule{rules: rules, fired: make([]atomic.Bool, len(rules))}
}

// ParseFaultSchedule parses a semicolon-separated rule list, one rule per
// "conn:op:nth:action[:delay]" clause — e.g. "ctrl:read:3:kill" or
// "pe0:write:2:delay:50ms;*:write:9:drop". conn is a connection label ("*"
// or empty for any), op is read|write, nth the 1-based operation index,
// action kill|delay|drop|dup (delay takes a trailing duration). An empty
// string parses to an empty schedule.
func ParseFaultSchedule(s string) (*FaultSchedule, error) {
	sched := &FaultSchedule{}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 4 {
			return nil, fmt.Errorf("dist: fault clause %q: want conn:op:nth:action[:delay]", clause)
		}
		var r FaultRule
		if parts[0] != "*" {
			r.Conn = parts[0]
		}
		switch parts[1] {
		case "read":
			r.Op = OpRead
		case "write":
			r.Op = OpWrite
		default:
			return nil, fmt.Errorf("dist: fault clause %q: unknown op %q", clause, parts[1])
		}
		if _, err := fmt.Sscanf(parts[2], "%d", &r.Nth); err != nil || r.Nth < 1 {
			return nil, fmt.Errorf("dist: fault clause %q: bad operation index %q", clause, parts[2])
		}
		switch parts[3] {
		case "kill":
			r.Action = ActKill
		case "delay":
			r.Action = ActDelay
			if len(parts) < 5 {
				return nil, fmt.Errorf("dist: fault clause %q: delay needs a duration", clause)
			}
			d, err := time.ParseDuration(parts[4])
			if err != nil {
				return nil, fmt.Errorf("dist: fault clause %q: %v", clause, err)
			}
			r.Delay = d
		case "drop":
			r.Action = ActDrop
		case "dup":
			r.Action = ActDup
		default:
			return nil, fmt.Errorf("dist: fault clause %q: unknown action %q", clause, parts[3])
		}
		sched.rules = append(sched.rules, r)
	}
	sched.fired = make([]atomic.Bool, len(sched.rules))
	return sched, nil
}

// Rules returns a copy of the schedule's rules, in firing-priority order.
func (s *FaultSchedule) Rules() []FaultRule {
	if s == nil {
		return nil
	}
	return append([]FaultRule(nil), s.rules...)
}

// Injected reports how many faults the schedule has fired so far — the
// assertion hook of chaos tests ("the kill actually happened").
func (s *FaultSchedule) Injected() int64 {
	if s == nil {
		return 0
	}
	return s.injected.Load()
}

// Empty reports whether the schedule has no rules (nil included).
func (s *FaultSchedule) Empty() bool { return s == nil || len(s.rules) == 0 }

// Wrap returns conn with the schedule's matching rules armed, counting ops
// per wrapped connection under the given label. The identity when the
// schedule is empty.
func (s *FaultSchedule) Wrap(label string, conn net.Conn) net.Conn {
	if s.Empty() {
		return conn
	}
	matched := false
	for _, r := range s.rules {
		if r.Conn == "" || r.Conn == label {
			matched = true
			break
		}
	}
	if !matched {
		return conn
	}
	return &faultConn{Conn: conn, sched: s, label: label}
}

// faultConn counts Read/Write calls and fires the schedule's rules.
type faultConn struct {
	net.Conn
	sched *FaultSchedule
	label string

	mu     sync.Mutex
	reads  int
	writes int
}

// apply advances the op counter and returns the armed rule, if any.
func (c *faultConn) apply(op FaultOp) *FaultRule {
	c.mu.Lock()
	var nth int
	if op == OpRead {
		c.reads++
		nth = c.reads
	} else {
		c.writes++
		nth = c.writes
	}
	c.mu.Unlock()
	for i := range c.sched.rules {
		r := &c.sched.rules[i]
		if r.Op == op && r.Nth == nth && (r.Conn == "" || r.Conn == c.label) &&
			c.sched.fired[i].CompareAndSwap(false, true) {
			c.sched.injected.Add(1)
			return r
		}
	}
	return nil
}

func (c *faultConn) Read(p []byte) (int, error) {
	if r := c.apply(OpRead); r != nil {
		switch r.Action {
		case ActKill:
			c.Conn.Close()
			return 0, fmt.Errorf("dist: fault injected: %s killed before read %d", c.label, r.Nth)
		case ActDelay:
			time.Sleep(r.Delay)
		}
		// Drop and dup are write-side faults; on reads they degrade to the
		// operation itself (dropping a read would desynchronize the wrapper,
		// not the peer).
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	if r := c.apply(OpWrite); r != nil {
		switch r.Action {
		case ActKill:
			c.Conn.Close()
			return 0, fmt.Errorf("dist: fault injected: %s killed before write %d", c.label, r.Nth)
		case ActDelay:
			time.Sleep(r.Delay)
		case ActDrop:
			return len(p), nil
		case ActDup:
			if n, err := c.Conn.Write(p); err != nil {
				return n, err
			}
		}
	}
	return c.Conn.Write(p)
}
