package dist

// IndexRanges assigns the n nodes to pes contiguous index ranges of
// near-equal cardinality: node v goes to PE v·pes/n. This is the §3.3
// fallback for graphs without coordinates. With n < pes the leading PEs get
// one node each and the rest stay empty.
func IndexRanges(n, pes int) []int32 {
	assign := make([]int32, n)
	if pes <= 1 || n == 0 {
		return assign
	}
	for v := 0; v < n; v++ {
		assign[v] = int32(v * pes / n)
	}
	return assign
}

// WeightedRanges assigns contiguous index ranges balanced by node weight:
// the prefix-sum of weights is cut at the pes-quantiles. Zero-weight nodes
// attach to whichever range their index falls into; if every weight is zero
// the split degrades to plain IndexRanges.
func WeightedRanges(w []int64, pes int) []int32 {
	n := len(w)
	assign := make([]int32, n)
	if pes <= 1 || n == 0 {
		return assign
	}
	var total int64
	for _, wv := range w {
		total += wv
	}
	if total == 0 {
		return IndexRanges(n, pes)
	}
	// Walk the prefix sum; advance to PE p+1 once the running weight passes
	// the cut point total·(p+1)/pes. Comparing midpoints keeps single heavy
	// nodes from dragging a whole range with them. The pe ≤ v bound stops a
	// heavy node from skipping cut points and starving intermediate PEs;
	// the forced advance near the end keeps enough nodes for the trailing
	// PEs — together they guarantee every PE is populated when n ≥ pes.
	var prefix int64
	pe := int32(0)
	for v := 0; v < n; v++ {
		half := prefix + w[v]/2
		for int(pe) < pes-1 && int(pe) < v && int64(pe+1)*total <= int64(pes)*half {
			pe++
		}
		if m := pes - n + v; m > int(pe) {
			pe = int32(m)
		}
		assign[v] = pe
		prefix += w[v]
	}
	return assign
}
