// Package graph provides the weighted undirected graph data structure used by
// every stage of the partitioner.
//
// The representation is the static adjacency array ("forward-star") layout
// described in §5.2 of the paper: an edge array storing target nodes and edge
// weights, and a node array storing node weights and the start of the
// relevant segment in the edge array. Node ids are dense int32 values in
// [0, n). Every undirected edge {u, v} is stored twice, once in each
// direction; weights are int64 so that repeated contraction cannot overflow.
//
// Graphs may optionally carry 2D or 3D coordinates; the parallel coarsening
// phase uses them for geometric prepartitioning (recursive coordinate
// bisection over the available dimensions).
package graph

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Graph is an immutable weighted undirected graph in CSR form. Construct one
// with a Builder, FromCSR, or the generators in internal/gen.
type Graph struct {
	xadj []int32 // n+1 offsets into adj/ewgt
	adj  []int32 // 2m neighbor ids
	ewgt []int64 // 2m edge weights (parallel to adj)
	nwgt []int64 // n node weights

	totalNodeWeight int64
	totalEdgeWeight int64 // each undirected edge counted once
	maxNodeWeight   int64

	// adjSorted records that every adjacency list is strictly increasing
	// (true for Builder output, detected by FromCSR), enabling the binary
	// search fast path of EdgeWeightTo. Contracted graphs keep their
	// first-encounter adjacency order and stay on the linear scan.
	adjSorted bool

	wdegOnce sync.Once
	wdeg     []int64 // cached weighted degrees Out(v), see WeightedDegrees

	x, y []float64 // optional coordinates, len n or nil
	z    []float64 // optional third dimension, len n or nil (only with x, y)
}

// NumNodes returns n, the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nwgt) }

// NumEdges returns m, the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int { return int(g.xadj[v+1] - g.xadj[v]) }

// NodeWeight returns c(v).
func (g *Graph) NodeWeight(v int32) int64 { return g.nwgt[v] }

// TotalNodeWeight returns c(V).
func (g *Graph) TotalNodeWeight() int64 { return g.totalNodeWeight }

// TotalEdgeWeight returns ω(E) with each undirected edge counted once.
func (g *Graph) TotalEdgeWeight() int64 { return g.totalEdgeWeight }

// MaxNodeWeight returns max_v c(v); it appears in the balance constraint
// Lmax = (1+ε)·c(V)/k + max_v c(v).
func (g *Graph) MaxNodeWeight() int64 { return g.maxNodeWeight }

// Adj returns the neighbor ids of v as a shared slice; callers must not
// modify it.
func (g *Graph) Adj(v int32) []int32 { return g.adj[g.xadj[v]:g.xadj[v+1]] }

// AdjWeights returns the edge weights parallel to Adj(v); callers must not
// modify it.
func (g *Graph) AdjWeights(v int32) []int64 { return g.ewgt[g.xadj[v]:g.xadj[v+1]] }

// WeightedDegree returns Out(v) = Σ_{x∈Γ(v)} ω({v,x}).
func (g *Graph) WeightedDegree(v int32) int64 {
	var s int64
	for _, w := range g.AdjWeights(v) {
		s += w
	}
	return s
}

// WeightedDegrees returns the weighted degrees of every node, computed once
// per graph and cached; hot loops (edge ratings, FM gain seeds) read the
// cache instead of re-summing adjacency per query. Contraction pre-fills the
// cache of the coarse graph for free during the fill pass. The returned
// slice is shared; callers must not modify it. Safe for concurrent use.
func (g *Graph) WeightedDegrees() []int64 {
	g.wdegOnce.Do(func() {
		if g.wdeg != nil { // pre-filled at construction (SetWeightedDegrees)
			return
		}
		n := g.NumNodes()
		w := make([]int64, n)
		fill := func(lo, hi int32) {
			for v := lo; v < hi; v++ {
				var s int64
				for _, ew := range g.ewgt[g.xadj[v]:g.xadj[v+1]] {
					s += ew
				}
				w[v] = s
			}
		}
		if workers := runtime.GOMAXPROCS(0); workers > 1 && n >= 1<<14 {
			var wg sync.WaitGroup
			chunk := (n + workers - 1) / workers
			for lo := 0; lo < n; lo += chunk {
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				wg.Add(1)
				go func(lo, hi int32) {
					defer wg.Done()
					fill(lo, hi)
				}(int32(lo), int32(hi))
			}
			wg.Wait()
		} else {
			fill(0, int32(n))
		}
		g.wdeg = w
	})
	return g.wdeg
}

// SetWeightedDegrees installs a precomputed weighted-degree array. It may
// only be called during construction, before the graph is shared between
// goroutines; contraction uses it to emit the coarse Out(v) values it
// already computed while summing coarse edge weights. w[v] must equal
// WeightedDegree(v) for every node.
//
//kappa:invariant construction-time length check; callers size the slice from the same graph
func (g *Graph) SetWeightedDegrees(w []int64) {
	if len(w) != g.NumNodes() {
		panic("graph: weighted-degree slice must have length n")
	}
	g.wdeg = w
}

// EdgeWeightTo returns ω({v,u}) or 0 if {v,u} is not an edge. On graphs with
// sorted adjacency (Builder output, METIS files — detected at construction)
// it binary-searches v's neighbor list; otherwise it falls back to a linear
// scan, which is fine where degrees are small (e.g. quotient graphs) but
// quadratic in degree when called for every neighbor of a high-degree coarse
// node — hot paths on contracted graphs should use scatter arrays instead.
//
//kappa:hotpath
func (g *Graph) EdgeWeightTo(v, u int32) int64 {
	adj := g.Adj(v)
	if g.adjSorted && len(adj) > 8 {
		lo, hi := 0, len(adj)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if adj[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(adj) && adj[lo] == u {
			return g.AdjWeights(v)[lo]
		}
		return 0
	}
	for i, t := range adj {
		if t == u {
			return g.AdjWeights(v)[i]
		}
	}
	return 0
}

// AdjSorted reports whether every adjacency list is strictly increasing, the
// precondition of the EdgeWeightTo binary-search fast path.
func (g *Graph) AdjSorted() bool { return g.adjSorted }

// HasCoords reports whether the graph carries coordinates (2D or 3D).
func (g *Graph) HasCoords() bool { return g.x != nil }

// CoordDims returns the number of coordinate dimensions: 0 (no coordinates),
// 2, or 3.
func (g *Graph) CoordDims() int {
	switch {
	case g.x == nil:
		return 0
	case g.z == nil:
		return 2
	default:
		return 3
	}
}

// Coord returns the first two coordinates of v; it panics if the graph has
// none.
func (g *Graph) Coord(v int32) (float64, float64) { return g.x[v], g.y[v] }

// Coord3 returns the coordinates of v with z = 0 for 2D graphs; it panics if
// the graph has no coordinates.
func (g *Graph) Coord3(v int32) (float64, float64, float64) {
	if g.z == nil {
		return g.x[v], g.y[v], 0
	}
	return g.x[v], g.y[v], g.z[v]
}

// SetCoords attaches 2D coordinates; both slices must have length n. The
// graph keeps references to the slices. Any previous third dimension is
// dropped.
//
//kappa:invariant construction-time length check; callers size the slices from the same graph
func (g *Graph) SetCoords(x, y []float64) {
	if len(x) != g.NumNodes() || len(y) != g.NumNodes() {
		panic("graph: coordinate slices must have length n")
	}
	g.x, g.y, g.z = x, y, nil
}

// SetCoords3 attaches 3D coordinates; all three slices must have length n.
// The graph keeps references to the slices.
//
//kappa:invariant construction-time length check; callers size the slices from the same graph
func (g *Graph) SetCoords3(x, y, z []float64) {
	if len(x) != g.NumNodes() || len(y) != g.NumNodes() || len(z) != g.NumNodes() {
		panic("graph: coordinate slices must have length n")
	}
	g.x, g.y, g.z = x, y, z
}

// Coords returns the first two coordinate slices (nil if absent). Callers
// must not modify them.
func (g *Graph) Coords() ([]float64, []float64) { return g.x, g.y }

// Coords3 returns all coordinate slices; z is nil for 2D graphs and all
// three are nil without coordinates. Callers must not modify them.
func (g *Graph) Coords3() ([]float64, []float64, []float64) { return g.x, g.y, g.z }

// CoordSlices returns the non-nil coordinate slices in dimension order —
// the input recursive coordinate bisection generalizes over. Empty without
// coordinates.
func (g *Graph) CoordSlices() [][]float64 {
	switch g.CoordDims() {
	case 3:
		return [][]float64{g.x, g.y, g.z}
	case 2:
		return [][]float64{g.x, g.y}
	default:
		return nil
	}
}

// FromCSR builds a graph directly from CSR arrays. The arrays are adopted,
// not copied. nwgt may be nil for unit node weights. FromCSR validates the
// structure (symmetry is checked only by Validate, which is O(m log d)).
func FromCSR(xadj []int32, adj []int32, ewgt []int64, nwgt []int64) (*Graph, error) {
	n := len(xadj) - 1
	if n < 0 {
		return nil, fmt.Errorf("graph: xadj must have length n+1 >= 1")
	}
	if xadj[0] != 0 || int(xadj[n]) != len(adj) || len(adj) != len(ewgt) {
		return nil, fmt.Errorf("graph: inconsistent CSR arrays")
	}
	for v := 0; v < n; v++ {
		if xadj[v] > xadj[v+1] {
			return nil, fmt.Errorf("graph: xadj not monotone at node %d", v)
		}
	}
	if nwgt == nil {
		nwgt = make([]int64, n)
		for i := range nwgt {
			nwgt[i] = 1
		}
	} else if len(nwgt) != n {
		return nil, fmt.Errorf("graph: nwgt must have length n")
	}
	g := &Graph{xadj: xadj, adj: adj, ewgt: ewgt, nwgt: nwgt}
	for _, t := range adj {
		if t < 0 || int(t) >= n {
			return nil, fmt.Errorf("graph: neighbor id %d out of range", t)
		}
	}
	g.adjSorted = true
	for v := 0; v < n && g.adjSorted; v++ {
		seg := adj[xadj[v]:xadj[v+1]]
		for i := 1; i < len(seg); i++ {
			if seg[i-1] >= seg[i] {
				g.adjSorted = false
				break
			}
		}
	}
	for _, w := range ewgt {
		if w <= 0 {
			return nil, fmt.Errorf("graph: non-positive edge weight %d", w)
		}
		g.totalEdgeWeight += w
	}
	g.totalEdgeWeight /= 2
	for _, w := range nwgt {
		if w < 0 {
			return nil, fmt.Errorf("graph: negative node weight %d", w)
		}
		g.totalNodeWeight += w
		if w > g.maxNodeWeight {
			g.maxNodeWeight = w
		}
	}
	return g, nil
}

// FromCSRUnchecked adopts CSR arrays with NO validation and NO scans: the
// caller vouches for structural validity and supplies the aggregate weights
// FromCSR would otherwise recompute. It exists for the contraction hot path,
// which builds the coarse CSR into exactly-sized arrays and already knows
// every total; routing that snapshot through FromCSR would re-scan 2m edges
// per level for invariants contraction guarantees by construction.
// adjSorted is conservatively false (contracted adjacency keeps
// first-encounter order); totalEdgeWeight counts each undirected edge once.
//
//kappa:hotpath
func FromCSRUnchecked(xadj []int32, adj []int32, ewgt []int64, nwgt []int64,
	totalNodeWeight, totalEdgeWeight, maxNodeWeight int64) *Graph {
	//kappa:allow hotalloc one header per level; the CSR arrays are adopted, not copied
	return &Graph{
		xadj: xadj, adj: adj, ewgt: ewgt, nwgt: nwgt,
		totalNodeWeight: totalNodeWeight,
		totalEdgeWeight: totalEdgeWeight,
		maxNodeWeight:   maxNodeWeight,
	}
}

// CSRAggregates carries the precomputed per-graph facts FromCSRTrusted
// adopts alongside the CSR arrays: the totals FromCSR would re-scan 2m
// edges to derive, and whether the adjacency lists are strictly sorted
// (which enables the binary-search fast path of EdgeWeightTo).
type CSRAggregates struct {
	TotalNodeWeight int64
	TotalEdgeWeight int64 // each undirected edge counted once
	MaxNodeWeight   int64
	AdjSorted       bool
}

// FromCSRTrusted adopts CSR arrays with NO validation and NO scans, like
// FromCSRUnchecked, but with the aggregates supplied as a struct that also
// preserves the adjacency-sorted flag. It exists for graphs whose arrays
// are views over a memory-mapped file: the shard store records the
// aggregates in its manifest at write time, and re-scanning the arrays here
// would page the whole mapping in — defeating the point of mapping it.
func FromCSRTrusted(xadj []int32, adj []int32, ewgt []int64, nwgt []int64, agg CSRAggregates) *Graph {
	return &Graph{
		xadj: xadj, adj: adj, ewgt: ewgt, nwgt: nwgt,
		totalNodeWeight: agg.TotalNodeWeight,
		totalEdgeWeight: agg.TotalEdgeWeight,
		maxNodeWeight:   agg.MaxNodeWeight,
		adjSorted:       agg.AdjSorted,
	}
}

// Validate checks structural invariants that FromCSR does not: no self
// loops, no parallel edges (adjacency lists strictly sorted after sorting),
// and symmetry of both adjacency and weights. Intended for tests and for
// checking external input files.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	for v := int32(0); v < int32(n); v++ {
		adj := g.Adj(v)
		seen := make(map[int32]int64, len(adj))
		for i, u := range adj {
			if u == v {
				return fmt.Errorf("graph: self loop at node %d", v)
			}
			if _, dup := seen[u]; dup {
				return fmt.Errorf("graph: parallel edge {%d,%d}", v, u)
			}
			seen[u] = g.AdjWeights(v)[i]
		}
		for u, w := range seen {
			if g.EdgeWeightTo(u, v) != w {
				return fmt.Errorf("graph: asymmetric edge {%d,%d}", v, u)
			}
		}
	}
	return nil
}

// Builder accumulates undirected edges and produces a Graph. Parallel edges
// are merged by summing their weights; self loops are dropped. Builders are
// not safe for concurrent use.
type Builder struct {
	n       int
	nwgt    []int64
	us      []int32
	vs      []int32
	ws      []int64
	coord   bool
	x, y, z []float64
}

// NewBuilder returns a builder for a graph with n nodes and unit node
// weights.
func NewBuilder(n int) *Builder {
	nwgt := make([]int64, n)
	for i := range nwgt {
		nwgt[i] = 1
	}
	return &Builder{n: n, nwgt: nwgt}
}

// SetNodeWeight sets c(v).
func (b *Builder) SetNodeWeight(v int32, w int64) { b.nwgt[v] = w }

// SetCoord records 2D coordinates for v; the first call switches the builder
// to coordinate mode.
func (b *Builder) SetCoord(v int32, x, y float64) {
	if !b.coord {
		b.coord = true
		b.x = make([]float64, b.n)
		b.y = make([]float64, b.n)
	}
	b.x[v], b.y[v] = x, y
}

// SetCoord3 records 3D coordinates for v; the first call switches the
// builder to 3D coordinate mode. Mixing SetCoord and SetCoord3 leaves z = 0
// for the 2D calls.
func (b *Builder) SetCoord3(v int32, x, y, z float64) {
	b.SetCoord(v, x, y)
	if b.z == nil {
		b.z = make([]float64, b.n)
	}
	b.z[v] = z
}

// AddEdge records the undirected edge {u, v} with weight w. Self loops are
// ignored. Adding {u,v} twice (in any orientation) merges the weights.
//
//kappa:invariant callers validate ids and weights at the I/O boundary (graphio)
func (b *Builder) AddEdge(u, v int32, w int64) {
	if u == v {
		return
	}
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if w <= 0 {
		panic("graph: edge weight must be positive")
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
}

// NumPendingEdges returns the number of AddEdge calls so far (before
// merging).
func (b *Builder) NumPendingEdges() int { return len(b.us) }

// Build produces the graph. The builder can not be reused afterwards.
func (b *Builder) Build() *Graph {
	n := b.n
	// Count directed half-edges per node.
	deg := make([]int32, n+1)
	for i := range b.us {
		deg[b.us[i]+1]++
		deg[b.vs[i]+1]++
	}
	for v := 0; v < n; v++ {
		deg[v+1] += deg[v]
	}
	xadj := deg // reuse as offsets
	adj := make([]int32, len(b.us)*2)
	ewgt := make([]int64, len(b.us)*2)
	fill := make([]int32, n)
	for i := range b.us {
		u, v, w := b.us[i], b.vs[i], b.ws[i]
		p := xadj[u] + fill[u]
		adj[p], ewgt[p] = v, w
		fill[u]++
		p = xadj[v] + fill[v]
		adj[p], ewgt[p] = u, w
		fill[v]++
	}
	// Sort each adjacency list and merge duplicates in place.
	outAdj := adj[:0]
	outW := ewgt[:0]
	newX := make([]int32, n+1)
	for v := 0; v < n; v++ {
		lo, hi := xadj[v], xadj[v+1]
		seg := adjSegment{adj[lo:hi], ewgt[lo:hi]}
		sort.Sort(seg)
		// merge runs of equal targets
		for i := lo; i < hi; {
			t, w := adj[i], ewgt[i]
			j := i + 1
			for j < hi && adj[j] == t {
				w += ewgt[j]
				j++
			}
			outAdj = append(outAdj, t)
			outW = append(outW, w)
			i = j
		}
		newX[v+1] = int32(len(outAdj))
	}
	g, err := FromCSR(newX, outAdj[:len(outAdj):len(outAdj)], outW[:len(outW):len(outW)], b.nwgt)
	if err != nil {
		//kappa:allow panicfree the builder constructs the CSR it validates; a failure is a Build bug
		panic("graph: builder produced invalid CSR: " + err.Error())
	}
	if b.coord {
		if b.z != nil {
			g.SetCoords3(b.x, b.y, b.z)
		} else {
			g.SetCoords(b.x, b.y)
		}
	}
	return g
}

type adjSegment struct {
	adj []int32
	w   []int64
}

func (s adjSegment) Len() int           { return len(s.adj) }
func (s adjSegment) Less(i, j int) bool { return s.adj[i] < s.adj[j] }
func (s adjSegment) Swap(i, j int) {
	s.adj[i], s.adj[j] = s.adj[j], s.adj[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}
