package graph

import (
	"testing"
)

// buildTestGraph returns a small weighted graph via the Builder (sorted
// adjacency, so the EdgeWeightTo fast path is armed).
func buildTestGraph() *Graph {
	b := NewBuilder(6)
	edges := [][3]int64{{0, 1, 3}, {0, 2, 1}, {1, 2, 4}, {2, 3, 2}, {3, 4, 5}, {4, 5, 1}, {0, 5, 7}, {1, 4, 2}, {0, 3, 9}, {0, 4, 4}}
	for _, e := range edges {
		b.AddEdge(int32(e[0]), int32(e[1]), e[2])
	}
	return b.Build()
}

func TestFromCSRUncheckedMatchesFromCSR(t *testing.T) {
	g := buildTestGraph()
	n := g.NumNodes()
	xadj := make([]int32, n+1)
	var adj []int32
	var ewgt []int64
	nwgt := make([]int64, n)
	for v := int32(0); v < int32(n); v++ {
		adj = append(adj, g.Adj(v)...)
		ewgt = append(ewgt, g.AdjWeights(v)...)
		xadj[v+1] = int32(len(adj))
		nwgt[v] = g.NodeWeight(v)
	}
	u := FromCSRUnchecked(xadj, adj, ewgt, nwgt,
		g.TotalNodeWeight(), g.TotalEdgeWeight(), g.MaxNodeWeight())
	if u.TotalNodeWeight() != g.TotalNodeWeight() ||
		u.TotalEdgeWeight() != g.TotalEdgeWeight() ||
		u.MaxNodeWeight() != g.MaxNodeWeight() ||
		u.NumNodes() != g.NumNodes() || u.NumEdges() != g.NumEdges() {
		t.Fatal("FromCSRUnchecked aggregates differ from FromCSR")
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeWeightToSortedFastPath(t *testing.T) {
	// A star with > 8 neighbors arms the binary search; verify every query
	// against the straightforward scan, including misses.
	b := NewBuilder(20)
	for i := int32(1); i < 20; i++ {
		b.AddEdge(0, i, int64(i)*3)
	}
	g := b.Build()
	if !g.AdjSorted() {
		t.Fatal("builder output must be detected as sorted")
	}
	for u := int32(0); u < 20; u++ {
		want := int64(0)
		for i, x := range g.Adj(0) {
			if x == u {
				want = g.AdjWeights(0)[i]
			}
		}
		if got := g.EdgeWeightTo(0, u); got != want {
			t.Fatalf("EdgeWeightTo(0,%d) = %d, want %d", u, got, want)
		}
	}
	if g.EdgeWeightTo(1, 0) != 3 || g.EdgeWeightTo(1, 2) != 0 {
		t.Fatal("short-adjacency linear path broken")
	}
}

func TestWeightedDegreesCache(t *testing.T) {
	g := buildTestGraph()
	wd := g.WeightedDegrees()
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if wd[v] != g.WeightedDegree(v) {
			t.Fatalf("cached Out(%d) = %d, want %d", v, wd[v], g.WeightedDegree(v))
		}
	}
	if &wd[0] != &g.WeightedDegrees()[0] {
		t.Fatal("WeightedDegrees must return the same cached slice")
	}
	// Pre-filled cache must win over lazy computation.
	pre := make([]int64, g.NumNodes())
	for i := range pre {
		pre[i] = g.WeightedDegree(int32(i))
	}
	g2 := buildTestGraph()
	g2.SetWeightedDegrees(pre)
	if &g2.WeightedDegrees()[0] != &pre[0] {
		t.Fatal("SetWeightedDegrees slice must be adopted")
	}
}
