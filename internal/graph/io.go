package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMetis writes the graph in the METIS/Chaco graph file format used by
// the partitioning community (and by the Walshaw archive): a header line
// "n m fmt" followed by one line per node listing its neighbors 1-indexed.
// fmt is 11 when both node and edge weights are present, 1 for edge weights
// only, 10 for node weights only, and omitted for unweighted graphs.
func (g *Graph) WriteMetis(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hasNW := false
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if g.NodeWeight(v) != 1 {
			hasNW = true
			break
		}
	}
	hasEW := false
	for _, wt := range g.ewgt {
		if wt != 1 {
			hasEW = true
			break
		}
	}
	switch {
	case hasNW && hasEW:
		fmt.Fprintf(bw, "%d %d 11\n", g.NumNodes(), g.NumEdges())
	case hasNW:
		fmt.Fprintf(bw, "%d %d 10\n", g.NumNodes(), g.NumEdges())
	case hasEW:
		fmt.Fprintf(bw, "%d %d 1\n", g.NumNodes(), g.NumEdges())
	default:
		fmt.Fprintf(bw, "%d %d\n", g.NumNodes(), g.NumEdges())
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		first := true
		if hasNW {
			fmt.Fprintf(bw, "%d", g.NodeWeight(v))
			first = false
		}
		adj := g.Adj(v)
		ws := g.AdjWeights(v)
		for i, u := range adj {
			if !first {
				bw.WriteByte(' ')
			}
			first = false
			fmt.Fprintf(bw, "%d", u+1)
			if hasEW {
				fmt.Fprintf(bw, " %d", ws[i])
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadMetis parses a graph in METIS format. Comment lines starting with '%'
// are skipped. The declared edge count is validated against the parsed one.
func ReadMetis(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line, err := nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: missing header: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, fmt.Errorf("graph: malformed header %q", line)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		return nil, fmt.Errorf("graph: bad node count: %w", err)
	}
	m, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("graph: bad edge count: %w", err)
	}
	hasNW, hasEW := false, false
	if len(fields) >= 3 {
		switch fields[2] {
		case "0", "00", "000":
		case "1", "01", "001":
			hasEW = true
		case "10", "010":
			hasNW = true
		case "11", "011":
			hasNW, hasEW = true, true
		default:
			return nil, fmt.Errorf("graph: unsupported format code %q", fields[2])
		}
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		line, err := nextLine(sc)
		if err != nil {
			return nil, fmt.Errorf("graph: missing line for node %d: %w", v+1, err)
		}
		toks := strings.Fields(line)
		i := 0
		if hasNW {
			if len(toks) == 0 {
				return nil, fmt.Errorf("graph: node %d missing weight", v+1)
			}
			w, err := strconv.ParseInt(toks[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: node %d bad weight: %w", v+1, err)
			}
			b.SetNodeWeight(int32(v), w)
			i = 1
		}
		for i < len(toks) {
			u, err := strconv.Atoi(toks[i])
			if err != nil {
				return nil, fmt.Errorf("graph: node %d bad neighbor %q: %w", v+1, toks[i], err)
			}
			if u < 1 || u > n {
				return nil, fmt.Errorf("graph: node %d neighbor %d out of range", v+1, u)
			}
			i++
			w := int64(1)
			if hasEW {
				if i >= len(toks) {
					return nil, fmt.Errorf("graph: node %d missing edge weight", v+1)
				}
				w, err = strconv.ParseInt(toks[i], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("graph: node %d bad edge weight: %w", v+1, err)
				}
				i++
			}
			if u-1 > v { // store each undirected edge once
				b.AddEdge(int32(v), int32(u-1), w)
			}
		}
	}
	g := b.Build()
	if g.NumEdges() != m {
		return nil, fmt.Errorf("graph: header declares %d edges, parsed %d", m, g.NumEdges())
	}
	return g, nil
}

func nextLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}
