package graph

// Overlay is the hybrid static + dynamic graph data structure of §5.2: each
// PE stores the partition it is responsible for in a static adjacency-array
// Graph, plus a hash table of *migrated* nodes (copies received from a
// partner PE before a pairwise local search, Figure 2) with a second,
// growable edge array for their incident edges.
//
// In this shared-memory reproduction the refinement works directly on the
// global graph, so the Overlay is not on the hot path; it is provided (and
// tested) as the data structure a distributed-memory port would use for the
// boundary exchange, and the graph/partition accessors mirror Graph's.
type Overlay struct {
	base *Graph

	// migrated nodes are addressed by their global id.
	nodes map[int32]*overlayNode
}

type overlayNode struct {
	weight int64
	adj    []int32
	ewgt   []int64
}

// NewOverlay wraps a static base graph.
func NewOverlay(base *Graph) *Overlay {
	return &Overlay{base: base, nodes: make(map[int32]*overlayNode)}
}

// Base returns the wrapped static graph.
func (o *Overlay) Base() *Graph { return o.base }

// NumMigrated returns the number of nodes added on top of the base graph.
func (o *Overlay) NumMigrated() int { return len(o.nodes) }

// AddNode registers a migrated node with the given global id and weight. Ids
// must not collide with the base graph's [0, n) range. Re-adding an id
// replaces its copy (a fresh boundary exchange supersedes the previous one).
//
//kappa:invariant id-range collisions are an exchange-protocol bug, not an input error
func (o *Overlay) AddNode(id int32, weight int64) {
	if id >= 0 && int(id) < o.base.NumNodes() {
		panic("graph: overlay node id collides with base graph")
	}
	o.nodes[id] = &overlayNode{weight: weight}
}

// HasNode reports whether id is resolvable (base or migrated).
func (o *Overlay) HasNode(id int32) bool {
	if id >= 0 && int(id) < o.base.NumNodes() {
		return true
	}
	_, ok := o.nodes[id]
	return ok
}

// AddEdge attaches a directed half-edge from migrated node id to target.
// Callers add both directions when both endpoints are migrated; edges from a
// migrated node into the base graph are one-sided by design (the base array
// is immutable), and Neighbors on base nodes therefore only reports static
// edges.
//
//kappa:invariant edges reference nodes the same exchange already registered
func (o *Overlay) AddEdge(id, target int32, w int64) {
	n, ok := o.nodes[id]
	if !ok {
		panic("graph: AddEdge on unknown overlay node")
	}
	if w <= 0 {
		panic("graph: overlay edge weight must be positive")
	}
	n.adj = append(n.adj, target)
	n.ewgt = append(n.ewgt, w)
}

// NodeWeight resolves c(id) across both storages.
func (o *Overlay) NodeWeight(id int32) int64 {
	if id >= 0 && int(id) < o.base.NumNodes() {
		return o.base.NodeWeight(id)
	}
	return o.nodes[id].weight
}

// Neighbors invokes f for every outgoing edge of id. Base nodes report
// static edges; migrated nodes report their dynamic edges.
func (o *Overlay) Neighbors(id int32, f func(target int32, w int64)) {
	if id >= 0 && int(id) < o.base.NumNodes() {
		adj := o.base.Adj(id)
		ws := o.base.AdjWeights(id)
		for i, u := range adj {
			f(u, ws[i])
		}
		return
	}
	n := o.nodes[id]
	for i, u := range n.adj {
		f(u, n.ewgt[i])
	}
}

// Degree returns the out-degree of id.
func (o *Overlay) Degree(id int32) int {
	if id >= 0 && int(id) < o.base.NumNodes() {
		return o.base.Degree(id)
	}
	return len(o.nodes[id].adj)
}

// Clear drops all migrated state, returning the overlay to the bare base
// graph (done after every pairwise local search).
func (o *Overlay) Clear() {
	for k := range o.nodes {
		delete(o.nodes, k)
	}
}
