package graph

import "testing"

func overlayBase() *Graph {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 3)
	b.AddEdge(2, 3, 4)
	return b.Build()
}

func TestOverlayBasePassthrough(t *testing.T) {
	g := overlayBase()
	o := NewOverlay(g)
	if o.Base() != g {
		t.Fatal("base lost")
	}
	if !o.HasNode(0) || o.HasNode(100) {
		t.Fatal("HasNode wrong on fresh overlay")
	}
	if o.NodeWeight(1) != 1 || o.Degree(1) != 2 {
		t.Fatal("base passthrough broken")
	}
	var sum int64
	o.Neighbors(1, func(u int32, w int64) { sum += w })
	if sum != 5 {
		t.Fatalf("base neighbor weights sum %d, want 5", sum)
	}
}

func TestOverlayMigratedNodes(t *testing.T) {
	o := NewOverlay(overlayBase())
	o.AddNode(100, 7)
	o.AddNode(101, 1)
	o.AddEdge(100, 101, 5)
	o.AddEdge(101, 100, 5)
	o.AddEdge(100, 2, 9) // into the base graph
	if o.NumMigrated() != 2 {
		t.Fatalf("NumMigrated = %d", o.NumMigrated())
	}
	if !o.HasNode(100) || o.NodeWeight(100) != 7 {
		t.Fatal("migrated node not resolvable")
	}
	if o.Degree(100) != 2 {
		t.Fatalf("Degree(100) = %d, want 2", o.Degree(100))
	}
	var targets []int32
	o.Neighbors(100, func(u int32, w int64) { targets = append(targets, u) })
	if len(targets) != 2 || targets[0] != 101 || targets[1] != 2 {
		t.Fatalf("migrated neighbors %v", targets)
	}
}

func TestOverlayReAddReplaces(t *testing.T) {
	o := NewOverlay(overlayBase())
	o.AddNode(50, 1)
	o.AddEdge(50, 0, 1)
	o.AddNode(50, 9) // fresh boundary exchange supersedes
	if o.NodeWeight(50) != 9 || o.Degree(50) != 0 {
		t.Fatal("re-add did not replace the copy")
	}
}

func TestOverlayClear(t *testing.T) {
	o := NewOverlay(overlayBase())
	o.AddNode(10, 1)
	o.Clear()
	if o.NumMigrated() != 0 || o.HasNode(10) {
		t.Fatal("Clear left migrated state")
	}
	if !o.HasNode(0) {
		t.Fatal("Clear damaged the base")
	}
}

func TestOverlayPanics(t *testing.T) {
	o := NewOverlay(overlayBase())
	mustPanic(t, func() { o.AddNode(2, 1) })      // collides with base
	mustPanic(t, func() { o.AddEdge(999, 0, 1) }) // unknown node
	o.AddNode(10, 1)
	mustPanic(t, func() { o.AddEdge(10, 0, 0) }) // non-positive weight
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
