package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// path5 builds the path 0-1-2-3-4 with unit weights.
func path5() *Graph {
	b := NewBuilder(5)
	for i := int32(0); i < 4; i++ {
		b.AddEdge(i, i+1, 1)
	}
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	g := path5()
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(2))
	}
	if g.TotalEdgeWeight() != 4 || g.TotalNodeWeight() != 5 {
		t.Fatalf("weights wrong: %d %d", g.TotalEdgeWeight(), g.TotalNodeWeight())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderMergesParallelEdges(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 0, 3) // same edge, reversed
	b.AddEdge(1, 2, 1)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if w := g.EdgeWeightTo(0, 1); w != 5 {
		t.Fatalf("merged weight = %d, want 5", w)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDropsSelfLoops(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 0, 7)
	b.AddEdge(0, 1, 1)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5, 1)
}

func TestNodeWeights(t *testing.T) {
	b := NewBuilder(3)
	b.SetNodeWeight(0, 10)
	b.SetNodeWeight(2, 4)
	b.AddEdge(0, 1, 1)
	g := b.Build()
	if g.NodeWeight(0) != 10 || g.NodeWeight(1) != 1 || g.NodeWeight(2) != 4 {
		t.Fatal("node weights lost")
	}
	if g.TotalNodeWeight() != 15 || g.MaxNodeWeight() != 10 {
		t.Fatalf("totals: %d %d", g.TotalNodeWeight(), g.MaxNodeWeight())
	}
}

func TestWeightedDegree(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 3)
	b.AddEdge(0, 2, 4)
	g := b.Build()
	if g.WeightedDegree(0) != 7 || g.WeightedDegree(1) != 3 {
		t.Fatal("WeightedDegree wrong")
	}
}

func TestFromCSRRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		xadj []int32
		adj  []int32
		ewgt []int64
	}{
		{"inconsistent", []int32{0, 1}, []int32{}, []int64{}},
		{"badNeighbor", []int32{0, 1}, []int32{5}, []int64{1}},
		{"zeroWeight", []int32{0, 1, 2}, []int32{1, 0}, []int64{0, 0}},
		{"nonMonotone", []int32{0, 2, 1}, []int32{1, 1}, []int64{1, 1}},
	}
	for _, c := range cases {
		if _, err := FromCSR(c.xadj, c.adj, c.ewgt, nil); err == nil {
			t.Errorf("%s: FromCSR accepted invalid input", c.name)
		}
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	// 0->1 weight 1 but 1->0 weight 2.
	g, err := FromCSR([]int32{0, 1, 2}, []int32{1, 0}, []int64{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted asymmetric weights")
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	g := b.Build() // components {0,1,2}, {3,4}, {5}
	comp, nc := g.ConnectedComponents()
	if nc != 3 {
		t.Fatalf("nc = %d, want 3", nc)
	}
	if comp[0] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] || comp[5] == comp[0] {
		t.Fatalf("bad labels %v", comp)
	}
	if g.NumComponentsDSU() != 3 {
		t.Fatal("DSU cross-check disagrees")
	}
	if g.IsConnected() {
		t.Fatal("IsConnected wrong")
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 3)
	b.AddEdge(3, 4, 1)
	g := b.Build()
	sub, m := g.LargestComponent()
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("largest component n=%d m=%d", sub.NumNodes(), sub.NumEdges())
	}
	if m == nil || len(m) != 3 {
		t.Fatal("mapping missing")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubgraphPreservesWeightsAndCoords(t *testing.T) {
	b := NewBuilder(4)
	for v := int32(0); v < 4; v++ {
		b.SetCoord(v, float64(v), float64(-v))
		b.SetNodeWeight(v, int64(v+1))
	}
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 6)
	b.AddEdge(2, 3, 7)
	g := b.Build()
	sub, new2old := g.Subgraph([]bool{true, true, false, true})
	if sub.NumNodes() != 3 || sub.NumEdges() != 1 {
		t.Fatalf("sub n=%d m=%d", sub.NumNodes(), sub.NumEdges())
	}
	for nv, ov := range new2old {
		if sub.NodeWeight(int32(nv)) != g.NodeWeight(ov) {
			t.Fatal("node weight lost")
		}
		x, y := sub.Coord(int32(nv))
		ox, oy := g.Coord(ov)
		if x != ox || y != oy {
			t.Fatal("coords lost")
		}
	}
	if w := sub.EdgeWeightTo(0, 1); w != 5 {
		t.Fatalf("edge weight = %d, want 5", w)
	}
}

func TestComputeStats(t *testing.T) {
	g := path5()
	s := g.ComputeStats()
	if s.Nodes != 5 || s.Edges != 4 || s.MinDegree != 1 || s.MaxDegree != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.AvgDegree != 1.6 {
		t.Fatalf("avg degree %f", s.AvgDegree)
	}
}

// The METIS/binary file codecs (and their tests) live in internal/graphio.

// TestBuilderRandomInvariants: random multigraph input always yields a valid
// simple graph whose total weight matches the sum of added weights.
func TestBuilderRandomInvariants(t *testing.T) {
	master := rng.New(77)
	f := func(seed uint16) bool {
		r := master.Split(uint64(seed))
		n := 2 + r.Intn(30)
		b := NewBuilder(n)
		var total int64
		for e := 0; e < 3*n; e++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			w := int64(1 + r.Intn(9))
			b.AddEdge(u, v, w)
			if u != v {
				total += w
			}
		}
		g := b.Build()
		if g.Validate() != nil {
			return false
		}
		return g.TotalEdgeWeight() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	r := rng.New(2)
	const n = 1 << 14
	for i := 0; i < b.N; i++ {
		bd := NewBuilder(n)
		for e := 0; e < 4*n; e++ {
			bd.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)), 1)
		}
		bd.Build()
	}
}
