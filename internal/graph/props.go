package graph

import "repro/internal/dsu"

// ConnectedComponents returns a component label in [0, #components) for each
// node and the number of components.
func (g *Graph) ConnectedComponents() ([]int32, int) {
	n := g.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	next := int32(0)
	for s := int32(0); s < int32(n); s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Adj(v) {
				if comp[u] < 0 {
					comp[u] = next
					queue = append(queue, u)
				}
			}
		}
		next++
	}
	return comp, int(next)
}

// IsConnected reports whether the graph has exactly one connected component
// (the empty graph counts as connected).
func (g *Graph) IsConnected() bool {
	if g.NumNodes() == 0 {
		return true
	}
	_, c := g.ConnectedComponents()
	return c == 1
}

// LargestComponent extracts the subgraph induced by the largest connected
// component. It returns the subgraph and the mapping new→old node ids. If
// the graph is connected it is returned unchanged with a nil mapping.
func (g *Graph) LargestComponent() (*Graph, []int32) {
	comp, nc := g.ConnectedComponents()
	if nc <= 1 {
		return g, nil
	}
	size := make([]int64, nc)
	for _, c := range comp {
		size[c]++
	}
	best := int32(0)
	for c := 1; c < nc; c++ {
		if size[c] > size[best] {
			best = int32(c)
		}
	}
	keep := make([]bool, g.NumNodes())
	for v, c := range comp {
		keep[v] = c == best
	}
	return g.Subgraph(keep)
}

// Subgraph extracts the subgraph induced by the nodes with keep[v] == true.
// It returns the subgraph and the new→old node id mapping. Coordinates are
// carried over when present.
func (g *Graph) Subgraph(keep []bool) (*Graph, []int32) {
	n := g.NumNodes()
	old2new := make([]int32, n)
	var new2old []int32
	for v := 0; v < n; v++ {
		if keep[v] {
			old2new[v] = int32(len(new2old))
			new2old = append(new2old, int32(v))
		} else {
			old2new[v] = -1
		}
	}
	b := NewBuilder(len(new2old))
	for nv, ov := range new2old {
		b.SetNodeWeight(int32(nv), g.NodeWeight(ov))
		if g.HasCoords() {
			x, y := g.Coord(ov)
			b.SetCoord(int32(nv), x, y)
		}
		adj := g.Adj(ov)
		ws := g.AdjWeights(ov)
		for i, ou := range adj {
			if ou > ov && keep[ou] { // each undirected edge once
				b.AddEdge(int32(nv), old2new[ou], ws[i])
			}
		}
	}
	return b.Build(), new2old
}

// NumComponentsDSU counts connected components using union-find; it is used
// as an independent cross-check of ConnectedComponents in tests.
func (g *Graph) NumComponentsDSU() int {
	d := dsu.New(g.NumNodes())
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		for _, u := range g.Adj(v) {
			d.Union(v, u)
		}
	}
	return d.Sets()
}

// Stats summarizes basic graph properties (Table 1 of the paper reports n
// and m per instance; the harness also reports degree extremes).
type Stats struct {
	Nodes           int
	Edges           int
	MinDegree       int
	MaxDegree       int
	AvgDegree       float64
	TotalNodeWeight int64
	TotalEdgeWeight int64
}

// ComputeStats returns summary statistics.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		Nodes:           g.NumNodes(),
		Edges:           g.NumEdges(),
		TotalNodeWeight: g.TotalNodeWeight(),
		TotalEdgeWeight: g.TotalEdgeWeight(),
	}
	if s.Nodes == 0 {
		return s
	}
	s.MinDegree = g.Degree(0)
	for v := int32(0); v < int32(s.Nodes); v++ {
		d := g.Degree(v)
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	s.AvgDegree = 2 * float64(s.Edges) / float64(s.Nodes)
	return s
}
