package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// PhaseBreakdown prints, per instance and preset, where the wall-clock time
// of a run goes — coarsening, initial partitioning, refinement — as both
// absolute averages and fractions of the total. The numbers come from the
// pipeline's PhaseEvent trace stream (see core.Timings), not from
// stopwatches around the call, so any custom stage plugged into the
// Pipeline is accounted the same way.
func PhaseBreakdown(w io.Writer, o Options) {
	o = o.defaults()
	k := o.Ks[0]
	fmt.Fprintf(w, "Phase breakdown: avg time per phase [ms] (k=%d, %d reps, from Trace events)\n", k, o.Reps)
	fmt.Fprintf(w, "%-16s %-14s %9s %9s %9s %9s %26s\n",
		"graph", "preset", "coarsen", "init", "refine", "total", "share c/i/r [%]")
	for _, in := range o.limit(Calibration()) {
		for _, v := range []core.Variant{core.Minimal, core.Fast, core.Strong} {
			row := RunKaPPa(in.Graph(), core.NewConfig(v, k), o.Reps)
			total := row.AvgCoarsen + row.AvgInit + row.AvgRefine
			share := func(d float64) float64 {
				if total <= 0 {
					return 0
				}
				return 100 * d / float64(total)
			}
			fmt.Fprintf(w, "%-16s %-14s %9.1f %9.1f %9.1f %9.1f %10.0f/%.0f/%.0f\n",
				in.Name, v,
				float64(row.AvgCoarsen.Microseconds())/1e3,
				float64(row.AvgInit.Microseconds())/1e3,
				float64(row.AvgRefine.Microseconds())/1e3,
				float64(row.AvgTime.Microseconds())/1e3,
				share(float64(row.AvgCoarsen)), share(float64(row.AvgInit)), share(float64(row.AvgRefine)))
		}
	}
}
