package bench

import (
	"context"
	"math"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/part"
)

// Row aggregates repeated runs of one configuration on one instance, the
// way the paper reports them: average cut, best cut, average balance,
// average time — plus the per-phase breakdown of the average time, sourced
// from the pipeline's PhaseEvents rather than ad-hoc stopwatches.
type Row struct {
	AvgCut  float64
	BestCut int64
	AvgBal  float64
	AvgTime time.Duration

	AvgCoarsen time.Duration
	AvgInit    time.Duration
	AvgRefine  time.Duration
}

// RunKaPPa runs cfg on g `reps` times with different seeds, collecting
// timings through a Timings trace observer. The repetitions share one
// scratch arena, the way a long-lived service would, so only the first rep
// pays the allocation cost of the working set.
func RunKaPPa(g *graph.Graph, cfg core.Config, reps int) Row {
	if reps < 1 {
		reps = 1
	}
	var row Row
	var totalCut, totalBal float64
	var tm core.Timings
	arena := mem.NewArena()
	for i := 0; i < reps; i++ {
		cfg.Seed = uint64(i)*0x5bd1e995 + 7
		res, err := core.Run(context.Background(), g, cfg, core.WithObserver(&tm), core.WithArena(arena))
		if err != nil {
			// The harness only constructs valid configurations; an error
			// here is a bug in the harness itself.
			//kappa:allow panicfree harness-internal configurations are valid by construction
			panic("bench: " + err.Error())
		}
		totalCut += float64(res.Cut)
		totalBal += res.Balance
		if i == 0 || res.Cut < row.BestCut {
			row.BestCut = res.Cut
		}
	}
	row.AvgCut = totalCut / float64(reps)
	row.AvgBal = totalBal / float64(reps)
	row.AvgTime = tm.Total / time.Duration(reps)
	row.AvgCoarsen = tm.Coarsen / time.Duration(reps)
	row.AvgInit = tm.Init / time.Duration(reps)
	row.AvgRefine = tm.Refine / time.Duration(reps)
	return row
}

// RunTool runs a baseline partitioner `reps` times with different seeds.
func RunTool(g *graph.Graph, k int, eps float64, tool baseline.Tool, reps int) Row {
	if reps < 1 {
		reps = 1
	}
	var row Row
	var totalCut, totalBal float64
	var totalTime time.Duration
	for i := 0; i < reps; i++ {
		res := baseline.Run(g, k, eps, tool, uint64(i)*0x5bd1e995+7)
		totalCut += float64(res.Cut)
		totalBal += res.Balance
		totalTime += res.Time
		if i == 0 || res.Cut < row.BestCut {
			row.BestCut = res.Cut
		}
	}
	row.AvgCut = totalCut / float64(reps)
	row.AvgBal = totalBal / float64(reps)
	row.AvgTime = totalTime / time.Duration(reps)
	return row
}

// Agg accumulates per-instance rows into the geometric means the paper
// reports ("when averaging over multiple instances, we use the geometric
// mean in order to give every instance the same influence").
type Agg struct {
	logCut, logBest, logBal, logTime float64
	n                                int
}

// Add accumulates one row.
func (a *Agg) Add(r Row) {
	a.logCut += math.Log(math.Max(r.AvgCut, 1))
	a.logBest += math.Log(math.Max(float64(r.BestCut), 1))
	a.logBal += math.Log(math.Max(r.AvgBal, 1e-9))
	a.logTime += math.Log(math.Max(r.AvgTime.Seconds(), 1e-9))
	a.n++
}

// Mean returns the geometric means of the accumulated rows.
func (a *Agg) Mean() (cut, best, bal, timeSec float64) {
	if a.n == 0 {
		return 0, 0, 0, 0
	}
	n := float64(a.n)
	return math.Exp(a.logCut / n), math.Exp(a.logBest / n), math.Exp(a.logBal / n), math.Exp(a.logTime / n)
}

// evaluate wraps part.FromBlocks for the tables that need a fresh partition
// view of a block assignment.
func evaluate(g *graph.Graph, k int, eps float64, blocks []int32) *part.Partition {
	return part.FromBlocks(g, k, eps, blocks)
}
