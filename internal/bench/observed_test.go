package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
)

// TestObservedMatchesUnobserved pins that attaching the full metric stack
// changes nothing about the partitions: the observed harness reproduces the
// unobserved rows exactly, and the registry ends up populated.
func TestObservedMatchesUnobserved(t *testing.T) {
	g := gen.RGG(10, 1)
	cfg := core.NewConfig(core.Fast, 8)
	cfg.Coarsen = core.CoarsenDistributed

	plain := RunKaPPa(g, cfg, 2)
	reg := obs.NewRegistry()
	observed := RunKaPPaObserved(g, cfg, 2, reg)

	if plain.AvgCut != observed.AvgCut || plain.BestCut != observed.BestCut || plain.AvgBal != observed.AvgBal {
		t.Fatalf("observed run diverged: cut %v/%v vs %v/%v", observed.AvgCut, observed.BestCut, plain.AvgCut, plain.BestCut)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"kappa_runs_total 2", "kappa_transport_supersteps_total", "kappa_arena_borrows_total"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("registry missing %q after observed runs:\n%s", want, sb.String())
		}
	}
}
