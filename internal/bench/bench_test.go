package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"time"
)

// tiny keeps harness tests fast: single rep, small k.
var tiny = Options{Reps: 1, Ks: []int{4}}

func TestSuitesNonEmptyAndCached(t *testing.T) {
	if len(Calibration()) == 0 || len(Large()) == 0 || len(Walshaw()) == 0 {
		t.Fatal("empty suite")
	}
	in := Calibration()[0]
	if in.Graph() != in.Graph() {
		t.Fatal("instance graph not cached")
	}
	if ByName("rgg13") == nil || ByName("nonexistent") != nil {
		t.Fatal("ByName lookup broken")
	}
	if len(LargeCoord()) != 4 {
		t.Fatalf("LargeCoord has %d instances, want 4", len(LargeCoord()))
	}
	if len(Scalability()) != 3 {
		t.Fatalf("Scalability has %d instances, want 3", len(Scalability()))
	}
}

func TestRunKaPPaAndAgg(t *testing.T) {
	in := ByName("grid64")
	row := RunKaPPa(in.Graph(), core.NewConfig(core.Minimal, 4), 2)
	if row.AvgCut <= 0 || row.BestCut <= 0 || row.AvgTime <= 0 {
		t.Fatalf("bad row: %+v", row)
	}
	if float64(row.BestCut) > row.AvgCut+1e-9 {
		t.Fatal("best cut above average")
	}
	var agg Agg
	agg.Add(row)
	agg.Add(row)
	cut, best, bal, sec := agg.Mean()
	if cut <= 0 || best <= 0 || bal < 1 || sec <= 0 {
		t.Fatalf("bad means: %v %v %v %v", cut, best, bal, sec)
	}
}

func TestRunTool(t *testing.T) {
	in := ByName("grid64")
	row := RunTool(in.Graph(), 4, 0.03, baseline.KMetisLike, 1)
	if row.AvgCut <= 0 {
		t.Fatalf("bad row: %+v", row)
	}
}

func TestAggEmpty(t *testing.T) {
	var agg Agg
	cut, best, bal, sec := agg.Mean()
	if cut != 0 || best != 0 || bal != 0 || sec != 0 {
		t.Fatal("empty Agg must return zeros")
	}
}

func TestTable1Smoke(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, name := range []string{"rgg13", "rgg16", "w-grid", "eur-like"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 1 missing %s", name)
		}
	}
}

func TestTable3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	Table3(&buf, tiny)
	out := buf.String()
	for _, s := range []string{"expansion*2", "weight", "gpa", "shem", "greedy"} {
		if !strings.Contains(out, s) {
			t.Fatalf("Table 3 missing %q", s)
		}
	}
}

func TestTable4LeftSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	Table4Left(&buf, tiny)
	for _, s := range []string{"TopGain", "MaxLoad", "Alternate"} {
		if !strings.Contains(buf.String(), s) {
			t.Fatalf("Table 4 left missing %q", s)
		}
	}
}

func TestWalshawSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	TableWalshaw(&buf, 0.03, Options{Reps: 1, Ks: []int{2, 4}})
	out := buf.String()
	if !strings.Contains(out, "w-grid") {
		t.Fatal("Walshaw table missing instance")
	}
	// Every cell must have been filled with a feasible result.
	if strings.Contains(out, "-1") {
		t.Fatalf("Walshaw table has unfilled cells:\n%s", out)
	}
}

func TestAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	AblationGapMatching(&buf, tiny)
	if !strings.Contains(buf.String(), "true") || !strings.Contains(buf.String(), "false") {
		t.Fatal("gap ablation output incomplete")
	}
}

func TestAblationDistributionSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	AblationDistribution(&buf, Options{Reps: 1, Ks: []int{4}, MaxInstances: 3})
	out := buf.String()
	for _, want := range []string{"ranges", "rcb", "sfc", "rgg13"} {
		if !strings.Contains(out, want) {
			t.Fatalf("distribution ablation output missing %q:\n%s", want, out)
		}
	}
}

func TestRowTimeAveraging(t *testing.T) {
	in := ByName("grid64")
	row := RunKaPPa(in.Graph(), core.NewConfig(core.Minimal, 2), 3)
	if row.AvgTime > time.Minute {
		t.Fatalf("implausible average time %v", row.AvgTime)
	}
}
