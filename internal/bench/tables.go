package bench

import (
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/initpart"
	"repro/internal/matching"
	"repro/internal/rating"
	"repro/internal/refine"
)

// Options scales the experiments: Reps is the number of repetitions per
// configuration (the paper uses 10), Ks the block counts (the paper uses
// 2..64), and MaxInstances optionally truncates each suite (used by the
// scaled-down testing.B benchmarks; 0 means the full suite).
type Options struct {
	Reps         int
	Ks           []int
	MaxInstances int
}

// Defaults fills unset fields.
func (o Options) defaults() Options {
	if o.Reps < 1 {
		o.Reps = 3
	}
	if len(o.Ks) == 0 {
		o.Ks = []int{16}
	}
	return o
}

// limit truncates a suite according to o.MaxInstances.
func (o Options) limit(suite []*Instance) []*Instance {
	if o.MaxInstances > 0 && len(suite) > o.MaxInstances {
		return suite[:o.MaxInstances]
	}
	return suite
}

// Table1 prints the basic properties of every benchmark instance (paper
// Table 1).
func Table1(w io.Writer) {
	fmt.Fprintf(w, "Table 1: benchmark instances (scaled synthetic stand-ins)\n")
	fmt.Fprintf(w, "%-16s %-10s %10s %12s %8s\n", "graph", "family", "n", "m", "coords")
	for _, suite := range [][]*Instance{Calibration(), Large(), Walshaw()} {
		for _, in := range suite {
			g := in.Graph()
			fmt.Fprintf(w, "%-16s %-10s %10d %12d %8v\n",
				in.Name, in.Family, g.NumNodes(), g.NumEdges(), g.HasCoords())
		}
		fmt.Fprintln(w)
	}
}

// Table2 prints the preset comparison of Table 2: the Minimal/Fast/Strong
// parameter columns plus their average cut and time (geometric means over
// the calibration suite).
func Table2(w io.Writer, o Options) {
	o = o.defaults()
	fmt.Fprintf(w, "Table 2: parameter presets (calibration suite, k=%v, %d reps)\n", o.Ks, o.Reps)
	fmt.Fprintf(w, "%-22s %10s %10s %10s\n", "parameter", "minimal", "fast", "strong")
	rows := [][4]string{
		{"rating", "expansion*2", "expansion*2", "expansion*2"},
		{"matching", "GPA", "GPA", "GPA"},
		{"stop contraction", "n/60k^2", "n/60k^2", "n/60k^2"},
		{"init. part.", "scotch-like", "scotch-like", "scotch-like"},
		{"init. repeats", "1", "3", "5"},
		{"queue selection", "TopGain", "TopGain", "TopGain"},
		{"BFS search depth", "1", "5", "20"},
		{"stop refinement", "-", "no change", "2x no change"},
		{"max. global iter", "1", "15", "15"},
		{"local iterations", "1", "3", "5"},
		{"matching selection", "coloring", "coloring", "coloring"},
		{"FM-patience alpha", "1%", "5%", "20%"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %10s %10s %10s\n", r[0], r[1], r[2], r[3])
	}
	for _, v := range []core.Variant{core.Minimal, core.Fast, core.Strong} {
		var agg Agg
		for _, in := range o.limit(Calibration()) {
			for _, k := range o.Ks {
				agg.Add(RunKaPPa(in.Graph(), core.NewConfig(v, k), o.Reps))
			}
		}
		cut, _, _, t := agg.Mean()
		fmt.Fprintf(w, "%-22s  cut (geom.) %8.0f   time (geom.) %7.2fs\n", v, cut, t)
	}
}

// Table3 prints the edge-rating and matching-algorithm comparisons of
// Table 3 (KaPPa-Fast on the calibration suite).
func Table3(w io.Writer, o Options) {
	o = o.defaults()
	fmt.Fprintf(w, "Table 3 (left): edge ratings, KaPPa-Fast, k=%v, %d reps\n", o.Ks, o.Reps)
	fmt.Fprintf(w, "%-14s %10s %10s %8s %8s\n", "rating", "avg", "best", "bal", "t[s]")
	for _, rf := range []rating.Func{rating.ExpansionStar2, rating.ExpansionStar, rating.InnerOuter, rating.Expansion, rating.Weight} {
		var agg Agg
		for _, in := range o.limit(Calibration()) {
			for _, k := range o.Ks {
				cfg := core.NewConfig(core.Fast, k)
				cfg.Rating = rf
				agg.Add(RunKaPPa(in.Graph(), cfg, o.Reps))
			}
		}
		cut, best, bal, t := agg.Mean()
		fmt.Fprintf(w, "%-14s %10.0f %10.0f %8.3f %8.2f\n", rf, cut, best, bal, t)
	}
	fmt.Fprintf(w, "\nTable 3 (right): sequential matching algorithms\n")
	fmt.Fprintf(w, "%-14s %10s %10s %8s %8s\n", "matcher", "avg", "best", "bal", "t[s]")
	for _, alg := range []matching.Algorithm{matching.GPA, matching.SHEM, matching.Greedy} {
		var agg Agg
		for _, in := range o.limit(Calibration()) {
			for _, k := range o.Ks {
				cfg := core.NewConfig(core.Fast, k)
				cfg.Matcher = alg
				agg.Add(RunKaPPa(in.Graph(), cfg, o.Reps))
			}
		}
		cut, best, bal, t := agg.Mean()
		fmt.Fprintf(w, "%-14s %10.0f %10.0f %8.3f %8.2f\n", alg, cut, best, bal, t)
	}
}

// TableInitPart prints the initial-partitioner comparison reported in the
// §6.1 text (pMetis ~4.7% worse than Scotch).
func TableInitPart(w io.Writer, o Options) {
	o = o.defaults()
	fmt.Fprintf(w, "Initial partitioning engines (KaPPa-Fast, k=%v, %d reps)\n", o.Ks, o.Reps)
	fmt.Fprintf(w, "%-14s %10s %10s %8s\n", "engine", "avg", "best", "t[s]")
	for _, eng := range []initpart.Engine{initpart.EngineScotch, initpart.EnginePMetis} {
		var agg Agg
		for _, in := range o.limit(Calibration()) {
			for _, k := range o.Ks {
				cfg := core.NewConfig(core.Fast, k)
				cfg.InitEngine = eng
				agg.Add(RunKaPPa(in.Graph(), cfg, o.Reps))
			}
		}
		cut, best, _, t := agg.Mean()
		fmt.Fprintf(w, "%-14s %10.0f %10.0f %8.2f\n", eng, cut, best, t)
	}
}

// Table4Left prints the queue-selection comparison (Table 4 left).
func Table4Left(w io.Writer, o Options) {
	o = o.defaults()
	fmt.Fprintf(w, "Table 4 (left): queue selection strategies, KaPPa-Fast, k=%v, %d reps\n", o.Ks, o.Reps)
	fmt.Fprintf(w, "%-16s %10s %10s %8s %8s\n", "strategy", "avg", "best", "bal", "t[s]")
	for _, st := range []refine.Strategy{refine.TopGain, refine.Alternate, refine.TopGainMaxLoad, refine.MaxLoad} {
		var agg Agg
		for _, in := range o.limit(Calibration()) {
			for _, k := range o.Ks {
				cfg := core.NewConfig(core.Fast, k)
				cfg.Strategy = st
				agg.Add(RunKaPPa(in.Graph(), cfg, o.Reps))
			}
		}
		cut, best, bal, t := agg.Mean()
		fmt.Fprintf(w, "%-16s %10.0f %10.0f %8.3f %8.2f\n", st, cut, best, bal, t)
	}
}

// Table4Right prints the tool comparison of Table 4 (right): the three
// KaPPa variants against the baselines, geometric means over the large
// suite.
func Table4Right(w io.Writer, o Options) {
	o = o.defaults()
	fmt.Fprintf(w, "Table 4 (right): comparison with other tools (large suite, k=%v, %d reps)\n", o.Ks, o.Reps)
	fmt.Fprintf(w, "%-16s %10s %10s %8s %8s\n", "variant", "avg", "best", "bal", "t[s]")
	for _, v := range []core.Variant{core.Strong, core.Fast, core.Minimal} {
		var agg Agg
		for _, in := range o.limit(Large()) {
			for _, k := range o.Ks {
				agg.Add(RunKaPPa(in.Graph(), core.NewConfig(v, k), o.Reps))
			}
		}
		cut, best, bal, t := agg.Mean()
		fmt.Fprintf(w, "%-16s %10.0f %10.0f %8.3f %8.2f\n", v, cut, best, bal, t)
	}
	for _, tool := range []baseline.Tool{baseline.ScotchLike, baseline.KMetisLike, baseline.ParMetisLike} {
		var agg Agg
		for _, in := range o.limit(Large()) {
			for _, k := range o.Ks {
				agg.Add(RunTool(in.Graph(), k, 0.03, tool, o.Reps))
			}
		}
		cut, best, bal, t := agg.Mean()
		fmt.Fprintf(w, "%-16s %10.0f %10.0f %8.3f %8.2f\n", tool, cut, best, bal, t)
	}
}

// Table5 prints the per-instance comparison on the largest graphs with
// coordinates at k=64 (paper Table 5).
func Table5(w io.Writer, o Options) {
	o = o.defaults()
	k := 64
	fmt.Fprintf(w, "Table 5: largest graphs with coordinates, k=%d, %d reps\n", k, o.Reps)
	fmt.Fprintf(w, "%-16s %-14s %10s %10s %8s %10s\n", "alg", "graph", "avg cut", "best cut", "bal", "t[s]")
	type runner func(in *Instance) Row
	algs := []struct {
		name string
		run  runner
	}{
		{"KaPPa-strong", func(in *Instance) Row { return RunKaPPa(in.Graph(), core.NewConfig(core.Strong, k), o.Reps) }},
		{"KaPPa-fast", func(in *Instance) Row { return RunKaPPa(in.Graph(), core.NewConfig(core.Fast, k), o.Reps) }},
		{"KaPPa-minimal", func(in *Instance) Row { return RunKaPPa(in.Graph(), core.NewConfig(core.Minimal, k), o.Reps) }},
		{"scotch", func(in *Instance) Row { return RunTool(in.Graph(), k, 0.03, baseline.ScotchLike, o.Reps) }},
		{"kmetis", func(in *Instance) Row { return RunTool(in.Graph(), k, 0.03, baseline.KMetisLike, o.Reps) }},
		{"parmetis", func(in *Instance) Row { return RunTool(in.Graph(), k, 0.03, baseline.ParMetisLike, o.Reps) }},
	}
	for _, alg := range algs {
		for _, in := range o.limit(LargeCoord()) {
			r := alg.run(in)
			fmt.Fprintf(w, "%-16s %-14s %10.0f %10d %8.3f %10.2f\n",
				alg.name, in.Name, r.AvgCut, r.BestCut, r.AvgBal, r.AvgTime.Seconds())
		}
	}
}

// TablePerInstanceVariant prints one of Tables 6–14: per-instance results
// for a KaPPa variant at a fixed k over the large suite.
func TablePerInstanceVariant(w io.Writer, v core.Variant, k int, o Options) {
	o = o.defaults()
	fmt.Fprintf(w, "%s, k=%d (%d reps)\n", v, k, o.Reps)
	fmt.Fprintf(w, "%-16s %10s %10s %8s %10s\n", "graph", "avg cut", "best cut", "bal", "t[s]")
	for _, in := range o.limit(Large()) {
		r := RunKaPPa(in.Graph(), core.NewConfig(v, k), o.Reps)
		fmt.Fprintf(w, "%-16s %10.0f %10d %8.3f %10.2f\n", in.Name, r.AvgCut, r.BestCut, r.AvgBal, r.AvgTime.Seconds())
	}
}

// TablePerInstanceTool prints one of Tables 15–20: per-instance results for
// a baseline tool at a fixed k over the large suite.
func TablePerInstanceTool(w io.Writer, tool baseline.Tool, k int, o Options) {
	o = o.defaults()
	fmt.Fprintf(w, "%s, k=%d (%d reps)\n", tool, k, o.Reps)
	fmt.Fprintf(w, "%-16s %10s %10s %8s %10s\n", "graph", "avg cut", "best cut", "bal", "t[s]")
	for _, in := range o.limit(Large()) {
		r := RunTool(in.Graph(), k, 0.03, tool, o.Reps)
		fmt.Fprintf(w, "%-16s %10.0f %10d %8.3f %10.2f\n", in.Name, r.AvgCut, r.BestCut, r.AvgBal, r.AvgTime.Seconds())
	}
}

// Figure3 prints the scalability series of Figure 3: total time against the
// number of blocks/PEs for the three largest graphs, for the KaPPa variants
// and the baselines. In the paper KaPPa keeps scaling to 1024 PEs while
// parMetis flattens around 100; here PEs are goroutines, so the curves bend
// at the hardware parallelism but the orderings hold.
func Figure3(w io.Writer, o Options) {
	o = o.defaults()
	ks := o.Ks
	if len(ks) <= 1 {
		ks = []int{4, 8, 16, 32, 64}
	}
	fmt.Fprintf(w, "Figure 3: total time [s] vs k (PEs = k), %d reps\n", o.Reps)
	for _, in := range o.limit(Scalability()) {
		fmt.Fprintf(w, "\n== %s (n=%d, m=%d) ==\n", in.Name, in.Graph().NumNodes(), in.Graph().NumEdges())
		fmt.Fprintf(w, "%-16s", "alg \\ k")
		for _, k := range ks {
			fmt.Fprintf(w, " %8d", k)
		}
		fmt.Fprintln(w)
		series := []struct {
			name string
			run  func(k int) float64
		}{
			{"KaPPa-strong", func(k int) float64 {
				return RunKaPPa(in.Graph(), core.NewConfig(core.Strong, k), o.Reps).AvgTime.Seconds()
			}},
			{"KaPPa-fast", func(k int) float64 {
				return RunKaPPa(in.Graph(), core.NewConfig(core.Fast, k), o.Reps).AvgTime.Seconds()
			}},
			{"KaPPa-minimal", func(k int) float64 {
				return RunKaPPa(in.Graph(), core.NewConfig(core.Minimal, k), o.Reps).AvgTime.Seconds()
			}},
			{"scotch", func(k int) float64 {
				return RunTool(in.Graph(), k, 0.03, baseline.ScotchLike, o.Reps).AvgTime.Seconds()
			}},
			{"kmetis", func(k int) float64 {
				return RunTool(in.Graph(), k, 0.03, baseline.KMetisLike, o.Reps).AvgTime.Seconds()
			}},
			{"parmetis", func(k int) float64 {
				return RunTool(in.Graph(), k, 0.03, baseline.ParMetisLike, o.Reps).AvgTime.Seconds()
			}},
		}
		for _, s := range series {
			fmt.Fprintf(w, "%-16s", s.name)
			for _, k := range ks {
				fmt.Fprintf(w, " %8.2f", s.run(k))
			}
			fmt.Fprintln(w)
		}
	}
}

// TableWalshaw prints one of Tables 21–23: for each instance and k, the
// best cut found under the Walshaw rules — try the ratings innerOuter,
// expansion* and expansion*2 repeatedly with a strengthened Strong
// configuration and keep the best feasible result, annotated with the
// winning rating (* = expansion*, ** = expansion*2, + = innerOuter).
func TableWalshaw(w io.Writer, eps float64, o Options) {
	o = o.defaults()
	ks := o.Ks
	if len(ks) <= 1 {
		ks = []int{2, 4, 8, 16, 32, 64}
	}
	fmt.Fprintf(w, "Walshaw benchmark, eps=%.0f%%, %d tries per rating\n", eps*100, o.Reps)
	fmt.Fprintf(w, "%-12s", "graph")
	for _, k := range ks {
		fmt.Fprintf(w, " %12d", k)
	}
	fmt.Fprintln(w)
	marks := map[rating.Func]string{
		rating.ExpansionStar:  "*",
		rating.ExpansionStar2: "**",
		rating.InnerOuter:     "+",
	}
	for _, in := range o.limit(Walshaw()) {
		fmt.Fprintf(w, "%-12s", in.Name)
		g := in.Graph()
		for _, k := range ks {
			bestCut := int64(-1)
			bestMark := "?"
			for _, rf := range []rating.Func{rating.InnerOuter, rating.ExpansionStar, rating.ExpansionStar2} {
				cfg := core.NewConfig(core.Strong, k)
				cfg.Eps = eps
				cfg.Rating = rf
				cfg.Patience = 0.30 // §6.3: FM patience strengthened to 30%
				for rep := 0; rep < o.Reps; rep++ {
					cfg.Seed = uint64(rep)*0x9e3779b9 + uint64(k)
					res := core.Partition(g, cfg)
					p := evaluate(g, k, eps, res.Blocks)
					if !p.Feasible() {
						continue
					}
					if bestCut < 0 || res.Cut < bestCut {
						bestCut = res.Cut
						bestMark = marks[rf]
					}
				}
			}
			fmt.Fprintf(w, " %2s%10d", bestMark, bestCut)
		}
		fmt.Fprintln(w)
	}
}

// Figure3Scaling is the strong-scaling view of Figure 3: k is fixed and the
// number of simulated PEs used by the parallel coarsening varies. In the
// paper PEs and blocks coincide and time falls all the way to 1024 PEs; here
// the curve flattens at the machine's core count, but the speedup from 1 PE
// up to the hardware parallelism — and the contrast with the sequential
// baselines, which cannot use more PEs at all — reproduces the claim.
func Figure3Scaling(w io.Writer, o Options) {
	o = o.defaults()
	const k = 32
	pes := []int{1, 2, 4, 8, 16, 32}
	fmt.Fprintf(w, "Figure 3 (strong scaling): KaPPa-Fast total time [s], k=%d, varying PEs, %d reps\n", k, o.Reps)
	for _, in := range o.limit(Scalability()) {
		fmt.Fprintf(w, "\n== %s ==\n", in.Name)
		fmt.Fprintf(w, "%-8s %10s\n", "PEs", "t[s]")
		for _, p := range pes {
			cfg := core.NewConfig(core.Fast, k)
			cfg.PEs = p
			row := RunKaPPa(in.Graph(), cfg, o.Reps)
			fmt.Fprintf(w, "%-8d %10.2f\n", p, row.AvgTime.Seconds())
		}
	}
}
