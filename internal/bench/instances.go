// Package bench is the experiment harness: it defines the benchmark
// instance suites mirroring Table 1 of the paper and the runners that
// regenerate every table and figure of the evaluation section (§6).
//
// The instances are synthetic stand-ins for the paper's archive graphs,
// scaled down (2^11–2^16 nodes instead of up to 2^25) so that the whole
// evaluation reruns in minutes on one machine; see DESIGN.md for the
// substitution rationale. Absolute cut values therefore differ from the
// paper; the comparisons — which algorithm wins, by what factor, who
// violates the balance constraint, how times scale — are the reproduction
// targets.
package bench

import (
	"sync"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Instance is one benchmark graph with a lazy, cached generator.
type Instance struct {
	Name   string
	Family string // geometric | fem | street | matrix | social
	Make   func() *graph.Graph

	once sync.Once
	g    *graph.Graph
}

// Graph generates (once) and returns the instance.
func (in *Instance) Graph() *graph.Graph {
	in.once.Do(func() { in.g = in.Make() })
	return in.g
}

var (
	suitesOnce  sync.Once
	calibration []*Instance
	large       []*Instance
	walshaw     []*Instance
)

func buildSuites() {
	calibration = []*Instance{
		{Name: "rgg13", Family: "geometric", Make: func() *graph.Graph { return gen.RGG(13, 1001) }},
		{Name: "delaunay13", Family: "geometric", Make: func() *graph.Graph { return gen.DelaunayX(13, 1002) }},
		{Name: "grid64", Family: "fem", Make: func() *graph.Graph { return gen.Grid2D(64, 64) }},
		{Name: "fem8k", Family: "fem", Make: func() *graph.Graph { return gen.FEMMesh(8192, 6, 1003) }},
		{Name: "grid3d-16", Family: "fem", Make: func() *graph.Graph { return gen.Grid3D(16, 16, 16) }},
		{Name: "band6k", Family: "matrix", Make: func() *graph.Graph { return gen.Banded(6000, 8, 24, 0.6, 1004) }},
		{Name: "road12k", Family: "street", Make: func() *graph.Graph { return gen.Road(12000, 6, 1005) }},
		{Name: "social8k", Family: "social", Make: func() *graph.Graph { return gen.PrefAttach(8192, 5, 1006) }},
	}
	large = []*Instance{
		{Name: "rgg16", Family: "geometric", Make: func() *graph.Graph { return gen.RGG(16, 2001) }},
		{Name: "delaunay16", Family: "geometric", Make: func() *graph.Graph { return gen.DelaunayX(16, 2002) }},
		{Name: "fem40k", Family: "fem", Make: func() *graph.Graph { return gen.FEMMesh(40000, 10, 2003) }},
		{Name: "grid3d-32", Family: "fem", Make: func() *graph.Graph { return gen.Grid3D(32, 32, 32) }},
		{Name: "deu-like", Family: "street", Make: func() *graph.Graph { return gen.Road(40000, 10, 2004) }},
		{Name: "eur-like", Family: "street", Make: func() *graph.Graph { return gen.Road(90000, 16, 2005) }},
		{Name: "afshell-like", Family: "matrix", Make: func() *graph.Graph { return gen.Banded(30000, 10, 30, 0.7, 2006) }},
		{Name: "coauthors-like", Family: "social", Make: func() *graph.Graph { return gen.PrefAttach(30000, 6, 2007) }},
		{Name: "citation-like", Family: "social", Make: func() *graph.Graph { return gen.RMAT(15, 12, 2008) }},
	}
	walshaw = []*Instance{
		{Name: "w-grid", Family: "fem", Make: func() *graph.Graph { return gen.Grid2D(56, 56) }},                     // 3elt/4elt-like
		{Name: "w-fem", Family: "fem", Make: func() *graph.Graph { return gen.FEMMesh(10000, 4, 3001) }},             // whitaker3-like
		{Name: "w-rgg", Family: "geometric", Make: func() *graph.Graph { return gen.RGG(12, 3002) }},                 // cs4-like
		{Name: "w-band", Family: "matrix", Make: func() *graph.Graph { return gen.Banded(8000, 12, 36, 0.7, 3003) }}, // bcsstk-like
		{Name: "w-road", Family: "street", Make: func() *graph.Graph { return gen.Road(9000, 5, 3004) }},             // uk-like
		{Name: "w-social", Family: "social", Make: func() *graph.Graph { return gen.PrefAttach(6000, 4, 3005) }},     // add20-like
	}
}

// Calibration is the small/medium suite used for parameter tuning (§6.1,
// Tables 2–4 left), standing in for the left column of Table 1.
func Calibration() []*Instance {
	suitesOnce.Do(buildSuites)
	return calibration
}

// Large is the larger suite of §6.2 (Tables 4 right through 20), standing in
// for the right column of Table 1: geometric graphs, FEM graphs, street
// networks, sparse matrices, and social networks, in that order.
func Large() []*Instance {
	suitesOnce.Do(buildSuites)
	return large
}

// LargeCoord is the subset of Large with coordinates, used by Table 5 (the
// paper's rgg20, Delaunay20, deu, eur).
func LargeCoord() []*Instance {
	var out []*Instance
	for _, in := range Large() {
		switch in.Name {
		case "rgg16", "delaunay16", "deu-like", "eur-like":
			out = append(out, in)
		}
	}
	return out
}

// Walshaw is the small-instance suite of §6.3 (Tables 21–23).
func Walshaw() []*Instance {
	suitesOnce.Do(buildSuites)
	return walshaw
}

// Scalability returns the three graphs of Figure 3 (eur, rgg and Delaunay,
// scaled).
func Scalability() []*Instance {
	var out []*Instance
	for _, in := range Large() {
		switch in.Name {
		case "eur-like", "rgg16", "delaunay16":
			out = append(out, in)
		}
	}
	return out
}

// ByName returns a registered instance or nil.
func ByName(name string) *Instance {
	suitesOnce.Do(buildSuites)
	for _, suite := range [][]*Instance{calibration, large, walshaw} {
		for _, in := range suite {
			if in.Name == name {
				return in
			}
		}
	}
	return nil
}
