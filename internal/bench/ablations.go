package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/refine"
	"repro/internal/rng"
)

// Ablations exercise the design choices DESIGN.md calls out beyond the
// paper's own parameter studies.

// AblationPairwiseVsKway contrasts the paper's pairwise two-block refinement
// with the classical global k-way refinement on the same multilevel
// machinery (§8: localizing the search improves quality *and* enables
// parallelism).
func AblationPairwiseVsKway(w io.Writer, o Options) {
	o = o.defaults()
	fmt.Fprintf(w, "Ablation: pairwise (KaPPa) vs global k-way refinement, k=%v, %d reps\n", o.Ks, o.Reps)
	fmt.Fprintf(w, "%-14s %-12s %10s %10s\n", "graph", "refinement", "avg cut", "t[s]")
	for _, in := range o.limit(Calibration()) {
		g := in.Graph()
		for _, k := range o.Ks {
			pair := RunKaPPa(g, core.NewConfig(core.Fast, k), o.Reps)
			kway := runKwayVariant(g, k, o.Reps)
			fmt.Fprintf(w, "%-14s %-12s %10.0f %10.2f\n", in.Name, "pairwise", pair.AvgCut, pair.AvgTime.Seconds())
			fmt.Fprintf(w, "%-14s %-12s %10.0f %10.2f\n", in.Name, "k-way", kway.AvgCut, kway.AvgTime.Seconds())
		}
	}
}

// runKwayVariant runs the KaPPa pipeline but replaces the pairwise
// refinement with greedy k-way passes: same coarsening, same initial
// partitioning.
func runKwayVariant(g *graph.Graph, k int, reps int) Row {
	var row Row
	var totalCut float64
	for i := 0; i < reps; i++ {
		cfg := core.NewConfig(core.Fast, k)
		cfg.Seed = uint64(i)*31 + 5
		// Approximate: run KaPPa with refinement disabled (1 global
		// iteration, band 1, patience 0) and then k-way refine the result.
		cfg.MaxGlobalIter = 1
		cfg.LocalIter = 1
		cfg.BandDepth = 1
		cfg.Patience = 0.01
		res := core.Partition(g, cfg)
		p := part.FromBlocks(g, k, cfg.Eps, res.Blocks)
		refine.KWayGreedy(p, 3, rng.New(uint64(i)))
		totalCut += float64(p.Cut())
		if c := p.Cut(); i == 0 || c < row.BestCut {
			row.BestCut = c
		}
	}
	row.AvgCut = totalCut / float64(reps)
	return row
}

// AblationDistribution contrasts the node-to-PE distribution strategies of
// §3.3 on the mesh-family instances with coordinates (rgg, Delaunay, grid):
// per strategy it reports the prepartition's edge locality and per-PE weight
// imbalance, then the cut the full pipeline reaches when coarsening on top
// of that distribution. The paper's claim is that geometric prepartitioning
// (RCB; here also the cheaper SFC) keeps matching local and improves
// parallel matching quality over plain index ranges.
func AblationDistribution(w io.Writer, o Options) {
	o = o.defaults()
	fmt.Fprintf(w, "Ablation: distribution strategy, KaPPa-Fast, k=%v, %d reps\n", o.Ks, o.Reps)
	fmt.Fprintf(w, "%-14s %-8s %10s %10s %10s %10s\n", "graph", "dist", "locality", "imbal", "avg cut", "t[s]")
	strategies := []dist.Strategy{dist.StrategyRanges, dist.StrategyRCB, dist.StrategySFC}
	for _, in := range o.limit(Calibration()) {
		g := in.Graph()
		if !g.HasCoords() {
			continue // geometric strategies would silently fall back
		}
		for _, k := range o.Ks {
			for _, s := range strategies {
				assign := dist.Assign(g, s, k)
				locality := dist.EdgeLocality(g, assign)
				imbal := dist.Imbalance(g, assign, k)
				cfg := core.NewConfig(core.Fast, k)
				cfg.Distribution = s
				row := RunKaPPa(g, cfg, o.Reps)
				fmt.Fprintf(w, "%-14s %-8s %10.3f %10.3f %10.0f %10.2f\n",
					in.Name, s, locality, imbal, row.AvgCut, row.AvgTime.Seconds())
			}
		}
	}
}

// AblationCoarsenMode contrasts shared-memory coarsening with PE-local
// coarsening over extracted subgraphs with ghost exchange (§3) on the
// coordinate-carrying instances: per mode it reports the edge locality of
// the node-to-PE distribution the coarsening runs on, then the cut and time
// the full pipeline reaches. The reproduction target is that the distributed
// mode — the configuration that would survive graphs too large for one
// address space — stays within a few percent of the shared-memory cut.
func AblationCoarsenMode(w io.Writer, o Options) {
	o = o.defaults()
	fmt.Fprintf(w, "Ablation: coarsening mode, KaPPa-Fast, k=%v, %d reps\n", o.Ks, o.Reps)
	fmt.Fprintf(w, "%-14s %-12s %10s %10s %10s\n", "graph", "coarsen", "locality", "avg cut", "t[s]")
	for _, in := range o.limit(Calibration()) {
		g := in.Graph()
		if !g.HasCoords() {
			continue // keep the comparison on the geometric instances
		}
		for _, k := range o.Ks {
			assign := dist.Assign(g, dist.StrategyAuto, k)
			locality := dist.EdgeLocality(g, assign)
			for _, mode := range []core.CoarsenMode{core.CoarsenShared, core.CoarsenDistributed} {
				cfg := core.NewConfig(core.Fast, k)
				cfg.Coarsen = mode
				row := RunKaPPa(g, cfg, o.Reps)
				fmt.Fprintf(w, "%-14s %-12s %10.3f %10.0f %10.2f\n",
					in.Name, mode, locality, row.AvgCut, row.AvgTime.Seconds())
			}
		}
	}
}

// AblationBandDepth sweeps the BFS band depth (Table 2's 1/5/20 values plus
// an effectively unbounded search).
func AblationBandDepth(w io.Writer, o Options) {
	o = o.defaults()
	fmt.Fprintf(w, "Ablation: band depth sweep, KaPPa-Fast, k=%v, %d reps\n", o.Ks, o.Reps)
	fmt.Fprintf(w, "%-10s %10s %10s\n", "depth", "avg cut", "t[s]")
	for _, depth := range []int{1, 5, 20, 1 << 20} {
		var agg Agg
		for _, in := range o.limit(Calibration()) {
			for _, k := range o.Ks {
				cfg := core.NewConfig(core.Fast, k)
				cfg.BandDepth = depth
				agg.Add(RunKaPPa(in.Graph(), cfg, o.Reps))
			}
		}
		cut, _, _, t := agg.Mean()
		name := fmt.Sprint(depth)
		if depth >= 1<<20 {
			name = "unbounded"
		}
		fmt.Fprintf(w, "%-10s %10.0f %10.2f\n", name, cut, t)
	}
}

// AblationGapMatching toggles the gap-graph matching of §3.3 on and off.
func AblationGapMatching(w io.Writer, o Options) {
	o = o.defaults()
	fmt.Fprintf(w, "Ablation: gap-graph matching, KaPPa-Fast, k=%v, %d reps\n", o.Ks, o.Reps)
	fmt.Fprintf(w, "%-10s %10s %10s %8s\n", "gap", "avg cut", "t[s]", "levels")
	for _, gap := range []bool{true, false} {
		var agg Agg
		for _, in := range o.limit(Calibration()) {
			for _, k := range o.Ks {
				cfg := core.NewConfig(core.Fast, k)
				cfg.GapMatching = gap
				agg.Add(RunKaPPa(in.Graph(), cfg, o.Reps))
			}
		}
		cut, _, _, t := agg.Mean()
		fmt.Fprintf(w, "%-10v %10.0f %10.2f\n", gap, cut, t)
	}
}

// AblationSchedule contrasts the distributed edge-coloring schedule with the
// random-maximal-matching schedule (§5.1: coloring performs slightly
// better).
func AblationSchedule(w io.Writer, o Options) {
	o = o.defaults()
	fmt.Fprintf(w, "Ablation: pair scheduling, KaPPa-Fast, k=%v, %d reps\n", o.Ks, o.Reps)
	fmt.Fprintf(w, "%-14s %10s %10s\n", "schedule", "avg cut", "t[s]")
	for _, sched := range []core.Schedule{core.ScheduleColoring, core.ScheduleRandomPairs} {
		var agg Agg
		for _, in := range o.limit(Calibration()) {
			for _, k := range o.Ks {
				cfg := core.NewConfig(core.Fast, k)
				cfg.Schedule = sched
				agg.Add(RunKaPPa(in.Graph(), cfg, o.Reps))
			}
		}
		cut, _, _, t := agg.Mean()
		name := "coloring"
		if sched == core.ScheduleRandomPairs {
			name = "random-pairs"
		}
		fmt.Fprintf(w, "%-14s %10.0f %10.2f\n", name, cut, t)
	}
}

// AblationInitRepeats sweeps the number of initial-partitioning repeats.
func AblationInitRepeats(w io.Writer, o Options) {
	o = o.defaults()
	fmt.Fprintf(w, "Ablation: initial partitioning repeats, KaPPa-Fast, k=%v, %d reps\n", o.Ks, o.Reps)
	fmt.Fprintf(w, "%-10s %10s %10s\n", "repeats", "avg cut", "t[s]")
	for _, reps := range []int{1, 3, 5, 10} {
		var agg Agg
		for _, in := range o.limit(Calibration()) {
			for _, k := range o.Ks {
				cfg := core.NewConfig(core.Fast, k)
				cfg.InitRepeats = reps
				agg.Add(RunKaPPa(in.Graph(), cfg, o.Reps))
			}
		}
		cut, _, _, t := agg.Mean()
		fmt.Fprintf(w, "%-10d %10.0f %10.2f\n", reps, cut, t)
	}
}

// AblationEvolveVsRestarts contrasts plain restarts with the evolutionary
// regime of §8 at equal budget (population+generations runs each).
func AblationEvolveVsRestarts(w io.Writer, o Options) {
	o = o.defaults()
	fmt.Fprintf(w, "Ablation: evolutionary search vs plain restarts, k=%v, %d reps\n", o.Ks, o.Reps)
	fmt.Fprintf(w, "%-14s %-12s %10s\n", "graph", "regime", "cut")
	for _, in := range o.limit(Calibration()) {
		for _, k := range o.Ks {
			cfg := core.NewConfig(core.Fast, k)
			cfg.Seed = 17
			restarts := core.Evolve(in.Graph(), cfg, 4, 0) // 4 independent runs
			evolved := core.Evolve(in.Graph(), cfg, 2, 2)  // 2 + 2 with mutation
			fmt.Fprintf(w, "%-14s %-12s %10d\n", in.Name, "restarts", restarts.Cut)
			fmt.Fprintf(w, "%-14s %-12s %10d\n", in.Name, "evolve", evolved.Cut)
		}
	}
}
