package bench

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/obs"
)

// RunKaPPaObserved is RunKaPPa with the full observability stack attached:
// the pipeline metric observer, a metered transport, and arena gauges, all
// feeding reg. It exists to measure the cost of observation — benchmarked
// against the unobserved RunKaPPa, the delta is the overhead of the metrics
// path (recorded in the BENCH_*.json trajectory as Partition/…/observed).
func RunKaPPaObserved(g *graph.Graph, cfg core.Config, reps int, reg *obs.Registry) Row {
	if reps < 1 {
		reps = 1
	}
	var row Row
	var totalCut, totalBal float64
	var tm core.Timings
	arena := mem.NewArena()
	stats := dist.NewTransportStats(cfg.NumPEs())
	obs.BindTransport(reg, stats)
	obs.BindArena(reg, arena)
	observer := obs.NewPipelineObserver(reg)
	for i := 0; i < reps; i++ {
		cfg.Seed = uint64(i)*0x5bd1e995 + 7
		res, err := core.Run(context.Background(), g, cfg,
			core.WithObserver(&tm),
			core.WithObserver(observer),
			core.WithTransportStats(stats),
			core.WithArena(arena))
		if err != nil {
			//kappa:allow panicfree the bench harness only builds valid configurations; an error is a harness bug
			panic("bench: " + err.Error())
		}
		obs.RecordResult(reg, res)
		totalCut += float64(res.Cut)
		totalBal += res.Balance
		if i == 0 || res.Cut < row.BestCut {
			row.BestCut = res.Cut
		}
	}
	row.AvgCut = totalCut / float64(reps)
	row.AvgBal = totalBal / float64(reps)
	row.AvgTime = tm.Total / time.Duration(reps)
	row.AvgCoarsen = tm.Coarsen / time.Duration(reps)
	row.AvgInit = tm.Init / time.Duration(reps)
	row.AvgRefine = tm.Refine / time.Duration(reps)
	return row
}
