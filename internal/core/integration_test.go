package core

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/rating"
)

// TestWeightRatingNotCatastrophic is a regression guard for the
// cluster-weight cap: without it, the plain weight rating (all ties on
// unit-weight inputs) lets GPA's global heaviest-first matching snowball a
// single cluster, and final cuts blow up by an order of magnitude instead of
// the paper's ~9%. With the cap, weight must stay within 2x of expansion*2.
func TestWeightRatingNotCatastrophic(t *testing.T) {
	g := gen.DelaunayX(13, 5)
	run := func(rf rating.Func) int64 {
		var total int64
		for s := uint64(0); s < 2; s++ {
			cfg := NewConfig(Fast, 16)
			cfg.Rating = rf
			cfg.Seed = s
			total += Partition(g, cfg).Cut
		}
		return total
	}
	weight := run(rating.Weight)
	exp2 := run(rating.ExpansionStar2)
	if weight > 2*exp2 {
		t.Fatalf("weight rating catastrophically worse: %d vs %d", weight, exp2)
	}
}

// TestEndToEndAllFamilies partitions one instance of every benchmark family
// with every variant and checks validity and feasibility — the integration
// surface of the whole pipeline.
func TestEndToEndAllFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"rgg", gen.RGG(10, 1), 8},
		{"delaunay", gen.DelaunayX(10, 2), 8},
		{"grid3d", gen.Grid3D(10, 10, 10), 8},
		{"road", gen.Road(4000, 4, 3), 4},
		{"social", gen.PrefAttach(3000, 4, 4), 4},
		{"banded", gen.Banded(3000, 8, 20, 0.5, 5), 4},
	}
	for _, tc := range cases {
		for _, v := range []Variant{Minimal, Fast, Strong} {
			cfg := NewConfig(v, tc.k)
			cfg.Seed = 9
			res := Partition(tc.g, cfg)
			p := part.FromBlocks(tc.g, tc.k, cfg.Eps, res.Blocks)
			if err := p.Validate(); err != nil {
				t.Errorf("%s %v: %v", tc.name, v, err)
			}
			if !p.Feasible() {
				t.Errorf("%s %v: infeasible (%.3f)", tc.name, v, p.Imbalance())
			}
		}
	}
}

// TestKaPPaBeatsBaselinesOnMeshes asserts the paper's headline shape on a
// mesh: averaged over seeds, KaPPa-Strong must beat the kMetis-like and
// parMetis-like recipes.
func TestKaPPaBeatsBaselinesOnMeshes(t *testing.T) {
	g := gen.DelaunayX(12, 8)
	var strong, kmetis, parmetis int64
	for s := uint64(0); s < 3; s++ {
		cfg := NewConfig(Strong, 8)
		cfg.Seed = s
		strong += Partition(g, cfg).Cut
		kmetis += baseline.Run(g, 8, 0.03, baseline.KMetisLike, s).Cut
		parmetis += baseline.Run(g, 8, 0.03, baseline.ParMetisLike, s).Cut
	}
	if strong > kmetis {
		t.Errorf("KaPPa-Strong (%d) lost to kmetis-like (%d)", strong, kmetis)
	}
	if strong > parmetis {
		t.Errorf("KaPPa-Strong (%d) lost to parmetis-like (%d)", strong, parmetis)
	}
}
