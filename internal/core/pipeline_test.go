package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
)

// TestRunInvalidConfig checks the error contract: bad input surfaces as
// ErrInvalidConfig-wrapped errors, never as a panic.
func TestRunInvalidConfig(t *testing.T) {
	g := gen.Grid2D(8, 8)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"k=0", func(c *Config) { c.K = 0 }},
		{"negative eps", func(c *Config) { c.Eps = -0.5 }},
		{"zero alpha", func(c *Config) { c.StopAlpha = 0 }},
		{"zero repeats", func(c *Config) { c.InitRepeats = 0 }},
	}
	for _, tc := range cases {
		cfg := NewConfig(Fast, 4)
		tc.mut(&cfg)
		_, err := Run(context.Background(), g, cfg)
		if err == nil {
			t.Fatalf("%s: expected an error", tc.name)
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: error %v does not wrap ErrInvalidConfig", tc.name, err)
		}
	}
	if _, err := Run(context.Background(), nil, NewConfig(Fast, 4)); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("nil graph: got %v", err)
	}
}

// TestRunMatchesPartition checks that the pipeline entry point is
// byte-identical to the legacy wrapper for a fixed seed, in both coarsening
// modes.
func TestRunMatchesPartition(t *testing.T) {
	g := gen.RGG(11, 6)
	for _, mode := range []CoarsenMode{CoarsenShared, CoarsenDistributed} {
		cfg := NewConfig(Fast, 8)
		cfg.Seed = 77
		cfg.Coarsen = mode
		legacy := Partition(g, cfg)
		res, err := Run(context.Background(), g, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Cut != legacy.Cut {
			t.Fatalf("%v: Run cut %d != Partition cut %d", mode, res.Cut, legacy.Cut)
		}
		for v := range legacy.Blocks {
			if res.Blocks[v] != legacy.Blocks[v] {
				t.Fatalf("%v: block of node %d differs", mode, v)
			}
		}
	}
}

// TestRunCancelDuringCoarsening cancels the context from an observer as soon
// as the first contraction level lands and expects Run to abort promptly —
// before initial partitioning — with ctx.Err().
func TestRunCancelDuringCoarsening(t *testing.T) {
	g := gen.RGG(13, 2) // large enough for several contraction levels
	cfg := NewConfig(Fast, 8)
	cfg.Seed = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var events []TraceEvent
	obs := ObserverFunc(func(ev TraceEvent) {
		events = append(events, ev)
		if lv, ok := ev.(LevelEvent); ok && lv.Level == 1 {
			cancel()
		}
	})
	_, err := Run(ctx, g, cfg, WithObserver(obs))
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	for _, ev := range events {
		switch ev.(type) {
		case InitEvent, RefineEvent:
			t.Fatalf("pipeline kept going after cancellation: saw %T", ev)
		}
	}
}

// TestRunObserverOrder verifies the documented event order: level events
// with increasing level numbers, the coarsen phase, the init event and
// phase, refine events by non-decreasing level with increasing iterations,
// the refine phase, and the total phase last. All attached observers see
// every event.
func TestRunObserverOrder(t *testing.T) {
	g := gen.DelaunayX(11, 3)
	cfg := NewConfig(Fast, 8)
	cfg.Seed = 21
	var events []TraceEvent
	var count int
	_, err := Run(context.Background(), g, cfg,
		WithObserver(ObserverFunc(func(ev TraceEvent) { events = append(events, ev) })),
		WithObserver(ObserverFunc(func(TraceEvent) { count++ })),
	)
	if err != nil {
		t.Fatal(err)
	}
	if count != len(events) {
		t.Fatalf("second observer saw %d events, first %d", count, len(events))
	}
	const (
		stageCoarsen = iota
		stageInit
		stageRefine
		stageDone
	)
	stage := stageCoarsen
	lastLevel, levels := 0, 0
	lastRefineLevel, lastIter := -1, -1
	for i, ev := range events {
		switch e := ev.(type) {
		case LevelEvent:
			if stage != stageCoarsen {
				t.Fatalf("event %d: LevelEvent after coarsen phase closed", i)
			}
			if e.Level != lastLevel+1 {
				t.Fatalf("event %d: level %d after level %d", i, e.Level, lastLevel)
			}
			lastLevel = e.Level
			levels++
		case InitEvent:
			if stage != stageInit {
				t.Fatalf("event %d: InitEvent in stage %d", i, stage)
			}
		case RefineEvent:
			if stage != stageRefine {
				t.Fatalf("event %d: RefineEvent in stage %d", i, stage)
			}
			if e.Level < lastRefineLevel {
				t.Fatalf("event %d: refine level %d after %d", i, e.Level, lastRefineLevel)
			}
			if e.Level == lastRefineLevel && e.Iteration != lastIter+1 {
				t.Fatalf("event %d: iteration %d after %d", i, e.Iteration, lastIter)
			}
			lastRefineLevel, lastIter = e.Level, e.Iteration
		case PhaseEvent:
			switch {
			case e.Phase == PhaseCoarsen && stage == stageCoarsen:
				stage = stageInit
			case e.Phase == PhaseInit && stage == stageInit:
				stage = stageRefine
			case e.Phase == PhaseRefine && stage == stageRefine:
				stage = stageDone
			case e.Phase == PhaseTotal && stage == stageDone:
				if i != len(events)-1 {
					t.Fatalf("event %d: PhaseTotal is not last", i)
				}
			default:
				t.Fatalf("event %d: phase %v out of order (stage %d)", i, e.Phase, stage)
			}
		}
	}
	if stage != stageDone {
		t.Fatalf("incomplete event stream: finished in stage %d", stage)
	}
	if levels == 0 {
		t.Fatal("no LevelEvents observed")
	}
	if lastRefineLevel != levels {
		t.Fatalf("refinement reached level %d, hierarchy has %d", lastRefineLevel, levels)
	}
}

// TestRunWithLockstepTransport swaps the channel Exchanger for the
// barrier-based LockstepTransport and expects byte-identical results — the
// proof that distributed coarsening goes exclusively through the Transport
// seam.
func TestRunWithLockstepTransport(t *testing.T) {
	g := gen.RGG(11, 8)
	cfg := NewConfig(Fast, 8)
	cfg.Seed = 1234
	cfg.Coarsen = CoarsenDistributed

	def, err := Run(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	alt, err := Run(context.Background(), g, cfg, WithTransport(dist.NewLockstepTransport(8)))
	if err != nil {
		t.Fatal(err)
	}
	if alt.Cut != def.Cut {
		t.Fatalf("lockstep cut %d != exchanger cut %d", alt.Cut, def.Cut)
	}
	for v := range def.Blocks {
		if alt.Blocks[v] != def.Blocks[v] {
			t.Fatalf("block of node %d differs across transports", v)
		}
	}
}

// TestRunTransportPEMismatch checks that a transport sized for the wrong PE
// count is rejected up front as a configuration error.
func TestRunTransportPEMismatch(t *testing.T) {
	g := gen.Grid2D(16, 16)
	cfg := NewConfig(Fast, 8)
	cfg.Coarsen = CoarsenDistributed
	_, err := Run(context.Background(), g, cfg, WithTransport(dist.NewExchanger(4)))
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("got %v, want ErrInvalidConfig", err)
	}
}

// TestRefineExistingCtxCancelled checks the ctx-aware refinement wrapper.
func TestRefineExistingCtxCancelled(t *testing.T) {
	g := gen.Grid2D(24, 24)
	cfg := NewConfig(Fast, 4)
	blocks := make([]int32, g.NumNodes())
	for v := range blocks {
		blocks[v] = int32(v % 4)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := RefineExistingCtx(ctx, g, cfg, blocks); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if _, _, err := RefineExistingCtx(context.Background(), g, cfg, blocks[:10]); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("short blocks: got %v, want ErrInvalidConfig", err)
	}
}
