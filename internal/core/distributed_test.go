package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
)

// TestPartitionDistributedCoarsening runs the full pipeline with PE-local
// coarsening: the result must be a feasible partition, byte-identical across
// repeated runs at a fixed seed, and of comparable quality to shared-memory
// coarsening.
func TestPartitionDistributedCoarsening(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", gen.Grid2D(48, 48)},
		{"rgg", gen.RGG(11, 8)},
		{"delaunay", gen.DelaunayX(11, 9)},
	} {
		const k = 8
		cfg := NewConfig(Fast, k)
		cfg.Seed = 1234
		cfg.Coarsen = CoarsenDistributed
		res := Partition(tc.g, cfg)
		p := part.FromBlocks(tc.g, k, cfg.Eps, res.Blocks)
		if !p.Feasible() {
			t.Errorf("%s: distributed coarsening produced infeasible partition (balance %.4f)", tc.name, p.Imbalance())
		}
		if res.Levels == 0 {
			t.Errorf("%s: no contraction levels built", tc.name)
		}

		res2 := Partition(tc.g, cfg)
		if res2.Cut != res.Cut {
			t.Errorf("%s: cut not deterministic: %d vs %d", tc.name, res.Cut, res2.Cut)
		}
		for v := range res.Blocks {
			if res.Blocks[v] != res2.Blocks[v] {
				t.Fatalf("%s: block of node %d differs across identical runs", tc.name, v)
			}
		}

		shared := cfg
		shared.Coarsen = CoarsenShared
		sres := Partition(tc.g, shared)
		if sres.Cut > 0 && float64(res.Cut) > 1.5*float64(sres.Cut) {
			t.Errorf("%s: distributed cut %d much worse than shared %d", tc.name, res.Cut, sres.Cut)
		}
	}
}
