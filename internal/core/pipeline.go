package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"repro/internal/coarsen"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/part"
	"repro/internal/refine"
	"repro/internal/rng"
)

// ErrInvalidConfig wraps every configuration error returned by Run, so
// callers can distinguish user mistakes (usage errors, exit code 2 in
// cmd/kappa) from runtime failures: errors.Is(err, ErrInvalidConfig).
var ErrInvalidConfig = errors.New("core: invalid configuration")

// Distributor assigns every node of g to one of pes PEs — the
// prepartitioning stage of §3.3, consulted once per contraction level. The
// default consults cfg.Distribution (RCB/SFC/ranges).
type Distributor interface {
	Distribute(ctx context.Context, g *graph.Graph, cfg *Config, pes int) ([]int32, error)
}

// Coarsener builds the contraction hierarchy of §3. The default runs
// matching-based contraction — shared-memory or PE-local over the Transport,
// per cfg.Coarsen — until the stop rule of §4 fires, and emits one
// LevelEvent per pushed level.
type Coarsener interface {
	Coarsen(ctx context.Context, g *graph.Graph, cfg *Config, env *Env) (*coarsen.Hierarchy, error)
}

// InitialPartitioner partitions the coarsest graph (§4). The default runs
// the sequential initial partitioner cfg.InitRepeats times concurrently and
// adopts the best result.
type InitialPartitioner interface {
	InitialPartition(ctx context.Context, g *graph.Graph, cfg *Config, env *Env) (blocks []int32, cut int64, err error)
}

// Refiner lifts the initial partition through the hierarchy and improves it
// (§5). The default runs parallel pairwise FM scheduled by an edge coloring
// of the quotient graph and emits one RefineEvent per global iteration.
type Refiner interface {
	Refine(ctx context.Context, h *coarsen.Hierarchy, initial []int32, cfg *Config, env *Env) (*part.Partition, error)
}

// Env is what the Pipeline hands every stage besides the graph and config:
// the cross-stage collaborators (node distributor, message transport, the
// run's scratch arena) and the trace sink.
type Env struct {
	Distributor Distributor
	// Transport carries the superstep messages of distributed coarsening.
	// nil means one channel-backed dist.Exchanger per contraction level —
	// the in-process default.
	Transport dist.Transport
	// Arena is the run's scratch arena: every level of coarsening and every
	// refinement round borrows its temporaries here, so the V-cycle
	// allocates its working set once at the finest level and reuses it all
	// the way down and back up. nil degrades to fresh allocations.
	Arena *mem.Arena

	observers []Observer
	stats     *dist.TransportStats
	refineWS  sync.Pool // *refine.Workspace, reused across pairs/levels/iterations
}

// getWorkspace borrows a refinement workspace from the run's pool.
func (e *Env) getWorkspace() *refine.Workspace {
	if ws, ok := e.refineWS.Get().(*refine.Workspace); ok {
		return ws
	}
	return refine.NewWorkspace()
}

// putWorkspace returns a workspace borrowed with getWorkspace.
func (e *Env) putWorkspace(ws *refine.Workspace) { e.refineWS.Put(ws) }

// Emit delivers ev to every attached Observer, in attachment order.
func (e *Env) Emit(ev TraceEvent) {
	for _, o := range e.observers {
		o.OnTrace(ev)
	}
}

// transportFor returns the Transport distributed coarsening must use for a
// superstep sequence over pes PEs, metered when the run carries transport
// stats (dist.Metered is the identity for nil stats).
func (e *Env) transportFor(pes int) dist.Transport {
	t := e.Transport
	if t == nil {
		t = dist.NewExchanger(pes)
	}
	return dist.Metered(t, e.stats)
}

// Pipeline is the composable KaPPa runner: four pluggable stages, an
// optional Transport for the distributed contraction phase, and optional
// Observers for typed progress events. The zero value runs the paper's
// pipeline; NewPipeline applies functional options on top of the defaults.
//
// Error contract: Run returns ErrInvalidConfig-wrapped errors for bad input,
// the context's error (matching errors.Is(err, context.Canceled) or
// context.DeadlineExceeded) when cancelled, and never panics on user input.
// A fixed Config.Seed makes Run byte-deterministic — and byte-identical to
// the legacy Partition wrapper.
type Pipeline struct {
	Distributor Distributor
	Coarsener   Coarsener
	Initial     InitialPartitioner
	Refiner     Refiner
	Transport   dist.Transport
	Observers   []Observer
	// Stats, when non-nil, receives per-PE transport counters from every
	// superstep of distributed coarsening: the Env's transports are wrapped
	// with dist.Metered. nil (the default) leaves transports unwrapped — the
	// hot path is untouched.
	Stats *dist.TransportStats
	// Arena is the scratch arena runs draw their temporaries from. nil
	// gives every Run a private arena; setting one (WithArena) lets
	// repeated runs — benchmark repetitions, a partitioning service —
	// reuse the same backing buffers across runs. Arenas are safe for
	// concurrent use, including concurrent Runs.
	Arena *mem.Arena
}

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithObserver attaches an Observer; repeated options attach several, all of
// which receive every event in order.
func WithObserver(o Observer) Option {
	return func(p *Pipeline) { p.Observers = append(p.Observers, o) }
}

// WithTransport routes every superstep of distributed coarsening through t
// instead of per-level channel Exchangers. t.PEs() must match the
// configured PE count; Run rejects a mismatch as ErrInvalidConfig.
func WithTransport(t dist.Transport) Option {
	return func(p *Pipeline) { p.Transport = t }
}

// WithTransportStats meters every superstep of distributed coarsening into
// s: message and superstep counts and barrier time, per PE. The counters are
// atomic, so s may be scraped (obs.BindTransport) while the run is in
// flight. A nil s is the identity.
func WithTransportStats(s *dist.TransportStats) Option {
	return func(p *Pipeline) { p.Stats = s }
}

// WithArena makes runs draw their scratch buffers (matching candidate
// arrays, contraction member lists and scatter arrays, refinement bands and
// projection ping-pong buffers) from a instead of a run-private arena, so
// repeated runs reuse one working set. Results are byte-identical with and
// without a shared arena.
func WithArena(a *mem.Arena) Option {
	return func(p *Pipeline) { p.Arena = a }
}

// WithDistributor replaces the node-to-PE prepartitioning stage.
func WithDistributor(d Distributor) Option {
	return func(p *Pipeline) { p.Distributor = d }
}

// WithCoarsener replaces the contraction stage.
func WithCoarsener(c Coarsener) Option {
	return func(p *Pipeline) { p.Coarsener = c }
}

// WithInitialPartitioner replaces the initial partitioning stage.
func WithInitialPartitioner(ip InitialPartitioner) Option {
	return func(p *Pipeline) { p.Initial = ip }
}

// WithRefiner replaces the refinement stage.
func WithRefiner(r Refiner) Option {
	return func(p *Pipeline) { p.Refiner = r }
}

// NewPipeline returns a Pipeline with the paper's default stages and the
// given options applied.
func NewPipeline(opts ...Option) *Pipeline {
	p := &Pipeline{}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Run executes the pipeline with the given options; it is the primary entry
// point of the package. See Pipeline.Run for the error contract.
func Run(ctx context.Context, g *graph.Graph, cfg Config, opts ...Option) (Result, error) {
	return NewPipeline(opts...).Run(ctx, g, cfg)
}

// Run executes the full pipeline on g: contraction, initial partitioning,
// multilevel refinement. A nil ctx counts as context.Background(). The
// context is checked between phases, before every contraction level, and
// before every global refinement iteration, so cancellation aborts promptly
// with ctx.Err(); invalid configurations return ErrInvalidConfig-wrapped
// errors instead of panicking.
func (pl *Pipeline) Run(ctx context.Context, g *graph.Graph, cfg Config) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if g == nil {
		return Result{}, fmt.Errorf("%w: nil graph", ErrInvalidConfig)
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	if pl.Transport != nil && pl.Transport.PEs() != cfg.pes() {
		return Result{}, fmt.Errorf("%w: transport connects %d PEs, configuration uses %d",
			ErrInvalidConfig, pl.Transport.PEs(), cfg.pes())
	}
	if pl.Stats != nil && pl.Stats.PEs() < cfg.pes() {
		return Result{}, fmt.Errorf("%w: transport stats track %d PEs, configuration uses %d",
			ErrInvalidConfig, pl.Stats.PEs(), cfg.pes())
	}
	arena := pl.Arena
	if arena == nil {
		arena = mem.NewArena()
	}
	env := &Env{
		Distributor: pl.Distributor,
		Transport:   pl.Transport,
		Arena:       arena,
		observers:   pl.Observers,
		stats:       pl.Stats,
	}
	if env.Distributor == nil {
		env.Distributor = strategyDistributor{}
	}
	coarsener := pl.Coarsener
	if coarsener == nil {
		coarsener = matchingCoarsener{}
	}
	initial := pl.Initial
	if initial == nil {
		initial = repeatInitialPartitioner{}
	}
	refiner := pl.Refiner
	if refiner == nil {
		refiner = pairwiseRefiner{}
	}

	start := time.Now()

	// Each phase runs under a pprof goroutine label (inherited by every
	// worker goroutine the phase spawns), so CPU profiles of a run split by
	// stage. A handful of label allocations per run — noise next to a phase.

	// ------ Contraction phase (§3) ------
	tc := time.Now()
	var h *coarsen.Hierarchy
	var err error
	pprof.Do(ctx, pprof.Labels("stage", PhaseCoarsen.String()), func(ctx context.Context) {
		h, err = coarsener.Coarsen(ctx, g, &cfg, env)
	})
	if err != nil {
		return Result{}, fmt.Errorf("core: coarsening: %w", err)
	}
	coarsenTime := time.Since(tc)
	env.Emit(PhaseEvent{PhaseCoarsen, coarsenTime})

	// ------ Initial partitioning (§4) ------
	ti := time.Now()
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("core: initial partitioning: %w", err)
	}
	var block []int32
	var cut int64
	pprof.Do(ctx, pprof.Labels("stage", PhaseInit.String()), func(ctx context.Context) {
		block, cut, err = initial.InitialPartition(ctx, h.Coarsest, &cfg, env)
	})
	if err != nil {
		return Result{}, fmt.Errorf("core: initial partitioning: %w", err)
	}
	initTime := time.Since(ti)
	env.Emit(InitEvent{Cut: cut, Time: initTime})
	env.Emit(PhaseEvent{PhaseInit, initTime})

	// ------ Refinement phase (§5) ------
	tr := time.Now()
	var p *part.Partition
	pprof.Do(ctx, pprof.Labels("stage", PhaseRefine.String()), func(ctx context.Context) {
		p, err = refiner.Refine(ctx, h, block, &cfg, env)
	})
	if err != nil {
		return Result{}, fmt.Errorf("core: refinement: %w", err)
	}
	refineTime := time.Since(tr)
	env.Emit(PhaseEvent{PhaseRefine, refineTime})

	res := Result{
		Blocks:      p.Block,
		Cut:         p.Cut(),
		Balance:     p.Imbalance(),
		Levels:      h.Depth(),
		CoarsenTime: coarsenTime,
		InitTime:    initTime,
		RefineTime:  refineTime,
		TotalTime:   time.Since(start),
	}
	env.Emit(PhaseEvent{PhaseTotal, res.TotalTime})
	return res, nil
}

// strategyDistributor is the default Distributor: the strategy selected by
// cfg.Distribution (§3.3).
type strategyDistributor struct{}

func (strategyDistributor) Distribute(ctx context.Context, g *graph.Graph, cfg *Config, pes int) ([]int32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return dist.Assign(g, cfg.Distribution, pes), nil
}

// LevelKernel performs one contraction level: match cur (with blocks as the
// node-to-PE assignment when PEs > 1, nil otherwise) and contract the
// matching into the next coarser graph. It returns the coarse graph, the
// fine→coarse node map, and the matching/contraction kernel times — or a nil
// graph to signal an empty matching (the graph cannot shrink further).
// CoarsenWith drives a kernel through the paper's stop rule; the default
// kernels run in-process, internal/remote's kernel ships each PE its shard
// and runs the level across worker processes.
type LevelKernel func(ctx context.Context, cur *graph.Graph, cfg *Config, blocks []int32, level int, maxPair int64) (cg *graph.Graph, f2c []int32, matchT, contractT time.Duration, err error)

// CoarsenWith runs the contraction loop of §3/§4 around a per-level kernel:
// fewer than max(20·P, n/(α·k²), 2k) nodes remain — the per-PE threshold
// max(20, n/(αk²)) of the paper summed over PEs — or the graph stops
// shrinking geometrically. It computes the per-level node distribution, the
// cluster-weight cap, and emits one LevelEvent per pushed level, so every
// Coarsener built on it (in-process or out-of-process) shares the exact
// same hierarchy policy.
func CoarsenWith(ctx context.Context, g *graph.Graph, cfg *Config, env *Env, kernel LevelKernel) (*coarsen.Hierarchy, error) {
	pes := cfg.NumPEs()
	n0 := float64(g.NumNodes())
	threshold := int(n0 / (cfg.StopAlpha * float64(cfg.K) * float64(cfg.K)))
	if t := 20 * pes; threshold < t {
		threshold = t
	}
	if t := 2 * cfg.K; threshold < t {
		threshold = t
	}
	h := coarsen.NewHierarchy(g)
	// Cluster-weight cap (Metis' maxvwgt): no contracted pair may exceed
	// 1.5x the average node weight of the target coarsest graph, so even
	// tie-heavy ratings cannot snowball single clusters into blobs the
	// balance constraint cannot place.
	maxPair := 3 * g.TotalNodeWeight() / (2 * int64(threshold))
	if maxPair < 2 {
		maxPair = 2
	}
	for level := 0; h.Coarsest.NumNodes() > threshold; level++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cur := h.Coarsest
		tl := time.Now()
		var blocks []int32
		if pes > 1 {
			var err error
			blocks, err = env.Distributor.Distribute(ctx, cur, cfg, pes)
			if err != nil {
				return nil, err
			}
		}
		var cg *graph.Graph
		var f2c []int32
		var matchT, contractT time.Duration
		var err error
		pprof.Do(ctx, pprof.Labels("level", strconv.Itoa(level)), func(ctx context.Context) {
			cg, f2c, matchT, contractT, err = kernel(ctx, cur, cfg, blocks, level, maxPair)
		})
		if err != nil {
			return nil, err
		}
		if cg == nil {
			break // empty matching: the graph cannot shrink further
		}
		// Insist on geometric shrinking; otherwise initial partitioning can
		// handle the rest.
		if cg.NumNodes() > cur.NumNodes()*49/50 {
			break
		}
		h.Push(cg, f2c)
		env.Emit(LevelEvent{
			Level:    h.Depth(),
			Nodes:    cg.NumNodes(),
			Edges:    cg.NumEdges(),
			Time:     time.Since(tl),
			Match:    matchT,
			Contract: contractT,
		})
	}
	return h, nil
}

// matchingCoarsener is the default Coarsener: the CoarsenWith loop around
// the in-process level kernels — shared-memory matching/contraction, or the
// PE-local distributed kernel over the Env's Transport, per cfg.Coarsen.
type matchingCoarsener struct{}

func (matchingCoarsener) Coarsen(ctx context.Context, g *graph.Graph, cfg *Config, env *Env) (*coarsen.Hierarchy, error) {
	pes := cfg.NumPEs()
	return CoarsenWith(ctx, g, cfg, env, func(ctx context.Context, cur *graph.Graph, cfg *Config, blocks []int32, level int, maxPair int64) (*graph.Graph, []int32, time.Duration, time.Duration, error) {
		var cg *graph.Graph
		var f2c []int32
		var matchT, contractT time.Duration
		if pes > 1 && cfg.Coarsen == CoarsenDistributed {
			cg, f2c, matchT, contractT = distributedLevel(cur, cfg, blocks, env.transportFor(pes), pes, level, maxPair)
		} else {
			cg, f2c, matchT, contractT = sharedLevel(cur, cfg, blocks, pes, level, maxPair, env.Arena)
		}
		return cg, f2c, matchT, contractT, nil
	})
}

// repeatInitialPartitioner is the default InitialPartitioner: cfg.InitRepeats
// concurrent seeded runs of the sequential partitioner, best result adopted.
type repeatInitialPartitioner struct{}

func (repeatInitialPartitioner) InitialPartition(ctx context.Context, g *graph.Graph, cfg *Config, env *Env) ([]int32, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	block, cut := initialPartition(g, cfg)
	return block, cut, nil
}

// pairwiseRefiner is the default Refiner: the nested refinement loops of §5
// on every level, coarsest to finest, followed by a rebalancing pass when
// the projected partition violates the balance constraint.
type pairwiseRefiner struct{}

func (pairwiseRefiner) Refine(ctx context.Context, h *coarsen.Hierarchy, initial []int32, cfg *Config, env *Env) (*part.Partition, error) {
	p := part.FromBlocks(h.Coarsest, cfg.K, cfg.Eps, initial)
	if err := refineLevel(ctx, p, cfg, 0, 0, env); err != nil {
		return nil, err
	}
	// Uncoarsening projects through ping-ponged arena buffers: each level's
	// block array is recycled once the next-finer projection has read it.
	// Only the finest level allocates fresh — its block array escapes into
	// the Result while the arena lives on for the next run. The coarsest
	// block array is never recycled: it belongs to the InitialPartitioner
	// (whose interface makes no ownership promise), not to this stage.
	borrowed := false
	for li := h.Depth() - 1; li >= 0; li-- {
		fine := h.Levels[li].Fine
		var dst []int32
		if li == 0 {
			dst = make([]int32, fine.NumNodes())
		} else {
			dst = env.Arena.Int32(fine.NumNodes())
		}
		h.ProjectInto(li, p.Block, dst)
		if borrowed {
			env.Arena.PutInt32(p.Block)
		}
		borrowed = li > 0
		p = part.FromBlocks(fine, cfg.K, cfg.Eps, dst)
		if err := refineLevel(ctx, p, cfg, uint64(h.Depth()-li), h.Depth()-li, env); err != nil {
			return nil, err
		}
	}
	if !p.Feasible() {
		refine.Rebalance(p, rng.NewStream(cfg.Seed, 0xba1a))
	}
	return p, nil
}
