package core

import (
	"fmt"
	"time"
)

// Phase names one top-level stage of the pipeline.
type Phase int

const (
	// PhaseCoarsen is the contraction phase (§3).
	PhaseCoarsen Phase = iota
	// PhaseInit is initial partitioning of the coarsest graph (§4).
	PhaseInit
	// PhaseRefine is multilevel pairwise refinement (§5).
	PhaseRefine
	// PhaseTotal is the whole run; its PhaseEvent is always the last event.
	PhaseTotal
)

// String returns the human-readable phase name.
func (p Phase) String() string {
	switch p {
	case PhaseCoarsen:
		return "coarsen"
	case PhaseInit:
		return "init"
	case PhaseRefine:
		return "refine"
	case PhaseTotal:
		return "total"
	default:
		return fmt.Sprintf("core.Phase(%d)", int(p))
	}
}

// TraceEvent is a typed progress event emitted by a Pipeline run. Events are
// emitted synchronously from the coordinating goroutine, in pipeline order:
// one LevelEvent per contraction level, then the coarsen PhaseEvent, the
// InitEvent, the init PhaseEvent, the RefineEvents of every uncoarsening
// level, the refine PhaseEvent, and finally the total PhaseEvent. An
// Observer must not block for long — it runs on the pipeline's critical
// path.
type TraceEvent interface {
	// String renders the event for progress logs.
	String() string
	traceEvent()
}

// LevelEvent reports one pushed contraction level, including the split of
// its wall-clock between the two kernels of the level: matching (including
// the node-to-PE prepartition) and contraction. The kernel times are what
// perf work optimizes; Time additionally covers the level's bookkeeping.
type LevelEvent struct {
	Level int // 1-based contraction level
	Nodes int // nodes of the new coarser graph
	Edges int // edges of the new coarser graph
	Time  time.Duration

	Match    time.Duration // matching kernel (§3.2–3.3)
	Contract time.Duration // contraction kernel (two-pass CSR build)
}

func (LevelEvent) traceEvent() {}

func (e LevelEvent) String() string {
	return fmt.Sprintf("level %d: %d nodes, %d edges (%v; match %v, contract %v)",
		e.Level, e.Nodes, e.Edges, e.Time.Round(time.Microsecond),
		e.Match.Round(time.Microsecond), e.Contract.Round(time.Microsecond))
}

// InitEvent reports the initial partition of the coarsest graph.
type InitEvent struct {
	Cut  int64
	Time time.Duration
}

func (InitEvent) traceEvent() {}

func (e InitEvent) String() string {
	return fmt.Sprintf("init: cut %d (%v)", e.Cut, e.Time.Round(time.Microsecond))
}

// RefineEvent reports one global refinement iteration on one level.
type RefineEvent struct {
	Level     int   // uncoarsening steps done: 0 = coarsest graph, Levels = finest
	Iteration int   // global iteration within the level, 0-based
	Gain      int64 // total cut reduction of the iteration
}

func (RefineEvent) traceEvent() {}

func (e RefineEvent) String() string {
	return fmt.Sprintf("refine level %d iter %d: gain %d", e.Level, e.Iteration, e.Gain)
}

// PhaseEvent reports a finished phase and its wall-clock duration.
type PhaseEvent struct {
	Phase Phase
	Time  time.Duration
}

func (PhaseEvent) traceEvent() {}

func (e PhaseEvent) String() string {
	return fmt.Sprintf("%s phase: %v", e.Phase, e.Time.Round(time.Microsecond))
}

// Observer receives the trace events of a pipeline run; attach one with
// WithObserver. Implementations need not be safe for concurrent use: the
// pipeline emits from a single goroutine.
type Observer interface {
	OnTrace(TraceEvent)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(TraceEvent)

// OnTrace calls f(ev).
func (f ObserverFunc) OnTrace(ev TraceEvent) { f(ev) }

// Timings is an Observer accumulating the per-phase wall-clock durations of
// a run from its PhaseEvents — how benchmark harnesses obtain phase timings
// without ad-hoc stopwatches around the call.
type Timings struct {
	Coarsen, Init, Refine, Total time.Duration
}

// OnTrace implements Observer.
func (t *Timings) OnTrace(ev TraceEvent) {
	pe, ok := ev.(PhaseEvent)
	if !ok {
		return
	}
	switch pe.Phase {
	case PhaseCoarsen:
		t.Coarsen += pe.Time
	case PhaseInit:
		t.Init += pe.Time
	case PhaseRefine:
		t.Refine += pe.Time
	case PhaseTotal:
		t.Total += pe.Time
	}
}
