package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/refine"
	"repro/internal/rng"
)

// This file implements the extensions §8 sketches as future work: refining
// an existing partition (the repartitioning building block) and combining
// KaPPa with evolutionary multistart search (the paper cites Soper/Walshaw/
// Cross [24] and expects evolutionary methods to beat plain restarts for
// large k).

// RefineExisting improves a given block assignment without recomputing it
// from scratch: it runs the parallel pairwise refinement of §5 directly on
// the finest graph (no multilevel hierarchy), rebalancing first if the input
// violates the balance constraint. It returns the refined partition and its
// cut. The input slice is not modified. It is a legacy wrapper (panics on
// invalid configuration); RefineExistingCtx is the error-returning form.
func RefineExisting(g *graph.Graph, cfg Config, blocks []int32) ([]int32, int64) {
	refined, cut, err := RefineExistingCtx(context.Background(), g, cfg, blocks)
	if err != nil {
		//kappa:allow panicfree documented legacy wrapper contract: panic on invalid config, use RefineExistingCtx for errors
		panic(err)
	}
	return refined, cut
}

// RefineExistingCtx is RefineExisting under the new error contract: invalid
// configurations come back as ErrInvalidConfig-wrapped errors, a cancelled
// context aborts between global iterations with ctx.Err(), and WithObserver
// options receive the RefineEvents (there is no hierarchy, so events carry
// Level 0).
func RefineExistingCtx(ctx context.Context, g *graph.Graph, cfg Config, blocks []int32, opts ...Option) ([]int32, int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	if len(blocks) != g.NumNodes() {
		return nil, 0, fmt.Errorf("%w: %d blocks for %d nodes", ErrInvalidConfig, len(blocks), g.NumNodes())
	}
	pl := NewPipeline(opts...)
	env := &Env{observers: pl.Observers}
	own := append([]int32(nil), blocks...)
	p := part.FromBlocks(g, cfg.K, cfg.Eps, own)
	if !p.Feasible() {
		refine.Rebalance(p, rng.NewStream(cfg.Seed, 0xba1a2))
	}
	if err := refineLevel(ctx, p, &cfg, 0x5eed, 0, env); err != nil {
		return nil, 0, err
	}
	return p.Block, p.Cut(), nil
}

// EvolveResult reports an evolutionary run.
type EvolveResult struct {
	Blocks      []int32
	Cut         int64
	Generations int
	Restarts    int
}

// Evolve runs a small evolutionary multistart search on top of the KaPPa
// pipeline: a population of partitions from independent seeded runs is
// improved over generations by (a) re-refining the current best with fresh
// seeds (mutation) and (b) injecting fresh restarts to keep diversity. The
// best feasible individual survives. With generations == 0 this degenerates
// to plain restarts, so the benchmark harness can compare the two regimes.
func Evolve(g *graph.Graph, cfg Config, population, generations int) EvolveResult {
	if population < 1 {
		population = 1
	}
	type indiv struct {
		blocks []int32
		cut    int64
	}
	run := func(seed uint64) indiv {
		c := cfg
		c.Seed = seed
		res := Partition(g, c)
		return indiv{res.Blocks, res.Cut}
	}
	// Initial population: independent restarts, in parallel.
	pop := make([]indiv, population)
	var wg sync.WaitGroup
	for i := range pop {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pop[i] = run(cfg.Seed + uint64(i)*0x9e3779b9)
		}(i)
	}
	wg.Wait()
	best := pop[0]
	for _, in := range pop[1:] {
		if in.cut < best.cut {
			best = in
		}
	}
	restarts := population
	for gen := 0; gen < generations; gen++ {
		// Mutation: re-refine the champion with a fresh seed; the pairwise
		// FM's randomized queues explore a different neighborhood each time.
		mcfg := cfg
		mcfg.Seed = cfg.Seed ^ uint64(gen+1)*0xdeadbeef
		mutBlocks, mutCut := RefineExisting(g, mcfg, best.blocks)
		if mutCut < best.cut {
			best = indiv{mutBlocks, mutCut}
		}
		// Immigration: one fresh restart per generation keeps diversity.
		fresh := run(cfg.Seed + uint64(population+gen)*0x9e3779b9)
		restarts++
		if fresh.cut < best.cut {
			best = fresh
		}
	}
	return EvolveResult{
		Blocks:      best.blocks,
		Cut:         best.cut,
		Generations: generations,
		Restarts:    restarts,
	}
}
