package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
)

func check(t *testing.T, g *graph.Graph, k int, eps float64, res Result) *part.Partition {
	t.Helper()
	p := part.FromBlocks(g, k, eps, res.Blocks)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Cut() != res.Cut {
		t.Fatalf("reported cut %d != actual %d", res.Cut, p.Cut())
	}
	return p
}

func TestPartitionGridVariants(t *testing.T) {
	g := gen.Grid2D(24, 24)
	for _, v := range []Variant{Minimal, Fast, Strong} {
		for _, k := range []int{2, 4, 8} {
			cfg := NewConfig(v, k)
			cfg.Seed = 42
			res := Partition(g, cfg)
			p := check(t, g, k, cfg.Eps, res)
			if !p.Feasible() {
				t.Errorf("%v k=%d: infeasible (balance %.3f)", v, k, p.Imbalance())
			}
			// Sanity on quality: a 24x24 grid cut into k stripes costs
			// 24(k-1); accept anything within 2.5x of that.
			bound := int64(24*(k-1)*5/2 + 12)
			if res.Cut > bound {
				t.Errorf("%v k=%d: cut %d above sanity bound %d", v, k, res.Cut, bound)
			}
		}
	}
}

func TestVariantQualityOrdering(t *testing.T) {
	// Strong must beat Minimal on average (Table 2: 2890 vs 2985).
	g := gen.RGG(12, 7)
	var minimal, strong int64
	for seed := uint64(0); seed < 3; seed++ {
		cm := NewConfig(Minimal, 8)
		cm.Seed = seed
		cs := NewConfig(Strong, 8)
		cs.Seed = seed
		minimal += Partition(g, cm).Cut
		strong += Partition(g, cs).Cut
	}
	if strong > minimal {
		t.Fatalf("Strong total cut %d > Minimal %d", strong, minimal)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := gen.DelaunayX(10, 3)
	cfg := NewConfig(Fast, 4)
	cfg.Seed = 99
	a := Partition(g, cfg)
	b := Partition(g, cfg)
	if a.Cut != b.Cut {
		t.Fatalf("same seed, different cuts: %d vs %d", a.Cut, b.Cut)
	}
}

func TestPartitionK1(t *testing.T) {
	g := gen.Grid2D(8, 8)
	cfg := NewConfig(Fast, 1)
	cfg.Seed = 1
	res := Partition(g, cfg)
	if res.Cut != 0 {
		t.Fatalf("k=1 cut = %d", res.Cut)
	}
	for _, b := range res.Blocks {
		if b != 0 {
			t.Fatal("k=1 must put everything in block 0")
		}
	}
}

func TestPartitionWithoutCoords(t *testing.T) {
	g := gen.Banded(4000, 10, 30, 0.7, 5) // no coordinates: index-range prepartition
	cfg := NewConfig(Fast, 8)
	cfg.Seed = 5
	res := Partition(g, cfg)
	p := check(t, g, 8, cfg.Eps, res)
	if !p.Feasible() {
		t.Fatalf("infeasible: %.3f", p.Imbalance())
	}
	if res.Levels < 2 {
		t.Fatalf("expected a multilevel hierarchy, got %d levels", res.Levels)
	}
}

func TestPartitionSocialGraph(t *testing.T) {
	g := gen.PrefAttach(2000, 4, 9)
	cfg := NewConfig(Fast, 4)
	cfg.Seed = 3
	res := Partition(g, cfg)
	p := check(t, g, 4, cfg.Eps, res)
	if !p.Feasible() {
		t.Fatalf("infeasible on social graph: %.3f", p.Imbalance())
	}
}

func TestGapMatchingAblationRuns(t *testing.T) {
	g := gen.RGG(10, 4)
	cfg := NewConfig(Fast, 4)
	cfg.Seed = 8
	cfg.GapMatching = false
	res := Partition(g, cfg)
	p := check(t, g, 4, cfg.Eps, res)
	if !p.Feasible() {
		t.Fatal("ablation produced infeasible partition")
	}
}

func TestRandomPairScheduleRuns(t *testing.T) {
	g := gen.RGG(10, 4)
	cfg := NewConfig(Fast, 4)
	cfg.Seed = 8
	cfg.Schedule = ScheduleRandomPairs
	res := Partition(g, cfg)
	p := check(t, g, 4, cfg.Eps, res)
	if !p.Feasible() {
		t.Fatal("random-pair schedule produced infeasible partition")
	}
}

func TestPEsIndependentOfK(t *testing.T) {
	// Decoupling PEs from K (the paper's future-work interface) must work.
	g := gen.RGG(11, 6)
	cfg := NewConfig(Fast, 4)
	cfg.Seed = 2
	cfg.PEs = 16
	res := Partition(g, cfg)
	p := check(t, g, 4, cfg.Eps, res)
	if !p.Feasible() {
		t.Fatal("PEs != K produced infeasible partition")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{K: 0},
		{K: 2, Eps: -1},
		{K: 2, StopAlpha: 0},
		{K: 2, StopAlpha: 60, InitRepeats: 0},
		{K: 2, StopAlpha: 60, InitRepeats: 1, MaxGlobalIter: 0},
		{K: 2, StopAlpha: 60, InitRepeats: 1, MaxGlobalIter: 1, LocalIter: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	good := NewConfig(Fast, 4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVariantStrings(t *testing.T) {
	if Minimal.String() != "KaPPa-Minimal" || Fast.String() != "KaPPa-Fast" || Strong.String() != "KaPPa-Strong" {
		t.Fatal("variant names wrong")
	}
}

func TestTimingsPopulated(t *testing.T) {
	g := gen.Grid2D(20, 20)
	cfg := NewConfig(Fast, 4)
	cfg.Seed = 1
	res := Partition(g, cfg)
	if res.TotalTime <= 0 {
		t.Fatal("total time not recorded")
	}
	if res.CoarsenTime+res.InitTime+res.RefineTime > res.TotalTime {
		t.Fatal("phase times exceed total")
	}
}

func BenchmarkKaPPaFastRGG13K8(b *testing.B) {
	g := gen.RGG(13, 1)
	cfg := NewConfig(Fast, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		Partition(g, cfg)
	}
}
