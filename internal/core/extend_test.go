package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/part"
	"repro/internal/rng"
)

func TestRefineExistingImproves(t *testing.T) {
	g := gen.RGG(11, 4)
	n := g.NumNodes()
	r := rng.New(7)
	// A noisy striped partition: plenty of room for improvement.
	blocks := make([]int32, n)
	for v := 0; v < n; v++ {
		blocks[v] = int32(4 * v / n)
	}
	for i := 0; i < n/10; i++ {
		blocks[r.Intn(n)] = int32(r.Intn(4))
	}
	cfg := NewConfig(Fast, 4)
	cfg.Seed = 5
	before := part.FromBlocks(g, 4, cfg.Eps, append([]int32(nil), blocks...)).Cut()
	refined, cut := RefineExisting(g, cfg, blocks)
	if cut >= before {
		t.Fatalf("RefineExisting did not improve: %d -> %d", before, cut)
	}
	p := part.FromBlocks(g, 4, cfg.Eps, refined)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Cut() != cut {
		t.Fatalf("reported cut %d != actual %d", cut, p.Cut())
	}
	if !p.Feasible() {
		t.Fatal("refined partition infeasible")
	}
}

func TestRefineExistingPreservesInput(t *testing.T) {
	g := gen.Grid2D(12, 12)
	blocks := make([]int32, g.NumNodes())
	for v := range blocks {
		blocks[v] = int32(v % 2)
	}
	snapshot := append([]int32(nil), blocks...)
	cfg := NewConfig(Fast, 2)
	RefineExisting(g, cfg, blocks)
	for v := range blocks {
		if blocks[v] != snapshot[v] {
			t.Fatal("RefineExisting mutated its input")
		}
	}
}

func TestRefineExistingRepairsImbalance(t *testing.T) {
	g := gen.Grid2D(16, 16)
	blocks := make([]int32, g.NumNodes()) // everything in block 0
	cfg := NewConfig(Fast, 4)
	cfg.Seed = 3
	refined, _ := RefineExisting(g, cfg, blocks)
	p := part.FromBlocks(g, 4, cfg.Eps, refined)
	if !p.Feasible() {
		t.Fatalf("imbalanced input not repaired: %.3f", p.Imbalance())
	}
}

func TestEvolveBeatsOrMatchesSingleRun(t *testing.T) {
	g := gen.DelaunayX(10, 6)
	cfg := NewConfig(Fast, 8)
	cfg.Seed = 11
	single := Partition(g, cfg).Cut
	res := Evolve(g, cfg, 3, 2)
	if res.Cut > single {
		t.Fatalf("Evolve (%d) worse than its own first individual's regime (%d)", res.Cut, single)
	}
	p := part.FromBlocks(g, 8, cfg.Eps, res.Blocks)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 5 { // 3 population + 2 immigration
		t.Fatalf("Restarts = %d, want 5", res.Restarts)
	}
}

func TestEvolveZeroGenerationsIsRestarts(t *testing.T) {
	g := gen.Grid2D(16, 16)
	cfg := NewConfig(Minimal, 4)
	cfg.Seed = 2
	res := Evolve(g, cfg, 2, 0)
	if res.Generations != 0 || res.Restarts != 2 {
		t.Fatalf("unexpected bookkeeping: %+v", res)
	}
	if res.Cut <= 0 {
		t.Fatal("no cut measured")
	}
}
