package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/coarsen"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/initpart"
	"repro/internal/matching"
	"repro/internal/mem"
	"repro/internal/part"
	"repro/internal/rating"
	"repro/internal/refine"
	"repro/internal/rng"
)

// Result reports a finished partitioning run.
type Result struct {
	Blocks  []int32
	Cut     int64
	Balance float64 // max block weight / average block weight
	Levels  int     // contraction levels built

	CoarsenTime time.Duration
	InitTime    time.Duration
	RefineTime  time.Duration
	TotalTime   time.Duration
}

// Partition runs the full KaPPa pipeline on g. It is the legacy entry point,
// kept as a thin wrapper over Pipeline.Run: no cancellation, no observers,
// and — for backward compatibility — a panic on invalid configuration. New
// code should call Run, which returns errors instead.
func Partition(g *graph.Graph, cfg Config) Result {
	res, err := Run(context.Background(), g, cfg)
	if err != nil {
		//kappa:allow panicfree documented legacy wrapper contract: panic on invalid config, use Run for errors
		panic(err)
	}
	return res
}

// sharedLevel performs one contraction level on the shared global graph:
// parallel (or, with one PE, sequential) matching followed by a global
// two-pass contraction, both drawing scratch from a. It reports the
// wall-clock of each kernel for the level's LevelEvent. Returns (nil, nil,
// ...) when the matching comes out empty.
func sharedLevel(cur *graph.Graph, cfg *Config, blocks []int32, pes, level int, maxPair int64, a *mem.Arena) (*graph.Graph, []int32, time.Duration, time.Duration) {
	tm := time.Now()
	rt := rating.NewRater(cfg.Rating, cur)
	var m matching.Matching
	if pes > 1 {
		// The prepartition (§3.3) localizes matching work onto PEs; the
		// strategy does not influence the final partition directly.
		if cfg.GapMatching {
			m = matching.ParallelScratch(cur, rt, cfg.Matcher, blocks, pes, cfg.Seed+uint64(level)*101, maxPair, a)
		} else {
			m = parallelNoGap(cur, rt, cfg.Matcher, blocks, pes, cfg.Seed+uint64(level)*101, maxPair, a)
		}
	} else {
		m = matching.ComputeScratch(cur, rt, cfg.Matcher, rng.NewStream(cfg.Seed, uint64(level)), maxPair, a)
	}
	matchT := time.Since(tm)
	if m.Size() == 0 {
		a.PutInt32([]int32(m))
		return nil, nil, matchT, 0
	}
	tc := time.Now()
	cg, f2c := coarsen.ContractWith(cur, m, coarsen.Options{Workers: cfg.workers(), Arena: a})
	a.PutInt32([]int32(m))
	return cg, f2c, matchT, time.Since(tc)
}

// distributedLevel performs one contraction level PE-locally (§3): extract
// per-PE subgraphs with ghost layers, match each subgraph's internal edges
// sequentially, resolve the boundary by mutual proposals over the Transport
// supersteps, contract every subgraph locally, and stitch the coarse
// subgraphs back into the next-level global graph. It reports the matching
// and contraction kernel times (extraction counts toward matching, the way
// the paper accounts the ghost setup). Returns (nil, nil, ...) when the
// matching comes out empty.
func distributedLevel(cur *graph.Graph, cfg *Config, blocks []int32, t dist.Transport, pes, level int, maxPair int64) (*graph.Graph, []int32, time.Duration, time.Duration) {
	tm := time.Now()
	sgs := dist.ExtractAll(cur, blocks, pes)
	ms := matching.DistributedBounded(sgs, t, cfg.Rating, cfg.Matcher,
		cfg.Seed+uint64(level)*101, maxPair, cfg.GapMatching)
	matchT := time.Since(tm)
	matched := false
	for _, m := range ms {
		if m.Size() > 0 {
			matched = true
			break
		}
	}
	if !matched {
		return nil, nil, matchT, 0
	}
	tc := time.Now()
	cg, f2c := coarsen.ContractDistributed(cur, sgs, ms, t)
	return cg, f2c, matchT, time.Since(tc)
}

// parallelNoGap is the ablation variant of parallel matching: local
// matchings only, no gap-graph phase (cross-PE edges are never matched).
func parallelNoGap(g *graph.Graph, rt *rating.Rater, alg matching.Algorithm, blocks []int32, pes int, seed uint64, maxPair int64, a *mem.Arena) matching.Matching {
	// Restrict the graph to intra-block edges by running the parallel
	// matcher with an empty gap phase: equivalent to giving every cross
	// edge a rating below any local match. We reuse Parallel but strip
	// cross-block pairs afterwards (they can only come from the gap phase).
	m := matching.ParallelScratch(g, rt, alg, blocks, pes, seed, maxPair, a)
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if u := m[v]; u >= 0 && blocks[u] != blocks[v] {
			m[v], m[u] = -1, -1
		}
	}
	return m
}

// initialPartition runs the sequential initial partitioner cfg.InitRepeats
// times concurrently with different seeds and adopts the best result (§4).
func initialPartition(g *graph.Graph, cfg *Config) ([]int32, int64) {
	return initpart.Repeat(g, cfg.K, cfg.Eps, cfg.InitEngine, cfg.InitRepeats, cfg.Seed^0x1217)
}

// refineLevel performs the nested refinement loops of §5 on one level:
// global iterations step through the pair schedule; each scheduled pair runs
// up to cfg.LocalIter local iterations of two-way FM, each local search done
// twice with different seeds and the better result adopted. levelSeed
// derives the level's random streams; level names the level in RefineEvents
// (uncoarsening steps done: 0 = coarsest graph). The context is checked
// before every global iteration.
func refineLevel(ctx context.Context, p *part.Partition, cfg *Config, levelSeed uint64, level int, env *Env) error {
	if cfg.K < 2 {
		return nil
	}
	cfg2 := refine.TwoWayConfig{
		Strategy:  cfg.Strategy,
		Patience:  cfg.Patience,
		BandDepth: cfg.BandDepth,
	}
	fruitlessRuns := 0
	for global := 0; global < cfg.MaxGlobalIter; global++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		rounds := schedule(p, cfg, levelSeed, global)
		var totalGain int64
		for round, class := range rounds {
			if len(class) == 0 {
				continue
			}
			// Disjoint pairs refine concurrently; all reads of foreign
			// blocks go through a snapshot taken before the round. The
			// snapshot and per-pair gain table are arena scratch; each
			// goroutine checks a reusable FM workspace out of the run's
			// pool.
			view := env.Arena.Int32(len(p.Block))
			copy(view, p.Block)
			gains := env.Arena.Int64(len(class))
			var wg sync.WaitGroup
			for i, e := range class {
				wg.Add(1)
				go func(i int, a, b int32) {
					defer wg.Done()
					ws := env.getWorkspace()
					defer env.putWorkspace(ws)
					base := cfg.Seed ^ levelSeed<<32 ^ uint64(global)<<16 ^ uint64(round)<<8 ^ uint64(a)<<24 ^ uint64(b)
					var gain int64
					for li := 0; li < cfg.LocalIter; li++ {
						out := refine.RefinePairViewWS(ws, p, view, a, b, cfg2,
							splitSeed(base, uint64(2*li)), splitSeed(base, uint64(2*li+1)))
						gain += out.Gain
						if out.Gain <= 0 {
							break
						}
					}
					gains[i] = gain
				}(i, e.A, e.B)
			}
			wg.Wait()
			for _, gv := range gains {
				totalGain += gv
			}
			env.Arena.PutInt64(gains)
			env.Arena.PutInt32(view)
		}
		env.Emit(RefineEvent{Level: level, Iteration: global, Gain: totalGain})
		if totalGain > 0 {
			fruitlessRuns = 0
			continue
		}
		fruitlessRuns++
		if cfg.StopOnNoChange == 0 || fruitlessRuns >= cfg.StopOnNoChange {
			break
		}
	}
	return nil
}

// schedule produces the rounds of block pairs for one global iteration.
func schedule(p *part.Partition, cfg *Config, levelSeed uint64, global int) [][]part.QEdge {
	q := p.Quotient()
	seed := cfg.Seed ^ 0xc01035<<8 ^ levelSeed<<40 ^ uint64(global)
	if cfg.Schedule == ScheduleRandomPairs {
		return part.RandomPairSchedule(cfg.K, q, seed)
	}
	colors, nc := part.DistributedColoring(cfg.K, q, seed)
	return part.ColorClasses(q, colors, nc)
}

// splitSeed derives independent seeds deterministically.
func splitSeed(base, i uint64) uint64 {
	x := base + (i+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}
