// Package core implements KaPPa, the paper's parallel multilevel graph
// partitioner: geometric (or index-based) prepartitioning, parallel
// coarsening with gap-graph matching (§3.3), initial partitioning with
// seeded repeats (§4), and parallel pairwise refinement scheduled by an edge
// coloring of the quotient graph (§5).
//
// The contraction phase runs in one of two modes (Config.Coarsen): shared —
// matching reads the global graph — or distributed, where every PE matches
// and contracts its own extracted subgraph and exchanges ghost-node state
// over per-PE mailboxes, the configuration that generalizes to graphs too
// large for one address space. Both modes are deterministic for a fixed
// seed.
package core

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/dist"
	"repro/internal/initpart"
	"repro/internal/matching"
	"repro/internal/rating"
	"repro/internal/refine"
)

// Schedule selects how block pairs are scheduled for refinement (§5.1).
type Schedule int

const (
	// ScheduleColoring steps through the color classes of a distributed
	// edge coloring of the quotient graph (the paper's default).
	ScheduleColoring Schedule = iota
	// ScheduleRandomPairs repeatedly draws random maximal matchings of the
	// quotient graph (the alternative strategy, kept for the ablation).
	ScheduleRandomPairs
)

// CoarsenMode selects how the contraction phase executes.
type CoarsenMode int

const (
	// CoarsenShared matches and contracts on the shared global graph; the
	// PEs are goroutines over one address space (the historical behavior).
	CoarsenShared CoarsenMode = iota
	// CoarsenDistributed runs the contraction phase the way the paper's
	// distributed system does (§3): each PE matches and contracts its own
	// extracted subgraph and exchanges ghost-node state over per-PE
	// mailboxes; the coarse subgraphs are stitched back into the next-level
	// global graph. Identical machinery downstream, but no step reads the
	// whole graph from one PE's perspective — the template for graphs that
	// no longer fit one address space.
	CoarsenDistributed
)

// String returns the flag-level name of the mode.
func (m CoarsenMode) String() string {
	switch m {
	case CoarsenShared:
		return "shared"
	case CoarsenDistributed:
		return "distributed"
	default:
		return fmt.Sprintf("core.CoarsenMode(%d)", int(m))
	}
}

// ParseCoarsenMode parses a flag-level coarsening mode, case-insensitively.
func ParseCoarsenMode(name string) (CoarsenMode, error) {
	switch strings.ToLower(name) {
	case "shared", "":
		return CoarsenShared, nil
	case "distributed", "dist":
		return CoarsenDistributed, nil
	default:
		return CoarsenShared, fmt.Errorf("core: unknown coarsen mode %q (want shared|distributed)", name)
	}
}

// Config carries every tuning parameter of Table 2.
type Config struct {
	K   int     // number of blocks
	Eps float64 // allowed imbalance (default 0.03)

	Rating  rating.Func        // edge rating (Table 3)
	Matcher matching.Algorithm // sequential matching algorithm (Table 3)

	// StopAlpha is the α of the contraction stop rule: coarsening ends when
	// fewer than max(20·P, n/(α·k²)) nodes remain (Table 2: n/60k²).
	StopAlpha float64

	InitEngine  initpart.Engine
	InitRepeats int

	Strategy       refine.Strategy // queue selection (Table 4)
	BandDepth      int             // BFS search depth (1 / 5 / 20)
	StopOnNoChange int             // refinement loop patience: 1 = stop on first fruitless pass, 2 = after two in a row
	MaxGlobalIter  int             // max global iterations (1 / 15)
	LocalIter      int             // local iterations per pair (1 / 3 / 5)
	Patience       float64         // FM patience α (0.01 / 0.05 / 0.20)

	Schedule    Schedule
	GapMatching bool // gap-graph matching across PE boundaries (§3.3); off only in ablations

	// Distribution selects the node-to-PE prepartitioning strategy of §3.3
	// used during parallel coarsening. The zero value (dist.StrategyAuto)
	// is the paper's behavior: RCB when the graph carries coordinates,
	// contiguous index ranges otherwise.
	Distribution dist.Strategy

	// Coarsen selects shared-memory or PE-local (distributed) coarsening.
	// The zero value is CoarsenShared. With one PE the modes coincide.
	Coarsen CoarsenMode

	// PEs is the number of simulated processing elements used during
	// coarsening. The paper identifies PEs with blocks; 0 means K.
	PEs int

	// Workers is the goroutine count of the data-parallel kernels (the
	// two-pass contraction's count and fill passes). 0 means GOMAXPROCS; 1
	// runs the kernels inline. Because the parallel passes process every
	// coarse node in exactly the serial order, results are byte-identical
	// for every Workers value — the knob trades cores for wall-clock only.
	Workers int

	Seed uint64
}

// Variant names one of the paper's three preset configurations.
type Variant int

const (
	// Minimal chooses the smallest possible value for every parameter.
	Minimal Variant = iota
	// Fast aims at low execution time with good quality.
	Fast
	// Strong targets quality without an outrageous amount of time.
	Strong
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case Minimal:
		return "KaPPa-Minimal"
	case Fast:
		return "KaPPa-Fast"
	case Strong:
		return "KaPPa-Strong"
	default:
		return fmt.Sprintf("core.Variant(%d)", int(v))
	}
}

// ParseVariant parses a flag-level preset name (minimal | fast | strong),
// case-insensitively; the empty string means Fast, the everyday default.
// Unknown names come back wrapped in ErrInvalidConfig, so CLI and service
// admission paths can classify them as usage errors.
func ParseVariant(name string) (Variant, error) {
	switch strings.ToLower(name) {
	case "minimal":
		return Minimal, nil
	case "fast", "":
		return Fast, nil
	case "strong":
		return Strong, nil
	default:
		return Fast, fmt.Errorf("%w: unknown preset %q (want minimal|fast|strong)", ErrInvalidConfig, name)
	}
}

// NewConfig returns the preset of Table 2 for the given variant.
func NewConfig(v Variant, k int) Config {
	c := Config{
		K:            k,
		Eps:          0.03,
		Rating:       rating.ExpansionStar2,
		Matcher:      matching.GPA,
		StopAlpha:    60,
		InitEngine:   initpart.EngineScotch,
		Strategy:     refine.TopGain,
		Schedule:     ScheduleColoring,
		GapMatching:  true,
		Distribution: dist.StrategyAuto,
	}
	switch v {
	case Minimal:
		c.InitRepeats = 1
		c.BandDepth = 1
		c.StopOnNoChange = 0 // no-change stopping disabled: fixed single pass
		c.MaxGlobalIter = 1
		c.LocalIter = 1
		c.Patience = 0.01
	case Fast:
		c.InitRepeats = 3
		c.BandDepth = 5
		c.StopOnNoChange = 1
		c.MaxGlobalIter = 15
		c.LocalIter = 3
		c.Patience = 0.05
	case Strong:
		c.InitRepeats = 5
		c.BandDepth = 20
		c.StopOnNoChange = 2
		c.MaxGlobalIter = 15
		c.LocalIter = 5
		c.Patience = 0.20
	}
	return c
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("core: K must be >= 1, got %d", c.K)
	}
	if c.Eps < 0 {
		return fmt.Errorf("core: Eps must be >= 0, got %g", c.Eps)
	}
	if c.StopAlpha <= 0 {
		return fmt.Errorf("core: StopAlpha must be > 0, got %g", c.StopAlpha)
	}
	if c.InitRepeats < 1 {
		return fmt.Errorf("core: InitRepeats must be >= 1, got %d", c.InitRepeats)
	}
	if c.MaxGlobalIter < 1 {
		return fmt.Errorf("core: MaxGlobalIter must be >= 1, got %d", c.MaxGlobalIter)
	}
	if c.LocalIter < 1 {
		return fmt.Errorf("core: LocalIter must be >= 1, got %d", c.LocalIter)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0, got %d", c.Workers)
	}
	return nil
}

// NumPEs returns the effective PE count of the configuration: PEs when set,
// otherwise K (the paper identifies PEs with blocks).
func (c *Config) NumPEs() int {
	if c.PEs > 0 {
		return c.PEs
	}
	return c.K
}

func (c *Config) pes() int { return c.NumPEs() }

func (c *Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}
