package matching

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rating"
	"repro/internal/rng"
)

// bruteMaxMatching computes the exact maximum weight matching of a small
// graph (n <= 20) by exhaustive search over edges.
func bruteMaxMatching(g *graph.Graph) int64 {
	type edge struct {
		u, v int32
		w    int64
	}
	var edges []edge
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		for i, u := range g.Adj(v) {
			if u > v {
				edges = append(edges, edge{v, u, g.AdjWeights(v)[i]})
			}
		}
	}
	var best int64
	var rec func(i int, used uint32, w int64)
	rec = func(i int, used uint32, w int64) {
		if w > best {
			best = w
		}
		for j := i; j < len(edges); j++ {
			e := edges[j]
			if used&(1<<uint(e.u)) == 0 && used&(1<<uint(e.v)) == 0 {
				rec(j+1, used|1<<uint(e.u)|1<<uint(e.v), w+e.w)
			}
		}
	}
	rec(0, 0, 0)
	return best
}

func randomWeightedGraph(n, m int, r *rng.RNG) *graph.Graph {
	b := graph.NewBuilder(n)
	for e := 0; e < m; e++ {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u != v {
			b.AddEdge(u, v, int64(1+r.Intn(20)))
		}
	}
	return b.Build()
}

func TestMatchingValidity(t *testing.T) {
	master := rng.New(42)
	for _, alg := range []Algorithm{SHEM, Greedy, GPA} {
		alg := alg
		f := func(seed uint16) bool {
			r := master.Split(uint64(seed))
			g := randomWeightedGraph(2+r.Intn(40), 60, r)
			for _, rf := range rating.All {
				m := Compute(g, rating.NewRater(rf, g), alg, r)
				if m.Validate(g) != nil {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%v: %v", alg, err)
		}
	}
}

func TestMatchingIsMaximal(t *testing.T) {
	// Greedy and GPA matchings are maximal w.r.t. the edge set: no edge may
	// have both endpoints unmatched.
	r := rng.New(7)
	for _, alg := range []Algorithm{SHEM, Greedy, GPA} {
		g := randomWeightedGraph(30, 80, r)
		m := Compute(g, rating.NewRater(rating.Weight, g), alg, r)
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			for _, u := range g.Adj(v) {
				if m[v] < 0 && m[u] < 0 {
					t.Fatalf("%v: edge {%d,%d} both unmatched", alg, v, u)
				}
			}
		}
	}
}

func TestHalfApproximation(t *testing.T) {
	// Greedy and GPA guarantee weight >= OPT/2 (with the Weight rating).
	master := rng.New(99)
	f := func(seed uint16) bool {
		r := master.Split(uint64(seed))
		g := randomWeightedGraph(4+r.Intn(12), 20, r)
		opt := bruteMaxMatching(g)
		for _, alg := range []Algorithm{Greedy, GPA} {
			m := Compute(g, rating.NewRater(rating.Weight, g), alg, r)
			if 2*m.Weight(g) < opt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGPABeatsOrMatchesGreedyOnPaths(t *testing.T) {
	// On a path with weights 1,2,1 Greedy takes the middle edge (weight 2)
	// while the optimum takes the two outer edges (weight 2 as well); with
	// weights 3,4,3 Greedy gets 4, GPA must find 6.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 3)
	b.AddEdge(1, 2, 4)
	b.AddEdge(2, 3, 3)
	g := b.Build()
	r := rng.New(1)
	gpa := Compute(g, rating.NewRater(rating.Weight, g), GPA, r)
	if gpa.Weight(g) != 6 {
		t.Fatalf("GPA weight = %d, want 6", gpa.Weight(g))
	}
	greedy := Compute(g, rating.NewRater(rating.Weight, g), Greedy, r)
	if greedy.Weight(g) != 4 {
		t.Fatalf("Greedy weight = %d, want 4", greedy.Weight(g))
	}
}

func TestGPAOptimalOnEvenCycle(t *testing.T) {
	// 4-cycle with weights 5,1,5,1: optimum picks the two 5s.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 5)
	b.AddEdge(3, 0, 1)
	g := b.Build()
	m := Compute(g, rating.NewRater(rating.Weight, g), GPA, rng.New(3))
	if m.Weight(g) != 10 {
		t.Fatalf("GPA on 4-cycle = %d, want 10", m.Weight(g))
	}
}

func TestMaxPathMatchingOptimal(t *testing.T) {
	// DP must match brute force on random rating sequences.
	master := rng.New(5)
	f := func(seed uint16) bool {
		r := master.Split(uint64(seed))
		k := 1 + r.Intn(12)
		ratings := make([]float64, k)
		for i := range ratings {
			ratings[i] = float64(r.Intn(100))
		}
		take := maxPathMatching(ratings, &pathDP{})
		got := 0.0
		for i, t := range take {
			if t {
				if i > 0 && take[i-1] {
					return false // adjacent edges taken
				}
				got += ratings[i]
			}
		}
		// brute force over subsets
		best := 0.0
		for mask := 0; mask < 1<<uint(k); mask++ {
			ok, s := true, 0.0
			for i := 0; i < k; i++ {
				if mask&(1<<uint(i)) != 0 {
					if i > 0 && mask&(1<<uint(i-1)) != 0 {
						ok = false
						break
					}
					s += ratings[i]
				}
			}
			if ok && s > best {
				best = s
			}
		}
		return got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCycleMatchingOptimal(t *testing.T) {
	master := rng.New(6)
	f := func(seed uint16) bool {
		r := master.Split(uint64(seed))
		k := 4 + 2*r.Intn(5) // even cycles of length 4..12
		ratings := make([]float64, k)
		for i := range ratings {
			ratings[i] = float64(r.Intn(100))
		}
		take := maxCycleMatching(ratings, &pathDP{})
		got := 0.0
		for i, t := range take {
			if t {
				next := (i + 1) % k
				if take[next] {
					return false // cyclically adjacent
				}
				got += ratings[i]
			}
		}
		best := 0.0
		for mask := 0; mask < 1<<uint(k); mask++ {
			ok, s := true, 0.0
			for i := 0; i < k; i++ {
				if mask&(1<<uint(i)) != 0 {
					if mask&(1<<uint((i+1)%k)) != 0 {
						ok = false
						break
					}
					s += ratings[i]
				}
			}
			if ok && s > best {
				best = s
			}
		}
		return got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGPAQuality(t *testing.T) {
	// Empirically GPA should be at least as good as Greedy on meshes (the
	// paper reports considerably better results).
	g := gen.Grid2D(40, 40)
	r := rng.New(11)
	rt := rating.NewRater(rating.Weight, g)
	gpaW := Compute(g, rt, GPA, r).Weight(g)
	greedyW := Compute(g, rt, Greedy, r).Weight(g)
	if gpaW < greedyW {
		t.Fatalf("GPA weight %d < Greedy weight %d", gpaW, greedyW)
	}
}

func TestParallelMatchingValidity(t *testing.T) {
	g := gen.RGG(11, 3)
	n := g.NumNodes()
	for _, nparts := range []int{1, 2, 4, 8} {
		block := make([]int32, n)
		for v := 0; v < n; v++ {
			block[v] = int32(v * nparts / n)
		}
		for _, alg := range []Algorithm{SHEM, Greedy, GPA} {
			m := Parallel(g, rating.NewRater(rating.ExpansionStar2, g), alg, block, nparts, 5)
			if err := m.Validate(g); err != nil {
				t.Fatalf("nparts=%d alg=%v: %v", nparts, alg, err)
			}
			if m.Size() == 0 {
				t.Fatalf("nparts=%d alg=%v: empty matching", nparts, alg)
			}
		}
	}
}

func TestParallelMatchingCrossesBlocks(t *testing.T) {
	// Two blocks joined by one very heavy edge: the gap phase must take it.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1) // block 0 internal
	b.AddEdge(2, 3, 1) // block 1 internal
	b.AddEdge(1, 2, 100)
	g := b.Build()
	block := []int32{0, 0, 1, 1}
	m := Parallel(g, rating.NewRater(rating.Weight, g), GPA, block, 2, 1)
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	if m[1] != 2 || m[2] != 1 {
		t.Fatalf("gap edge {1,2} not matched: %v", m)
	}
}

func TestParallelDeterministicForSeed(t *testing.T) {
	g := gen.Grid2D(20, 20)
	block := make([]int32, g.NumNodes())
	for v := range block {
		block[v] = int32(v % 4)
	}
	rt := rating.NewRater(rating.ExpansionStar2, g)
	a := Parallel(g, rt, GPA, block, 4, 9)
	b := Parallel(g, rt, GPA, block, 4, 9)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("parallel matching is not deterministic for fixed seed")
		}
	}
}

func TestMatchingSizeAndWeight(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 3)
	b.AddEdge(2, 3, 4)
	g := b.Build()
	m := NewEmpty(4)
	m[0], m[1] = 1, 0
	m[2], m[3] = 3, 2
	if m.Size() != 2 || m.Weight(g) != 7 {
		t.Fatalf("Size=%d Weight=%d", m.Size(), m.Weight(g))
	}
}

func TestValidateRejectsBadMatchings(t *testing.T) {
	g := gen.Grid2D(3, 3)
	m := NewEmpty(9)
	m[0] = 1 // asymmetric
	if m.Validate(g) == nil {
		t.Fatal("asymmetric matching accepted")
	}
	m = NewEmpty(9)
	m[0], m[8] = 8, 0 // not an edge
	if m.Validate(g) == nil {
		t.Fatal("non-edge pair accepted")
	}
}

func BenchmarkGPA(b *testing.B) {
	g := gen.RGG(14, 1)
	rt := rating.NewRater(rating.ExpansionStar2, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(g, rt, GPA, rng.New(uint64(i)))
	}
}

func BenchmarkSHEM(b *testing.B) {
	g := gen.RGG(14, 1)
	rt := rating.NewRater(rating.ExpansionStar2, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(g, rt, SHEM, rng.New(uint64(i)))
	}
}
