// Package matching implements the approximate maximum-weight matching
// algorithms of §3.2–3.3 of the paper: Sorted Heavy Edge Matching (SHEM, the
// Metis algorithm), the sorting-based Greedy half-approximation, the Global
// Path Algorithm (GPA), and two parallel schemes built on them. Parallel
// combines per-block sequential matching with locally-heaviest matching on
// the gap graph, reading the shared global graph; Distributed runs the same
// idea PE-locally — each PE matches the internal edges of its extracted
// subgraph (dist.Subgraph) and the boundary is resolved by mutual proposals
// exchanged over per-PE mailboxes (dist.Exchanger), the way the paper's
// message-passing system works.
//
// All algorithms maximize the *rating* of the matching (see internal/rating)
// rather than the raw edge weight; with the Weight rating they degenerate to
// the classical weight-based versions.
//
// Every entry point has a ...Scratch form taking a *mem.Arena; the matcher
// then draws its candidate-edge arrays, per-block node groups and path/cycle
// bookkeeping from the arena instead of allocating per level. Results are
// byte-identical with and without an arena.
package matching

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/rating"
	"repro/internal/rng"
)

// Matching maps every node to its partner, or -1 when unmatched. A valid
// matching is symmetric: m[v] == u implies m[u] == v.
type Matching []int32

// NewEmpty returns an all-unmatched matching over n nodes.
func NewEmpty(n int) Matching {
	return newEmptyIn(nil, n)
}

// newEmptyIn draws the matching's backing array from a (nil = allocate).
// Arena-backed matchings are returned to the arena by the caller via
// a.PutInt32([]int32(m)) once contraction has consumed them.
//
//kappa:hotpath
func newEmptyIn(a *mem.Arena, n int) Matching {
	m := Matching(a.Int32(n))
	for i := range m {
		m[i] = -1
	}
	return m
}

// Size returns the number of matched edges.
func (m Matching) Size() int {
	c := 0
	for v, u := range m {
		if u >= 0 && int32(v) < u {
			c++
		}
	}
	return c
}

// Weight returns the total edge weight ω of the matching in g.
func (m Matching) Weight(g *graph.Graph) int64 {
	var s int64
	for v, u := range m {
		if u >= 0 && int32(v) < u {
			s += g.EdgeWeightTo(int32(v), u)
		}
	}
	return s
}

// Validate checks symmetry and that every matched pair is an edge of g.
func (m Matching) Validate(g *graph.Graph) error {
	if len(m) != g.NumNodes() {
		return fmt.Errorf("matching: length %d != n %d", len(m), g.NumNodes())
	}
	for v, u := range m {
		if u < 0 {
			continue
		}
		if int(u) >= len(m) || m[u] != int32(v) {
			return fmt.Errorf("matching: asymmetric pair (%d,%d)", v, u)
		}
		if u == int32(v) {
			return fmt.Errorf("matching: node %d matched to itself", v)
		}
		if g.EdgeWeightTo(int32(v), u) == 0 {
			return fmt.Errorf("matching: pair {%d,%d} is not an edge", v, u)
		}
	}
	return nil
}

// Algorithm selects a sequential matching algorithm.
type Algorithm int

const (
	// GPA is the Global Path Algorithm, the paper's default.
	GPA Algorithm = iota
	// SHEM is Sorted Heavy Edge Matching as used in Metis.
	SHEM
	// Greedy is the sorted greedy half-approximation.
	Greedy
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case GPA:
		return "gpa"
	case SHEM:
		return "shem"
	case Greedy:
		return "greedy"
	default:
		return fmt.Sprintf("matching.Algorithm(%d)", int(a))
	}
}

// Edge is one undirected edge with its precomputed rating and a random tie
// break.
type Edge struct {
	U, V int32
	W    int64
	R    float64
	tie  uint32
}

// edgeSlices recycles the candidate-edge arrays — the largest transient of
// every matching level (one Edge per undirected edge of the level's graph).
//
// These are deliberately a process-global sync.Pool rather than part of the
// per-run mem.Arena: the Arena's typed free lists cannot hold matching's
// Edge type without an import cycle, and sync.Pool's GC integration means
// the finest level's edge array is reclaimed under memory pressure instead
// of pinned for an arena's lifetime. The trade-off is that this one
// transient is pooled across runs even without WithArena.
var edgeSlices = sync.Pool{New: func() any { return new([]Edge) }}

// getEdges borrows an empty edge slice with capacity for at least capHint
// entries.
func getEdges(capHint int) *[]Edge {
	p := edgeSlices.Get().(*[]Edge)
	if cap(*p) < capHint {
		*p = make([]Edge, 0, capHint)
	}
	*p = (*p)[:0]
	return p
}

// putEdges returns a slice obtained from getEdges.
func putEdges(p *[]Edge) { edgeSlices.Put(p) }

// allEdgesInto appends each undirected edge of g once (U < V) with ratings
// and random tie breaks from r, into buf (which it returns re-sliced).
//
//kappa:hotpath
func allEdgesInto(g *graph.Graph, rt *rating.Rater, r *rng.RNG, buf []Edge) []Edge {
	edges := buf[:0]
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		adj := g.Adj(v)
		ws := g.AdjWeights(v)
		for i, u := range adj {
			if u > v {
				//kappa:allow hotalloc appends into a buffer getEdges pre-capped to the edge count
				edges = append(edges, Edge{v, u, ws[i], rt.Rate(v, u, ws[i]), uint32(r.Uint64())})
			}
		}
	}
	return edges
}

// sortEdgesDesc sorts edges by descending rating with random tie breaks.
func sortEdgesDesc(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].R != edges[j].R {
			return edges[i].R > edges[j].R
		}
		return edges[i].tie > edges[j].tie
	})
}

// Compute runs the selected sequential algorithm on the whole graph with no
// cluster-weight bound.
func Compute(g *graph.Graph, rt *rating.Rater, alg Algorithm, r *rng.RNG) Matching {
	return ComputeBounded(g, rt, alg, r, 0)
}

// ComputeBounded is Compute with a maximum combined node weight per matched
// pair (0 = unbounded). Partitioners cap cluster weights during coarsening —
// Metis' maxvwgt — so that no coarse node grows beyond what the balance
// constraint of the final partition can accommodate; without the cap,
// tie-heavy ratings such as the plain edge weight let single clusters
// snowball.
func ComputeBounded(g *graph.Graph, rt *rating.Rater, alg Algorithm, r *rng.RNG, maxPair int64) Matching {
	return ComputeScratch(g, rt, alg, r, maxPair, nil)
}

// ComputeScratch is ComputeBounded drawing every temporary — including the
// returned matching itself — from a (nil = allocate fresh). The caller owns
// the result; hand it back with a.PutInt32([]int32(m)) when done.
func ComputeScratch(g *graph.Graph, rt *rating.Rater, alg Algorithm, r *rng.RNG, maxPair int64, a *mem.Arena) Matching {
	switch alg {
	case SHEM:
		m := newEmptyIn(a, g.NumNodes())
		shemInto(g, rt, r, nil, nil, m, maxPair, a)
		return m
	case Greedy:
		m := newEmptyIn(a, g.NumNodes())
		buf := getEdges(g.NumEdges())
		*buf = allEdgesInto(g, rt, r, *buf)
		greedyEdges(g, *buf, m, maxPair)
		putEdges(buf)
		return m
	case GPA:
		m := newEmptyIn(a, g.NumNodes())
		buf := getEdges(g.NumEdges())
		*buf = allEdgesInto(g, rt, r, *buf)
		gpaEdges(g, *buf, m, maxPair, a)
		putEdges(buf)
		return m
	default:
		//kappa:allow panicfree the Algorithm enum is validated by Config.Validate
		panic("matching: unknown algorithm")
	}
}
