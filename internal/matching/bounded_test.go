package matching

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rating"
	"repro/internal/rng"
)

// weightedPath builds a path with the given node weights and unit edges.
func weightedPath(weights []int64) *graph.Graph {
	b := graph.NewBuilder(len(weights))
	for v, w := range weights {
		b.SetNodeWeight(int32(v), w)
		if v > 0 {
			b.AddEdge(int32(v-1), int32(v), 1)
		}
	}
	return b.Build()
}

func TestBoundedRespectsCap(t *testing.T) {
	g := weightedPath([]int64{5, 5, 1, 1, 5, 5})
	for _, alg := range []Algorithm{SHEM, Greedy, GPA} {
		m := ComputeBounded(g, rating.NewRater(rating.Weight, g), alg, rng.New(1), 6)
		if err := m.Validate(g); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for v, u := range m {
			if u >= 0 && g.NodeWeight(int32(v))+g.NodeWeight(u) > 6 {
				t.Fatalf("%v: pair (%d,%d) exceeds cap", alg, v, u)
			}
		}
		// The middle pair (1,1) fits under the cap and must be matched by a
		// maximal matcher (both its heavy neighbors can only pair with it).
		if m[2] != 3 && m[2] != 1 && m[3] != 4 && m[3] != 2 {
			t.Fatalf("%v: light nodes unmatched: %v", alg, m)
		}
	}
}

func TestBoundedZeroIsUnbounded(t *testing.T) {
	g := weightedPath([]int64{100, 100, 100, 100})
	m := ComputeBounded(g, rating.NewRater(rating.Weight, g), GPA, rng.New(2), 0)
	if m.Size() == 0 {
		t.Fatal("cap 0 must mean unbounded")
	}
}

func TestBoundedPropertyAllAlgorithms(t *testing.T) {
	master := rng.New(404)
	f := func(seed uint16) bool {
		r := master.Split(uint64(seed))
		n := 4 + r.Intn(30)
		b := graph.NewBuilder(n)
		for v := 0; v < n; v++ {
			b.SetNodeWeight(int32(v), int64(1+r.Intn(10)))
		}
		for e := 0; e < 3*n; e++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u != v {
				b.AddEdge(u, v, int64(1+r.Intn(5)))
			}
		}
		g := b.Build()
		cap := int64(4 + r.Intn(12))
		for _, alg := range []Algorithm{SHEM, Greedy, GPA} {
			m := ComputeBounded(g, rating.NewRater(rating.ExpansionStar2, g), alg, r, cap)
			if m.Validate(g) != nil {
				return false
			}
			for v, u := range m {
				if u >= 0 && g.NodeWeight(int32(v))+g.NodeWeight(u) > cap {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelBoundedRespectsCap(t *testing.T) {
	b := graph.NewBuilder(6)
	for v := int32(0); v < 6; v++ {
		b.SetNodeWeight(v, 4)
	}
	for v := int32(0); v < 5; v++ {
		b.AddEdge(v, v+1, 10)
	}
	g := b.Build()
	block := []int32{0, 0, 0, 1, 1, 1}
	m := ParallelBounded(g, rating.NewRater(rating.Weight, g), GPA, block, 2, 3, 7)
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	for v, u := range m {
		if u >= 0 && g.NodeWeight(int32(v))+g.NodeWeight(u) > 7 {
			t.Fatalf("gap/local pair (%d,%d) exceeds cap", v, u)
		}
	}
	if m.Size() != 0 {
		t.Fatal("all pairs weigh 8 > cap 7; matching must be empty")
	}
}
