package matching

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/rating"
	"repro/internal/rng"
)

// Parallel computes a matching with the scheme of §3.3: the node set is
// prepartitioned into nparts blocks (block[v] gives the block of v, e.g.
// from recursive coordinate bisection); a sequential matching algorithm runs
// concurrently on the internal edges of every block; finally the *gap graph*
// — cross-block edges whose rating exceeds that of the edges matched locally
// to both endpoints — is matched by iterated locally-heaviest matching
// (Manne–Bisseling style). When a gap edge wins, the local matches of its
// endpoints are dissolved.
//
// The result is a valid matching of g. With nparts == 1 the function is
// equivalent to Compute.
func Parallel(g *graph.Graph, rt *rating.Rater, alg Algorithm, block []int32, nparts int, seed uint64) Matching {
	return ParallelBounded(g, rt, alg, block, nparts, seed, 0)
}

// ParallelBounded is Parallel with a maximum combined node weight per
// matched pair (0 = unbounded); see ComputeBounded.
func ParallelBounded(g *graph.Graph, rt *rating.Rater, alg Algorithm, block []int32, nparts int, seed uint64, maxPair int64) Matching {
	return ParallelScratch(g, rt, alg, block, nparts, seed, maxPair, nil)
}

// ParallelScratch is ParallelBounded drawing every temporary — the per-block
// node groups, candidate and gap edge arrays, local-rating table, and the
// returned matching itself — from a (nil = allocate fresh). The caller owns
// the result; hand it back with a.PutInt32([]int32(m)) when done. The arena
// is safe to share between the concurrent per-block workers.
func ParallelScratch(g *graph.Graph, rt *rating.Rater, alg Algorithm, block []int32, nparts int, seed uint64, maxPair int64, a *mem.Arena) Matching {
	n := g.NumNodes()
	if nparts <= 1 {
		return ComputeScratch(g, rt, alg, rng.NewStream(seed, 0), maxPair, a)
	}
	m := newEmptyIn(a, n)

	// Group nodes by block, CSR-style: one flat arena buffer plus offsets
	// instead of nparts growing slices. Within each block the nodes stay in
	// ascending order, exactly as the append-based grouping produced.
	off := a.Int32(nparts + 1)
	clear(off)
	for v := 0; v < n; v++ {
		off[block[v]+1]++
	}
	for b := 0; b < nparts; b++ {
		off[b+1] += off[b]
	}
	flat := a.Int32(n)
	cursor := a.Int32(nparts)
	copy(cursor, off[:nparts])
	for v := 0; v < n; v++ {
		b := block[v]
		flat[cursor[b]] = int32(v)
		cursor[b]++
	}
	a.PutInt32(cursor)
	nodesOf := func(b int) []int32 { return flat[off[b]:off[b+1]] }

	// Phase 1: local matching per block, in parallel. Each worker touches
	// only m[v] for v in its block, so no synchronization beyond the final
	// barrier is needed.
	var wg sync.WaitGroup
	for p := 0; p < nparts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := rng.NewStream(seed, uint64(p))
			nodes := nodesOf(p)
			switch alg {
			case SHEM:
				inSet := a.Bool(n)
				for _, v := range nodes {
					inSet[v] = true
				}
				shemInto(g, rt, r, nodes, inSet, m, maxPair, a)
				a.PutBool(inSet)
			default:
				// Edge-based algorithms run on the block's internal edges.
				buf := getEdges(0)
				edges := *buf
				for _, v := range nodes {
					adj := g.Adj(v)
					ws := g.AdjWeights(v)
					for i, u := range adj {
						if u > v && block[u] == block[v] {
							edges = append(edges, Edge{v, u, ws[i], rt.Rate(v, u, ws[i]), uint32(r.Uint64())})
						}
					}
				}
				if alg == Greedy {
					greedyEdges(g, edges, m, maxPair)
				} else {
					gpaEdges(g, edges, m, maxPair, a)
				}
				*buf = edges
				putEdges(buf)
			}
		}(p)
	}
	wg.Wait()

	// Phase 2: gap graph. localRating[v] is the rating of v's local match
	// (0 when unmatched). EdgeWeightTo binary-searches on sorted-adjacency
	// graphs (the finest level); contracted levels fall back to the linear
	// scan.
	localRating := a.Float64(n)
	clear(localRating)
	for v := int32(0); v < int32(n); v++ {
		if u := m[v]; u >= 0 {
			localRating[v] = rt.Rate(v, u, g.EdgeWeightTo(v, u))
		}
	}
	gapBuf := getEdges(0)
	gap := *gapBuf
	for v := int32(0); v < int32(n); v++ {
		adj := g.Adj(v)
		ws := g.AdjWeights(v)
		for i, u := range adj {
			if u <= v || block[u] == block[v] {
				continue
			}
			if maxPair > 0 && g.NodeWeight(v)+g.NodeWeight(u) > maxPair {
				continue
			}
			r := rt.Rate(v, u, ws[i])
			if r > localRating[v] && r > localRating[u] {
				gap = append(gap, Edge{v, u, ws[i], r, 0})
			}
		}
	}
	matchLocallyHeaviest(n, gap, m, a)
	*gapBuf = gap
	putEdges(gapBuf)
	a.PutFloat64(localRating)
	a.PutInt32(flat)
	a.PutInt32(off)
	return m
}

// matchLocallyHeaviest iteratively matches gap edges that are the heaviest
// remaining gap edge at both endpoints. Endpoints that had a (lighter) local
// match get it dissolved. Terminates because every round either matches an
// edge or runs out of edges. n is the node count of the underlying graph.
func matchLocallyHeaviest(n int, gap []Edge, m Matching, a *mem.Arena) {
	if len(gap) == 0 {
		return
	}
	gapMatched := a.Bool(n) // nodes matched during the gap phase
	best := a.Int32(n)      // best[v] = index of v's heaviest remaining gap edge
	for i := range best {
		best[i] = -1
	}
	better := func(i, j int32) bool {
		if gap[i].R != gap[j].R {
			return gap[i].R > gap[j].R
		}
		// Deterministic tie break on endpoints.
		if gap[i].U != gap[j].U {
			return gap[i].U < gap[j].U
		}
		return gap[i].V < gap[j].V
	}
	for len(gap) > 0 {
		for i, e := range gap {
			if j := best[e.U]; j < 0 || better(int32(i), j) {
				best[e.U] = int32(i)
			}
			if j := best[e.V]; j < 0 || better(int32(i), j) {
				best[e.V] = int32(i)
			}
		}
		progress := false
		for i, e := range gap {
			if best[e.U] == int32(i) && best[e.V] == int32(i) {
				// Dissolve local matches, then adopt the gap edge.
				if old := m[e.U]; old >= 0 {
					m[old] = -1
				}
				if old := m[e.V]; old >= 0 {
					m[old] = -1
				}
				m[e.U], m[e.V] = e.V, e.U
				gapMatched[e.U], gapMatched[e.V] = true, true
				progress = true
			}
		}
		if !progress {
			break
		}
		// Compact: drop edges incident to matched nodes so later rounds scan
		// only the live remainder.
		live := gap[:0]
		for _, e := range gap {
			best[e.U], best[e.V] = -1, -1
			if !gapMatched[e.U] && !gapMatched[e.V] {
				live = append(live, e)
			}
		}
		gap = live
	}
	a.PutInt32(best)
	a.PutBool(gapMatched)
}
