package matching

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/rating"
	"repro/internal/rng"
)

// Parallel computes a matching with the scheme of §3.3: the node set is
// prepartitioned into nparts blocks (block[v] gives the block of v, e.g.
// from recursive coordinate bisection); a sequential matching algorithm runs
// concurrently on the internal edges of every block; finally the *gap graph*
// — cross-block edges whose rating exceeds that of the edges matched locally
// to both endpoints — is matched by iterated locally-heaviest matching
// (Manne–Bisseling style). When a gap edge wins, the local matches of its
// endpoints are dissolved.
//
// The result is a valid matching of g. With nparts == 1 the function is
// equivalent to Compute.
func Parallel(g *graph.Graph, rt *rating.Rater, alg Algorithm, block []int32, nparts int, seed uint64) Matching {
	return ParallelBounded(g, rt, alg, block, nparts, seed, 0)
}

// ParallelBounded is Parallel with a maximum combined node weight per
// matched pair (0 = unbounded); see ComputeBounded.
func ParallelBounded(g *graph.Graph, rt *rating.Rater, alg Algorithm, block []int32, nparts int, seed uint64, maxPair int64) Matching {
	n := g.NumNodes()
	m := NewEmpty(n)
	if nparts <= 1 {
		return ComputeBounded(g, rt, alg, rng.NewStream(seed, 0), maxPair)
	}

	// Group nodes by block.
	nodesOf := make([][]int32, nparts)
	for v := 0; v < n; v++ {
		b := block[v]
		nodesOf[b] = append(nodesOf[b], int32(v))
	}

	// Phase 1: local matching per block, in parallel. Each worker touches
	// only m[v] for v in its block, so no synchronization beyond the final
	// barrier is needed.
	var wg sync.WaitGroup
	for p := 0; p < nparts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			r := rng.NewStream(seed, uint64(p))
			switch alg {
			case SHEM:
				inSet := make([]bool, n)
				for _, v := range nodesOf[p] {
					inSet[v] = true
				}
				shemInto(g, rt, r, nodesOf[p], inSet, m, maxPair)
			default:
				// Edge-based algorithms run on the block's internal edges.
				var edges []Edge
				for _, v := range nodesOf[p] {
					adj := g.Adj(v)
					ws := g.AdjWeights(v)
					for i, u := range adj {
						if u > v && block[u] == block[v] {
							edges = append(edges, Edge{v, u, ws[i], rt.Rate(v, u, ws[i]), uint32(r.Uint64())})
						}
					}
				}
				if alg == Greedy {
					greedyEdges(g, edges, m, maxPair)
				} else {
					gpaEdges(g, edges, m, maxPair)
				}
			}
		}(p)
	}
	wg.Wait()

	// Phase 2: gap graph. localRating[v] is the rating of v's local match
	// (0 when unmatched).
	localRating := make([]float64, n)
	for v := int32(0); v < int32(n); v++ {
		if u := m[v]; u >= 0 {
			localRating[v] = rt.Rate(v, u, g.EdgeWeightTo(v, u))
		}
	}
	var gap []Edge
	for v := int32(0); v < int32(n); v++ {
		adj := g.Adj(v)
		ws := g.AdjWeights(v)
		for i, u := range adj {
			if u <= v || block[u] == block[v] {
				continue
			}
			if maxPair > 0 && g.NodeWeight(v)+g.NodeWeight(u) > maxPair {
				continue
			}
			r := rt.Rate(v, u, ws[i])
			if r > localRating[v] && r > localRating[u] {
				gap = append(gap, Edge{v, u, ws[i], r, 0})
			}
		}
	}
	matchLocallyHeaviest(n, gap, m)
	return m
}

// matchLocallyHeaviest iteratively matches gap edges that are the heaviest
// remaining gap edge at both endpoints. Endpoints that had a (lighter) local
// match get it dissolved. Terminates because every round either matches an
// edge or runs out of edges. n is the node count of the underlying graph.
func matchLocallyHeaviest(n int, gap []Edge, m Matching) {
	if len(gap) == 0 {
		return
	}
	gapMatched := make([]bool, n) // nodes matched during the gap phase
	best := make([]int32, n)      // best[v] = index of v's heaviest remaining gap edge
	for i := range best {
		best[i] = -1
	}
	better := func(i, j int32) bool {
		if gap[i].R != gap[j].R {
			return gap[i].R > gap[j].R
		}
		// Deterministic tie break on endpoints.
		if gap[i].U != gap[j].U {
			return gap[i].U < gap[j].U
		}
		return gap[i].V < gap[j].V
	}
	for len(gap) > 0 {
		for i, e := range gap {
			if j := best[e.U]; j < 0 || better(int32(i), j) {
				best[e.U] = int32(i)
			}
			if j := best[e.V]; j < 0 || better(int32(i), j) {
				best[e.V] = int32(i)
			}
		}
		progress := false
		for i, e := range gap {
			if best[e.U] == int32(i) && best[e.V] == int32(i) {
				// Dissolve local matches, then adopt the gap edge.
				if old := m[e.U]; old >= 0 {
					m[old] = -1
				}
				if old := m[e.V]; old >= 0 {
					m[old] = -1
				}
				m[e.U], m[e.V] = e.V, e.U
				gapMatched[e.U], gapMatched[e.V] = true, true
				progress = true
			}
		}
		if !progress {
			break
		}
		// Compact: drop edges incident to matched nodes so later rounds scan
		// only the live remainder.
		live := gap[:0]
		for _, e := range gap {
			best[e.U], best[e.V] = -1, -1
			if !gapMatched[e.U] && !gapMatched[e.V] {
				live = append(live, e)
			}
		}
		gap = live
	}
}
