package matching

import (
	"sync"

	"repro/internal/dist"
	"repro/internal/rating"
	"repro/internal/rng"
)

// Distributed computes a matching of a distributed graph the way §3 of the
// paper prescribes: every PE runs the sequential algorithm on the internal
// (owned–owned) edges of its own subgraph, then the PEs resolve the boundary
// in iterated two-phase rounds over the Transport — each PE publishes the
// matching state of its boundary nodes to the PEs holding them as ghosts,
// proposes its best eligible cut edges across the cut, and accepts exactly
// the proposals that were mutual, with the deterministic tie-break on global
// id making both sides reach the same verdict independently.
//
// The result is one Matching per PE in *local* ids over sgs[pe].Local: an
// owned node matched across a cut points at the ghost local id of its
// partner (and the partner's PE records the mirrored pair). Use
// GlobalFromSubgraphs to merge the per-PE matchings into a matching of the
// global graph.
//
// Every randomized choice draws from an rng stream derived from (seed, PE)
// and every cross-PE message sequence is schedule-independent, so the result
// is byte-identical across runs — and across GOMAXPROCS settings — for a
// fixed seed.
func Distributed(sgs []*dist.Subgraph, ex dist.Transport, rf rating.Func, alg Algorithm, seed uint64) []Matching {
	return DistributedBounded(sgs, ex, rf, alg, seed, 0, true)
}

// DistributedBounded is Distributed with a maximum combined node weight per
// matched pair (0 = unbounded) and an optional boundary phase: with boundary
// false the PEs match only their internal edges (the distributed counterpart
// of the no-gap-matching ablation) but still participate in the termination
// votes so the superstep counts stay aligned.
func DistributedBounded(sgs []*dist.Subgraph, ex dist.Transport, rf rating.Func, alg Algorithm, seed uint64, maxPair int64, boundary bool) []Matching {
	pes := len(sgs)
	out := make([]Matching, pes)
	var wg sync.WaitGroup
	for pe := 0; pe < pes; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			out[pe] = MatchSubgraph(sgs[pe], ex, rf, alg, seed, maxPair, boundary, pe)
		}(pe)
	}
	wg.Wait()
	return out
}

// MatchSubgraph is the per-PE side of DistributedBounded: the superstep
// sequence ONE processing element executes against its own subgraph shard.
// In-process runs spawn it per PE over a shared Transport; an out-of-process
// worker (kappa worker) calls it directly with its shard and a
// SocketTransport, which is what makes the distributed matching phase
// runnable one-OS-process-per-PE without a second code path.
func MatchSubgraph(sg *dist.Subgraph, ex dist.Transport, rf rating.Func, alg Algorithm, seed uint64, maxPair int64, boundary bool, pe int) Matching {
	g := sg.Local
	n := g.NumNodes()
	owned := sg.NumOwned
	m := NewEmpty(n)
	r := rng.NewStream(seed, uint64(pe))
	rt := rating.NewRater(rf, g)

	// Phase 1: sequential matching on the internal (owned–owned) edges.
	switch alg {
	case SHEM:
		nodes := make([]int32, owned)
		inSet := make([]bool, n)
		for i := range nodes {
			nodes[i] = int32(i)
			inSet[i] = true
		}
		shemInto(g, rt, r, nodes, inSet, m, maxPair, nil)
	default:
		var edges []Edge
		for lv := int32(0); lv < int32(owned); lv++ {
			adj, ws := g.Adj(lv), g.AdjWeights(lv)
			for i, lu := range adj {
				if lu > lv && int(lu) < owned {
					edges = append(edges, Edge{lv, lu, ws[i], rt.Rate(lv, lu, ws[i]), uint32(r.Uint64())})
				}
			}
		}
		if alg == Greedy {
			greedyEdges(g, edges, m, maxPair)
		} else {
			gpaEdges(g, edges, m, maxPair, nil)
		}
	}

	// Boundary bookkeeping: peersOf[lv] lists the owner PEs holding owned
	// node lv as a ghost, in deterministic (ascending) send order.
	peersOf := sg.BoundaryPeers()
	var bnodes []int32
	for lv := int32(0); lv < int32(owned); lv++ {
		if len(peersOf[lv]) > 0 {
			bnodes = append(bnodes, lv)
		}
	}

	localRating := func(lv int32) float64 {
		if u := m[lv]; u >= 0 {
			return rt.Rate(lv, u, g.EdgeWeightTo(lv, u))
		}
		return 0
	}

	crossMatched := make([]bool, n)
	ghostRating := make([]float64, sg.NumGhosts())
	ghostFinal := make([]bool, sg.NumGhosts())
	prop := make([]int32, owned) // this round's proposal target (ghost local id), -1 = none

	// Phase 2: iterated boundary rounds. Every PE executes the same superstep
	// sequence per round (state exchange, proposal exchange, termination
	// vote) even when it owns no boundary nodes, so the Transport stays in
	// lockstep across PEs — including PEs with empty subgraphs.
	for round := 0; ; round++ {
		// 2a: publish boundary state to the PEs holding each node as ghost.
		stateOut := make([][]dist.Msg, ex.PEs())
		for _, lv := range bnodes {
			msg := dist.Msg{Kind: dist.MsgGhostState, A: sg.ToGlobal(lv), R: localRating(lv)}
			if crossMatched[lv] {
				msg.W = 1
			}
			for _, q := range peersOf[lv] {
				stateOut[q] = append(stateOut[q], msg)
			}
		}
		for _, msg := range ex.Exchange(pe, stateOut) {
			if lu, ok := sg.ToLocal(msg.A); ok && int(lu) >= owned {
				ghostRating[int(lu)-owned] = msg.R
				ghostFinal[int(lu)-owned] = msg.W != 0
			}
		}

		// 2b: propose the best eligible cut edge of every boundary node. An
		// edge is eligible when its rating beats the local matches of *both*
		// endpoints (each side checks with the state just published), exactly
		// the gap-graph condition of the shared-memory scheme.
		propOut := make([][]dist.Msg, ex.PEs())
		for i := range prop {
			prop[i] = -1
		}
		if boundary {
			for _, lv := range bnodes {
				if crossMatched[lv] {
					continue
				}
				mine := localRating(lv)
				adj, ws := g.Adj(lv), g.AdjWeights(lv)
				best, bestR := int32(-1), 0.0
				for i, lu := range adj {
					gi := int(lu) - owned
					if gi < 0 || ghostFinal[gi] {
						continue
					}
					if maxPair > 0 && g.NodeWeight(lv)+g.NodeWeight(lu) > maxPair {
						continue
					}
					rr := rt.Rate(lv, lu, ws[i])
					if rr <= mine || rr <= ghostRating[gi] {
						continue
					}
					// Deterministic preference: higher rating, then smaller
					// global id of the ghost endpoint.
					if best < 0 || rr > bestR || (rr == bestR && sg.ToGlobal(lu) < sg.ToGlobal(best)) {
						best, bestR = lu, rr
					}
				}
				if best >= 0 {
					prop[lv] = best
					q := sg.GhostOwner[int(best)-owned]
					propOut[q] = append(propOut[q], dist.Msg{
						Kind: dist.MsgProposal, A: sg.ToGlobal(lv), B: sg.ToGlobal(best), R: bestR,
					})
				}
			}
		}

		// 2c: accept exactly the mutual proposals. Both endpoint owners see
		// the pair (each receives the other's proposal and knows its own), so
		// they reach the same verdict without a confirmation round.
		progress := false
		for _, msg := range ex.Exchange(pe, propOut) {
			if msg.Kind != dist.MsgProposal {
				continue
			}
			lb, ok := sg.ToLocal(msg.B)
			if !ok || int(lb) >= owned {
				continue
			}
			la, ok := sg.ToLocal(msg.A)
			if !ok || prop[lb] != la {
				continue
			}
			// Mutual: dissolve the (lighter) local match, adopt the cut edge.
			if old := m[lb]; old >= 0 {
				m[old] = -1
			}
			m[lb], m[la] = la, lb
			crossMatched[lb] = true
			progress = true
		}

		if !ex.AllReduceOr(pe, progress) {
			break
		}
	}
	return m
}

// GlobalFromSubgraphs merges per-PE local matchings into one matching of the
// n-node global graph. Cross-PE pairs are recorded by both owners with the
// same global ids, so the merge is conflict-free.
func GlobalFromSubgraphs(n int, sgs []*dist.Subgraph, ms []Matching) Matching {
	gm := NewEmpty(n)
	for pe, sg := range sgs {
		for lv := int32(0); lv < int32(sg.NumOwned); lv++ {
			if lu := ms[pe][lv]; lu >= 0 {
				gm[sg.ToGlobal(lv)] = sg.ToGlobal(lu)
			}
		}
	}
	return gm
}
