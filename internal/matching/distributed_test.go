package matching

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rating"
)

// runDistributed extracts subgraphs for assign, runs the distributed
// matcher, and returns the merged global matching.
func runDistributed(t *testing.T, g *graph.Graph, assign []int32, pes int, rf rating.Func, alg Algorithm, seed uint64, maxPair int64, boundary bool) Matching {
	t.Helper()
	sgs := dist.ExtractAll(g, assign, pes)
	ex := dist.NewExchanger(pes)
	ms := DistributedBounded(sgs, ex, rf, alg, seed, maxPair, boundary)
	gm := GlobalFromSubgraphs(g.NumNodes(), sgs, ms)
	if err := gm.Validate(g); err != nil {
		t.Fatalf("distributed matching invalid: %v", err)
	}
	return gm
}

// TestDistributedMutualProposal builds the worked example of the two-phase
// boundary resolution: a cut edge that is the best edge of both endpoints,
// so both PEs propose it to each other in the same round; the mutual
// proposals must be accepted and the lighter local matches dissolved.
func TestDistributedMutualProposal(t *testing.T) {
	// PE 0 owns {0,1}, PE 1 owns {2,3}. Edge weights: 0-1 and 2-3 are light
	// internal edges (weight 1); the cut edge 1-2 is heavy (weight 10).
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 10)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	assign := []int32{0, 0, 1, 1}

	gm := runDistributed(t, g, assign, 2, rating.Weight, GPA, 7, 0, true)
	if gm[1] != 2 || gm[2] != 1 {
		t.Fatalf("cut edge {1,2} not matched: m[1]=%d m[2]=%d", gm[1], gm[2])
	}
	if gm[0] != -1 || gm[3] != -1 {
		t.Fatalf("local matches not dissolved: m[0]=%d m[3]=%d", gm[0], gm[3])
	}

	// Without the boundary phase the cut edge must stay unmatched and the
	// internal edges win.
	gm = runDistributed(t, g, assign, 2, rating.Weight, GPA, 7, 0, false)
	if gm[0] != 1 || gm[2] != 3 {
		t.Fatalf("boundary=false: want internal matches, got %v", gm)
	}
}

// TestDistributedEmptySubgraph gives one PE no nodes at all: the exchange
// rounds must stay in lockstep (no deadlock) and the result must still be a
// valid matching.
func TestDistributedEmptySubgraph(t *testing.T) {
	g := gen.Grid2D(8, 8)
	assign := make([]int32, g.NumNodes())
	for v := range assign {
		// PEs 0 and 2 share the nodes; PE 1 owns nothing.
		assign[v] = int32(v%2) * 2
	}
	gm := runDistributed(t, g, assign, 3, rating.ExpansionStar2, GPA, 3, 0, true)
	if gm.Size() == 0 {
		t.Fatal("expected a non-empty matching")
	}
}

// TestDistributedBothEndpointsPropose covers the degenerate two-node-per-PE
// star where several boundary nodes compete for the same ghost: only mutual
// proposals may match, and the result must stay a valid matching.
func TestDistributedContestedGhost(t *testing.T) {
	// PEs 0,1,2 each own one spoke; PE 3 owns the hub. All spokes' best edge
	// is the hub, but the hub proposes to exactly one spoke per round.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 3, 5)
	b.AddEdge(1, 3, 5)
	b.AddEdge(2, 3, 5)
	g := b.Build()
	gm := runDistributed(t, g, []int32{0, 1, 2, 3}, 4, rating.Weight, GPA, 11, 0, true)
	if gm.Size() != 1 {
		t.Fatalf("hub can match exactly one spoke, got %d pairs", gm.Size())
	}
}

// TestDistributedDeterminism reruns the distributed matcher on identical
// inputs: the result must be byte-identical, for every algorithm, including
// when the number of worker PEs exceeds GOMAXPROCS.
func TestDistributedDeterminism(t *testing.T) {
	g := gen.RGG(10, 42)
	for _, alg := range []Algorithm{GPA, SHEM, Greedy} {
		for _, pes := range []int{2, 7} {
			assign := dist.Assign(g, dist.StrategyRCB, pes)
			ref := runDistributed(t, g, assign, pes, rating.ExpansionStar2, alg, 99, 8, true)
			for rep := 0; rep < 3; rep++ {
				got := runDistributed(t, g, assign, pes, rating.ExpansionStar2, alg, 99, 8, true)
				for v := range ref {
					if got[v] != ref[v] {
						t.Fatalf("%v/pes=%d: node %d matched to %d, then %d", alg, pes, v, ref[v], got[v])
					}
				}
			}
		}
	}
}

// TestDistributedRespectsMaxPair checks the cluster-weight cap across the
// cut: a heavy cut edge whose endpoints together exceed the cap must not be
// matched, even though its rating would win.
func TestDistributedRespectsMaxPair(t *testing.T) {
	b := graph.NewBuilder(4)
	b.SetNodeWeight(1, 5)
	b.SetNodeWeight(2, 5)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 100)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	gm := runDistributed(t, g, []int32{0, 0, 1, 1}, 2, rating.Weight, GPA, 1, 7, true)
	if gm[1] == 2 {
		t.Fatal("cut pair {1,2} exceeds maxPair=7 but was matched")
	}
}
