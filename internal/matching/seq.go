package matching

import (
	"sort"
	"sync"

	"repro/internal/dsu"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/rating"
	"repro/internal/rng"
)

// shemInto implements Sorted Heavy Edge Matching writing into an existing
// matching: nodes are scanned in order of increasing degree (random within
// equal degrees); each unmatched node is matched to the unmatched neighbor
// with the highest edge rating. If nodes is non-nil, matching is restricted
// to that node subset; inSet restricts the eligible partners (nil means all
// nodes are eligible). Scratch comes from a (nil = allocate).
func shemInto(g *graph.Graph, rt *rating.Rater, r *rng.RNG, nodes []int32, inSet []bool, m Matching, maxPair int64, a *mem.Arena) {
	var count int
	if nodes == nil {
		count = g.NumNodes()
	} else {
		count = len(nodes)
	}
	order := a.Int32(count)
	if nodes == nil {
		for i := range order {
			order[i] = int32(i)
		}
	} else {
		copy(order, nodes)
	}
	// Sort by increasing degree with random tie breaks.
	ties := a.Uint32(count)
	for i := range ties {
		ties[i] = uint32(r.Uint64())
	}
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return ties[i] < ties[j]
	})
	for _, v := range order {
		if m[v] >= 0 {
			continue
		}
		adj := g.Adj(v)
		ws := g.AdjWeights(v)
		best := int32(-1)
		bestR := 0.0
		for i, u := range adj {
			// The block check must precede the m[u] read: in the parallel
			// scheme, matching entries of foreign blocks are concurrently
			// written by their owners.
			if inSet != nil && !inSet[u] {
				continue
			}
			if m[u] >= 0 {
				continue
			}
			if maxPair > 0 && g.NodeWeight(v)+g.NodeWeight(u) > maxPair {
				continue
			}
			rr := rt.Rate(v, u, ws[i])
			if best < 0 || rr > bestR {
				best, bestR = u, rr
			}
		}
		if best >= 0 {
			m[v] = best
			m[best] = v
		}
	}
	a.PutUint32(ties)
	a.PutInt32(order)
}

// greedyEdges runs the sorted greedy half-approximation over the given edge
// set, writing into m: edges are scanned by descending rating and taken
// whenever both endpoints are free.
func greedyEdges(g *graph.Graph, edges []Edge, m Matching, maxPair int64) {
	sortEdgesDesc(edges)
	for _, e := range edges {
		if maxPair > 0 && g.NodeWeight(e.U)+g.NodeWeight(e.V) > maxPair {
			continue
		}
		if m[e.U] < 0 && m[e.V] < 0 {
			m[e.U] = e.V
			m[e.V] = e.U
		}
	}
}

// halfEdge is one direction of a selected GPA edge.
type halfEdge struct {
	to int32
	r  float64
}

// halfAdjSlices recycles the degree-≤2 adjacency used by the GPA path/cycle
// decomposition (two halfEdges per node — the second-largest transient of a
// GPA level after the candidate-edge array). A process-global sync.Pool for
// the same reason as edgeSlices: the typed arena cannot hold this shape,
// and GC-managed reclaim is the right lifetime for it.
var halfAdjSlices = sync.Pool{New: func() any { return new([][2]halfEdge) }}

// gpaEdges runs the Global Path Algorithm over the given edge set, writing
// into m. GPA scans edges by descending rating like Greedy but first grows a
// collection of paths and even cycles; it then computes an optimal matching
// on each path/cycle by dynamic programming. Scratch comes from a (nil =
// allocate).
func gpaEdges(g *graph.Graph, edges []Edge, m Matching, maxPair int64, a *mem.Arena) {
	n := g.NumNodes()
	sortEdgesDesc(edges)
	deg := a.Bytes(n)
	clear(deg)
	dsuParent := a.Int32(n)
	dsuSize := a.Int32(n)
	d := dsu.NewIn(dsuParent, dsuSize)
	odd := a.Bool(n)    // parity of edge count, stored at DSU roots
	closed := a.Bool(n) // piece already closed into a cycle
	selected := edges[:0]
	for _, e := range edges {
		if deg[e.U] >= 2 || deg[e.V] >= 2 {
			continue
		}
		// The path/cycle DP may pick any selected edge, so the pair bound
		// must hold at selection time already.
		if maxPair > 0 && g.NodeWeight(e.U)+g.NodeWeight(e.V) > maxPair {
			continue
		}
		ru, rv := d.Find(e.U), d.Find(e.V)
		if closed[ru] || closed[rv] {
			continue
		}
		if ru == rv {
			// Both endpoints of one path: closing it creates a cycle with
			// edgeCount+1 edges, which must be even.
			if !odd[ru] {
				continue
			}
			closed[ru] = true
			deg[e.U]++
			deg[e.V]++
			selected = append(selected, e)
			continue
		}
		// The merged path has cu+cv+1 edges, which is odd iff cu and cv
		// have equal parity.
		newOdd := odd[ru] == odd[rv]
		d.Union(e.U, e.V)
		root := d.Find(e.U)
		odd[root] = newOdd
		closed[root] = false
		deg[e.U]++
		deg[e.V]++
		selected = append(selected, e)
	}
	matchPathsAndCycles(n, selected, deg, m, a)
	a.PutBool(closed)
	a.PutBool(odd)
	a.PutInt32(dsuSize)
	a.PutInt32(dsuParent)
	a.PutBytes(deg)
}

// pathDP holds the grow-only dynamic-programming buffers of one
// matchPathsAndCycles invocation, so the per-path/per-cycle solves allocate
// nothing.
type pathDP struct {
	dpTake, dpSkip []float64
	take, takeAlt  []bool
}

func (s *pathDP) grow(k int) {
	if cap(s.dpTake) < k {
		s.dpTake = make([]float64, k)
		s.dpSkip = make([]float64, k)
		s.take = make([]bool, k)
		s.takeAlt = make([]bool, k)
	}
}

// matchPathsAndCycles decomposes the degree-≤2 edge set into paths and
// cycles, solves each optimally by dynamic programming, and records the
// chosen edges in m.
func matchPathsAndCycles(n int, selected []Edge, deg []byte, m Matching, a *mem.Arena) {
	// Adjacency among selected edges: at most two incident edges per node.
	adjP := halfAdjSlices.Get().(*[][2]halfEdge)
	if cap(*adjP) < n {
		*adjP = make([][2]halfEdge, n)
	}
	adj := (*adjP)[:n]
	cnt := a.Bytes(n)
	clear(cnt)
	push := func(v, u int32, r float64) {
		adj[v][cnt[v]] = halfEdge{u, r}
		cnt[v]++
	}
	for _, e := range selected {
		push(e.U, e.V, e.R)
		push(e.V, e.U, e.R)
	}
	visited := a.Bool(n)
	var pathU, pathV []int32
	var pathR []float64
	var dp pathDP

	walk := func(start int32) bool /*isCycle*/ {
		pathU, pathV, pathR = pathU[:0], pathV[:0], pathR[:0]
		prev := int32(-1)
		v := start
		for {
			visited[v] = true
			var next halfEdge
			found := false
			for i := byte(0); i < cnt[v]; i++ {
				if adj[v][i].to != prev {
					next = adj[v][i]
					found = true
					break
				}
			}
			if !found {
				return false // path ended
			}
			pathU = append(pathU, v)
			pathV = append(pathV, next.to)
			pathR = append(pathR, next.r)
			if next.to == start {
				return true // cycle closed
			}
			if visited[next.to] {
				return false
			}
			prev, v = v, next.to
		}
	}

	apply := func(take []bool) {
		for i, t := range take {
			if t {
				m[pathU[i]] = pathV[i]
				m[pathV[i]] = pathU[i]
			}
		}
	}

	// Paths first (endpoints have degree 1).
	for v := int32(0); v < int32(n); v++ {
		if !visited[v] && cnt[v] == 1 {
			walk(v)
			apply(maxPathMatching(pathR, &dp))
		}
	}
	// Remaining unvisited nodes with edges lie on cycles.
	for v := int32(0); v < int32(n); v++ {
		if !visited[v] && cnt[v] == 2 {
			if !walk(v) {
				continue // defensive: should not happen
			}
			apply(maxCycleMatching(pathR, &dp))
		}
	}
	// A walk that started mid-path would miss one side; starting only at
	// degree-1 nodes (paths) and unvisited degree-2 nodes (cycles) covers
	// everything because paths are exhausted before cycles.
	a.PutBool(visited)
	a.PutBytes(cnt)
	halfAdjSlices.Put(adjP)
}

// maxPathMatching returns, for a path whose consecutive edges have ratings
// r, the optimal take/skip choice maximizing the total rating of pairwise
// non-adjacent edges. The result aliases dp.take and is valid until the next
// solve on the same pathDP.
func maxPathMatching(r []float64, dp *pathDP) []bool {
	k := len(r)
	dp.grow(k)
	take := dp.take[:k]
	clear(take)
	if k == 0 {
		return take
	}
	maxPathMatchingInto(r, take, dp.dpTake[:k], dp.dpSkip[:k])
	return take
}

// maxPathMatchingInto solves the path DP into the caller's buffers; take
// must be pre-cleared.
func maxPathMatchingInto(r []float64, take []bool, dpTake, dpSkip []float64) {
	k := len(r)
	if k == 0 {
		return
	}
	// dpTake[i] = best over first i+1 edges with edge i taken; dpSkip[i] =
	// best with edge i skipped.
	dpTake[0], dpSkip[0] = r[0], 0
	for i := 1; i < k; i++ {
		dpTake[i] = dpSkip[i-1] + r[i]
		dpSkip[i] = dpTake[i-1]
		if dpSkip[i-1] > dpSkip[i] {
			dpSkip[i] = dpSkip[i-1]
		}
	}
	// Backtrack.
	taking := dpTake[k-1] >= dpSkip[k-1]
	for i := k - 1; i >= 0; i-- {
		if taking {
			take[i] = true
			taking = false // next (previous) edge must be skipped
		} else {
			if i > 0 {
				taking = dpTake[i-1] >= dpSkip[i-1]
			}
		}
	}
}

// maxCycleMatching solves the cycle case: either the last edge is excluded
// (path over edges 0..k-2) or it is taken (forcing its neighbors, edges 0
// and k-2, out; path over 1..k-3). The result aliases dp.take.
func maxCycleMatching(r []float64, dp *pathDP) []bool {
	k := len(r)
	if k < 3 {
		// Degenerate; treat as path.
		return maxPathMatching(r, dp)
	}
	dp.grow(k)
	sum := func(take []bool, rs []float64) float64 {
		s := 0.0
		for i, t := range take {
			if t {
				s += rs[i]
			}
		}
		return s
	}
	// Variant a in dp.takeAlt: last edge excluded.
	a := dp.takeAlt[:k-1]
	clear(a)
	maxPathMatchingInto(r[:k-1], a, dp.dpTake[:k-1], dp.dpSkip[:k-1])
	aVal := sum(a, r[:k-1])
	// Variant b in dp.take: last edge taken, inner path over 1..k-3.
	take := dp.take[:k]
	clear(take)
	bInner := take[1 : k-2]
	maxPathMatchingInto(r[1:k-2], bInner, dp.dpTake[:k-3], dp.dpSkip[:k-3])
	bVal := r[k-1] + sum(bInner, r[1:k-2])
	if aVal >= bVal {
		clear(take)
		copy(take, a)
		return take
	}
	take[k-1] = true
	return take
}
