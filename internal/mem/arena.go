// Package mem provides the scratch arena that makes the multilevel kernels
// allocation-free across contraction levels.
//
// The paper's §5.2 chooses the static adjacency-array layout precisely so the
// hot kernels run over flat, pre-sized buffers. The multilevel scheme then
// repeats the same kernels at every one of the O(log n) levels of the
// V-cycle, each needing temporary arrays no larger than those of the finest
// graph. An Arena owns those temporaries: a stage borrows a slice sized to
// its current level, uses it, and returns it, so the next level — and the
// next Run on the same Arena — reuses the same backing memory instead of
// re-allocating and re-triggering the garbage collector.
//
// Arenas are safe for concurrent use: the parallel contraction workers and
// the concurrent pairwise refinements of one run all borrow from the shared
// arena of that run. A nil *Arena is valid everywhere and falls back to
// plain allocation, so every scratch-aware function accepts "no reuse" with
// zero branches at the call sites.
package mem

import "sync"

// maxFree bounds the number of idle slices kept per element type so that a
// burst of concurrent borrowers cannot grow an arena without bound.
const maxFree = 64

// Arena is a reusable pool of scratch slices, one free list per element
// type. Borrowed slices have exactly the requested length and UNDEFINED
// contents — callers must initialize every element they read (the kernels
// all do, either by stamping or by explicit fill loops). Returning a slice
// that is still referenced elsewhere is the caller's bug, exactly as with
// any other manual reuse scheme.
//
// The zero value is ready to use; so is nil (every method on a nil arena
// degenerates to make / no-op).
type Arena struct {
	mu    sync.Mutex
	i32   [][]int32
	i64   [][]int64
	u32   [][]uint32
	f64   [][]float64
	bl    [][]bool
	by    [][]byte
	gets  int64 // borrows served
	hits  int64 // borrows served from a free list
	grews int64 // borrows that had to allocate
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// take removes the best-fitting free slice with capacity >= n, or reports
// failure. Best fit (smallest sufficient capacity) keeps the big finest-level
// buffers for the big requests.
func take[T any](list *[][]T, n int) ([]T, bool) {
	best := -1
	for i, s := range *list {
		if cap(s) >= n && (best < 0 || cap(s) < cap((*list)[best])) {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	s := (*list)[best]
	last := len(*list) - 1
	(*list)[best] = (*list)[last]
	(*list)[last] = nil
	*list = (*list)[:last]
	return s[:n], true
}

func put[T any](list *[][]T, s []T) {
	if cap(s) == 0 || len(*list) >= maxFree {
		return
	}
	*list = append(*list, s[:0])
}

// Int32 borrows a scratch []int32 of length n (contents undefined).
func (a *Arena) Int32(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.gets++
	if s, ok := take(&a.i32, n); ok {
		a.hits++
		return s
	}
	a.grews++
	return make([]int32, n)
}

// PutInt32 returns a slice borrowed with Int32 (or adopts any other
// no-longer-referenced slice into the pool). nil receivers and nil slices
// are no-ops.
func (a *Arena) PutInt32(s []int32) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	put(&a.i32, s)
}

// Int64 borrows a scratch []int64 of length n (contents undefined).
func (a *Arena) Int64(n int) []int64 {
	if a == nil {
		return make([]int64, n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.gets++
	if s, ok := take(&a.i64, n); ok {
		a.hits++
		return s
	}
	a.grews++
	return make([]int64, n)
}

// PutInt64 returns a slice borrowed with Int64.
func (a *Arena) PutInt64(s []int64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	put(&a.i64, s)
}

// Uint32 borrows a scratch []uint32 of length n (contents undefined).
func (a *Arena) Uint32(n int) []uint32 {
	if a == nil {
		return make([]uint32, n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.gets++
	if s, ok := take(&a.u32, n); ok {
		a.hits++
		return s
	}
	a.grews++
	return make([]uint32, n)
}

// PutUint32 returns a slice borrowed with Uint32.
func (a *Arena) PutUint32(s []uint32) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	put(&a.u32, s)
}

// Float64 borrows a scratch []float64 of length n (contents undefined).
func (a *Arena) Float64(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.gets++
	if s, ok := take(&a.f64, n); ok {
		a.hits++
		return s
	}
	a.grews++
	return make([]float64, n)
}

// PutFloat64 returns a slice borrowed with Float64.
func (a *Arena) PutFloat64(s []float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	put(&a.f64, s)
}

// Bool borrows a scratch []bool of length n, ZEROED (membership sets are the
// one scratch shape whose users universally rely on a false default).
func (a *Arena) Bool(n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	a.mu.Lock()
	a.gets++
	s, ok := take(&a.bl, n)
	if ok {
		a.hits++
	} else {
		a.grews++
	}
	a.mu.Unlock()
	if !ok {
		return make([]bool, n)
	}
	clear(s)
	return s
}

// PutBool returns a slice borrowed with Bool. The slice need not be cleared
// first; Bool clears on borrow.
func (a *Arena) PutBool(s []bool) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	put(&a.bl, s)
}

// Bytes borrows a scratch []byte of length n (contents undefined).
func (a *Arena) Bytes(n int) []byte {
	if a == nil {
		return make([]byte, n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.gets++
	if s, ok := take(&a.by, n); ok {
		a.hits++
		return s
	}
	a.grews++
	return make([]byte, n)
}

// PutBytes returns a slice borrowed with Bytes.
func (a *Arena) PutBytes(s []byte) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	put(&a.by, s)
}

// Stats reports how many borrows the arena served and how many of those were
// satisfied from a free list (reuse) versus fresh allocations. Tests use it
// to assert that reuse actually happens.
func (a *Arena) Stats() (gets, reused, allocated int64) {
	if a == nil {
		return 0, 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gets, a.hits, a.grews
}
