// Package mem provides the scratch arena that makes the multilevel kernels
// allocation-free across contraction levels.
//
// The paper's §5.2 chooses the static adjacency-array layout precisely so the
// hot kernels run over flat, pre-sized buffers. The multilevel scheme then
// repeats the same kernels at every one of the O(log n) levels of the
// V-cycle, each needing temporary arrays no larger than those of the finest
// graph. An Arena owns those temporaries: a stage borrows a slice sized to
// its current level, uses it, and returns it, so the next level — and the
// next Run on the same Arena — reuses the same backing memory instead of
// re-allocating and re-triggering the garbage collector.
//
// Arenas are safe for concurrent use: the parallel contraction workers and
// the concurrent pairwise refinements of one run all borrow from the shared
// arena of that run. A nil *Arena is valid everywhere and falls back to
// plain allocation, so every scratch-aware function accepts "no reuse" with
// zero branches at the call sites.
package mem

import "sync"

// maxFree bounds the number of idle slices kept per element type so that a
// burst of concurrent borrowers cannot grow an arena without bound.
const maxFree = 64

// Arena is a reusable pool of scratch slices, one free list per element
// type. Borrowed slices have exactly the requested length and UNDEFINED
// contents — callers must initialize every element they read (the kernels
// all do, either by stamping or by explicit fill loops). Returning a slice
// that is still referenced elsewhere is the caller's bug, exactly as with
// any other manual reuse scheme.
//
// The zero value is ready to use; so is nil (every method on a nil arena
// degenerates to make / no-op).
type Arena struct {
	mu  sync.Mutex
	i32 [][]int32
	i64 [][]int64
	u32 [][]uint32
	f64 [][]float64
	bl  [][]bool
	by  [][]byte

	// Counters behind Stats; all guarded by mu.
	gets       int64 // borrows served
	hits       int64 // borrows served from a free list
	grews      int64 // borrows that had to allocate
	allocBytes int64 // bytes of fresh backing arrays ever made
	liveBytes  int64 // bytes currently out with borrowers
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// ArenaStats is a point-in-time snapshot of an arena's accounting: how many
// borrows it served, how many were reuse (free-list hits) versus fresh
// allocations (misses), and where the bytes are — allocated over the arena's
// lifetime, currently out with borrowers, or idle in the free lists. It is
// the data source of the arena gauges of internal/obs.
type ArenaStats struct {
	Borrows int64 // borrows served
	Reused  int64 // borrows served from a free list (hits)
	Misses  int64 // borrows that had to allocate fresh

	AllocatedBytes int64 // bytes of fresh backing arrays made so far
	LiveBytes      int64 // bytes currently borrowed and not yet returned
	PooledBytes    int64 // bytes sitting idle in the free lists
}

// take removes the best-fitting free slice with capacity >= n, or reports
// failure. Best fit (smallest sufficient capacity) keeps the big finest-level
// buffers for the big requests.
func take[T any](list *[][]T, n int) ([]T, bool) {
	best := -1
	for i, s := range *list {
		if cap(s) >= n && (best < 0 || cap(s) < cap((*list)[best])) {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	s := (*list)[best]
	last := len(*list) - 1
	(*list)[best] = (*list)[last]
	(*list)[last] = nil
	*list = (*list)[:last]
	return s[:n], true
}

func put[T any](list *[][]T, s []T) {
	if cap(s) == 0 || len(*list) >= maxFree {
		return
	}
	*list = append(*list, s[:0])
}

// borrow serves one borrow from the free list (or fresh) under a's lock and
// maintains the byte accounting; reused reports a free-list hit (whose
// contents are stale and may need clearing — see Bool).
func borrow[T any](a *Arena, list *[][]T, n int, elemSize int64) (s []T, reused bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.gets++
	if s, ok := take(list, n); ok {
		a.hits++
		a.liveBytes += int64(cap(s)) * elemSize
		return s, true
	}
	a.grews++
	a.allocBytes += int64(n) * elemSize
	a.liveBytes += int64(n) * elemSize
	return make([]T, n), false
}

// release returns a borrowed slice to the free list and credits its bytes.
// Adopted slices (Put without a matching borrow) can over-credit; the live
// counter clamps at zero so the gauge never reads negative.
func release[T any](a *Arena, list *[][]T, s []T, elemSize int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.liveBytes -= int64(cap(s)) * elemSize
	if a.liveBytes < 0 {
		a.liveBytes = 0
	}
	put(list, s)
}

// Int32 borrows a scratch []int32 of length n (contents undefined).
func (a *Arena) Int32(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	s, _ := borrow(a, &a.i32, n, 4)
	return s
}

// PutInt32 returns a slice borrowed with Int32 (or adopts any other
// no-longer-referenced slice into the pool). nil receivers and nil slices
// are no-ops.
func (a *Arena) PutInt32(s []int32) {
	if a == nil {
		return
	}
	release(a, &a.i32, s, 4)
}

// Int64 borrows a scratch []int64 of length n (contents undefined).
func (a *Arena) Int64(n int) []int64 {
	if a == nil {
		return make([]int64, n)
	}
	s, _ := borrow(a, &a.i64, n, 8)
	return s
}

// PutInt64 returns a slice borrowed with Int64.
func (a *Arena) PutInt64(s []int64) {
	if a == nil {
		return
	}
	release(a, &a.i64, s, 8)
}

// Uint32 borrows a scratch []uint32 of length n (contents undefined).
func (a *Arena) Uint32(n int) []uint32 {
	if a == nil {
		return make([]uint32, n)
	}
	s, _ := borrow(a, &a.u32, n, 4)
	return s
}

// PutUint32 returns a slice borrowed with Uint32.
func (a *Arena) PutUint32(s []uint32) {
	if a == nil {
		return
	}
	release(a, &a.u32, s, 4)
}

// Float64 borrows a scratch []float64 of length n (contents undefined).
func (a *Arena) Float64(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	s, _ := borrow(a, &a.f64, n, 8)
	return s
}

// PutFloat64 returns a slice borrowed with Float64.
func (a *Arena) PutFloat64(s []float64) {
	if a == nil {
		return
	}
	release(a, &a.f64, s, 8)
}

// Bool borrows a scratch []bool of length n, ZEROED (membership sets are the
// one scratch shape whose users universally rely on a false default).
func (a *Arena) Bool(n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	s, reused := borrow(a, &a.bl, n, 1)
	if reused {
		clear(s)
	}
	return s
}

// PutBool returns a slice borrowed with Bool. The slice need not be cleared
// first; Bool clears on borrow.
func (a *Arena) PutBool(s []bool) {
	if a == nil {
		return
	}
	release(a, &a.bl, s, 1)
}

// Bytes borrows a scratch []byte of length n (contents undefined).
func (a *Arena) Bytes(n int) []byte {
	if a == nil {
		return make([]byte, n)
	}
	s, _ := borrow(a, &a.by, n, 1)
	return s
}

// PutBytes returns a slice borrowed with Bytes.
func (a *Arena) PutBytes(s []byte) {
	if a == nil {
		return
	}
	release(a, &a.by, s, 1)
}

// pooled sums the capacities of one free list in bytes.
func pooled[T any](list [][]T, elemSize int64) int64 {
	var b int64
	for _, s := range list {
		b += int64(cap(s)) * elemSize
	}
	return b
}

// Stats reports the arena's accounting: borrows served and the reuse/miss
// split, plus the byte-level view (allocated over the arena's lifetime,
// currently borrowed, idle in the pools). A nil arena reports zeros.
func (a *Arena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return ArenaStats{
		Borrows:        a.gets,
		Reused:         a.hits,
		Misses:         a.grews,
		AllocatedBytes: a.allocBytes,
		LiveBytes:      a.liveBytes,
		PooledBytes: pooled(a.i32, 4) + pooled(a.i64, 8) + pooled(a.u32, 4) +
			pooled(a.f64, 8) + pooled(a.bl, 1) + pooled(a.by, 1),
	}
}
