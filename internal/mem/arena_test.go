package mem

import (
	"sync"
	"testing"
)

func TestArenaReuse(t *testing.T) {
	a := NewArena()
	s1 := a.Int32(100)
	if len(s1) != 100 {
		t.Fatalf("len = %d, want 100", len(s1))
	}
	a.PutInt32(s1)
	s2 := a.Int32(50)
	if cap(s2) < 100 {
		t.Fatalf("expected the returned buffer to be reused, got cap %d", cap(s2))
	}
	st := a.Stats()
	if st.Borrows != 2 || st.Reused != 1 || st.Misses != 1 {
		t.Fatalf("stats = (%d, %d, %d), want (2, 1, 1)", st.Borrows, st.Reused, st.Misses)
	}
}

func TestArenaStatsBytes(t *testing.T) {
	a := NewArena()
	s := a.Int32(100) // 400 fresh bytes
	st := a.Stats()
	if st.AllocatedBytes != 400 || st.LiveBytes != 400 || st.PooledBytes != 0 {
		t.Fatalf("after borrow: %+v", st)
	}
	a.PutInt32(s)
	st = a.Stats()
	if st.AllocatedBytes != 400 || st.LiveBytes != 0 || st.PooledBytes != 400 {
		t.Fatalf("after return: %+v", st)
	}
	s2 := a.Int32(50) // reuse: live counts the full backing capacity
	st = a.Stats()
	if st.AllocatedBytes != 400 || st.LiveBytes != 400 || st.PooledBytes != 0 {
		t.Fatalf("after reuse: %+v", st)
	}
	a.PutInt32(s2)
	// Adopted slices (returned without a borrow) must not drive the live
	// gauge negative.
	a.PutInt64(make([]int64, 8))
	if st := a.Stats(); st.LiveBytes != 0 {
		t.Fatalf("live bytes = %d after adoption, want 0", st.LiveBytes)
	}
}

func TestArenaBestFit(t *testing.T) {
	a := NewArena()
	small := a.Int64(10)
	big := a.Int64(1000)
	a.PutInt64(small)
	a.PutInt64(big)
	got := a.Int64(5)
	if cap(got) >= 1000 {
		t.Fatal("best fit should prefer the small buffer for a small request")
	}
}

func TestArenaBoolZeroed(t *testing.T) {
	a := NewArena()
	b := a.Bool(16)
	for i := range b {
		b[i] = true
	}
	a.PutBool(b)
	b2 := a.Bool(16)
	for i, v := range b2 {
		if v {
			t.Fatalf("Bool returned dirty cell at %d", i)
		}
	}
}

func TestArenaNilSafe(t *testing.T) {
	var a *Arena
	if len(a.Int32(7)) != 7 || len(a.Float64(3)) != 3 || len(a.Bool(2)) != 2 ||
		len(a.Int64(1)) != 1 || len(a.Uint32(4)) != 4 || len(a.Bytes(5)) != 5 {
		t.Fatal("nil arena must fall back to make")
	}
	a.PutInt32(nil) // must not panic
	if st := a.Stats(); st != (ArenaStats{}) {
		t.Fatal("nil arena stats must be zero")
	}
}

func TestArenaConcurrent(t *testing.T) {
	a := NewArena()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := a.Int32(64 + i)
				s[0] = int32(i) // touch to catch aliasing between borrowers
				u := a.Uint32(32)
				u[0] = uint32(i)
				a.PutUint32(u)
				a.PutInt32(s)
			}
		}()
	}
	wg.Wait()
}

func TestArenaBounded(t *testing.T) {
	a := NewArena()
	// Returning more than maxFree slices must not grow the free list
	// without bound.
	for i := 0; i < 10*maxFree; i++ {
		a.PutInt32(make([]int32, 8))
	}
	if len(a.i32) > maxFree {
		t.Fatalf("free list grew to %d, cap is %d", len(a.i32), maxFree)
	}
}
