// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the partitioner.
//
// All randomized components of the partitioner (matching tie breaking, queue
// initialization order, initial-partitioning seeds, the coin flips of the
// distributed edge-coloring algorithm) draw from this package so that every
// experiment is exactly reproducible from a single seed. The generator is an
// xoshiro256**-style generator seeded through splitmix64, which also gives us
// cheap, well-distributed stream splitting: each simulated processing element
// (PE) derives its own independent stream from the master seed.
package rng

import "math/bits"

// RNG is a deterministic random number generator. The zero value is not
// usable; construct one with New.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances x and returns a well-mixed 64-bit value. It is the
// recommended seeding procedure for xoshiro-family generators.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	return r
}

// Split derives an independent generator for stream id. Two generators
// obtained from the same parent with different ids produce statistically
// independent sequences; the derivation is deterministic.
func (r *RNG) Split(id uint64) *RNG {
	x := r.Uint64() ^ (id+1)*0x9e3779b97f4a7c15
	return New(splitmix64(&x))
}

// NewStream returns a generator for PE pe derived from a master seed without
// mutating any existing generator.
func NewStream(seed, pe uint64) *RNG {
	x := seed ^ (pe+1)*0xd1342543de82ef95
	return New(splitmix64(&x))
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
//
//kappa:invariant a non-positive bound is a kernel bug, not an input error
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	v := r.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Int31n is like Intn but returns an int32, for use with CSR node ids.
func (r *RNG) Int31n(n int32) int32 {
	return int32(r.Intn(int(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip. The distributed edge-coloring algorithm uses
// this as its active/passive coin.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a random permutation of [0, n) as a fresh slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a random permutation of [0, len(p)), drawing exactly
// the same values from r as Perm(len(p)) — the allocation-free variant used
// by the refinement scratch workspaces.
//
//kappa:hotpath
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
}

// Perm32 returns a random permutation of [0, n) as int32 values.
func (r *RNG) Perm32(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes p in place (Fisher–Yates).
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
