package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	s1 := NewStream(7, 0)
	s2 := NewStream(7, 1)
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("streams for distinct PEs coincide")
	}
	// Same (seed, pe) must reproduce.
	a, b := NewStream(9, 3), NewStream(9, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("NewStream is not deterministic")
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(5).Split(2)
	b := New(5).Split(2)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(123)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates too far from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(4)
	heads := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool() {
			heads++
		}
	}
	if heads < trials*45/100 || heads > trials*55/100 {
		t.Fatalf("coin is unfair: %d/%d heads", heads, trials)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) produced invalid permutation %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPerm32IsPermutation(t *testing.T) {
	r := New(8)
	p := r.Perm32(64)
	seen := make([]bool, 64)
	for _, v := range p {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("Perm32 produced invalid permutation")
		}
		seen[v] = true
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(3)
	p := []int{5, 6, 7, 8, 9}
	r.Shuffle(p)
	sum := 0
	for _, v := range p {
		sum += v
	}
	if sum != 35 {
		t.Fatalf("Shuffle changed contents: %v", p)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
