package svc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
)

// eventLogCap bounds the events retained per job. The log is a ring: when a
// run emits more than this, the oldest events are dropped and a reconnecting
// client resumes from the oldest retained one — live progress, not an
// archival trace (the run report is the archive).
const eventLogCap = 1024

// Event is one entry of a job's progress stream: a monotonically increasing
// sequence number (the SSE id, so Last-Event-ID resumes exactly), an event
// type, and a rendered JSON payload.
type Event struct {
	Seq  int64
	Type string
	Data []byte
}

// eventLog is a per-job bounded, seq-numbered broadcast log. Appends come
// from the job's lifecycle transitions and — during the run — from the
// pipeline's observer goroutine; readers are the SSE handlers, each polling
// since(after) and parking on the returned wake channel.
type eventLog struct {
	mu     sync.Mutex
	events []Event // ring contents in order; events[0].Seq is the oldest retained
	next   int64   // seq the next append gets
	closed bool
	wake   chan struct{} // closed and replaced on every append/close (broadcast)
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

// append adds one typed event and wakes every parked reader.
func (l *eventLog) append(typ string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		// Payloads are our own structs; a marshal failure is a programming
		// error, but a progress stream must never take the job down with it.
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.events = append(l.events, Event{Seq: l.next, Type: typ, Data: data})
	l.next++
	if len(l.events) > eventLogCap {
		l.events = l.events[len(l.events)-eventLogCap:]
	}
	wake := l.wake
	l.wake = make(chan struct{})
	l.mu.Unlock()
	close(wake)
}

// close seals the log — the job is terminal, no further events — and wakes
// readers so they can drain and hang up.
func (l *eventLog) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	wake := l.wake
	l.mu.Unlock()
	close(wake)
}

// since returns the retained events with Seq > after, a channel that is
// closed on the next append, and whether the log is sealed. An after below
// the retention window resumes from the oldest retained event.
func (l *eventLog) since(after int64) ([]Event, <-chan struct{}, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	evs := l.events
	// Binary search is overkill for a 1024-cap ring scanned from a cursor
	// that usually sits at the tail.
	i := 0
	for i < len(evs) && evs[i].Seq <= after {
		i++
	}
	out := make([]Event, len(evs)-i)
	copy(out, evs[i:])
	return out, l.wake, l.closed
}

// The SSE payload types mirror the core trace events field-for-field, plus
// the lifecycle transitions; durations render as seconds like the report.

type stateEvent struct {
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
}

type levelEvent struct {
	Level       int     `json:"level"`
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	Seconds     float64 `json:"seconds"`
	MatchSec    float64 `json:"match_seconds"`
	ContractSec float64 `json:"contract_seconds"`
}

type initEvent struct {
	Cut     int64   `json:"cut"`
	Seconds float64 `json:"seconds"`
}

type refineEvent struct {
	Level     int   `json:"level"`
	Iteration int   `json:"iteration"`
	Gain      int64 `json:"gain"`
}

type phaseEvent struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
}

// trace translates one pipeline trace event into its stream rendering. It
// runs on the pipeline's critical path (via core.WithObserver), so it only
// marshals and appends — readers are woken, never waited for.
func (l *eventLog) trace(ev core.TraceEvent) {
	switch e := ev.(type) {
	case core.LevelEvent:
		l.append("level", levelEvent{
			Level: e.Level, Nodes: e.Nodes, Edges: e.Edges,
			Seconds: e.Time.Seconds(), MatchSec: e.Match.Seconds(), ContractSec: e.Contract.Seconds(),
		})
	case core.InitEvent:
		l.append("init", initEvent{Cut: e.Cut, Seconds: e.Time.Seconds()})
	case core.RefineEvent:
		l.append("refine", refineEvent{Level: e.Level, Iteration: e.Iteration, Gain: e.Gain})
	case core.PhaseEvent:
		l.append("phase", phaseEvent{Phase: e.Phase.String(), Seconds: e.Time.Seconds()})
	default:
		// Future trace kinds still reach the stream, via their log rendering.
		l.append("trace", struct {
			Text string `json:"text"`
		}{Text: ev.String()})
	}
}

// state records a lifecycle transition on the stream.
func (l *eventLog) state(st State, errMsg string) {
	l.append("state", stateEvent{State: st, Error: errMsg})
}

// sseKeepalive is how often an idle stream sends a comment line so
// intermediaries do not reap the connection while a job sits queued.
const sseKeepalive = 15 * time.Second

// handleEvents is GET /api/v1/jobs/{id}/events: the job's progress as a
// Server-Sent Events stream. Every event carries its sequence number as the
// SSE id, so a client reconnecting with Last-Event-ID (or ?after=N) replays
// exactly the events it missed — within the log's retention window — and
// the stream ends when the job reaches a terminal state.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: "response writer does not support streaming"})
		return
	}

	after := int64(-1)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			after = n
		}
	}
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad after cursor: " + err.Error()})
			return
		}
		after = n
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // SSE through buffering proxies
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for {
		evs, wake, closed := j.events.since(after)
		for _, ev := range evs {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.Data)
			after = ev.Seq
		}
		if len(evs) > 0 {
			fl.Flush()
		}
		if closed {
			// Terminal state reached and fully replayed: end the stream so
			// clients (and tests) observe EOF rather than idling forever.
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		}
	}
}
