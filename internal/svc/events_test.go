package svc

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parseSSE decodes a Server-Sent Events body into its events.
func parseSSE(t *testing.T, body string) []Event {
	t.Helper()
	var out []Event
	var cur Event
	var hasData bool
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if hasData {
				out = append(out, cur)
			}
			cur, hasData = Event{}, false
		case strings.HasPrefix(line, ":"):
			// comment (keepalive)
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseInt(line[4:], 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			cur.Seq = n
		case strings.HasPrefix(line, "event: "):
			cur.Type = line[7:]
		case strings.HasPrefix(line, "data: "):
			cur.Data = []byte(line[6:])
			hasData = true
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return out
}

// stateOf decodes a state event's payload.
func stateOf(t *testing.T, ev Event) stateEvent {
	t.Helper()
	if ev.Type != "state" {
		t.Fatalf("event %d is %q, want state", ev.Seq, ev.Type)
	}
	var st stateEvent
	if err := json.Unmarshal(ev.Data, &st); err != nil {
		t.Fatalf("bad state payload %s: %v", ev.Data, err)
	}
	return st
}

// TestEventStreamReplaysRun submits a real job, lets it finish, and replays
// its whole event stream: the lifecycle states must bracket the run's typed
// trace events, sequence numbers must be dense from zero, and the stream
// must terminate (the handler returns) because the job is terminal.
func TestEventStreamReplaysRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline run")
	}
	s, h := newTestServer(t, Options{Concurrency: 1, Queue: 2})
	rr := submitJob(t, h, `{"gen":"grid:12x12","k":3,"seed":9}`)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rr.Code, rr.Body.String())
	}
	st := decodeStatus(t, rr)
	if st.Events == "" {
		t.Fatal("status names no events URL")
	}
	if got := waitTerminal(t, s, st.ID); got.State != StateDone {
		t.Fatalf("job: %s (%s)", got.State, got.Error)
	}

	stream := httptest.NewRecorder()
	h.ServeHTTP(stream, httptest.NewRequest("GET", st.Events, nil))
	if ct := stream.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	evs := parseSSE(t, stream.Body.String())
	if len(evs) < 4 {
		t.Fatalf("only %d events: %+v", len(evs), evs)
	}
	for i, ev := range evs {
		if ev.Seq != int64(i) {
			t.Fatalf("event %d has seq %d, want dense from 0", i, ev.Seq)
		}
	}
	if st := stateOf(t, evs[0]); st.State != StateQueued {
		t.Fatalf("first event state %q, want queued", st.State)
	}
	if st := stateOf(t, evs[len(evs)-1]); st.State != StateDone {
		t.Fatalf("last event state %q, want done", st.State)
	}
	kinds := map[string]int{}
	for _, ev := range evs {
		kinds[ev.Type]++
	}
	for _, want := range []string{"level", "init", "refine", "phase"} {
		if kinds[want] == 0 {
			t.Errorf("stream has no %q trace events (saw %v)", want, kinds)
		}
	}
	var ph phaseEvent
	if err := json.Unmarshal(evs[len(evs)-2].Data, &ph); err != nil || ph.Phase != "total" {
		t.Errorf("second-to-last event should be the total phase, got %s %s", evs[len(evs)-2].Type, evs[len(evs)-2].Data)
	}
}

// TestEventStreamResumesFromLastEventID pins the reconnect contract: a
// client presenting Last-Event-ID must get exactly the events after it.
func TestEventStreamResumesFromLastEventID(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline run")
	}
	s, h := newTestServer(t, Options{Concurrency: 1, Queue: 2})
	rr := submitJob(t, h, `{"gen":"grid:8x8","k":2,"seed":3}`)
	st := decodeStatus(t, rr)
	waitTerminal(t, s, st.ID)

	full := httptest.NewRecorder()
	h.ServeHTTP(full, httptest.NewRequest("GET", st.Events, nil))
	all := parseSSE(t, full.Body.String())
	if len(all) < 3 {
		t.Fatalf("only %d events", len(all))
	}
	cursor := all[len(all)-3].Seq

	req := httptest.NewRequest("GET", st.Events, nil)
	req.Header.Set("Last-Event-ID", strconv.FormatInt(cursor, 10))
	resumed := httptest.NewRecorder()
	h.ServeHTTP(resumed, req)
	tail := parseSSE(t, resumed.Body.String())
	if len(tail) != 2 {
		t.Fatalf("resume after %d replayed %d events, want 2", cursor, len(tail))
	}
	if tail[0].Seq != cursor+1 || tail[1].Seq != all[len(all)-1].Seq {
		t.Fatalf("resume replayed seqs %d,%d; want %d,%d", tail[0].Seq, tail[1].Seq, cursor+1, all[len(all)-1].Seq)
	}
}

// TestEventStreamLive connects while the job is still running (parked in the
// blockingRun stub) over a real HTTP server: the queued and running states
// must arrive before the job finishes, and releasing the job must push the
// terminal state and end the stream.
func TestEventStreamLive(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s, h := newTestServer(t, Options{
		Concurrency: 1, Queue: 2,
		run: blockingRun(started, release),
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	rr := submitJob(t, h, tinySpec)
	st := decodeStatus(t, rr)
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+st.Events, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read the live prefix: queued then running, pushed before release.
	br := bufio.NewReader(resp.Body)
	readEvent := func() (typ, data string) {
		t.Helper()
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("stream ended early: %v", err)
			}
			line = strings.TrimRight(line, "\n")
			if strings.HasPrefix(line, "event: ") {
				typ = line[7:]
			}
			if strings.HasPrefix(line, "data: ") {
				data = line[6:]
			}
			if line == "" && data != "" {
				return typ, data
			}
		}
	}
	if typ, data := readEvent(); typ != "state" || !strings.Contains(data, "queued") {
		t.Fatalf("first live event %s %s", typ, data)
	}
	if typ, data := readEvent(); typ != "state" || !strings.Contains(data, "running") {
		t.Fatalf("second live event %s %s", typ, data)
	}

	close(release)
	if typ, data := readEvent(); typ != "state" || !strings.Contains(data, "done") {
		t.Fatalf("terminal live event %s %s", typ, data)
	}
	// Terminal state seals the log; the server must now end the stream.
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("stream still open after terminal state (err %v)", err)
	}
	waitTerminal(t, s, st.ID)
}
