package svc

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/mem"
	"repro/internal/obs"
)

// TestJobMatchesDirectRunByteForByte pins the service's core contract: a job
// submitted over the API produces a partition and a ZeroTimes run report
// byte-identical to the same configuration run directly through core.Run —
// the bytes a `kappa -gen rgg:8 -k 4 -seed 7 -workers 2 -coarsen distributed
// -out/-report` invocation writes. Two identical jobs are submitted so the
// second one runs on a worker arena already warm from the first: the pooled
// arena must be invisible in the report (the arena section is a per-job
// delta).
func TestJobMatchesDirectRunByteForByte(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline run")
	}

	// The reference bytes, computed the way the CLI does.
	g, err := gen.FromSpec("rgg:8")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.NewConfig(core.Fast, 4)
	cfg.Seed = 7
	cfg.Workers = 2
	cfg.Coarsen = core.CoarsenDistributed
	stats := dist.NewTransportStats(cfg.NumPEs())
	reporter := obs.NewReportObserver(g, cfg)
	arena := mem.NewArena()
	res, err := core.Run(context.Background(), g, cfg,
		core.WithArena(arena), core.WithTransportStats(stats), core.WithObserver(reporter))
	if err != nil {
		t.Fatal(err)
	}
	wantPartition := renderPartition(res.Blocks)
	rep := reporter.Finish(res, stats, arena)
	rep.ZeroTimes()
	wantReport, err := renderReport(rep)
	if err != nil {
		t.Fatal(err)
	}

	s, h := newTestServer(t, Options{Concurrency: 1, Queue: 2})
	spec := `{"gen":"rgg:8","k":4,"seed":7,"workers":2,"coarsen":"distributed"}`
	for round := 1; round <= 2; round++ {
		rr := submitJob(t, h, spec)
		if rr.Code != http.StatusAccepted {
			t.Fatalf("round %d submit: %d %s", round, rr.Code, rr.Body.String())
		}
		st := waitTerminal(t, s, decodeStatus(t, rr).ID)
		if st.State != StateDone {
			t.Fatalf("round %d: %s (%s)", round, st.State, st.Error)
		}
		if st.Cut != res.Cut {
			t.Fatalf("round %d: cut %d, direct run %d", round, st.Cut, res.Cut)
		}

		got := httptest.NewRecorder()
		h.ServeHTTP(got, httptest.NewRequest("GET", st.Partition, nil))
		if !bytes.Equal(got.Body.Bytes(), wantPartition) {
			t.Fatalf("round %d: API partition differs from direct run (%d vs %d bytes)",
				round, got.Body.Len(), len(wantPartition))
		}

		repGot := httptest.NewRecorder()
		h.ServeHTTP(repGot, httptest.NewRequest("GET", st.Report+"?zero=1", nil))
		if !bytes.Equal(repGot.Body.Bytes(), wantReport) {
			t.Fatalf("round %d: API zero-report differs from direct run:\n--- api ---\n%s\n--- direct ---\n%s",
				round, repGot.Body.Bytes(), wantReport)
		}
	}
}

// TestConcurrentJobsDeterministic runs the same job on several workers at
// once: concurrency must not leak into any job's partition bytes.
func TestConcurrentJobsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline runs")
	}
	s, h := newTestServer(t, Options{Concurrency: 4, Queue: 8})
	const jobs = 6
	ids := make([]string, jobs)
	for i := range ids {
		rr := submitJob(t, h, `{"gen":"grid:12x12","k":3,"seed":9}`)
		if rr.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, rr.Code, rr.Body.String())
		}
		ids[i] = decodeStatus(t, rr).ID
	}
	var want []byte
	for i, id := range ids {
		st := waitTerminal(t, s, id)
		if st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
		got := httptest.NewRecorder()
		h.ServeHTTP(got, httptest.NewRequest("GET", fmt.Sprintf("/api/v1/jobs/%s/result", id), nil))
		if i == 0 {
			want = append([]byte(nil), got.Body.Bytes()...)
			continue
		}
		if !bytes.Equal(got.Body.Bytes(), want) {
			t.Fatalf("job %s partition differs from job %s at the same seed", id, ids[0])
		}
	}
}
