package svc

import (
	"bytes"
	"strconv"

	"repro/internal/obs"
)

// renderPartition encodes blocks in the CLI's -out format: one block id per
// line. Keeping the encodings identical is a tested invariant — a job's
// result body must byte-match the file a one-shot `kappa` run writes for the
// same input and seed.
func renderPartition(blocks []int32) []byte {
	var buf bytes.Buffer
	buf.Grow(2 * len(blocks))
	var scratch [12]byte
	for _, b := range blocks {
		buf.Write(strconv.AppendInt(scratch[:0], int64(b), 10))
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// renderReport serializes a run report exactly as the CLI's -report flag
// does (Report.WriteTo: indented JSON plus a trailing newline).
func renderReport(rep *obs.Report) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := rep.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
