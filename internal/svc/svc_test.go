package svc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// blockingRun returns a run stub that parks every job until release is
// closed (or its context ends), reporting each start on started. It stands
// in for the pipeline so queue, deadline, and drain semantics can be tested
// deterministically.
func blockingRun(started chan<- struct{}, release <-chan struct{}) runFunc {
	return func(ctx context.Context, g *graph.Graph, cfg core.Config, opts ...core.Option) (core.Result, error) {
		if started != nil {
			started <- struct{}{}
		}
		select {
		case <-release:
			return core.Result{Blocks: make([]int32, g.NumNodes()), Balance: 1}, nil
		case <-ctx.Done():
			return core.Result{}, ctx.Err()
		}
	}
}

// newTestServer builds a Server with the given seams and registers cleanup.
func newTestServer(t *testing.T, opts Options) (*Server, http.Handler) {
	t.Helper()
	s := New(opts)
	t.Cleanup(s.Close)
	return s, s.Handler()
}

// submitJob posts a spec and returns the response.
func submitJob(t *testing.T, h http.Handler, spec string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/api/v1/jobs", strings.NewReader(spec))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// decodeStatus unmarshals a Status response body.
func decodeStatus(t *testing.T, rr *httptest.ResponseRecorder) Status {
	t.Helper()
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad status body %q: %v", rr.Body.String(), err)
	}
	return st
}

// waitTerminal blocks until the job settles and returns its status.
func waitTerminal(t *testing.T, s *Server, id string) Status {
	t.Helper()
	j, ok := s.job(id)
	if !ok {
		t.Fatalf("no job %q", id)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not settle", id)
	}
	return j.Status()
}

const tinySpec = `{"gen":"grid:4x4","k":2}`

func TestQueueFullBackpressure(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s, h := newTestServer(t, Options{
		Concurrency: 1, Queue: 1, RetryAfter: 7 * time.Second,
		run: blockingRun(started, release),
	})

	// First job occupies the single slot, second fills the single queue
	// place, third must bounce with 429 and the configured Retry-After.
	rr1 := submitJob(t, h, tinySpec)
	if rr1.Code != http.StatusAccepted {
		t.Fatalf("submit 1: %d %s", rr1.Code, rr1.Body.String())
	}
	<-started // job 1 is in the slot, not the queue
	rr2 := submitJob(t, h, tinySpec)
	if rr2.Code != http.StatusAccepted {
		t.Fatalf("submit 2: %d %s", rr2.Code, rr2.Body.String())
	}
	rr3 := submitJob(t, h, tinySpec)
	if rr3.Code != http.StatusTooManyRequests {
		t.Fatalf("submit 3: %d, want 429 (body %s)", rr3.Code, rr3.Body.String())
	}
	if got := rr3.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want \"7\"", got)
	}
	if got := s.metrics.rejected.With("queue_full").Value(); got != 1 {
		t.Fatalf("kappa_jobs_rejected_total{queue_full} = %v, want 1", got)
	}

	// The rejection created no job: the admitted ones proceed untouched.
	close(release)
	for _, id := range []string{decodeStatus(t, rr1).ID, decodeStatus(t, rr2).ID} {
		if st := waitTerminal(t, s, id); st.State != StateDone {
			t.Fatalf("job %s: %s (%s), want done", id, st.State, st.Error)
		}
	}
	if got := s.metrics.done.Value(); got != 2 {
		t.Fatalf("kappa_jobs_done_total = %v, want 2", got)
	}
}

func TestDeadlineExpiryFailsJob(t *testing.T) {
	s, h := newTestServer(t, Options{
		Concurrency: 1, Queue: 1,
		run: blockingRun(nil, nil), // parks until the deadline fires
	})
	rr := submitJob(t, h, `{"gen":"grid:4x4","k":2,"timeout":"30ms"}`)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rr.Code, rr.Body.String())
	}
	st := waitTerminal(t, s, decodeStatus(t, rr).ID)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed (deadline expiry is not a client cancel)", st.State)
	}
	if !strings.Contains(st.Error, context.DeadlineExceeded.Error()) {
		t.Fatalf("error %q does not mention the deadline", st.Error)
	}
	if got := s.metrics.failed.Value(); got != 1 {
		t.Fatalf("kappa_jobs_failed_total = %v, want 1", got)
	}
}

func TestServerDefaultTimeoutApplies(t *testing.T) {
	s, h := newTestServer(t, Options{
		Concurrency: 1, Queue: 1, DefaultTimeout: 30 * time.Millisecond,
		run: blockingRun(nil, nil),
	})
	rr := submitJob(t, h, tinySpec) // no timeout in the spec
	st := waitTerminal(t, s, decodeStatus(t, rr).ID)
	if st.State != StateFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("state = %s (%s), want deadline failure from server default", st.State, st.Error)
	}
}

func TestMaxTimeoutClampsRequest(t *testing.T) {
	s, h := newTestServer(t, Options{
		Concurrency: 1, Queue: 1, MaxTimeout: 30 * time.Millisecond,
		run: blockingRun(nil, nil),
	})
	// The client asks for an hour; the server cap must win.
	rr := submitJob(t, h, `{"gen":"grid:4x4","k":2,"timeout":"1h"}`)
	st := waitTerminal(t, s, decodeStatus(t, rr).ID)
	if st.State != StateFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("state = %s (%s), want deadline failure from clamped timeout", st.State, st.Error)
	}
}

func TestClientCancelRunningJob(t *testing.T) {
	started := make(chan struct{}, 1)
	s, h := newTestServer(t, Options{
		Concurrency: 1, Queue: 1,
		run: blockingRun(started, nil),
	})
	rr := submitJob(t, h, tinySpec)
	id := decodeStatus(t, rr).ID
	<-started

	req := httptest.NewRequest("DELETE", "/api/v1/jobs/"+id, nil)
	del := httptest.NewRecorder()
	h.ServeHTTP(del, req)
	if del.Code != http.StatusOK {
		t.Fatalf("cancel: %d %s", del.Code, del.Body.String())
	}
	st := waitTerminal(t, s, id)
	if st.State != StateCanceled {
		t.Fatalf("state = %s (%s), want canceled", st.State, st.Error)
	}
	if got := s.metrics.canceled.Value(); got != 1 {
		t.Fatalf("kappa_jobs_canceled_total = %v, want 1", got)
	}
}

func TestCancelQueuedJobSettlesImmediately(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s, h := newTestServer(t, Options{
		Concurrency: 1, Queue: 1,
		run: blockingRun(started, release),
	})
	submitJob(t, h, tinySpec)
	<-started
	rr2 := submitJob(t, h, tinySpec)
	id2 := decodeStatus(t, rr2).ID

	// Cancel the queued job: it must settle canceled now, not when a worker
	// eventually reaches it.
	req := httptest.NewRequest("DELETE", "/api/v1/jobs/"+id2, nil)
	h.ServeHTTP(httptest.NewRecorder(), req)
	st := waitTerminal(t, s, id2)
	if st.State != StateCanceled {
		t.Fatalf("queued cancel: state = %s, want canceled", st.State)
	}
	close(release) // job 1 finishes; the worker skips the canceled job 2
	// The queue frees as the worker sweeps past the canceled job; a
	// follow-up submission must then be admitted and run to completion.
	var follow *httptest.ResponseRecorder
	for deadline := time.Now().Add(30 * time.Second); ; {
		follow = submitJob(t, h, tinySpec)
		if follow.Code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follow-up submit never admitted: %d %s", follow.Code, follow.Body.String())
		}
		time.Sleep(time.Millisecond)
	}
	if st := waitTerminal(t, s, decodeStatus(t, follow).ID); st.State != StateDone {
		t.Fatalf("follow-up job: %s (%s), want done — worker slot must survive", st.State, st.Error)
	}
}

func TestPanicIsolation(t *testing.T) {
	s, h := newTestServer(t, Options{
		Concurrency: 1, Queue: 2,
		run: func(ctx context.Context, g *graph.Graph, cfg core.Config, opts ...core.Option) (core.Result, error) {
			if cfg.Seed == 666 {
				panic("kernel exploded")
			}
			return core.Result{Blocks: make([]int32, g.NumNodes()), Balance: 1}, nil
		},
	})
	bad := submitJob(t, h, `{"gen":"grid:4x4","k":2,"seed":666}`)
	good := submitJob(t, h, tinySpec)

	st := waitTerminal(t, s, decodeStatus(t, bad).ID)
	if st.State != StateFailed || !strings.Contains(st.Error, "kernel exploded") {
		t.Fatalf("panicked job: %s (%q), want failed with panic value", st.State, st.Error)
	}
	// The same worker goroutine must go on to run the next job.
	if st := waitTerminal(t, s, decodeStatus(t, good).ID); st.State != StateDone {
		t.Fatalf("job after panic: %s (%s), want done", st.State, st.Error)
	}
	if got := s.metrics.panics.Value(); got != 1 {
		t.Fatalf("kappa_jobs_panics_total = %v, want 1", got)
	}
}

func TestGracefulDrain(t *testing.T) {
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	s, h := newTestServer(t, Options{
		Concurrency: 1, Queue: 2,
		run: blockingRun(started, release),
	})
	running := submitJob(t, h, tinySpec)
	<-started
	queued := submitJob(t, h, tinySpec)

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// Draining: readiness flips to 503 and new submissions are refused with
	// Retry-After, but the admitted jobs are still being worked.
	ready := httptest.NewRecorder()
	h.ServeHTTP(ready, httptest.NewRequest("GET", "/readyz", nil))
	if ready.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", ready.Code)
	}
	rej := submitJob(t, h, tinySpec)
	if rej.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", rej.Code)
	}
	if rej.Header().Get("Retry-After") == "" {
		t.Fatal("drain rejection carries no Retry-After")
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with jobs in flight", err)
	default:
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Both the running and the queued job finished — drain waits for the
	// whole admitted backlog, not just the running set.
	for _, rr := range []*httptest.ResponseRecorder{running, queued} {
		if st := waitTerminal(t, s, decodeStatus(t, rr).ID); st.State != StateDone {
			t.Fatalf("job %s after drain: %s (%s), want done", st.ID, st.State, st.Error)
		}
	}
	// Liveness stays green the whole time: a draining server is still alive.
	health := httptest.NewRecorder()
	h.ServeHTTP(health, httptest.NewRequest("GET", "/healthz", nil))
	if health.Code != http.StatusOK {
		t.Fatalf("healthz after drain: %d", health.Code)
	}
}

func TestDrainGraceExpiryCancelsInFlight(t *testing.T) {
	started := make(chan struct{}, 1)
	s, h := newTestServer(t, Options{
		Concurrency: 1, Queue: 1,
		run: blockingRun(started, nil), // never releases: only ctx frees it
	})
	rr := submitJob(t, h, tinySpec)
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
	// The expired grace deadline-canceled the job; it settled (failed, not
	// canceled: the client never asked) rather than leaking.
	st := waitTerminal(t, s, decodeStatus(t, rr).ID)
	if st.State != StateFailed {
		t.Fatalf("job after hard drain: %s (%s), want failed", st.State, st.Error)
	}
}

func TestSubmitValidation(t *testing.T) {
	s, h := newTestServer(t, Options{
		Concurrency: 1, Queue: 1, MaxBody: 256,
		run: blockingRun(nil, make(chan struct{})),
	})
	cases := []struct {
		name, body string
		code       int
	}{
		{"malformed json", `{"gen":`, http.StatusBadRequest},
		{"unknown field", `{"gen":"grid:4x4","k":2,"bogus":1}`, http.StatusBadRequest},
		{"no graph source", `{"k":2}`, http.StatusBadRequest},
		{"two graph sources", `{"gen":"grid:4x4","graph":"2 1\n2\n1\n","k":2}`, http.StatusBadRequest},
		{"hostile gen spec", `{"gen":"rgg:-1","k":2}`, http.StatusBadRequest},
		{"bad k", `{"gen":"grid:4x4","k":0}`, http.StatusBadRequest},
		{"bad preset", `{"gen":"grid:4x4","k":2,"preset":"turbo"}`, http.StatusBadRequest},
		{"bad timeout", `{"gen":"grid:4x4","k":2,"timeout":"yes"}`, http.StatusBadRequest},
		{"body too large", `{"gen":"grid:4x4","k":2,"graph":"` + strings.Repeat("x", 512) + `"}`, http.StatusRequestEntityTooLarge},
		{"path escape", `{"graph_file":"../../etc/passwd","k":2}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if rr := submitJob(t, h, tc.body); rr.Code != tc.code {
			t.Errorf("%s: %d, want %d (body %s)", tc.name, rr.Code, tc.code, rr.Body.String())
		}
	}
	// Rejections created no jobs.
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d jobs exist after pure rejections", n)
	}
	if got := s.metrics.rejected.With("invalid").Value(); got != float64(len(cases)) {
		t.Fatalf("kappa_jobs_rejected_total{invalid} = %v, want %d", got, len(cases))
	}
}

func TestGraphDirConfinement(t *testing.T) {
	dir := t.TempDir()
	if err := writeFileHelper(dir+"/mesh.graph", "3 2\n2\n1 3\n2\n"); err != nil {
		t.Fatal(err)
	}
	s, h := newTestServer(t, Options{
		Concurrency: 1, Queue: 1, GraphDir: dir,
		run: blockingRun(nil, closedChan()),
	})
	rr := submitJob(t, h, `{"graph_file":"mesh.graph","k":2}`)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("in-dir file: %d %s", rr.Code, rr.Body.String())
	}
	if st := waitTerminal(t, s, decodeStatus(t, rr).ID); st.Nodes != 3 {
		t.Fatalf("loaded graph has %d nodes, want 3", st.Nodes)
	}
	for _, path := range []string{"../mesh.graph", "/etc/passwd", "sub/../../mesh.graph"} {
		rr := submitJob(t, h, fmt.Sprintf(`{"graph_file":%q,"k":2}`, path))
		if rr.Code != http.StatusBadRequest {
			t.Errorf("escape %q: %d, want 400", path, rr.Code)
		}
	}
}

func TestStatusResultAndListEndpoints(t *testing.T) {
	s, h := newTestServer(t, Options{Concurrency: 1, Queue: 4}) // real pipeline
	ids := make([]string, 3)
	for i := range ids {
		rr := submitJob(t, h, fmt.Sprintf(`{"gen":"grid:6x6","k":2,"seed":%d}`, i))
		if rr.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, rr.Code, rr.Body.String())
		}
		st := decodeStatus(t, rr)
		ids[i] = st.ID
		if rr.Header().Get("Location") != "/api/v1/jobs/"+st.ID {
			t.Fatalf("Location = %q", rr.Header().Get("Location"))
		}
	}
	for _, id := range ids {
		if st := waitTerminal(t, s, id); st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
	}

	// Status carries the result figures and artifact links.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/api/v1/jobs/"+ids[0], nil))
	st := decodeStatus(t, rr)
	if st.State != StateDone || st.Partition == "" || st.Report == "" || st.Balance <= 0 {
		t.Fatalf("done status incomplete: %+v", st)
	}

	// The result is one block per node.
	res := httptest.NewRecorder()
	h.ServeHTTP(res, httptest.NewRequest("GET", st.Partition, nil))
	if res.Code != http.StatusOK {
		t.Fatalf("result: %d", res.Code)
	}
	if lines := strings.Count(res.Body.String(), "\n"); lines != 36 {
		t.Fatalf("partition has %d lines, want 36", lines)
	}

	// The report parses and carries the deterministic sections.
	rep := httptest.NewRecorder()
	h.ServeHTTP(rep, httptest.NewRequest("GET", st.Report+"?zero=1", nil))
	var doc map[string]any
	if err := json.Unmarshal(rep.Body.Bytes(), &doc); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	for _, key := range []string{"graph", "config", "result", "arena"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("report lacks %q section: %s", key, rep.Body.String())
		}
	}

	// The listing is ordered by job number.
	list := httptest.NewRecorder()
	h.ServeHTTP(list, httptest.NewRequest("GET", "/api/v1/jobs", nil))
	var body struct {
		Jobs []Status `json:"jobs"`
	}
	if err := json.Unmarshal(list.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Jobs) != 3 {
		t.Fatalf("list has %d jobs, want 3", len(body.Jobs))
	}
	for i, st := range body.Jobs {
		if st.ID != ids[i] {
			t.Fatalf("list order: job %d is %s, want %s", i, st.ID, ids[i])
		}
	}

	// Unknown ids 404; results of unfinished jobs 409 is covered elsewhere.
	nf := httptest.NewRecorder()
	h.ServeHTTP(nf, httptest.NewRequest("GET", "/api/v1/jobs/j999", nil))
	if nf.Code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", nf.Code)
	}
}

func TestResultBeforeDoneConflicts(t *testing.T) {
	started := make(chan struct{}, 1)
	_, h := newTestServer(t, Options{
		Concurrency: 1, Queue: 1,
		run: blockingRun(started, nil),
	})
	rr := submitJob(t, h, tinySpec)
	id := decodeStatus(t, rr).ID
	<-started
	for _, path := range []string{"/result", "/report"} {
		res := httptest.NewRecorder()
		h.ServeHTTP(res, httptest.NewRequest("GET", "/api/v1/jobs/"+id+path, nil))
		if res.Code != http.StatusConflict {
			t.Fatalf("GET %s on running job: %d, want 409", path, res.Code)
		}
	}
}

func TestRetentionEvictsOldestFinished(t *testing.T) {
	s, h := newTestServer(t, Options{
		Concurrency: 1, Queue: 8, Retain: 2,
		run: blockingRun(nil, closedChan()),
	})
	ids := make([]string, 4)
	for i := range ids {
		rr := submitJob(t, h, tinySpec)
		ids[i] = decodeStatus(t, rr).ID
		waitTerminal(t, s, ids[i])
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) != 2 {
		t.Fatalf("%d jobs retained, want 2", len(s.jobs))
	}
	for _, gone := range ids[:2] {
		if _, ok := s.jobs[gone]; ok {
			t.Fatalf("job %s still retained, want evicted", gone)
		}
	}
	for _, kept := range ids[2:] {
		if _, ok := s.jobs[kept]; !ok {
			t.Fatalf("job %s evicted, want retained", kept)
		}
	}
}

// closedChan returns an already-closed release channel: jobs complete
// immediately.
func closedChan() <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// writeFileHelper writes a small test fixture.
func writeFileHelper(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
