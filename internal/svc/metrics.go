package svc

import "repro/internal/obs"

// serviceMetrics is the kappa_jobs_* catalog: per-state counters (so the
// lifecycle of every admitted job is visible as queued → running →
// done/failed/canceled), rejection counters split by reason, live gauges
// for queue depth and running jobs, and latency histograms for queue wait
// and run duration. The catalog is registered once per Server; registries
// must not be shared between Servers (the queue-depth pull binding is
// one-shot).
type serviceMetrics struct {
	submitted *obs.Counter
	running   *obs.Gauge
	done      *obs.Counter
	failed    *obs.Counter
	canceled  *obs.Counter
	rejected  *obs.CounterVec
	panics    *obs.Counter
	queueWait *obs.Histogram
	runDur    *obs.Histogram
}

// newServiceMetrics registers the catalog on r; queueLen is pulled at every
// scrape for the live queue-depth gauge.
func newServiceMetrics(r *obs.Registry, queueLen func() float64) *serviceMetrics {
	m := &serviceMetrics{
		submitted: r.Counter("kappa_jobs_submitted_total",
			"Jobs admitted into the queue."),
		running: r.Gauge("kappa_jobs_running",
			"Jobs currently executing the pipeline."),
		done: r.Counter("kappa_jobs_done_total",
			"Jobs that finished successfully."),
		failed: r.Counter("kappa_jobs_failed_total",
			"Jobs that failed (pipeline error, deadline expiry, or panic)."),
		canceled: r.Counter("kappa_jobs_canceled_total",
			"Jobs canceled by the client before completion."),
		rejected: r.CounterVec("kappa_jobs_rejected_total",
			"Submissions refused at admission, by reason.", "reason"),
		panics: r.Counter("kappa_jobs_panics_total",
			"Jobs that panicked and were isolated by the job runner."),
		queueWait: r.Histogram("kappa_jobs_queue_wait_seconds",
			"Time admitted jobs spent waiting in the queue.", obs.TimeBuckets),
		runDur: r.Histogram("kappa_jobs_run_seconds",
			"Wall-clock of job execution (excludes queue wait).", obs.TimeBuckets),
	}
	r.GaugeVec("kappa_jobs_queued",
		"Jobs currently waiting in the queue.").Func(queueLen)
	// Pre-create the rejection children so the series exist (at zero) from
	// the first scrape.
	m.rejected.With("queue_full")
	m.rejected.With("draining")
	m.rejected.With("invalid")
	return m
}

// finished counts a job's terminal state.
func (m *serviceMetrics) finished(state State) {
	switch state {
	case StateDone:
		m.done.Inc()
	case StateCanceled:
		m.canceled.Inc()
	default:
		m.failed.Inc()
	}
}

// reject counts an admission refusal. Reasons: "queue_full" (429),
// "draining" (503), "invalid" (400/413).
func (m *serviceMetrics) reject(reason string) {
	m.rejected.With(reason).Inc()
}
