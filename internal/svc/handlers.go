package svc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/obs"
	"repro/internal/store"
)

// JobSpec is the submit-request body. Fields mirror the kappa CLI flags
// one-to-one so a job's result is byte-identical to the equivalent one-shot
// run: {"gen":"rgg:10","k":4,"seed":7} is `kappa -gen rgg:10 -k 4 -seed 7`.
// Exactly one graph source — gen, graph_file, or graph — must be set.
type JobSpec struct {
	// Gen is a synthetic-generator spec (rgg:S, grid:WxH, road:N, ...),
	// the CLI's -gen.
	Gen string `json:"gen,omitempty"`
	// GraphFile names a server-side graph file (METIS or binary, format
	// sniffed), the CLI's -in. When the server was started with a graph
	// directory, the path is resolved inside it and may not escape.
	GraphFile string `json:"graph_file,omitempty"`
	// Graph is an inline METIS-format graph, for clients that ship the
	// input in the request. Bounded by the server's max body size.
	Graph string `json:"graph,omitempty"`
	// ShardDir names a server-side shard store directory (kappa shard
	// output), the serve subcommand's -shards. The global graph is
	// memory-mapped from the store's CSR segment, and the manifest's shard
	// count and distribution strategy are adopted into the job's config —
	// a conflicting pes or dist is rejected at submit time. Confined to the
	// server's graph directory like graph_file.
	ShardDir string `json:"shard_dir,omitempty"`

	K       int     `json:"k"`
	Preset  string  `json:"preset,omitempty"`  // minimal | fast | strong; default fast
	Eps     float64 `json:"eps,omitempty"`     // default 0.03
	Seed    uint64  `json:"seed,omitempty"`    // default 0
	PEs     int     `json:"pes,omitempty"`     // default: k
	Dist    string  `json:"dist,omitempty"`    // auto | ranges | rcb | sfc
	Coarsen string  `json:"coarsen,omitempty"` // shared | distributed
	Workers int     `json:"workers,omitempty"` // default GOMAXPROCS

	// Timeout is the job's deadline as a Go duration string ("30s"); it
	// starts at admission, so queue time counts. Empty means the server
	// default; values above the server maximum are clamped to it.
	Timeout string `json:"timeout,omitempty"`
}

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API. The job endpoints live under
// /api/v1; /healthz and /readyz carry liveness and drain state; the
// observability surface (/metrics, /metrics.json, /debug/pprof/) is the
// shared obs handler over the server's registry, so the kappa_jobs_* series
// and the pipeline metrics scrape from one place.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	oh := obs.Handler(s.opts.Registry)
	mux.Handle("GET /metrics", oh)
	mux.Handle("GET /metrics.json", oh)
	mux.Handle("/debug/pprof/", oh)
	return mux
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleSubmit is admission: parse and validate the spec (400/413), resolve
// the graph, then ask the queue. A full queue is 429 with Retry-After; a
// draining server is 503 with Retry-After. Success is 202 with the job's
// initial status.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBody)
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.metrics.reject("invalid")
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job spec: " + err.Error()})
		return
	}
	g, cfg, timeout, err := s.buildJob(&spec)
	if err != nil {
		s.metrics.reject("invalid")
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	j, err := s.submit(g, cfg, timeout)
	switch {
	case errors.Is(err, ErrQueueFull):
		s.metrics.reject("queue_full")
		w.Header().Set("Retry-After", retryAfterSeconds(s.opts.RetryAfter))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		s.metrics.reject("draining")
		w.Header().Set("Retry-After", retryAfterSeconds(s.opts.RetryAfter))
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("Location", "/api/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.Status())
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// minimum 1 — zero tells clients to hammer).
func retryAfterSeconds(d time.Duration) string {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// buildJob turns a spec into the same graph and configuration the CLI would
// build from the equivalent flags — the construction paths must not drift,
// or the byte-identity contract between API jobs and one-shot runs breaks.
func (s *Server) buildJob(spec *JobSpec) (*graph.Graph, core.Config, time.Duration, error) {
	var zero core.Config
	g, man, err := s.resolveGraph(spec)
	if err != nil {
		return nil, zero, 0, err
	}
	variant, err := core.ParseVariant(spec.Preset)
	if err != nil {
		return nil, zero, 0, err
	}
	cfg := core.NewConfig(variant, spec.K)
	if spec.Eps != 0 {
		cfg.Eps = spec.Eps
	}
	cfg.Seed = spec.Seed
	cfg.PEs = spec.PEs
	cfg.Workers = spec.Workers
	strategy, err := dist.ParseStrategy(spec.Dist)
	if err != nil {
		return nil, zero, 0, err
	}
	cfg.Distribution = strategy
	mode, err := core.ParseCoarsenMode(spec.Coarsen)
	if err != nil {
		return nil, zero, 0, err
	}
	cfg.Coarsen = mode
	if man != nil {
		// A shard-store job adopts the manifest's shape, exactly like
		// `kappa serve -shards`: the store's shard count and extraction
		// strategy are facts of the input, not knobs of the request.
		if cfg.PEs != 0 && cfg.PEs != man.PEs {
			return nil, zero, 0, fmt.Errorf("pes %d, but shard store %q holds %d shards", cfg.PEs, spec.ShardDir, man.PEs)
		}
		cfg.PEs = man.PEs
		mstrat, err := dist.ParseStrategy(man.Strategy)
		if err != nil {
			return nil, zero, 0, err
		}
		if strategy != mstrat && strategy != dist.StrategyAuto {
			return nil, zero, 0, fmt.Errorf("dist %s, but shard store %q was extracted under %s", strategy, spec.ShardDir, mstrat)
		}
		cfg.Distribution = mstrat
	}
	if err := cfg.Validate(); err != nil {
		return nil, zero, 0, err
	}

	timeout := s.opts.DefaultTimeout
	if spec.Timeout != "" {
		d, err := time.ParseDuration(spec.Timeout)
		if err != nil {
			return nil, zero, 0, fmt.Errorf("bad timeout %q: %v", spec.Timeout, err)
		}
		if d < 0 {
			return nil, zero, 0, fmt.Errorf("timeout must be >= 0, got %v", d)
		}
		timeout = d
	}
	if s.opts.MaxTimeout > 0 && (timeout == 0 || timeout > s.opts.MaxTimeout) {
		timeout = s.opts.MaxTimeout
	}
	return g, cfg, timeout, nil
}

// resolveGraph loads the job's input from exactly one of the four sources.
// Shard-store jobs additionally return the store's manifest so buildJob can
// adopt its shape into the config.
func (s *Server) resolveGraph(spec *JobSpec) (*graph.Graph, *store.Manifest, error) {
	sources := 0
	for _, set := range []bool{spec.Gen != "", spec.GraphFile != "", spec.Graph != "", spec.ShardDir != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, nil, fmt.Errorf("job spec must name exactly one graph source (gen, graph_file, graph, or shard_dir), got %d", sources)
	}
	switch {
	case spec.Gen != "":
		g, err := gen.FromSpec(spec.Gen)
		return g, nil, err
	case spec.Graph != "":
		g, err := graphio.ReadMETIS(strings.NewReader(spec.Graph))
		if err != nil {
			return nil, nil, fmt.Errorf("inline graph: %w", err)
		}
		return g, nil, nil
	case spec.ShardDir != "":
		path, err := s.confine("shard_dir", spec.ShardDir)
		if err != nil {
			return nil, nil, err
		}
		st, err := store.Open(path)
		if err != nil {
			return nil, nil, fmt.Errorf("shard_dir: %v", err)
		}
		// The mapping stays open for the job's retained lifetime — Status
		// keeps reading node/edge counts through it — and is released by
		// MapGraph's GC backstop when the job is evicted from retention.
		mg, err := st.MapGraph()
		if err != nil {
			return nil, nil, fmt.Errorf("shard_dir: %v", err)
		}
		return mg.G, st.Manifest(), nil
	default:
		path, err := s.confine("graph_file", spec.GraphFile)
		if err != nil {
			return nil, nil, err
		}
		g, err := graphio.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("graph_file: %v", err)
		}
		return g, nil, nil
	}
}

// confine resolves a client-supplied path under the served graph directory:
// the path must be relative and stay inside it after cleaning. With no
// configured directory any server-readable path is allowed.
func (s *Server) confine(field, path string) (string, error) {
	dir := s.opts.GraphDir
	if dir == "" {
		return path, nil
	}
	if filepath.IsAbs(path) || !filepath.IsLocal(path) {
		return "", fmt.Errorf("%s %q escapes the served graph directory", field, path)
	}
	return filepath.Join(dir, path), nil
}

// handleList returns every retained job's status, ordered by job number so
// the listing is deterministic regardless of map iteration.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobNum(jobs[a].id) < jobNum(jobs[b].id) })
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []Status `json:"jobs"`
	}{Jobs: out})
}

// jobNum extracts the numeric part of a "jN" id; ids are server-generated so
// the parse cannot fail, but a zero fallback keeps the sort total anyway.
func jobNum(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "j"))
	return n
}

// handleStatus returns one job's status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleResult serves a done job's partition in the CLI -out format.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	arts := j.artifacts()
	if arts == nil {
		writeJSON(w, http.StatusConflict, errorBody{
			Error: fmt.Sprintf("job is %s, result exists only for done jobs", j.Status().State)})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(arts.partition)
}

// handleReport serves a done job's run report; ?zero=1 returns the
// ZeroTimes rendering, byte-comparable across runs of the same input.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	arts := j.artifacts()
	if arts == nil {
		writeJSON(w, http.StatusConflict, errorBody{
			Error: fmt.Sprintf("job is %s, report exists only for done jobs", j.Status().State)})
		return
	}
	body := arts.report
	if r.URL.Query().Get("zero") == "1" {
		body = arts.reportZero
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// handleCancel requests cancellation: a queued job settles canceled
// immediately, a running one unwinds through its context. The response is
// the job's status at request time; poll for the terminal state.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, j.Status())
}
