// Package svc is the serving layer of the partitioner: a long-running,
// hardened partitioner-as-a-service over repro's core.Run. It turns
// partitioning from a CLI invocation into a request — submit a job over
// HTTP/JSON, poll its status, fetch the partition and the structured run
// report — while carrying the failure budget of a production serving stack:
//
//   - Admission control. Jobs wait in a bounded queue; when it is full the
//     server answers 429 with a Retry-After hint instead of queueing
//     unboundedly. A configurable number of jobs (default GOMAXPROCS) run
//     concurrently, each drawing scratch from a per-slot mem.Arena that is
//     reused across jobs.
//   - Per-job deadlines and cancellation. Every job runs under a context
//     carrying its deadline (started at admission, so queue time counts) and
//     can be canceled by the client mid-run; the core pipeline's context
//     plumbing aborts between levels and refinement iterations.
//   - Panic isolation. The job runner installs a same-goroutine recover: a
//     panicking kernel fails that job (the panic value is surfaced in its
//     status) without taking down the server or its worker slot.
//   - Graceful drain. Drain stops admission (readiness flips to 503),
//     finishes the queued and running jobs, and — when the drain grace
//     expires — deadline-cancels whatever is still in flight. kappa api
//     triggers it from SIGTERM/SIGINT.
//
// Results are byte-identical to the kappa CLI at the same spec and seed: the
// partition text and the ZeroTimes run report of a job match the -out and
// -report artifacts of the equivalent one-shot invocation.
//
// The package is deliberately free of policy about transport hardening: the
// HTTP handler is mounted into an obs.NewServer (slowloris-hardened) by
// cmd/kappa's api subcommand.
package svc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/obs"
)

// runFunc is the pipeline entry point a Server drives; tests substitute a
// deterministic stand-in to exercise queueing, deadlines, and panic
// isolation without real partitioning work.
type runFunc func(ctx context.Context, g *graph.Graph, cfg core.Config, opts ...core.Option) (core.Result, error)

// Options configures a Server. The zero value is serviceable: GOMAXPROCS
// concurrent jobs, a 64-deep queue, no default deadline, a private metrics
// registry.
type Options struct {
	// Queue is the job queue depth — the admission-control bound. Jobs
	// beyond Concurrency running plus Queue waiting are rejected with 429.
	// 0 means 64.
	Queue int

	// Concurrency caps the jobs partitioning at once; 0 means GOMAXPROCS.
	// Each concurrency slot owns one mem.Arena reused across its jobs.
	Concurrency int

	// DefaultTimeout applies to jobs whose spec names no deadline; 0 means
	// no deadline.
	DefaultTimeout time.Duration

	// MaxTimeout caps the deadline a job may request (and clamps
	// DefaultTimeout); 0 means uncapped.
	MaxTimeout time.Duration

	// MaxBody bounds a submit request's body (admission control for inline
	// graphs); 0 means 64 MiB.
	MaxBody int64

	// GraphDir, when set, is the only directory job specs may load graph
	// files from (paths are resolved inside it; escapes are rejected).
	// Empty means any server-readable path is allowed.
	GraphDir string

	// RetryAfter is the hint sent with 429 rejections; 0 means 1s.
	RetryAfter time.Duration

	// Retain bounds the finished jobs kept for status/result polling;
	// older finished jobs are evicted first. 0 means 1024.
	Retain int

	// Registry receives the kappa_jobs_* service metrics and the per-run
	// pipeline metrics. Nil means a private registry (metrics still drive
	// admission bookkeeping, they are just not exported anywhere). A
	// registry must not be shared by two Servers.
	Registry *obs.Registry

	// run substitutes the pipeline entry point in tests; nil means core.Run.
	run runFunc
}

// withDefaults resolves every zero Option to its documented default.
func (o Options) withDefaults() Options {
	if o.Queue == 0 {
		o.Queue = 64
	}
	if o.Concurrency == 0 {
		o.Concurrency = runtime.GOMAXPROCS(0)
	}
	if o.MaxBody == 0 {
		o.MaxBody = 64 << 20
	}
	if o.RetryAfter == 0 {
		o.RetryAfter = time.Second
	}
	if o.Retain == 0 {
		o.Retain = 1024
	}
	if o.MaxTimeout > 0 && (o.DefaultTimeout == 0 || o.DefaultTimeout > o.MaxTimeout) {
		o.DefaultTimeout = o.MaxTimeout
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.run == nil {
		o.run = core.Run
	}
	return o
}

// Server is the partitioning service: a bounded job queue drained by a fixed
// pool of worker goroutines, a job registry behind the HTTP API, and the
// drain state machine. Create with New, mount Handler on an HTTP server,
// stop with Drain (graceful) or Close (immediate).
type Server struct {
	opts    Options
	metrics *serviceMetrics

	queue chan *Job // bounded: admission control is a failed non-blocking send

	// jobsCtx parents every job context; jobsCancel is the drain grace
	// expiring ("deadline-cancel whatever is still in flight") and Close.
	jobsCtx    context.Context
	jobsCancel context.CancelFunc

	stop chan struct{} // closed once by Drain/Close: stop admitting, drain queue
	wg   sync.WaitGroup

	mu       sync.Mutex
	draining bool
	nextID   int
	jobs     map[string]*Job
	finished []string // finished job ids in completion order, for retention
}

// New starts a Server: the worker pool is live and Handler may be served
// immediately.
func New(opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{
		opts:  o,
		queue: make(chan *Job, o.Queue),
		stop:  make(chan struct{}),
		jobs:  make(map[string]*Job),
	}
	s.jobsCtx, s.jobsCancel = context.WithCancel(context.Background())
	s.metrics = newServiceMetrics(o.Registry, func() float64 { return float64(len(s.queue)) })
	s.wg.Add(o.Concurrency)
	for i := 0; i < o.Concurrency; i++ {
		go s.worker()
	}
	return s
}

// worker is one concurrency slot: it owns an arena reused across every job
// it runs, pulls from the queue until drained, and on the stop signal sweeps
// the remaining queued jobs before exiting.
func (s *Server) worker() {
	defer s.wg.Done()
	arena := mem.NewArena()
	for {
		select {
		case j := <-s.queue:
			s.execute(j, arena)
		case <-s.stop:
			// Drain: admission is already closed, so the queue can only
			// shrink; finish what is there and exit.
			for {
				select {
				case j := <-s.queue:
					s.execute(j, arena)
				default:
					return
				}
			}
		}
	}
}

// execute runs one dequeued job through its state machine. The pipeline
// itself runs inside runJob behind the panic barrier.
func (s *Server) execute(j *Job, arena *mem.Arena) {
	wait := time.Since(j.submitted)
	s.metrics.queueWait.Observe(wait.Seconds())
	if !j.setRunning(wait) {
		// Canceled while queued; the cancel handler already settled it, so
		// only the bookkeeping is left.
		s.metrics.finished(StateCanceled)
		s.retire(j.id)
		return
	}
	if err := j.ctx.Err(); err != nil {
		// The deadline (or the drain grace) expired while the job was
		// waiting in the queue: fail it without running anything.
		s.finishJob(j, core.Result{}, nil, fmt.Errorf("expired while queued: %w", err))
		return
	}
	s.metrics.running.Add(1)
	start := time.Now()
	res, arts, err := s.runJob(j, arena)
	s.metrics.running.Add(-1)
	s.metrics.runDur.Observe(time.Since(start).Seconds())
	s.finishJob(j, res, arts, err)
}

// jobArtifacts is what a successful run leaves for the fetch endpoints.
type jobArtifacts struct {
	partition  []byte // one block per line, the CLI -out encoding
	report     []byte // obs.Report JSON, the CLI -report encoding
	reportZero []byte // the same report after ZeroTimes (byte-comparable)
}

// runJob executes the pipeline for j, drawing scratch from the slot's
// arena. The deferred recover is the service's panic barrier: a panicking
// kernel surfaces as this job's error — with the panic value preserved —
// while the worker slot, the queue, and every other job keep going.
func (s *Server) runJob(j *Job, arena *mem.Arena) (res core.Result, arts *jobArtifacts, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panics.Inc()
			arts = nil
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()

	// Observability mirrors the CLI's -report/-metrics wiring: per-job
	// transport stats and report observer, pipeline metrics into the shared
	// registry. The arena section is the delta across this job, so a pooled
	// arena reports exactly what a fresh per-run arena would.
	stats := dist.NewTransportStats(j.cfg.NumPEs())
	reporter := obs.NewReportObserver(j.g, j.cfg)
	before := arena.Stats()
	opts := []core.Option{
		core.WithArena(arena),
		core.WithTransportStats(stats),
		core.WithObserver(obs.NewPipelineObserver(s.opts.Registry)),
		core.WithObserver(reporter),
		// The job's SSE stream: every trace event, rendered and sequenced,
		// while the run is still in flight.
		core.WithObserver(core.ObserverFunc(j.events.trace)),
	}
	res, err = s.opts.run(j.ctx, j.g, j.cfg, opts...)
	if err != nil {
		return res, nil, err
	}

	rep := reporter.Finish(res, stats, nil)
	after := arena.Stats()
	rep.Arena = &obs.ArenaReport{
		Borrows:        after.Borrows - before.Borrows,
		Reused:         after.Reused - before.Reused,
		Misses:         after.Misses - before.Misses,
		AllocatedBytes: after.AllocatedBytes - before.AllocatedBytes,
		LiveBytes:      after.LiveBytes,
		PooledBytes:    after.PooledBytes,
	}
	arts = &jobArtifacts{partition: renderPartition(res.Blocks)}
	if arts.report, err = renderReport(rep); err != nil {
		return res, nil, err
	}
	rep.ZeroTimes()
	if arts.reportZero, err = renderReport(rep); err != nil {
		return res, nil, err
	}
	obs.RecordResult(s.opts.Registry, res)
	return res, arts, nil
}

// finishJob settles a job's terminal state and updates the per-state
// metrics and the retention list.
func (s *Server) finishJob(j *Job, res core.Result, arts *jobArtifacts, err error) {
	state := StateDone
	switch {
	case err == nil:
	case j.cancelRequested.Load() && errors.Is(err, context.Canceled):
		state = StateCanceled
	default:
		state = StateFailed
	}
	j.finish(state, res, arts, err)
	s.metrics.finished(state)
	s.retire(j.id)
}

// retire records a finished job for retention and evicts the oldest
// finished jobs beyond the Retain bound.
func (s *Server) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, id)
	for len(s.finished) > s.opts.Retain {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// ErrDraining is returned (as a 503) to submissions arriving while the
// server is draining.
var ErrDraining = errors.New("svc: server is draining")

// ErrQueueFull is returned (as a 429) when the job queue is at capacity.
var ErrQueueFull = errors.New("svc: job queue is full")

// submit admits a prepared job: under the admission lock it re-checks the
// drain state and performs the non-blocking enqueue that is the
// admission-control decision. The job's deadline clock starts here.
func (s *Server) submit(g *graph.Graph, cfg core.Config, timeout time.Duration) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	id := fmt.Sprintf("j%d", s.nextID+1)
	j := newJob(id, g, cfg, s.jobsCtx, timeout)
	select {
	case s.queue <- j:
	default:
		j.cancel()
		return nil, ErrQueueFull
	}
	s.nextID++
	s.jobs[id] = j
	s.metrics.submitted.Inc()
	return j, nil
}

// job looks up a job by id.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// beginDrain flips the server into the draining state exactly once. After
// it returns, no submission can enqueue (the flag and every enqueue share
// the admission lock), so the workers' final queue sweep cannot miss a job.
func (s *Server) beginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.draining = true
		close(s.stop)
	}
}

// Drain gracefully shuts the service down: stop admitting (readiness flips
// to 503 immediately), let the queued and running jobs finish, and return
// when the pool is idle. If ctx expires first, every job still in flight is
// deadline-canceled, the pool is awaited, and ctx's error is returned —
// the job-level cancellation path the pipeline already honors, so even a
// hard drain leaves every job in a terminal state.
func (s *Server) Drain(ctx context.Context) error {
	s.beginDrain()
	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.jobsCancel()
		<-idle
		return ctx.Err()
	}
}

// Close shuts down immediately: admission stops, in-flight jobs are
// canceled, and the worker pool is awaited. Equivalent to Drain with an
// already-expired context.
func (s *Server) Close() {
	s.beginDrain()
	s.jobsCancel()
	s.wg.Wait()
}
