package svc

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/store"
)

// writeJobStore generates a graph and shards it into dir, returning the
// graph for reference runs.
func writeJobStore(t *testing.T, dir string, pes int, strategy dist.Strategy) *graph.Graph {
	t.Helper()
	g, err := gen.FromSpec("rgg:8")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Write(dir, g, store.WriteOptions{PEs: pes, Strategy: strategy}); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestShardDirJobMatchesDirectRun pins the out-of-core job contract: a job
// whose input is a shard store (confined under GraphDir) adopts the
// manifest's shard count and distribution, runs over the memory-mapped CSR
// segment, and produces the partition byte-identical to the direct run over
// the same graph at the same configuration.
func TestShardDirJobMatchesDirectRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline run")
	}
	rcb, err := dist.ParseStrategy("rcb")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	g := writeJobStore(t, filepath.Join(dir, "g.kst"), 2, rcb)

	cfg := core.NewConfig(core.Fast, 4)
	cfg.Seed = 7
	cfg.PEs = 2
	cfg.Distribution = rcb
	cfg.Coarsen = core.CoarsenDistributed
	want, err := core.Run(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	s, h := newTestServer(t, Options{Concurrency: 1, Queue: 2, GraphDir: dir})
	rr := submitJob(t, h, `{"shard_dir":"g.kst","k":4,"seed":7,"coarsen":"distributed"}`)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rr.Code, rr.Body.String())
	}
	st := waitTerminal(t, s, decodeStatus(t, rr).ID)
	if st.State != StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	if st.Cut != want.Cut {
		t.Fatalf("cut %d, direct run %d", st.Cut, want.Cut)
	}
	got := httptest.NewRecorder()
	h.ServeHTTP(got, httptest.NewRequest("GET", st.Partition, nil))
	if !bytes.Equal(got.Body.Bytes(), renderPartition(want.Blocks)) {
		t.Fatal("shard_dir job partition differs from the direct run")
	}
}

// TestShardDirJobRejections pins the submit-time diagnostics: a pes or dist
// conflicting with the manifest, a second graph source, and a path escaping
// the graph directory are all 400s that never admit a job.
func TestShardDirJobRejections(t *testing.T) {
	rcb, err := dist.ParseStrategy("rcb")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	writeJobStore(t, filepath.Join(dir, "g.kst"), 2, rcb)
	_, h := newTestServer(t, Options{Concurrency: 1, Queue: 2, GraphDir: dir})

	for name, spec := range map[string]string{
		"pes conflict":  `{"shard_dir":"g.kst","k":4,"pes":3}`,
		"dist conflict": `{"shard_dir":"g.kst","k":4,"dist":"sfc"}`,
		"second source": `{"shard_dir":"g.kst","gen":"grid:4x4","k":4}`,
		"path escape":   `{"shard_dir":"../g.kst","k":4}`,
		"absolute path": `{"shard_dir":"/etc","k":4}`,
		"missing store": `{"shard_dir":"nope.kst","k":4}`,
		"not a store":   `{"shard_dir":".","k":4}`,
		"zero sources":  `{"k":4}`,
	} {
		rr := submitJob(t, h, spec)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, rr.Code, rr.Body.String())
		}
	}
}
