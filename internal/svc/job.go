package svc

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// State is a job's position in its lifecycle. The machine is
//
//	queued ──► running ──► done | failed | canceled
//	   │                              ▲
//	   └──────── (cancel/expiry) ─────┘
//
// plus the admission-time rejections (queue full, draining) that never
// create a job at all and are counted only in the metrics.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one admitted partitioning request. The immutable fields (id, graph,
// config, context) are set at admission; the mutable lifecycle lives behind
// mu. Reads through Status and the artifact accessors are safe from any
// goroutine.
type Job struct {
	id  string
	g   *graph.Graph
	cfg core.Config

	// ctx carries the job's deadline and cancellation; cancel releases it
	// and is safe to call many times.
	ctx    context.Context
	cancel context.CancelFunc

	// cancelRequested distinguishes a client cancel from a deadline expiry:
	// both surface as a context error from the pipeline, but only the former
	// terminates as StateCanceled.
	cancelRequested atomic.Bool

	submitted time.Time
	deadline  time.Time // zero when the job has no deadline

	mu      sync.Mutex
	state   State
	wait    time.Duration // time spent queued, set when the job starts
	runTime time.Duration // time spent running, set when the job finishes
	started time.Time
	errMsg  string
	cut     int64
	balance float64
	levels  int
	arts    *jobArtifacts

	// done is closed when the job reaches a terminal state; tests and the
	// drain path wait on it.
	done chan struct{}

	// events is the job's progress stream: lifecycle transitions and the
	// run's trace events, served by the SSE endpoint.
	events *eventLog
}

// newJob builds a queued job whose deadline clock starts now: time spent
// waiting in the queue counts against the deadline, so a drowning server
// sheds expired work instead of running it pointlessly late.
func newJob(id string, g *graph.Graph, cfg core.Config, parent context.Context, timeout time.Duration) *Job {
	j := &Job{
		id:        id,
		g:         g,
		cfg:       cfg,
		submitted: time.Now(),
		state:     StateQueued,
		done:      make(chan struct{}),
		events:    newEventLog(),
	}
	if timeout > 0 {
		j.deadline = j.submitted.Add(timeout)
		j.ctx, j.cancel = context.WithDeadline(parent, j.deadline)
	} else {
		j.ctx, j.cancel = context.WithCancel(parent)
	}
	j.events.state(StateQueued, "")
	return j
}

// setRunning moves the job from queued to running; it reports false when the
// job was already canceled while waiting, in which case the worker must not
// run it.
func (j *Job) setRunning(wait time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.wait = wait
	j.started = time.Now()
	j.events.state(StateRunning, "")
	return true
}

// finish settles the job in a terminal state, stores its artifacts, releases
// its context, and wakes every waiter.
func (j *Job) finish(state State, res core.Result, arts *jobArtifacts, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	if !j.started.IsZero() {
		j.runTime = time.Since(j.started)
	}
	j.state = state
	if err != nil {
		j.errMsg = err.Error()
	}
	if state == StateDone {
		j.cut = res.Cut
		j.balance = res.Balance
		j.levels = res.Levels
		j.arts = arts
	}
	j.mu.Unlock()
	j.events.state(state, errMsg(err))
	j.events.close()
	j.cancel()
	close(j.done)
}

// errMsg renders err for the event stream; nil is the empty string.
func errMsg(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// requestCancel asks the job to stop: a queued job settles canceled
// immediately (the worker will skip it), a running one has its context
// canceled and settles when the pipeline unwinds. Returns false when the job
// is already terminal.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	queued := j.state == StateQueued
	j.mu.Unlock()
	j.cancelRequested.Store(true)
	if queued {
		// Settle now so the client observes "canceled" without waiting for
		// a worker to reach the job in the queue. finish is idempotent, so
		// the racing worker (or a second cancel) is harmless.
		j.finish(StateCanceled, core.Result{}, nil, context.Canceled)
	} else {
		j.cancel()
	}
	return true
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status is the poll-endpoint view of a job.
type Status struct {
	ID        string  `json:"id"`
	State     State   `json:"state"`
	Error     string  `json:"error,omitempty"`
	Nodes     int     `json:"nodes"`
	Edges     int     `json:"edges"`
	K         int     `json:"k"`
	Seed      uint64  `json:"seed"`
	QueueSec  float64 `json:"queue_seconds,omitempty"`
	RunSec    float64 `json:"run_seconds,omitempty"`
	Deadline  string  `json:"deadline,omitempty"`
	Cut       int64   `json:"cut,omitempty"`
	Balance   float64 `json:"balance,omitempty"`
	Levels    int     `json:"levels,omitempty"`
	Partition string  `json:"partition,omitempty"` // URL path of the result, when done
	Report    string  `json:"report,omitempty"`    // URL path of the run report, when done
	Events    string  `json:"events"`              // URL path of the SSE progress stream
}

// Status snapshots the job for the API.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:     j.id,
		State:  j.state,
		Error:  j.errMsg,
		Nodes:  j.g.NumNodes(),
		Edges:  j.g.NumEdges(),
		K:      j.cfg.K,
		Seed:   j.cfg.Seed,
		Events: "/api/v1/jobs/" + j.id + "/events",
	}
	if !j.deadline.IsZero() {
		st.Deadline = j.deadline.UTC().Format(time.RFC3339Nano)
	}
	if j.wait > 0 {
		st.QueueSec = j.wait.Seconds()
	}
	if j.runTime > 0 {
		st.RunSec = j.runTime.Seconds()
	}
	if j.state == StateDone {
		st.Cut = j.cut
		st.Balance = j.balance
		st.Levels = j.levels
		st.Partition = "/api/v1/jobs/" + j.id + "/result"
		st.Report = "/api/v1/jobs/" + j.id + "/report"
	}
	return st
}

// artifacts returns the rendered result bytes, or nil when the job is not
// done.
func (j *Job) artifacts() *jobArtifacts {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.arts
}
