package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the observability endpoint for r:
//
//	/metrics       Prometheus text exposition format
//	/metrics.json  JSON snapshot of the same registry
//	/debug/pprof/  the standard net/http/pprof handlers (CPU profiles carry
//	               the pipeline's stage/level labels, so samples attribute
//	               to coarsen/init/refine)
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// NewServer returns an http.Server for h hardened against slow or hostile
// clients: a header that trickles in (slowloris), a request body that never
// finishes, or an idle keep-alive connection all get bounded instead of
// pinning a goroutine and file descriptor forever. WriteTimeout is left
// unset deliberately — the endpoints this server fronts stream long
// responses (30-second pprof CPU profiles, job-report downloads), and a
// write deadline would truncate exactly the responses worth waiting for.
// Both the observability endpoint and the kappad API server are built
// through this one constructor, so the hygiene cannot drift between them.
func NewServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// Serve starts the observability endpoint on addr (host:port; port 0 picks a
// free port) and returns the running server plus the bound address. The
// server runs until Close/Shutdown; serving errors after Close are
// swallowed, matching the endpoint's best-effort role.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := NewServer(Handler(r))
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
