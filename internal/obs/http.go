package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the observability endpoint for r:
//
//	/metrics       Prometheus text exposition format
//	/metrics.json  JSON snapshot of the same registry
//	/debug/pprof/  the standard net/http/pprof handlers (CPU profiles carry
//	               the pipeline's stage/level labels, so samples attribute
//	               to coarsen/init/refine)
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability endpoint on addr (host:port; port 0 picks a
// free port) and returns the running server plus the bound address. The
// server runs until Close/Shutdown; serving errors after Close are
// swallowed, matching the endpoint's best-effort role.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
