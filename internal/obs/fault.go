package obs

import (
	"repro/internal/remote"
)

// Fault-tolerance observability: the coordinator's remote.Counters exposed
// as registry metrics (pull bindings, like the transport counters) and as a
// report section. obs imports remote — never the reverse — so the remote
// package stays observable without being instrumented.

// FaultReport is the run report's fault-tolerance section: nonzero fields
// mean the run survived something. Heartbeat counts are timing-dependent
// (how many intervals elapsed) and are zeroed by ZeroTimes; the rest —
// failures, reassignments, fallbacks, retries — is part of the run's
// deterministic outcome under a seeded fault schedule.
type FaultReport struct {
	WorkerFailures int64 `json:"worker_failures"`
	Reassignments  int64 `json:"reassignments"`
	LocalFallbacks int64 `json:"local_fallbacks"`
	LevelRetries   int64 `json:"level_retries"`
	HeartbeatsSent int64 `json:"heartbeats_sent"`
	HeartbeatsRecv int64 `json:"heartbeats_recv"`
	DoneFailures   int64 `json:"done_failures"`
}

// FaultSection snapshots c into a report section; nil for a nil c, so
// reports of runs without a coordinator stay unchanged.
func FaultSection(c *remote.Counters) *FaultReport {
	if c == nil {
		return nil
	}
	s := c.Snapshot()
	return &FaultReport{
		WorkerFailures: s.WorkerFailures,
		Reassignments:  s.Reassignments,
		LocalFallbacks: s.LocalFallbacks,
		LevelRetries:   s.LevelRetries,
		HeartbeatsSent: s.HeartbeatsSent,
		HeartbeatsRecv: s.HeartbeatsRecv,
		DoneFailures:   s.DoneFailures,
	}
}

// BindRemote registers pull bindings for the coordinator's fault-tolerance
// counters, mirroring BindTransport: scrapes observe failures, retries, and
// reassignments while the run is in flight.
func BindRemote(r *Registry, c *remote.Counters) {
	bind := func(name, help string, v func(remote.CounterSnapshot) int64) {
		r.CounterVec(name, help).Func(func() float64 { return float64(v(c.Snapshot())) })
	}
	bind("kappa_remote_worker_failures_total",
		"Workers the coordinator declared dead.",
		func(s remote.CounterSnapshot) int64 { return s.WorkerFailures })
	bind("kappa_remote_reassignments_total",
		"Orphaned PE shards reassigned to live workers.",
		func(s remote.CounterSnapshot) int64 { return s.Reassignments })
	bind("kappa_remote_local_fallbacks_total",
		"Times the coordinator took over all remaining shards.",
		func(s remote.CounterSnapshot) int64 { return s.LocalFallbacks })
	bind("kappa_remote_level_retries_total",
		"Contraction levels re-run after a worker failure.",
		func(s remote.CounterSnapshot) int64 { return s.LevelRetries })
	bind("kappa_remote_heartbeats_sent_total",
		"Heartbeat frames the coordinator sent to workers.",
		func(s remote.CounterSnapshot) int64 { return s.HeartbeatsSent })
	bind("kappa_remote_heartbeats_recv_total",
		"Heartbeat frames the coordinator received from workers.",
		func(s remote.CounterSnapshot) int64 { return s.HeartbeatsRecv })
	bind("kappa_remote_done_failures_total",
		"Final-partition broadcasts that failed (non-fatal).",
		func(s remote.CounterSnapshot) int64 { return s.DoneFailures })
}
