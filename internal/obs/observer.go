package obs

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/mem"
)

// PipelineObserver adapts the pipeline's typed trace events to registry
// metrics. All metric children are resolved at construction, so OnTrace does
// only atomic updates — safe to leave attached on the pipeline's critical
// path, and race-clean against concurrent scrapes of the registry.
type PipelineObserver struct {
	runs        *Counter
	levels      *Counter
	levelNodes  *Histogram
	levelEdges  *Histogram
	matchSec    *Histogram
	contractSec *Histogram
	initCut     *Gauge
	initTotal   *Counter
	refineIter  *Counter
	refineGain  *Histogram
	phaseSec    map[core.Phase]*Histogram
}

// NewPipelineObserver registers the pipeline metric catalog on r and returns
// the observer feeding it. Attach with core.WithObserver (or the repro
// facade's WithMetrics); one observer may serve many sequential runs, and
// concurrent runs may each attach their own observer over one registry.
func NewPipelineObserver(r *Registry) *PipelineObserver {
	phase := r.HistogramVec("kappa_phase_seconds",
		"Wall-clock of each finished pipeline phase.", TimeBuckets, "phase")
	return &PipelineObserver{
		runs:   r.Counter("kappa_runs_total", "Pipeline runs observed (total-phase events)."),
		levels: r.Counter("kappa_levels_total", "Contraction levels pushed."),
		levelNodes: r.Histogram("kappa_level_nodes",
			"Nodes of each pushed coarser graph.", SizeBuckets),
		levelEdges: r.Histogram("kappa_level_edges",
			"Edges of each pushed coarser graph.", SizeBuckets),
		matchSec: r.Histogram("kappa_level_match_seconds",
			"Matching-kernel wall-clock per contraction level.", TimeBuckets),
		contractSec: r.Histogram("kappa_level_contract_seconds",
			"Contraction-kernel wall-clock per contraction level.", TimeBuckets),
		initCut: r.Gauge("kappa_init_cut",
			"Cut of the most recent initial partition of the coarsest graph."),
		initTotal: r.Counter("kappa_init_total", "Initial partitions computed."),
		refineIter: r.Counter("kappa_refine_iterations_total",
			"Global refinement iterations run."),
		refineGain: r.Histogram("kappa_refine_gain",
			"Total cut reduction per global refinement iteration.", GainBuckets),
		phaseSec: map[core.Phase]*Histogram{
			core.PhaseCoarsen: phase.With("coarsen"),
			core.PhaseInit:    phase.With("init"),
			core.PhaseRefine:  phase.With("refine"),
			core.PhaseTotal:   phase.With("total"),
		},
	}
}

// OnTrace implements core.Observer.
func (o *PipelineObserver) OnTrace(ev core.TraceEvent) {
	switch e := ev.(type) {
	case core.LevelEvent:
		o.levels.Inc()
		o.levelNodes.Observe(float64(e.Nodes))
		o.levelEdges.Observe(float64(e.Edges))
		o.matchSec.Observe(e.Match.Seconds())
		o.contractSec.Observe(e.Contract.Seconds())
	case core.InitEvent:
		o.initTotal.Inc()
		o.initCut.Set(float64(e.Cut))
	case core.RefineEvent:
		o.refineIter.Inc()
		o.refineGain.Observe(float64(e.Gain))
	case core.PhaseEvent:
		if h, ok := o.phaseSec[e.Phase]; ok {
			h.Observe(e.Time.Seconds())
		}
		if e.Phase == core.PhaseTotal {
			o.runs.Inc()
		}
	}
}

// RecordResult publishes the headline figures of a finished run as gauges —
// the piece the trace stream does not carry (the final cut belongs to the
// Result, not to any event).
func RecordResult(r *Registry, res core.Result) {
	r.Gauge("kappa_last_cut", "Cut of the most recent finished run.").Set(float64(res.Cut))
	r.Gauge("kappa_last_balance", "Balance of the most recent finished run.").Set(res.Balance)
	r.Gauge("kappa_last_levels", "Contraction levels of the most recent finished run.").Set(float64(res.Levels))
}

// BindTransport registers per-PE pull metrics over s: every scrape reads the
// live atomic counters, so transport traffic is visible mid-run. Bind a
// given stats object at most once per registry.
func BindTransport(r *Registry, s *dist.TransportStats) {
	msgsSent := r.CounterVec("kappa_transport_msgs_sent_total",
		"Messages handed to Exchange by this PE.", "pe")
	msgsRecv := r.CounterVec("kappa_transport_msgs_recv_total",
		"Messages received in this PE's inboxes.", "pe")
	bytesSent := r.CounterVec("kappa_transport_bytes_sent_total",
		"Payload bytes this PE wrote to the socket layer.", "pe")
	bytesRecv := r.CounterVec("kappa_transport_bytes_recv_total",
		"Payload bytes this PE read from the socket layer.", "pe")
	framesSent := r.CounterVec("kappa_transport_frames_sent_total",
		"Superstep frames this PE sent.", "pe")
	framesRecv := r.CounterVec("kappa_transport_frames_recv_total",
		"Superstep frames this PE received.", "pe")
	steps := r.CounterVec("kappa_transport_supersteps_total",
		"Supersteps (Exchange calls) this PE completed.", "pe")
	barrier := r.CounterVec("kappa_transport_barrier_seconds_total",
		"Seconds this PE spent blocked in the superstep barrier.", "pe")
	for pe := 0; pe < s.PEs(); pe++ {
		st := s.PE(pe)
		label := strconv.Itoa(pe)
		msgsSent.Func(func() float64 { return float64(st.MsgsSent.Load()) }, label)
		msgsRecv.Func(func() float64 { return float64(st.MsgsRecv.Load()) }, label)
		bytesSent.Func(func() float64 { return float64(st.BytesSent.Load()) }, label)
		bytesRecv.Func(func() float64 { return float64(st.BytesRecv.Load()) }, label)
		framesSent.Func(func() float64 { return float64(st.FramesSent.Load()) }, label)
		framesRecv.Func(func() float64 { return float64(st.FramesRecv.Load()) }, label)
		steps.Func(func() float64 { return float64(st.Supersteps.Load()) }, label)
		barrier.Func(func() float64 { return float64(st.BarrierNanos.Load()) / 1e9 }, label)
	}
}

// BindArena registers pull metrics over a's Stats(): borrow counters and the
// byte-level gauges (live, pooled, allocated). Bind a given arena at most
// once per registry.
func BindArena(r *Registry, a *mem.Arena) {
	r.CounterVec("kappa_arena_borrows_total",
		"Scratch borrows served by the arena.").Func(func() float64 {
		return float64(a.Stats().Borrows)
	})
	r.CounterVec("kappa_arena_reuse_hits_total",
		"Borrows served from a free list.").Func(func() float64 {
		return float64(a.Stats().Reused)
	})
	r.CounterVec("kappa_arena_misses_total",
		"Borrows that allocated fresh backing arrays.").Func(func() float64 {
		return float64(a.Stats().Misses)
	})
	r.CounterVec("kappa_arena_allocated_bytes_total",
		"Bytes of fresh backing arrays the arena made.").Func(func() float64 {
		return float64(a.Stats().AllocatedBytes)
	})
	r.GaugeVec("kappa_arena_live_bytes",
		"Bytes currently borrowed from the arena.").Func(func() float64 {
		return float64(a.Stats().LiveBytes)
	})
	r.GaugeVec("kappa_arena_pooled_bytes",
		"Bytes idle in the arena's free lists.").Func(func() float64 {
		return float64(a.Stats().PooledBytes)
	})
}
