package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestHTTPEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "liveness").Inc()
	srv, addr, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ctype)
	}
	if !strings.Contains(body, "# TYPE up_total counter") || !strings.Contains(body, "up_total 1") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	body, ctype = get("/metrics.json")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/metrics.json content type = %q", ctype)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json is not valid JSON: %v", err)
	}
	if len(snap.Metrics) != 1 || snap.Metrics[0].Name != "up_total" {
		t.Fatalf("/metrics.json snapshot: %+v", snap)
	}

	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline returned nothing")
	}
}
