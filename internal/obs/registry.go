// Package obs is the observability substrate of the partitioner: a
// dependency-free metrics registry (counters, gauges, histograms with fixed
// deterministic bucket bounds), exposed as Prometheus text and as a JSON
// snapshot behind an opt-in HTTP endpoint that also mounts net/http/pprof,
// plus the structured RunReport of a pipeline run.
//
// Everything here is pull-based and lock-cheap: stored metrics are atomics,
// func-backed metrics read their source (transport counters, arena gauges)
// only at collection time, and nothing in the package is on the pipeline's
// hot path unless an observer is explicitly attached.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// metricType enumerates the Prometheus metric types the registry supports.
type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("obs.metricType(%d)", int(t))
	}
}

// Registry is a set of named metric families. All methods are safe for
// concurrent use; registration methods are get-or-create and panic only on a
// programmer error (re-registering a name with a different type, label set,
// or bucket bounds). The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with its children (one per label-value tuple).
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string
	bounds []float64 // histogram bucket upper bounds, strictly increasing

	mu       sync.Mutex
	children map[string]*metric
}

// metric is one child of a family: either a stored atomic value, a pull
// function, or a histogram.
type metric struct {
	labelVals []string

	bits atomic.Uint64  // float64 bits of a stored counter/gauge
	fn   func() float64 // pull source; nil for stored metrics

	counts  []int64 // histogram bucket counts (len(bounds)+1, last = +Inf); atomic
	sumBits atomic.Uint64
	count   atomic.Int64
}

// value returns the metric's current scalar value.
func (m *metric) value() float64 {
	if m.fn != nil {
		return m.fn()
	}
	return math.Float64frombits(m.bits.Load())
}

// addFloat atomically adds v to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// family resolves (or registers) a family, checking the signature.
// Signature clashes are registration-site bugs, caught at startup.
//
//kappa:invariant metric registration is static; a clash is a programmer error
func (r *Registry) family(name, help string, typ metricType, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) || !equalFloats(f.bounds, bounds) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different signature", name))
		}
		return f
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: metric %q has non-increasing bucket bounds", name))
		}
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*metric),
	}
	r.families[name] = f
	return f
}

// child resolves (or creates) the child for the given label values.
//
//kappa:invariant label arity is fixed at the registration site
func (f *family) child(values []string) *metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q takes %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	m := &metric{labelVals: append([]string(nil), values...)}
	if f.typ == typeHistogram {
		m.counts = make([]int64, len(f.bounds)+1)
	}
	f.children[key] = m
	return m
}

// bindFunc registers fn as a pull child; duplicate bindings are a
// programmer error.
//
//kappa:invariant pull bindings are static registration-time wiring
func (f *family) bindFunc(fn func() float64, values []string) {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q takes %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.children[key]; dup {
		panic(fmt.Sprintf("obs: metric %q{%s} already registered", f.name, key))
	}
	f.children[key] = &metric{labelVals: append([]string(nil), values...), fn: fn}
}

// labelKey joins label values into a map key; 0x1f cannot occur in a sane
// label value and keeps distinct tuples distinct.
func labelKey(values []string) string {
	key := ""
	for i, v := range values {
		if i > 0 {
			key += "\x1f"
		}
		key += v
	}
	return key
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing stored metric.
type Counter struct{ m *metric }

// Add adds v (v must be >= 0 for the counter contract to hold; the registry
// does not enforce it).
func (c *Counter) Add(v float64) { addFloat(&c.m.bits, v) }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current value (for tests and reports).
func (c *Counter) Value() float64 { return c.m.value() }

// Gauge is a stored metric that can go up and down.
type Gauge struct{ m *metric }

// Set stores v.
func (g *Gauge) Set(v float64) { g.m.bits.Store(math.Float64bits(v)) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.m.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.m.value() }

// Histogram is a stored metric counting observations into fixed buckets.
type Histogram struct {
	m      *metric
	bounds []float64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are short (≤ ~20) and the scan avoids the
	// branch-misses of a binary search on tiny arrays.
	i := len(h.bounds)
	for b, ub := range h.bounds {
		if v <= ub {
			i = b
			break
		}
	}
	atomic.AddInt64(&h.m.counts[i], 1)
	addFloat(&h.m.sumBits, v)
	h.m.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.m.count.Load() }

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// Counter registers (or returns) the unlabeled counter name.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{r.family(name, help, typeCounter, nil, nil).child(nil)}
}

// Gauge registers (or returns) the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{r.family(name, help, typeGauge, nil, nil).child(nil)}
}

// Histogram registers (or returns) the unlabeled histogram name with the
// given bucket upper bounds (strictly increasing; a +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.family(name, help, typeHistogram, nil, bounds)
	return &Histogram{m: f.child(nil), bounds: f.bounds}
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, typeCounter, labels, nil)}
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{v.f.child(values)} }

// Func registers fn as the child for the given label values: its value is
// read at every collection. The function must be safe for concurrent use.
func (v *CounterVec) Func(fn func() float64, values ...string) { v.f.bindFunc(fn, values) }

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, typeGauge, labels, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{v.f.child(values)} }

// Func registers fn as the child for the given label values; see
// CounterVec.Func.
func (v *GaugeVec) Func(fn func() float64, values ...string) { v.f.bindFunc(fn, values) }

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, typeHistogram, labels, bounds)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{m: v.f.child(values), bounds: v.f.bounds}
}

// sortedFamilies snapshots the family list ordered by name — the collection
// order of both output formats, so scrapes are deterministic.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren snapshots a family's children ordered by label values.
func (f *family) sortedChildren() []*metric {
	f.mu.Lock()
	ms := make([]*metric, 0, len(f.children))
	for _, m := range f.children {
		ms = append(ms, m)
	}
	f.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		return labelKey(ms[i].labelVals) < labelKey(ms[j].labelVals)
	})
	return ms
}

// Default bucket bounds. Fixed and deterministic so recorded scrapes are
// comparable across runs and machines.
var (
	// TimeBuckets covers kernel and phase durations, in seconds: 100µs up
	// to 10s in a 1-2.5-5 ladder.
	TimeBuckets = []float64{1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	// SizeBuckets covers graph sizes (nodes, edges): powers of four from
	// 256 to ~16M.
	SizeBuckets = []float64{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24}
	// GainBuckets covers per-iteration refinement gains, including the
	// no-progress and (rare) negative cases.
	GainBuckets = []float64{-100, 0, 10, 100, 1000, 10000, 100000}
)
