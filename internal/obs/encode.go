package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
)

// WritePrometheus writes every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, children by label values, so the
// output is deterministic for a fixed metric state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		children := f.sortedChildren()
		if len(children) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, m := range children {
			var err error
			if f.typ == typeHistogram {
				err = writePromHistogram(w, f, m)
			} else {
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(f.labels, m.labelVals), formatFloat(m.value()))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram writes the _bucket/_sum/_count triplet of one child.
func writePromHistogram(w io.Writer, f *family, m *metric) error {
	cum := int64(0)
	for i, ub := range f.bounds {
		cum += atomic.LoadInt64(&m.counts[i])
		ls := promLabelsExtra(f.labels, m.labelVals, "le", formatFloat(ub))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, ls, cum); err != nil {
			return err
		}
	}
	cum += atomic.LoadInt64(&m.counts[len(f.bounds)])
	ls := promLabelsExtra(f.labels, m.labelVals, "le", "+Inf")
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, ls, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, promLabels(f.labels, m.labelVals), formatFloat(sumOf(m))); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(f.labels, m.labelVals), m.count.Load())
	return err
}

func sumOf(m *metric) float64 {
	return math.Float64frombits(m.sumBits.Load())
}

// promLabels renders {k="v",...}; empty label sets render as nothing.
func promLabels(names, values []string) string {
	return promLabelsExtra(names, values, "", "")
}

// promLabelsExtra renders the label set plus one optional extra pair (the
// histogram's le).
func promLabelsExtra(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot is the JSON form of a registry scrape.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one family with all its samples.
type MetricSnapshot struct {
	Name    string   `json:"name"`
	Type    string   `json:"type"`
	Help    string   `json:"help,omitempty"`
	Samples []Sample `json:"samples"`
}

// Sample is one child's current value; Histogram is set only for histograms,
// Value only for counters and gauges.
type Sample struct {
	Labels    map[string]string `json:"labels,omitempty"`
	Value     *float64          `json:"value,omitempty"`
	Histogram *HistogramValue   `json:"histogram,omitempty"`
}

// HistogramValue is one histogram child: per-bucket (non-cumulative) counts,
// the last entry counting observations above every bound.
type HistogramValue struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot captures the current value of every metric, ordered like the
// Prometheus output (families by name, samples by label values).
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for _, f := range r.sortedFamilies() {
		children := f.sortedChildren()
		if len(children) == 0 {
			continue
		}
		ms := MetricSnapshot{Name: f.name, Type: f.typ.String(), Help: f.help}
		for _, m := range children {
			s := Sample{}
			if len(f.labels) > 0 {
				s.Labels = make(map[string]string, len(f.labels))
				for i, n := range f.labels {
					s.Labels[n] = m.labelVals[i]
				}
			}
			if f.typ == typeHistogram {
				hv := &HistogramValue{
					Bounds: f.bounds,
					Counts: make([]int64, len(m.counts)),
					Sum:    sumOf(m),
					Count:  m.count.Load(),
				}
				for i := range m.counts {
					hv.Counts[i] = atomic.LoadInt64(&m.counts[i])
				}
				s.Histogram = hv
			} else {
				v := m.value()
				s.Value = &v
			}
			ms.Samples = append(ms.Samples, s)
		}
		snap.Metrics = append(snap.Metrics, ms)
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON (deterministic: families and
// samples are ordered, and encoding/json sorts the label maps).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
