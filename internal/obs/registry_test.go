package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
	// Re-registration with the same signature returns the same metric.
	if r.Counter("c_total", "a counter").Value() != 3.5 {
		t.Fatal("re-registration must return the existing counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "a histogram", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP h a histogram
# TYPE h histogram
h_bucket{le="1"} 2
h_bucket{le="10"} 3
h_bucket{le="100"} 4
h_bucket{le="+Inf"} 5
h_sum 556.5
h_count 5
`
	if sb.String() != want {
		t.Fatalf("prometheus output:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestVecLabelsAndFunc(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs_total", "requests", "pe")
	v.With("1").Add(3)
	v.With("0").Inc()
	backing := 41.0
	v.Func(func() float64 { return backing }, "2")
	backing = 42

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP reqs_total requests
# TYPE reqs_total counter
reqs_total{pe="0"} 1
reqs_total{pe="1"} 3
reqs_total{pe="2"} 42
`
	if sb.String() != want {
		t.Fatalf("prometheus output:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestSignatureMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	for name, fn := range map[string]func(){
		"type":   func() { r.Gauge("m", "") },
		"labels": func() { r.CounterVec("m", "", "pe") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s mismatch must panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDuplicateFuncPanics(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("g", "", "pe")
	v.Func(func() float64 { return 0 }, "0")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Func binding must panic")
		}
	}()
	v.Func(func() float64 { return 0 }, "0")
}

func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help a").Add(2)
	h := r.Histogram("lat", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(snap.Metrics) != 2 {
		t.Fatalf("got %d metrics, want 2", len(snap.Metrics))
	}
	if snap.Metrics[0].Name != "a_total" || *snap.Metrics[0].Samples[0].Value != 2 {
		t.Fatalf("counter sample wrong: %+v", snap.Metrics[0])
	}
	hv := snap.Metrics[1].Samples[0].Histogram
	if hv == nil || hv.Count != 2 || hv.Sum != 5.5 {
		t.Fatalf("histogram sample wrong: %+v", hv)
	}
	// JSON counts are per-bucket, not cumulative; last is the overflow.
	if hv.Counts[0] != 1 || hv.Counts[1] != 0 || hv.Counts[2] != 1 {
		t.Fatalf("histogram counts wrong: %v", hv.Counts)
	}
}

func TestScrapeDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Registration order differs from name order on purpose.
		r.Gauge("z", "").Set(1)
		r.CounterVec("mid_total", "", "pe").With("3").Inc()
		r.CounterVec("mid_total", "", "pe").With("1").Inc()
		r.Histogram("a", "", TimeBuckets).Observe(0.02)
		return r
	}
	var out [2]string
	for i := range out {
		var sb strings.Builder
		if err := build().WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		out[i] = sb.String()
	}
	if out[0] != out[1] {
		t.Fatal("scrapes of identically-built registries differ")
	}
	if !strings.Contains(out[0], `mid_total{pe="1"} 1`) {
		t.Fatalf("missing labeled sample:\n%s", out[0])
	}
}

// TestConcurrentScrape hammers stores, observations, and both encoders from
// many goroutines; under -race this is the registry's data-race check.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 10})
	v := r.CounterVec("v_total", "", "pe")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pe := []string{"0", "1", "2", "3"}[w]
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 20))
				v.With(pe).Inc()
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				if err := r.WriteJSON(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 2000 {
		t.Fatalf("counter = %v, want 2000", got)
	}
	if h.Count() != 2000 {
		t.Fatalf("histogram count = %d, want 2000", h.Count())
	}
}
