package obs

import (
	"encoding/json"
	"io"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/mem"
)

// Report is the structured record of one partitioning run: the configuration
// it ran under, the shape of every contraction level with its kernel times,
// the initial partition, every refinement iteration's gain, the final result,
// and — when bound — transport and arena totals. Serialized with WriteTo it
// is a single JSON document whose non-timing fields are byte-deterministic
// for a fixed seed: zero the timings with ZeroTimes and two runs of the same
// input compare byte-equal, whether they ran in-process or across worker
// processes.
type Report struct {
	Graph     GraphReport    `json:"graph"`
	Config    ConfigReport   `json:"config"`
	Levels    []LevelReport  `json:"levels"`
	Init      InitReport     `json:"init"`
	Refine    []RefineReport `json:"refine"`
	Phases    []PhaseReport  `json:"phases"`
	Result    ResultReport   `json:"result"`
	Transport []PEReport     `json:"transport,omitempty"`
	Arena     *ArenaReport   `json:"arena,omitempty"`
	Faults    *FaultReport   `json:"faults,omitempty"`
}

// GraphReport records the input graph's shape.
type GraphReport struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
}

// ConfigReport records the run parameters that determine the output.
type ConfigReport struct {
	K       int     `json:"k"`
	Eps     float64 `json:"eps"`
	PEs     int     `json:"pes"`
	Workers int     `json:"workers"`
	Coarsen string  `json:"coarsen"`
	Seed    uint64  `json:"seed"`
}

// LevelReport records one pushed contraction level.
type LevelReport struct {
	Level           int     `json:"level"`
	Nodes           int     `json:"nodes"`
	Edges           int     `json:"edges"`
	Seconds         float64 `json:"seconds"`
	MatchSeconds    float64 `json:"match_seconds"`
	ContractSeconds float64 `json:"contract_seconds"`
}

// InitReport records the initial partition of the coarsest graph.
type InitReport struct {
	Cut     int64   `json:"cut"`
	Seconds float64 `json:"seconds"`
}

// RefineReport records one global refinement iteration.
type RefineReport struct {
	Level     int   `json:"level"`
	Iteration int   `json:"iteration"`
	Gain      int64 `json:"gain"`
}

// PhaseReport records one finished pipeline phase.
type PhaseReport struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
}

// ResultReport records the run's headline figures.
type ResultReport struct {
	Cut     int64   `json:"cut"`
	Balance float64 `json:"balance"`
	Levels  int     `json:"levels"`
}

// PEReport records one PE's transport totals.
type PEReport struct {
	PE             int     `json:"pe"`
	MsgsSent       int64   `json:"msgs_sent"`
	MsgsRecv       int64   `json:"msgs_recv"`
	BytesSent      int64   `json:"bytes_sent"`
	BytesRecv      int64   `json:"bytes_recv"`
	FramesSent     int64   `json:"frames_sent"`
	FramesRecv     int64   `json:"frames_recv"`
	Supersteps     int64   `json:"supersteps"`
	BarrierSeconds float64 `json:"barrier_seconds"`
}

// ArenaReport records the scratch arena's accounting at report time.
type ArenaReport struct {
	Borrows        int64 `json:"borrows"`
	Reused         int64 `json:"reused"`
	Misses         int64 `json:"misses"`
	AllocatedBytes int64 `json:"allocated_bytes"`
	LiveBytes      int64 `json:"live_bytes"`
	PooledBytes    int64 `json:"pooled_bytes"`
}

// ZeroTimes zeroes every scheduling-dependent field in place — wall-clock
// durations, plus the arena's reuse split (whether a concurrent borrow hits
// a free list depends on goroutine interleaving, like a timing). What
// remains is byte-deterministic for a fixed seed: byte-compare two reports
// only after calling it.
func (r *Report) ZeroTimes() {
	for i := range r.Levels {
		r.Levels[i].Seconds = 0
		r.Levels[i].MatchSeconds = 0
		r.Levels[i].ContractSeconds = 0
	}
	r.Init.Seconds = 0
	for i := range r.Phases {
		r.Phases[i].Seconds = 0
	}
	for i := range r.Transport {
		r.Transport[i].BarrierSeconds = 0
	}
	if r.Faults != nil {
		// Heartbeat counts reflect elapsed wall-clock intervals, not the
		// run's logical outcome.
		r.Faults.HeartbeatsSent = 0
		r.Faults.HeartbeatsRecv = 0
	}
	if r.Arena != nil {
		// Borrows is deterministic (one per borrow call); the rest reflects
		// which borrows raced into the free lists first.
		r.Arena.Reused = 0
		r.Arena.Misses = 0
		r.Arena.AllocatedBytes = 0
		r.Arena.LiveBytes = 0
		r.Arena.PooledBytes = 0
	}
}

// WriteTo serializes the report as one indented JSON document. Field order is
// fixed by the struct definitions, so output is deterministic.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return 0, err
	}
	b = append(b, '\n')
	n, err := w.Write(b)
	return int64(n), err
}

// ReportObserver assembles a Report from the pipeline's trace stream. Attach
// it with core.WithObserver, run, then call Finish with the run's result.
// Like every Observer it is driven from the single coordinating goroutine
// and needs no locking; one observer records one run (Reset between runs).
type ReportObserver struct {
	report Report
}

// NewReportObserver returns an observer recording graph shape and
// configuration immediately, with the event-driven sections filled during
// the run.
func NewReportObserver(g *graph.Graph, cfg core.Config) *ReportObserver {
	o := &ReportObserver{}
	o.init(g, cfg)
	return o
}

func (o *ReportObserver) init(g *graph.Graph, cfg core.Config) {
	o.report = Report{
		Graph: GraphReport{Nodes: g.NumNodes(), Edges: g.NumEdges()},
		Config: ConfigReport{
			K:       cfg.K,
			Eps:     cfg.Eps,
			PEs:     cfg.NumPEs(),
			Workers: cfg.Workers,
			Coarsen: cfg.Coarsen.String(),
			Seed:    cfg.Seed,
		},
		// Non-nil so the JSON sections render as [] rather than null even
		// for degenerate runs with no levels or refinement.
		Levels: []LevelReport{},
		Refine: []RefineReport{},
		Phases: []PhaseReport{},
	}
}

// OnTrace implements core.Observer.
func (o *ReportObserver) OnTrace(ev core.TraceEvent) {
	switch e := ev.(type) {
	case core.LevelEvent:
		o.report.Levels = append(o.report.Levels, LevelReport{
			Level:           e.Level,
			Nodes:           e.Nodes,
			Edges:           e.Edges,
			Seconds:         e.Time.Seconds(),
			MatchSeconds:    e.Match.Seconds(),
			ContractSeconds: e.Contract.Seconds(),
		})
	case core.InitEvent:
		o.report.Init = InitReport{Cut: e.Cut, Seconds: e.Time.Seconds()}
	case core.RefineEvent:
		o.report.Refine = append(o.report.Refine, RefineReport{
			Level:     e.Level,
			Iteration: e.Iteration,
			Gain:      e.Gain,
		})
	case core.PhaseEvent:
		o.report.Phases = append(o.report.Phases, PhaseReport{
			Phase:   e.Phase.String(),
			Seconds: e.Time.Seconds(),
		})
	}
}

// Reset clears the event-driven sections so the observer can record another
// run of the same graph and configuration.
func (o *ReportObserver) Reset(g *graph.Graph, cfg core.Config) { o.init(g, cfg) }

// Finish stamps the run's result and returns the assembled report. Optional
// transport stats and arena snapshots are folded in when non-nil.
func (o *ReportObserver) Finish(res core.Result, stats *dist.TransportStats, arena *mem.Arena) *Report {
	o.report.Result = ResultReport{Cut: res.Cut, Balance: res.Balance, Levels: res.Levels}
	if stats != nil {
		o.report.Transport = transportSection(stats)
	}
	if arena != nil {
		st := arena.Stats()
		o.report.Arena = &ArenaReport{
			Borrows:        st.Borrows,
			Reused:         st.Reused,
			Misses:         st.Misses,
			AllocatedBytes: st.AllocatedBytes,
			LiveBytes:      st.LiveBytes,
			PooledBytes:    st.PooledBytes,
		}
	}
	return &o.report
}

// transportSection renders per-PE transport totals.
func transportSection(stats *dist.TransportStats) []PEReport {
	totals := stats.Snapshot()
	out := make([]PEReport, len(totals))
	for pe, t := range totals {
		out[pe] = PEReport{
			PE:             pe,
			MsgsSent:       t.MsgsSent,
			MsgsRecv:       t.MsgsRecv,
			BytesSent:      t.BytesSent,
			BytesRecv:      t.BytesRecv,
			FramesSent:     t.FramesSent,
			FramesRecv:     t.FramesRecv,
			Supersteps:     t.Supersteps,
			BarrierSeconds: float64(t.BarrierNanos) / 1e9,
		}
	}
	return out
}
