package obs

import (
	"bytes"
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/mem"
)

func testConfig() core.Config {
	cfg := core.NewConfig(core.Fast, 4)
	cfg.Seed = 11
	cfg.Workers = 4
	cfg.Coarsen = core.CoarsenDistributed
	return cfg
}

// TestPipelineObserverMetrics runs the real pipeline with the full metric
// stack attached — pipeline observer, metered transport, arena binding — and
// checks every layer shows up in a scrape.
func TestPipelineObserverMetrics(t *testing.T) {
	g := gen.RGG(11, 3)
	cfg := testConfig()
	reg := NewRegistry()
	stats := dist.NewTransportStats(cfg.NumPEs())
	arena := mem.NewArena()
	BindTransport(reg, stats)
	BindArena(reg, arena)

	res, err := core.Run(context.Background(), g, cfg,
		core.WithObserver(NewPipelineObserver(reg)),
		core.WithTransportStats(stats),
		core.WithArena(arena))
	if err != nil {
		t.Fatal(err)
	}
	RecordResult(reg, res)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"kappa_runs_total 1",
		"kappa_init_total 1",
		"kappa_levels_total",
		"kappa_phase_seconds_bucket",
		`kappa_transport_supersteps_total{pe="0"}`,
		"kappa_arena_borrows_total",
		"kappa_last_cut",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape is missing %q:\n%s", want, out)
		}
	}
	if res.Levels < 1 {
		t.Fatal("test graph produced no contraction levels")
	}
	// Distributed coarsening must have moved supersteps through the metered
	// transport, and the run must have exercised the arena.
	if stats.Totals().Supersteps == 0 || stats.Totals().MsgsSent == 0 {
		t.Fatalf("transport stats not populated: %+v", stats.Totals())
	}
	if arena.Stats().Borrows == 0 {
		t.Fatal("arena stats not populated")
	}
	snap := reg.Snapshot()
	if len(snap.Metrics) == 0 {
		t.Fatal("JSON snapshot is empty")
	}
}

// TestNoEventsAfterRun pins the synchronous-emission contract: once Run has
// returned, no observer callback fires anymore — there is no goroutine left
// that could emit.
func TestNoEventsAfterRun(t *testing.T) {
	g := gen.RGG(10, 5)
	cfg := testConfig()
	var events atomic.Int64
	_, err := core.Run(context.Background(), g, cfg,
		core.WithObserver(core.ObserverFunc(func(core.TraceEvent) { events.Add(1) })))
	if err != nil {
		t.Fatal(err)
	}
	after := events.Load()
	if after == 0 {
		t.Fatal("observer saw no events at all")
	}
	time.Sleep(50 * time.Millisecond)
	if got := events.Load(); got != after {
		t.Fatalf("events kept arriving after Run returned: %d -> %d", after, got)
	}
}

// TestEmitRaceWithScrapes runs the pipeline with the metrics observer
// attached while scraping the registry continuously from other goroutines;
// under -race this is the end-to-end data-race check of the whole stack.
func TestEmitRaceWithScrapes(t *testing.T) {
	g := gen.RGG(10, 7)
	cfg := testConfig()
	reg := NewRegistry()
	stats := dist.NewTransportStats(cfg.NumPEs())
	arena := mem.NewArena()
	BindTransport(reg, stats)
	BindArena(reg, arena)

	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			reg.WritePrometheus(&sb)
			reg.WriteJSON(&sb)
		}
	}()
	_, err := core.Run(context.Background(), g, cfg,
		core.WithObserver(NewPipelineObserver(reg)),
		core.WithTransportStats(stats),
		core.WithArena(arena))
	close(stop)
	<-scraped
	if err != nil {
		t.Fatal(err)
	}
}

// runReport produces one finished report for a fixed-seed run.
func runReport(t *testing.T, seed uint64) []byte {
	t.Helper()
	g := gen.RGG(11, 9)
	cfg := testConfig()
	cfg.Seed = seed
	stats := dist.NewTransportStats(cfg.NumPEs())
	arena := mem.NewArena()
	rep := NewReportObserver(g, cfg)
	res, err := core.Run(context.Background(), g, cfg,
		core.WithObserver(rep),
		core.WithTransportStats(stats),
		core.WithArena(arena))
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Finish(res, stats, arena)
	r.ZeroTimes()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReportDeterministic pins the report contract: for a fixed seed two
// independent runs serialize byte-identically once ZeroTimes has cleared the
// scheduling-dependent fields.
func TestReportDeterministic(t *testing.T) {
	a := runReport(t, 1217)
	b := runReport(t, 1217)
	if !bytes.Equal(a, b) {
		t.Fatalf("reports of identical runs differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
	other := runReport(t, 4242)
	if bytes.Equal(a, other) {
		t.Fatal("reports of different seeds must differ")
	}
	// Sanity on content: the deterministic sections must be present.
	for _, want := range []string{`"levels"`, `"init"`, `"refine"`, `"result"`, `"transport"`, `"arena"`, `"borrows"`} {
		if !bytes.Contains(a, []byte(want)) {
			t.Fatalf("report is missing section %s:\n%s", want, a)
		}
	}
}

// TestReportObserverReset pins that one observer can record sequential runs.
func TestReportObserverReset(t *testing.T) {
	g := gen.RGG(10, 2)
	cfg := testConfig()
	rep := NewReportObserver(g, cfg)
	res, err := core.Run(context.Background(), g, cfg, core.WithObserver(rep))
	if err != nil {
		t.Fatal(err)
	}
	first := rep.Finish(res, nil, nil)
	nLevels := len(first.Levels)
	rep.Reset(g, cfg)
	res, err = core.Run(context.Background(), g, cfg, core.WithObserver(rep))
	if err != nil {
		t.Fatal(err)
	}
	second := rep.Finish(res, nil, nil)
	if len(second.Levels) != nLevels {
		t.Fatalf("reset observer recorded %d levels, first run had %d", len(second.Levels), nLevels)
	}
}
