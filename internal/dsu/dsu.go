// Package dsu implements a disjoint-set union (union-find) structure with
// union by size and path halving.
//
// The partitioner uses it for connectivity checks on generated graphs and for
// the path/cycle bookkeeping of the Global Path Algorithm (GPA) matcher.
package dsu

// DSU is a disjoint-set forest over elements 0..n-1.
type DSU struct {
	parent []int32
	size   []int32
	sets   int
}

// New returns a DSU with n singleton sets.
func New(n int) *DSU {
	d := &DSU{
		parent: make([]int32, n),
		size:   make([]int32, n),
		sets:   n,
	}
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
	return d
}

// NewIn builds a DSU of singleton sets over caller-provided backing slices
// (both of length n), overwriting their contents — the allocation-free
// variant used by the GPA matcher's per-level scratch.
//
//kappa:hotpath
//kappa:invariant the arena hands out equal-length slices by construction
func NewIn(parent, size []int32) *DSU {
	if len(parent) != len(size) {
		panic("dsu: NewIn slices must have equal length")
	}
	//kappa:allow hotalloc one fixed-size header; the backing arrays are caller-provided
	d := &DSU{parent: parent, size: size, sets: len(parent)}
	for i := range parent {
		parent[i] = int32(i)
		size[i] = 1
	}
	return d
}

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Find returns the representative of x's set, compressing paths as it goes.
func (d *DSU) Find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// Union merges the sets of a and b and reports whether a merge happened
// (false when they were already in the same set).
func (d *DSU) Union(a, b int32) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	d.size[ra] += d.size[rb]
	d.sets--
	return true
}

// Same reports whether a and b are in the same set.
func (d *DSU) Same(a, b int32) bool { return d.Find(a) == d.Find(b) }

// SetSize returns the size of x's set.
func (d *DSU) SetSize(x int32) int32 { return d.size[d.Find(x)] }
