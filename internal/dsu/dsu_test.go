package dsu

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSingletons(t *testing.T) {
	d := New(5)
	if d.Sets() != 5 || d.Len() != 5 {
		t.Fatalf("got %d sets, %d len", d.Sets(), d.Len())
	}
	for i := int32(0); i < 5; i++ {
		if d.Find(i) != i {
			t.Fatalf("Find(%d) = %d before any union", i, d.Find(i))
		}
		if d.SetSize(i) != 1 {
			t.Fatalf("SetSize(%d) = %d", i, d.SetSize(i))
		}
	}
}

func TestUnionFind(t *testing.T) {
	d := New(6)
	if !d.Union(0, 1) {
		t.Fatal("first union reported no merge")
	}
	if d.Union(1, 0) {
		t.Fatal("repeated union reported a merge")
	}
	d.Union(2, 3)
	d.Union(0, 2)
	if !d.Same(1, 3) {
		t.Fatal("1 and 3 should be connected")
	}
	if d.Same(0, 4) {
		t.Fatal("0 and 4 should be disjoint")
	}
	if d.Sets() != 3 {
		t.Fatalf("Sets() = %d, want 3", d.Sets())
	}
	if d.SetSize(3) != 4 {
		t.Fatalf("SetSize(3) = %d, want 4", d.SetSize(3))
	}
}

// TestAgainstNaive cross-checks DSU against a brute-force reachability model
// under random union sequences.
func TestAgainstNaive(t *testing.T) {
	r := rng.New(1234)
	f := func(seed uint16) bool {
		rr := r.Split(uint64(seed))
		const n = 24
		d := New(n)
		// naive: label array, merging relabels.
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		for step := 0; step < 40; step++ {
			a, b := int32(rr.Intn(n)), int32(rr.Intn(n))
			d.Union(a, b)
			la, lb := label[a], label[b]
			if la != lb {
				for i := range label {
					if label[i] == lb {
						label[i] = la
					}
				}
			}
		}
		// compare equivalence relations and set sizes
		for i := int32(0); i < n; i++ {
			for j := int32(0); j < n; j++ {
				if d.Same(i, j) != (label[i] == label[j]) {
					return false
				}
			}
			sz := 0
			for j := 0; j < n; j++ {
				if label[j] == label[i] {
					sz++
				}
			}
			if int(d.SetSize(i)) != sz {
				return false
			}
		}
		// set count
		distinct := map[int]bool{}
		for _, l := range label {
			distinct[l] = true
		}
		return d.Sets() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	r := rng.New(7)
	const n = 1 << 16
	for i := 0; i < b.N; i++ {
		d := New(n)
		for j := 0; j < n; j++ {
			d.Union(int32(r.Intn(n)), int32(r.Intn(n)))
		}
	}
}
