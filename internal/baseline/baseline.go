// Package baseline implements the comparison partitioners of §6.2. The
// original tools are closed binaries from the perspective of this offline
// module, so each baseline reimplements the published algorithmic recipe of
// its namesake:
//
//   - KMetisLike — sequential direct k-way multilevel partitioning in the
//     style of kMetis: SHEM matching on raw edge weights, recursive-bisection
//     initial partitioning on the coarsest graph, and global greedy k-way
//     boundary refinement during uncoarsening.
//   - ParMetisLike — the parallel variant: index-range prepartitioning
//     (ignoring geometry), block-local heavy-edge matching with
//     locally-heaviest cross-boundary matching, a single initial attempt, a
//     single cheap refinement pass per level, and a relaxed balance bound —
//     reproducing parMetis' larger cuts and its tendency to exceed the 3%
//     imbalance (Table 4/5 report balances around 1.047).
//   - ScotchLike — sequential multilevel recursive bisection (the initpart
//     engine applied to the whole input).
//
// The intent is shape fidelity: KaPPa-Strong < KaPPa-Fast < KaPPa-Minimal ≈
// Scotch < kMetis < parMetis in cut, with the reverse ordering in time.
package baseline

import (
	"fmt"
	"time"

	"repro/internal/coarsen"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/initpart"
	"repro/internal/matching"
	"repro/internal/part"
	"repro/internal/rating"
	"repro/internal/refine"
	"repro/internal/rng"
)

// Tool selects a baseline partitioner.
type Tool int

const (
	// KMetisLike is the sequential direct k-way Metis recipe.
	KMetisLike Tool = iota
	// ParMetisLike is the parallel Metis recipe (faster, worse, laxer balance).
	ParMetisLike
	// ScotchLike is sequential multilevel recursive bisection.
	ScotchLike
)

// String returns the display name used in the result tables.
func (t Tool) String() string {
	switch t {
	case KMetisLike:
		return "kmetis"
	case ParMetisLike:
		return "parmetis"
	case ScotchLike:
		return "scotch"
	default:
		return fmt.Sprintf("baseline.Tool(%d)", int(t))
	}
}

// Result reports one baseline run.
type Result struct {
	Blocks  []int32
	Cut     int64
	Balance float64
	Time    time.Duration
}

// Run partitions g into k blocks with the selected baseline.
func Run(g *graph.Graph, k int, eps float64, tool Tool, seed uint64) Result {
	start := time.Now()
	var blocks []int32
	switch tool {
	case ScotchLike:
		blocks = initpart.Partition(g, k, eps, initpart.EngineScotch, seed)
	case KMetisLike:
		blocks = kmetis(g, k, eps, seed)
	case ParMetisLike:
		blocks = parmetis(g, k, eps, seed)
	default:
		//kappa:allow panicfree the Tool enum is validated where flags are parsed
		panic("baseline: unknown tool")
	}
	p := part.FromBlocks(g, k, eps, blocks)
	return Result{
		Blocks:  blocks,
		Cut:     p.Cut(),
		Balance: p.Imbalance(),
		Time:    time.Since(start),
	}
}

// kmetis: SHEM + weight rating coarsening, pMetis-style initial partition,
// greedy k-way refinement at every level.
func kmetis(g *graph.Graph, k int, eps float64, seed uint64) []int32 {
	r := rng.New(seed)
	h := coarsen.NewHierarchy(g)
	threshold := 30 * k
	if threshold < 60 {
		threshold = 60
	}
	maxPair := 3 * g.TotalNodeWeight() / (2 * int64(threshold))
	if maxPair < 2 {
		maxPair = 2
	}
	for h.Coarsest.NumNodes() > threshold {
		cur := h.Coarsest
		rt := rating.NewRater(rating.Weight, cur)
		m := matching.ComputeBounded(cur, rt, matching.SHEM, r, maxPair)
		if m.Size() == 0 {
			break
		}
		cg, f2c := coarsen.Contract(cur, m)
		if cg.NumNodes() > cur.NumNodes()*49/50 {
			break
		}
		h.Push(cg, f2c)
	}
	block := initpart.Partition(h.Coarsest, k, eps, initpart.EnginePMetis, seed+1)
	p := part.FromBlocks(h.Coarsest, k, eps, block)
	refine.KWayGreedy(p, 3, r)
	for li := h.Depth() - 1; li >= 0; li-- {
		block = h.Project(li, p.Block)
		p = part.FromBlocks(h.Levels[li].Fine, k, eps, block)
		refine.KWayGreedy(p, 3, r)
	}
	if !p.Feasible() {
		refine.Rebalance(p, r)
	}
	return p.Block
}

// parmetis: like kmetis but with the cheap parallel pieces and a relaxed
// balance bound (the real tool optimizes for speed and lets the imbalance
// drift toward ~5%).
func parmetis(g *graph.Graph, k int, eps float64, seed uint64) []int32 {
	r := rng.New(seed)
	relaxedEps := eps + 0.02
	h := coarsen.NewHierarchy(g)
	threshold := 30 * k
	if threshold < 60 {
		threshold = 60
	}
	pes := k
	maxPair := 3 * g.TotalNodeWeight() / (2 * int64(threshold))
	if maxPair < 2 {
		maxPair = 2
	}
	for h.Coarsest.NumNodes() > threshold {
		cur := h.Coarsest
		rt := rating.NewRater(rating.Weight, cur)
		// Index-range prepartition regardless of coordinates (parMetis does
		// not use geometry) and distributed heavy-edge matching: block-local
		// SHEM plus cross-boundary matching of locally heaviest edges.
		blocks := dist.IndexRanges(cur.NumNodes(), pes)
		m := matching.ParallelBounded(cur, rt, matching.SHEM, blocks, pes, seed+uint64(h.Depth()), maxPair)
		if m.Size() == 0 {
			break
		}
		cg, f2c := coarsen.Contract(cur, m)
		if cg.NumNodes() > cur.NumNodes()*49/50 {
			break
		}
		h.Push(cg, f2c)
	}
	block := initpart.Partition(h.Coarsest, k, relaxedEps, initpart.EnginePMetis, seed+1)
	p := part.FromBlocks(h.Coarsest, k, relaxedEps, block)
	refine.KWayGreedy(p, 1, r)
	for li := h.Depth() - 1; li >= 0; li-- {
		block = h.Project(li, p.Block)
		p = part.FromBlocks(h.Levels[li].Fine, k, relaxedEps, block)
		refine.KWayGreedy(p, 1, r)
	}
	if !p.Feasible() {
		refine.Rebalance(p, r)
	}
	return p.Block
}
