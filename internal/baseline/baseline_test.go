package baseline

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/part"
)

func TestAllToolsProduceValidPartitions(t *testing.T) {
	g := gen.RGG(11, 3)
	for _, tool := range []Tool{KMetisLike, ParMetisLike, ScotchLike} {
		for _, k := range []int{2, 4, 8} {
			res := Run(g, k, 0.03, tool, 7)
			p := part.FromBlocks(g, k, 0.03, res.Blocks)
			if err := p.Validate(); err != nil {
				t.Fatalf("%v k=%d: %v", tool, k, err)
			}
			if p.Cut() != res.Cut {
				t.Fatalf("%v k=%d: reported cut %d != actual %d", tool, k, res.Cut, p.Cut())
			}
			if res.Cut == 0 {
				t.Fatalf("%v k=%d: zero cut on connected graph", tool, k)
			}
			// kmetis/scotch respect 3%; parmetis gets the relaxed 5%.
			bound := 0.03 + 1e-9
			if tool == ParMetisLike {
				bound = 0.05 + 1e-9
			}
			lmax := part.ComputeLmax(g, k, bound)
			if p.MaxBlockWeight() > lmax {
				t.Errorf("%v k=%d: balance %0.3f exceeds bound", tool, k, res.Balance)
			}
		}
	}
}

func TestQualityOrderingOnMesh(t *testing.T) {
	// Average over a few seeds: scotch-like <= kmetis-like cut, and the
	// parallel recipe must not beat the sequential one (paper: parMetis is
	// worse than kMetis).
	g := gen.DelaunayX(11, 5)
	var scotch, kmetis, parmetis int64
	for seed := uint64(0); seed < 3; seed++ {
		scotch += Run(g, 8, 0.03, ScotchLike, seed).Cut
		kmetis += Run(g, 8, 0.03, KMetisLike, seed).Cut
		parmetis += Run(g, 8, 0.03, ParMetisLike, seed).Cut
	}
	if parmetis < kmetis {
		t.Logf("note: parmetis-like (%d) beat kmetis-like (%d) on this input", parmetis, kmetis)
	}
	if kmetis*3 < scotch*2 {
		t.Errorf("kmetis-like (%d) implausibly better than scotch-like (%d)", kmetis, scotch)
	}
}

func TestToolStrings(t *testing.T) {
	if KMetisLike.String() != "kmetis" || ParMetisLike.String() != "parmetis" || ScotchLike.String() != "scotch" {
		t.Fatal("tool names wrong")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := gen.Grid2D(20, 20)
	a := Run(g, 4, 0.03, KMetisLike, 11)
	b := Run(g, 4, 0.03, KMetisLike, 11)
	if a.Cut != b.Cut {
		t.Fatal("kmetis-like not deterministic")
	}
}

func BenchmarkKMetisLike(b *testing.B) {
	g := gen.RGG(13, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, 8, 0.03, KMetisLike, uint64(i))
	}
}
