// Package rating implements the edge rating functions of §3.1 of the paper.
//
// A rating function tells the matching algorithm how valuable an edge is for
// contraction. The paper's key observation is that the plain edge weight —
// used by most previous systems — is considerably worse (up to 8.8% on
// average) than ratings that also discourage heavy end nodes, because
// contracting light nodes keeps node weights uniform across the hierarchy.
package rating

import (
	"fmt"

	"repro/internal/graph"
)

// Func identifies one of the paper's edge rating functions.
type Func int

const (
	// Weight rates an edge by ω(e), the classic heavy-edge rating.
	Weight Func = iota
	// Expansion rates ω(e) / (c(u)+c(v)).
	Expansion
	// ExpansionStar rates ω(e) / (c(u)·c(v)).
	ExpansionStar
	// ExpansionStar2 rates ω(e)² / (c(u)·c(v)); the paper's default.
	ExpansionStar2
	// InnerOuter rates ω(e) / (Out(v)+Out(u)−2ω(e)).
	InnerOuter
)

// All lists every rating function; the Walshaw-benchmark runs of §6.3 try
// InnerOuter, ExpansionStar and ExpansionStar2 in turn.
var All = []Func{Weight, Expansion, ExpansionStar, ExpansionStar2, InnerOuter}

// String returns the paper's name for the rating.
func (f Func) String() string {
	switch f {
	case Weight:
		return "weight"
	case Expansion:
		return "expansion"
	case ExpansionStar:
		return "expansion*"
	case ExpansionStar2:
		return "expansion*2"
	case InnerOuter:
		return "innerOuter"
	default:
		return fmt.Sprintf("rating.Func(%d)", int(f))
	}
}

// Rater evaluates a rating function against a fixed graph. The weighted
// degrees Out(v) needed by InnerOuter come from the graph's per-level cache
// (graph.WeightedDegrees): computed at most once per graph — contraction
// even pre-fills it for coarse graphs — instead of re-summed per Rater.
type Rater struct {
	f    Func
	g    *graph.Graph
	wdeg []int64 // only for InnerOuter
}

// NewRater returns a Rater for f on g.
func NewRater(f Func, g *graph.Graph) *Rater {
	r := &Rater{f: f, g: g}
	if f == InnerOuter {
		r.wdeg = g.WeightedDegrees()
	}
	return r
}

// Func returns the rating function this Rater evaluates.
func (r *Rater) Func() Func { return r.f }

// Rate returns the rating of edge {u, v} with weight w. Higher is more
// attractive for contraction.
func (r *Rater) Rate(u, v int32, w int64) float64 {
	switch r.f {
	case Weight:
		return float64(w)
	case Expansion:
		return float64(w) / float64(r.g.NodeWeight(u)+r.g.NodeWeight(v))
	case ExpansionStar:
		return float64(w) / (float64(r.g.NodeWeight(u)) * float64(r.g.NodeWeight(v)))
	case ExpansionStar2:
		return float64(w) * float64(w) / (float64(r.g.NodeWeight(u)) * float64(r.g.NodeWeight(v)))
	case InnerOuter:
		den := r.wdeg[u] + r.wdeg[v] - 2*w
		if den <= 0 {
			// u and v form an isolated pair; contracting it is free.
			return float64(w) * 1e18
		}
		return float64(w) / float64(den)
	default:
		//kappa:allow panicfree the rating Func enum is validated by Config.Validate
		panic("rating: unknown rating function")
	}
}
