package rating

import (
	"testing"

	"repro/internal/graph"
)

// weightedTriangle: nodes 0,1,2 with weights 1,2,4; edges 0-1 w=2, 1-2 w=3,
// 0-2 w=1.
func weightedTriangle() *graph.Graph {
	b := graph.NewBuilder(3)
	b.SetNodeWeight(0, 1)
	b.SetNodeWeight(1, 2)
	b.SetNodeWeight(2, 4)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 3)
	b.AddEdge(0, 2, 1)
	return b.Build()
}

func TestRatingValues(t *testing.T) {
	g := weightedTriangle()
	cases := []struct {
		f    Func
		u, v int32
		w    int64
		want float64
	}{
		{Weight, 0, 1, 2, 2},
		{Expansion, 0, 1, 2, 2.0 / 3},
		{ExpansionStar, 0, 1, 2, 1},
		{ExpansionStar2, 0, 1, 2, 2},
		{ExpansionStar2, 1, 2, 3, 9.0 / 8},
		// Out(0)=3, Out(1)=5 → innerOuter(0,1) = 2/(3+5-4) = 0.5
		{InnerOuter, 0, 1, 2, 0.5},
		// Out(1)=5, Out(2)=4 → innerOuter(1,2) = 3/(5+4-6) = 1
		{InnerOuter, 1, 2, 3, 1},
	}
	for _, c := range cases {
		r := NewRater(c.f, g)
		got := r.Rate(c.u, c.v, c.w)
		if got != c.want {
			t.Errorf("%v(%d,%d) = %v, want %v", c.f, c.u, c.v, got, c.want)
		}
	}
}

func TestInnerOuterIsolatedPair(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1, 5)
	g := b.Build()
	r := NewRater(InnerOuter, g)
	if got := r.Rate(0, 1, 5); got < 1e17 {
		t.Fatalf("isolated pair must rate near-infinite, got %v", got)
	}
}

func TestRatingSymmetry(t *testing.T) {
	g := weightedTriangle()
	for _, f := range All {
		r := NewRater(f, g)
		if r.Rate(0, 1, 2) != r.Rate(1, 0, 2) {
			t.Errorf("%v is not symmetric", f)
		}
	}
}

func TestExpansionPrefersLightNodes(t *testing.T) {
	// Same edge weight; endpoints of different node weight. All expansion
	// variants must prefer the light pair; plain Weight is indifferent.
	b := graph.NewBuilder(4)
	b.SetNodeWeight(0, 1)
	b.SetNodeWeight(1, 1)
	b.SetNodeWeight(2, 10)
	b.SetNodeWeight(3, 10)
	b.AddEdge(0, 1, 5)
	b.AddEdge(2, 3, 5)
	g := b.Build()
	for _, f := range []Func{Expansion, ExpansionStar, ExpansionStar2} {
		r := NewRater(f, g)
		if r.Rate(0, 1, 5) <= r.Rate(2, 3, 5) {
			t.Errorf("%v does not prefer light nodes", f)
		}
	}
	r := NewRater(Weight, g)
	if r.Rate(0, 1, 5) != r.Rate(2, 3, 5) {
		t.Error("Weight should ignore node weights")
	}
}

func TestStrings(t *testing.T) {
	names := map[Func]string{
		Weight: "weight", Expansion: "expansion", ExpansionStar: "expansion*",
		ExpansionStar2: "expansion*2", InnerOuter: "innerOuter",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(f), f.String(), want)
		}
	}
}
