// Package coarsen implements the contraction phase of the multilevel scheme
// (§2, §3): contracting the edges of a matching produces the next-coarser
// graph, and a Hierarchy records the sequence of graphs and node mappings so
// that partitions can be projected back during uncoarsening.
//
// Contract performs the contraction on the shared global graph;
// ContractDistributed performs it PE-locally — every PE contracts the owned
// part of its subgraph and the coarse subgraphs are stitched back together
// through the local↔global id maps and a few ghost-exchange supersteps —
// producing a coarse graph with exactly the same coarse node groups and edge
// weights as a shared-memory contraction of the same matching.
package coarsen

import (
	"repro/internal/graph"
	"repro/internal/matching"
)

// Contract contracts every matched edge of m in g. It returns the coarse
// graph and the mapping fine node → coarse node. Contracting {u,v} forms a
// node x with c(x) = c(u)+c(v); parallel coarse edges are merged by summing
// their weights (§2). Coordinates, when present, are carried over as the
// weighted midpoint of the contracted pair.
func Contract(g *graph.Graph, m matching.Matching) (*graph.Graph, []int32) {
	n := g.NumNodes()
	fine2coarse := make([]int32, n)
	nc := int32(0)
	for v := int32(0); v < int32(n); v++ {
		if u := m[v]; u >= 0 && u < v {
			continue // the smaller endpoint creates the coarse node
		}
		fine2coarse[v] = nc
		nc++
	}
	for v := int32(0); v < int32(n); v++ {
		if u := m[v]; u >= 0 && u < v {
			fine2coarse[v] = fine2coarse[u]
		}
	}

	// Count an upper bound of coarse half-edges to size the arrays, then
	// build coarse adjacency with a scatter array for duplicate merging.
	nwgt := make([]int64, nc)
	for v := int32(0); v < int32(n); v++ {
		nwgt[fine2coarse[v]] += g.NodeWeight(v)
	}
	xadj := make([]int32, nc+1)
	adj := make([]int32, 0, 2*g.NumEdges())
	ewgt := make([]int64, 0, 2*g.NumEdges())

	// members[c] lists the one or two fine nodes of coarse node c.
	memberHead := make([]int32, nc)
	memberNext := make([]int32, n)
	for c := range memberHead {
		memberHead[c] = -1
	}
	for v := int32(n) - 1; v >= 0; v-- {
		c := fine2coarse[v]
		memberNext[v] = memberHead[c]
		memberHead[c] = v
	}

	pos := make([]int32, nc) // scatter: coarse neighbor -> index in current segment, stamped
	stamp := make([]int32, nc)
	for i := range pos {
		stamp[i] = -1
	}
	for c := int32(0); c < nc; c++ {
		segStart := int32(len(adj))
		for v := memberHead[c]; v >= 0; v = memberNext[v] {
			fadj := g.Adj(v)
			fw := g.AdjWeights(v)
			for i, u := range fadj {
				cu := fine2coarse[u]
				if cu == c {
					continue // contracted or internal edge vanishes
				}
				if stamp[cu] == c+1 {
					ewgt[pos[cu]] += fw[i]
				} else {
					stamp[cu] = c + 1
					pos[cu] = int32(len(adj))
					adj = append(adj, cu)
					ewgt = append(ewgt, fw[i])
				}
			}
		}
		_ = segStart
		xadj[c+1] = int32(len(adj))
	}
	cg, err := graph.FromCSR(xadj, adj, ewgt, nwgt)
	if err != nil {
		panic("coarsen: contraction produced invalid graph: " + err.Error())
	}
	if g.HasCoords() {
		fx, fy, fz := g.Coords3()
		cx := make([]float64, nc)
		cy := make([]float64, nc)
		var cz []float64
		if fz != nil {
			cz = make([]float64, nc)
		}
		cnt := make([]float64, nc)
		for v := int32(0); v < int32(n); v++ {
			c := fine2coarse[v]
			cx[c] += fx[v]
			cy[c] += fy[v]
			if fz != nil {
				cz[c] += fz[v]
			}
			cnt[c]++
		}
		for c := int32(0); c < nc; c++ {
			cx[c] /= cnt[c]
			cy[c] /= cnt[c]
			if fz != nil {
				cz[c] /= cnt[c]
			}
		}
		if fz != nil {
			cg.SetCoords3(cx, cy, cz)
		} else {
			cg.SetCoords(cx, cy)
		}
	}
	return cg, fine2coarse
}

// Level is one step of the hierarchy: Fine is the graph before contraction
// and Map sends each node of Fine to its node in the next-coarser graph.
type Level struct {
	Fine *graph.Graph
	Map  []int32
}

// Hierarchy is the stack of contractions performed during coarsening.
// Levels[0].Fine is the input graph; Coarsest is the final graph handed to
// initial partitioning.
type Hierarchy struct {
	Levels   []Level
	Coarsest *graph.Graph
}

// NewHierarchy starts a hierarchy at g.
func NewHierarchy(g *graph.Graph) *Hierarchy {
	return &Hierarchy{Coarsest: g}
}

// Push records a contraction of the current coarsest graph.
func (h *Hierarchy) Push(coarse *graph.Graph, fine2coarse []int32) {
	h.Levels = append(h.Levels, Level{Fine: h.Coarsest, Map: fine2coarse})
	h.Coarsest = coarse
}

// Depth returns the number of contractions recorded.
func (h *Hierarchy) Depth() int { return len(h.Levels) }

// Project lifts a partition of the graph at level li+1 (coarse side of
// Levels[li]) to the fine side: fine node v gets the block of its coarse
// image. li == Depth()-1 corresponds to lifting from the Coarsest graph.
func (h *Hierarchy) Project(li int, coarsePart []int32) []int32 {
	lv := h.Levels[li]
	fine := make([]int32, lv.Fine.NumNodes())
	for v := range fine {
		fine[v] = coarsePart[lv.Map[v]]
	}
	return fine
}
