// Package coarsen implements the contraction phase of the multilevel scheme
// (§2, §3): contracting the edges of a matching produces the next-coarser
// graph, and a Hierarchy records the sequence of graphs and node mappings so
// that partitions can be projected back during uncoarsening.
//
// Contract performs the contraction on the shared global graph;
// ContractDistributed performs it PE-locally — every PE contracts the owned
// part of its subgraph and the coarse subgraphs are stitched back together
// through the local↔global id maps and a few ghost-exchange supersteps —
// producing a coarse graph with exactly the same coarse node groups and edge
// weights as a shared-memory contraction of the same matching.
//
// The shared contraction is the two-pass scheme of §5.2's static-array
// philosophy: a count pass sizes the coarse CSR exactly (prefix sums become
// xadj), then a fill pass writes every coarse half-edge into its final slot,
// merging parallel edges with a per-worker scatter array. Both passes
// process each coarse node independently, so they parallelize over disjoint
// coarse-id ranges with no synchronization beyond two barriers — and because
// every worker handles its coarse nodes in exactly the order the serial loop
// would, the resulting graph is byte-identical for any worker count.
package coarsen

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mem"
)

// Options tunes ContractWith. The zero value reproduces Contract: one
// worker, no buffer reuse.
type Options struct {
	// Workers is the number of goroutines for the count and fill passes;
	// values < 2 run the passes inline. The result is byte-identical for
	// every worker count.
	Workers int
	// Arena supplies the reusable scratch buffers (member lists, scatter
	// arrays); nil falls back to fresh allocations.
	Arena *mem.Arena
}

// Contract contracts every matched edge of m in g. It returns the coarse
// graph and the mapping fine node → coarse node. Contracting {u,v} forms a
// node x with c(x) = c(u)+c(v); parallel coarse edges are merged by summing
// their weights (§2). Coordinates, when present, are carried over as the
// weighted midpoint of the contracted pair.
func Contract(g *graph.Graph, m matching.Matching) (*graph.Graph, []int32) {
	return ContractWith(g, m, Options{})
}

// ContractWith is Contract with explicit worker count and scratch arena; see
// Options.
//
//kappa:hotpath
func ContractWith(g *graph.Graph, m matching.Matching, opt Options) (*graph.Graph, []int32) {
	n := g.NumNodes()
	a := opt.Arena

	// The mapping persists in the Hierarchy, so it is always a fresh
	// allocation; only true temporaries come from the arena.
	//kappa:allow hotalloc the fine→coarse mapping persists in the Hierarchy
	fine2coarse := make([]int32, n)
	nc := int32(0)
	for v := int32(0); v < int32(n); v++ {
		if u := m[v]; u >= 0 && u < v {
			continue // the smaller endpoint creates the coarse node
		}
		fine2coarse[v] = nc
		nc++
	}
	for v := int32(0); v < int32(n); v++ {
		if u := m[v]; u >= 0 && u < v {
			fine2coarse[v] = fine2coarse[u]
		}
	}

	// Coarse node weights (persist with the coarse graph).
	//kappa:allow hotalloc node weights persist with the coarse graph
	nwgt := make([]int64, nc)
	for v := int32(0); v < int32(n); v++ {
		nwgt[fine2coarse[v]] += g.NodeWeight(v)
	}
	var maxNW int64
	for _, w := range nwgt {
		if w > maxNW {
			maxNW = w
		}
	}

	// members[c] lists the one or two fine nodes of coarse node c, in
	// ascending fine order (the order the fill pass must follow).
	memberHead := a.Int32(int(nc))
	memberNext := a.Int32(n)
	for c := range memberHead {
		memberHead[c] = -1
	}
	for v := int32(n) - 1; v >= 0; v-- {
		c := fine2coarse[v]
		memberNext[v] = memberHead[c]
		memberHead[c] = v
	}

	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	if int32(workers) > nc {
		workers = int(nc)
	}
	if workers < 1 {
		workers = 1
	}

	// Split [0, nc) into ranges balanced by the fine degree sum each coarse
	// node drags through the passes (equal id ranges would let one hub-heavy
	// range serialize the level on social graphs).
	bounds := coarseRanges(g, memberHead, memberNext, nc, workers)

	//kappa:allow hotalloc the row index persists as the coarse graph's CSR
	xadj := make([]int32, nc+1) // persists

	// ---- Pass 1: count distinct coarse neighbors per coarse node ----
	// needPos: only the fill pass uses the scatter-position array; the
	// count pass skips that borrow.
	runPass := func(needPos bool, pass func(lo, hi int32, stamp, pos []int32)) {
		worker := func(lo, hi int32) {
			stamp := a.Int32(int(nc))
			var pos []int32
			if needPos {
				pos = a.Int32(int(nc))
			}
			pass(lo, hi, stamp, pos)
			if needPos {
				a.PutInt32(pos)
			}
			a.PutInt32(stamp)
		}
		if workers == 1 {
			worker(0, nc)
			return
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(lo, hi int32) {
				defer wg.Done()
				worker(lo, hi)
			}(bounds[w], bounds[w+1])
		}
		wg.Wait()
	}

	runPass(false, func(lo, hi int32, stamp, _ []int32) {
		clear(stamp) // arena contents are undefined; 0 never matches c+1
		for c := lo; c < hi; c++ {
			cnt := int32(0)
			for v := memberHead[c]; v >= 0; v = memberNext[v] {
				for _, u := range g.Adj(v) {
					cu := fine2coarse[u]
					if cu == c {
						continue // contracted or internal edge vanishes
					}
					if stamp[cu] != c+1 {
						stamp[cu] = c + 1
						cnt++
					}
				}
			}
			xadj[c+1] = cnt
		}
	})
	for c := int32(0); c < nc; c++ {
		xadj[c+1] += xadj[c]
	}

	// Exactly-sized coarse CSR (persists) plus the weighted degrees the fill
	// pass computes for free while merging edge weights.
	//kappa:allow hotalloc exactly-sized CSR arrays persist as the coarse graph
	adj := make([]int32, xadj[nc])
	//kappa:allow hotalloc exactly-sized CSR arrays persist as the coarse graph
	ewgt := make([]int64, xadj[nc])
	//kappa:allow hotalloc the weighted-degree cache persists with the coarse graph
	wdeg := make([]int64, nc)

	// ---- Pass 2: fill each coarse node's segment in first-encounter order ----
	runPass(true, func(lo, hi int32, stamp, pos []int32) {
		clear(stamp)
		for c := lo; c < hi; c++ {
			next := xadj[c]
			for v := memberHead[c]; v >= 0; v = memberNext[v] {
				fadj := g.Adj(v)
				fw := g.AdjWeights(v)
				for i, u := range fadj {
					cu := fine2coarse[u]
					if cu == c {
						continue
					}
					if stamp[cu] == c+1 {
						ewgt[pos[cu]] += fw[i]
					} else {
						stamp[cu] = c + 1
						pos[cu] = next
						adj[next] = cu
						ewgt[next] = fw[i]
						next++
					}
				}
			}
			var s int64
			for _, w := range ewgt[xadj[c]:next] {
				s += w
			}
			wdeg[c] = s
		}
	})

	a.PutInt32(memberHead)
	a.PutInt32(memberNext)

	var totalEW int64
	for _, s := range wdeg {
		totalEW += s
	}
	cg := graph.FromCSRUnchecked(xadj, adj, ewgt, nwgt,
		g.TotalNodeWeight(), totalEW/2, maxNW)
	cg.SetWeightedDegrees(wdeg)

	if g.HasCoords() {
		contractCoords(g, fine2coarse, nc, cg)
	}
	return cg, fine2coarse
}

// coarseRanges returns workers+1 boundaries over [0, nc], balancing the
// summed fine degrees of each range's coarse members.
func coarseRanges(g *graph.Graph, memberHead, memberNext []int32, nc int32, workers int) []int32 {
	bounds := make([]int32, workers+1)
	bounds[workers] = nc
	if workers == 1 {
		return bounds
	}
	totalDeg := 2 * int64(g.NumEdges()) // Σ_v deg(v) in CSR
	var acc int64
	next := 1
	for c := int32(0); c < nc && next < workers; c++ {
		for v := memberHead[c]; v >= 0; v = memberNext[v] {
			acc += int64(g.Degree(v))
		}
		if acc >= totalDeg*int64(next)/int64(workers) {
			bounds[next] = c + 1
			next++
		}
	}
	for ; next < workers; next++ {
		bounds[next] = nc
	}
	return bounds
}

// contractCoords carries coordinates to the coarse graph as per-group means,
// accumulating in ascending fine order per coarse node — the same additions
// in the same order as a serial scan over fine nodes.
func contractCoords(g *graph.Graph, fine2coarse []int32, nc int32, cg *graph.Graph) {
	fx, fy, fz := g.Coords3()
	cx := make([]float64, nc)
	cy := make([]float64, nc)
	var cz []float64
	if fz != nil {
		cz = make([]float64, nc)
	}
	cnt := make([]float64, nc)
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		c := fine2coarse[v]
		cx[c] += fx[v]
		cy[c] += fy[v]
		if fz != nil {
			cz[c] += fz[v]
		}
		cnt[c]++
	}
	for c := int32(0); c < nc; c++ {
		cx[c] /= cnt[c]
		cy[c] /= cnt[c]
		if fz != nil {
			cz[c] /= cnt[c]
		}
	}
	if fz != nil {
		cg.SetCoords3(cx, cy, cz)
	} else {
		cg.SetCoords(cx, cy)
	}
}

// Level is one step of the hierarchy: Fine is the graph before contraction
// and Map sends each node of Fine to its node in the next-coarser graph.
type Level struct {
	Fine *graph.Graph
	Map  []int32
}

// Hierarchy is the stack of contractions performed during coarsening.
// Levels[0].Fine is the input graph; Coarsest is the final graph handed to
// initial partitioning.
type Hierarchy struct {
	Levels   []Level
	Coarsest *graph.Graph
}

// NewHierarchy starts a hierarchy at g.
func NewHierarchy(g *graph.Graph) *Hierarchy {
	return &Hierarchy{Coarsest: g}
}

// Push records a contraction of the current coarsest graph.
func (h *Hierarchy) Push(coarse *graph.Graph, fine2coarse []int32) {
	h.Levels = append(h.Levels, Level{Fine: h.Coarsest, Map: fine2coarse})
	h.Coarsest = coarse
}

// Depth returns the number of contractions recorded.
func (h *Hierarchy) Depth() int { return len(h.Levels) }

// Project lifts a partition of the graph at level li+1 (coarse side of
// Levels[li]) to the fine side: fine node v gets the block of its coarse
// image. li == Depth()-1 corresponds to lifting from the Coarsest graph.
func (h *Hierarchy) Project(li int, coarsePart []int32) []int32 {
	fine := make([]int32, h.Levels[li].Fine.NumNodes())
	h.ProjectInto(li, coarsePart, fine)
	return fine
}

// ProjectInto is Project writing into a caller-provided slice of length
// Levels[li].Fine.NumNodes() — the allocation-free variant the refinement
// phase uses with ping-ponged arena buffers.
//
//kappa:invariant the pipeline sizes the ping-pong buffers from the hierarchy itself
//kappa:hotpath
func (h *Hierarchy) ProjectInto(li int, coarsePart, fine []int32) {
	lv := h.Levels[li]
	if len(fine) != lv.Fine.NumNodes() {
		panic("coarsen: ProjectInto destination has wrong length")
	}
	for v := range fine {
		fine[v] = coarsePart[lv.Map[v]]
	}
}
