package coarsen

import (
	"sync"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/matching"
)

// PEContraction is what one PE contributes to the stitched coarse graph: the
// coarse nodes it owns (weights, coordinates) and its share of the coarse
// edges, all in coarse *global* ids. The fields are exported because the
// value crosses process boundaries in the out-of-process backend
// (internal/wire encodes it; the coordinator stitches the decoded parts).
type PEContraction struct {
	FirstCoarse int32   // global id of this PE's first coarse node
	Weights     []int64 // per owned coarse node, in id order
	CX, CY, CZ  []float64
	EdgeU       []int32 // coarse edge contributions (deterministic order)
	EdgeV       []int32
	EdgeW       []int64
	FineGlobal  []int32 // owned fine nodes (global ids) ...
	FineCoarse  []int32 // ... and their coarse global ids, parallel
}

// ContractDistributed contracts a distributed matching PE-locally: every PE
// contracts the owned part of its subgraph, the PEs agree on a global coarse
// numbering (prefix sum over per-PE coarse-node counts), exchange the coarse
// ids of boundary and cross-matched nodes through ex, and the coarse
// subgraphs are stitched back into one global coarse graph through the
// local↔global id maps — so the existing Hierarchy/uncoarsening machinery
// keeps working unchanged on the result.
//
// The coarse node of a pair matched across a cut is owned by the PE owning
// the endpoint with the smaller global id; each cut edge is contributed to
// the stitched graph by exactly one side (again the smaller-global-id
// endpoint's owner), so coarse edge weights come out identical to a
// shared-memory contraction of the same matching. Returns the coarse graph
// and the fine→coarse node map of the global graph.
func ContractDistributed(g *graph.Graph, sgs []*dist.Subgraph, ms []matching.Matching, ex dist.Transport) (*graph.Graph, []int32) {
	pes := len(sgs)
	parts := make([]*PEContraction, pes)
	var wg sync.WaitGroup
	for pe := 0; pe < pes; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			parts[pe] = ContractSubgraph(sgs[pe], ms[pe], ex, pe)
		}(pe)
	}
	wg.Wait()
	return Stitch(g, parts)
}

// Stitch assembles the per-PE contraction contributions into the next-level
// global coarse graph and the fine→coarse map. Parts must be ordered by PE;
// every per-PE list is deterministic, so the assembled graph is too.
func Stitch(g *graph.Graph, parts []*PEContraction) (*graph.Graph, []int32) {
	total := 0
	for _, p := range parts {
		total += len(p.Weights)
	}
	b := graph.NewBuilder(total)
	for _, p := range parts {
		for i, w := range p.Weights {
			b.SetNodeWeight(p.FirstCoarse+int32(i), w)
		}
		if g.CoordDims() == 3 {
			for i := range p.Weights {
				b.SetCoord3(p.FirstCoarse+int32(i), p.CX[i], p.CY[i], p.CZ[i])
			}
		} else if g.HasCoords() {
			for i := range p.Weights {
				b.SetCoord(p.FirstCoarse+int32(i), p.CX[i], p.CY[i])
			}
		}
		for i := range p.EdgeU {
			b.AddEdge(p.EdgeU[i], p.EdgeV[i], p.EdgeW[i])
		}
	}
	fine2coarse := make([]int32, g.NumNodes())
	for _, p := range parts {
		for i, gv := range p.FineGlobal {
			fine2coarse[gv] = p.FineCoarse[i]
		}
	}
	return b.Build(), fine2coarse
}

// ContractSubgraph is the per-PE side of ContractDistributed: the superstep
// sequence ONE processing element executes to contract its shard. Like
// matching.MatchSubgraph it is exported so an out-of-process worker can run
// exactly the in-process code path against a SocketTransport and ship the
// resulting PEContraction back to the coordinator for Stitch.
func ContractSubgraph(sg *dist.Subgraph, m matching.Matching, ex dist.Transport, pe int) *PEContraction {
	g := sg.Local
	owned := sg.NumOwned
	p := &PEContraction{}

	// Step 1: decide, for every owned node, which coarse node it joins and
	// who owns that coarse node. Owned nodes are stored in ascending global
	// id order, so "smaller local id" and "smaller global id" agree for
	// owned–owned pairs.
	const remote = int32(-2) // coarse id owned by the partner's PE, arrives in step 3
	cLocal := make([]int32, owned)
	nOwn := int32(0)
	for lv := int32(0); lv < int32(owned); lv++ {
		lu := m[lv]
		switch {
		case lu < 0: // unmatched: singleton coarse node
			cLocal[lv] = nOwn
			nOwn++
		case int(lu) < owned: // matched inside the PE
			if lu > lv {
				cLocal[lv] = nOwn
				nOwn++
			} else {
				cLocal[lv] = cLocal[lu]
			}
		default: // matched across a cut: smaller global id owns the pair
			if sg.ToGlobal(lv) < sg.ToGlobal(lu) {
				cLocal[lv] = nOwn
				nOwn++
			} else {
				cLocal[lv] = remote
			}
		}
	}

	// Step 2: prefix-sum the per-PE coarse-node counts for the global
	// numbering.
	countOut := make([][]dist.Msg, ex.PEs())
	for q := range countOut {
		countOut[q] = []dist.Msg{{Kind: dist.MsgCount, W: int64(nOwn)}}
	}
	base := int32(0)
	for i, msg := range ex.Exchange(pe, countOut) {
		if i < pe {
			base += int32(msg.W)
		}
	}
	p.FirstCoarse = base

	// Owned coarse node weights and coordinates: the pair partner — even a
	// ghost one — has its weight and coordinates copied into the subgraph,
	// so both are computable locally.
	p.Weights = make([]int64, nOwn)
	hasCoords := g.HasCoords()
	if hasCoords {
		p.CX = make([]float64, nOwn)
		p.CY = make([]float64, nOwn)
		if g.CoordDims() == 3 {
			p.CZ = make([]float64, nOwn)
		}
	}
	members := make([]int32, nOwn) // member count per owned coarse node
	for lv := int32(0); lv < int32(owned); lv++ {
		c := cLocal[lv]
		if c == remote {
			continue
		}
		addMember(p, g, c, lv, members, hasCoords)
		// A cut pair's ghost member is visible only to the owning side.
		if lu := m[lv]; lu >= 0 && int(lu) >= owned {
			addMember(p, g, c, lu, members, hasCoords)
		}
	}
	for c := int32(0); c < nOwn; c++ {
		if hasCoords && members[c] > 0 {
			p.CX[c] /= float64(members[c])
			p.CY[c] /= float64(members[c])
			if p.CZ != nil {
				p.CZ[c] /= float64(members[c])
			}
		}
	}

	// Step 3: send the coarse global id of every cut-matched pair to the
	// partner's owner, so the non-owning side learns where its node went.
	crossOut := make([][]dist.Msg, ex.PEs())
	for lv := int32(0); lv < int32(owned); lv++ {
		lu := m[lv]
		if lu >= 0 && int(lu) >= owned && cLocal[lv] != remote {
			q := sg.GhostOwner[int(lu)-owned]
			crossOut[q] = append(crossOut[q], dist.Msg{
				Kind: dist.MsgCoarseID, A: sg.ToGlobal(lu), B: base + cLocal[lv],
			})
		}
	}
	cGlobal := make([]int32, owned)
	for lv := range cGlobal {
		if cLocal[lv] == remote {
			cGlobal[lv] = -1
		} else {
			cGlobal[lv] = base + cLocal[lv]
		}
	}
	for _, msg := range ex.Exchange(pe, crossOut) {
		if msg.Kind != dist.MsgCoarseID {
			continue
		}
		if lv, ok := sg.ToLocal(msg.A); ok && int(lv) < owned {
			cGlobal[lv] = msg.B
		}
	}

	// Step 4: publish the coarse id of every boundary node to the PEs that
	// hold it as a ghost, and collect the same for this PE's ghosts.
	bcastOut := make([][]dist.Msg, ex.PEs())
	for lv, peers := range sg.BoundaryPeers() {
		for _, q := range peers {
			bcastOut[q] = append(bcastOut[q], dist.Msg{
				Kind: dist.MsgCoarseID, A: sg.ToGlobal(int32(lv)), B: cGlobal[lv],
			})
		}
	}
	ghostCoarse := make([]int32, sg.NumGhosts())
	for i := range ghostCoarse {
		ghostCoarse[i] = -1
	}
	for _, msg := range ex.Exchange(pe, bcastOut) {
		if msg.Kind != dist.MsgCoarseID {
			continue
		}
		if lu, ok := sg.ToLocal(msg.A); ok && int(lu) >= owned {
			ghostCoarse[int(lu)-owned] = msg.B
		}
	}

	// Step 5: coarse edge contributions. Each fine edge is contributed once,
	// by the owner of its smaller-global-id endpoint; edges internal to a
	// coarse node vanish.
	for lv := int32(0); lv < int32(owned); lv++ {
		gv := sg.ToGlobal(lv)
		adj, ws := g.Adj(lv), g.AdjWeights(lv)
		for i, lu := range adj {
			var cu int32
			if int(lu) < owned {
				if lu < lv {
					continue
				}
				cu = cGlobal[lu]
			} else {
				if sg.ToGlobal(lu) < gv {
					continue
				}
				cu = ghostCoarse[int(lu)-owned]
			}
			if cu == cGlobal[lv] || cu < 0 {
				continue
			}
			p.EdgeU = append(p.EdgeU, cGlobal[lv])
			p.EdgeV = append(p.EdgeV, cu)
			p.EdgeW = append(p.EdgeW, ws[i])
		}
	}

	p.FineGlobal = make([]int32, owned)
	p.FineCoarse = make([]int32, owned)
	for lv := int32(0); lv < int32(owned); lv++ {
		p.FineGlobal[lv] = sg.ToGlobal(lv)
		p.FineCoarse[lv] = cGlobal[lv]
	}
	return p
}

// addMember folds fine node lv into owned coarse node c.
func addMember(p *PEContraction, g *graph.Graph, c, lv int32, members []int32, hasCoords bool) {
	p.Weights[c] += g.NodeWeight(lv)
	if hasCoords {
		x, y, z := g.Coord3(lv)
		p.CX[c] += x
		p.CY[c] += y
		if p.CZ != nil {
			p.CZ[c] += z
		}
	}
	members[c]++
}
