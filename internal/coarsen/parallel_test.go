package coarsen

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mem"
	"repro/internal/rating"
	"repro/internal/rng"
)

// graphsEqual compares the full byte-level structure of two graphs: CSR
// arrays, node weights, aggregates, weighted degrees and coordinates.
func graphsEqual(t *testing.T, name string, want, got *graph.Graph) {
	t.Helper()
	if want.NumNodes() != got.NumNodes() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("%s: size mismatch: (%d,%d) vs (%d,%d)", name,
			want.NumNodes(), want.NumEdges(), got.NumNodes(), got.NumEdges())
	}
	if want.TotalNodeWeight() != got.TotalNodeWeight() ||
		want.TotalEdgeWeight() != got.TotalEdgeWeight() ||
		want.MaxNodeWeight() != got.MaxNodeWeight() {
		t.Fatalf("%s: aggregate mismatch", name)
	}
	for v := int32(0); v < int32(want.NumNodes()); v++ {
		if want.NodeWeight(v) != got.NodeWeight(v) {
			t.Fatalf("%s: node weight of %d differs", name, v)
		}
		if want.WeightedDegrees()[v] != got.WeightedDegrees()[v] {
			t.Fatalf("%s: weighted degree of %d differs", name, v)
		}
		wa, ga := want.Adj(v), got.Adj(v)
		ww, gw := want.AdjWeights(v), got.AdjWeights(v)
		if len(wa) != len(ga) {
			t.Fatalf("%s: degree of %d differs", name, v)
		}
		for i := range wa {
			if wa[i] != ga[i] || ww[i] != gw[i] {
				t.Fatalf("%s: adjacency of %d differs at slot %d (order must match the serial contraction exactly)", name, v, i)
			}
		}
		if want.HasCoords() != got.HasCoords() {
			t.Fatalf("%s: coordinate presence differs", name)
		}
		if want.HasCoords() {
			wx, wy, wz := want.Coord3(v)
			gx, gy, gz := got.Coord3(v)
			if wx != gx || wy != gy || wz != gz {
				t.Fatalf("%s: coordinates of %d differ", name, v)
			}
		}
	}
}

// testGraphs returns instances across families (with and without
// coordinates, uniform and skewed degrees).
func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"grid":     gen.Grid2D(40, 25),
		"grid3d":   gen.Grid3D(10, 9, 8),
		"rgg":      gen.RGG(11, 5),
		"social":   gen.PrefAttach(3000, 5, 6),
		"road":     gen.Road(4000, 5, 7),
		"delaunay": gen.DelaunayX(11, 8),
	}
}

// TestContractParallelMatchesSerial pins the determinism contract of the
// two-pass contraction: for every worker count the coarse graph must be
// byte-identical to the serial contraction — same adjacency order, same
// weights, same coordinates — across two contraction levels.
func TestContractParallelMatchesSerial(t *testing.T) {
	for name, g := range testGraphs() {
		rt := rating.NewRater(rating.ExpansionStar2, g)
		m := matching.Compute(g, rt, matching.GPA, rng.New(42))
		wantG, wantMap := Contract(g, m)
		for _, workers := range []int{2, 3, 4, 7, 64} {
			a := mem.NewArena()
			gotG, gotMap := ContractWith(g, m, Options{Workers: workers, Arena: a})
			graphsEqual(t, name, wantG, gotG)
			for v := range wantMap {
				if wantMap[v] != gotMap[v] {
					t.Fatalf("%s workers=%d: fine2coarse differs at %d", name, workers, v)
				}
			}
			// Second level on the contracted graph, reusing the arena.
			rt2 := rating.NewRater(rating.ExpansionStar2, wantG)
			m2 := matching.Compute(wantG, rt2, matching.GPA, rng.New(43))
			want2, _ := Contract(wantG, m2)
			got2, _ := ContractWith(gotG, m2, Options{Workers: workers, Arena: a})
			graphsEqual(t, name+"/level2", want2, got2)
		}
	}
}

// TestContractArenaReuse runs the same contraction twice on one arena and a
// third time without an arena; all three must agree, and the second run must
// actually reuse buffers.
func TestContractArenaReuse(t *testing.T) {
	g := gen.RGG(12, 9)
	rt := rating.NewRater(rating.ExpansionStar2, g)
	m := matching.Compute(g, rt, matching.GPA, rng.New(1))
	a := mem.NewArena()
	g1, _ := ContractWith(g, m, Options{Arena: a})
	st1 := a.Stats()
	gets1, reused1 := st1.Borrows, st1.Reused
	g2, _ := ContractWith(g, m, Options{Arena: a})
	reused2 := a.Stats().Reused
	g3, _ := Contract(g, m)
	graphsEqual(t, "arena-vs-arena", g1, g2)
	graphsEqual(t, "arena-vs-fresh", g1, g3)
	if gets1 == 0 || reused2 <= reused1 {
		t.Fatalf("arena was not exercised: gets=%d reused=%d->%d", gets1, reused1, reused2)
	}
}

// TestContractUncheckedAggregates cross-checks the aggregates fed to
// FromCSRUnchecked and the emitted weighted degrees against a full
// validation pass.
func TestContractUncheckedAggregates(t *testing.T) {
	g := gen.PrefAttach(2000, 4, 3)
	rt := rating.NewRater(rating.ExpansionStar2, g)
	m := matching.Compute(g, rt, matching.GPA, rng.New(2))
	cg, _ := ContractWith(g, m, Options{Workers: 4, Arena: mem.NewArena()})
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cg.TotalNodeWeight() != g.TotalNodeWeight() {
		t.Fatal("contraction must preserve total node weight")
	}
	var te int64
	for v := int32(0); v < int32(cg.NumNodes()); v++ {
		if cg.WeightedDegrees()[v] != cg.WeightedDegree(v) {
			t.Fatalf("emitted weighted degree of %d is wrong", v)
		}
		te += cg.WeightedDegree(v)
	}
	if cg.TotalEdgeWeight() != te/2 {
		t.Fatal("total edge weight mismatch")
	}
}
