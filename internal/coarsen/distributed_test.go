package coarsen

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/rating"
)

// distContract runs the full distributed coarsening step (extract, match,
// contract, stitch) and returns its products plus the merged global
// matching.
func distContract(t *testing.T, g *graph.Graph, pes int, seed uint64) (*graph.Graph, []int32, matching.Matching) {
	return distContractOver(t, g, dist.NewExchanger(pes), pes, seed)
}

// distContractOver is distContract over an explicit Transport, so the
// equivalence tests can run against any message-passing backend.
func distContractOver(t *testing.T, g *graph.Graph, ex dist.Transport, pes int, seed uint64) (*graph.Graph, []int32, matching.Matching) {
	t.Helper()
	assign := dist.Assign(g, dist.StrategyAuto, pes)
	sgs := dist.ExtractAll(g, assign, pes)
	ms := matching.DistributedBounded(sgs, ex, rating.ExpansionStar2, matching.GPA, seed, 0, true)
	gm := matching.GlobalFromSubgraphs(g.NumNodes(), sgs, ms)
	if err := gm.Validate(g); err != nil {
		t.Fatalf("matching invalid: %v", err)
	}
	cg, f2c := ContractDistributed(g, sgs, ms, ex)
	return cg, f2c, gm
}

// TestContractDistributedMatchesShared stitches the PE-local contractions
// and checks them against a shared-memory contraction of the *same* global
// matching: identical coarse node count, identical member groups, and
// identical coarse edge weights between corresponding groups.
func TestContractDistributedMatchesShared(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		pes  int
	}{
		{"grid", gen.Grid2D(16, 16), 4},
		{"rgg", gen.RGG(9, 5), 5},
		{"road", gen.Road(600, 4, 6), 3},
	} {
		cg, f2c, gm := distContract(t, tc.g, tc.pes, 17)
		sg, sf2c := Contract(tc.g, gm)

		if cg.NumNodes() != sg.NumNodes() {
			t.Fatalf("%s: %d coarse nodes distributed vs %d shared", tc.name, cg.NumNodes(), sg.NumNodes())
		}
		if err := cg.Validate(); err != nil {
			t.Fatalf("%s: stitched graph invalid: %v", tc.name, err)
		}
		if cg.TotalNodeWeight() != tc.g.TotalNodeWeight() {
			t.Fatalf("%s: node weight not conserved: %d vs %d", tc.name, cg.TotalNodeWeight(), tc.g.TotalNodeWeight())
		}

		// The two contractions may number coarse nodes differently; relate
		// them through any fine member node.
		n := tc.g.NumNodes()
		d2s := make([]int32, cg.NumNodes())
		for i := range d2s {
			d2s[i] = -1
		}
		for v := 0; v < n; v++ {
			dc, sc := f2c[v], sf2c[v]
			if d2s[dc] >= 0 && d2s[dc] != sc {
				t.Fatalf("%s: fine node %d splits coarse node %d across %d and %d", tc.name, v, dc, d2s[dc], sc)
			}
			d2s[dc] = sc
		}
		for dc := int32(0); dc < int32(cg.NumNodes()); dc++ {
			sc := d2s[dc]
			if cg.NodeWeight(dc) != sg.NodeWeight(sc) {
				t.Fatalf("%s: coarse node %d weight %d vs shared %d", tc.name, dc, cg.NodeWeight(dc), sg.NodeWeight(sc))
			}
			if cg.Degree(dc) != sg.Degree(sc) {
				t.Fatalf("%s: coarse node %d degree %d vs shared %d", tc.name, dc, cg.Degree(dc), sg.Degree(sc))
			}
			adj, ws := cg.Adj(dc), cg.AdjWeights(dc)
			for i, du := range adj {
				if w := sg.EdgeWeightTo(sc, d2s[du]); w != ws[i] {
					t.Fatalf("%s: coarse edge {%d,%d} weight %d vs shared %d", tc.name, dc, du, ws[i], w)
				}
			}
		}
	}
}

// TestContractDistributedDeterminism reruns the whole distributed level and
// expects byte-identical products.
func TestContractDistributedDeterminism(t *testing.T) {
	g := gen.DelaunayX(9, 4)
	cg1, f2c1, _ := distContract(t, g, 6, 23)
	cg2, f2c2, _ := distContract(t, g, 6, 23)
	if cg1.NumNodes() != cg2.NumNodes() || cg1.NumEdges() != cg2.NumEdges() {
		t.Fatalf("coarse shape differs across runs: %d/%d vs %d/%d",
			cg1.NumNodes(), cg1.NumEdges(), cg2.NumNodes(), cg2.NumEdges())
	}
	for v := range f2c1 {
		if f2c1[v] != f2c2[v] {
			t.Fatalf("fine2coarse differs at node %d: %d vs %d", v, f2c1[v], f2c2[v])
		}
	}
	for v := int32(0); v < int32(cg1.NumNodes()); v++ {
		a1, a2 := cg1.Adj(v), cg2.Adj(v)
		w1, w2 := cg1.AdjWeights(v), cg2.AdjWeights(v)
		if len(a1) != len(a2) {
			t.Fatalf("degree differs at coarse node %d", v)
		}
		for i := range a1 {
			if a1[i] != a2[i] || w1[i] != w2[i] {
				t.Fatalf("adjacency differs at coarse node %d", v)
			}
		}
	}
}

// TestContractDistributedTransportSwap runs the whole distributed level
// over the barrier-based LockstepTransport and expects products
// byte-identical to the channel Exchanger's — distributed coarsening must
// depend only on the Transport contract, not on the Exchanger's machinery.
func TestContractDistributedTransportSwap(t *testing.T) {
	g := gen.DelaunayX(9, 4)
	const pes, seed = 6, 23
	cg1, f2c1, gm1 := distContract(t, g, pes, seed)
	cg2, f2c2, gm2 := distContractOver(t, g, dist.NewLockstepTransport(pes), pes, seed)
	if cg1.NumNodes() != cg2.NumNodes() || cg1.NumEdges() != cg2.NumEdges() {
		t.Fatalf("coarse shape differs across transports: %d/%d vs %d/%d",
			cg1.NumNodes(), cg1.NumEdges(), cg2.NumNodes(), cg2.NumEdges())
	}
	for v := range gm1 {
		if gm1[v] != gm2[v] {
			t.Fatalf("global matching differs at node %d: %d vs %d", v, gm1[v], gm2[v])
		}
	}
	for v := range f2c1 {
		if f2c1[v] != f2c2[v] {
			t.Fatalf("fine2coarse differs at node %d: %d vs %d", v, f2c1[v], f2c2[v])
		}
	}
	for v := int32(0); v < int32(cg1.NumNodes()); v++ {
		a1, a2 := cg1.Adj(v), cg2.Adj(v)
		w1, w2 := cg1.AdjWeights(v), cg2.AdjWeights(v)
		if len(a1) != len(a2) {
			t.Fatalf("degree differs at coarse node %d", v)
		}
		for i := range a1 {
			if a1[i] != a2[i] || w1[i] != w2[i] {
				t.Fatalf("adjacency differs at coarse node %d", v)
			}
		}
	}
}

// TestContractDistributedEmptyPE contracts with an assignment that leaves
// one PE without any nodes; the exchange rounds must not deadlock and the
// stitched result must still be consistent.
func TestContractDistributedEmptyPE(t *testing.T) {
	g := gen.Grid2D(6, 6)
	assign := make([]int32, g.NumNodes())
	for v := range assign {
		assign[v] = int32(v % 2 * 2) // PEs 0 and 2 own everything, PE 1 nothing
	}
	sgs := dist.ExtractAll(g, assign, 3)
	ex := dist.NewExchanger(3)
	ms := matching.DistributedBounded(sgs, ex, rating.ExpansionStar2, matching.GPA, 9, 0, true)
	cg, f2c := ContractDistributed(g, sgs, ms, ex)
	if err := cg.Validate(); err != nil {
		t.Fatalf("stitched graph invalid: %v", err)
	}
	if cg.TotalNodeWeight() != g.TotalNodeWeight() {
		t.Fatal("node weight not conserved")
	}
	for v, c := range f2c {
		if c < 0 || int(c) >= cg.NumNodes() {
			t.Fatalf("fine2coarse[%d] = %d out of range", v, c)
		}
	}
}
