package coarsen

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/rating"
	"repro/internal/rng"
)

func TestContractSimple(t *testing.T) {
	// Path 0-1-2-3 with weights 1,2,3; match {1,2}.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 3, 3)
	g := b.Build()
	m := matching.NewEmpty(4)
	m[1], m[2] = 2, 1
	cg, f2c := Contract(g, m)
	if cg.NumNodes() != 3 || cg.NumEdges() != 2 {
		t.Fatalf("coarse n=%d m=%d", cg.NumNodes(), cg.NumEdges())
	}
	if f2c[1] != f2c[2] {
		t.Fatal("matched nodes mapped to different coarse nodes")
	}
	x := f2c[1]
	if cg.NodeWeight(x) != 2 {
		t.Fatalf("contracted node weight %d, want 2", cg.NodeWeight(x))
	}
	if cg.EdgeWeightTo(f2c[0], x) != 1 || cg.EdgeWeightTo(x, f2c[3]) != 3 {
		t.Fatal("edge weights wrong after contraction")
	}
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestContractMergesParallel(t *testing.T) {
	// Triangle 0-1-2; match {0,1}: edges {0,2} and {1,2} merge.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 5)
	b.AddEdge(0, 2, 2)
	b.AddEdge(1, 2, 3)
	g := b.Build()
	m := matching.NewEmpty(3)
	m[0], m[1] = 1, 0
	cg, f2c := Contract(g, m)
	if cg.NumNodes() != 2 || cg.NumEdges() != 1 {
		t.Fatalf("coarse n=%d m=%d", cg.NumNodes(), cg.NumEdges())
	}
	if w := cg.EdgeWeightTo(f2c[0], f2c[2]); w != 5 {
		t.Fatalf("merged weight %d, want 5", w)
	}
}

func TestContractEmptyMatching(t *testing.T) {
	g := gen.Grid2D(4, 4)
	cg, f2c := Contract(g, matching.NewEmpty(16))
	if cg.NumNodes() != 16 || cg.NumEdges() != g.NumEdges() {
		t.Fatal("empty matching must be identity contraction")
	}
	for v, c := range f2c {
		if int32(v) != c {
			t.Fatal("identity mapping expected")
		}
	}
}

// TestContractInvariants checks the two conservation laws on random graphs:
// node weight is preserved exactly, and edge weight decreases exactly by the
// matching weight.
func TestContractInvariants(t *testing.T) {
	master := rng.New(31)
	f := func(seed uint16) bool {
		r := master.Split(uint64(seed))
		n := 4 + r.Intn(60)
		b := graph.NewBuilder(n)
		for e := 0; e < 3*n; e++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u != v {
				b.AddEdge(u, v, int64(1+r.Intn(9)))
			}
		}
		g := b.Build()
		rt := rating.NewRater(rating.ExpansionStar2, g)
		m := matching.Compute(g, rt, matching.GPA, r)
		cg, f2c := Contract(g, m)
		if cg.Validate() != nil {
			return false
		}
		if cg.TotalNodeWeight() != g.TotalNodeWeight() {
			return false
		}
		if cg.TotalEdgeWeight() != g.TotalEdgeWeight()-m.Weight(g) {
			return false
		}
		if cg.NumNodes() != g.NumNodes()-m.Size() {
			return false
		}
		// Mapping sanity: every coarse id hit, matched pairs coincide.
		for v := 0; v < n; v++ {
			if f2c[v] < 0 || int(f2c[v]) >= cg.NumNodes() {
				return false
			}
			if u := m[v]; u >= 0 && f2c[v] != f2c[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestContractCoords(t *testing.T) {
	g := gen.Grid2D(4, 1) // 4 nodes in a row at x = 0, .25, .5, .75
	m := matching.NewEmpty(4)
	m[0], m[1] = 1, 0
	cg, f2c := Contract(g, m)
	if !cg.HasCoords() {
		t.Fatal("coordinates lost")
	}
	x, _ := cg.Coord(f2c[0])
	if x != 0.125 {
		t.Fatalf("midpoint x = %v, want 0.125", x)
	}
}

func TestHierarchyProjection(t *testing.T) {
	g := gen.Grid2D(8, 8)
	h := NewHierarchy(g)
	r := rng.New(3)
	for h.Coarsest.NumNodes() > 8 {
		rt := rating.NewRater(rating.ExpansionStar2, h.Coarsest)
		m := matching.Compute(h.Coarsest, rt, matching.GPA, r)
		if m.Size() == 0 {
			break
		}
		cg, f2c := Contract(h.Coarsest, m)
		h.Push(cg, f2c)
	}
	if h.Depth() < 2 {
		t.Fatalf("hierarchy too shallow: %d", h.Depth())
	}
	// Assign blocks on the coarsest graph, project all the way down, and
	// check consistency at every level.
	part := make([]int32, h.Coarsest.NumNodes())
	for v := range part {
		part[v] = int32(v % 2)
	}
	for li := h.Depth() - 1; li >= 0; li-- {
		fine := h.Project(li, part)
		for v, c := range h.Levels[li].Map {
			if fine[v] != part[c] {
				t.Fatal("projection broke block assignment")
			}
		}
		part = fine
	}
	if len(part) != g.NumNodes() {
		t.Fatal("final projection has wrong size")
	}
}

func BenchmarkContract(b *testing.B) {
	g := gen.RGG(14, 1)
	rt := rating.NewRater(rating.ExpansionStar2, g)
	m := matching.Compute(g, rt, matching.GPA, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Contract(g, m)
	}
}
