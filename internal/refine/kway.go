package refine

import (
	"sort"

	"repro/internal/part"
	"repro/internal/pq"
	"repro/internal/rng"
)

// KWayGreedy performs rounds of greedy k-way boundary refinement in the
// style of kMetis: boundary nodes are kept in a single global priority queue
// keyed by the best gain over all adjacent blocks; positive-gain feasible
// moves are applied until the queue is exhausted. It returns the total cut
// improvement. This is the *global* local search the paper contrasts with
// its pairwise scheme (§7, §8).
func KWayGreedy(p *part.Partition, rounds int, r *rng.RNG) int64 {
	var total int64
	for round := 0; round < rounds; round++ {
		gained := kwayPass(p, r)
		total += gained
		if gained == 0 {
			break
		}
	}
	return total
}

// bestMove returns the most profitable feasible target block for v and its
// gain (target −1 when v has no foreign neighbors).
func bestMove(p *part.Partition, v int32) (int32, int64) {
	g := p.G
	own := p.Block[v]
	adj := g.Adj(v)
	ws := g.AdjWeights(v)
	var wOwn int64
	conn := make(map[int32]int64, 4)
	for i, u := range adj {
		if bu := p.Block[u]; bu == own {
			wOwn += ws[i]
		} else {
			conn[bu] += ws[i]
		}
	}
	best, bestGain := int32(-1), int64(0)
	first := true
	for b, w := range conn {
		gain := w - wOwn
		if first || gain > bestGain || (gain == bestGain && b < best) {
			best, bestGain = b, gain
			first = false
		}
	}
	return best, bestGain
}

func kwayPass(p *part.Partition, r *rng.RNG) int64 {
	n := p.G.NumNodes()
	q := pq.NewGainQueue(n)
	target := make([]int32, n)
	for _, v := range p.BoundaryNodes() {
		t, gain := bestMove(p, v)
		if t >= 0 {
			target[v] = t
			q.Push(v, gain, uint32(r.Uint64()))
		}
	}
	var total int64
	for !q.Empty() {
		v, _ := q.PopMax()
		// Gains go stale as neighbors move; recompute before applying.
		t, gain := bestMove(p, v)
		if t < 0 || gain <= 0 {
			continue
		}
		w := p.G.NodeWeight(v)
		if p.BlockWeight(t)+w > p.Lmax() {
			continue
		}
		p.Move(v, t)
		total += gain
		for _, u := range p.G.Adj(v) {
			if q.Contains(u) {
				continue
			}
			ut, ugain := bestMove(p, u)
			if ut >= 0 && ugain > 0 {
				target[u] = ut
				q.Push(u, ugain, uint32(r.Uint64()))
			}
		}
	}
	return total
}

// Rebalance moves nodes out of overloaded blocks until the balance
// constraint holds (or no improving move exists). Each pass scans the
// boundary once, collects candidate relocations out of overloaded blocks,
// and applies them in order of decreasing gain while the source remains
// overloaded; a fallback pass relocates arbitrary nodes of still-overloaded
// blocks to the lightest feasible block.
func Rebalance(p *part.Partition, r *rng.RNG) {
	lightest := func() int32 {
		light := int32(0)
		for b := int32(1); b < int32(p.K); b++ {
			if p.BlockWeight(b) < p.BlockWeight(light) {
				light = b
			}
		}
		return light
	}
	type cand struct {
		v    int32
		to   int32
		gain int64
	}
	for pass := 0; pass < 64; pass++ {
		if p.Feasible() {
			return
		}
		var cands []cand
		for _, v := range p.BoundaryNodes() {
			if p.BlockWeight(p.Block[v]) <= p.Lmax() {
				continue
			}
			if t, gain := bestMove(p, v); t >= 0 {
				cands = append(cands, cand{v, t, gain})
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].gain > cands[j].gain })
		moved := false
		for _, c := range cands {
			if p.BlockWeight(p.Block[c.v]) <= p.Lmax() {
				continue // source repaired by earlier moves
			}
			if p.BlockWeight(c.to)+p.G.NodeWeight(c.v) <= p.Lmax() {
				p.Move(c.v, c.to)
				moved = true
			}
		}
		if moved {
			continue
		}
		// Fallback: cut-oblivious relocation to the lightest block. Needed
		// when an overloaded block has no feasible boundary target (e.g. a
		// block holding the whole graph).
		for v := int32(0); v < int32(p.G.NumNodes()); v++ {
			b := p.Block[v]
			if p.BlockWeight(b) <= p.Lmax() {
				continue
			}
			t := lightest()
			if t != b && p.BlockWeight(t)+p.G.NodeWeight(v) <= p.Lmax() {
				p.Move(v, t)
				moved = true
			}
		}
		if !moved {
			return
		}
	}
}
