package refine

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/part"
	"repro/internal/rng"
)

// noisyBisection returns a 2-block partition of a grid with a ragged
// boundary that FM should be able to straighten.
func noisyBisection(g *graph.Graph, r *rng.RNG) *part.Partition {
	n := g.NumNodes()
	block := make([]int32, n)
	for v := 0; v < n; v++ {
		block[v] = int32(2 * v / n)
	}
	// Perturb ~10% of nodes near the middle.
	for i := 0; i < n/10; i++ {
		v := n/2 - n/20 + r.Intn(n/10)
		block[v] = 1 - block[v]
	}
	return part.FromBlocks(g, 2, 0.03, block)
}

func defaultCfg() TwoWayConfig {
	return TwoWayConfig{Strategy: TopGain, Patience: 0.25, BandDepth: 5}
}

func TestRefinePairImprovesCut(t *testing.T) {
	g := gen.Grid2D(16, 16)
	r := rng.New(1)
	p := noisyBisection(g, r)
	before := p.Cut()
	out := RefinePair(p, 0, 1, defaultCfg(), 11, 12)
	after := p.Cut()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Fatalf("refinement worsened cut: %d -> %d", before, after)
	}
	if out.Gain != before-after {
		t.Fatalf("reported gain %d != actual %d", out.Gain, before-after)
	}
	if after == before {
		t.Fatalf("refinement found no improvement on a noisy bisection (cut %d)", before)
	}
}

func TestRefinePairKeepsFeasibility(t *testing.T) {
	master := rng.New(5)
	strategies := []Strategy{TopGain, TopGainMaxLoad, MaxLoad, Alternate}
	f := func(seed uint16) bool {
		r := master.Split(uint64(seed))
		g := gen.Grid2D(10, 10)
		p := noisyBisection(g, r)
		wasFeasible := p.Feasible()
		st := strategies[int(seed)%len(strategies)]
		cfg := TwoWayConfig{Strategy: st, Patience: 0.2, BandDepth: 3}
		RefinePair(p, 0, 1, cfg, uint64(seed), uint64(seed)+1)
		if p.Validate() != nil {
			return false
		}
		// Refinement must never break feasibility that held before.
		return !wasFeasible || p.Feasible()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRefinePairRepairsOverload(t *testing.T) {
	// Start with a heavily overloaded block; the MaxLoad exception must
	// reduce the imbalance.
	g := gen.Grid2D(12, 12)
	n := g.NumNodes()
	block := make([]int32, n)
	for v := 0; v < n; v++ {
		if v >= 3*n/4 {
			block[v] = 1
		}
	}
	p := part.FromBlocks(g, 2, 0.03, block)
	if p.Feasible() {
		t.Fatal("test setup: expected infeasible start")
	}
	imbBefore := p.MaxBlockWeight()
	// A generous band and patience to let the repair happen.
	cfg := TwoWayConfig{Strategy: TopGain, Patience: 1.0, BandDepth: 20}
	for i := 0; i < 10 && !p.Feasible(); i++ {
		RefinePair(p, 0, 1, cfg, uint64(i), uint64(i)+100)
	}
	if p.MaxBlockWeight() >= imbBefore {
		t.Fatalf("overload not reduced: %d -> %d", imbBefore, p.MaxBlockWeight())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRefinePairPerfectStripe(t *testing.T) {
	// An already optimal bisection of a grid must stay optimal.
	g := gen.Grid2D(8, 8)
	block := make([]int32, 64)
	for v := 0; v < 64; v++ {
		block[v] = int32(v / 32)
	}
	p := part.FromBlocks(g, 2, 0.03, block)
	before := p.Cut()
	RefinePair(p, 0, 1, defaultCfg(), 3, 4)
	if p.Cut() > before {
		t.Fatalf("optimal cut worsened: %d -> %d", before, p.Cut())
	}
}

func TestRefinePairOnlyTouchesPair(t *testing.T) {
	g := gen.Grid2D(12, 12)
	n := g.NumNodes()
	block := make([]int32, n)
	for v := 0; v < n; v++ {
		block[v] = int32(4 * v / n)
	}
	p := part.FromBlocks(g, 4, 0.03, block)
	w2, w3 := p.BlockWeight(2), p.BlockWeight(3)
	RefinePair(p, 0, 1, defaultCfg(), 7, 8)
	if p.BlockWeight(2) != w2 || p.BlockWeight(3) != w3 {
		t.Fatal("refining pair (0,1) changed blocks 2/3")
	}
	for v := 0; v < n; v++ {
		if b := p.Block[v]; b == 2 || b == 3 {
			continue
		} else if b != 0 && b != 1 {
			t.Fatal("node moved outside the pair")
		}
	}
}

func TestRefinePairDeterministic(t *testing.T) {
	g := gen.Grid2D(14, 14)
	r := rng.New(9)
	p1 := noisyBisection(g, r)
	p2 := part.FromBlocks(g, 2, 0.03, append([]int32(nil), p1.Block...))
	RefinePair(p1, 0, 1, defaultCfg(), 42, 43)
	RefinePair(p2, 0, 1, defaultCfg(), 42, 43)
	for v := range p1.Block {
		if p1.Block[v] != p2.Block[v] {
			t.Fatal("RefinePair is not deterministic for fixed seeds")
		}
	}
}

func TestBandDepthGrowsBand(t *testing.T) {
	g := gen.Grid2D(20, 20)
	n := g.NumNodes()
	block := make([]int32, n)
	for v := 0; v < n; v++ {
		block[v] = int32(2 * v / n)
	}
	p := part.FromBlocks(g, 2, 0.03, block)
	ws1, ws5 := NewWorkspace(), NewWorkspace()
	ws1.growGlobal(n)
	ws5.growGlobal(n)
	b1 := buildBand(p, ws1, p.Block, 0, 1, 1)
	b5 := buildBand(p, ws5, p.Block, 0, 1, 5)
	if len(b5) <= len(b1) {
		t.Fatalf("band did not grow with depth: %d vs %d", len(b1), len(b5))
	}
	// Depth 1 is exactly the boundary.
	if len(b1) != 40 {
		t.Fatalf("depth-1 band = %d nodes, want 40", len(b1))
	}
	// All band nodes belong to the pair.
	for _, v := range b5 {
		if p.Block[v] != 0 && p.Block[v] != 1 {
			t.Fatal("band contains foreign node")
		}
	}
}

func TestKWayGreedyImproves(t *testing.T) {
	g := gen.Grid2D(16, 16)
	r := rng.New(3)
	n := g.NumNodes()
	block := make([]int32, n)
	for v := 0; v < n; v++ {
		block[v] = int32(r.Intn(4)) // random: terrible cut
	}
	p := part.FromBlocks(g, 4, 0.10, block)
	before := p.Cut()
	gain := KWayGreedy(p, 5, r)
	after := p.Cut()
	if after >= before {
		t.Fatalf("k-way refinement did not improve: %d -> %d", before, after)
	}
	if gain != before-after {
		t.Fatalf("reported gain %d != actual %d", gain, before-after)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKWayGreedyRespectsLmax(t *testing.T) {
	master := rng.New(8)
	f := func(seed uint16) bool {
		r := master.Split(uint64(seed))
		g := gen.RGG(8, uint64(seed))
		n := g.NumNodes()
		block := make([]int32, n)
		for v := 0; v < n; v++ {
			block[v] = int32(v * 4 / n)
		}
		p := part.FromBlocks(g, 4, 0.03, block)
		feasibleBefore := p.Feasible()
		KWayGreedy(p, 3, r)
		if p.Validate() != nil {
			return false
		}
		return !feasibleBefore || p.Feasible()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRebalance(t *testing.T) {
	g := gen.Grid2D(12, 12)
	n := g.NumNodes()
	block := make([]int32, n) // everything in block 0
	p := part.FromBlocks(g, 4, 0.03, block)
	r := rng.New(2)
	for i := 0; i < 50 && !p.Feasible(); i++ {
		Rebalance(p, r)
	}
	if !p.Feasible() {
		t.Fatalf("rebalance failed: max weight %d > Lmax %d", p.MaxBlockWeight(), p.Lmax())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{
		TopGain: "TopGain", TopGainMaxLoad: "TopGainMaxLoad",
		MaxLoad: "MaxLoad", Alternate: "Alternate",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("String(%d) = %q", int(s), s.String())
		}
	}
}

func BenchmarkRefinePair(b *testing.B) {
	g := gen.RGG(13, 1)
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		p := noisyBisection(g, r)
		RefinePair(p, 0, 1, defaultCfg(), uint64(i), uint64(i)+1)
	}
}
