// Package refine implements the refinement phase of §5: band-limited
// two-way FM local search between pairs of blocks (the paper's parallel
// refinement unit), the queue selection strategies of §5.2 (TopGain,
// TopGainMaxLoad, MaxLoad, Alternate), and the greedy k-way refinement and
// rebalancing used by the Metis-style baselines.
//
// Pair searches run against a Workspace holding the band arrays and the two
// gain queues; reusing one Workspace across the pairs, levels and global
// iterations a goroutine processes makes the inner loop allocation-free
// (see RefinePairViewWS). Results are byte-identical with fresh and reused
// workspaces.
package refine

import (
	"fmt"
	"sync/atomic"

	"repro/internal/part"
	"repro/internal/pq"
	"repro/internal/rng"
)

// viewGet and viewSet access the shared block-membership view atomically.
// During parallel refinement every pair owns the entries of its two blocks:
// it is the only writer, and concurrent readers from other pairs only test
// membership against *their* blocks, for which any value in {a, b} of the
// writing pair is equivalent. Atomics make this access pattern well defined
// under the Go memory model.
func viewGet(view []int32, v int32) int32 { return atomic.LoadInt32(&view[v]) }

func viewSet(view []int32, v, b int32) { atomic.StoreInt32(&view[v], b) }

// Strategy selects which of the two FM priority queues yields the next move.
type Strategy int

const (
	// TopGain uses the queue promising the larger gain, falling back to
	// MaxLoad when a block is overloaded. The paper's default: ~3.2% better
	// than MaxLoad.
	TopGain Strategy = iota
	// TopGainMaxLoad is TopGain with ties broken toward the heavier block.
	TopGainMaxLoad
	// MaxLoad always moves a node out of the heavier block.
	MaxLoad
	// Alternate alternates between the two blocks (the original FM rule).
	Alternate
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case TopGain:
		return "TopGain"
	case TopGainMaxLoad:
		return "TopGainMaxLoad"
	case MaxLoad:
		return "MaxLoad"
	case Alternate:
		return "Alternate"
	default:
		return fmt.Sprintf("refine.Strategy(%d)", int(s))
	}
}

// TwoWayConfig controls one pairwise local search.
type TwoWayConfig struct {
	Strategy  Strategy
	Patience  float64 // α: abort after α·min(|A|,|B|) fruitless moves (on the band)
	BandDepth int     // BFS depth from the boundary (Table 2: 1 / 5 / 20)
}

// Workspace owns the reusable storage of pairwise FM searches: the
// global-size band membership and local-id tables, the band-size side/move
// arrays, the two gain queues, the queue-seeding permutation, and the move
// logs of the two seeded runs. One goroutine reuses one Workspace across
// every pair it refines, on every level and global iteration; the arrays
// grow to the finest graph once and stay there. A Workspace must not be
// shared between concurrent searches.
type Workspace struct {
	inBand  []bool  // global-size; all false between searches
	localID []int32 // global-size; valid only where inBand

	band   []int32
	side   []byte
	moved  []bool
	qa, qb pq.GainQueue
	perm   []int
	movesA []int32
	movesB []int32
}

// NewWorkspace returns an empty workspace; it grows lazily to the graphs it
// refines.
func NewWorkspace() *Workspace { return &Workspace{} }

// growGlobal sizes the global-node-indexed tables for a graph of n nodes.
// New inBand cells are zero (false) by construction; recycled cells were
// cleaned by the previous search's release.
func (ws *Workspace) growGlobal(n int) {
	if cap(ws.inBand) < n {
		ws.inBand = make([]bool, n)
		ws.localID = make([]int32, n)
	}
	ws.inBand = ws.inBand[:n]
	ws.localID = ws.localID[:n]
}

// pairSearch is the working state of one two-way FM search. It never mutates
// the partition: both seeded searches of a block pair run on copies and the
// better result is applied afterwards (§5: "the better partitioning of the
// two blocks is adopted").
type pairSearch struct {
	p      *part.Partition
	ws     *Workspace
	view   []int32 // block membership snapshot for reads outside the pair
	a, b   int32
	band   []int32 // global ids of band nodes
	side   []byte  // 0 = in a, 1 = in b (current, local copy)
	moved  []bool
	qa, qb *pq.GainQueue
	cA, cB int64
	cut    int64 // current cut between a and b
}

// result describes the outcome of one seeded search: the move prefix to
// apply and the value it achieves.
type result struct {
	moves     []int32 // local ids, in order; prefix up to bestLen is applied
	bestLen   int
	imbalance int64
	cut       int64
}

// buildBand collects the nodes of blocks a and b within depth BFS steps of
// the a↔b boundary (§5.2, Figure 2: only a small band around the boundary is
// exchanged and searched) into ws.band, marking them in ws.inBand. Block
// membership is read from view, which may be a snapshot taken before
// concurrent pair refinements started; entries for blocks a and b are only
// ever written by this pair's owner, so the snapshot is exact where it
// matters. The BFS frontier of each depth is the band segment appended
// during the previous depth, so no separate frontier storage is needed.
//
//kappa:hotpath
func buildBand(p *part.Partition, ws *Workspace, view []int32, a, b int32, depth int) []int32 {
	g := p.G
	inBand := ws.inBand
	band := ws.band[:0]
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		bv := viewGet(view, v)
		if bv != a && bv != b {
			continue
		}
		other := a
		if bv == a {
			other = b
		}
		for _, u := range g.Adj(v) {
			if viewGet(view, u) == other {
				//kappa:allow hotalloc amortized growth of the reusable workspace band
				band = append(band, v)
				inBand[v] = true
				break
			}
		}
	}
	frontLo, frontHi := 0, len(band)
	for d := 1; d < depth; d++ {
		for fi := frontLo; fi < frontHi; fi++ {
			v := band[fi]
			bv := viewGet(view, v)
			for _, u := range g.Adj(v) {
				if viewGet(view, u) == bv && !inBand[u] {
					inBand[u] = true
					//kappa:allow hotalloc amortized growth of the reusable workspace band
					band = append(band, u)
				}
			}
		}
		if len(band) == frontHi {
			break
		}
		frontLo, frontHi = frontHi, len(band)
	}
	ws.band = band
	return band
}

func newPairSearch(p *part.Partition, ws *Workspace, view []int32, a, b int32, cfg TwoWayConfig) *pairSearch {
	depth := cfg.BandDepth
	if depth < 1 {
		depth = 1
	}
	ws.growGlobal(p.G.NumNodes())
	band := buildBand(p, ws, view, a, b, depth)
	if cap(ws.side) < len(band) {
		ws.side = make([]byte, len(band))
		ws.moved = make([]bool, len(band))
	}
	ws.side = ws.side[:len(band)]
	ws.moved = ws.moved[:len(band)]
	s := &pairSearch{
		p: p, ws: ws, view: view, a: a, b: b,
		band:  band,
		side:  ws.side,
		moved: ws.moved,
		cA:    p.BlockWeight(a),
		cB:    p.BlockWeight(b),
	}
	for li, v := range band {
		ws.localID[v] = int32(li)
		s.moved[li] = false
		if viewGet(view, v) == b {
			s.side[li] = 1
		} else {
			s.side[li] = 0
		}
	}
	// The pair cut counts every a↔b edge once (from the a side). Both
	// endpoints of a cut edge are boundary nodes, hence in the band.
	g := p.G
	for li, v := range band {
		if s.side[li] != 0 {
			continue
		}
		for i, u := range g.Adj(v) {
			if viewGet(view, u) == b {
				s.cut += g.AdjWeights(v)[i]
			}
		}
	}
	return s
}

// release cleans the workspace's global tables for the next search.
func (s *pairSearch) release() {
	inBand := s.ws.inBand
	for _, v := range s.band {
		inBand[v] = false
	}
}

// gain computes the current gain of moving band node li to the other block:
// w(v→other) − w(v→own), counting only edges inside the pair (edges to third
// blocks stay cut either way).
func (s *pairSearch) gain(li int32) int64 {
	v := s.band[li]
	g := s.p.G
	adj := g.Adj(v)
	ws := g.AdjWeights(v)
	inBand, localID := s.ws.inBand, s.ws.localID
	var wOwn, wOther int64
	for i, u := range adj {
		var uSide byte
		if inBand[u] {
			uSide = s.side[localID[u]]
		} else {
			switch viewGet(s.view, u) {
			case s.a:
				uSide = 0
			case s.b:
				uSide = 1
			default:
				continue
			}
		}
		if uSide == s.side[li] {
			wOwn += ws[i]
		} else {
			wOther += ws[i]
		}
	}
	return wOther - wOwn
}

func (s *pairSearch) imbalance() int64 {
	lmax := s.p.Lmax()
	im := int64(0)
	if d := s.cA - lmax; d > im {
		im = d
	}
	if d := s.cB - lmax; d > im {
		im = d
	}
	return im
}

// run executes one seeded FM search and returns the best prefix found,
// logging moves into the moves buffer (whose possibly-regrown backing array
// is returned via result.moves). It restores s.side/s.moved/s.cA/s.cB/s.cut
// before returning so the search can be repeated with another seed.
func (s *pairSearch) run(cfg TwoWayConfig, r *rng.RNG, moves []int32) result {
	n := len(s.band)
	ws := s.ws
	ws.qa.Reset(n)
	ws.qb.Reset(n)
	s.qa, s.qb = &ws.qa, &ws.qb
	// "The queues are initialized in random order with the nodes at the
	// partition boundary" — we seed them with the whole band (depth-1 bands
	// are exactly the boundary).
	if cap(ws.perm) < n {
		ws.perm = make([]int, n)
	}
	perm := ws.perm[:n]
	r.PermInto(perm)
	var sizeA, sizeB int
	for _, li := range perm {
		l := int32(li)
		if s.side[l] == 0 {
			s.qa.Push(l, s.gain(l), uint32(r.Uint64()))
			sizeA++
		} else {
			s.qb.Push(l, s.gain(l), uint32(r.Uint64()))
			sizeB++
		}
	}
	minSide := sizeA
	if sizeB < minSide {
		minSide = sizeB
	}
	patienceLimit := int(cfg.Patience * float64(minSide))
	if patienceLimit < 1 {
		patienceLimit = 1
	}

	res := result{moves: moves[:0], imbalance: s.imbalance(), cut: s.cut}
	startCut := res.cut
	startCA, startCB := s.cA, s.cB
	fruitless := 0
	alternateNext := byte(0)

	for !s.qa.Empty() || !s.qb.Empty() {
		q := s.chooseQueue(cfg.Strategy, alternateNext, r)
		alternateNext = 1 - alternateNext
		if q == nil {
			break
		}
		li, g := q.PopMax()
		v := s.band[li]
		w := s.p.G.NodeWeight(v)
		// Feasibility: a move may enter the target only if it stays under
		// Lmax, or if it strictly reduces an overload of the source.
		var from, to *int64
		if s.side[li] == 0 {
			from, to = &s.cA, &s.cB
		} else {
			from, to = &s.cB, &s.cA
		}
		if *to+w > s.p.Lmax() && !(*from > s.p.Lmax() && *to+w < *from) {
			continue // discard: infeasible move
		}
		// Execute the move on the local state.
		*from -= w
		*to += w
		s.side[li] = 1 - s.side[li]
		s.moved[li] = true
		s.cut -= g
		res.moves = append(res.moves, li)
		// Update queued neighbors: +2ω for neighbors left behind, −2ω for
		// neighbors in the block v joined.
		adj := s.p.G.Adj(v)
		wts := s.p.G.AdjWeights(v)
		inBand, localID := ws.inBand, ws.localID
		for i, u := range adj {
			if !inBand[u] {
				continue
			}
			ul := localID[u]
			if s.moved[ul] {
				continue
			}
			delta := 2 * wts[i]
			if s.side[ul] == s.side[li] {
				delta = -delta
			}
			s.qa.AdjustBy(ul, delta)
			s.qb.AdjustBy(ul, delta)
		}
		// Track the lexicographically best (imbalance, cut) state.
		imb := s.imbalance()
		if imb < res.imbalance || (imb == res.imbalance && s.cut < res.cut) {
			res.imbalance, res.cut = imb, s.cut
			res.bestLen = len(res.moves)
			fruitless = 0
		} else {
			fruitless++
			if fruitless > patienceLimit {
				break
			}
		}
	}

	// Restore local state for a potential second seeded run.
	for _, li := range res.moves {
		s.side[li] = 1 - s.side[li]
		s.moved[li] = false
	}
	s.cA, s.cB = startCA, startCB
	s.cut = startCut
	return res
}

// chooseQueue implements the queue selection strategies of §5.2.
func (s *pairSearch) chooseQueue(st Strategy, alternateNext byte, r *rng.RNG) *pq.GainQueue {
	qa, qb := s.qa, s.qb
	if qa.Empty() && qb.Empty() {
		return nil
	}
	if qa.Empty() {
		return qb
	}
	if qb.Empty() {
		return qa
	}
	heavier := qa
	if s.cB > s.cA || (s.cA == s.cB && r.Bool()) {
		heavier = qb
	}
	switch st {
	case MaxLoad:
		return heavier
	case Alternate:
		if alternateNext == 0 {
			return qa
		}
		return qb
	case TopGain, TopGainMaxLoad:
		// Overload exception: without resolving to MaxLoad in an overloaded
		// situation the balance constraint cannot be met (§5.2).
		if s.cA > s.p.Lmax() || s.cB > s.p.Lmax() {
			return heavier
		}
		_, ga := qa.Max()
		_, gb := qb.Max()
		if ga > gb {
			return qa
		}
		if gb > ga {
			return qb
		}
		if st == TopGainMaxLoad {
			return heavier
		}
		if r.Bool() {
			return qa
		}
		return qb
	default:
		//kappa:allow panicfree the strategy enum is internal to the refiner and exhaustive
		panic("refine: unknown strategy")
	}
}

// RefinePairOutcome reports what a pairwise refinement achieved.
type RefinePairOutcome struct {
	Gain     int64 // cut decrease between the pair (can be negative only if imbalance improved)
	Moves    int
	BandSize int
}

// RefinePair refines the partition between blocks a and b with two
// independently seeded FM searches, adopting the better result (§5). It
// mutates p only by applying the winning move prefix.
func RefinePair(p *part.Partition, a, b int32, cfg TwoWayConfig, seedA, seedB uint64) RefinePairOutcome {
	return RefinePairView(p, p.Block, a, b, cfg, seedA, seedB)
}

// RefinePairView is RefinePair with an explicit block-membership view for
// reads. During parallel refinement, disjoint pairs run concurrently; each
// goroutine passes a snapshot of the block array taken before the round so
// that reads of *foreign* blocks never race with other pairs' writes. For
// nodes of blocks a and b the snapshot is exact, because only this pair may
// move them.
func RefinePairView(p *part.Partition, view []int32, a, b int32, cfg TwoWayConfig, seedA, seedB uint64) RefinePairOutcome {
	return RefinePairViewWS(NewWorkspace(), p, view, a, b, cfg, seedA, seedB)
}

// RefinePairViewWS is RefinePairView running against a reusable Workspace —
// the allocation-free form the pipeline uses, obtaining workspaces from a
// per-run pool. The outcome is byte-identical to a fresh workspace.
func RefinePairViewWS(ws *Workspace, p *part.Partition, view []int32, a, b int32, cfg TwoWayConfig, seedA, seedB uint64) RefinePairOutcome {
	s := newPairSearch(p, ws, view, a, b, cfg)
	if len(s.band) == 0 {
		s.release()
		return RefinePairOutcome{}
	}
	r1 := s.run(cfg, rng.New(seedA), ws.movesA)
	ws.movesA = r1.moves
	r2 := s.run(cfg, rng.New(seedB), ws.movesB)
	ws.movesB = r2.moves
	best := r1
	if r2.imbalance < best.imbalance || (r2.imbalance == best.imbalance && r2.cut < best.cut) {
		best = r2
	}
	startCut := s.cut
	// Apply the winning prefix to the real partition.
	for i := 0; i < best.bestLen; i++ {
		li := best.moves[i]
		v := s.band[li]
		to := s.b
		if s.side[li] == 1 { // side arrays were restored: side is the ORIGINAL side
			to = s.a
		}
		// A node may appear once in the move list; its original side tells
		// us the direction.
		p.Move(v, to)
		if &s.view[0] != &p.Block[0] {
			viewSet(s.view, v, to) // keep the caller's snapshot exact for this pair
		}
		s.side[li] = 1 - s.side[li]
	}
	out := RefinePairOutcome{
		Gain:     startCut - best.cut,
		Moves:    best.bestLen,
		BandSize: len(s.band),
	}
	s.release()
	return out
}
