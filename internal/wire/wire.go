// Package wire is the versioned binary codec layer of the out-of-process
// backend: it encodes everything that crosses a process boundary — dist.Msg
// batches (the superstep traffic of distributed coarsening), subgraph shards
// (what the coordinator ships each worker), per-PE contraction results (what
// comes back), and partition vectors — into compact, deterministic,
// allocation-conscious byte strings.
//
// Layering: graph serialization is delegated to internal/graphio (the binary
// graph format is a first-class artifact, not a protocol detail), and the
// Msg batch encoding is exposed through MsgCodec, which implements
// dist.BatchCodec so the socket transport and hub stay codec-agnostic.
//
// Compatibility: every control connection starts with a version handshake
// (Assign.Version = Version); peers with mismatched versions refuse to talk
// rather than misparse. Encodings are pure functions of their values, so
// equal inputs produce equal bytes on every platform (varints + IEEE-754
// bits, no host endianness, no maps iterated).
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Version is the wire-protocol version, negotiated in the control
// handshake. Bump it whenever any frame or payload encoding changes.
// Version 2 added the fault-tolerance frames (heartbeat, level-aborted,
// reassign) and the heartbeat/timeout announcement in Assign.
const Version = 2

// Control-frame kinds (see WriteFrame/ReadFrame).
const (
	// KindAssign is the coordinator's reply to a control hello: the
	// worker's PE assignment and the run configuration (AppendAssign).
	KindAssign byte = 1
	// KindJob carries one contraction-level job: level parameters plus the
	// worker's subgraph shard (AppendJob).
	KindJob byte = 2
	// KindResult carries a worker's level result: matching size and its
	// PE-local contraction (AppendResult).
	KindResult byte = 3
	// KindDone ends a session; its payload is the final partition vector
	// (possibly empty when the run failed).
	KindDone byte = 4
	// KindHeartbeat is an empty liveness frame, flowing both ways on the
	// control connection: the coordinator's heartbeats keep workers from
	// timing out during long coordinator-local phases (initial partitioning,
	// refinement), the workers' heartbeats refresh the coordinator's
	// per-worker read deadline. Receivers skip it wherever a frame is read.
	KindHeartbeat byte = 5
	// KindLevelAborted is a worker's non-result answer to a Job: the PE's
	// kernel died on a transport failure (typically because some OTHER
	// worker crashed and collapsed the superstep barrier). Sending an
	// explicit frame instead of closing the connection keeps the control
	// stream frame-aligned, so the coordinator can reuse it for the retry
	// (AppendLevelAborted).
	KindLevelAborted byte = 6
	// KindReassign tells a live worker the full set of PEs it now hosts —
	// the orphaned shards of a dead worker moved onto it. The worker
	// re-dials one transport connection per hosted PE before the level is
	// retried (AppendReassign).
	KindReassign byte = 7
)

// appendUvarint/readUvarint are the package's primitive: everything integer
// goes over the wire as a uvarint (zigzag for signed values).
func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func readUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wire: truncated varint")
	}
	return v, data[n:], nil
}

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

func readZigzag(data []byte) (int64, []byte, error) {
	u, rest, err := readUvarint(data)
	if err != nil {
		return 0, nil, err
	}
	return int64(u>>1) ^ -int64(u&1), rest, nil
}

// appendInt32s encodes a length-prefixed []int32 (zigzag per element).
func appendInt32s(dst []byte, xs []int32) []byte {
	dst = appendUvarint(dst, uint64(len(xs)))
	for _, x := range xs {
		dst = appendZigzag(dst, int64(x))
	}
	return dst
}

func readInt32s(data []byte) ([]int32, []byte, error) {
	n, data, err := readUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, data, nil
	}
	// A varint takes at least one byte: cheap bound against allocation bombs.
	if n > uint64(len(data)) {
		return nil, nil, fmt.Errorf("wire: %d elements declared, %d bytes left", n, len(data))
	}
	xs := make([]int32, n)
	for i := range xs {
		var v int64
		v, data, err = readZigzag(data)
		if err != nil {
			return nil, nil, err
		}
		if v < math.MinInt32 || v > math.MaxInt32 {
			return nil, nil, fmt.Errorf("wire: value %d overflows int32", v)
		}
		xs[i] = int32(v)
	}
	return xs, data, nil
}

// appendInt64s encodes a length-prefixed []int64 (zigzag per element).
func appendInt64s(dst []byte, xs []int64) []byte {
	dst = appendUvarint(dst, uint64(len(xs)))
	for _, x := range xs {
		dst = appendZigzag(dst, x)
	}
	return dst
}

func readInt64s(data []byte) ([]int64, []byte, error) {
	n, data, err := readUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, data, nil
	}
	if n > uint64(len(data)) {
		return nil, nil, fmt.Errorf("wire: %d elements declared, %d bytes left", n, len(data))
	}
	xs := make([]int64, n)
	for i := range xs {
		xs[i], data, err = readZigzag(data)
		if err != nil {
			return nil, nil, err
		}
	}
	return xs, data, nil
}

// appendFloat encodes one float64 as 8 little-endian IEEE-754 bytes.
func appendFloat(dst []byte, x float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
}

func readFloat(data []byte) (float64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("wire: truncated float")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(data[:8])), data[8:], nil
}

// appendFloats encodes a length-prefixed []float64 as IEEE-754 bits; a nil
// slice stays nil through a round trip (length 0 vs marker).
func appendFloats(dst []byte, xs []float64) []byte {
	if xs == nil {
		return appendUvarint(dst, 0)
	}
	dst = appendUvarint(dst, uint64(len(xs))+1)
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}

func readFloats(data []byte) ([]float64, []byte, error) {
	n1, data, err := readUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if n1 == 0 {
		return nil, data, nil
	}
	n := n1 - 1
	// Divide instead of multiplying: n*8 could wrap uint64 and sneak a huge
	// length past the check into make().
	if n > uint64(len(data))/8 {
		return nil, nil, fmt.Errorf("wire: %d floats declared, %d bytes left", n, len(data))
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
		data = data[8:]
	}
	return xs, data, nil
}
