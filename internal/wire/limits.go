package wire

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrLimit is the sentinel wrapped by every decode-budget rejection:
// errors.Is(err, wire.ErrLimit) distinguishes "the peer declared more than
// this process is willing to allocate" from truncation or corruption.
var ErrLimit = errors.New("wire: declared size exceeds decode budget")

// LimitError reports a length-prefixed quantity whose declared size exceeds
// the configured decode budget. Rejecting the declaration before allocating
// is the point: a hostile or corrupt peer can write a five-byte varint
// announcing a multi-gigabyte frame, and the decoder must answer with an
// error, not with an attempted allocation.
type LimitError struct {
	What     string // what was declared: "frame", ...
	Declared uint64 // the size the input announced
	Limit    uint64 // the budget in force
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("wire: declared %s size %d exceeds decode budget %d", e.What, e.Declared, e.Limit)
}

// Unwrap makes errors.Is(err, ErrLimit) hold for every LimitError.
func (e *LimitError) Unwrap() error { return ErrLimit }

// DefaultMaxFrame is the control-frame payload budget in force until
// SetMaxFrame overrides it. One frame carries at most one subgraph shard or
// partition vector, so a gigabyte is far beyond any honest peer.
const DefaultMaxFrame = 1 << 30

// maxFrameBytes is the configurable frame budget (atomic: decoders run on
// many goroutines; configuration is a startup-time act). Zero means "the
// default", so the package needs no init-time store.
var maxFrameBytes atomic.Uint64

// MaxFrame returns the control-frame payload budget in force.
func MaxFrame() uint64 {
	if n := maxFrameBytes.Load(); n != 0 {
		return n
	}
	return DefaultMaxFrame
}

// SetMaxFrame sets the control-frame payload budget; 0 restores
// DefaultMaxFrame. Call it at process startup (kappa serve/worker expose it
// as -max-frame), before any connection is served.
func SetMaxFrame(n uint64) { maxFrameBytes.Store(n) }
