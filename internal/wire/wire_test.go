package wire

import (
	"bufio"
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/coarsen"
	"repro/internal/dist"
	"repro/internal/gen"
)

func TestMsgBatchRoundTrip(t *testing.T) {
	msgs := []dist.Msg{
		{Kind: dist.MsgGhostState, A: 17, R: 2.5},
		{Kind: dist.MsgGhostState, A: -1, W: 1},
		{Kind: dist.MsgProposal, A: 1 << 30, B: -(1 << 30), R: math.Pi},
		{Kind: dist.MsgCoarseID, A: 5, B: 9},
		{Kind: dist.MsgCount, W: -12345678901234},
		{Kind: dist.MsgFlag, W: 1},
		{Kind: dist.MsgFlag},
	}
	var c MsgCodec
	enc := c.AppendBatch(nil, msgs)
	got, err := c.DecodeBatch(enc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(msgs, got) {
		t.Fatalf("round trip changed batch:\n%v\n%v", msgs, got)
	}

	// The batch contract: concatenated encodings decode as one batch.
	enc2 := c.AppendBatch(append([]byte(nil), enc...), msgs)
	got2, err := c.DecodeBatch(enc2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 2*len(msgs) {
		t.Fatalf("concatenated batches decoded to %d messages, want %d", len(got2), 2*len(msgs))
	}

	// Truncations error, never panic.
	for cut := 1; cut < len(enc); cut++ {
		if _, err := c.DecodeBatch(enc[:cut], nil); err == nil {
			// A cut can land exactly on a message boundary; that decodes
			// cleanly to a shorter batch, which is fine.
			if dec, _ := c.DecodeBatch(enc[:cut], nil); len(dec) >= len(msgs) {
				t.Fatalf("truncation at %d decoded all messages", cut)
			}
		}
	}
}

func TestSubgraphRoundTrip(t *testing.T) {
	g := gen.Grid3D(6, 5, 4)
	assign := dist.Assign(g, dist.StrategyRCB, 3)
	for _, sg := range dist.ExtractAll(g, assign, 3) {
		enc, err := AppendSubgraph(nil, sg)
		if err != nil {
			t.Fatal(err)
		}
		got, rest, err := DecodeSubgraph(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes", len(rest))
		}
		if got.PE != sg.PE || got.NumOwned != sg.NumOwned {
			t.Fatalf("PE/owned changed: %d/%d -> %d/%d", sg.PE, sg.NumOwned, got.PE, got.NumOwned)
		}
		if !reflect.DeepEqual(got.LocalToGlobal, sg.LocalToGlobal) ||
			!reflect.DeepEqual(got.GhostOwner, sg.GhostOwner) {
			t.Fatal("id maps changed")
		}
		if got.Local.NumNodes() != sg.Local.NumNodes() || got.Local.NumEdges() != sg.Local.NumEdges() {
			t.Fatal("local graph size changed")
		}
		for v := int32(0); v < int32(sg.Local.NumNodes()); v++ {
			if !reflect.DeepEqual(got.Local.Adj(v), sg.Local.Adj(v)) ||
				!reflect.DeepEqual(got.Local.AdjWeights(v), sg.Local.AdjWeights(v)) {
				t.Fatalf("adjacency of %d changed", v)
			}
		}
		// The rebuilt global→local index answers like the original.
		for lv, gv := range sg.LocalToGlobal {
			back, ok := got.ToLocal(gv)
			if !ok || back != int32(lv) {
				t.Fatalf("ToLocal(%d) = %d, %v", gv, back, ok)
			}
		}
	}
}

func TestContractionRoundTrip(t *testing.T) {
	p := &coarsen.PEContraction{
		FirstCoarse: 42,
		Weights:     []int64{3, 1, 9},
		CX:          []float64{0.5, 1.5, 2.5},
		CY:          []float64{-1, 0, 1},
		EdgeU:       []int32{42, 43},
		EdgeV:       []int32{7, 8},
		EdgeW:       []int64{2, 11},
		FineGlobal:  []int32{10, 11, 12, 13},
		FineCoarse:  []int32{42, 42, 43, 44},
	}
	enc := AppendContraction(nil, p)
	got, rest, err := DecodeContraction(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip changed contraction:\n%+v\n%+v", p, got)
	}
	// CZ must stay nil (2D), not become empty-but-non-nil.
	if got.CZ != nil {
		t.Fatal("nil CZ became non-nil")
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	blocks := []int32{0, 1, 2, 1, 0, 7, 3}
	enc := AppendPartition(nil, blocks)
	got, rest, err := DecodePartition(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || !reflect.DeepEqual(blocks, got) {
		t.Fatalf("round trip changed partition: %v -> %v", blocks, got)
	}
}

func TestAssignJobResultRoundTrip(t *testing.T) {
	a := Assign{Version: Version, PE: 1, PEs: 4, Rating: 3, Matcher: 1, Boundary: true,
		HeartbeatMillis: 250, TimeoutMillis: 5000}
	gota, err := DecodeAssign(AppendAssign(nil, a))
	if err != nil {
		t.Fatal(err)
	}
	if gota != a {
		t.Fatalf("assign changed: %+v -> %+v", a, gota)
	}

	g := gen.Grid2D(8, 8)
	sg := dist.Extract(g, dist.Assign(g, dist.StrategyRanges, 2), 1)
	j := Job{Level: 3, Seed: 0xdeadbeef, MaxPair: 17, Shard: sg}
	enc, err := AppendJob(nil, j)
	if err != nil {
		t.Fatal(err)
	}
	gotj, err := DecodeJob(enc)
	if err != nil {
		t.Fatal(err)
	}
	if gotj.Level != 3 || gotj.Seed != 0xdeadbeef || gotj.MaxPair != 17 || gotj.Shard.NumOwned != sg.NumOwned {
		t.Fatalf("job changed: %+v", gotj)
	}

	r := Result{PE: 2, Matched: 9, MatchNanos: 1e6, ContractNanos: 2e6,
		Part: &coarsen.PEContraction{FirstCoarse: 1, Weights: []int64{2}, FineGlobal: []int32{0}, FineCoarse: []int32{1}}}
	gotr, err := DecodeResult(AppendResult(nil, r))
	if err != nil {
		t.Fatal(err)
	}
	if gotr.PE != 2 || gotr.Matched != 9 || gotr.MatchNanos != 1e6 || !reflect.DeepEqual(gotr.Part, r.Part) {
		t.Fatalf("result changed: %+v", gotr)
	}

	empty := Result{PE: 0, Matched: 0}
	gote, err := DecodeResult(AppendResult(nil, empty))
	if err != nil {
		t.Fatal(err)
	}
	if gote.Part != nil {
		t.Fatal("nil part became non-nil")
	}
}

func TestFaultFramesRoundTrip(t *testing.T) {
	la := LevelAborted{PE: 3, Level: 7}
	gotla, err := DecodeLevelAborted(AppendLevelAborted(nil, la))
	if err != nil {
		t.Fatal(err)
	}
	if gotla != la {
		t.Fatalf("level-aborted changed: %+v -> %+v", la, gotla)
	}
	if _, err := DecodeLevelAborted(nil); err == nil {
		t.Fatal("accepted empty level-aborted")
	}

	pes := []int32{0, 2, 5}
	gotpes, err := DecodeReassign(AppendReassign(nil, pes))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pes, gotpes) {
		t.Fatalf("reassign changed: %v -> %v", pes, gotpes)
	}
	if _, err := DecodeReassign([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}); err == nil {
		t.Fatal("accepted huge reassign count")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, KindJob, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, KindDone, nil); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&buf)
	kind, payload, err := ReadFrame(br)
	if err != nil || kind != KindJob || string(payload) != "payload" {
		t.Fatalf("frame 1: kind %d payload %q err %v", kind, payload, err)
	}
	kind, payload, err = ReadFrame(br)
	if err != nil || kind != KindDone || len(payload) != 0 {
		t.Fatalf("frame 2: kind %d payload %q err %v", kind, payload, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	// Corrupt inputs error instead of panicking or over-allocating.
	if _, _, err := readInt32s([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}); err == nil {
		t.Fatal("accepted huge element count")
	}
	if _, _, err := DecodeSubgraph([]byte{1, 2, 3}); err == nil {
		t.Fatal("accepted garbage shard")
	}
	if _, err := DecodeAssign(nil); err == nil {
		t.Fatal("accepted empty assign")
	}
	if _, err := DecodeJob([]byte{5}); err == nil {
		t.Fatal("accepted truncated job")
	}
	if _, err := DecodeResult([]byte{1}); err == nil {
		t.Fatal("accepted truncated result")
	}
}

// TestDecodeAssignV1 pins cross-version decoding: a version-1 assignment
// ends after the boundary flag (the timing fields arrived in v2), and must
// decode cleanly with zero timing so the worker's version check — not a
// confusing decoder error — reports the mismatch. A payload truncated
// between the two timing fields is still corrupt.
func TestDecodeAssignV1(t *testing.T) {
	var v1 []byte
	for _, v := range []uint64{1, 0, 2, 0, 0, 1} { // version, PE, PEs, rating, matcher, boundary
		v1 = appendUvarint(v1, v)
	}
	a, err := DecodeAssign(v1)
	if err != nil {
		t.Fatalf("v1 assignment failed to decode: %v", err)
	}
	if a.Version != 1 || a.PEs != 2 || !a.Boundary {
		t.Fatalf("v1 fields did not survive: %+v", a)
	}
	if a.HeartbeatMillis != 0 || a.TimeoutMillis != 0 {
		t.Fatalf("absent timing fields decoded non-zero: %+v", a)
	}
	if _, err := DecodeAssign(appendUvarint(v1, 20)); err == nil {
		t.Fatal("accepted an assignment truncated between the timing fields")
	}
}
