package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// adversarialFrame builds a frame header declaring n payload bytes without
// carrying them — the attack the budget exists for.
func adversarialFrame(n uint64) []byte {
	var head [1 + binary.MaxVarintLen64]byte
	head[0] = 'X'
	return head[:1+binary.PutUvarint(head[1:], n)]
}

func TestReadFrameRejectsOverBudgetDeclaration(t *testing.T) {
	SetMaxFrame(1 << 10)
	t.Cleanup(func() { SetMaxFrame(0) })

	// A five-byte header declaring far beyond the budget must come back as
	// a LimitError before any allocation is attempted.
	r := bufio.NewReader(bytes.NewReader(adversarialFrame(1 << 40)))
	_, _, err := ReadFrame(r)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("ReadFrame(declared 2^40) err = %v, want ErrLimit", err)
	}
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err %v is not a *LimitError", err)
	}
	if le.What != "frame" || le.Declared != 1<<40 || le.Limit != 1<<10 {
		t.Fatalf("LimitError = %+v, want frame/2^40/2^10", le)
	}
	if !strings.Contains(le.Error(), "decode budget") {
		t.Fatalf("error text %q does not mention the budget", le.Error())
	}
}

func TestReadFrameBudgetBoundary(t *testing.T) {
	SetMaxFrame(8)
	t.Cleanup(func() { SetMaxFrame(0) })

	// Exactly at the budget: accepted.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 'K', make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := ReadFrame(bufio.NewReader(&buf))
	if err != nil || kind != 'K' || len(payload) != 8 {
		t.Fatalf("frame at budget: kind=%c len=%d err=%v", kind, len(payload), err)
	}

	// One past the budget: rejected even though the payload is really there.
	buf.Reset()
	if err := WriteFrame(&buf, 'K', make([]byte, 9)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFrame(bufio.NewReader(&buf)); !errors.Is(err, ErrLimit) {
		t.Fatalf("frame over budget: err = %v, want ErrLimit", err)
	}
}

func TestMaxFrameDefaultAndRestore(t *testing.T) {
	if got := MaxFrame(); got != DefaultMaxFrame {
		t.Fatalf("MaxFrame() = %d, want default %d", got, DefaultMaxFrame)
	}
	SetMaxFrame(42)
	if got := MaxFrame(); got != 42 {
		t.Fatalf("MaxFrame() after Set(42) = %d", got)
	}
	SetMaxFrame(0)
	if got := MaxFrame(); got != DefaultMaxFrame {
		t.Fatalf("MaxFrame() after Set(0) = %d, want default", got)
	}
}

func TestReadFrameTruncatedUnderBudget(t *testing.T) {
	// A truncated under-budget frame stays an io error, not a LimitError:
	// the two failure classes must not blur.
	r := bufio.NewReader(bytes.NewReader(adversarialFrame(64)))
	_, _, err := ReadFrame(r)
	if err == nil || errors.Is(err, ErrLimit) {
		t.Fatalf("truncated frame err = %v, want unexpected-EOF io error", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame err = %v, want io.ErrUnexpectedEOF", err)
	}
}
