package wire

import (
	"bytes"
	"fmt"

	"repro/internal/coarsen"
	"repro/internal/dist"
	"repro/internal/graphio"
)

// AppendSubgraph encodes one PE's subgraph shard: the local graph (as a
// graphio binary artifact — the same format graph files use on disk), the
// owned-node count, and the id maps. This is what the coordinator ships each
// worker per contraction level.
func AppendSubgraph(dst []byte, sg *dist.Subgraph) ([]byte, error) {
	dst = appendZigzag(dst, int64(sg.PE))
	dst = appendUvarint(dst, uint64(sg.NumOwned))
	dst = appendInt32s(dst, sg.LocalToGlobal)
	dst = appendInt32s(dst, sg.GhostOwner)
	var buf bytes.Buffer
	if err := graphio.WriteBinary(&buf, sg.Local); err != nil {
		return nil, fmt.Errorf("wire: encoding shard graph: %w", err)
	}
	dst = appendUvarint(dst, uint64(buf.Len()))
	return append(dst, buf.Bytes()...), nil
}

// DecodeSubgraph decodes a shard encoded by AppendSubgraph and rebuilds the
// global→local index; rest is the data following the shard.
func DecodeSubgraph(data []byte) (sg *dist.Subgraph, rest []byte, err error) {
	pe, data, err := readZigzag(data)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: shard PE: %w", err)
	}
	owned64, data, err := readUvarint(data)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: shard owned count: %w", err)
	}
	l2g, data, err := readInt32s(data)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: shard id map: %w", err)
	}
	ghostOwner, data, err := readInt32s(data)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: shard ghost owners: %w", err)
	}
	glen, data, err := readUvarint(data)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: shard graph length: %w", err)
	}
	if glen > uint64(len(data)) {
		return nil, nil, fmt.Errorf("wire: shard graph of %d bytes, %d left", glen, len(data))
	}
	local, err := graphio.ReadBinary(bytes.NewReader(data[:glen]))
	if err != nil {
		return nil, nil, fmt.Errorf("wire: shard graph: %w", err)
	}
	if owned64 > uint64(local.NumNodes()) {
		return nil, nil, fmt.Errorf("wire: shard owns %d of %d nodes", owned64, local.NumNodes())
	}
	sg, err = dist.NewSubgraph(int32(pe), local, int(owned64), l2g, ghostOwner)
	if err != nil {
		return nil, nil, err
	}
	return sg, data[glen:], nil
}

// AppendContraction encodes a worker's PE-local contraction result.
func AppendContraction(dst []byte, p *coarsen.PEContraction) []byte {
	dst = appendZigzag(dst, int64(p.FirstCoarse))
	dst = appendInt64s(dst, p.Weights)
	dst = appendFloats(dst, p.CX)
	dst = appendFloats(dst, p.CY)
	dst = appendFloats(dst, p.CZ)
	dst = appendInt32s(dst, p.EdgeU)
	dst = appendInt32s(dst, p.EdgeV)
	dst = appendInt64s(dst, p.EdgeW)
	dst = appendInt32s(dst, p.FineGlobal)
	dst = appendInt32s(dst, p.FineCoarse)
	return dst
}

// DecodeContraction decodes a PEContraction; rest is the trailing data.
func DecodeContraction(data []byte) (p *coarsen.PEContraction, rest []byte, err error) {
	p = &coarsen.PEContraction{}
	var first int64
	wrap := func(what string, err error) error {
		return fmt.Errorf("wire: contraction %s: %w", what, err)
	}
	if first, data, err = readZigzag(data); err != nil {
		return nil, nil, wrap("first coarse id", err)
	}
	p.FirstCoarse = int32(first)
	if p.Weights, data, err = readInt64s(data); err != nil {
		return nil, nil, wrap("weights", err)
	}
	if p.CX, data, err = readFloats(data); err != nil {
		return nil, nil, wrap("x coords", err)
	}
	if p.CY, data, err = readFloats(data); err != nil {
		return nil, nil, wrap("y coords", err)
	}
	if p.CZ, data, err = readFloats(data); err != nil {
		return nil, nil, wrap("z coords", err)
	}
	if p.EdgeU, data, err = readInt32s(data); err != nil {
		return nil, nil, wrap("edge sources", err)
	}
	if p.EdgeV, data, err = readInt32s(data); err != nil {
		return nil, nil, wrap("edge targets", err)
	}
	if p.EdgeW, data, err = readInt64s(data); err != nil {
		return nil, nil, wrap("edge weights", err)
	}
	if p.FineGlobal, data, err = readInt32s(data); err != nil {
		return nil, nil, wrap("fine ids", err)
	}
	if p.FineCoarse, data, err = readInt32s(data); err != nil {
		return nil, nil, wrap("fine→coarse map", err)
	}
	return p, data, nil
}

// AppendPartition encodes a partition vector (block of every node). Blocks
// are non-negative and small, so plain uvarints are compact.
func AppendPartition(dst []byte, blocks []int32) []byte {
	dst = appendUvarint(dst, uint64(len(blocks)))
	for _, b := range blocks {
		dst = appendZigzag(dst, int64(b))
	}
	return dst
}

// DecodePartition decodes a partition vector; rest is the trailing data.
func DecodePartition(data []byte) (blocks []int32, rest []byte, err error) {
	return readInt32s(data)
}

// Assign is the coordinator's reply to a worker's control hello: the
// worker's PE, the size of the system, the configuration of the distributed
// matching kernel, the protocol version (refuse on mismatch), and the
// fault-tolerance timing contract — the coordinator's heartbeat interval and
// the worker timeout it enforces, both in milliseconds (zero = disabled).
// Workers derive their own deadlines from these announcements, so one flag
// on the coordinator configures the whole system consistently.
type Assign struct {
	Version  int
	PE       int
	PEs      int
	Rating   int // rating.Func
	Matcher  int // matching.Algorithm
	Boundary bool
	//kappa:since 2
	HeartbeatMillis int // coordinator → worker heartbeat interval
	//kappa:since 2
	TimeoutMillis int // deadline the coordinator applies to this worker
}

// AppendAssign encodes an Assign payload.
func AppendAssign(dst []byte, a Assign) []byte {
	dst = appendUvarint(dst, uint64(a.Version))
	dst = appendUvarint(dst, uint64(a.PE))
	dst = appendUvarint(dst, uint64(a.PEs))
	dst = appendUvarint(dst, uint64(a.Rating))
	dst = appendUvarint(dst, uint64(a.Matcher))
	b := uint64(0)
	if a.Boundary {
		b = 1
	}
	dst = appendUvarint(dst, b)
	dst = appendUvarint(dst, uint64(a.HeartbeatMillis))
	return appendUvarint(dst, uint64(a.TimeoutMillis))
}

// DecodeAssign decodes an Assign payload.
func DecodeAssign(data []byte) (Assign, error) {
	var a Assign
	fields := []*int{&a.Version, &a.PE, &a.PEs, &a.Rating, &a.Matcher}
	for i, f := range fields {
		v, rest, err := readUvarint(data)
		if err != nil {
			return Assign{}, fmt.Errorf("wire: assign field %d: %w", i, err)
		}
		if v > 1<<31 {
			return Assign{}, fmt.Errorf("wire: assign field %d out of range", i)
		}
		*f = int(v)
		data = rest
	}
	v, data, err := readUvarint(data)
	if err != nil {
		return Assign{}, fmt.Errorf("wire: assign boundary flag: %w", err)
	}
	a.Boundary = v != 0
	// The timing fields were added in version 2. A payload that ends after
	// the boundary flag is a version-1 assignment: decode it with zero
	// timing so the caller's version check can report the mismatch cleanly
	// instead of this decoder failing on the absent fields.
	timing := []*int{&a.HeartbeatMillis, &a.TimeoutMillis}
	for i, f := range timing {
		if len(data) == 0 && i == 0 {
			return a, nil
		}
		v, rest, err := readUvarint(data)
		if err != nil {
			return Assign{}, fmt.Errorf("wire: assign timing field %d: %w", i, err)
		}
		if v > 1<<31 {
			return Assign{}, fmt.Errorf("wire: assign timing field %d out of range", i)
		}
		*f = int(v)
		data = rest
	}
	return a, nil
}

// LevelAborted is a worker's non-result answer to one PE's Job: the kernel
// aborted on a transport failure before producing a contraction.
type LevelAborted struct {
	PE    int
	Level int
}

// AppendLevelAborted encodes a LevelAborted payload.
func AppendLevelAborted(dst []byte, la LevelAborted) []byte {
	dst = appendUvarint(dst, uint64(la.PE))
	return appendUvarint(dst, uint64(la.Level))
}

// DecodeLevelAborted decodes a LevelAborted payload.
func DecodeLevelAborted(data []byte) (LevelAborted, error) {
	pe, data, err := readUvarint(data)
	if err != nil {
		return LevelAborted{}, fmt.Errorf("wire: level-aborted PE: %w", err)
	}
	level, _, err := readUvarint(data)
	if err != nil {
		return LevelAborted{}, fmt.Errorf("wire: level-aborted level: %w", err)
	}
	if pe > 1<<31 || level > 1<<31 {
		return LevelAborted{}, fmt.Errorf("wire: level-aborted fields out of range")
	}
	return LevelAborted{PE: int(pe), Level: int(level)}, nil
}

// AppendReassign encodes a Reassign payload: the complete PE set the
// receiving worker hosts from now on.
func AppendReassign(dst []byte, pes []int32) []byte {
	return appendInt32s(dst, pes)
}

// DecodeReassign decodes a Reassign payload.
func DecodeReassign(data []byte) ([]int32, error) {
	pes, _, err := readInt32s(data)
	if err != nil {
		return nil, fmt.Errorf("wire: reassign PE set: %w", err)
	}
	return pes, nil
}

// Job is one contraction-level work order: the level's derived seed, the
// pair-weight bound, and the worker's shard.
type Job struct {
	Level   int
	Seed    uint64
	MaxPair int64
	Shard   *dist.Subgraph
}

// AppendJobHeader encodes the Job fields that precede the shard: the level,
// the level seed, and the pair-weight bound. A complete Job payload is this
// header followed by AppendSubgraph bytes — callers that already hold a
// shard's encoded bytes (the on-disk store keeps exactly that encoding)
// splice them after the header instead of decoding and re-encoding the
// subgraph. AppendJob routes through this helper, so the two paths cannot
// drift.
func AppendJobHeader(dst []byte, level int, seed uint64, maxPair int64) []byte {
	dst = appendUvarint(dst, uint64(level))
	dst = appendUvarint(dst, seed)
	return appendZigzag(dst, maxPair)
}

// AppendJob encodes a Job payload.
func AppendJob(dst []byte, j Job) ([]byte, error) {
	dst = AppendJobHeader(dst, j.Level, j.Seed, j.MaxPair)
	return AppendSubgraph(dst, j.Shard)
}

// DecodeJob decodes a Job payload.
func DecodeJob(data []byte) (Job, error) {
	var j Job
	level, data, err := readUvarint(data)
	if err != nil {
		return Job{}, fmt.Errorf("wire: job level: %w", err)
	}
	j.Level = int(level)
	if j.Seed, data, err = readUvarint(data); err != nil {
		return Job{}, fmt.Errorf("wire: job seed: %w", err)
	}
	if j.MaxPair, data, err = readZigzag(data); err != nil {
		return Job{}, fmt.Errorf("wire: job pair bound: %w", err)
	}
	if j.Shard, _, err = DecodeSubgraph(data); err != nil {
		return Job{}, err
	}
	return j, nil
}

// Result is a worker's answer to a Job: how many of its owned nodes matched,
// the kernel wall-clock times, and — when any PE matched — its contraction
// contribution.
type Result struct {
	PE            int
	Matched       int
	MatchNanos    int64
	ContractNanos int64
	Part          *coarsen.PEContraction // nil when the level's matching was empty
}

// AppendResult encodes a Result payload.
func AppendResult(dst []byte, r Result) []byte {
	dst = appendUvarint(dst, uint64(r.PE))
	dst = appendUvarint(dst, uint64(r.Matched))
	dst = appendZigzag(dst, r.MatchNanos)
	dst = appendZigzag(dst, r.ContractNanos)
	if r.Part == nil {
		return appendUvarint(dst, 0)
	}
	dst = appendUvarint(dst, 1)
	return AppendContraction(dst, r.Part)
}

// DecodeResult decodes a Result payload.
func DecodeResult(data []byte) (Result, error) {
	var r Result
	pe, data, err := readUvarint(data)
	if err != nil {
		return Result{}, fmt.Errorf("wire: result PE: %w", err)
	}
	r.PE = int(pe)
	matched, data, err := readUvarint(data)
	if err != nil {
		return Result{}, fmt.Errorf("wire: result matched count: %w", err)
	}
	r.Matched = int(matched)
	if r.MatchNanos, data, err = readZigzag(data); err != nil {
		return Result{}, fmt.Errorf("wire: result match time: %w", err)
	}
	if r.ContractNanos, data, err = readZigzag(data); err != nil {
		return Result{}, fmt.Errorf("wire: result contract time: %w", err)
	}
	has, data, err := readUvarint(data)
	if err != nil {
		return Result{}, fmt.Errorf("wire: result part flag: %w", err)
	}
	if has != 0 {
		if r.Part, _, err = DecodeContraction(data); err != nil {
			return Result{}, err
		}
	}
	return r, nil
}
