package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// WriteFrame writes one control frame: a kind byte, a uvarint payload
// length, and the payload. Control connections (coordinator ↔ worker) are a
// sequence of such frames after the dist socket hello.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	var head [1 + binary.MaxVarintLen64]byte
	head[0] = kind
	n := 1 + binary.PutUvarint(head[1:], uint64(len(payload)))
	if _, err := w.Write(head[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one control frame. The payload buffer is freshly allocated
// per call (control frames are rare — one per level, not per superstep), so
// the declared length is checked against the decode budget (SetMaxFrame)
// before the allocation: an over-budget declaration returns a *LimitError
// without touching the allocator.
func ReadFrame(r *bufio.Reader) (kind byte, payload []byte, err error) {
	kind, err = r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, fmt.Errorf("wire: frame length: %w", unexpectEOF(err))
	}
	if limit := MaxFrame(); n > limit {
		return 0, nil, &LimitError{What: "frame", Declared: n, Limit: limit}
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: frame payload: %w", unexpectEOF(err))
	}
	return kind, payload, nil
}

// unexpectEOF upgrades a bare io.EOF inside a frame to io.ErrUnexpectedEOF.
func unexpectEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
