package wire

import (
	"fmt"

	"repro/internal/dist"
)

// MsgCodec is the versioned wire encoding of dist.Msg batches; it implements
// dist.BatchCodec, so it plugs straight into dist.SocketTransport. A batch
// encodes as the plain concatenation of its messages (the contract that lets
// the hub route bytes without decoding), and one message encodes as
//
//	tag byte:  Kind (low 7 bits) | 0x80 when R is present
//	A, B, W:   zigzag uvarints
//	R:         8 little-endian IEEE-754 bytes, only when the tag says so
//
// Skipping R for the (common) R == 0 messages — coarse-id broadcasts, count
// and flag rounds — keeps superstep frames small without a schema.
type MsgCodec struct{}

var _ dist.BatchCodec = MsgCodec{}

// msgHasR flags a non-zero R payload in the tag byte.
const msgHasR = 0x80

// AppendBatch appends the encoding of every message to dst.
func (MsgCodec) AppendBatch(dst []byte, msgs []dist.Msg) []byte {
	for _, m := range msgs {
		tag := byte(m.Kind)
		if tag >= msgHasR {
			// MsgKind is a small enum; reserving the top bit is safe until
			// someone defines 128 kinds, which this guard turns into a loud
			// failure instead of silent corruption.
			//kappa:allow panicfree encode-side enum-width guard; unreachable until MsgKind outgrows 7 bits
			panic(fmt.Sprintf("wire: MsgKind %d collides with the R flag", m.Kind))
		}
		if m.R != 0 {
			tag |= msgHasR
		}
		dst = append(dst, tag)
		dst = appendZigzag(dst, int64(m.A))
		dst = appendZigzag(dst, int64(m.B))
		dst = appendZigzag(dst, m.W)
		if m.R != 0 {
			dst = appendFloat(dst, m.R)
		}
	}
	return dst
}

// DecodeBatch appends every message encoded in data to into.
func (MsgCodec) DecodeBatch(data []byte, into []dist.Msg) ([]dist.Msg, error) {
	for len(data) > 0 {
		tag := data[0]
		data = data[1:]
		var m dist.Msg
		m.Kind = dist.MsgKind(tag &^ msgHasR)
		var a, b int64
		var err error
		if a, data, err = readZigzag(data); err != nil {
			return nil, fmt.Errorf("wire: msg field A: %w", err)
		}
		if b, data, err = readZigzag(data); err != nil {
			return nil, fmt.Errorf("wire: msg field B: %w", err)
		}
		if a < -1<<31 || a >= 1<<31 || b < -1<<31 || b >= 1<<31 {
			return nil, fmt.Errorf("wire: msg ids (%d, %d) overflow int32", a, b)
		}
		m.A, m.B = int32(a), int32(b)
		if m.W, data, err = readZigzag(data); err != nil {
			return nil, fmt.Errorf("wire: msg field W: %w", err)
		}
		if tag&msgHasR != 0 {
			if m.R, data, err = readFloat(data); err != nil {
				return nil, fmt.Errorf("wire: msg field R: %w", err)
			}
		}
		into = append(into, m)
	}
	return into, nil
}
