package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/dist"
)

// FuzzMsgCodec feeds arbitrary bytes to the Msg batch decoder — the payload
// that crosses the socket transport every superstep, and the first thing a
// corrupted or duplicated frame lands on. Properties, matching the graphio
// fuzz targets: the decoder never panics on garbage; every batch the encoder
// produces round-trips exactly; and accepted input converges to a canonical
// encoding after one decode → encode cycle (garbage can carry a redundant
// R == 0 payload the canonical encoder elides, so byte-identity starts at
// the second encode).
func FuzzMsgCodec(f *testing.F) {
	c := MsgCodec{}
	f.Add([]byte{})
	f.Add([]byte{0x80}) // R flag without the R payload
	f.Add(c.AppendBatch(nil, []dist.Msg{
		{Kind: dist.MsgProposal, A: 1, B: 2, W: 3, R: 0.5},
		{Kind: dist.MsgFlag, A: -1, B: 0, W: 0},
	}))
	f.Add(c.AppendBatch(nil, []dist.Msg{
		{Kind: 0, A: math.MaxInt32, B: math.MinInt32, W: math.MaxInt64},
	}))
	f.Add([]byte{0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, in []byte) {
		msgs, err := c.DecodeBatch(in, nil)
		if err != nil {
			return
		}
		// A batch encodes as the concatenation of self-delimiting messages,
		// so accepted bytes must re-encode to a decodable batch with the
		// same messages, and the canonical encoding must be a fixed point.
		enc := c.AppendBatch(nil, msgs)
		msgs2, err := c.DecodeBatch(enc, nil)
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
		if !sameMsgs(msgs, msgs2) {
			t.Fatalf("round trip changed batch: %v -> %v", msgs, msgs2)
		}
		enc2 := c.AppendBatch(nil, msgs2)
		if !bytes.Equal(enc, enc2) {
			t.Fatal("encoding did not converge after one round trip")
		}
	})
}

// sameMsgs compares batches treating NaN R payloads as equal (NaN survives
// the IEEE-754 bits but breaks ==).
func sameMsgs(a, b []dist.Msg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if math.IsNaN(x.R) && math.IsNaN(y.R) {
			x.R, y.R = 0, 0
		}
		if !reflect.DeepEqual(x, y) {
			return false
		}
	}
	return true
}
