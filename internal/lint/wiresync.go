package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// wiresync keeps the wire protocol's encode and decode paths in sync:
//
//  1. Every frame-kind constant (Kind* in a package named "wire") must be
//     written somewhere (passed to a Write*/write* call — the encode path)
//     and handled somewhere on read (a switch case or ==/!= comparison —
//     the decode path). A kind with only one side is a frame the peers
//     cannot agree on.
//  2. A frame-dispatch switch (a switch whose cases name two or more frame
//     kinds) must carry a default clause: an unknown kind from a
//     version-skewed or corrupt peer must be rejected explicitly, never
//     fall through silently.
//  3. A struct field marked //kappa:since <v> is version-gated: Append<T>
//     must encode it after every ungated field (gated fields extend the
//     payload tail, so old decoders still parse the prefix) and Decode<T>
//     must contain a remaining-length guard (a len(...) comparison), so a
//     shorter old-version payload decodes cleanly instead of erroring —
//     the PR 7 DecodeAssign bug class, where a v1 Assign made a v2
//     coordinator fail mid-handshake instead of reporting the version
//     mismatch.
//
// The audit is whole-program: uses are collected from every analyzed
// package (the dispatch switches live in internal/remote, not in wire), so
// run kappavet over ./... — a single-package invocation cannot see the
// remote side and reports kinds as unhandled.
type wiresync struct {
	kinds map[types.Object]*kindUse
}

type kindUse struct {
	name             string
	pos              token.Position
	encoded, decoded bool
}

func newWiresync() *wiresync { return &wiresync{kinds: make(map[types.Object]*kindUse)} }

func (*wiresync) Name() string { return "wiresync" }
func (*wiresync) Doc() string {
	return "wire frame kinds out of sync between encode and decode paths, or unguarded version-gated fields"
}

func (w *wiresync) Package(p *Pass) {
	if p.Pkg.Types.Name() == "wire" {
		w.collectKinds(p)
		w.checkVersionGates(p)
	}
	w.collectUses(p)
	w.checkDispatchSwitches(p)
}

// collectKinds records every Kind* constant declared by a wire package.
func (w *wiresync) collectKinds(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Kind") || len(name.Name) == len("Kind") {
						continue
					}
					if obj := p.Pkg.Info.Defs[name]; obj != nil {
						w.kinds[obj] = &kindUse{name: name.Name, pos: p.Position(name.Pos())}
					}
				}
			}
		}
	}
}

// collectUses walks one package recording encode-side and decode-side
// evidence for every known frame kind.
func (w *wiresync) collectUses(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) {
			id, ok := n.(*ast.Ident)
			if !ok {
				return
			}
			ku, ok := w.kinds[info.Uses[id]]
			if !ok {
				return
			}
			for i := len(stack) - 1; i >= 0; i-- {
				switch parent := stack[i].(type) {
				case *ast.CallExpr:
					if name, ok := calleeName(parent); ok &&
						strings.Contains(strings.ToLower(name), "write") {
						for _, arg := range parent.Args {
							if containsNode(arg, id) {
								ku.encoded = true
							}
						}
					}
				case *ast.CaseClause:
					ku.decoded = true
				case *ast.BinaryExpr:
					if parent.Op == token.EQL || parent.Op == token.NEQ {
						ku.decoded = true
					}
				}
			}
		})
	}
}

// checkDispatchSwitches flags frame-dispatch switches without a default.
func (w *wiresync) checkDispatchSwitches(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			kindCases, hasDefault := 0, false
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					if id, ok := unwrapSelector(e); ok {
						if _, isKind := w.kinds[info.Uses[id]]; isKind {
							kindCases++
						}
					}
				}
			}
			if kindCases >= 2 && !hasDefault {
				p.Report(sw, "frame-dispatch switch without a default clause: unknown frame kinds from a version-skewed peer must be rejected explicitly")
			}
			return true
		})
	}
}

// checkVersionGates validates //kappa:since fields of wire structs.
func (w *wiresync) checkVersionGates(p *Pass) {
	type gated struct {
		typeName string
		pos      token.Pos
		ungated  []string
		fields   []string
	}
	var structs []gated
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				g := gated{typeName: ts.Name.Name, pos: ts.Pos()}
				for _, field := range st.Fields.List {
					_, marked := p.Dirs.markedWith(p.suite.fset, field.Doc, verbSince)
					if !marked {
						_, marked = p.Dirs.markedWith(p.suite.fset, field.Comment, verbSince)
					}
					for _, name := range field.Names {
						if marked {
							g.fields = append(g.fields, name.Name)
						} else {
							g.ungated = append(g.ungated, name.Name)
						}
					}
				}
				if len(g.fields) > 0 {
					structs = append(structs, g)
				}
			}
		}
	}
	for _, g := range structs {
		w.checkAppendOrder(p, g.typeName, g.ungated, g.fields)
		w.checkDecodeGuard(p, g.typeName)
	}
}

// checkAppendOrder verifies Append<T> encodes every version-gated field
// after every ungated one.
func (w *wiresync) checkAppendOrder(p *Pass, typeName string, ungated, gatedFields []string) {
	fd := findFunc(p.Pkg, "Append"+typeName)
	if fd == nil {
		return
	}
	fieldPos := func(names []string) (first, last token.Pos) {
		first, last = token.NoPos, token.NoPos
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			for _, name := range names {
				if sel.Sel.Name == name {
					if !first.IsValid() || sel.Pos() < first {
						first = sel.Pos()
					}
					if sel.Pos() > last {
						last = sel.Pos()
					}
				}
			}
			return true
		})
		return first, last
	}
	_, lastUngated := fieldPos(ungated)
	firstGated, _ := fieldPos(gatedFields)
	if firstGated.IsValid() && lastUngated.IsValid() && firstGated < lastUngated {
		p.Report(fd, "Append%s encodes a version-gated (kappa:since) field before an ungated one: gated fields must extend the payload tail", typeName)
	}
}

// checkDecodeGuard verifies Decode<T> contains a remaining-length guard.
func (w *wiresync) checkDecodeGuard(p *Pass, typeName string) {
	fd := findFunc(p.Pkg, "Decode"+typeName)
	if fd == nil {
		return
	}
	guarded := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return !guarded
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if call, ok := side.(*ast.CallExpr); ok && calleeBuiltin(p.Pkg.Info, call) == "len" {
				guarded = true
			}
		}
		return !guarded
	})
	if !guarded {
		p.Report(fd, "Decode%s reads version-gated (kappa:since) fields without a remaining-length guard: a shorter old-version payload must decode cleanly so the caller can report the version mismatch", typeName)
	}
}

func (w *wiresync) Finish(report func(Finding)) {
	kinds := make([]*kindUse, 0, len(w.kinds))
	for _, ku := range w.kinds {
		kinds = append(kinds, ku)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].name < kinds[j].name })
	for _, ku := range kinds {
		if !ku.encoded {
			report(Finding{Analyzer: "wiresync", Pos: ku.pos,
				Message: "frame kind " + ku.name + " is never written on any encode path"})
		}
		if !ku.decoded {
			report(Finding{Analyzer: "wiresync", Pos: ku.pos,
				Message: "frame kind " + ku.name + " is never handled on any decode path (switch case or comparison)"})
		}
	}
}

// findFunc returns the package-level function named name, or nil.
func findFunc(p *Package, name string) *ast.FuncDecl {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name && fd.Body != nil {
				return fd
			}
		}
	}
	return nil
}

// unwrapSelector returns the rightmost identifier of e (x → x, p.X → X).
func unwrapSelector(e ast.Expr) (*ast.Ident, bool) {
	switch v := e.(type) {
	case *ast.Ident:
		return v, true
	case *ast.SelectorExpr:
		return v.Sel, true
	}
	return nil, false
}

// containsNode reports whether target occurs within root.
func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// walkWithStack visits every node with its ancestor stack (outermost
// first, not including the node itself).
func walkWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}
