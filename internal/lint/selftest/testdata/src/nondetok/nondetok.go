// Package nondetok is not a kernel package, so the same entropy sources
// that nondet flags in kernels are legal here (timing belongs to the
// pipeline and observability layers).
package nondetok

import "time"

// Stamp is fine: nondet scopes to kernel package names only.
func Stamp() int64 {
	return time.Now().UnixNano()
}
