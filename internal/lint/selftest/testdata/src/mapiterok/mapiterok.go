// Package mapiterok exercises the mapiter analyzer's negative cases: the
// collect-then-sort idiom and order-insensitive loop bodies.
package mapiterok

import "sort"

// Keys collects then sorts: the accepted deterministic shape.
func Keys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Sum only folds commutatively; no order-sensitive sink.
func Sum(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// SortedFunc clears the append through a sort.Slice call on the target.
func SortedFunc(m map[int]string) []string {
	var vals []string
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}
