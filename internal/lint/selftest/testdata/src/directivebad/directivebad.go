// Package directivebad exercises the directive validator: misspelled
// analyzer names, missing reasons, allows that suppress nothing, unknown
// verbs, and unattached or malformed marks are all findings of the
// unsuppressible "directive" pseudo-analyzer.
package directivebad

// work strings the bad directives together on otherwise-clean lines.
func work(n int) int {
	// want-next directive
	//kappa:allow nosuch misspelled analyzer name
	x := n + 1
	// want-next directive
	//kappa:allow mapiter
	y := x + 1
	// want-next directive
	//kappa:allow
	z := y + 1
	// want-next directive
	//kappa:allow panicfree nothing on this or the next line needs it
	w := z + 1
	// want-next directive
	//kappa:frobnicate
	v := w + 1
	// want-next directive
	//kappa:hotpath
	u := v + 1
	// want-next directive
	//kappa:since 2
	t := u + 1
	// want-next directive
	//kappa:since two
	return t
}
