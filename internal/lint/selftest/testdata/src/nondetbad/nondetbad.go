// Package gen is named after a kernel package on purpose: the nondet
// analyzer matches on package name, and this fixture proves it flags
// ambient entropy there.
package gen

import (
	"math/rand"
	"os"
	"time"
)

// Stamp reads the wall clock inside a kernel package.
func Stamp() int64 {
	return time.Now().UnixNano() // want nondet
}

// Draw uses the global math/rand source.
func Draw() int {
	return rand.Intn(10) // want nondet
}

// PID leaks process identity into kernel output.
func PID() int {
	return os.Getpid() // want nondet
}
