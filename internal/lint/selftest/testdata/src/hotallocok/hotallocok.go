// Package hotallocok exercises the hotalloc analyzer's negative cases:
// unmarked functions, the append reuse idiom, and an allow directive.
package hotallocok

// NotHot allocates freely: it carries no kappa:hotpath mark.
func NotHot(n int) []int {
	return make([]int, n)
}

//kappa:hotpath
func Reuse(buf []int, n int) []int {
	buf = append(buf[:0], n)
	v := pair{1, 2} // value struct literals stay legal
	_ = v
	//kappa:allow hotalloc grow-once scratch, documented for the selftest
	tmp := make([]int, n)
	_ = tmp
	return buf
}

type pair struct{ a, b int }
