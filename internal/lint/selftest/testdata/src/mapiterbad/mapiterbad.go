// Package mapiterbad exercises the mapiter analyzer's positive cases:
// order-sensitive sinks driven directly by map iteration.
package mapiterbad

import "strings"

// Keys assembles a slice from a map range with no following sort.
func Keys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want mapiter
	}
	return out
}

// Emit writes map values straight into a builder.
func Emit(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want mapiter
	}
}

// Send forwards map keys on a channel.
func Send(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want mapiter
	}
}
