// Package panicfreeok exercises the panicfree analyzer's negative cases:
// deferred recover, sentinel panic types, and marked invariant helpers.
package panicfreeok

import "errors"

// failure is the sentinel panic payload this package recovers at its API
// boundary — the *dist.SocketError pattern.
//
//kappa:invariant recovered by Run before returning
type failure struct{ err error }

// Run converts the sentinel panic back into an error.
func Run(n int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = r.(*failure).err
		}
	}()
	inner(n)
	return nil
}

// inner throws the marked sentinel type; Run's recover is the contract.
func inner(n int) {
	if n < 0 {
		panic(&failure{errors.New("negative")})
	}
}

// Local keeps its panic function-local behind its own deferred recover.
func Local(n int) (ok bool) {
	defer func() { ok = recover() == nil }()
	if n == 0 {
		panic("zero")
	}
	return true
}

// mustPositive guards an internal invariant; callers validate n first.
//
//kappa:invariant callers validate n before the kernel runs
func mustPositive(n int) {
	if n <= 0 {
		panic("not positive")
	}
}

// Use keeps mustPositive referenced.
func Use(n int) {
	mustPositive(n + 1)
}
