// Package wire (fixture "wiregood") exercises the wiresync analyzer's
// negative cases: every kind on both paths, a defaulted dispatch switch,
// and a version-gated struct encoded tail-last with a guarded decoder.
package wire

// Frame kinds, each written and handled.
const (
	KindHello int = iota + 1
	KindBye
)

// writeFrame stands in for the transport's frame writer.
func writeFrame(dst []byte, kind int) []byte {
	return append(dst, byte(kind))
}

// EncodeAll writes every kind.
func EncodeAll(dst []byte) []byte {
	dst = writeFrame(dst, KindHello)
	dst = writeFrame(dst, KindBye)
	return dst
}

// Dispatch rejects unknown kinds explicitly.
func Dispatch(kind int) int {
	switch kind {
	case KindHello:
		return 1
	case KindBye:
		return 2
	default:
		return -1
	}
}

// Hello is a versioned payload encoded and decoded correctly.
type Hello struct {
	A int
	//kappa:since 2
	B int
}

// AppendHello extends the payload tail with the gated field.
func AppendHello(dst []byte, h Hello) []byte {
	dst = append(dst, byte(h.A))
	dst = append(dst, byte(h.B))
	return dst
}

// DecodeHello guards the gated tail on remaining length, so a version-1
// payload decodes cleanly with zero timing.
func DecodeHello(data []byte) (Hello, error) {
	var h Hello
	h.A = int(data[0])
	if len(data) < 2 {
		return h, nil
	}
	h.B = int(data[1])
	return h, nil
}
