// Package panicfreebad exercises the panicfree analyzer's positive case: a
// bare panic in a library function with no recover, mark, or sentinel.
package panicfreebad

// Check panics on bad input instead of returning an error.
func Check(n int) {
	if n < 0 {
		panic("negative") // want panicfree
	}
}
