// Package hotallocbad exercises the hotalloc analyzer's positive cases:
// every allocating construct inside a //kappa:hotpath function.
package hotallocbad

import "fmt"

type pair struct{ a, b int }

//kappa:hotpath
func Build(n int, buf []byte) string {
	tmp := make([]byte, 0, n) // want hotalloc
	_ = tmp
	s := fmt.Sprintf("%d", n) // want hotalloc
	b := []byte(s)            // want hotalloc
	_ = b
	p := &pair{1, 2} // want hotalloc
	_ = p
	xs := []int{1, 2} // want hotalloc
	_ = xs
	var out []int
	out = append(out, n) // want hotalloc
	_ = out
	return s
}
