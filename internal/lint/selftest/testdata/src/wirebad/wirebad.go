// Package wire (fixture "wirebad") exercises the wiresync analyzer's
// positive cases: frame kinds missing one side of the protocol, a dispatch
// switch without a default, and a version-gated struct violating both the
// append-order and decode-guard rules.
package wire

// Frame kinds. KindLost is encoded but never handled on read; KindGhost is
// compared on read but never written.
const (
	KindPing  int = iota + 1 // encoded and decoded: clean
	KindData                 // encoded and decoded: clean
	KindLost                 // want wiresync
	KindGhost                // want wiresync
)

// writeFrame stands in for the transport's frame writer.
func writeFrame(dst []byte, kind int) []byte {
	return append(dst, byte(kind))
}

// EncodeAll writes three of the four kinds.
func EncodeAll(dst []byte) []byte {
	dst = writeFrame(dst, KindPing)
	dst = writeFrame(dst, KindData)
	dst = writeFrame(dst, KindLost)
	return dst
}

// Dispatch switches on two frame kinds without a default clause.
func Dispatch(kind int) int {
	switch kind { // want wiresync
	case KindPing:
		return 1
	case KindData:
		return 2
	}
	return 0
}

// IsGhost gives KindGhost its decode-side evidence.
func IsGhost(kind int) bool { return kind == KindGhost }

// Hello is a versioned payload whose gated field is mis-encoded below.
type Hello struct {
	A int
	//kappa:since 2
	B int
}

// AppendHello encodes the version-gated field before the ungated one,
// breaking old decoders that parse the payload prefix.
func AppendHello(dst []byte, h Hello) []byte { // want wiresync
	dst = append(dst, byte(h.B))
	dst = append(dst, byte(h.A))
	return dst
}

// DecodeHello reads the gated field with no remaining-length guard, so a
// shorter old-version payload fails instead of decoding cleanly.
func DecodeHello(data []byte) (Hello, error) { // want wiresync
	var h Hello
	h.A = int(data[0])
	h.B = int(data[1])
	return h, nil
}
