// Package selftest proves each kappavet analyzer against fixture packages
// under testdata/src: every `// want <analyzer>` comment must produce
// exactly one finding of that analyzer on its line (`// want-next` expects
// it on the following line, for findings anchored to directive comments),
// and no finding may appear without a want. TestKappavetClean then runs the
// whole suite over the real repository and requires silence, making repo
// cleanliness part of tier-1 `go test ./...`.
package selftest

import (
	"bufio"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

const fixtureRoot = "testdata/src"

// loadFixtures runs the suite over every fixture package and returns its
// findings keyed by "<path relative to selftest dir>:<line>".
func loadFixtures(t *testing.T) map[string][]string {
	t.Helper()
	entries, err := os.ReadDir(fixtureRoot)
	if err != nil {
		t.Fatalf("reading fixture root: %v", err)
	}
	var patterns []string
	for _, e := range entries {
		if e.IsDir() {
			patterns = append(patterns, "./"+filepath.ToSlash(filepath.Join(fixtureRoot, e.Name())))
		}
	}
	if len(patterns) == 0 {
		t.Fatal("no fixture packages found")
	}
	fset := token.NewFileSet()
	pkgs, err := lint.Load(fset, ".", patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	actual := make(map[string][]string)
	for _, f := range lint.NewSuite(fset).Run(pkgs) {
		rel, err := filepath.Rel(cwd, f.Pos.Filename)
		if err != nil {
			rel = f.Pos.Filename
		}
		key := filepath.ToSlash(rel) + ":" + strconv.Itoa(f.Pos.Line)
		actual[key] = append(actual[key], f.Analyzer)
	}
	return actual
}

// wantComments scans the fixture sources for expectation comments.
func wantComments(t *testing.T) map[string][]string {
	t.Helper()
	expected := make(map[string][]string)
	err := filepath.WalkDir(fixtureRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			target := line
			marker := "// want "
			if i := strings.Index(text, "// want-next "); i >= 0 {
				marker, target = "// want-next ", line+1
			} else if strings.Index(text, marker) < 0 {
				continue
			}
			rest := text[strings.Index(text, marker)+len(marker):]
			key := filepath.ToSlash(path) + ":" + strconv.Itoa(target)
			expected[key] = append(expected[key], strings.Fields(rest)...)
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("scanning want comments: %v", err)
	}
	return expected
}

// TestFixtures checks want comments against suite findings, both ways.
func TestFixtures(t *testing.T) {
	actual := loadFixtures(t)
	expected := wantComments(t)
	keys := make(map[string]bool, len(actual)+len(expected))
	for k := range actual {
		keys[k] = true
	}
	for k := range expected {
		keys[k] = true
	}
	for k := range keys {
		got, want := actual[k], expected[k]
		sort.Strings(got)
		sort.Strings(want)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%s: got findings [%s], want [%s]",
				k, strings.Join(got, " "), strings.Join(want, " "))
		}
	}
	if len(expected) == 0 {
		t.Fatal("no want comments found; fixtures are not testing anything")
	}
}

// TestKappavetClean runs the full suite over the repository and demands
// zero findings: every suppression must be a deliberate, reasoned
// directive, never an unnoticed regression.
func TestKappavetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo lint skipped in -short mode")
	}
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	root := strings.TrimSpace(string(out))
	fset := token.NewFileSet()
	pkgs, err := lint.Load(fset, root, "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	findings := lint.NewSuite(fset).Run(pkgs)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("kappavet is not clean: %d finding(s); fix them or add a reasoned //kappa:allow", len(findings))
	}
}
