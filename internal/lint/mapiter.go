package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// mapiter flags `range` over a map whose loop body performs an
// order-sensitive sink — appending to a slice, sending on a channel, or
// calling an emission-style function (Write*/Encode*/Append*/Print*/Emit*/
// Marshal*/Observe*) — without an intervening deterministic sort.
//
// This is the gen.PrefAttach bug class: Go randomizes map iteration order
// per process, so any output assembled directly from a map range differs
// across runs and across OS processes, silently breaking the repo's core
// contract that equal seeds yield byte-identical partitions everywhere.
// The accepted shape is collect-then-sort: appending the map's keys (or
// values) to a slice is fine when a sort call on that slice follows in the
// same function before the loop's enclosing block ends.
type mapiter struct{}

func newMapiter() *mapiter { return &mapiter{} }

func (*mapiter) Name() string { return "mapiter" }
func (*mapiter) Doc() string {
	return "order-sensitive work inside map iteration without a deterministic sort"
}
func (*mapiter) Finish(func(Finding)) {}

// emissionCall reports whether a called function name is an output/emission
// sink whose invocation order is observable (codec appends, writers, trace
// emission, metric observation).
func emissionCall(name string) bool {
	for _, prefix := range []string{
		"Write", "Encode", "Append", "Emit", "Print", "Fprint", "Sprint",
		"Marshal", "OnTrace", "Observe", "Send",
	} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// sortingCall reports whether a call expression is a deterministic-order
// fix: any call whose function name mentions sorting (sort.Slice,
// slices.Sort, a local sortEdgesDesc helper, ...) with target among its
// arguments, or target.Sort()-style methods.
func sortingCall(call *ast.CallExpr, target types.Object, info *types.Info) bool {
	var name string
	var args []ast.Expr = call.Args
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		// Include the qualifier so sort.Slice / slices.SortFunc match, and
		// the receiver as a candidate target so s.Sort() counts for s.
		name = fun.Sel.Name
		if base, ok := fun.X.(*ast.Ident); ok {
			name = base.Name + "." + name
		}
		args = append([]ast.Expr{fun.X}, call.Args...)
	default:
		return false
	}
	if !strings.Contains(strings.ToLower(name), "sort") {
		return false
	}
	for _, a := range args {
		if id, ok := rootIdent(a); ok && info.Uses[id] == target {
			return true
		}
	}
	return false
}

// rootIdent unwraps an expression to its base identifier: x, x[i:j], x.f →
// x (for x.f it returns x, which is what append/sort matching wants when
// the target is a plain variable).
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v, true
		case *ast.SliceExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil, false
		}
	}
}

func (m *mapiter) Package(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			body, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range body.List {
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := p.Pkg.Info.TypeOf(rng.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				m.checkLoop(p, rng, body.List[i+1:])
			}
			return true
		})
	}
}

// checkLoop inspects one map-range loop; rest is the statement tail of the
// loop's enclosing block, searched for post-loop sorts of append targets.
func (m *mapiter) checkLoop(p *Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	info := p.Pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is checked by its own visit; its sinks would
			// otherwise be double-reported here.
			if v != rng {
				if t := info.TypeOf(v.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.SendStmt:
			p.Report(v, "send on a channel inside map iteration: receive order is randomized per process")
			return true
		case *ast.CallExpr:
			if obj := calleeBuiltin(info, v); obj == "append" {
				m.checkAppend(p, v, rest)
				return true
			}
			if name, ok := calleeName(v); ok && emissionCall(name) {
				p.Report(v, "%s called inside map iteration: emission order is randomized per process", name)
				return false
			}
		}
		return true
	})
}

// checkAppend handles `s = append(s, ...)` inside a map range: fine when a
// sort of s follows the loop in the same block, a finding otherwise.
func (m *mapiter) checkAppend(p *Pass, call *ast.CallExpr, rest []ast.Stmt) {
	info := p.Pkg.Info
	var target types.Object
	if id, ok := rootIdent(call.Args[0]); ok {
		target = info.Uses[id]
	}
	if target != nil {
		sorted := false
		for _, stmt := range rest {
			ast.Inspect(stmt, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok && sortingCall(c, target, info) {
					sorted = true
				}
				return !sorted
			})
			if sorted {
				break
			}
		}
		if sorted {
			return
		}
	}
	p.Report(call, "append inside map iteration without a following sort: element order is randomized per process")
}

// calleeBuiltin returns the name of the builtin a call invokes, or "".
func calleeBuiltin(info *types.Info, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// calleeName returns the bare name of the function or method a call
// invokes (skipping type conversions).
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}
