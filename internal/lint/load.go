package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, and type-checked package of the module
// under analysis.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Incomplete bool
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// Load lists the packages matching patterns (relative to dir, the module
// root), parses their non-test sources, and type-checks them against real
// dependency type information. It is deliberately stdlib-only: packages are
// enumerated with `go list -export -deps -json`, module packages are checked
// from source with go/parser + go/types, and dependencies (the standard
// library) are imported from the compiler export data the go command
// produces — the same stance as the rest of the repo, no external modules.
func Load(fset *token.FileSet, dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("lint: go list: %w", err)
	}
	var listed []*listPackage
	dec := json.NewDecoder(out)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err != nil {
			if err == io.EOF {
				break
			}
			cmd.Wait()
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("lint: go list: %w (%s)", err, strings.TrimSpace(stderr.String()))
	}

	// Export data for every dependency; `-deps` lists dependencies before
	// their importers, so by the time a module package is type-checked every
	// import resolves either to an already-checked module package or to an
	// export file.
	exports := make(map[string]string)
	checked := make(map[string]*types.Package)
	imp := &chainImporter{
		checked: checked,
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := exports[path]
			if !ok || file == "" {
				return nil, fmt.Errorf("lint: no export data for %q", path)
			}
			return os.Open(file)
		}),
	}
	conf := types.Config{Importer: imp}

	var pkgs []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Standard || lp.DepOnly {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", lp.ImportPath, err)
		}
		checked[lp.ImportPath] = tpkg
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// chainImporter resolves module-internal imports to their source-checked
// packages and everything else (the standard library) through compiler
// export data.
type chainImporter struct {
	checked map[string]*types.Package
	gc      types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := c.checked[path]; ok {
		return p, nil
	}
	return c.gc.Import(path)
}
