package lint

import (
	"go/ast"
	"go/types"
)

// nondet forbids ambient entropy — wall clocks, the global math/rand
// source, process identity — inside the deterministic kernel packages.
//
// The multilevel kernels (matching, coarsening, refinement, initial
// partitioning, and their support packages) must be pure functions of
// (graph, config, seed): that is what makes a distributed run byte-identical
// to an in-process one and a retried level byte-identical to its first
// attempt. All randomness flows through the seeded internal/rng streams and
// all timing belongs to the pipeline/observability layers (core, dist,
// remote, obs, baseline), which are deliberately outside this analyzer's
// scope.
type nondet struct{}

func newNondet() *nondet { return &nondet{} }

func (*nondet) Name() string { return "nondet" }
func (*nondet) Doc() string {
	return "ambient entropy (time.Now, global math/rand, os.Getpid, ...) in a kernel package"
}
func (*nondet) Finish(func(Finding)) {}

// kernelPackages are the deterministic kernels: every package whose output
// feeds the partition must derive all variability from the run's seed.
var kernelPackages = map[string]bool{
	"matching": true,
	"coarsen":  true,
	"refine":   true,
	"initpart": true,
	"rating":   true,
	"part":     true,
	"dsu":      true,
	"pq":       true,
	"rng":      true,
	"gen":      true,
}

// entropySources maps import path → forbidden package-level functions
// (nil = every function of the package is forbidden).
var entropySources = map[string]map[string]bool{
	"time":          {"Now": true, "Since": true, "Until": true},
	"math/rand":     nil,
	"math/rand/v2":  nil,
	"crypto/rand":   nil,
	"os":            {"Getpid": true, "Getppid": true, "Getenv": true, "Environ": true, "Hostname": true, "Getuid": true},
	"runtime":       {"NumGoroutine": true},
	"runtime/debug": {"ReadGCStats": true},
}

func (nd *nondet) Package(p *Pass) {
	if !kernelPackages[p.Pkg.Types.Name()] {
		return
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := info.Uses[base].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			funcs, bad := entropySources[path]
			if !bad {
				return true
			}
			if funcs != nil && !funcs[sel.Sel.Name] {
				return true
			}
			p.Report(sel, "%s.%s in kernel package %q: kernels must derive all variability from the run seed",
				path, sel.Sel.Name, p.Pkg.Types.Name())
			return true
		})
	}
}
