package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// panicfree enforces the PR 3 error contract: library packages return
// errors, they do not panic. A panic that escapes a package boundary turns
// a bad input into a crashed worker process — exactly what the
// fault-tolerance layer must then treat as a dead PE.
//
// Three shapes are accepted without a line directive:
//
//   - a panic inside a function that itself installs a deferred recover
//     (the panic is a local control-flow trick that cannot escape the
//     function),
//   - a panic whose argument is a type marked //kappa:invariant — the
//     *dist.SocketError pattern: a sentinel panic type that a goroutine
//     boundary in the same package is contractually obliged to recover and
//     convert to an error, and
//   - a panic inside a function marked //kappa:invariant — an
//     internal-invariant helper whose reachable-only-by-repo-bug panics are
//     a deliberate loud failure, not an input-dependent one.
//
// Everything else needs //kappa:allow panicfree <reason>, which keeps each
// remaining panic's justification in the source next to it. Command
// packages (package main) are exempt: a CLI's top level may crash.
type panicfree struct{}

func newPanicfree() *panicfree { return &panicfree{} }

func (*panicfree) Name() string { return "panicfree" }
func (*panicfree) Doc() string {
	return "panic in a library package outside recover-wrapped or marked-invariant functions"
}
func (*panicfree) Finish(func(Finding)) {}

func (pf *panicfree) Package(p *Pass) {
	if p.Pkg.Types.Name() == "main" {
		return
	}
	sentinels := pf.sentinelTypes(p)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := p.Dirs.markedWith(p.suite.fset, fd.Doc, verbInvariant); ok {
				continue
			}
			if hasDeferredRecover(fd.Body, p) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if calleeBuiltin(p.Pkg.Info, call) == "panic" && !pf.throwsSentinel(p, call, sentinels) {
					p.Report(call, "panic in library package %q: return an error (or mark the helper //kappa:invariant)",
						p.Pkg.Types.Name())
				}
				return true
			})
		}
	}
}

// sentinelTypes collects the package's types marked //kappa:invariant:
// panic payload types that a recover boundary in the package converts to
// errors.
func (pf *panicfree) sentinelTypes(p *Pass) map[types.Object]bool {
	sentinels := make(map[types.Object]bool)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				_, marked := p.Dirs.markedWith(p.suite.fset, gd.Doc, verbInvariant)
				if !marked {
					_, marked = p.Dirs.markedWith(p.suite.fset, ts.Doc, verbInvariant)
				}
				if marked {
					if obj := p.Pkg.Info.Defs[ts.Name]; obj != nil {
						sentinels[obj] = true
					}
				}
			}
		}
	}
	return sentinels
}

// throwsSentinel reports whether the panic's argument is (a pointer to) a
// marked sentinel type.
func (pf *panicfree) throwsSentinel(p *Pass, call *ast.CallExpr, sentinels map[types.Object]bool) bool {
	if len(sentinels) == 0 || len(call.Args) != 1 {
		return false
	}
	t := p.Pkg.Info.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return sentinels[named.Obj()]
	}
	return false
}

// hasDeferredRecover reports whether the function body installs a deferred
// recover, making its panics function-local.
func hasDeferredRecover(body *ast.BlockStmt, p *Pass) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		ast.Inspect(d.Call, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok && calleeBuiltin(p.Pkg.Info, c) == "recover" {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}
