package lint

import (
	"go/ast"
	"go/types"
)

// hotalloc enforces the zero-allocation property of the multilevel hot path
// structurally: inside any function whose doc comment carries
// //kappa:hotpath, every construct that can allocate — make, new, growing
// append, slice/map/pointer composite literals, fmt.Sprintf-style
// formatting, string↔[]byte conversions — is a finding.
//
// PR 4 removed allocation from the V-cycle kernels and proved it with
// -benchmem snapshots; a snapshot only catches a regression after someone
// re-measures. The annotation makes the property part of the code: a future
// edit that reintroduces a per-level allocation fails `make lint`
// immediately. Arena borrows (mem.Arena method calls) are intentionally
// invisible to this analyzer — drawing from the arena is exactly what hot
// code is supposed to do. The one accepted append form is the explicit
// reuse idiom append(buf[:0], ...), which recycles a caller-provided
// backing array.
type hotalloc struct{}

func newHotalloc() *hotalloc { return &hotalloc{} }

func (*hotalloc) Name() string { return "hotalloc" }
func (*hotalloc) Doc() string {
	return "allocation inside a //kappa:hotpath function"
}
func (*hotalloc) Finish(func(Finding)) {}

func (h *hotalloc) Package(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := p.Dirs.markedWith(p.suite.fset, fd.Doc, verbHotpath); !ok {
				continue
			}
			h.checkBody(p, fd)
		}
	}
}

func (h *hotalloc) checkBody(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CompositeLit:
			t := info.TypeOf(v)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map, *types.Chan:
				p.Report(v, "composite literal allocates in hot path")
			}
			// Value struct literals stay legal: they live on the stack unless
			// escape analysis says otherwise, and flagging them would outlaw
			// plain value assembly. Heap-escaping &T{} is caught below.
		case *ast.UnaryExpr:
			if v.Op.String() == "&" {
				if _, ok := v.X.(*ast.CompositeLit); ok {
					p.Report(v, "&composite{} allocates in hot path")
				}
			}
		case *ast.CallExpr:
			h.checkCall(p, v)
		}
		return true
	})
}

func (h *hotalloc) checkCall(p *Pass, call *ast.CallExpr) {
	info := p.Pkg.Info
	switch calleeBuiltin(info, call) {
	case "make":
		p.Report(call, "make allocates in hot path")
		return
	case "new":
		p.Report(call, "new allocates in hot path")
		return
	case "append":
		if len(call.Args) > 0 && isResetReuse(call.Args[0]) {
			return
		}
		p.Report(call, "append may grow its backing array in hot path (use the append(buf[:0], ...) reuse idiom or an arena buffer)")
		return
	}
	// fmt.Sprintf / fmt.Errorf / errors.New style formatting.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if base, ok := sel.X.(*ast.Ident); ok {
			if pkgName, ok := info.Uses[base].(*types.PkgName); ok {
				path := pkgName.Imported().Path()
				if path == "fmt" || path == "errors" {
					p.Report(call, "%s.%s allocates in hot path", path, sel.Sel.Name)
					return
				}
			}
		}
	}
	// string ↔ []byte conversions copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, info.TypeOf(call.Args[0])
		if from != nil && isStringByteConv(to, from) {
			p.Report(call, "string/[]byte conversion copies in hot path")
		}
	}
}

// isResetReuse recognizes the append reuse idiom's first argument:
// buf[:0] (or buf[0:0]).
func isResetReuse(e ast.Expr) bool {
	s, ok := e.(*ast.SliceExpr)
	if !ok {
		return false
	}
	high, ok := s.High.(*ast.BasicLit)
	return ok && high.Value == "0"
}

// isStringByteConv reports whether a conversion goes string→[]byte or
// []byte→string.
func isStringByteConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	return (isStr(to) && isBytes(from)) || (isBytes(to) && isStr(from))
}
